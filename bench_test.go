// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per artefact; see DESIGN.md for the index),
// the ablations of the design choices, and micro-benchmarks of the
// tracer and analysis hot paths.
//
// The table/figure benchmarks report artefact-specific metrics (noise
// shares, event frequencies, slowdowns) via b.ReportMetric, so a bench
// run doubles as a reproduction run.
package osnoise_test

import (
	"context"
	"fmt"
	"testing"

	"osnoise/internal/cluster"
	"osnoise/internal/experiments"
	"osnoise/internal/ftq"
	"osnoise/internal/inject"
	"osnoise/internal/noise"
	"osnoise/internal/sim"
	"osnoise/internal/trace"
	"osnoise/internal/workload"
)

// benchDur keeps per-iteration virtual time moderate; the cmd/noisebench
// binary runs the full 20 s versions.
const benchDur = 3 * sim.Second

func benchCtx() *experiments.Context {
	c := experiments.NewContext(benchDur, 2011)
	c.FTQDuration = benchDur
	return c
}

// BenchmarkFig1_FTQ regenerates Figure 1: FTQ vs the synthetic noise
// chart for the same run, reporting the FTQ/tracer agreement ratio.
func BenchmarkFig1_FTQ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := ftq.DefaultConfig(2011)
		cfg.Duration = benchDur
		res := ftq.Execute(cfg)
		rep := noise.Analyze(res.Trace, res.Run.AnalysisOptions())
		ratio := float64(res.TotalMissingNS()) / float64(rep.TotalNoiseNS)
		b.ReportMetric(ratio, "ftq/tracer")
	}
}

// BenchmarkFig2_Trace regenerates Figure 2: the FTQ execution trace and
// its zoom into one interruption.
func BenchmarkFig2_Trace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2(benchCtx())
		if len(r.Text) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig3_Breakdown regenerates Figure 3, reporting each
// application's dominant-category share.
func BenchmarkFig3_Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := benchCtx()
		for _, name := range experiments.AppNames {
			_, rep := c.App(name)
			var maxShare float64
			for cat := noise.CatPeriodic; cat <= noise.CatIO; cat++ {
				if s := rep.CategoryFraction(cat); s > maxShare {
					maxShare = s
				}
			}
			b.ReportMetric(maxShare, name+"-domshare")
		}
	}
}

// statBench runs one of the Tables I–VI and reports AMG's frequency for
// the measured key.
func statBench(b *testing.B, key noise.Key, fn func(*experiments.Context) *experiments.Result) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		c := benchCtx()
		r := fn(c)
		if len(r.Data) != 5 {
			b.Fatalf("%s rows = %d", r.ID, len(r.Data))
		}
		_, rep := c.App("AMG")
		b.ReportMetric(rep.Stats(key).Freq(rep.Seconds, rep.CPUs), "AMG-ev/s")
	}
}

// BenchmarkTable1_PageFaults regenerates Table I.
func BenchmarkTable1_PageFaults(b *testing.B) {
	statBench(b, noise.KeyPageFault, experiments.Table1)
}

// BenchmarkTable2_NetIRQ regenerates Table II.
func BenchmarkTable2_NetIRQ(b *testing.B) {
	statBench(b, noise.KeyNetIRQ, experiments.Table2)
}

// BenchmarkTable3_NetRx regenerates Table III.
func BenchmarkTable3_NetRx(b *testing.B) {
	statBench(b, noise.KeyNetRx, experiments.Table3)
}

// BenchmarkTable4_NetTx regenerates Table IV.
func BenchmarkTable4_NetTx(b *testing.B) {
	statBench(b, noise.KeyNetTx, experiments.Table4)
}

// BenchmarkTable5_TimerIRQ regenerates Table V.
func BenchmarkTable5_TimerIRQ(b *testing.B) {
	statBench(b, noise.KeyTimerIRQ, experiments.Table5)
}

// BenchmarkTable6_TimerSoftirq regenerates Table VI.
func BenchmarkTable6_TimerSoftirq(b *testing.B) {
	statBench(b, noise.KeyTimerSoftIRQ, experiments.Table6)
}

// BenchmarkFig4_PFHist regenerates Figure 4 and reports the AMG
// page-fault histogram's mode count (2 = bimodal).
func BenchmarkFig4_PFHist(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := benchCtx()
		_, rep := c.App("AMG")
		h := rep.Stats(noise.KeyPageFault).HistogramP99(40)
		modes := h.Modes(0.45, 4)
		b.ReportMetric(float64(len(modes)), "AMG-modes")
	}
}

// BenchmarkFig5_PFTrace regenerates Figure 5 and reports the share of
// LAMMPS faults in the middle half of the run (low = edge-concentrated).
func BenchmarkFig5_PFTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := benchCtx()
		_, rep := c.App("LAMMPS")
		lo, hi := int64(float64(benchDur)*0.25), int64(float64(benchDur)*0.75)
		var mid, total int
		for _, s := range rep.Spans {
			if s.Key != noise.KeyPageFault {
				continue
			}
			total++
			if s.Start >= lo && s.Start <= hi {
				mid++
			}
		}
		b.ReportMetric(float64(mid)/float64(total), "LAMMPS-midshare")
	}
}

// BenchmarkFig6_Rebalance regenerates Figure 6, reporting the
// UMT-vs-IRS rebalance stddev ratio (>1 = UMT wider, as in the paper).
func BenchmarkFig6_Rebalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := benchCtx()
		_, irs := c.App("IRS")
		_, umt := c.App("UMT")
		ratio := umt.Stats(noise.KeyRebalance).Summary.StdDev() /
			irs.Stats(noise.KeyRebalance).Summary.StdDev()
		b.ReportMetric(ratio, "UMT/IRS-stddev")
	}
}

// BenchmarkFig7_Preemption regenerates Figure 7, reporting LAMMPS's
// preemption share of total noise.
func BenchmarkFig7_Preemption(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := benchCtx()
		_, rep := c.App("LAMMPS")
		b.ReportMetric(rep.CategoryFraction(noise.CatPreemption), "preempt-share")
	}
}

// BenchmarkFig8_TimerSoftirq regenerates Figure 8, reporting the AMG
// run_timer_softirq p99/median tail ratio.
func BenchmarkFig8_TimerSoftirq(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := benchCtx()
		_, rep := c.App("AMG")
		ks := rep.Stats(noise.KeyTimerSoftIRQ)
		durs := make([]int64, len(ks.Durations))
		copy(durs, ks.Durations)
		var median, p99 float64
		if len(durs) > 0 {
			median = percentile(durs, 0.5)
			p99 = percentile(durs, 0.99)
		}
		b.ReportMetric(p99/median, "p99/median")
	}
}

func percentile(v []int64, q float64) float64 {
	vv := make([]int64, len(v))
	copy(vv, v)
	// simple selection via sort in stats package equivalence
	for i := 1; i < len(vv); i++ {
		for j := i; j > 0 && vv[j-1] > vv[j]; j-- {
			vv[j-1], vv[j] = vv[j], vv[j-1]
		}
	}
	idx := int(q * float64(len(vv)-1))
	return float64(vv[idx])
}

// BenchmarkFig9_Disambiguation regenerates Figure 9 (composite FTQ
// quantum separated by the tracer).
func BenchmarkFig9_Disambiguation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig9(benchCtx())
		if len(r.Text) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkFig10_AMGChart regenerates Figure 10 (equal-duration page
// fault vs tick pair in the AMG synthetic chart).
func BenchmarkFig10_AMGChart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig10(benchCtx())
		if len(r.Text) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkOverhead regenerates the §III-A instrumentation-overhead
// measurement, reporting the average fraction.
func BenchmarkOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Overhead(benchCtx())
		var sum float64
		for _, rows := range r.Data {
			sum += rows[0][0]
		}
		b.ReportMetric(sum/float64(len(r.Data)), "overhead-frac")
	}
}

// BenchmarkExt1_Scaling regenerates the noise-at-scale extension,
// reporting the slowdown at the largest node count.
func BenchmarkExt1_Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Ext1(benchCtx())
		rows := r.Data["scaling"]
		b.ReportMetric(rows[len(rows)-1][1], "slowdown@1024")
	}
}

// ---- Ablations (design choices called out in DESIGN.md §5) ----

// nestHeavyTrace builds a trace with deep nesting for the attribution
// ablation.
func nestHeavyTrace() *trace.Trace {
	run := workload.New(workload.UMT(), workload.Options{Duration: sim.Second, Seed: 5})
	return run.Execute()
}

// BenchmarkAblationNesting compares total noise with and without
// nested-event attribution: disabling it double counts nested time.
func BenchmarkAblationNesting(b *testing.B) {
	tr := nestHeavyTrace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		on := noise.DefaultOptions()
		r1 := noise.Analyze(tr, on)
		off := noise.DefaultOptions()
		off.AttributeNesting = false
		r2 := noise.Analyze(tr, off)
		b.ReportMetric(float64(r2.TotalNoiseNS)/float64(r1.TotalNoiseNS), "overcount")
	}
}

// BenchmarkAblationRunnableFilter compares noise with and without the
// runnable-only accounting rule.
func BenchmarkAblationRunnableFilter(b *testing.B) {
	run := workload.New(workload.LAMMPS(), workload.Options{Duration: sim.Second, Seed: 5})
	tr := run.Execute()
	pids := run.AppPIDs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		on := noise.DefaultOptions()
		on.AppPIDs = pids
		r1 := noise.Analyze(tr, on)
		off := on
		off.RunnableFilter = false
		r2 := noise.Analyze(tr, off)
		b.ReportMetric(float64(r2.TotalNoiseNS)/float64(r1.TotalNoiseNS), "overcount")
	}
}

// BenchmarkAblationGap sweeps the interruption merge gap, reporting the
// interruption count at each setting.
func BenchmarkAblationGap(b *testing.B) {
	run := workload.New(workload.AMG(), workload.Options{Duration: sim.Second, Seed: 5})
	tr := run.Execute()
	pids := run.AppPIDs()
	for _, gap := range []int64{0, 1000, 10000, 100000} {
		b.Run(fmt.Sprintf("gap=%dns", gap), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := noise.DefaultOptions()
				opts.AppPIDs = pids
				opts.GapNS = gap
				r := noise.Analyze(tr, opts)
				b.ReportMetric(float64(len(r.Interruptions)), "interruptions")
			}
		})
	}
}

// ---- Hot-path micro-benchmarks ----

// BenchmarkRingBufferWrite measures the lock-free reserve/commit path.
func BenchmarkRingBufferWrite(b *testing.B) {
	r := trace.NewRing(16, 4096, trace.Overwrite)
	ev := trace.Event{TS: 1, ID: trace.EvIRQEntry}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Write(ev)
	}
}

// BenchmarkRingBufferWriteMutex is the mutex baseline for the ablation.
func BenchmarkRingBufferWriteMutex(b *testing.B) {
	r := trace.NewMutexRing(1 << 30)
	ev := trace.Event{TS: 1, ID: trace.EvIRQEntry}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Write(ev)
	}
}

// BenchmarkRingBufferWriteParallel measures contended lock-free writes.
func BenchmarkRingBufferWriteParallel(b *testing.B) {
	r := trace.NewRing(16, 4096, trace.Overwrite)
	b.RunParallel(func(pb *testing.PB) {
		ev := trace.Event{TS: 1, ID: trace.EvIRQEntry}
		for pb.Next() {
			r.Write(ev)
		}
	})
}

// BenchmarkAnalyze measures analysis throughput in events/op.
func BenchmarkAnalyze(b *testing.B) {
	run := workload.New(workload.AMG(), workload.Options{Duration: sim.Second, Seed: 6})
	tr := run.Execute()
	pids := run.AppPIDs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := noise.DefaultOptions()
		opts.AppPIDs = pids
		opts.KeepDurations = false
		noise.Analyze(tr, opts)
	}
	b.ReportMetric(float64(len(tr.Events)), "events")
}

// BenchmarkSimulate measures full node-simulation throughput.
func BenchmarkSimulate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := workload.New(workload.SPHOT(), workload.Options{Duration: sim.Second, Seed: uint64(i)})
		run.Execute()
	}
}

// BenchmarkCodec measures trace encode+decode throughput.
func BenchmarkCodec(b *testing.B) {
	run := workload.New(workload.SPHOT(), workload.Options{Duration: sim.Second, Seed: 7})
	tr := run.Execute()
	b.SetBytes(int64(len(tr.Events) * trace.EventSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf writeCounter
		if err := trace.Write(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
}

type writeCounter struct{ n int }

func (w *writeCounter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// BenchmarkClusterRun measures the parallel cluster simulation.
func BenchmarkClusterRun(b *testing.B) {
	model := cluster.NoiseModel{RatePerSec: 100, Durations: []int64{10_000, 50_000, 500_000}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Run(context.Background(), cluster.Config{
			Nodes: 256, RanksPerNode: 8,
			Granularity: sim.Millisecond, Iterations: 100,
			Seed: uint64(i), Model: model,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExt2_CNK regenerates the Linux-vs-lightweight-kernel
// comparison, reporting the AMG noise ratio.
func BenchmarkExt2_CNK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Ext2CNK(benchCtx())
		row := r.Data["AMG"][0]
		b.ReportMetric(row[0]/row[1], "linux/cnk")
	}
}

// BenchmarkExt3_Mitigation regenerates the priority-alternation
// mitigation, reporting the preemption-noise reduction factor.
func BenchmarkExt3_Mitigation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Ext3Mitigation(benchCtx())
		pre := r.Data["preemption"][0]
		b.ReportMetric(pre[0]/pre[1], "reduction")
	}
}

// BenchmarkExt4_Resonance regenerates the resonance sweep, reporting
// the fine-grained HF/LF excess ratio.
func BenchmarkExt4_Resonance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Ext4Resonance(benchCtx())
		b.ReportMetric(r.Data["resonance"][0][3], "hf/lf@fine")
	}
}

// BenchmarkInjectionValidation runs the ground-truth injection check:
// the analyzer must recover injected noise exactly.
func BenchmarkInjectionValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := inject.Run([]inject.Spec{
			{Kind: inject.PageFault, Start: sim.Millisecond, Period: 2 * sim.Millisecond, Dur: 3000, Count: 400},
		}, inject.Options{Duration: sim.Second, Seed: uint64(i)})
		r := res.Analyze()
		got := int64(r.Stats(noise.KeyPageFault).Summary.Sum)
		if got != res.Truths[0].TotalNS {
			b.Fatalf("ground truth mismatch: %d vs %d", got, res.Truths[0].TotalNS)
		}
		b.ReportMetric(1, "exact")
	}
}

// BenchmarkExt5_MitigationMatrix regenerates the mitigation comparison,
// reporting the spare-core noise reduction vs plain.
func BenchmarkExt5_MitigationMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Ext5MitigationMatrix(benchCtx())
		plain := r.Data["plain"][0][0]
		spare := r.Data["spare-core"][0][0]
		b.ReportMetric(plain/spare, "plain/spare")
	}
}

// BenchmarkExt6_Collectives regenerates the allreduce-tree experiment,
// reporting the noise share of collective time at the largest scale.
func BenchmarkExt6_Collectives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Ext6Collectives(benchCtx())
		rows := r.Data["collectives"]
		b.ReportMetric(rows[len(rows)-1][3], "noise-share@4096")
	}
}

// BenchmarkExt7_SoftwareTLB regenerates the Shmueli-style TLB
// comparison, reporting the 4K-vs-HugeTLB noise ratio.
func BenchmarkExt7_SoftwareTLB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Ext7SoftwareTLB(benchCtx())
		b.ReportMetric(r.Data["linux-4K"][0][0]/r.Data["linux-huge"][0][0], "4K/huge")
	}
}
