// This root-level test runs the full noisevet production suite over
// every package in the module and fails on any finding, so `go test
// ./...` enforces the same invariants CI does — no separate lint step
// to forget.
package osnoise_test

import (
	"os"
	"testing"

	"osnoise/internal/analysis"
	"osnoise/internal/analysis/noisevet"
)

func TestNoisevetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("noisevet loads and type-checks the whole module; skipped in -short")
	}
	pkgs, fset, err := analysis.Load(".", "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	findings, err := analysis.Check(fset, pkgs, noisevet.Analyzers())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	if cwd, err := os.Getwd(); err == nil {
		analysis.RelativeTo(findings, cwd)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Errorf("noisevet: %d finding(s); fix them or acknowledge with //noisevet:ignore", len(findings))
	}
}
