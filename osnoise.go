// Package osnoise is a quantitative OS-noise measurement and analysis
// library, reproducing "A Quantitative Analysis of OS Noise" (Morari,
// Gioiosa, Wisniewski, Cazorla, Valero — IPDPS 2011).
//
// It bundles:
//
//   - a simulated Linux-like HPC compute node (timer interrupts,
//     softirqs, tasklets, page faults, CFS scheduling, NFS I/O and
//     kernel daemons) that emits LTTng-style tracepoints;
//   - the LTTNG-NOISE tracer analogue: per-CPU lock-free ring buffers
//     with a binary trace format;
//   - the paper's core contribution: an offline analysis producing a
//     quantitative per-event noise description — nested-event
//     attribution, runnable-only accounting, category breakdown,
//     per-event statistics and the synthetic OS noise chart;
//   - workload models of the LLNL Sequoia benchmarks and the FTQ
//     micro-benchmark (plus a native host FTQ);
//   - Paraver, CSV and Matlab exporters and ASCII chart renderers;
//   - a cluster-scale extension measuring noise amplification under
//     bulk-synchronous communication.
//
// Quickstart:
//
//	run := osnoise.NewRun(osnoise.AMG(), osnoise.RunOptions{
//		Duration: 10 * osnoise.Second,
//		Seed:     42,
//	})
//	trace := run.Execute()
//	report := osnoise.Analyze(trace, run.AnalysisOptions())
//	fmt.Print(report.BreakdownString())
//
// The cmd/ directory provides ready-made binaries: lttng-noise (trace a
// workload and export it), noisebench (regenerate every table and
// figure of the paper), noisereport (analyse a saved trace) and ftq
// (the native micro-benchmark).
package osnoise

import (
	"io"

	"osnoise/internal/chart"
	"osnoise/internal/chrometrace"
	"osnoise/internal/cluster"
	"osnoise/internal/ftq"
	"osnoise/internal/kernel"
	"osnoise/internal/noise"
	"osnoise/internal/paraver"
	"osnoise/internal/sim"
	"osnoise/internal/trace"
	"osnoise/internal/workload"
)

// Time and duration units of the virtual clock (nanoseconds).
type (
	// Time is a point in virtual time.
	Time = sim.Time
	// Duration is a span of virtual time.
	Duration = sim.Duration
)

// Common durations.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Core analysis types.
type (
	// Report is a complete noise analysis of one trace.
	Report = noise.Report
	// AnalysisOptions tunes the analysis (nesting attribution, the
	// runnable filter, interruption grouping).
	AnalysisOptions = noise.Options
	// Key identifies one kernel activity type.
	Key = noise.Key
	// Category is the paper's five-way noise classification.
	Category = noise.Category
	// Span is one analysed kernel activity occurrence.
	Span = noise.Span
	// Interruption is a group of adjacent activities — one external spike.
	Interruption = noise.Interruption
	// Component is one activity inside an interruption.
	Component = noise.Component
)

// Activity keys (a selection; see internal/noise for the full set).
const (
	KeyTimerIRQ     = noise.KeyTimerIRQ
	KeyTimerSoftIRQ = noise.KeyTimerSoftIRQ
	KeyPageFault    = noise.KeyPageFault
	KeySchedule     = noise.KeySchedule
	KeyRCU          = noise.KeyRCU
	KeyRebalance    = noise.KeyRebalance
	KeyNetIRQ       = noise.KeyNetIRQ
	KeyNetRx        = noise.KeyNetRx
	KeyNetTx        = noise.KeyNetTx
	KeyPreemption   = noise.KeyPreemption
	KeySyscall      = noise.KeySyscall
)

// Noise categories.
const (
	CatPeriodic   = noise.CatPeriodic
	CatPageFault  = noise.CatPageFault
	CatScheduling = noise.CatScheduling
	CatPreemption = noise.CatPreemption
	CatIO         = noise.CatIO
	CatService    = noise.CatService
)

// Tracing types.
type (
	// Trace is a collected event stream.
	Trace = trace.Trace
	// Event is one trace record.
	Event = trace.Event
	// Session is a tracing session (per-CPU lock-free channels).
	Session = trace.Session
)

// Workload types.
type (
	// Profile describes an application workload.
	Profile = workload.Profile
	// Run binds a profile to a simulated node.
	Run = workload.Run
	// RunOptions tunes run construction.
	RunOptions = workload.Options
	// NodeConfig configures the simulated compute node directly.
	NodeConfig = kernel.Config
	// Node is the simulated compute node.
	Node = kernel.Node
)

// Sequoia benchmark profiles (calibrated to the paper's Tables I–VI).
var (
	AMG        = workload.AMG
	IRS        = workload.IRS
	LAMMPS     = workload.LAMMPS
	SPHOT      = workload.SPHOT
	UMT        = workload.UMT
	FTQProfile = workload.FTQProfile
	Sequoia    = workload.Sequoia
	ByName     = workload.ByName
	// CNK derives the lightweight-kernel (Compute Node Kernel) variant
	// of a profile: tickless, prefaulted memory, function-shipped I/O.
	CNK = workload.CNK
	// SoftwareTLB derives a Blue Gene/L-style software-managed-TLB
	// variant (4 KiB pages or HugeTLB).
	SoftwareTLB = workload.SoftwareTLB
	// NewColocated places several applications on one shared node.
	NewColocated = workload.NewColocated
	// DetectPeriods finds periodic noise sources by autocorrelation.
	DetectPeriods = noise.DetectPeriods
)

// ColocatedRun hosts several applications on one node.
type ColocatedRun = workload.ColocatedRun

// NewRun builds a workload run on a fresh simulated node.
func NewRun(p *Profile, opts RunOptions) *Run { return workload.New(p, opts) }

// Analyze runs the quantitative noise analysis over a trace.
func Analyze(tr *Trace, opts AnalysisOptions) *Report { return noise.Analyze(tr, opts) }

// DefaultAnalysisOptions returns the paper's analysis configuration.
func DefaultAnalysisOptions() AnalysisOptions { return noise.DefaultOptions() }

// FTQ types and entry points.
type (
	// FTQConfig parameterises a simulated FTQ run.
	FTQConfig = ftq.Config
	// FTQResult is a completed simulated FTQ run.
	FTQResult = ftq.Result
)

// RunFTQ executes the FTQ micro-benchmark on the simulated node.
func RunFTQ(cfg FTQConfig) *FTQResult { return ftq.Execute(cfg) }

// DefaultFTQConfig returns the Figure-1 FTQ configuration.
func DefaultFTQConfig(seed uint64) FTQConfig { return ftq.DefaultConfig(seed) }

// Trace I/O.
var (
	// WriteTrace encodes a trace to a writer (binary LTTNOISE format).
	WriteTrace = trace.Write
	// ReadTrace decodes a fixed-format trace.
	ReadTrace = trace.Read
	// WriteTraceCompressed encodes with delta+varint compression (the
	// run-time data-size reduction the paper's §III-B calls for).
	WriteTraceCompressed = trace.WriteCompressed
	// ReadAnyTrace sniffs and decodes either trace format.
	ReadAnyTrace = trace.ReadAny
)

// Trace-input error classification. The readers never panic on
// untrusted bytes; failures caused by the input match one of these
// sentinel families under errors.Is.
var (
	// ErrTraceCorrupt is the family of errors reporting bytes that
	// contradict the trace format (bad magic, truncation, lying
	// headers). Errors in this family carry the byte offset of the
	// offending field when it is known.
	ErrTraceCorrupt = trace.ErrCorrupt
	// ErrTraceLimit is the family of errors reporting well-formed input
	// that exceeds a documented format limit (CPUs, process table).
	ErrTraceLimit = trace.ErrLimit
	// IsTraceInputError reports whether err blames the trace bytes —
	// either family — rather than the reading machinery.
	IsTraceInputError = trace.IsInputError
)

// ExportChromeTrace writes the analysis in Chrome Trace Event Format
// (viewable in ui.perfetto.dev or chrome://tracing).
func ExportChromeTrace(w io.Writer, r *Report) error { return chrometrace.Export(w, r) }

// Fleet helpers: run the same workload on many nodes in parallel (the
// multi-node tracing scenario of the paper's §III-B).
type (
	// Fleet holds per-node analyses of a multi-node run.
	Fleet = workload.Fleet
	// FleetOptions configures a fleet run.
	FleetOptions = workload.FleetOptions
)

// RunFleet executes a workload on many independent nodes concurrently.
var RunFleet = workload.RunFleet

// ExportParaver writes the analysis as a Paraver .prv trace body.
func ExportParaver(w io.Writer, r *Report, durationNS int64) error {
	return paraver.Export(w, r, durationNS)
}

// ExportParaverPCF writes the matching Paraver configuration file.
func ExportParaverPCF(w io.Writer) error { return paraver.ExportPCF(w) }

// ExportParaverROW writes the matching Paraver row-label file.
func ExportParaverROW(w io.Writer, cpus int) error { return paraver.ExportROW(w, cpus) }

// Cluster extension.
type (
	// ClusterConfig describes a cluster-scale run.
	ClusterConfig = cluster.Config
	// ClusterResult summarises one.
	ClusterResult = cluster.Result
	// NoiseModel samples per-rank noise from a single-node analysis.
	NoiseModel = cluster.NoiseModel
)

// Cluster entry points.
var (
	// RunCluster simulates the bulk-synchronous application at scale.
	// It honours context cancellation and returns all rank errors
	// joined; see cluster.Run.
	RunCluster = cluster.Run
	// NoiseModelFromReport builds a rank noise model from an analysis.
	NoiseModelFromReport = cluster.FromReport
	// NoiseModelExcluding builds one excluding some noise categories.
	NoiseModelExcluding = cluster.FromReportExcluding
)

// ASCII rendering helpers.
var (
	// RenderTimeline draws the execution-trace view of a report.
	RenderTimeline = chart.Timeline
	// RenderBreakdown draws the Figure-3-style category bars.
	RenderBreakdown = chart.Breakdown
	// RenderSpikes draws an FTQ-style spike series.
	RenderSpikes = chart.Spikes
)
