package sim

import (
	"math"
	"testing"
	"testing/quick"
)

// sampleMean draws n samples and returns their mean.
func sampleMean(d Dist, seed uint64, n int) float64 {
	r := NewRNG(seed)
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(r))
	}
	return sum / float64(n)
}

func TestConstant(t *testing.T) {
	d := Constant(1500)
	r := NewRNG(1)
	for i := 0; i < 10; i++ {
		if got := d.Sample(r); got != 1500 {
			t.Fatalf("Constant sample = %d", got)
		}
	}
	if d.Mean() != 1500 {
		t.Fatalf("Constant mean = %v", d.Mean())
	}
}

func TestUniformBoundsAndMean(t *testing.T) {
	d := Uniform{Lo: 100, Hi: 200}
	r := NewRNG(2)
	for i := 0; i < 10000; i++ {
		v := d.Sample(r)
		if v < 100 || v > 200 {
			t.Fatalf("Uniform sample %d out of [100,200]", v)
		}
	}
	if m := sampleMean(d, 3, 100000); math.Abs(m-150) > 2 {
		t.Fatalf("Uniform empirical mean %v, want ~150", m)
	}
}

func TestUniformDegenerate(t *testing.T) {
	d := Uniform{Lo: 50, Hi: 50}
	if got := d.Sample(NewRNG(1)); got != 50 {
		t.Fatalf("degenerate Uniform = %d", got)
	}
}

func TestLogNormalMeanMatchesAnalytic(t *testing.T) {
	d := LogNormal{Median: 2500, Sigma: 0.5}
	analytic := d.Mean()
	empirical := sampleMean(d, 4, 300000)
	if math.Abs(empirical-analytic)/analytic > 0.03 {
		t.Fatalf("LogNormal empirical mean %v, analytic %v", empirical, analytic)
	}
}

func TestLogNormalMedian(t *testing.T) {
	d := LogNormal{Median: 2500, Sigma: 0.7}
	med := Quantile(d, NewRNG(5), 100001, 0.5)
	if math.Abs(float64(med)-2500)/2500 > 0.05 {
		t.Fatalf("LogNormal median %v, want ~2500", med)
	}
}

func TestParetoTail(t *testing.T) {
	d := Pareto{Min: 1000, Alpha: 2}
	r := NewRNG(6)
	var over int
	for i := 0; i < 100000; i++ {
		v := d.Sample(r)
		if v < 1000 {
			t.Fatalf("Pareto sample %d below scale", v)
		}
		if v > 10000 {
			over++
		}
	}
	// P(X > 10*min) = (1/10)^2 = 1%.
	frac := float64(over) / 100000
	if frac < 0.005 || frac > 0.02 {
		t.Fatalf("Pareto tail fraction %v, want ~0.01", frac)
	}
}

func TestParetoMeanInfiniteForAlphaLE1(t *testing.T) {
	if !math.IsInf(Pareto{Min: 10, Alpha: 1}.Mean(), 1) {
		t.Fatal("Pareto alpha<=1 mean should be +Inf")
	}
}

func TestExponentialMean(t *testing.T) {
	d := Exponential{MeanDur: 4000}
	if m := sampleMean(d, 7, 200000); math.Abs(m-4000)/4000 > 0.02 {
		t.Fatalf("Exponential empirical mean %v, want ~4000", m)
	}
}

func TestShifted(t *testing.T) {
	d := Shifted{Base: Constant(100), Off: 250}
	if got := d.Sample(NewRNG(1)); got != 350 {
		t.Fatalf("Shifted sample = %d", got)
	}
	if d.Mean() != 350 {
		t.Fatalf("Shifted mean = %v", d.Mean())
	}
}

func TestClamped(t *testing.T) {
	d := Clamped{Base: Pareto{Min: 1000, Alpha: 0.5}, Lo: 1200, Hi: 5000}
	r := NewRNG(8)
	for i := 0; i < 10000; i++ {
		v := d.Sample(r)
		if v < 1200 || v > 5000 {
			t.Fatalf("Clamped sample %d outside [1200,5000]", v)
		}
	}
}

func TestClampedNoUpperBound(t *testing.T) {
	d := Clamped{Base: Constant(9000), Lo: 0, Hi: 0}
	if got := d.Sample(NewRNG(1)); got != 9000 {
		t.Fatalf("Hi=0 should mean unbounded, got %d", got)
	}
}

func TestMixtureWeights(t *testing.T) {
	m := NewMixture(
		Component{Weight: 3, Dist: Constant(10)},
		Component{Weight: 1, Dist: Constant(50)},
	)
	r := NewRNG(9)
	counts := map[Duration]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[m.Sample(r)]++
	}
	frac10 := float64(counts[10]) / n
	if math.Abs(frac10-0.75) > 0.01 {
		t.Fatalf("mixture branch fraction %v, want ~0.75", frac10)
	}
	if want := 0.75*10 + 0.25*50; math.Abs(m.Mean()-want) > 1e-9 {
		t.Fatalf("mixture mean %v, want %v", m.Mean(), want)
	}
}

func TestMixturePanicsOnZeroWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-weight mixture did not panic")
		}
	}()
	NewMixture(Component{Weight: 0, Dist: Constant(1)})
}

func TestEmpirical(t *testing.T) {
	d := Empirical{100, 200, 300}
	r := NewRNG(10)
	seen := map[Duration]bool{}
	for i := 0; i < 1000; i++ {
		v := d.Sample(r)
		if v != 100 && v != 200 && v != 300 {
			t.Fatalf("Empirical sample %d not in set", v)
		}
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Empirical hit %d values, want 3", len(seen))
	}
	if d.Mean() != 200 {
		t.Fatalf("Empirical mean %v", d.Mean())
	}
}

func TestEmpiricalEmpty(t *testing.T) {
	var d Empirical
	if d.Sample(NewRNG(1)) != 0 || d.Mean() != 0 {
		t.Fatal("empty Empirical should sample 0")
	}
}

// Property: no distribution in the library ever yields a negative duration.
func TestNoNegativeSamples(t *testing.T) {
	dists := []Dist{
		Constant(0),
		Uniform{Lo: 0, Hi: 10},
		LogNormal{Median: 100, Sigma: 2},
		Pareto{Min: 1, Alpha: 0.3},
		Exponential{MeanDur: 100},
		Shifted{Base: Constant(0), Off: 0},
		Clamped{Base: LogNormal{Median: 10, Sigma: 3}, Lo: 0, Hi: 0},
		NewMixture(Component{Weight: 1, Dist: Constant(5)}),
		Empirical{0, 1},
	}
	if err := quick.Check(func(seed uint64, idx uint8) bool {
		d := dists[int(idx)%len(dists)]
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			if d.Sample(r) < 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileOrdering(t *testing.T) {
	d := LogNormal{Median: 1000, Sigma: 1}
	q50 := Quantile(d, NewRNG(11), 20001, 0.5)
	q99 := Quantile(d, NewRNG(11), 20001, 0.99)
	if q50 >= q99 {
		t.Fatalf("q50 %v >= q99 %v", q50, q99)
	}
}
