package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("streams diverged at %d: %d != %d", i, x, y)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs of 100", same)
	}
}

func TestRNGSplitIndependent(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	// The child must be reproducible from the same parent state.
	parent2 := NewRNG(7)
	child2 := parent2.Split()
	for i := 0; i < 100; i++ {
		if child.Uint64() != child2.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(4)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(6)
	var sum, sumsq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(8)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(9)
	if err := quick.Check(func(n uint8) bool {
		size := int(n%64) + 1
		p := r.Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
