package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Common durations, mirroring time.Duration constants but in virtual time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// String renders the time with an adaptive unit, e.g. "2.178µs" or "75ms".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return trimZero(fmt.Sprintf("%.3f", float64(t)/float64(Microsecond))) + "µs"
	case t < Second:
		return trimZero(fmt.Sprintf("%.3f", float64(t)/float64(Millisecond))) + "ms"
	default:
		return trimZero(fmt.Sprintf("%.3f", float64(t)/float64(Second))) + "s"
	}
}

// Scale multiplies a duration by a dimensionless count. It is the
// named conversion helper the timeunits analyzer steers Time×Time
// products toward: the signature keeps the count an int, so the result
// provably stays in nanoseconds.
func Scale[N ~int | ~int32 | ~int64](d Duration, n N) Duration {
	return d * Duration(n)
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

func trimZero(s string) string {
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}
