package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdersByTime(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{50, 10, 30, 20, 40} {
		at := at
		e.At(at, PrioKernel, func(now Time) { got = append(got, now) })
	}
	e.RunUntilIdle()
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatalf("events out of order: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestEngineSameTimePriority(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(100, PrioTask, func(Time) { order = append(order, "task") })
	e.At(100, PrioInterrupt, func(Time) { order = append(order, "irq") })
	e.At(100, PrioKernel, func(Time) { order = append(order, "kernel") })
	e.RunUntilIdle()
	want := []string{"irq", "kernel", "task"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestEngineSameTimeSamePriorityFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 20; i++ {
		i := i
		e.At(5, PrioKernel, func(Time) { order = append(order, i) })
	}
	e.RunUntilIdle()
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-priority events not FIFO: %v", order)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ref := e.At(10, PrioKernel, func(Time) { fired = true })
	if !ref.Pending() {
		t.Fatal("event should be pending")
	}
	if !ref.Cancel() {
		t.Fatal("Cancel should report true for pending event")
	}
	if ref.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	e.RunUntilIdle()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineHorizon(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.At(10, 0, func(now Time) { fired = append(fired, now) })
	e.At(100, 0, func(now Time) { fired = append(fired, now) })
	end := e.Run(50)
	if len(fired) != 1 || fired[0] != 10 {
		t.Fatalf("fired %v, want [10]", fired)
	}
	if end != 50 {
		t.Fatalf("Run returned %v, want horizon 50", end)
	}
	// The event beyond the horizon must still be pending.
	e.Run(200)
	if len(fired) != 2 {
		t.Fatalf("second Run fired %v", fired)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.At(i, 0, func(Time) {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.RunUntilIdle()
	if count != 3 {
		t.Fatalf("Stop did not halt engine: fired %d", count)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, 0, func(now Time) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, 0, func(Time) {})
	})
	e.RunUntilIdle()
}

func TestEngineAfterClampsNegative(t *testing.T) {
	e := NewEngine()
	fired := Time(-1)
	e.At(100, 0, func(Time) {
		e.After(-5, 0, func(now Time) { fired = now })
	})
	e.RunUntilIdle()
	if fired != 100 {
		t.Fatalf("After(-5) fired at %v, want 100", fired)
	}
}

func TestEngineCascade(t *testing.T) {
	// Events scheduled from handlers execute in causal order.
	e := NewEngine()
	var depth int
	var maxDepth int
	var schedule func(d int)
	schedule = func(d int) {
		e.After(1, 0, func(Time) {
			depth = d
			if d > maxDepth {
				maxDepth = d
			}
			if d < 100 {
				schedule(d + 1)
			}
		})
	}
	schedule(1)
	e.RunUntilIdle()
	if maxDepth != 100 || depth != 100 {
		t.Fatalf("cascade reached depth %d", maxDepth)
	}
	if e.Now() != 100 {
		t.Fatalf("clock at %v, want 100", e.Now())
	}
}

// Property: any batch of events fires exactly once, in nondecreasing time
// order, regardless of insertion order.
func TestQueueProperty(t *testing.T) {
	if err := quick.Check(func(times []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, at := range times {
			at := Time(at)
			e.At(at, 0, func(now Time) { fired = append(fired, now) })
		}
		e.RunUntilIdle()
		if len(fired) != len(times) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i-1] > fired[i] {
				return false
			}
		}
		// Multiset equality with inputs.
		want := make([]int, len(times))
		got := make([]int, len(fired))
		for i, v := range times {
			want[i] = int(v)
		}
		for i, v := range fired {
			got[i] = int(v)
		}
		sort.Ints(want)
		sort.Ints(got)
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0ns"},
		{999, "999ns"},
		{2178, "2.178µs"},
		{1842, "1.842µs"},
		{75 * Millisecond, "75ms"},
		{2500000, "2.5ms"},
		{3 * Second, "3s"},
		{-2178, "-2.178µs"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if s := (2 * Second).Seconds(); s != 2 {
		t.Fatalf("Seconds = %v", s)
	}
	if us := (1500 * Nanosecond).Micros(); us != 1.5 {
		t.Fatalf("Micros = %v", us)
	}
}

// Regression: a cancelled event at the queue head must not swallow the
// next valid event when the engine peeks for the horizon check.
func TestCancelledHeadDoesNotEatNextEvent(t *testing.T) {
	e := NewEngine()
	ref := e.At(10, PrioKernel, func(Time) { t.Error("cancelled event fired") })
	fired := false
	e.At(20, PrioKernel, func(Time) { fired = true })
	ref.Cancel()
	e.Run(100)
	if !fired {
		t.Fatal("valid event after cancelled head never fired")
	}
}
