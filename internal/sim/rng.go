// Package sim provides the deterministic discrete-event simulation engine
// that underpins the simulated compute node: a nanosecond virtual clock, a
// stable priority event queue, a seedable random number generator, and a
// small library of duration distributions used to model kernel activity
// costs.
//
// Everything in this package is deterministic: the same seed and the same
// schedule of calls produce bit-identical results, which the test suite and
// the experiment harness rely on.
package sim

import "math"

// RNG is a deterministic pseudo-random number generator based on
// xoshiro256++ seeded through splitmix64. It is not safe for concurrent
// use; each simulated entity owns its own stream (obtained via Split) so
// that adding events to one entity does not perturb another.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64, following
// the reference initialisation for xoshiro256++.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent stream from the current one. The derived
// stream is seeded from the parent's output, so distinct calls yield
// distinct streams while preserving determinism.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[0]+r.s[3], 23) + r.s[0]
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n called with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
