package sim

import "fmt"

// Priorities order events that fire at the same virtual instant. Hardware
// comes before software: an interrupt asserted at time t is observed
// before a timer callback scheduled for t.
const (
	PrioInterrupt = 0
	PrioKernel    = 10
	PrioTask      = 20
	PrioTeardown  = 100
)

// Engine drives a single simulated node: it owns the virtual clock and the
// event queue. Engine is not safe for concurrent use; multi-node
// simulations run one Engine per goroutine (see internal/cluster).
type Engine struct {
	now     Time
	queue   Queue
	stopped bool
	fired   uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// At schedules fn at the absolute virtual time at. Scheduling in the past
// panics: it would silently corrupt causality.
func (e *Engine) At(at Time, priority int, fn Handler) EventRef {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	return e.queue.Push(at, priority, fn)
}

// After schedules fn d nanoseconds from now.
func (e *Engine) After(d Duration, priority int, fn Handler) EventRef {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, priority, fn)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event. It reports false when
// the queue is empty.
func (e *Engine) Step() bool {
	ev := e.queue.Pop()
	if ev == nil {
		return false
	}
	if ev.at < e.now {
		panic("sim: event queue produced time travel")
	}
	e.now = ev.at
	e.fired++
	ev.fn(e.now)
	return true
}

// Run executes events until the queue drains, Stop is called, or the
// clock passes horizon (inclusive). It returns the final virtual time.
func (e *Engine) Run(horizon Time) Time {
	e.stopped = false
	for !e.stopped {
		at, ok := e.queue.PeekTime()
		if !ok || at > horizon {
			break
		}
		e.Step()
	}
	if e.now < horizon && !e.stopped {
		e.now = horizon
	}
	return e.now
}

// RunUntilIdle executes events until none remain or Stop is called.
func (e *Engine) RunUntilIdle() Time {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// Pending returns the number of events currently queued (including
// cancelled entries that have not yet been drained).
func (e *Engine) Pending() int { return e.queue.Len() }
