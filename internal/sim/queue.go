package sim

// Handler is a callback invoked when a scheduled event fires.
type Handler func(now Time)

// event is an entry in the queue. Events with equal time fire in
// (priority, seq) order so that simulation results are independent of heap
// internals.
type event struct {
	at       Time
	priority int
	seq      uint64
	fn       Handler
	canceled bool
	index    int // position in the heap, -1 when popped
}

// EventRef is an opaque handle to a scheduled event, usable to cancel it.
type EventRef struct{ ev *event }

// Cancel marks the event so that it will not fire. Cancelling an already
// fired or already cancelled event is a no-op. It reports whether the
// event was still pending.
func (r EventRef) Cancel() bool {
	if r.ev == nil || r.ev.canceled || r.ev.index == -1 {
		return false
	}
	r.ev.canceled = true
	return true
}

// Pending reports whether the event is still scheduled to fire.
func (r EventRef) Pending() bool {
	return r.ev != nil && !r.ev.canceled && r.ev.index != -1
}

// Queue is a stable min-heap of timed events. The zero value is ready to
// use.
type Queue struct {
	heap []*event
	seq  uint64
}

// Len returns the number of events in the queue, including cancelled ones
// not yet drained.
func (q *Queue) Len() int { return len(q.heap) }

// Push schedules fn at time at with the given priority (lower fires
// first among events at the same instant).
func (q *Queue) Push(at Time, priority int, fn Handler) EventRef {
	q.seq++
	ev := &event{at: at, priority: priority, seq: q.seq, fn: fn}
	q.heap = append(q.heap, ev)
	ev.index = len(q.heap) - 1
	q.up(ev.index)
	return EventRef{ev}
}

// popHead removes and returns the heap head regardless of cancellation.
func (q *Queue) popHead() *event {
	ev := q.heap[0]
	n := len(q.heap) - 1
	q.swap(0, n)
	q.heap = q.heap[:n]
	ev.index = -1
	if n > 0 {
		q.down(0)
	}
	return ev
}

// Pop removes and returns the earliest non-cancelled event, or nil if the
// queue is empty.
func (q *Queue) Pop() *event {
	for len(q.heap) > 0 {
		if ev := q.popHead(); !ev.canceled {
			return ev
		}
	}
	return nil
}

// PeekTime returns the firing time of the earliest pending event. The
// second result is false if the queue holds no pending events. Cancelled
// events at the head are drained (and only those).
func (q *Queue) PeekTime() (Time, bool) {
	for len(q.heap) > 0 && q.heap[0].canceled {
		q.popHead()
	}
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0].at, true
}

func (q *Queue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].index = i
	q.heap[j].index = j
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}
