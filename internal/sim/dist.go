package sim

import (
	"fmt"
	"math"
	"sort"
)

// Dist models the duration of a class of kernel activity. Implementations
// must be deterministic functions of the supplied RNG stream.
type Dist interface {
	// Sample draws one duration. Implementations never return a negative
	// duration.
	Sample(r *RNG) Duration
	// Mean returns the analytic (or configured) mean of the distribution,
	// used for calibration checks and documentation.
	Mean() float64
}

// Constant always returns the same duration.
type Constant Duration

// Sample implements Dist.
func (c Constant) Sample(*RNG) Duration { return Duration(c) }

// Mean implements Dist.
func (c Constant) Mean() float64 { return float64(c) }

// Uniform draws uniformly from [Lo, Hi].
type Uniform struct {
	Lo, Hi Duration // inclusive bounds of the draw
}

// Sample implements Dist.
func (u Uniform) Sample(r *RNG) Duration {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + Duration(r.Int63n(int64(u.Hi-u.Lo)+1))
}

// Mean implements Dist.
func (u Uniform) Mean() float64 { return float64(u.Lo+u.Hi) / 2 }

// LogNormal draws from a log-normal distribution parameterised by the
// median (exp(mu)) and sigma of the underlying normal. Log-normals are the
// canonical model for interrupt-handler service times: sharply peaked with
// a multiplicative tail.
type LogNormal struct {
	Median Duration // exp(mu)
	Sigma  float64  // sigma of the underlying normal
}

// Sample implements Dist.
func (l LogNormal) Sample(r *RNG) Duration {
	v := float64(l.Median) * math.Exp(l.Sigma*r.NormFloat64())
	if v < 0 {
		return 0
	}
	return Duration(v)
}

// Mean implements Dist.
func (l LogNormal) Mean() float64 {
	return float64(l.Median) * math.Exp(l.Sigma*l.Sigma/2)
}

// Pareto draws from a (type-I) Pareto distribution with scale Min and
// shape Alpha. Used for the heavy tails of page-fault and softirq costs.
type Pareto struct {
	Min   Duration // scale: the smallest drawable value
	Alpha float64  // shape: smaller alpha, heavier tail
}

// Sample implements Dist.
func (p Pareto) Sample(r *RNG) Duration {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return Duration(float64(p.Min) / math.Pow(u, 1/p.Alpha))
}

// Mean implements Dist.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return float64(p.Min) * p.Alpha / (p.Alpha - 1)
}

// Exponential draws from an exponential distribution with the given mean.
// Used for inter-arrival gaps of stochastic events (page faults, I/O).
type Exponential struct {
	MeanDur Duration // mean of the distribution
}

// Sample implements Dist.
func (e Exponential) Sample(r *RNG) Duration {
	return Duration(float64(e.MeanDur) * r.ExpFloat64())
}

// Mean implements Dist.
func (e Exponential) Mean() float64 { return float64(e.MeanDur) }

// Shifted adds a fixed offset to an underlying distribution; useful to
// impose a hard minimum cost (the architectural floor of an exception).
type Shifted struct {
	Base Dist     // underlying distribution
	Off  Duration // fixed amount added to every sample
}

// Sample implements Dist.
func (s Shifted) Sample(r *RNG) Duration { return s.Off + s.Base.Sample(r) }

// Mean implements Dist.
func (s Shifted) Mean() float64 { return float64(s.Off) + s.Base.Mean() }

// Clamped restricts an underlying distribution to [Lo, Hi]. Samples
// outside the range are clamped, not redrawn, which keeps sampling O(1)
// and deterministic in RNG consumption.
type Clamped struct {
	Base   Dist     // underlying distribution
	Lo, Hi Duration // clamp bounds; Hi of 0 means no upper bound
}

// Sample implements Dist.
func (c Clamped) Sample(r *RNG) Duration {
	v := c.Base.Sample(r)
	if v < c.Lo {
		return c.Lo
	}
	if c.Hi > 0 && v > c.Hi {
		return c.Hi
	}
	return v
}

// Mean implements Dist.
func (c Clamped) Mean() float64 { return c.Base.Mean() }

// Component is one branch of a Mixture.
type Component struct {
	Weight float64 // relative weight among the mixture branches
	Dist   Dist    // distribution drawn when this branch is picked
}

// Mixture draws from one of several component distributions with the
// given relative weights. This models multi-modal costs such as the AMG
// page-fault histogram (minor-fault peak, zeroed-page peak, reclaim tail).
type Mixture struct {
	Components []Component // the weighted branches
	total      float64
}

// NewMixture builds a mixture, validating weights.
func NewMixture(cs ...Component) *Mixture {
	m := &Mixture{Components: cs}
	for _, c := range cs {
		if c.Weight < 0 {
			panic(fmt.Sprintf("sim: negative mixture weight %v", c.Weight))
		}
		m.total += c.Weight
	}
	if m.total == 0 {
		panic("sim: mixture with zero total weight")
	}
	return m
}

// Sample implements Dist.
func (m *Mixture) Sample(r *RNG) Duration {
	x := r.Float64() * m.total
	for _, c := range m.Components {
		if x < c.Weight {
			return c.Dist.Sample(r)
		}
		x -= c.Weight
	}
	return m.Components[len(m.Components)-1].Dist.Sample(r)
}

// Mean implements Dist.
func (m *Mixture) Mean() float64 {
	var sum float64
	for _, c := range m.Components {
		sum += c.Weight / m.total * c.Dist.Mean()
	}
	return sum
}

// Empirical draws from a fixed set of values with equal probability.
// Useful in tests to force exact durations through the pipeline.
type Empirical []Duration

// Sample implements Dist.
func (e Empirical) Sample(r *RNG) Duration {
	if len(e) == 0 {
		return 0
	}
	return e[r.Intn(len(e))]
}

// Mean implements Dist.
func (e Empirical) Mean() float64 {
	if len(e) == 0 {
		return 0
	}
	var sum float64
	for _, v := range e {
		sum += float64(v)
	}
	return sum / float64(len(e))
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of a distribution by
// drawing n samples. It is used by calibration tests, not by the
// simulator itself.
func Quantile(d Dist, r *RNG, n int, q float64) Duration {
	samples := make([]Duration, n)
	for i := range samples {
		samples[i] = d.Sample(r)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := int(q * float64(n-1))
	return samples[idx]
}
