package analysis

import (
	"go/parser"
	"go/token"
	"testing"
)

func parseForDirectives(t *testing.T, src string) (*token.FileSet, []*ignoreDirective) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, ignoreDirectives(fset, f)
}

func TestIgnoreDirectives(t *testing.T) {
	src := `package x

func f() {
	_ = 1 //noisevet:ignore
	_ = 2 //noisevet:ignore timeunits
	//noisevet:ignore determinism, exhaustive
	_ = 3
	_ = 4 // plain comment
}
`
	_, dirs := parseForDirectives(t, src)
	if len(dirs) != 3 {
		t.Fatalf("got %d directives, want 3", len(dirs))
	}

	cases := []struct {
		analyzer string
		line     int
		want     bool
	}{
		{"anything", 4, true},     // bare directive suppresses all analyzers
		{"timeunits", 5, true},    // named analyzer, same line
		{"determinism", 5, false}, // a different analyzer is not covered
		{"determinism", 7, true},  // directive on the line above
		{"exhaustive", 7, true},   // second name in the list
		{"timeunits", 7, false},
		{"anything", 8, false}, // plain comments are not directives
	}
	for _, c := range cases {
		if got := suppressed(dirs, c.analyzer, c.line); got != c.want {
			t.Errorf("suppressed(%q, line %d) = %v, want %v", c.analyzer, c.line, got, c.want)
		}
	}
}

// TestIgnoreDirectiveEdgeCases pins down the deliberate limits of the
// directive syntax: only line comments with the exact prefix count, a
// trailing directive covers its own line only, and a standalone
// directive covers exactly the next line — a blank line breaks the
// link.
func TestIgnoreDirectiveEdgeCases(t *testing.T) {
	src := `package x

func f() {
	_ = 1 /*noisevet:ignore*/
	_ = 2 // noisevet:ignore
	_ = 3 //noisevet:ignore
	_ = 4
	//noisevet:ignore

	_ = 5
	//noisevet:ignore timeunits , determinism
	_ = 6
}
`
	_, dirs := parseForDirectives(t, src)
	// Only lines 6, 8, and 11 carry directives: the block comment on
	// line 4 and the spaced "// noisevet:ignore" on line 5 do not parse
	// as directives.
	if len(dirs) != 3 {
		t.Fatalf("got %d directives (%+v), want 3", len(dirs), dirs)
	}

	cases := []struct {
		analyzer string
		line     int
		want     bool
	}{
		{"anything", 4, false},    // block comments are not directives
		{"anything", 5, false},    // space between // and noisevet: not a directive
		{"anything", 6, true},     // trailing directive covers its own line
		{"anything", 7, false},    // ...but not the line below it
		{"anything", 8, true},     // standalone directive covers its own (comment-only) line
		{"anything", 9, true},     // ...and the line directly below (blank here)
		{"anything", 10, false},   // ...but not two lines down: blank line breaks the link
		{"timeunits", 12, true},   // names survive odd spacing around the comma
		{"determinism", 12, true}, // second name in the list
		{"writecheck", 12, false}, // unlisted analyzer stays reported
	}
	for _, c := range cases {
		if got := suppressed(dirs, c.analyzer, c.line); got != c.want {
			t.Errorf("suppressed(%q, line %d) = %v, want %v", c.analyzer, c.line, got, c.want)
		}
	}
}

// TestSuppressedCountsHits pins the stale-detection bookkeeping: a
// directive that covers a finding records the hit, one that never
// matches stays at zero.
func TestSuppressedCountsHits(t *testing.T) {
	src := `package x

func f() {
	_ = 1 //noisevet:ignore
	_ = 2 //noisevet:ignore timeunits
}
`
	_, dirs := parseForDirectives(t, src)
	if len(dirs) != 2 {
		t.Fatalf("got %d directives, want 2", len(dirs))
	}
	if !suppressed(dirs, "anything", 4) {
		t.Fatal("line 4 should be suppressed")
	}
	if suppressed(dirs, "determinism", 5) {
		t.Fatal("line 5 lists only timeunits; determinism must stay reported")
	}
	if dirs[0].hits != 1 {
		t.Errorf("bare directive hits = %d, want 1", dirs[0].hits)
	}
	if dirs[1].hits != 0 {
		t.Errorf("unmatched directive hits = %d, want 0", dirs[1].hits)
	}
}

func TestPathPrefixMatch(t *testing.T) {
	cases := []struct {
		prefix, path string
		want         bool
	}{
		{"a/b", "a/b", true},
		{"a/b", "a/b/c", true},
		{"a/b", "a/bc", false},
		{"a/b", "a", false},
		{"osnoise/internal/sim", "osnoise/internal/simulator", false},
	}
	for _, c := range cases {
		if got := PathPrefixMatch(c.prefix, c.path); got != c.want {
			t.Errorf("PathPrefixMatch(%q, %q) = %v, want %v", c.prefix, c.path, got, c.want)
		}
	}
}
