package analysis

import (
	"go/parser"
	"go/token"
	"testing"
)

func parseForDirectives(t *testing.T, src string) (*token.FileSet, []ignoreDirective) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, ignoreDirectives(fset, f)
}

func TestIgnoreDirectives(t *testing.T) {
	src := `package x

func f() {
	_ = 1 //noisevet:ignore
	_ = 2 //noisevet:ignore timeunits
	//noisevet:ignore determinism, exhaustive
	_ = 3
	_ = 4 // plain comment
}
`
	_, dirs := parseForDirectives(t, src)
	if len(dirs) != 3 {
		t.Fatalf("got %d directives, want 3", len(dirs))
	}

	cases := []struct {
		analyzer string
		line     int
		want     bool
	}{
		{"anything", 4, true},     // bare directive suppresses all analyzers
		{"timeunits", 5, true},    // named analyzer, same line
		{"determinism", 5, false}, // a different analyzer is not covered
		{"determinism", 7, true},  // directive on the line above
		{"exhaustive", 7, true},   // second name in the list
		{"timeunits", 7, false},
		{"anything", 8, false}, // plain comments are not directives
	}
	for _, c := range cases {
		if got := suppressed(dirs, c.analyzer, c.line); got != c.want {
			t.Errorf("suppressed(%q, line %d) = %v, want %v", c.analyzer, c.line, got, c.want)
		}
	}
}

func TestPathPrefixMatch(t *testing.T) {
	cases := []struct {
		prefix, path string
		want         bool
	}{
		{"a/b", "a/b", true},
		{"a/b", "a/b/c", true},
		{"a/b", "a/bc", false},
		{"a/b", "a", false},
		{"osnoise/internal/sim", "osnoise/internal/simulator", false},
	}
	for _, c := range cases {
		if got := PathPrefixMatch(c.prefix, c.path); got != c.want {
			t.Errorf("PathPrefixMatch(%q, %q) = %v, want %v", c.prefix, c.path, got, c.want)
		}
	}
}
