// Package atomicfield implements the noisevet analyzer that enforces
// atomic-consistency: a variable that is accessed through sync/atomic
// anywhere in a package must be accessed through sync/atomic everywhere
// in that package.
//
// The trace ring buffer's reserve/commit protocol is exactly the kind
// of code this protects: one plain load of a head/tail counter that is
// elsewhere advanced with CompareAndSwap is a data race the compiler
// will happily emit and the race detector will only catch if a test
// happens to interleave the two. The analyzer makes the mixture a
// static error instead.
//
// Fields wrapped in the atomic.Int64/Uint64/Bool/... types are safe by
// construction (their plain value is unexported) and need no flagging;
// this check covers the older pattern of a plain integer field passed
// by address to atomic.LoadUint64/AddUint64/....
package atomicfield

import (
	"go/ast"
	"go/types"
	"strings"

	"osnoise/internal/analysis"
)

// atomicFuncPrefixes match the sync/atomic functions that take the
// address of the variable as their first argument.
var atomicFuncPrefixes = []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"}

// New returns the atomic-consistency analyzer.
func New() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "atomicfield",
		Doc: "flag plain reads/writes of variables that are accessed via sync/atomic elsewhere\n\n" +
			"Mixing atomic and non-atomic access to the same word (the ring buffer's head/tail\n" +
			"counters) is a data race regardless of perceived happens-before; every access to an\n" +
			"atomically-used variable must go through sync/atomic.",
	}
	a.Run = run
	return a
}

func run(pass *analysis.Pass) (interface{}, error) {
	// Pass 1: collect every variable whose address is taken into a
	// sync/atomic call, and remember those blessed operand nodes.
	atomicVars := make(map[*types.Var]string) // var → atomic func name seen
	blessed := make(map[ast.Expr]bool)        // operand expressions inside atomic calls
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := atomicCallee(pass, call)
		if fn == "" {
			return true
		}
		if addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok {
			operand := ast.Unparen(addr.X)
			if v := varOf(pass, operand); v != nil {
				if _, seen := atomicVars[v]; !seen {
					atomicVars[v] = fn
				}
				blessed[operand] = true
			}
		}
		return true
	})
	if len(atomicVars) == 0 {
		return nil, nil
	}

	// Composite-literal keys (Ring{writePos: ...}) resolve to the field
	// object but are not accesses, and the Sel ident of a selector is
	// already covered by the selector itself; exclude both.
	skip := make(map[ast.Expr]bool)
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.KeyValueExpr:
			skip[n.Key] = true
		case *ast.SelectorExpr:
			skip[n.Sel] = true
		}
		return true
	})

	// Pass 2: every other appearance of those variables is a plain
	// access and gets flagged.
	pass.Inspect(func(n ast.Node) bool {
		expr, ok := n.(ast.Expr)
		if !ok || blessed[expr] || skip[expr] {
			return true
		}
		switch expr.(type) {
		case *ast.SelectorExpr, *ast.Ident:
		default:
			return true
		}
		v := varOf(pass, expr)
		if v == nil {
			return true
		}
		if fn, tracked := atomicVars[v]; tracked && !withinBlessed(pass, expr, blessed) {
			pass.Reportf(expr.Pos(), "plain access to %s, which is accessed with atomic.%s elsewhere: use sync/atomic for every access", v.Name(), fn)
		}
		return true
	})
	return nil, nil
}

// atomicCallee returns the name of the sync/atomic function called, or
// "" if the call is not an address-taking sync/atomic function.
func atomicCallee(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return ""
	}
	for _, p := range atomicFuncPrefixes {
		if strings.HasPrefix(fn.Name(), p) {
			return fn.Name()
		}
	}
	return ""
}

// varOf resolves an expression to the struct field or package-level
// variable it denotes, or nil. Local variables are ignored: taking a
// local's address into an atomic op and also reading it plainly is
// possible but does not occur in shared-state code, and skipping
// locals keeps the analyzer quiet on the common x := load-then-branch
// pattern.
func varOf(pass *analysis.Pass, expr ast.Expr) *types.Var {
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
		}
		// Qualified package-level var (pkg.V).
		if v, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var); ok && isGlobal(v) {
			return v
		}
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok && (v.IsField() || isGlobal(v)) {
			return v
		}
	}
	return nil
}

func isGlobal(v *types.Var) bool {
	return v.Parent() != nil && v.Parent() == v.Pkg().Scope()
}

// withinBlessed reports whether expr is a sub-expression of a blessed
// atomic operand (e.g. the `x` inside the blessed `x.field`).
func withinBlessed(pass *analysis.Pass, expr ast.Expr, blessed map[ast.Expr]bool) bool {
	for b := range blessed {
		if contains(b, expr) {
			return true
		}
	}
	return false
}

func contains(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}
