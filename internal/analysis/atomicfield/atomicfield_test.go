package atomicfield_test

import (
	"testing"

	"osnoise/internal/analysis/analysistest"
	"osnoise/internal/analysis/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, "testdata", atomicfield.New(), "a")
}
