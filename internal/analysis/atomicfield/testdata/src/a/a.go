// Package a exercises the atomicfield analyzer: ring-buffer-style
// counters accessed both atomically and plainly.
package a

import "sync/atomic"

// Ring mirrors the old-style pattern the analyzer protects: plain
// integer fields driven through sync/atomic address-taking functions.
type Ring struct {
	head uint64
	tail uint64
	size int // never touched atomically: plain access is fine
}

func (r *Ring) reserve() uint64 {
	for {
		pos := atomic.LoadUint64(&r.head)
		if atomic.CompareAndSwapUint64(&r.head, pos, pos+1) {
			return pos
		}
	}
}

func (r *Ring) commitIndex() uint64 {
	return atomic.LoadUint64(&r.tail)
}

func (r *Ring) badRead() uint64 {
	return r.head // want `plain access to head, which is accessed with atomic\.LoadUint64 elsewhere`
}

func (r *Ring) badWrite() {
	r.tail = 0 // want `plain access to tail, which is accessed with atomic\.LoadUint64 elsewhere`
}

func (r *Ring) sizeOK() int {
	return r.size
}

// newRing initializes through a composite literal, which is not an
// access and reports nothing.
func newRing() *Ring {
	return &Ring{size: 8}
}

// counter is a package-level variable used atomically…
var counter int64

func bump() { atomic.AddInt64(&counter, 1) }

func badBump() {
	counter++ // want `plain access to counter, which is accessed with atomic\.AddInt64 elsewhere`
}

// plainGlobal is never used atomically: plain access everywhere is ok.
var plainGlobal int64

func plainBump() { plainGlobal++ }
