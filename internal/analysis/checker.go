package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Finding is one resolved diagnostic: a position, a message, and the
// analyzer that produced it.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Timing is one analyzer's total wall time across a Check run: the sum
// of its per-package passes, or the single module pass for
// interprocedural analyzers.
type Timing struct {
	Analyzer string
	Elapsed  time.Duration
}

// Check runs every analyzer over every target package and returns the
// surviving findings sorted by position. Findings on lines carrying a
// //noisevet:ignore directive (on the same line or the line directly
// above) are suppressed.
func Check(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	findings, _, err := CheckTimed(fset, pkgs, analyzers)
	return findings, err
}

// CheckTimed is Check exposing per-analyzer wall time, in the
// analyzers' registration order. Per-package analyzers run first,
// package by package; module-level analyzers run once each over the
// whole loaded module, sharing one Module (and therefore one cached
// call graph).
func CheckTimed(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Finding, []Timing, error) {
	var findings []Finding
	elapsed := make(map[string]time.Duration)

	// Ignore directives for every target file: per-package passes and
	// module passes share the same suppression rules.
	ignored := make(map[string][]ignoreDirective)
	for _, pkg := range pkgs {
		if !pkg.Target {
			continue
		}
		for i, f := range pkg.Files {
			ignored[pkg.GoFiles[i]] = ignoreDirectives(fset, f)
		}
	}
	report := func(name string) func(Diagnostic) {
		return func(d Diagnostic) {
			pos := fset.Position(d.Pos)
			if suppressed(ignored[pos.Filename], name, pos.Line) {
				return
			}
			findings = append(findings, Finding{Analyzer: name, Pos: pos, Message: d.Message})
		}
	}

	for _, pkg := range pkgs {
		if !pkg.Target {
			continue
		}
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    report(a.Name),
			}
			start := time.Now()
			if _, err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
			elapsed[a.Name] += time.Since(start)
		}
	}

	mod := &Module{Fset: fset, Pkgs: pkgs}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		pass := &ModulePass{Analyzer: a, Module: mod, Report: report(a.Name)}
		start := time.Now()
		if err := a.RunModule(pass); err != nil {
			return nil, nil, fmt.Errorf("analysis: %s (module pass): %w", a.Name, err)
		}
		elapsed[a.Name] += time.Since(start)
	}

	timings := make([]Timing, 0, len(analyzers))
	for _, a := range analyzers {
		timings = append(timings, Timing{Analyzer: a.Name, Elapsed: elapsed[a.Name]})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, timings, nil
}

// ignoreDirective is one //noisevet:ignore comment: the line it sits
// on, whether it trails code on that line, and the analyzer names it
// lists (empty = all analyzers).
type ignoreDirective struct {
	line      int
	trailing  bool
	analyzers []string
}

const ignorePrefix = "//noisevet:ignore"

// ignoreDirectives extracts the //noisevet:ignore directives of a file.
// A directive trailing a statement suppresses matching findings on its
// own line; a directive on a line of its own suppresses findings on the
// line directly below it.
func ignoreDirectives(fset *token.FileSet, f *ast.File) []ignoreDirective {
	codeLines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, isComment := n.(*ast.Comment); isComment {
			return true
		}
		if _, isGroup := n.(*ast.CommentGroup); isGroup {
			return true
		}
		codeLines[fset.Position(n.Pos()).Line] = true
		codeLines[fset.Position(n.End()).Line] = true
		return true
	})
	var out []ignoreDirective
	for _, group := range f.Comments {
		for _, c := range group.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
			var names []string
			if rest != "" {
				for _, n := range strings.Split(rest, ",") {
					if n = strings.TrimSpace(n); n != "" {
						names = append(names, n)
					}
				}
			}
			line := fset.Position(c.Slash).Line
			out = append(out, ignoreDirective{line: line, trailing: codeLines[line], analyzers: names})
		}
	}
	return out
}

// suppressed reports whether a finding from analyzer on line is covered
// by one of the directives.
func suppressed(dirs []ignoreDirective, analyzer string, line int) bool {
	for _, d := range dirs {
		covered := line == d.line || (!d.trailing && line == d.line+1)
		if !covered {
			continue
		}
		if len(d.analyzers) == 0 {
			return true
		}
		for _, n := range d.analyzers {
			if n == analyzer {
				return true
			}
		}
	}
	return false
}

// RelativeTo rewrites the findings' file names relative to dir where
// possible, for compact CLI output.
func RelativeTo(findings []Finding, dir string) {
	for i := range findings {
		if rel, err := filepath.Rel(dir, findings[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].Pos.Filename = rel
		}
	}
}
