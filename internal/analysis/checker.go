package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"osnoise/internal/analysis/directive"
)

// Finding is one resolved diagnostic: a position, a message, and the
// analyzer that produced it.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Timing is one analyzer's total wall time across a Check run: the sum
// of its per-package passes, or the single module pass for
// interprocedural analyzers.
type Timing struct {
	Analyzer string
	Elapsed  time.Duration
}

// Options tunes one Check run beyond the analyzer list.
type Options struct {
	// StaleIgnore adds a finding (analyzer "staleignore") for every
	// //noisevet:ignore directive that suppressed nothing in this run:
	// dead annotations rot fastest, and a stale ignore is one refactor
	// away from silencing a real finding. Meaningful only when the full
	// suite runs — a directive naming an analyzer excluded via -only
	// legitimately suppresses nothing.
	StaleIgnore bool
}

// StaleIgnoreAnalyzer is the analyzer name stale-directive findings are
// reported under. It is a checker-level pseudo-analyzer: the findings
// come from the suppression layer itself, not from any registered
// Analyzer, and are not themselves suppressible.
const StaleIgnoreAnalyzer = "staleignore"

// Check runs every analyzer over every target package and returns the
// surviving findings sorted by position. Findings on lines carrying a
// //noisevet:ignore directive (on the same line or the line directly
// above) are suppressed.
func Check(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	findings, _, err := CheckTimed(fset, pkgs, analyzers)
	return findings, err
}

// CheckTimed is Check exposing per-analyzer wall time, in the
// analyzers' registration order.
func CheckTimed(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Finding, []Timing, error) {
	return CheckOpts(fset, pkgs, analyzers, Options{})
}

// CheckOpts is the full checker entry point: per-analyzer wall time in
// the analyzers' registration order, plus Options. Per-package
// analyzers run first, package by package; module-level analyzers run
// once each over the whole loaded module, sharing one Module (and
// therefore one cached call graph).
func CheckOpts(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, opts Options) ([]Finding, []Timing, error) {
	var findings []Finding
	elapsed := make(map[string]time.Duration)

	// Ignore directives for every target file: per-package passes and
	// module passes share the same suppression rules. Directives are
	// pointers so suppression hits mark the shared record.
	ignored := make(map[string][]*ignoreDirective)
	var allDirectives []*ignoreDirective
	for _, pkg := range pkgs {
		if !pkg.Target {
			continue
		}
		for i, f := range pkg.Files {
			dirs := ignoreDirectives(fset, f)
			ignored[pkg.GoFiles[i]] = dirs
			allDirectives = append(allDirectives, dirs...)
		}
	}
	report := func(name string) func(Diagnostic) {
		return func(d Diagnostic) {
			pos := fset.Position(d.Pos)
			if suppressed(ignored[pos.Filename], name, pos.Line) {
				return
			}
			findings = append(findings, Finding{Analyzer: name, Pos: pos, Message: d.Message})
		}
	}

	for _, pkg := range pkgs {
		if !pkg.Target {
			continue
		}
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    report(a.Name),
			}
			start := time.Now()
			if _, err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
			elapsed[a.Name] += time.Since(start)
		}
	}

	mod := &Module{Fset: fset, Pkgs: pkgs}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		pass := &ModulePass{Analyzer: a, Module: mod, Report: report(a.Name)}
		start := time.Now()
		if err := a.RunModule(pass); err != nil {
			return nil, nil, fmt.Errorf("analysis: %s (module pass): %w", a.Name, err)
		}
		elapsed[a.Name] += time.Since(start)
	}

	if opts.StaleIgnore {
		for _, d := range allDirectives {
			if d.hits > 0 {
				continue
			}
			what := "any analyzer"
			if len(d.analyzers) > 0 {
				what = strings.Join(d.analyzers, ", ")
			}
			findings = append(findings, Finding{
				Analyzer: StaleIgnoreAnalyzer,
				Pos:      d.pos,
				Message:  fmt.Sprintf("stale //noisevet:ignore: suppresses no finding from %s; remove it", what),
			})
		}
	}

	timings := make([]Timing, 0, len(analyzers))
	for _, a := range analyzers {
		timings = append(timings, Timing{Analyzer: a.Name, Elapsed: elapsed[a.Name]})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, timings, nil
}

// ignoreDirective is one //noisevet:ignore comment: where it sits,
// whether it trails code on that line, the analyzer names it lists
// (empty = all analyzers), and how many findings it suppressed in this
// run (for stale detection).
type ignoreDirective struct {
	pos       token.Position
	line      int
	trailing  bool
	analyzers []string
	hits      int
}

// ignoreDirectives extracts the //noisevet:ignore directives of a file
// via the shared directive parser. A directive trailing a statement
// suppresses matching findings on its own line; a directive on a line
// of its own suppresses findings on the line directly below it.
// Malformed //noisevet: comments are the hotpath analyzer's findings,
// not the checker's, so non-ignore and unparsable directives are
// skipped here.
func ignoreDirectives(fset *token.FileSet, f *ast.File) []*ignoreDirective {
	codeLines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, isComment := n.(*ast.Comment); isComment {
			return true
		}
		if _, isGroup := n.(*ast.CommentGroup); isGroup {
			return true
		}
		codeLines[fset.Position(n.Pos()).Line] = true
		codeLines[fset.Position(n.End()).Line] = true
		return true
	})
	var out []*ignoreDirective
	for _, group := range f.Comments {
		for _, c := range group.List {
			d, err := directive.Parse(c.Text)
			if err != nil || d == nil || d.Name != directive.Ignore {
				continue
			}
			pos := fset.Position(c.Slash)
			out = append(out, &ignoreDirective{
				pos:       pos,
				line:      pos.Line,
				trailing:  codeLines[pos.Line],
				analyzers: d.Analyzers,
			})
		}
	}
	return out
}

// suppressed reports whether a finding from analyzer on line is covered
// by one of the directives, counting a hit on the directive that covers
// it.
func suppressed(dirs []*ignoreDirective, analyzer string, line int) bool {
	for _, d := range dirs {
		covered := line == d.line || (!d.trailing && line == d.line+1)
		if !covered {
			continue
		}
		if len(d.analyzers) == 0 {
			d.hits++
			return true
		}
		for _, n := range d.analyzers {
			if n == analyzer {
				d.hits++
				return true
			}
		}
	}
	return false
}

// RelativeTo rewrites the findings' file names relative to dir where
// possible, for compact CLI output.
func RelativeTo(findings []Finding, dir string) {
	for i := range findings {
		if rel, err := filepath.Rel(dir, findings[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].Pos.Filename = rel
		}
	}
}
