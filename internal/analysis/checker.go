package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one resolved diagnostic: a position, a message, and the
// analyzer that produced it.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Check runs every analyzer over every target package and returns the
// surviving findings sorted by position. Findings on lines carrying a
// //noisevet:ignore directive (on the same line or the line directly
// above) are suppressed.
func Check(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		if !pkg.Target {
			continue
		}
		ignored := make(map[string][]ignoreDirective)
		for i, f := range pkg.Files {
			ignored[pkg.GoFiles[i]] = ignoreDirectives(fset, f)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				pos := fset.Position(d.Pos)
				if suppressed(ignored[pos.Filename], a.Name, pos.Line) {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// ignoreDirective is one //noisevet:ignore comment: the line it sits
// on, whether it trails code on that line, and the analyzer names it
// lists (empty = all analyzers).
type ignoreDirective struct {
	line      int
	trailing  bool
	analyzers []string
}

const ignorePrefix = "//noisevet:ignore"

// ignoreDirectives extracts the //noisevet:ignore directives of a file.
// A directive trailing a statement suppresses matching findings on its
// own line; a directive on a line of its own suppresses findings on the
// line directly below it.
func ignoreDirectives(fset *token.FileSet, f *ast.File) []ignoreDirective {
	codeLines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, isComment := n.(*ast.Comment); isComment {
			return true
		}
		if _, isGroup := n.(*ast.CommentGroup); isGroup {
			return true
		}
		codeLines[fset.Position(n.Pos()).Line] = true
		codeLines[fset.Position(n.End()).Line] = true
		return true
	})
	var out []ignoreDirective
	for _, group := range f.Comments {
		for _, c := range group.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
			var names []string
			if rest != "" {
				for _, n := range strings.Split(rest, ",") {
					if n = strings.TrimSpace(n); n != "" {
						names = append(names, n)
					}
				}
			}
			line := fset.Position(c.Slash).Line
			out = append(out, ignoreDirective{line: line, trailing: codeLines[line], analyzers: names})
		}
	}
	return out
}

// suppressed reports whether a finding from analyzer on line is covered
// by one of the directives.
func suppressed(dirs []ignoreDirective, analyzer string, line int) bool {
	for _, d := range dirs {
		covered := line == d.line || (!d.trailing && line == d.line+1)
		if !covered {
			continue
		}
		if len(d.analyzers) == 0 {
			return true
		}
		for _, n := range d.analyzers {
			if n == analyzer {
				return true
			}
		}
	}
	return false
}

// RelativeTo rewrites the findings' file names relative to dir where
// possible, for compact CLI output.
func RelativeTo(findings []Finding, dir string) {
	for i := range findings {
		if rel, err := filepath.Rel(dir, findings[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].Pos.Filename = rel
		}
	}
}
