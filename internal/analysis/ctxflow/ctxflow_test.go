package ctxflow

import (
	"testing"

	"osnoise/internal/analysis/analysistest"
)

func TestFixtures(t *testing.T) {
	a := New(Config{Roots: []string{"flow.Run"}})
	analysistest.RunModule(t, "testdata", a, "flow", "flow/dep")
}
