// Package flow exercises the ctxflow analyzer: transitive observation
// through helpers and closures, the per-function loop rule, dropped
// contexts, and reachability scoping.
package flow

import (
	"context"

	"flow/dep"
)

// Run is the configured entry-point root. Its own loop is covered by
// strideCheck, which observes ctx; no finding here.
func Run(ctx context.Context, items []int) error {
	for _, it := range items {
		if err := strideCheck(ctx, it); err != nil {
			return err
		}
	}
	spin(ctx, items)
	if err := dep.Consume(ctx, items); err != nil {
		return err
	}
	refresh(ctx)
	Fan(ctx, items)
	if err := Pipeline(ctx, items); err != nil {
		return err
	}
	return nil
}

// strideCheck is the boundary observation helper: callers that pass
// their context here observe transitively.
func strideCheck(ctx context.Context, it int) error {
	if it%8192 == 0 {
		return ctx.Err()
	}
	return nil
}

func spin(ctx context.Context, items []int) { // want `flow\.spin loops but never observes`
	total := 0
	for _, it := range items {
		total += it
	}
	_ = total
}

// refresh has no loops, so the loop rule does not apply — but it
// discards the context it holds.
func refresh(ctx context.Context) {
	_ = dep.Reload(context.Background()) // want `context\.Background\(\) discards`
}

// Fan's loop is covered by the closure it spawns, which observes the
// captured context.
func Fan(ctx context.Context, items []int) {
	for range items {
	}
	go func() {
		<-ctx.Done()
	}()
}

// Pipeline observes directly, but the worker literal it defines takes
// its own ctx parameter, loops, and never consults it.
func Pipeline(ctx context.Context, items []int) error {
	work := func(ctx context.Context) { // want `flow\.Pipeline\$1 loops but never observes`
		for range items {
		}
	}
	work(ctx)
	return ctx.Err()
}
