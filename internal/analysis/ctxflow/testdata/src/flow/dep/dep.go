// Package dep is reached from package flow; its functions prove
// cross-package summary propagation and reachability scoping.
package dep

import "context"

// Consume observes cancellation directly at a stride boundary.
func Consume(ctx context.Context, items []int) error {
	for i := range items {
		if i%100 == 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
		}
	}
	return nil
}

// Reload accepts a context but has no loops; nothing to observe.
func Reload(ctx context.Context) error {
	return nil
}

// Orbit loops without observing, but nothing reachable from flow.Run
// calls it: no finding.
func Orbit(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
	}
}
