// Package ctxflow defines a module-level noisevet analyzer that turns
// the resilience layer's hand-audited cancellation contract into a
// machine-checked invariant: every loop-bearing function on a
// cancellable path must observe its context.
//
// The contract exists because the exit-code-3 guarantee ("a deadline
// against a multi-second analysis exits promptly, never hangs") is only
// as strong as the least attentive loop between an entry point and the
// per-event work. A function that accepts a context and then spins
// without consulting it reintroduces exactly the unbounded stall the
// resilience layer exists to prevent — and nothing local to the
// function makes that visible.
//
// From the configured entry-point roots (AnalyzeParallel, AnalyzeRaw,
// AnalyzeStream, ReadParallel, cluster.Run), the analyzer computes the
// set of functions reachable over static calls, goroutine spawns,
// defers, and closures. Inside that set it reports:
//
//   - a function that accepts a context.Context and contains a loop
//     but neither observes cancellation itself (ctx.Err, ctx.Done)
//     nor passes its context to a callee that transitively does. The
//     judgment is per function, not per loop: bounded housekeeping
//     loops next to a stride-checked event loop are fine.
//   - a call that discards the context in scope by passing
//     context.Background() or context.TODO() downward instead.
//
// "Transitively observes" is a bottom-up summary over the call graph
// (see internal/analysis/summary), so the per-CPU drivers that check
// cancellation every cancelStride events through a helper satisfy the
// rule without annotation.
//
// Functions that never receive a context — per-event leaf kernels like
// cpuWalker.step — are deliberately out of scope: the contract is that
// cancellation is checked at stride boundaries in the drivers that DO
// hold the context, not in every leaf.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"osnoise/internal/analysis"
	"osnoise/internal/analysis/callgraph"
	"osnoise/internal/analysis/summary"
)

// Config parameterizes the analyzer.
type Config struct {
	// Roots are the node names (callgraph.FuncName form:
	// "pkgpath.Func" or "pkgpath.Type.Method") of the context-accepting
	// entry points. Roots missing from the build (for instance a
	// package excluded from a partial load) are skipped.
	Roots []string
}

// New returns a ctxflow analyzer with the given entry-point roots.
func New(cfg Config) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "ctxflow",
		Doc: "ctxflow: loops on cancellable paths must observe their context\n\n" +
			"From the configured entry points, every reachable function that accepts\n" +
			"a context.Context and contains a loop must check ctx.Err/ctx.Done or\n" +
			"pass the context to a callee that transitively does; passing\n" +
			"context.Background()/TODO() while a context is in scope is flagged too.",
	}
	a.RunModule = func(pass *analysis.ModulePass) error { return run(pass, cfg) }
	return a
}

// followed selects the edges cancellation-flow facts travel along:
// static transfers (plain, go, defer) and closures. Interface dispatch
// and escaped references prove nothing about which body actually runs,
// so they propagate neither reachability nor summaries here.
func followed(e *callgraph.Edge) bool {
	switch e.Kind {
	case callgraph.KindStatic, callgraph.KindGo, callgraph.KindDefer, callgraph.KindClosure:
		return true
	}
	return false
}

func run(pass *analysis.ModulePass, cfg Config) error {
	g := callgraph.Of(pass.Module)

	var roots []*callgraph.Node
	for _, name := range cfg.Roots {
		if n := g.NodeByName(name); n != nil {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		return nil
	}

	reach := make(map[*callgraph.Node]bool)
	stack := append([]*callgraph.Node(nil), roots...)
	for _, r := range roots {
		reach[r] = true
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.Out {
			if followed(e) && !reach[e.Callee] {
				reach[e.Callee] = true
				stack = append(stack, e.Callee)
			}
		}
	}

	// observes[n]: n checks cancellation itself, or hands its context
	// to a callee that does. Bottom-up fixpoint so mutual recursion and
	// deep driver→helper chains resolve without annotation.
	observes := summary.Compute(g, followed, func(n *callgraph.Node, get func(*callgraph.Node) bool) bool {
		if observesDirectly(n) {
			return true
		}
		found := false
		n.Walk(func(m ast.Node) bool {
			if found {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			targets, _ := g.CalleesOf(call)
			if len(targets) == 0 || !passesContext(n.Pkg.Info, call) {
				return true
			}
			for _, target := range targets {
				if get(target) {
					found = true
					break
				}
			}
			return true
		})
		if found {
			return true
		}
		// A literal defined here captures the context lexically; if it
		// observes, the defining function's loop structure is covered
		// by it (worker-spawn loops hand the event loop to the
		// closure). This holds whether the literal is stored, invoked
		// in place, or spawned with go/defer — Parent identifies all of
		// them.
		for _, e := range n.Out {
			if e.Callee.Parent == n && get(e.Callee) {
				return true
			}
		}
		return false
	})

	for _, n := range g.Nodes {
		if !reach[n] || n.Pkg == nil || !n.Pkg.Target {
			continue
		}
		checkDroppedContext(pass, n)
		if n.CtxParam() == nil {
			continue
		}
		if hasLoop(n) && !observes[n] {
			pass.Reportf(n.Pos(), "cancellable path: %s loops but never observes its context (no ctx.Err/ctx.Done here or in any callee it passes ctx to)", shortName(n))
		}
	}
	return nil
}

// observesDirectly reports whether the body itself consults
// cancellation: a .Err() or .Done() selection on a context-typed value.
func observesDirectly(n *callgraph.Node) bool {
	info := n.Pkg.Info
	found := false
	n.Walk(func(m ast.Node) bool {
		if found {
			return false
		}
		sel, ok := m.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Err" && sel.Sel.Name != "Done" {
			return true
		}
		if t := info.TypeOf(sel.X); t != nil && isContextType(t) {
			found = true
			return false
		}
		return true
	})
	return found
}

// passesContext reports whether any argument of the call has type
// context.Context.
func passesContext(info *types.Info, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if t := info.TypeOf(arg); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}

// checkDroppedContext flags context.Background()/TODO() passed as a
// call argument inside a function that already holds a context.
func checkDroppedContext(pass *analysis.ModulePass, n *callgraph.Node) {
	if n.CtxParam() == nil {
		return
	}
	info := n.Pkg.Info
	n.Walk(func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			inner, ok := ast.Unparen(arg).(*ast.CallExpr)
			if !ok {
				continue
			}
			sel, ok := ast.Unparen(inner.Fun).(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
				continue
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				continue
			}
			if pn, ok := info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "context" {
				pass.Reportf(inner.Pos(), "cancellable path: context.%s() discards the context in scope; pass ctx down instead", sel.Sel.Name)
			}
		}
		return true
	})
}

// hasLoop reports whether the node's own body (nested literals
// excluded — they are judged as their own nodes) contains a for or
// range statement.
func hasLoop(n *callgraph.Node) bool {
	found := false
	n.Walk(func(m ast.Node) bool {
		switch m.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}

// shortName strips the package path off a node name for readable
// diagnostics ("noise.AnalyzeRaw$1" rather than the full import path).
func shortName(n *callgraph.Node) string {
	name := n.Name
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
