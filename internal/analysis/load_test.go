package analysis

import (
	"go/token"
	"testing"
)

// TestLoadModulePackage loads a real in-module package (with an
// in-module dependency and stdlib imports) through the production
// loader and checks the type information is complete enough for the
// analyzers: named types resolve, uses are populated, and only target
// packages are marked Target.
func TestLoadModulePackage(t *testing.T) {
	pkgs, fset, err := Load("../..", "./internal/noise")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var noisePkg, tracePkg *Package
	for _, p := range pkgs {
		switch p.PkgPath {
		case "osnoise/internal/noise":
			noisePkg = p
		case "osnoise/internal/trace":
			tracePkg = p
		}
	}
	if noisePkg == nil {
		t.Fatal("osnoise/internal/noise not loaded")
	}
	if !noisePkg.Target {
		t.Error("noise should be a target package")
	}
	if tracePkg == nil {
		t.Fatal("dependency osnoise/internal/trace not loaded")
	}
	if tracePkg.Target {
		t.Error("trace was loaded only as a dependency; must not be a target")
	}
	if len(noisePkg.Files) == 0 || noisePkg.Types == nil {
		t.Fatal("noise package missing syntax or types")
	}
	if n := len(noisePkg.Info.Uses); n == 0 {
		t.Error("TypesInfo.Uses is empty")
	}
	if obj := noisePkg.Types.Scope().Lookup("CategoryOf"); obj == nil {
		t.Error("CategoryOf not found in noise package scope")
	}
	if obj := tracePkg.Types.Scope().Lookup("ID"); obj == nil {
		t.Error("ID not found in trace package scope")
	}
	var zero token.Position
	if pos := fset.Position(noisePkg.Files[0].Package); pos == zero || pos.Filename == "" {
		t.Error("file positions not registered in the shared FileSet")
	}
}
