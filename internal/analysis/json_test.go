package analysis

import (
	"bytes"
	"go/token"
	"os"
	"testing"
)

// TestJSONGolden locks the `noisevet -json` wire format against
// testdata/golden.json. The schema is documented in
// docs/ARCHITECTURE.md; a diff here means either an accidental schema
// break (fix the code) or a deliberate schema change (update the
// golden file AND the doc in the same commit).
func TestJSONGolden(t *testing.T) {
	findings := []Finding{
		{
			Analyzer: "hotpath",
			Pos:      token.Position{Filename: "internal/noise/analyzer.go", Line: 42, Column: 7},
			Message:  "hot path: call into fmt allocates per call",
		},
		{
			Analyzer: "ctxflow",
			Pos:      token.Position{Filename: "internal/trace/decoder.go", Line: 180, Column: 1},
			Message:  "cancellable path: trace.scan loops but never observes its context",
		},
	}
	var buf bytes.Buffer
	if err := EncodeJSON(&buf, findings); err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	want, err := os.ReadFile("testdata/golden.json")
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-json output drifted from testdata/golden.json\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestJSONEmpty pins the no-findings form: an empty array, never null.
func TestJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeJSON(&buf, nil); err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	if got := buf.String(); got != "[]\n" {
		t.Errorf("empty findings encode as %q, want %q", got, "[]\n")
	}
}
