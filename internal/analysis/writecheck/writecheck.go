// Package writecheck implements the noisevet analyzer that requires
// the Close() error of a written file to be checked.
//
// On a buffered *os.File, Write can succeed while the data still sits
// in kernel or libc buffers; the write error a benchmark run actually
// dies on often surfaces only at Close. A tracer that drops that error
// exports a silently truncated CSV or CTF stream — the run looks
// green, the analysis downstream is garbage. cmd/noisebench already
// uses the blessed pattern:
//
//	err = export.WriteCSV(f, header, rows)
//	if cerr := f.Close(); err == nil {
//		err = cerr
//	}
//
// The analyzer tracks, per function, file handles returned by the
// configured creators (os.Create and os.OpenFile by default) with a
// forward may-dataflow over the internal/analysis/cfg graph: a handle
// becomes "written" once a path writes to it (a Write* method call, or
// the handle passed as an argument to any call — fmt.Fprintf,
// encoders, export helpers). At each Close() of a written handle the
// result must be consumed: a bare ExprStmt, a defer (the call ends up
// in a CFG defer block), or an assignment to the blank identifier all
// discard it and are reported. Closing a handle that no path has
// written yet (an error-path cleanup before the first write) is fine.
package writecheck

import (
	"go/ast"
	"go/types"

	"osnoise/internal/analysis"
	"osnoise/internal/analysis/cfg"
)

// Config scopes the analyzer.
type Config struct {
	// Packages are package-path prefixes the analyzer applies to; an
	// empty list means every target package.
	Packages []string
	// Creators are fully-qualified functions whose first result is a
	// writable file handle. Empty means the default
	// {"os.Create", "os.OpenFile"}.
	Creators []string
}

// New returns a writecheck analyzer.
func New(cfgc Config) *analysis.Analyzer {
	creators := cfgc.Creators
	if len(creators) == 0 {
		creators = []string{"os.Create", "os.OpenFile"}
	}
	cset := make(map[string]bool, len(creators))
	for _, c := range creators {
		cset[c] = true
	}
	a := &analysis.Analyzer{
		Name: "writecheck",
		Doc: "require the Close() error of a written file to be checked\n\n" +
			"Buffered writes can fail at Close; dropping that error ships a silently\n" +
			"truncated trace or CSV. Use the noisebench pattern:\n" +
			"if cerr := f.Close(); err == nil { err = cerr }",
	}
	a.Run = func(pass *analysis.Pass) (interface{}, error) {
		if len(cfgc.Packages) > 0 && !matchAny(cfgc.Packages, pass.Pkg.Path()) {
			return nil, nil
		}
		for _, file := range pass.Files {
			for _, fn := range cfg.Functions(file) {
				checkFunc(pass, cset, fn)
			}
		}
		return nil, nil
	}
	return a
}

// handles collects the variables in fn assigned from a creator call.
func handles(pass *analysis.Pass, cset map[string]bool, fn *cfg.Func) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	cfg.Walk(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) == 0 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isCreator(pass, cset, call) {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
			out[v] = true
		} else if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
			out[v] = true
		}
		return true
	})
	return out
}

func isCreator(pass *analysis.Pass, cset map[string]bool, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return cset[fn.Pkg().Path()+"."+fn.Name()]
}

func checkFunc(pass *analysis.Pass, cset map[string]bool, fn *cfg.Func) {
	tracked := handles(pass, cset, fn)
	if len(tracked) == 0 {
		return
	}
	g := cfg.New(fn.Body, nil)
	prob := &writeFlow{pass: pass, tracked: tracked}
	res := cfg.Forward(g, prob)
	for _, blk := range g.Blocks {
		in, ok := res.In[blk].(writeFact)
		if !ok {
			continue // unreachable
		}
		prob.report = true
		prob.transfer(blk, in)
		prob.report = false
	}
}

// writeFact is the set of tracked handles written on some path so far.
type writeFact map[*types.Var]bool

type writeFlow struct {
	pass    *analysis.Pass
	tracked map[*types.Var]bool
	report  bool
}

func (f *writeFlow) Entry() cfg.Fact { return writeFact{} }

func (f *writeFlow) Join(a, b cfg.Fact) cfg.Fact {
	am, bm := a.(writeFact), b.(writeFact)
	out := make(writeFact, len(am)+len(bm))
	for v := range am {
		out[v] = true
	}
	for v := range bm {
		out[v] = true
	}
	return out
}

func (f *writeFlow) Equal(a, b cfg.Fact) bool {
	am, bm := a.(writeFact), b.(writeFact)
	if len(am) != len(bm) {
		return false
	}
	for v := range am {
		if !bm[v] {
			return false
		}
	}
	return true
}

func (f *writeFlow) Transfer(blk *cfg.Block, in cfg.Fact) cfg.Fact {
	return f.transfer(blk, in.(writeFact))
}

func (f *writeFlow) transfer(blk *cfg.Block, in writeFact) writeFact {
	out := make(writeFact, len(in))
	for v := range in {
		out[v] = true
	}
	for _, n := range blk.Nodes {
		// Writes first: a statement that both writes and closes (rare,
		// but possible through helper calls) counts the close as after
		// the write, the conservative order.
		cfg.Walk(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if v := f.writeTarget(call); v != nil {
				out[v] = true
			}
			return true
		})
		if f.report {
			cfg.Walk(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				v := f.closeTarget(call)
				if v == nil || !out[v] {
					return true
				}
				if dropsResult(n, call) {
					name := varName(call)
					f.pass.Reportf(call.Pos(),
						"error of %s.Close() is discarded after writing to %s; a failed flush goes unnoticed (use: if cerr := %s.Close(); err == nil { err = cerr })",
						name, name, name)
				}
				return true
			})
		}
	}
	return out
}

// writeTarget returns the tracked handle the call writes to, if any: a
// Write*-method receiver, or a handle passed as an argument.
func (f *writeFlow) writeTarget(call *ast.CallExpr) *types.Var {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if len(sel.Sel.Name) >= 5 && sel.Sel.Name[:5] == "Write" {
			if v := f.handleOf(sel.X); v != nil {
				return v
			}
		}
	}
	for _, arg := range call.Args {
		if v := f.handleOf(arg); v != nil {
			return v
		}
	}
	return nil
}

// closeTarget returns the tracked handle the call closes, if any.
func (f *writeFlow) closeTarget(call *ast.CallExpr) *types.Var {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return nil
	}
	return f.handleOf(sel.X)
}

func (f *writeFlow) handleOf(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := f.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || !f.tracked[v] {
		return nil
	}
	return v
}

// dropsResult reports whether the Close call's error is discarded in
// the context of CFG node n: a bare statement, a deferred call (the
// node in a defer block is the CallExpr itself), or an assignment to
// the blank identifier. Any other context — an assignment to a named
// variable, an if-init, a return — consumes it.
func dropsResult(n ast.Node, call *ast.CallExpr) bool {
	switch s := n.(type) {
	case *ast.CallExpr:
		return s == call // deferred: defer f.Close()
	case *ast.ExprStmt:
		return ast.Unparen(s.X) == call
	case *ast.AssignStmt:
		for i, rhs := range s.Rhs {
			if ast.Unparen(rhs) == call && i < len(s.Lhs) {
				if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					return true
				}
			}
		}
		return false
	case *ast.DeferStmt:
		return s.Call == call
	default:
		// Statement-level context unknown: find the enclosing statement
		// shape by walking; conservatively treat as consumed.
		drops := false
		cfg.Walk(n, func(m ast.Node) bool {
			switch s := m.(type) {
			case *ast.ExprStmt:
				if ast.Unparen(s.X) == call {
					drops = true
				}
			case *ast.DeferStmt:
				if s.Call == call {
					drops = true
				}
			case *ast.AssignStmt:
				for i, rhs := range s.Rhs {
					if ast.Unparen(rhs) == call && i < len(s.Lhs) {
						if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							drops = true
						}
					}
				}
			}
			return true
		})
		return drops
	}
}

// varName renders the closed handle for the diagnostic.
func varName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return types.ExprString(sel.X)
	}
	return "file"
}

func matchAny(prefixes []string, path string) bool {
	for _, p := range prefixes {
		if analysis.PathPrefixMatch(p, path) {
			return true
		}
	}
	return false
}
