package writecheck_test

import (
	"testing"

	"osnoise/internal/analysis/analysistest"
	"osnoise/internal/analysis/writecheck"
)

// TestWriteCheck runs the analyzer over the fixture. Package a is in
// scope and carries the want cases; package b drops a written Close
// but is outside the configured packages, so any diagnostic on it
// fails the test (scope negative).
func TestWriteCheck(t *testing.T) {
	a := writecheck.New(writecheck.Config{Packages: []string{"a"}})
	analysistest.Run(t, "testdata", a, "a", "b")
}
