// Package a exercises the writecheck analyzer: the Close() error of a
// written file must be checked.
package a

import (
	"fmt"
	"io"
	"os"
)

// The blessed pattern: the Close error folds into the returned error.
func goodFold(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, err = f.Write([]byte("x"))
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// A bare Close after a write drops the flush error.
func bareClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "x")
	f.Close() // want `error of f\.Close\(\) is discarded after writing to f`
	return nil
}

// Deferring the Close after writes drops it just the same.
func deferredClose(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	defer f.Close() // want `error of f\.Close\(\) is discarded after writing to f`
	_, err = f.WriteString("x")
	return err
}

// Assigning the error to the blank identifier is an explicit drop and
// still wrong on a written handle.
func blankClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, err = f.Write([]byte("x"))
	_ = f.Close() // want `error of f\.Close\(\) is discarded after writing to f`
	return err
}

// Closing on the error path before any write is a plain cleanup; the
// handle holds no buffered data yet.
func cleanupBeforeWrite(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := prepare(); err != nil {
		f.Close()
		return err
	}
	_, err = f.Write([]byte("x"))
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Passing the handle to a writer helper counts as a write.
func helperWrite(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	dump(f)
	f.Close() // want `error of f\.Close\(\) is discarded after writing to f`
	return nil
}

// Returning the Close error consumes it.
func goodReturn(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := io.WriteString(f, "x"); err != nil {
		return err
	}
	return f.Close()
}

// A handle that is never written carries no flush obligation; Close is
// a plain resource release, like on a read-side os.Open.
func neverWritten(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	_ = st
	return err
}

func prepare() error   { return nil }
func dump(w io.Writer) { fmt.Fprintln(w, "x") }
