// Package b is outside the analyzer's configured package scope: its
// obvious dropped Close must produce no diagnostics (scope negative —
// there are deliberately no want comments in this file).
package b

import (
	"fmt"
	"os"
)

func unscopedDrop(path string) {
	f, _ := os.Create(path)
	fmt.Fprintln(f, "x")
	f.Close()
}
