// Package summary computes bottom-up function summaries over the
// repo-wide call graph. A summary is any comparable per-function fact
// that depends on the facts of the function's callees — "observes
// context cancellation", "may allocate", "maximum loop depth below
// here". The framework handles the graph shape so analyzers only write
// the local transfer function: strongly connected components (mutual
// recursion) are condensed with Tarjan's algorithm and iterated to a
// fixpoint, components are processed callees-first, so by the time a
// function is summarized every callee outside its own cycle is final.
package summary

import (
	"osnoise/internal/analysis/callgraph"
)

// Compute evaluates summarize bottom-up over the graph and returns the
// final summary of every node.
//
// follow selects which edges summaries propagate along; nil follows
// every edge. ctxflow, for instance, follows only Static/Go/Defer and
// Closure edges — an interface dispatch does not prove anything about
// which implementation actually runs.
//
// summarize computes one node's summary. It reads callee summaries
// through get, which returns the callee's current value — final for
// callees outside the node's own strongly connected component, and the
// in-progress fixpoint iterate for callees inside it (starting from the
// zero value of T). summarize must be monotone in its callees' values
// for the fixpoint to converge; iteration within a component stops when
// a full round changes nothing, with a hard cap to bound pathological
// transfer functions.
func Compute[T comparable](
	g *callgraph.Graph,
	follow func(*callgraph.Edge) bool,
	summarize func(n *callgraph.Node, get func(*callgraph.Node) T) T,
) map[*callgraph.Node]T {
	comps := SCCs(g, follow)
	out := make(map[*callgraph.Node]T, len(g.Nodes))
	get := func(n *callgraph.Node) T { return out[n] }

	// Tarjan emits components callees-first (a component pops only
	// after every component it points into), which is exactly the
	// bottom-up order.
	for _, comp := range comps {
		if len(comp) == 1 {
			// Fast path; a self-loop still converges below, but a
			// non-recursive node needs exactly one evaluation.
			n := comp[0]
			if !selfLoop(n, follow) {
				out[n] = summarize(n, get)
				continue
			}
		}
		// Mutual recursion: iterate the component to a fixpoint. Each
		// round re-evaluates every member; a monotone transfer function
		// over a finite lattice stabilizes in at most |comp| rounds of
		// real change, the cap guards non-monotone mistakes.
		for round := 0; round <= len(comp)+1; round++ {
			changed := false
			for _, n := range comp {
				next := summarize(n, get)
				if next != out[n] {
					out[n] = next
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	return out
}

// selfLoop reports whether n has a followed edge to itself.
func selfLoop(n *callgraph.Node, follow func(*callgraph.Edge) bool) bool {
	for _, e := range n.Out {
		if e.Callee == n && (follow == nil || follow(e)) {
			return true
		}
	}
	return false
}

// SCCs returns the strongly connected components of the graph restricted
// to the followed edges, in reverse topological order of the
// condensation: every component appears after the components it calls
// into. follow nil means every edge.
func SCCs(g *callgraph.Graph, follow func(*callgraph.Edge) bool) [][]*callgraph.Node {
	t := &tarjan{
		index:   make(map[*callgraph.Node]int, len(g.Nodes)),
		lowlink: make(map[*callgraph.Node]int, len(g.Nodes)),
		onStack: make(map[*callgraph.Node]bool, len(g.Nodes)),
		follow:  follow,
	}
	for _, n := range g.Nodes {
		if _, visited := t.index[n]; !visited {
			t.strongConnect(n)
		}
	}
	return t.comps
}

// tarjan is the iterative Tarjan SCC state. The traversal is explicit —
// deep call chains in a large module would overflow the goroutine stack
// under naive recursion long before they trouble an explicit one.
type tarjan struct {
	counter int
	index   map[*callgraph.Node]int
	lowlink map[*callgraph.Node]int
	stack   []*callgraph.Node
	onStack map[*callgraph.Node]bool
	follow  func(*callgraph.Edge) bool
	comps   [][]*callgraph.Node
}

// frame is one suspended DFS visit: the node and the index of the next
// out-edge to examine.
type frame struct {
	n    *callgraph.Node
	edge int
}

func (t *tarjan) strongConnect(root *callgraph.Node) {
	work := []frame{{n: root}}
	t.visit(root)
	for len(work) > 0 {
		f := &work[len(work)-1]
		n := f.n
		advanced := false
		for f.edge < len(n.Out) {
			e := n.Out[f.edge]
			f.edge++
			if t.follow != nil && !t.follow(e) {
				continue
			}
			m := e.Callee
			if _, visited := t.index[m]; !visited {
				t.visit(m)
				work = append(work, frame{n: m})
				advanced = true
				break
			}
			if t.onStack[m] {
				if t.index[m] < t.lowlink[n] {
					t.lowlink[n] = t.index[m]
				}
			}
		}
		if advanced {
			continue
		}
		// n is finished: pop its component if it is a root, then fold
		// its lowlink into its parent.
		if t.lowlink[n] == t.index[n] {
			var comp []*callgraph.Node
			for {
				m := t.stack[len(t.stack)-1]
				t.stack = t.stack[:len(t.stack)-1]
				t.onStack[m] = false
				comp = append(comp, m)
				if m == n {
					break
				}
			}
			t.comps = append(t.comps, comp)
		}
		work = work[:len(work)-1]
		if len(work) > 0 {
			parent := work[len(work)-1].n
			if t.lowlink[n] < t.lowlink[parent] {
				t.lowlink[parent] = t.lowlink[n]
			}
		}
	}
}

func (t *tarjan) visit(n *callgraph.Node) {
	t.index[n] = t.counter
	t.lowlink[n] = t.counter
	t.counter++
	t.stack = append(t.stack, n)
	t.onStack[n] = true
}
