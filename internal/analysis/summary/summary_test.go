package summary

import (
	"reflect"
	"sort"
	"testing"

	"osnoise/internal/analysis/callgraph"
)

// buildGraph hand-assembles a Graph from an adjacency list; node names
// double as identifiers in the expectations.
func buildGraph(adj map[string][]string) (*callgraph.Graph, map[string]*callgraph.Node) {
	nodes := make(map[string]*callgraph.Node)
	var order []string
	for name := range adj {
		order = append(order, name)
	}
	sort.Strings(order)
	g := &callgraph.Graph{}
	for _, name := range order {
		n := &callgraph.Node{Name: name}
		nodes[name] = n
		g.Nodes = append(g.Nodes, n)
	}
	for _, from := range order {
		for _, to := range adj[from] {
			e := &callgraph.Edge{Caller: nodes[from], Callee: nodes[to], Kind: callgraph.KindStatic}
			nodes[from].Out = append(nodes[from].Out, e)
			nodes[to].In = append(nodes[to].In, e)
		}
	}
	return g, nodes
}

// TestBottomUpOrder checks that a transitive boolean fact ("can reach
// the leaf") propagates through a chain: by the time a caller is
// summarized, its callee's summary is final.
func TestBottomUpOrder(t *testing.T) {
	g, nodes := buildGraph(map[string][]string{
		"a":    {"b"},
		"b":    {"c"},
		"c":    {"leaf"},
		"d":    {}, // disconnected: must stay false
		"leaf": {},
	})
	got := Compute(g, nil, func(n *callgraph.Node, get func(*callgraph.Node) bool) bool {
		if n.Name == "leaf" {
			return true
		}
		for _, e := range n.Out {
			if get(e.Callee) {
				return true
			}
		}
		return false
	})
	want := map[string]bool{"a": true, "b": true, "c": true, "leaf": true, "d": false}
	for name, w := range want {
		if got[nodes[name]] != w {
			t.Errorf("%s: got %v, want %v", name, got[nodes[name]], w)
		}
	}
}

// TestCycleFixpoint checks convergence through mutual recursion: the
// fact enters the cycle at one member and must reach every member.
func TestCycleFixpoint(t *testing.T) {
	// a -> b -> c -> b (cycle b<->...), c -> leaf provides the fact.
	g, nodes := buildGraph(map[string][]string{
		"a":    {"b"},
		"b":    {"c"},
		"c":    {"b", "leaf"},
		"leaf": {},
	})
	evals := 0
	got := Compute(g, nil, func(n *callgraph.Node, get func(*callgraph.Node) bool) bool {
		evals++
		if n.Name == "leaf" {
			return true
		}
		for _, e := range n.Out {
			if get(e.Callee) {
				return true
			}
		}
		return false
	})
	for _, name := range []string{"a", "b", "c", "leaf"} {
		if !got[nodes[name]] {
			t.Errorf("%s: fact did not propagate through the cycle", name)
		}
	}
	if evals > 20 {
		t.Errorf("fixpoint took %d evaluations on a 4-node graph; not converging", evals)
	}
}

// TestSelfRecursion checks that a directly recursive function is
// iterated rather than evaluated once with its own zero value.
func TestSelfRecursion(t *testing.T) {
	// rec calls itself and leaf; the fact comes from leaf, so a single
	// non-iterated evaluation would already find it — instead make the
	// summary an int that counts reachable nodes, which needs the
	// self-summary to stabilize.
	g, nodes := buildGraph(map[string][]string{
		"rec":  {"rec", "leaf"},
		"leaf": {},
	})
	got := Compute(g, nil, func(n *callgraph.Node, get func(*callgraph.Node) bool) bool {
		if n.Name == "leaf" {
			return true
		}
		ok := false
		for _, e := range n.Out {
			if e.Callee != n && get(e.Callee) {
				ok = true
			}
		}
		return ok
	})
	if !got[nodes["rec"]] {
		t.Error("self-recursive node did not converge to the callee's fact")
	}
}

// TestFollowFilter checks that filtered-out edges do not propagate.
func TestFollowFilter(t *testing.T) {
	g, nodes := buildGraph(map[string][]string{
		"a":    {"leaf"},
		"leaf": {},
	})
	// Mark the only edge as Ref and follow only Static edges.
	nodes["a"].Out[0].Kind = callgraph.KindRef
	got := Compute(g,
		func(e *callgraph.Edge) bool { return e.Kind == callgraph.KindStatic },
		func(n *callgraph.Node, get func(*callgraph.Node) bool) bool {
			if n.Name == "leaf" {
				return true
			}
			for _, e := range n.Out {
				if e.Kind == callgraph.KindStatic && get(e.Callee) {
					return true
				}
			}
			return false
		})
	if got[nodes["a"]] {
		t.Error("fact propagated along a filtered-out edge")
	}
}

// TestSCCOrder checks the condensation order contract: every component
// appears after the components it calls into.
func TestSCCOrder(t *testing.T) {
	g, nodes := buildGraph(map[string][]string{
		"top":    {"m1"},
		"m1":     {"m2"},
		"m2":     {"m1", "bottom"},
		"bottom": {},
	})
	comps := SCCs(g, nil)
	pos := make(map[*callgraph.Node]int)
	for i, comp := range comps {
		for _, n := range comp {
			pos[n] = i
		}
	}
	if pos[nodes["m1"]] != pos[nodes["m2"]] {
		t.Errorf("m1 and m2 are mutually recursive but landed in different components")
	}
	if !(pos[nodes["bottom"]] < pos[nodes["m1"]] && pos[nodes["m1"]] < pos[nodes["top"]]) {
		t.Errorf("components not callees-first: bottom=%d m=%d top=%d",
			pos[nodes["bottom"]], pos[nodes["m1"]], pos[nodes["top"]])
	}
	var sizes []int
	for _, comp := range comps {
		sizes = append(sizes, len(comp))
	}
	sort.Ints(sizes)
	if !reflect.DeepEqual(sizes, []int{1, 1, 2}) {
		t.Errorf("component sizes %v, want [1 1 2]", sizes)
	}
}
