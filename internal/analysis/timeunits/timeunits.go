// Package timeunits implements the noisevet analyzer that enforces
// unit discipline in virtual-time arithmetic.
//
// The simulator represents virtual time as a named integer nanosecond
// type (sim.Time / sim.Duration). Adding a bare literal to such a value
// — `deadline + 100` — type-checks, but the literal's unit lives only
// in the author's head: 100 nanoseconds, ticks, or microseconds are all
// plausible readings, and the paper's calibrated event costs make such
// off-by-10³ slips both easy and quantitatively invisible. The analyzer
// flags:
//
//   - additions and subtractions where one operand has a configured
//     time type and the other is a bare numeric literal (write
//     `t + 100*sim.Nanosecond`, or use a named constant);
//   - multiplications of two time-typed operands, which produce a
//     nanosecond² value that is meaningless in every unit system.
//
// Constant declarations are exempt (that is where the unit ladder
// itself — Microsecond = 1000 * Nanosecond — is built), as are listed
// conversion helpers such as the type's String method.
package timeunits

import (
	"go/ast"
	"go/token"
	"go/types"

	"osnoise/internal/analysis"
)

// Config scopes the analyzer.
type Config struct {
	// Types are the named time types, as "import/path.TypeName".
	Types []string

	// ExemptFuncs are functions inside which the rules do not apply,
	// as "import/path.FuncName" for functions and
	// "import/path.Recv.Name" for methods.
	ExemptFuncs []string
}

// New returns a time-unit analyzer for the configured types.
func New(cfg Config) *analysis.Analyzer {
	wantType := make(map[string]bool, len(cfg.Types))
	for _, t := range cfg.Types {
		wantType[t] = true
	}
	exempt := make(map[string]bool, len(cfg.ExemptFuncs))
	for _, f := range cfg.ExemptFuncs {
		exempt[f] = true
	}
	a := &analysis.Analyzer{
		Name: "timeunits",
		Doc: "flag tick/nanosecond arithmetic with bare literals and time×time products\n\n" +
			"Virtual-time values carry a unit; adding an unadorned literal hides which one, and\n" +
			"multiplying two time values produces ns² nonsense. Scale literals with the sim unit\n" +
			"constants (100*sim.Microsecond) or name them.",
	}
	a.Run = func(pass *analysis.Pass) (interface{}, error) {
		for _, file := range pass.Files {
			checkFile(pass, file, wantType, exempt)
		}
		return nil, nil
	}
	return a
}

func checkFile(pass *analysis.Pass, file *ast.File, wantType, exempt map[string]bool) {
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.GenDecl:
			// Constant/var declarations build the unit ladder itself.
		case *ast.FuncDecl:
			if d.Body == nil || exempt[funcKey(pass, d)] {
				continue
			}
			ast.Inspect(d.Body, func(n ast.Node) bool {
				if be, ok := n.(*ast.BinaryExpr); ok {
					checkBinary(pass, be, wantType)
				}
				return true
			})
		}
	}
}

func checkBinary(pass *analysis.Pass, be *ast.BinaryExpr, wantType map[string]bool) {
	xTime := isTimeType(pass.TypeOf(be.X), wantType)
	yTime := isTimeType(pass.TypeOf(be.Y), wantType)
	switch be.Op {
	case token.ADD, token.SUB:
		if xTime && bareLiteral(be.Y) {
			pass.Reportf(be.Y.Pos(), "bare literal %s %s-typed value: scale it with a unit constant (e.g. %s*sim.Nanosecond)", opWord(be.Op), typeName(pass.TypeOf(be.X)), litText(be.Y))
		}
		if yTime && bareLiteral(be.X) {
			pass.Reportf(be.X.Pos(), "bare literal %s %s-typed value: scale it with a unit constant (e.g. %s*sim.Nanosecond)", opWord(be.Op), typeName(pass.TypeOf(be.Y)), litText(be.X))
		}
	case token.MUL:
		// A constant factor (100 * sim.Microsecond) is the blessed
		// scaling idiom: only a product of two runtime time values is
		// unit nonsense.
		if constantExpr(pass, be.X) || constantExpr(pass, be.Y) {
			return
		}
		if xTime && yTime {
			pass.Reportf(be.Pos(), "product of two %s values has no time unit (ns²): one factor must be a dimensionless count", typeName(pass.TypeOf(be.X)))
		}
	}
}

// constantExpr reports whether e has a compile-time constant value.
func constantExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// bareLiteral reports whether e is a numeric literal (possibly signed
// or parenthesized) written without a unit.
func bareLiteral(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return e.Kind == token.INT || e.Kind == token.FLOAT
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return bareLiteral(e.X)
		}
	}
	return false
}

func isTimeType(t types.Type, wantType map[string]bool) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return wantType[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}

func typeName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

func litText(e ast.Expr) string {
	if bl, ok := ast.Unparen(e).(*ast.BasicLit); ok {
		return bl.Value
	}
	return "n"
}

func opWord(op token.Token) string {
	if op == token.ADD {
		return "added to"
	}
	return "subtracted from"
}

// funcKey renders a declared function as "pkgpath.Name" or
// "pkgpath.Recv.Name" for matching against Config.ExemptFuncs.
func funcKey(pass *analysis.Pass, d *ast.FuncDecl) string {
	key := pass.Pkg.Path() + "."
	if d.Recv != nil && len(d.Recv.List) == 1 {
		t := d.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			key += id.Name + "."
		}
	}
	return key + d.Name.Name
}
