// Package units declares the fixture time type, mirroring sim.Time:
// the constant ladder itself lives in an exempt const declaration.
package units

// Time is virtual time in nanoseconds.
type Time int64

// Duration aliases Time, as sim.Duration does.
type Duration = Time

const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
)

// Scaled is on the exempt-function list in the test configuration: a
// named conversion helper may use bare literals.
func (t Time) Scaled() Time {
	return t*1000 + 1
}

// Half is NOT exempt; its bare-literal addition is reported.
func (t Time) Half() Time {
	return t/2 + 1 // want `bare literal added to Time-typed value`
}
