// Package a exercises the timeunits analyzer over units.Time values.
package a

import "units"

func deadlines(t units.Time) {
	_ = t + 100                  // want `bare literal added to Time-typed value`
	_ = t - 5                    // want `bare literal subtracted from Time-typed value`
	_ = 250 + t                  // want `bare literal added to Time-typed value`
	_ = t + (-3)                 // want `bare literal added to Time-typed value`
	_ = t + 100*units.Nanosecond // unit-scaled literal: ok
	_ = t + units.Microsecond    // named constant: ok
	_ = t * 3                    // scaling by a count: ok
	_ = 2 * t                    // ok
	_ = t / 4                    // ok
	if t > 0 {                   // comparisons are not arithmetic: ok
		return
	}
}

func product(a, b units.Time) units.Time {
	return a * b // want `product of two Time values has no time unit`
}

func plainInts(x int64) int64 {
	return x + 100 // untyped arithmetic on plain ints: ok
}

// exempted is on the exempt list in the test configuration.
func exempted(t units.Time) units.Time {
	return t + 42
}
