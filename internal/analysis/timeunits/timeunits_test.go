package timeunits_test

import (
	"testing"

	"osnoise/internal/analysis/analysistest"
	"osnoise/internal/analysis/timeunits"
)

func TestTimeUnits(t *testing.T) {
	a := timeunits.New(timeunits.Config{
		Types:       []string{"units.Time"},
		ExemptFuncs: []string{"a.exempted", "units.Time.Scaled"},
	})
	analysistest.Run(t, "testdata", a, "a", "units")
}
