// Package goroleak implements the noisevet analyzer that enforces the
// resilience contract's goroutine-shutdown guarantee: every goroutine
// spawned in the parallel analysis and simulation packages must be
// joinable or cancellable, so that cancelling an entry point can never
// strand a worker.
//
// A `go func(){…}()` statement in a configured package is flagged
// unless the goroutine body satisfies one of:
//
//   - WaitGroup-joined on every path: each control-flow path from entry
//     to function exit passes a sync.WaitGroup Done() call. The
//     dominant `defer wg.Done()` idiom satisfies this structurally —
//     defer blocks lie on the exit path in the internal/analysis/cfg
//     graph. A Done() reachable on only some paths is still a leak: the
//     parent's Wait() blocks forever on the path that skips it.
//
//   - Bounded by a shutdown signal: the body receives from a
//     done/cancel-style channel (`<-done`, `<-ctx.Done()`, a select
//     case on either) or ranges over a channel (the parent terminates
//     the worker by closing it).
//
// A body that can neither terminate (no path to exit, no panic) nor
// observe a signal is flagged even if it calls Done — a goroutine stuck
// in `for {}` leaks past its own defer.
//
// The check is intra-procedural and syntactic about the spawn site:
// `go namedFunc(...)` is skipped (the body is out of view), which is a
// documented limitation — the repository's worker pools all spawn
// literals.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"osnoise/internal/analysis"
	"osnoise/internal/analysis/cfg"
)

// Config scopes the analyzer.
type Config struct {
	// Packages are package-path prefixes the analyzer applies to; an
	// empty list means every target package.
	Packages []string
}

// cancelName matches channel identifiers that signal shutdown.
var cancelName = regexp.MustCompile(`(?i)done|cancel|stop|quit`)

// New returns a goroleak analyzer.
func New(cfgc Config) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "goroleak",
		Doc: "require every spawned goroutine to be WaitGroup-joined on all paths or bounded by a done/cancel receive\n\n" +
			"The cancellation contract guarantees that AnalyzeParallel/AnalyzeStream/ReadParallel/cluster.Run\n" +
			"leak zero goroutines when their context fires; a worker that is neither joined nor able to\n" +
			"observe shutdown outlives the call that spawned it.",
	}
	a.Run = func(pass *analysis.Pass) (interface{}, error) {
		if len(cfgc.Packages) > 0 && !matchAny(cfgc.Packages, pass.Pkg.Path()) {
			return nil, nil
		}
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
				if !ok {
					return true // go namedFunc(...): body out of view
				}
				checkGoroutine(pass, gs, lit)
				return true
			})
		}
		return nil, nil
	}
	return a
}

// checkGoroutine applies the join-or-signal rule to one spawned literal.
func checkGoroutine(pass *analysis.Pass, gs *ast.GoStmt, lit *ast.FuncLit) {
	if hasShutdownReceive(pass, lit.Body) {
		return
	}
	g := cfg.New(lit.Body, nil)
	leak, terminates := walkPaths(pass, g)
	if leak {
		pass.Reportf(gs.Pos(), "goroutine is neither WaitGroup-joined on every path nor bounded by a done/cancel receive; it can outlive cancellation (defer wg.Done() or select on a done channel)")
		return
	}
	if !terminates {
		pass.Reportf(gs.Pos(), "goroutine never terminates and observes no done/cancel signal; it leaks for the life of the process")
	}
}

// walkPaths explores every path from entry. leak reports a path that
// reaches the function exit without passing a sync.WaitGroup Done();
// terminates reports that at least one path ends at all — at the exit
// or in a no-return block (panic and friends). An unreachable exit with
// no panicking path means the goroutine spins or blocks forever.
func walkPaths(pass *analysis.Pass, g *cfg.Graph) (leak, terminates bool) {
	seen := map[*cfg.Block]bool{}
	var visit func(b *cfg.Block, joined bool)
	visit = func(b *cfg.Block, joined bool) {
		if b == g.Exit {
			terminates = true
			if !joined {
				leak = true
			}
			return
		}
		if b.NoReturn {
			terminates = true // panic/os.Exit tears the goroutine down
		}
		if seen[b] {
			return
		}
		seen[b] = true
		for _, n := range b.Nodes {
			if joined {
				break
			}
			if hasWaitGroupDone(pass, n) {
				joined = true
			}
		}
		for _, s := range b.Succs {
			visit(s, joined)
		}
	}
	visit(g.Entry, false)
	return leak, terminates
}

// hasWaitGroupDone reports whether the node calls Done on a
// sync.WaitGroup (directly or via any receiver expression).
func hasWaitGroupDone(pass *analysis.Pass, n ast.Node) bool {
	found := false
	cfg.Walk(n, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Done" {
			found = true
		}
		return true
	})
	return found
}

// hasShutdownReceive reports whether the body observes a shutdown
// signal: a receive from a done/cancel-named channel or from a Done()
// call (context.Context), or a range over a channel (closed by the
// parent to terminate the worker).
func hasShutdownReceive(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	cfg.Walk(body, func(m ast.Node) bool {
		if found {
			return false
		}
		switch m := m.(type) {
		case *ast.UnaryExpr:
			if m.Op == token.ARROW && isShutdownChan(pass, m.X) {
				found = true
			}
		case *ast.RangeStmt:
			if isChan(pass, m.X) {
				found = true
			}
		}
		return true
	})
	return found
}

// isShutdownChan reports whether the received-from expression looks
// like a shutdown signal: any X.Done() call (context.Context and
// friends), or a channel whose spelling names done/cancel/stop/quit.
func isShutdownChan(pass *analysis.Pass, x ast.Expr) bool {
	x = ast.Unparen(x)
	if call, ok := x.(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
		return false
	}
	return isChan(pass, x) && cancelName.MatchString(types.ExprString(x))
}

// isChan reports whether the expression has channel type.
func isChan(pass *analysis.Pass, x ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(x)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func matchAny(prefixes []string, path string) bool {
	for _, p := range prefixes {
		if analysis.PathPrefixMatch(p, path) {
			return true
		}
	}
	return false
}
