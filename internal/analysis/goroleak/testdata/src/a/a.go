// Package a exercises the goroleak analyzer (in scope).
package a

import (
	"context"
	"sync"
)

func work()     {}
func use(v int) {}

// joined is the canonical pool worker: defer Done lies on every path.
func joined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// joinedExplicit calls Done without defer but still on every path.
func joinedExplicit(cond bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		if cond {
			work()
			wg.Done()
			return
		}
		wg.Done()
	}()
	wg.Wait()
}

// partialDone joins on one branch only: the parent's Wait can hang.
func partialDone(cond bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `neither WaitGroup-joined on every path`
		if cond {
			wg.Done()
			return
		}
		work()
	}()
	wg.Wait()
}

// ctxBounded selects on ctx.Done — cancellable, never joined.
func ctxBounded(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				use(v)
			}
		}
	}()
}

// quitChan receives from a shutdown-named channel.
func quitChan(quit chan struct{}) {
	go func() {
		<-quit
		work()
	}()
}

// rangeWorker terminates when the parent closes the work channel.
func rangeWorker(ch chan int) {
	go func() {
		for v := range ch {
			use(v)
		}
	}()
}

// fieldDone joins through a struct-held WaitGroup.
type pool struct{ wg sync.WaitGroup }

func (p *pool) spawn() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		work()
	}()
}

// unjoined exits cleanly but nothing observes it finish.
func unjoined() {
	go func() { // want `neither WaitGroup-joined on every path`
		work()
	}()
}

// spinner never terminates: its own defer Done can never run.
func spinner(ch chan int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `never terminates`
		defer wg.Done()
		for {
			ch <- 1
		}
	}()
}

// panics is exempt: a panic tears the goroutine (and process) down.
func panics() {
	go func() {
		panic("deliberate")
	}()
}

// named spawns are out of view — documented limitation, no diagnostic.
func named() {
	go work()
}
