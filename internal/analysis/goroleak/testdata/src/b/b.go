// Package b is outside the configured scope: its blatant leak must not
// be reported.
package b

func leak() {
	ch := make(chan int)
	go func() {
		for {
			ch <- 1
		}
	}()
}
