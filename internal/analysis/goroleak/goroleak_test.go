package goroleak_test

import (
	"testing"

	"osnoise/internal/analysis/analysistest"
	"osnoise/internal/analysis/goroleak"
)

func TestGoroleak(t *testing.T) {
	a := goroleak.New(goroleak.Config{Packages: []string{"a"}})
	analysistest.Run(t, "testdata", a, "a", "b")
}
