// Package analysis is a self-contained, stdlib-only reimplementation of
// the core of golang.org/x/tools/go/analysis, sized for this module's
// needs. It exists because the repository's invariants — determinism of
// the simulation core, exhaustive handling of trace event types,
// atomic-consistency of the ring buffer counters, and unit discipline in
// virtual-time arithmetic — are load-bearing for every result the
// reproduction emits, and convention alone does not keep them true.
//
// The API deliberately mirrors go/analysis (Analyzer, Pass, Diagnostic,
// Reportf) so that, should golang.org/x/tools become available as a
// dependency, the analyzers port over with mechanical changes only. The
// build environment for this module is fully offline, so the framework
// itself depends on nothing outside the standard library: packages are
// enumerated with `go list`, parsed with go/parser, and type-checked
// with go/types backed by the source importer.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Unlike x/tools, there is no
// Requires/Fact machinery: an analyzer here is either a pure
// per-package syntax+types pass (Run) or a whole-module interprocedural
// pass (RunModule), which is all the noisevet suite needs.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //noisevet:ignore directives. By convention it is a single
	// lowercase word.
	Name string

	// Doc is the analyzer's documentation: first line is a one-line
	// summary shown by `noisevet -list`.
	Doc string

	// Run applies the analyzer to one package, reporting diagnostics
	// through pass.Report. The returned value is ignored by the driver
	// (kept in the signature for x/tools compatibility). Exactly one of
	// Run and RunModule must be set.
	Run func(pass *Pass) (interface{}, error)

	// RunModule applies the analyzer once to the whole loaded module
	// instead of package by package. Interprocedural analyzers (call
	// graph, reachability, bottom-up summaries) use this form: they need
	// every package's syntax and types at once to resolve calls across
	// package boundaries.
	RunModule func(pass *ModulePass) error
}

// Pass provides one analyzer run with a single type-checked package and
// a sink for diagnostics.
type Pass struct {
	Analyzer *Analyzer

	// Fset maps token.Pos values in the package's syntax trees (and in
	// reported diagnostics) to file positions.
	Fset *token.FileSet

	// Files are the package's parsed syntax trees, one per Go source
	// file, with comments attached.
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo holds the type-checker's results for the package's
	// syntax: types of expressions, uses and definitions of
	// identifiers, and selection information.
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver attaches the analyzer
	// name and applies //noisevet:ignore suppression.
	Report func(Diagnostic)
}

// Module is the whole-program view a module-level analyzer runs over:
// every loaded package (targets and in-module dependencies) sharing one
// FileSet. The checker builds a single Module per run and hands it to
// every RunModule analyzer, so expensive shared structures — the
// repo-wide call graph above all — are built once and memoized here.
type Module struct {
	// Fset maps token.Pos values across every package's syntax.
	Fset *token.FileSet

	// Pkgs are the loaded packages in dependency order (dependencies
	// before dependents). Pkgs with Target set matched the load patterns
	// directly; analyzers report findings only in target packages but
	// may resolve calls through any of them.
	Pkgs []*Package

	shared map[string]interface{}
}

// Cache memoizes an expensive shared structure under key, building it
// on first use. The call-graph engine uses it so that several
// interprocedural analyzers in one run share a single graph.
func (m *Module) Cache(key string, build func() interface{}) interface{} {
	if m.shared == nil {
		m.shared = make(map[string]interface{})
	}
	if v, ok := m.shared[key]; ok {
		return v
	}
	v := build()
	m.shared[key] = v
	return v
}

// ModulePass provides one module-level analyzer run with the whole
// loaded module and a sink for diagnostics.
type ModulePass struct {
	Analyzer *Analyzer
	Module   *Module

	// Report delivers one diagnostic. The driver attaches the analyzer
	// name and applies //noisevet:ignore suppression exactly as for
	// per-package passes.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if not found. It
// mirrors (*types.Info).TypeOf but reads nicer at call sites.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// ObjectOf returns the object denoted by identifier id, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.TypesInfo.ObjectOf(id) }

// Inspect walks every file of the pass in depth-first order, calling f
// for each node. If f returns false the node's children are skipped.
// It stands in for x/tools' inspect.Analyzer result.
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}

// PathPrefixMatch reports whether path is prefix itself or lies under
// prefix in slash-separated package-path terms ("a/b" matches "a/b" and
// "a/b/c" but not "a/bc"). Analyzers use it for package allowlists.
func PathPrefixMatch(prefix, path string) bool {
	if path == prefix {
		return true
	}
	return len(path) > len(prefix) && path[:len(prefix)] == prefix && path[len(prefix)] == '/'
}
