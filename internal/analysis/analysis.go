// Package analysis is a self-contained, stdlib-only reimplementation of
// the core of golang.org/x/tools/go/analysis, sized for this module's
// needs. It exists because the repository's invariants — determinism of
// the simulation core, exhaustive handling of trace event types,
// atomic-consistency of the ring buffer counters, and unit discipline in
// virtual-time arithmetic — are load-bearing for every result the
// reproduction emits, and convention alone does not keep them true.
//
// The API deliberately mirrors go/analysis (Analyzer, Pass, Diagnostic,
// Reportf) so that, should golang.org/x/tools become available as a
// dependency, the analyzers port over with mechanical changes only. The
// build environment for this module is fully offline, so the framework
// itself depends on nothing outside the standard library: packages are
// enumerated with `go list`, parsed with go/parser, and type-checked
// with go/types backed by the source importer.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Unlike x/tools, there is no
// Requires/Fact machinery: every analyzer here is a pure per-package
// syntax+types pass, which is all the noisevet suite needs.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //noisevet:ignore directives. By convention it is a single
	// lowercase word.
	Name string

	// Doc is the analyzer's documentation: first line is a one-line
	// summary shown by `noisevet -list`.
	Doc string

	// Run applies the analyzer to one package, reporting diagnostics
	// through pass.Report. The returned value is ignored by the driver
	// (kept in the signature for x/tools compatibility).
	Run func(pass *Pass) (interface{}, error)
}

// Pass provides one analyzer run with a single type-checked package and
// a sink for diagnostics.
type Pass struct {
	Analyzer *Analyzer

	// Fset maps token.Pos values in the package's syntax trees (and in
	// reported diagnostics) to file positions.
	Fset *token.FileSet

	// Files are the package's parsed syntax trees, one per Go source
	// file, with comments attached.
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo holds the type-checker's results for the package's
	// syntax: types of expressions, uses and definitions of
	// identifiers, and selection information.
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver attaches the analyzer
	// name and applies //noisevet:ignore suppression.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if not found. It
// mirrors (*types.Info).TypeOf but reads nicer at call sites.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// ObjectOf returns the object denoted by identifier id, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.TypesInfo.ObjectOf(id) }

// Inspect walks every file of the pass in depth-first order, calling f
// for each node. If f returns false the node's children are skipped.
// It stands in for x/tools' inspect.Analyzer result.
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}

// PathPrefixMatch reports whether path is prefix itself or lies under
// prefix in slash-separated package-path terms ("a/b" matches "a/b" and
// "a/b/c" but not "a/bc"). Analyzers use it for package allowlists.
func PathPrefixMatch(prefix, path string) bool {
	if path == prefix {
		return true
	}
	return len(path) > len(prefix) && path[:len(prefix)] == prefix && path[len(prefix)] == '/'
}
