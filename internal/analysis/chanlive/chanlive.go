// Package chanlive checks the lifecycle of channels created in the
// measurement-critical packages: every send needs a reachable
// receiver (and every receive a sender or a close), closes stay with
// the function that created the channel, and no path sends on or
// re-closes an already-closed channel.
//
// The analyzer tracks each `make(chan T)` site through the module:
// local aliases, stores into slices/arrays/maps of channels, captures
// by function literals, and arguments to statically resolved calls
// (including interface dispatch to in-repo implementations and
// goroutine spawns). A channel that flows somewhere the tracker
// cannot follow — returned, stored in a struct or package variable,
// passed to an external or dynamic call, sent over another channel —
// escapes, and the analyzer stays silent about it rather than guess.
//
// For fully tracked channels it reports:
//
//   - sends with no receive anywhere the channel flows (each send
//     eventually blocks, or the buffer fills and is never drained);
//   - receives with neither a send nor a close anywhere (the receive
//     blocks forever);
//   - a send reachable after a close of the same channel on the
//     creating function's CFG, including a goroutine spawned after
//     the close whose body sends (send on closed channel panics);
//   - a second close reachable after a first (double close panics);
//   - a close outside the creating function and its literals
//     (ownership convention: whoever makes the channel closes it).
//
// Collections are tracked at collection granularity: `chans[i] <- v`
// and `for _, ch := range chans { close(ch) }` are operations on the
// one tracker owning every element made into `chans`.
package chanlive

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"osnoise/internal/analysis"
	"osnoise/internal/analysis/callgraph"
	"osnoise/internal/analysis/cfg"
	"osnoise/internal/analysis/concurrency"
)

// Config selects which packages' channel creation sites are checked.
type Config struct {
	// Packages lists package-path prefixes whose make(chan) sites the
	// analyzer owns. Empty means every target package in the module.
	Packages []string
}

// New returns the chanlive analyzer.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "chanlive",
		Doc: "check channel lifecycle in measurement packages: reachable " +
			"receivers for every send, creator-owned close, no send after " +
			"close, no double close",
		RunModule: func(pass *analysis.ModulePass) error {
			return run(pass, cfg)
		},
	}
}

// binding names one value the tracker follows: either a channel
// variable or a container (slice, array, map) whose elements are the
// tracked channels.
type binding struct {
	obj  *types.Var
	elem bool // obj holds the channels, not a channel
}

// opRef records one channel operation and the function it occurs in.
type opRef struct {
	node *callgraph.Node
	pos  token.Pos
}

// tracker accumulates everything known about the channels made at one
// make(chan) site.
type tracker struct {
	name    string // display name of the first binding
	creator *callgraph.Node
	makePos token.Pos
	escaped bool

	sends, recvs, closes []opRef
	seenOp               map[token.Pos]bool
}

func (t *tracker) addOp(list *[]opRef, n *callgraph.Node, pos token.Pos) {
	if t.seenOp[pos] {
		return
	}
	t.seenOp[pos] = true
	*list = append(*list, opRef{node: n, pos: pos})
}

// engine carries the per-run caches shared by all trackers.
type engine struct {
	pass    *analysis.ModulePass
	graph   *callgraph.Graph
	parents map[*callgraph.Node]map[ast.Node]ast.Node
	cfgs    map[*callgraph.Node]*cfg.Graph
}

func run(pass *analysis.ModulePass, config Config) error {
	info := concurrency.Of(pass.Module)
	e := &engine{
		pass:    pass,
		graph:   info.Graph,
		parents: make(map[*callgraph.Node]map[ast.Node]ast.Node),
		cfgs:    make(map[*callgraph.Node]*cfg.Graph),
	}

	var trackers []*tracker
	for _, n := range e.graph.Nodes {
		if n.Pkg == nil || !n.Pkg.Target || n.Body() == nil {
			continue
		}
		if !pkgSelected(config.Packages, n.Pkg.PkgPath) {
			continue
		}
		for _, mk := range e.makeSites(n) {
			trackers = append(trackers, e.trace(n, mk))
		}
	}

	sort.Slice(trackers, func(i, j int) bool { return trackers[i].makePos < trackers[j].makePos })
	for _, t := range trackers {
		e.check(t)
	}
	return nil
}

func pkgSelected(prefixes []string, path string) bool {
	if len(prefixes) == 0 {
		return true
	}
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// makeSites returns the make(chan T) calls lexically owned by n
// (function literals are their own nodes and report their own makes).
func (e *engine) makeSites(n *callgraph.Node) []*ast.CallExpr {
	var sites []*ast.CallExpr
	info := n.Pkg.Info
	n.Walk(func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "make" {
			return true
		}
		if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		if _, isChan := info.TypeOf(call).(*types.Chan); isChan {
			sites = append(sites, call)
		}
		return true
	})
	return sites
}

// workItem is one (function, binding) pair awaiting a scan.
type workItem struct {
	node *callgraph.Node
	b    binding
}

// trace follows the channels made at mk from their creation site
// through every flow the tracker understands, recording operations
// and marking the tracker escaped at the first flow it cannot follow.
func (e *engine) trace(creator *callgraph.Node, mk *ast.CallExpr) *tracker {
	t := &tracker{
		name:    "make(chan)",
		creator: creator,
		makePos: mk.Pos(),
		seenOp:  make(map[token.Pos]bool),
	}

	var queue []workItem
	visited := make(map[workItem]bool)
	enqueue := func(n *callgraph.Node, b binding) {
		if b.obj == nil {
			return
		}
		if t.name == "make(chan)" {
			t.name = b.obj.Name()
		}
		// A package-level binding is visible module-wide without any
		// call-graph flow; that is beyond the tracker.
		if b.obj.Parent() == b.obj.Pkg().Scope() {
			t.escaped = true
			return
		}
		w := workItem{node: n, b: b}
		if !visited[w] {
			visited[w] = true
			queue = append(queue, w)
		}
	}

	// The make call itself is the first appearance: its parent context
	// establishes the initial binding (or an immediate escape).
	e.classify(t, creator, mk, enqueue)

	for len(queue) > 0 && !t.escaped {
		w := queue[0]
		queue = queue[1:]
		e.scan(t, w.node, w.b, enqueue)
		// Literals defined in this function capture its locals; they
		// see the same binding objects.
		for _, edge := range w.node.Out {
			if edge.Callee.Parent == w.node && edge.Callee.Lit != nil {
				child := workItem{node: edge.Callee, b: w.b}
				if !visited[child] {
					visited[child] = true
					queue = append(queue, child)
				}
			}
		}
	}
	return t
}

// scan visits every appearance of b inside n and classifies it.
func (e *engine) scan(t *tracker, n *callgraph.Node, b binding, enqueue func(*callgraph.Node, binding)) {
	body := n.Body()
	if body == nil {
		return
	}
	info := n.Pkg.Info
	parents := e.parentsOf(n)
	var idents []*ast.Ident
	walkOwned(body, func(m ast.Node) {
		if id, ok := m.(*ast.Ident); ok {
			if obj, ok := identVar(info, id); ok && obj == b.obj {
				idents = append(idents, id)
			}
		}
	})
	for _, id := range idents {
		if t.escaped {
			return
		}
		e.classifyIdent(t, n, parents, id, b.elem, enqueue)
	}
}

// identVar resolves an identifier to the variable it uses or defines.
func identVar(info *types.Info, id *ast.Ident) (*types.Var, bool) {
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v, true
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v, true
	}
	return nil, false
}

// classifyIdent lifts an identifier appearance through parens and —
// for container bindings — one index expression, then classifies the
// resulting channel- or container-valued expression.
func (e *engine) classifyIdent(t *tracker, n *callgraph.Node, parents map[ast.Node]ast.Node, id *ast.Ident, elem bool, enqueue func(*callgraph.Node, binding)) {
	expr := ast.Expr(id)
	for {
		switch p := parents[expr].(type) {
		case *ast.ParenExpr:
			expr = p
			continue
		case *ast.IndexExpr:
			if elem && p.X == expr {
				expr, elem = p, false
				continue
			}
		}
		break
	}
	if elem {
		e.classifyContainer(t, n, parents, expr, enqueue)
		return
	}
	e.classify(t, n, expr, enqueue)
}

// classifyContainer handles an appearance of a container-of-channels
// binding that was not indexed down to an element.
func (e *engine) classifyContainer(t *tracker, n *callgraph.Node, parents map[ast.Node]ast.Node, expr ast.Expr, enqueue func(*callgraph.Node, binding)) {
	info := n.Pkg.Info
	switch p := parents[expr].(type) {
	case *ast.RangeStmt:
		if p.X != expr {
			return // expr is the Key/Value being (re)bound: not a new flow
		}
		// Ranging a container of channels binds each element in turn.
		if v, ok := p.Value.(*ast.Ident); ok && v.Name != "_" {
			if obj, ok := identVar(info, v); ok {
				enqueue(n, binding{obj: obj})
				return
			}
		}
		if p.Value == nil {
			return // index-only range: no element flows out
		}
		t.escaped = true
	case *ast.AssignStmt:
		e.classifyAssign(t, n, p, expr, true, enqueue)
	case *ast.ValueSpec:
		e.classifyValueSpec(t, n, p, expr, true, enqueue)
	case *ast.CallExpr:
		e.classifyCallArg(t, n, p, expr, true, enqueue)
	case *ast.BinaryExpr, *ast.IfStmt, *ast.ForStmt:
		// Comparisons and conditions (chans == nil) don't move the value.
	default:
		t.escaped = true
	}
}

// classify handles a channel-valued expression appearance (including
// the make call itself) by the statement or expression containing it.
func (e *engine) classify(t *tracker, n *callgraph.Node, expr ast.Expr, enqueue func(*callgraph.Node, binding)) {
	parents := e.parentsOf(n)
	switch p := parents[expr].(type) {
	case *ast.SendStmt:
		if p.Chan == expr {
			t.addOp(&t.sends, n, expr.Pos())
			return
		}
		t.escaped = true // the channel itself is the value being sent
	case *ast.UnaryExpr:
		if p.Op == token.ARROW {
			t.addOp(&t.recvs, n, expr.Pos())
			return
		}
		t.escaped = true // &ch and friends
	case *ast.RangeStmt:
		if p.X == expr {
			t.addOp(&t.recvs, n, expr.Pos())
			return
		}
		// expr sits in Key/Value position: a rebind of an already
		// tracked variable, not a new flow.
	case *ast.CallExpr:
		e.classifyCallArg(t, n, p, expr, false, enqueue)
	case *ast.AssignStmt:
		e.classifyAssign(t, n, p, expr, false, enqueue)
	case *ast.ValueSpec:
		e.classifyValueSpec(t, n, p, expr, false, enqueue)
	case *ast.BinaryExpr, *ast.CaseClause, *ast.IfStmt, *ast.ForStmt, *ast.SwitchStmt:
		// Comparisons (ch == nil, case ch:) don't move the value.
	case *ast.ExprStmt:
		// A bare receive/send lives under UnaryExpr/SendStmt; anything
		// else here is inert.
	default:
		t.escaped = true
	}
}

// classifyCallArg resolves expr's role as a call argument: a builtin
// channel operation, a statically resolved parameter flow, or an
// escape into code the tracker cannot see.
func (e *engine) classifyCallArg(t *tracker, n *callgraph.Node, call *ast.CallExpr, expr ast.Expr, elem bool, enqueue func(*callgraph.Node, binding)) {
	if call.Fun == expr {
		return // calling a channel is impossible; defensive
	}
	info := n.Pkg.Info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "close":
				if !elem {
					t.addOp(&t.closes, n, call.Pos())
					return
				}
			case "len", "cap":
				return
			}
			t.escaped = true // append, copy, … lose track of elements
			return
		}
	}

	argIdx := -1
	for i, a := range call.Args {
		if a == expr {
			argIdx = i
			break
		}
	}
	if argIdx < 0 {
		t.escaped = true // inside a composite arg the tracker can't model
		return
	}
	targets, known := e.graph.CalleesOf(call)
	if !known || len(targets) == 0 {
		t.escaped = true // external, dynamic, or unresolved callee
		return
	}
	if call.Ellipsis.IsValid() {
		t.escaped = true
		return
	}
	for _, callee := range targets {
		param := calleeParam(callee, argIdx)
		if param == nil || callee.Body() == nil {
			t.escaped = true // variadic tail or bodyless callee
			return
		}
		enqueue(callee, binding{obj: param, elem: elem})
	}
}

// calleeParam returns the parameter variable at index i of the callee,
// or nil when i lands in a variadic tail or out of range.
func calleeParam(callee *callgraph.Node, i int) *types.Var {
	var sig *types.Signature
	switch {
	case callee.Obj != nil:
		sig = callee.Obj.Type().(*types.Signature)
	case callee.Lit != nil:
		s, ok := callee.Pkg.Info.TypeOf(callee.Lit).(*types.Signature)
		if !ok {
			return nil
		}
		sig = s
	default:
		return nil
	}
	params := sig.Params()
	if i >= params.Len() || (sig.Variadic() && i >= params.Len()-1) {
		return nil
	}
	return params.At(i)
}

func (e *engine) classifyAssign(t *tracker, n *callgraph.Node, p *ast.AssignStmt, expr ast.Expr, elem bool, enqueue func(*callgraph.Node, binding)) {
	for i, r := range p.Rhs {
		if r != expr {
			continue
		}
		if len(p.Lhs) != len(p.Rhs) {
			t.escaped = true
			return
		}
		e.bindLHS(t, n, p.Lhs[i], elem, enqueue)
		return
	}
	// expr on the LHS: an overwrite of an already tracked binding.
}

func (e *engine) classifyValueSpec(t *tracker, n *callgraph.Node, p *ast.ValueSpec, expr ast.Expr, elem bool, enqueue func(*callgraph.Node, binding)) {
	for i, v := range p.Values {
		if v != expr {
			continue
		}
		if len(p.Names) != len(p.Values) {
			t.escaped = true
			return
		}
		e.bindLHS(t, n, p.Names[i], elem, enqueue)
		return
	}
}

// bindLHS classifies the destination of an assignment whose RHS is a
// tracked value: a variable alias, a store into a container, or an
// escape into a struct field or dereference.
func (e *engine) bindLHS(t *tracker, n *callgraph.Node, lhs ast.Expr, elem bool, enqueue func(*callgraph.Node, binding)) {
	info := n.Pkg.Info
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		if obj, ok := identVar(info, l); ok {
			enqueue(n, binding{obj: obj, elem: elem})
			return
		}
		t.escaped = true
	case *ast.IndexExpr:
		if elem {
			t.escaped = true // container stored into a container: too deep
			return
		}
		if base, ok := ast.Unparen(l.X).(*ast.Ident); ok {
			if obj, ok := identVar(info, base); ok {
				enqueue(n, binding{obj: obj, elem: true})
				return
			}
		}
		t.escaped = true
	default:
		t.escaped = true // struct field, dereference, …
	}
}

// --- checks -----------------------------------------------------------

func (e *engine) check(t *tracker) {
	if t.escaped {
		return // the channel flows beyond the tracker; stay silent
	}
	pass := e.pass

	if len(t.sends) > 0 && len(t.recvs) == 0 {
		pass.Reportf(t.makePos,
			"channel %s is sent on (%s) but never received from anywhere it flows; sends block forever once the buffer fills",
			t.name, e.position(t.sends[0].pos))
	}
	if len(t.recvs) > 0 && len(t.sends) == 0 && len(t.closes) == 0 {
		pass.Reportf(t.makePos,
			"channel %s is received from (%s) but never sent on or closed; the receive blocks forever",
			t.name, e.position(t.recvs[0].pos))
	}

	owners := ownerSet(t.creator)
	for _, c := range t.closes {
		if !owners[c.node] {
			pass.Reportf(c.pos,
				"close(%s) in %s, but the channel is created by %s; the creating function (or its literals) owns the close",
				t.name, concurrency.FuncDisplay(c.node), concurrency.FuncDisplay(t.creator))
		}
		// A send textually later in the same function that remains
		// reachable after the close.
		for _, s := range t.sends {
			if s.node == c.node && e.reachableAfter(c.node, c.pos, s.pos) {
				pass.Reportf(s.pos,
					"send on %s is reachable after its close at %s; send on a closed channel panics",
					t.name, e.position(c.pos))
			}
		}
		// A goroutine spawned after the close whose body sends.
		for _, edge := range c.node.Out {
			if edge.Kind != callgraph.KindGo {
				continue
			}
			if !sendsOn(t, edge.Callee) || !e.reachableAfter(c.node, c.pos, edge.Pos) {
				continue
			}
			pass.Reportf(edge.Pos,
				"goroutine started after close(%s) at %s sends on it; send on a closed channel panics",
				t.name, e.position(c.pos))
		}
	}

	// Double close: two distinct close sites in one function with a CFG
	// path from one to the other.
	closes := append([]opRef(nil), t.closes...)
	sort.Slice(closes, func(i, j int) bool { return closes[i].pos < closes[j].pos })
	for i := 0; i < len(closes); i++ {
		for j := i + 1; j < len(closes); j++ {
			a, b := closes[i], closes[j]
			if a.node != b.node {
				continue
			}
			switch {
			case e.reachableAfter(a.node, a.pos, b.pos):
				pass.Reportf(b.pos,
					"second close(%s) is reachable after the close at %s; closing a closed channel panics",
					t.name, e.position(a.pos))
			case e.reachableAfter(a.node, b.pos, a.pos):
				pass.Reportf(a.pos,
					"second close(%s) is reachable after the close at %s; closing a closed channel panics",
					t.name, e.position(b.pos))
			}
		}
	}
}

// sendsOn reports whether n (or a literal defined in it) holds one of
// the tracker's send sites.
func sendsOn(t *tracker, n *callgraph.Node) bool {
	for _, s := range t.sends {
		for m := s.node; m != nil; m = m.Parent {
			if m == n {
				return true
			}
		}
	}
	return false
}

// ownerSet returns the creator and every literal lexically defined
// under it: the functions allowed to close the channel.
func ownerSet(creator *callgraph.Node) map[*callgraph.Node]bool {
	owners := map[*callgraph.Node]bool{creator: true}
	stack := []*callgraph.Node{creator}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, edge := range n.Out {
			if edge.Callee.Parent == n && edge.Callee.Lit != nil && !owners[edge.Callee] {
				owners[edge.Callee] = true
				stack = append(stack, edge.Callee)
			}
		}
	}
	return owners
}

// --- CFG reachability -------------------------------------------------

// reachableAfter reports whether execution can reach `to` after
// executing `from` within n's body: same block and later statement, or
// a successor-path to the block containing `to`.
func (e *engine) reachableAfter(n *callgraph.Node, from, to token.Pos) bool {
	g := e.cfgOf(n)
	if g == nil {
		return false
	}
	fb, fi := locate(g, from)
	tb, ti := locate(g, to)
	if fb == nil || tb == nil {
		return false
	}
	if fb == tb && ti > fi {
		return true
	}
	seen := make(map[*cfg.Block]bool)
	stack := append([]*cfg.Block(nil), fb.Succs...)
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		if b == tb {
			return true
		}
		stack = append(stack, b.Succs...)
	}
	return false
}

// locate finds the block and statement index whose innermost span
// contains pos.
func locate(g *cfg.Graph, pos token.Pos) (*cfg.Block, int) {
	var (
		bestBlock *cfg.Block
		bestIdx   int
		bestSpan  = token.Pos(-1)
	)
	for _, b := range g.Blocks {
		for i, nd := range b.Nodes {
			if nd.Pos() <= pos && pos < nd.End() {
				span := nd.End() - nd.Pos()
				if bestSpan < 0 || span < bestSpan {
					bestBlock, bestIdx, bestSpan = b, i, span
				}
			}
		}
	}
	return bestBlock, bestIdx
}

func (e *engine) cfgOf(n *callgraph.Node) *cfg.Graph {
	if g, ok := e.cfgs[n]; ok {
		return g
	}
	var g *cfg.Graph
	if body := n.Body(); body != nil {
		g = cfg.New(body, nil)
	}
	e.cfgs[n] = g
	return g
}

// --- helpers ----------------------------------------------------------

func (e *engine) parentsOf(n *callgraph.Node) map[ast.Node]ast.Node {
	if p, ok := e.parents[n]; ok {
		return p
	}
	p := buildParents(n.Body())
	e.parents[n] = p
	return p
}

// buildParents maps every node lexically owned by root to its parent.
// Function literal subtrees belong to their own call-graph nodes and
// are not descended into (the literal itself is mapped, so a make
// assigned from a literal-valued context still classifies).
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	if root == nil {
		return parents
	}
	var stack []ast.Node
	ast.Inspect(root, func(m ast.Node) bool {
		if m == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[m] = stack[len(stack)-1]
		}
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		stack = append(stack, m)
		return true
	})
	return parents
}

// walkOwned visits the nodes lexically owned by root, skipping nested
// function literals (they are separate call-graph nodes).
func walkOwned(root ast.Node, f func(ast.Node)) {
	ast.Inspect(root, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		f(m)
		return true
	})
}

func (e *engine) position(pos token.Pos) string {
	p := e.pass.Module.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", trimPath(p.Filename), p.Line)
}

func trimPath(name string) string {
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		return name[i+1:]
	}
	return name
}
