package chanlive

import (
	"testing"

	"osnoise/internal/analysis/analysistest"
)

func TestChanlive(t *testing.T) {
	analysistest.RunModule(t, "testdata", New(Config{}), "cl")
}
