// Package cl exercises the chanlive tracker: the fan-out/join worker
// pool it must stay silent on, each lifecycle violation it must
// report, and the escapes that must silence it.
package cl

// pool mirrors the production stream fan-out: a slice of channels,
// spawned receivers bound through call arguments, a sending closure,
// and a closing closure. Fully tracked; no findings.
func pool(n int) {
	chans := make([]chan int, n)
	for i := range chans {
		chans[i] = make(chan int, 4)
		go func(ch chan int) {
			for range ch {
			}
		}(chans[i])
	}
	send := func(i, v int) { chans[i%n] <- v }
	join := func() {
		for _, ch := range chans {
			close(ch)
		}
	}
	send(0, 1)
	join()
}

// deferred closes on every exit path via defer; the send before the
// function returns precedes the deferred close on the CFG, so no
// send-after-close is reported.
func deferred() {
	ch := make(chan int, 1)
	defer close(ch)
	go func() { <-ch }()
	ch <- 1
}

// aliased flows through a local copy; the receive is found through
// the alias captured by the goroutine.
func aliased() {
	ch := make(chan int, 1)
	dup := ch
	go func() { <-dup }()
	ch <- 1
	close(ch)
}

// drainer dispatches the channel through an interface; the in-repo
// implementation's receive keeps the channel live.
type drainer interface{ drain(ch chan int) }

type sink struct{}

func (sink) drain(ch chan int) {
	for range ch {
	}
}

func viaInterface(d drainer) {
	ch := make(chan int, 2)
	ch <- 1
	d.drain(ch)
	close(ch)
}

// done is the close-as-broadcast idiom: received from and closed,
// never sent on. The close is the sender; no finding.
func done() {
	quit := make(chan struct{})
	go func() { <-quit }()
	close(quit)
}

func sendNoRecv() {
	batches := make(chan int, 8) // want `channel batches is sent on .* but never received from anywhere it flows; sends block forever once the buffer fills`
	for i := 0; i < 4; i++ {
		batches <- i
	}
}

func recvNoSend() {
	acks := make(chan struct{}) // want `channel acks is received from .* but never sent on or closed; the receive blocks forever`
	<-acks
}

func sendAfterClose() {
	ch := make(chan int, 1)
	go func() { <-ch }()
	close(ch)
	ch <- 1 // want `send on ch is reachable after its close at .*; send on a closed channel panics`
}

func goAfterClose() {
	ch := make(chan int, 1)
	go func() { <-ch }()
	close(ch)
	go func() { ch <- 2 }() // want `goroutine started after close\(ch\) at .* sends on it; send on a closed channel panics`
}

func doubleClose(cond bool) {
	ch := make(chan struct{})
	go func() { <-ch }()
	close(ch)
	if cond {
		close(ch) // want `second close\(ch\) is reachable after the close at .*; closing a closed channel panics`
	}
}

// branchClose closes on exclusive branches: exactly one close runs,
// no finding.
func branchClose(cond bool) {
	ch := make(chan struct{})
	go func() { <-ch }()
	if cond {
		close(ch)
	} else {
		close(ch)
	}
}

func nonOwnerClose() {
	ch := make(chan int)
	go func() { <-ch }()
	shutdown(ch)
}

func shutdown(ch chan int) {
	close(ch) // want `close\(ch\) in cl\.shutdown, but the channel is created by cl\.nonOwnerClose; the creating function \(or its literals\) owns the close`
}

// holder absorbs a channel into a struct field: the tracker loses it
// and stays silent even though nothing ever receives.
type holder struct{ ch chan int }

func escapes() *holder {
	ch := make(chan int, 1)
	h := &holder{ch: ch}
	ch <- 1
	return h
}
