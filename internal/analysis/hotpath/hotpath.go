// Package hotpath defines a module-level noisevet analyzer enforcing
// the zero-allocation discipline of the per-event analysis paths.
//
// The paper's measurement methodology only works because the observer
// does not perturb the system under test; in this repository that
// translates to a hard rule on the code that runs once per trace event
// (ROADMAP item 3 targets 100 M events/sec — at that rate a single
// heap allocation per event is the difference between streaming and
// thrashing). The rule cannot be checked one function at a time: an
// innocent fmt.Errorf three calls below partitionRaw is exactly as
// expensive as one in the loop itself.
//
// Functions opt in as roots with a //noisevet:hotpath directive on
// their doc comment. The analyzer computes everything reachable from
// the roots over the module call graph — through static calls,
// goroutine spawns, defers, closures, interface dispatch, and escaping
// function references — and flags, inside that set:
//
//   - calls into fmt or reflect (interface boxing of every argument);
//   - range over a map (hash-order iteration, per-iteration overhead);
//   - composite literals escaping into interface-typed slots
//     (assignment or call argument: a guaranteed heap allocation);
//   - append inside a loop growing a local slice that was never
//     preallocated with make(…, …, cap);
//   - function literals defined inside a loop body (a closure
//     allocation per iteration), except the operand of a go statement —
//     spawning workers in a loop is the parallel layer's job.
//
// Error paths are exempted explicitly, not silently: annotating an
// error constructor //noisevet:coldpath stops propagation there. The
// cold path may allocate; the directive records that someone decided
// so.
//
// The analyzer also validates the directive namespace itself: unknown
// //noisevet: names, hotpath/coldpath comments that do not precede a
// function declaration, and hotpath on a bodiless declaration are
// findings, so a typo like //noisevet:hotpah cannot silently disable
// enforcement.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"osnoise/internal/analysis"
	"osnoise/internal/analysis/callgraph"
	"osnoise/internal/analysis/directive"
)

// Config tunes the hotpath analyzer.
type Config struct {
	// StaleColdpath reports //noisevet:coldpath directives whose barrier
	// was never reached from any //noisevet:hotpath root: the exemption
	// no longer exempts anything, so it should be removed before a
	// refactor quietly routes a new hot path through it.
	StaleColdpath bool
}

// New returns the hotpath analyzer.
func New(cfg Config) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "hotpath",
		Doc: "hotpath: no allocation or reflection reachable from //noisevet:hotpath roots\n\n" +
			"Computes the call-graph closure of every //noisevet:hotpath-annotated\n" +
			"function and reports fmt/reflect calls, map iteration, interface-escaping\n" +
			"composite literals, un-preallocated append in loops, and per-iteration\n" +
			"closure allocations inside it. //noisevet:coldpath stops propagation;\n" +
			"malformed directives are themselves findings.",
	}
	a.RunModule = func(pass *analysis.ModulePass) error { return run(pass, cfg) }
	return a
}

// coldBarrier is one //noisevet:coldpath annotation: the barrier node
// and the directive comment's position, for stale reporting.
type coldBarrier struct {
	node *callgraph.Node
	pos  token.Pos
}

func run(pass *analysis.ModulePass, cfg Config) error {
	g := callgraph.Of(pass.Module)

	roots, barriers := collectDirectives(pass, g)
	cold := make(map[*callgraph.Node]bool, len(barriers))
	for _, b := range barriers {
		cold[b.node] = true
	}

	// Reachability from the hot roots, stopping at coldpath barriers:
	// a coldpath function may allocate, and nothing below it counts.
	// A barrier an edge actually lands on is doing its job; one no
	// traversal touches is stale.
	hot := make(map[*callgraph.Node]bool)
	hit := make(map[*callgraph.Node]bool)
	var stack []*callgraph.Node
	for _, r := range roots {
		if cold[r] {
			// hotpath and coldpath on the same function: the coldpath
			// wins (the root is inert) and is clearly not stale.
			hit[r] = true
			continue
		}
		if !hot[r] {
			hot[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.Out {
			m := e.Callee
			if cold[m] {
				hit[m] = true
				continue
			}
			if !hot[m] {
				hot[m] = true
				stack = append(stack, m)
			}
		}
	}

	// Deterministic order: g.Nodes is built in package/file/source
	// order; findings are sorted again by the checker anyway.
	for _, n := range g.Nodes {
		if hot[n] && n.Pkg != nil && n.Pkg.Target {
			checkNode(pass, n)
		}
	}

	if cfg.StaleColdpath {
		for _, b := range barriers {
			if !hit[b.node] {
				pass.Reportf(b.pos, "stale //noisevet:coldpath: %s is not reached from any //noisevet:hotpath root; remove the directive", b.node.Name)
			}
		}
	}
	return nil
}

// collectDirectives scans every target file for //noisevet: comments,
// reports malformed ones, and returns the hotpath roots and coldpath
// barriers as graph nodes. ignore belongs to the checker's suppression
// layer and lockrank to the lockorder analyzer; both are validated here
// (one grammar, one reporter) but otherwise skipped.
func collectDirectives(pass *analysis.ModulePass, g *callgraph.Graph) (roots []*callgraph.Node, barriers []coldBarrier) {
	for _, pkg := range pass.Module.Pkgs {
		if !pkg.Target {
			continue
		}
		for _, file := range pkg.Files {
			// Comments that are the doc group of a function declaration:
			// the only place hotpath/coldpath may appear.
			funcDoc := make(map[*ast.Comment]*ast.FuncDecl)
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					funcDoc[c] = fd
				}
			}
			for _, group := range file.Comments {
				for _, c := range group.List {
					d, err := directive.Parse(c.Text)
					if err != nil {
						pass.Reportf(c.Slash, "%v", err)
						continue
					}
					if d == nil || d.Name == directive.Ignore || d.Name == directive.Lockrank {
						continue
					}
					fd := funcDoc[c]
					if fd == nil {
						pass.Reportf(c.Slash, "//noisevet:%s must be part of a function declaration's doc comment", d.Name)
						continue
					}
					if fd.Body == nil {
						if d.Name == directive.Hotpath {
							pass.Reportf(c.Slash, "//noisevet:hotpath on a function without a body; the analyzer cannot trace an opaque root")
						}
						continue
					}
					node := nodeOfDecl(g, pkg, fd)
					if node == nil {
						continue
					}
					if d.Name == directive.Hotpath {
						roots = append(roots, node)
					} else {
						barriers = append(barriers, coldBarrier{node: node, pos: c.Slash})
					}
				}
			}
		}
	}
	return roots, barriers
}

// nodeOfDecl resolves a function declaration to its graph node.
func nodeOfDecl(g *callgraph.Graph, pkg *analysis.Package, fd *ast.FuncDecl) *callgraph.Node {
	obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return nil
	}
	return g.NodeOf(obj)
}

// checkNode reports every hot-path violation inside one function body.
func checkNode(pass *analysis.ModulePass, n *callgraph.Node) {
	info := n.Pkg.Info

	// Loop extents, for "inside a loop" containment, and the set of
	// slice variables preallocated anywhere in this function.
	type span struct{ lo, hi int }
	var loops []span
	prealloc := make(map[types.Object]bool)
	goLits := make(map[*ast.FuncLit]bool)
	n.Walk(func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.ForStmt:
			if m.Body != nil {
				loops = append(loops, span{int(m.Body.Pos()), int(m.Body.End())})
			}
		case *ast.RangeStmt:
			if m.Body != nil {
				loops = append(loops, span{int(m.Body.Pos()), int(m.Body.End())})
			}
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(m.Call.Fun).(*ast.FuncLit); ok {
				goLits[lit] = true
			}
		case *ast.AssignStmt:
			// x := make([]T, len, cap) or x = make(...): x counts as
			// preallocated for the whole function.
			for i, rhs := range m.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || len(call.Args) < 3 {
					continue
				}
				fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || fn.Name != "make" {
					continue
				}
				if _, isBuiltin := info.Uses[fn].(*types.Builtin); !isBuiltin {
					continue
				}
				if i < len(m.Lhs) {
					if id, ok := m.Lhs[i].(*ast.Ident); ok {
						if obj := info.ObjectOf(id); obj != nil {
							prealloc[obj] = true
						}
					}
				}
			}
		}
		return true
	})
	inLoop := func(m ast.Node) bool {
		p := int(m.Pos())
		for _, s := range loops {
			if s.lo <= p && p < s.hi {
				return true
			}
		}
		return false
	}

	n.Walk(func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			if pkgName := calleePackage(info, m); pkgName == "fmt" || pkgName == "reflect" {
				pass.Reportf(m.Pos(), "hot path: call into %s allocates per call (reachable from a //noisevet:hotpath root); outline the slow case into a //noisevet:coldpath helper", pkgName)
			}
			checkInterfaceArgs(pass, info, m)
			checkAppend(pass, n, m, inLoop, prealloc)

		case *ast.RangeStmt:
			if t := info.TypeOf(m.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(m.Pos(), "hot path: range over map iterates in hash order with per-iteration overhead; iterate a sorted or indexed slice instead")
				}
			}

		case *ast.AssignStmt:
			checkInterfaceAssign(pass, info, m)

		case *ast.FuncLit:
			if inLoop(m) && !goLits[m] {
				pass.Reportf(m.Pos(), "hot path: closure allocated on every loop iteration; hoist the function literal out of the loop")
			}
		}
		return true
	})
}

// calleePackage returns the package name a call statically dispatches
// into ("fmt" for fmt.Errorf), or "" when the callee is not a
// package-qualified identifier.
func calleePackage(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// checkInterfaceArgs flags composite literals passed where the callee
// expects an interface: the literal escapes to the heap at the call.
func checkInterfaceArgs(pass *analysis.ModulePass, info *types.Info, call *ast.CallExpr) {
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		lit := compositeLit(arg)
		if lit == nil {
			continue
		}
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if params.Len() > 0 {
				if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
					pt = s.Elem()
				}
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil && types.IsInterface(pt) {
			pass.Reportf(arg.Pos(), "hot path: composite literal escapes into interface argument (heap allocation per call)")
		}
	}
}

// checkInterfaceAssign flags composite literals assigned into
// interface-typed locations.
func checkInterfaceAssign(pass *analysis.ModulePass, info *types.Info, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		lit := compositeLit(rhs)
		if lit == nil {
			continue
		}
		if lt := info.TypeOf(as.Lhs[i]); lt != nil && types.IsInterface(lt) {
			pass.Reportf(rhs.Pos(), "hot path: composite literal escapes into interface assignment (heap allocation)")
		}
	}
}

// compositeLit unwraps a (possibly &-prefixed, parenthesized)
// composite literal, or returns nil.
func compositeLit(e ast.Expr) *ast.CompositeLit {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = ast.Unparen(u.X)
	}
	lit, _ := e.(*ast.CompositeLit)
	return lit
}

// checkAppend flags x = append(x, …) inside a loop when x is a plain
// local slice variable with no make(…, …, cap) preallocation anywhere
// in the function — the per-event growth pattern that reallocates
// log(n) times.
func checkAppend(pass *analysis.ModulePass, n *callgraph.Node, call *ast.CallExpr, inLoop func(ast.Node) bool, prealloc map[types.Object]bool) {
	info := n.Pkg.Info
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return
	}
	if _, isBuiltin := info.Uses[fn].(*types.Builtin); !isBuiltin {
		return
	}
	if len(call.Args) == 0 || !inLoop(call) {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj, ok := info.ObjectOf(id).(*types.Var)
	if !ok || obj.IsField() || prealloc[obj] {
		return
	}
	// Only flag variables declared inside this body: parameters,
	// captured outer variables, and globals may well be preallocated
	// by whoever owns them.
	body := n.Body()
	if body == nil || obj.Pos() < body.Pos() || obj.Pos() >= body.End() {
		return
	}
	pass.Reportf(call.Pos(), "hot path: append grows %s inside a loop without preallocation; make(…, 0, cap) it before the loop", id.Name)
}
