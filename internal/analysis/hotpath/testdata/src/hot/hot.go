// Package hot exercises the hotpath analyzer: reachability from
// annotated roots, the coldpath barrier, interface dispatch, and every
// violation class.
package hot

import (
	"fmt"

	"hot/impl"
)

// Event is a minimal stand-in for a trace record.
type Event struct{ TS uint64 }

// Process is a hot root; everything it reaches is checked.
//
//noisevet:hotpath
func Process(events []Event) int {
	total := 0
	for _, e := range events {
		total += step(e)
	}
	impl.Walk(len(events))
	return total
}

// step is reachable from Process, so its fmt call is hot.
func step(e Event) int {
	if e.TS == 0 {
		fmt.Println("zero timestamp") // want `call into fmt`
	}
	return int(e.TS)
}

// Validate demonstrates the coldpath barrier: the error constructor
// may allocate.
//
//noisevet:hotpath
func Validate(ts uint64) error {
	if ts == 0 {
		return badEvent(ts)
	}
	return nil
}

// badEvent is the sanctioned slow path; nothing below it is checked.
//
//noisevet:coldpath
func badEvent(ts uint64) error {
	return fmt.Errorf("bad event at %d", ts)
}

type pair struct{ a, b int }

// Tally exercises map iteration and interface-escaping assignment.
//
//noisevet:hotpath
func Tally(counts map[int]int) int {
	total := 0
	for _, v := range counts { // want `range over map`
		total += v
	}
	var sink interface{}
	sink = pair{1, 2} // want `escapes into interface assignment`
	_ = sink
	return total
}

func consume(v interface{}) { _ = v }

// Feed exercises interface-escaping call arguments.
//
//noisevet:hotpath
func Feed() {
	consume(pair{3, 4}) // want `escapes into interface argument`
}

// SpawnWorkers exercises the closure rules: a per-iteration literal is
// flagged, a goroutine-spawn operand is not.
//
//noisevet:hotpath
func SpawnWorkers(n int) {
	results := make([]int, n)
	for i := 0; i < n; i++ {
		go func(slot int) { results[slot] = slot }(i)
		f := func() int { return i } // want `closure allocated`
		_ = f()
	}
}

// Sink dispatches through an interface; every in-repo implementation
// joins the hot set.
type Sink interface{ Emit(int) }

type printSink struct{}

func (printSink) Emit(v int) {
	fmt.Println(v) // want `call into fmt`
}

// Drive is hot and calls through Sink, pulling printSink.Emit in.
//
//noisevet:hotpath
func Drive(s Sink, vs []int) {
	for _, v := range vs {
		s.Emit(v)
	}
}

// unreachable is never called from a hot root: its violations are not
// findings.
func unreachable(m map[int]int) {
	for range m {
		fmt.Println("cold by omission")
	}
}
