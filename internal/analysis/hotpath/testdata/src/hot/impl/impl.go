// Package impl is reached from package hot across the package
// boundary; its findings prove interprocedural, cross-package
// propagation.
package impl

// Walk is called by hot.Process.
func Walk(n int) {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want `append grows out`
	}
	_ = out

	pre := make([]int, 0, n)
	for i := 0; i < n; i++ {
		pre = append(pre, i) // preallocated: no finding
	}
	_ = pre
}
