package hot

// Directive validation: typos and misplaced annotations are findings,
// so a misspelled hotpath cannot silently disable enforcement.

//noisevet:hotpah // want `unknown directive`
var mis1 = 1

//noisevet:hotpath // want `must be part of a function declaration`
var mis2 = 2

//noisevet:hotpath // want `function without a body`
func External()
