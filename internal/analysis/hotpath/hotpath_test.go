package hotpath

import (
	"testing"

	"osnoise/internal/analysis/analysistest"
)

func TestFixtures(t *testing.T) {
	analysistest.RunModule(t, "testdata", New(Config{}), "hot", "hot/impl")
}
