// Package a exercises the eventpair analyzer: entry emissions must be
// closed by their matching exits on all non-panicking paths.
package a

import "trc"

func emit(ev trc.Event) {}

// push receives a pre-matched entry/exit pair, like kernel.CPU.push.
func push(entry, exit trc.ID, dur int64) {}

// Straight-line pairing is fine.
func balancedStraight(now int64) {
	emit(trc.Event{TS: now, ID: trc.EvIRQEntry})
	emit(trc.Event{TS: now + 1, ID: trc.EvIRQExit})
}

// Handing entry and exit to one call is the blessed span-plumbing
// shape; nothing to report.
func balancedHandoff(now int64) {
	push(trc.EvIRQEntry, trc.EvIRQExit, 10)
	push(trc.EvSoftIRQEntry, trc.EvSoftIRQExit, 20)
}

// A parallel assignment that keeps the pair together is balanced.
func balancedAssign(tasklet bool) {
	entry, exit := trc.EvIRQEntry, trc.EvIRQExit
	if tasklet {
		entry, exit = trc.EvSoftIRQEntry, trc.EvSoftIRQExit
	}
	push(entry, exit, 5)
}

// Pairing an entry with the wrong exit is the bug the simulator's span
// plumbing could never recover from.
func mismatchedHandoff(now int64) {
	push(trc.EvIRQEntry, trc.EvSoftIRQExit, 10) // want `entry tracepoint EvIRQEntry is paired with EvSoftIRQExit here; its exit is EvIRQExit`
}

// The exit is emitted on both branches: closed on every path.
func balancedBranch(now int64, fast bool) {
	emit(trc.Event{TS: now, ID: trc.EvSoftIRQEntry})
	if fast {
		emit(trc.Event{TS: now + 1, ID: trc.EvSoftIRQExit})
	} else {
		emit(trc.Event{TS: now + 2, ID: trc.EvSoftIRQExit})
	}
}

// An early return that skips the exit leaves the span open.
func earlyReturnLeak(now int64, bail bool) {
	emit(trc.Event{TS: now, ID: trc.EvIRQEntry}) // want `emission of entry tracepoint EvIRQEntry is not matched by an emission of EvIRQExit on every path`
	if bail {
		return
	}
	emit(trc.Event{TS: now + 1, ID: trc.EvIRQExit})
}

// No exit anywhere: open on every path.
func neverClosed(now int64) {
	emit(trc.Event{TS: now, ID: trc.EvSoftIRQEntry}) // want `emission of entry tracepoint EvSoftIRQEntry is not matched by an emission of EvSoftIRQExit on every path`
}

// Panicking paths are exempt: the trace is torn anyway.
func panicPathOK(now int64, corrupt bool) {
	emit(trc.Event{TS: now, ID: trc.EvIRQEntry})
	if corrupt {
		panic("corrupt state")
	}
	emit(trc.Event{TS: now + 1, ID: trc.EvIRQExit})
}

// A deferred exit emission lies on every return path.
func deferredExit(now int64, bail bool) {
	emit(trc.Event{TS: now, ID: trc.EvIRQEntry})
	defer emit(trc.Event{TS: now + 1, ID: trc.EvIRQExit})
	if bail {
		return
	}
}

// The exit emitted inside a loop body does not cover the zero-iteration
// path around the loop.
func loopSkipLeak(now int64, n int) {
	emit(trc.Event{TS: now, ID: trc.EvIRQEntry}) // want `emission of entry tracepoint EvIRQEntry is not matched by an emission of EvIRQExit on every path`
	for i := 0; i < n; i++ {
		emit(trc.Event{TS: now + int64(i), ID: trc.EvIRQExit})
	}
}

// Unpaired marker events and bare exits carry no obligation.
func markersFree(now int64) {
	emit(trc.Event{TS: now, ID: trc.EvMark})
	emit(trc.Event{TS: now, ID: trc.EvIRQExit})
	emit(trc.Event{TS: now, ID: trc.EvNone})
}

// Comparisons in a switch reference the exit, which closes the span on
// that path — the analyzer treats any reference as an emission, so the
// span plumbing below stays silent.
func switchClose(now int64, id trc.ID) {
	emit(trc.Event{TS: now, ID: trc.EvIRQEntry})
	switch id {
	case trc.EvIRQExit:
		emit(trc.Event{TS: now, ID: id})
	default:
		emit(trc.Event{TS: now, ID: trc.EvIRQExit})
	}
}
