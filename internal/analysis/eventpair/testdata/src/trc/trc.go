// Package trc is the fixture analogue of osnoise/internal/trace: a
// tracepoint enum with entry/exit pairs.
package trc

// ID identifies a tracepoint.
type ID uint16

// Tracepoint identifiers.
const (
	EvNone ID = iota
	EvIRQEntry
	EvIRQExit
	EvSoftIRQEntry
	EvSoftIRQExit
	EvMark // unpaired marker event
)

// Event is one trace record.
type Event struct {
	TS int64
	ID ID
}
