// Package b is outside the analyzer's configured package scope: its
// obvious leak must produce no diagnostics (scope negative — there are
// deliberately no want comments in this file).
package b

import "trc"

func emit(ev trc.Event) {}

func unscopedLeak(now int64) {
	emit(trc.Event{TS: now, ID: trc.EvIRQEntry})
}
