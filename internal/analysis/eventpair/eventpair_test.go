package eventpair_test

import (
	"testing"

	"osnoise/internal/analysis/analysistest"
	"osnoise/internal/analysis/eventpair"
)

// TestEventPair runs the analyzer over the fixture with the fixture
// enum standing in for trace.ID. Package a is in scope and carries the
// want cases; package b holds a blatant leak but is outside the
// configured packages, so any diagnostic on it fails the test (scope
// negative).
func TestEventPair(t *testing.T) {
	a := eventpair.New(eventpair.Config{
		Packages: []string{"a"},
		IDType:   "trc.ID",
		Pairs: map[string]string{
			"EvIRQEntry":     "EvIRQExit",
			"EvSoftIRQEntry": "EvSoftIRQExit",
		},
	})
	analysistest.Run(t, "testdata", a, "a", "b")
}
