// Package eventpair implements the noisevet analyzer that keeps kernel
// entry tracepoints paired with their exits on every control-flow path.
//
// The offline analysis reconstructs nested kernel activity spans from a
// stack of entry/exit events (PAPER.md §3): an EvIRQEntry pushes, its
// EvIRQExit pops. The arithmetic is exact only if every emitted entry
// is closed by its matching exit on every non-panicking path — an early
// return that skips the exit leaves a phantom open span that corrupts
// the attribution of every later event on that CPU, silently skewing
// all per-event noise statistics.
//
// The analyzer is path-sensitive over the internal/analysis/cfg graph.
// Inside the configured packages, for every function:
//
//   - A statement that references an entry constant of the tracepoint
//     enum together with exit constants must include the matching exit
//     (`c.push(now, trace.EvIRQEntry, trace.EvIRQExit, …)` and the
//     parallel assignment `entry, exit := trace.EvSoftIRQEntry,
//     trace.EvSoftIRQExit` are balanced hand-offs; pairing EvIRQEntry
//     with EvSoftIRQExit is reported).
//
//   - A statement that references an entry constant with no exit in
//     sight opens a span: every path from that statement to function
//     exit must pass a statement referencing the matching exit
//     constant. Paths that end in panic/os.Exit are exempt (the trace
//     is torn anyway), and a deferred exit emission counts because
//     defer blocks lie on the exit path in the CFG.
//
// The check is intra-procedural by design: the simulator's span
// plumbing (kernel.CPU.push/finishTop) hands entry and exit to one
// call, which is exactly the balanced-pair shape the first rule
// verifies.
package eventpair

import (
	"go/ast"
	"go/token"
	"go/types"

	"osnoise/internal/analysis"
	"osnoise/internal/analysis/cfg"
)

// Config scopes the analyzer and names the tracepoint pairing.
type Config struct {
	// Packages are package-path prefixes the analyzer applies to; an
	// empty list means every target package.
	Packages []string

	// IDType is the qualified tracepoint enum type, e.g.
	// "osnoise/internal/trace.ID".
	IDType string

	// Pairs maps entry constant names to their exit constant names,
	// mirroring trace.ID.ExitFor.
	Pairs map[string]string
}

// New returns an eventpair analyzer with the given pairing.
func New(cfgc Config) *analysis.Analyzer {
	exits := make(map[string]bool, len(cfgc.Pairs))
	for _, exit := range cfgc.Pairs {
		exits[exit] = true
	}
	a := &analysis.Analyzer{
		Name: "eventpair",
		Doc: "require every entry tracepoint emission to be matched by its exit on all non-panicking paths\n\n" +
			"The offline nested-span reconstruction is exact only if every entry event is closed by its\n" +
			"ExitFor counterpart on every path; a skipped exit corrupts the event stack and silently\n" +
			"skews all per-event noise statistics.",
	}
	a.Run = func(pass *analysis.Pass) (interface{}, error) {
		if len(cfgc.Packages) > 0 && !matchAny(cfgc.Packages, pass.Pkg.Path()) {
			return nil, nil
		}
		for _, file := range pass.Files {
			for _, fn := range cfg.Functions(file) {
				checkFunc(pass, cfgc, exits, fn)
			}
		}
		return nil, nil
	}
	return a
}

// ref is one use of a tracepoint constant inside a statement.
type ref struct {
	name string
	pos  token.Pos
}

// nodeRefs collects the entry and exit constants referenced by one CFG
// node, in source order.
func nodeRefs(pass *analysis.Pass, c Config, exits map[string]bool, n ast.Node) (entries, exitRefs []ref) {
	cfg.Walk(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		cst, ok := pass.TypesInfo.Uses[id].(*types.Const)
		if !ok {
			return true
		}
		named, ok := cst.Type().(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return true
		}
		if named.Obj().Pkg().Path()+"."+named.Obj().Name() != c.IDType {
			return true
		}
		switch {
		case c.Pairs[cst.Name()] != "":
			entries = append(entries, ref{cst.Name(), id.Pos()})
		case exits[cst.Name()]:
			exitRefs = append(exitRefs, ref{cst.Name(), id.Pos()})
		}
		return true
	})
	return entries, exitRefs
}

func checkFunc(pass *analysis.Pass, c Config, exits map[string]bool, fn *cfg.Func) {
	// Fast pre-scan: most functions never touch the enum.
	touches := false
	cfg.Walk(fn.Body, func(m ast.Node) bool {
		if touches {
			return false
		}
		if id, ok := m.(*ast.Ident); ok {
			if cst, ok := pass.TypesInfo.Uses[id].(*types.Const); ok {
				if c.Pairs[cst.Name()] != "" || exits[cst.Name()] {
					touches = true
				}
			}
		}
		return true
	})
	if !touches {
		return
	}

	g := cfg.New(fn.Body, nil)
	type open struct {
		blk  *cfg.Block
		idx  int // index of the opening node within blk.Nodes
		name string
		pos  token.Pos
	}
	var opens []open
	for _, blk := range g.Blocks {
		for i, n := range blk.Nodes {
			entries, exitRefs := nodeRefs(pass, c, exits, n)
			if len(entries) == 0 {
				continue
			}
			if len(exitRefs) > 0 {
				// Balanced hand-off: each entry must find its own exit
				// among the statement's exit references.
				avail := make(map[string]int, len(exitRefs))
				for _, x := range exitRefs {
					avail[x.name]++
				}
				for _, e := range entries {
					want := c.Pairs[e.name]
					if avail[want] > 0 {
						avail[want]--
						continue
					}
					pass.Reportf(e.pos, "entry tracepoint %s is paired with %s here; its exit is %s",
						e.name, exitRefs[0].name, want)
				}
				continue
			}
			for _, e := range entries {
				opens = append(opens, open{blk, i, e.name, e.pos})
			}
		}
	}

	for _, o := range opens {
		want := c.Pairs[o.name]
		if leaksToExit(pass, c, exits, g, o.blk, o.idx, want) {
			pass.Reportf(o.pos, "emission of entry tracepoint %s is not matched by an emission of %s on every path to return; a broken pair corrupts the nested-event stack",
				o.name, want)
		}
	}
}

// leaksToExit reports whether some path from just after node idx of blk
// reaches the function exit without passing a node that references the
// wanted exit constant. Paths ending in a NoReturn block (panic,
// os.Exit) do not count.
func leaksToExit(pass *analysis.Pass, c Config, exits map[string]bool, g *cfg.Graph, blk *cfg.Block, idx int, want string) bool {
	closes := func(n ast.Node) bool {
		_, exitRefs := nodeRefs(pass, c, exits, n)
		for _, x := range exitRefs {
			if x.name == want {
				return true
			}
		}
		return false
	}
	// Rest of the opening block first.
	for _, n := range blk.Nodes[idx+1:] {
		if closes(n) {
			return false
		}
	}
	seen := map[*cfg.Block]bool{}
	var visit func(*cfg.Block) bool
	visit = func(b *cfg.Block) bool {
		if b == g.Exit {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, n := range b.Nodes {
			if closes(n) {
				return false
			}
		}
		for _, s := range b.Succs {
			if visit(s) {
				return true
			}
		}
		return false
	}
	for _, s := range blk.Succs {
		if visit(s) {
			return true
		}
	}
	return false
}

func matchAny(prefixes []string, path string) bool {
	for _, p := range prefixes {
		if analysis.PathPrefixMatch(p, path) {
			return true
		}
	}
	return false
}
