package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	GoFiles []string // absolute paths, in go list order
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	// Target reports whether the package matched the Load patterns
	// directly (true) or was loaded only as a dependency (false).
	// Analyzers run over target packages only.
	Target bool
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
}

// Load enumerates the packages matching patterns (resolved by the go
// command relative to dir), parses and type-checks them together with
// their in-module dependencies, and returns the result. Standard-library
// dependencies are resolved from source by go/importer, so Load works
// fully offline.
func Load(dir string, patterns ...string) ([]*Package, *token.FileSet, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// -deps emits dependencies before dependents, which is exactly the
	// type-checking order; the second plain listing marks the targets.
	deps, err := goList(dir, append([]string{"-deps"}, patterns...)...)
	if err != nil {
		return nil, nil, err
	}
	targets, err := goList(dir, patterns...)
	if err != nil {
		return nil, nil, err
	}
	isTarget := make(map[string]bool, len(targets))
	for _, p := range targets {
		isTarget[p.ImportPath] = true
	}

	fset := token.NewFileSet()
	res := &resolver{
		pkgs:     make(map[string]*types.Package),
		fallback: importer.ForCompiler(fset, "source", nil),
	}

	var out []*Package
	for _, lp := range deps {
		if lp.Standard {
			continue // stdlib: resolved on demand by the source importer
		}
		if len(lp.CgoFiles) > 0 {
			return nil, nil, fmt.Errorf("analysis: package %s uses cgo, which the loader does not support", lp.ImportPath)
		}
		pkg, err := typecheck(fset, res, lp)
		if err != nil {
			return nil, nil, err
		}
		pkg.Target = isTarget[lp.ImportPath]
		res.pkgs[lp.ImportPath] = pkg.Types
		out = append(out, pkg)
	}
	return out, fset, nil
}

// typecheck parses and type-checks one listed package.
func typecheck(fset *token.FileSet, imp types.ImporterFrom, lp listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	paths := make([]string, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", path, err)
		}
		files = append(files, f)
		paths = append(paths, path)
	}

	info := NewTypesInfo()
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", lp.ImportPath, err)
	}
	return &Package{
		PkgPath: lp.ImportPath,
		Dir:     lp.Dir,
		GoFiles: paths,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// NewTypesInfo returns a types.Info with every result map allocated.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// resolver satisfies go/types importing: module-internal packages come
// from the already-checked set (Load visits them dependency-first), and
// everything else falls back to the stdlib source importer.
type resolver struct {
	pkgs     map[string]*types.Package
	fallback types.Importer
}

func (r *resolver) Import(path string) (*types.Package, error) {
	return r.ImportFrom(path, "", 0)
}

func (r *resolver) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := r.pkgs[path]; ok {
		return p, nil
	}
	if from, ok := r.fallback.(types.ImporterFrom); ok {
		return from.ImportFrom(path, srcDir, mode)
	}
	return r.fallback.Import(path)
}

// goList runs `go list -json args...` in dir and decodes the package
// stream.
func goList(dir string, args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("analysis: go list %s: %s", strings.Join(args, " "), msg)
	}
	dec := json.NewDecoder(&stdout)
	var pkgs []listedPackage
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}
