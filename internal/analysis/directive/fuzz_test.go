package directive

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzParse hammers the directive grammar: whatever the comment text,
// Parse must never panic, must return a directive or an error only for
// text inside the //noisevet: namespace, and must keep the invariants
// the consumers rely on (a parsed lockrank always carries a valid
// hierarchy and an in-range level; a parsed ignore never returns empty
// analyzer names).
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		d, err := Parse(text)
		if !strings.HasPrefix(text, Prefix) {
			if d != nil || err != nil {
				t.Fatalf("Parse(%q) = %v, %v outside the namespace; want nil, nil", text, d, err)
			}
			return
		}
		if (d == nil) == (err == nil) {
			t.Fatalf("Parse(%q) = %v, %v; want exactly one of directive, error", text, d, err)
		}
		if d == nil {
			return
		}
		switch d.Name {
		case Ignore:
			for _, a := range d.Analyzers {
				if strings.TrimSpace(a) == "" {
					t.Fatalf("Parse(%q): empty analyzer name in %v", text, d.Analyzers)
				}
			}
		case Hotpath, Coldpath:
			if len(d.Args) != 0 {
				t.Fatalf("Parse(%q): %s accepted arguments %v", text, d.Name, d.Args)
			}
		case Lockrank:
			if !validHierarchy(d.Hierarchy) {
				t.Fatalf("Parse(%q): invalid hierarchy %q accepted", text, d.Hierarchy)
			}
			if d.Level < 0 || d.Level > maxLevel {
				t.Fatalf("Parse(%q): out-of-range level %d accepted", text, d.Level)
			}
		default:
			t.Fatalf("Parse(%q): unknown directive name %q accepted", text, d.Name)
		}
	})
}

// fuzzSeeds are the hostile and well-formed inputs FuzzParse starts
// from; TestFuzzCorpus mirrors them into testdata/fuzz so the plain
// test run replays them even without -fuzz.
func fuzzSeeds() []string {
	return []string{
		"//noisevet:ignore",
		"//noisevet:ignore lockbalance,lockorder",
		"//noisevet:ignore ,,,",
		"//noisevet:hotpath",
		"//noisevet:coldpath",
		"//noisevet:lockrank trace 1",
		"//noisevet:lockrank io-path 0",
		"//noisevet:lockrank trace -1",
		"//noisevet:lockrank trace 999999999999999999999",
		"//noisevet:lockrank \t trace \t 3",
		"//noisevet:lockrank tr\x00ce 2",
		"//noisevet:",
		"//noisevet:hotpah",
		"//noisevet:lockrank",
		"// not a directive",
		"//noisevet:ignore \xff\xfe",
		"//noisevet:lockrank a 1048577",
		"//noisevet:hotpath // trailing remark",
		"//noisevet://",
	}
}

// TestFuzzCorpus keeps the checked-in corpus under testdata/fuzz in
// sync with fuzzSeeds, following the trace package's convention. Run
// with OSNOISE_REGEN_CORPUS=1 to rewrite the files after changing the
// seeds.
func TestFuzzCorpus(t *testing.T) {
	regen := os.Getenv("OSNOISE_REGEN_CORPUS") != ""
	dir := filepath.Join("testdata", "fuzz", "FuzzParse")
	for i, in := range fuzzSeeds() {
		path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		want := fmt.Sprintf("go test fuzz v1\nstring(%q)\n", in)
		if regen {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with OSNOISE_REGEN_CORPUS=1)", path, err)
		}
		if string(got) != want {
			t.Errorf("%s out of sync with fuzzSeeds (regenerate with OSNOISE_REGEN_CORPUS=1)", path)
		}
	}
}
