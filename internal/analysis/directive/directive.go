// Package directive parses the //noisevet: source-directive namespace
// shared by the checker and the analyzers. One grammar in one place
// keeps the directive surface honest: the suppression layer
// (//noisevet:ignore), the hot-path annotations (//noisevet:hotpath,
// //noisevet:coldpath), and the lock-hierarchy declarations
// (//noisevet:lockrank) all round-trip through Parse, so a malformed
// directive fails the same way everywhere and the fuzz target in this
// package covers every consumer at once.
//
// Grammar, one directive per comment, no space after the // marker
// (mirroring //go: directives):
//
//	//noisevet:ignore[ analyzer[,analyzer...]]
//	//noisevet:hotpath
//	//noisevet:coldpath
//	//noisevet:lockrank <hierarchy> <level>
//
// ignore takes an optional comma-separated analyzer list (empty = all
// analyzers). hotpath and coldpath take no arguments. lockrank takes a
// hierarchy name ([A-Za-z][A-Za-z0-9_-]*, so hierarchies can be grepped
// for) and a non-negative integer level; within one hierarchy locks
// must be acquired in strictly increasing level order. A nested
// "// remark" inside the comment is ignored, so a directive can carry
// its rationale inline.
package directive

import (
	"fmt"
	"strconv"
	"strings"
)

// Prefix introduces every noisevet source directive.
const Prefix = "//noisevet:"

// Directive names, in the order they joined the namespace.
const (
	// Ignore suppresses findings on the directive's line (trailing) or
	// the line below (standalone); consumed by the checker.
	Ignore = "ignore"
	// Hotpath marks a function as an allocation-free hot-path root;
	// consumed by the hotpath analyzer.
	Hotpath = "hotpath"
	// Coldpath stops hot-path propagation at the annotated function;
	// consumed by the hotpath analyzer.
	Coldpath = "coldpath"
	// Lockrank declares a lock's position in a named hierarchy;
	// consumed by the lockorder analyzer.
	Lockrank = "lockrank"
)

// maxLevel bounds lockrank levels: a hierarchy deeper than this is a
// typo, not a design.
const maxLevel = 1 << 20

// Directive is one parsed //noisevet: comment.
type Directive struct {
	// Name is the directive keyword: ignore, hotpath, coldpath, or
	// lockrank.
	Name string
	// Args are the raw whitespace-separated arguments after the name.
	Args []string
	// Analyzers is the ignore directive's analyzer list (nil = suppress
	// every analyzer).
	Analyzers []string
	// Hierarchy and Level are the lockrank directive's declared
	// hierarchy name and rank level.
	Hierarchy string
	Level     int
}

// IsDirective reports whether the comment text is in the //noisevet:
// namespace at all. Parse errors only apply to comments that are.
func IsDirective(text string) bool { return strings.HasPrefix(text, Prefix) }

// Parse parses one comment's text. It returns (nil, nil) when the
// comment is not a //noisevet: directive, and a descriptive error when
// it is one but is malformed — unknown name, wrong arity, or bad
// lockrank arguments. Callers turn the error into a finding at the
// comment's position.
func Parse(text string) (*Directive, error) {
	if !IsDirective(text) {
		return nil, nil
	}
	rest := strings.TrimPrefix(text, Prefix)
	// A nested "// prose" inside the comment is a trailing remark, not
	// part of the directive — fixtures lean on this for // want
	// expectations, and humans for rationale.
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = strings.TrimRight(rest[:i], " \t")
	}
	name := rest
	var argText string
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		name, argText = rest[:i], rest[i+1:]
	}
	d := &Directive{Name: name, Args: strings.Fields(argText)}
	switch name {
	case Ignore:
		// Analyzer names arrive comma-separated, tolerating spaces
		// around the commas ("a, b").
		for _, field := range d.Args {
			for _, part := range strings.Split(field, ",") {
				if part = strings.TrimSpace(part); part != "" {
					d.Analyzers = append(d.Analyzers, part)
				}
			}
		}
		return d, nil
	case Hotpath, Coldpath:
		if len(d.Args) != 0 {
			return nil, fmt.Errorf("//noisevet:%s takes no arguments (got %q)", name, argText)
		}
		return d, nil
	case Lockrank:
		if len(d.Args) != 2 {
			return nil, fmt.Errorf("//noisevet:lockrank wants <hierarchy> <level>, got %d argument(s)", len(d.Args))
		}
		if !validHierarchy(d.Args[0]) {
			return nil, fmt.Errorf("//noisevet:lockrank hierarchy %q must match [A-Za-z][A-Za-z0-9_-]*", d.Args[0])
		}
		level, err := strconv.Atoi(d.Args[1])
		if err != nil {
			return nil, fmt.Errorf("//noisevet:lockrank level %q is not an integer", d.Args[1])
		}
		if level < 0 || level > maxLevel {
			return nil, fmt.Errorf("//noisevet:lockrank level %d out of range [0, %d]", level, maxLevel)
		}
		d.Hierarchy, d.Level = d.Args[0], level
		return d, nil
	case "":
		return nil, fmt.Errorf("//noisevet: directive missing a name (valid: %s)", ValidNames())
	default:
		return nil, fmt.Errorf("unknown directive //noisevet:%s (valid: %s)", name, ValidNames())
	}
}

// ValidNames lists the recognized directive names for error messages.
func ValidNames() string {
	return strings.Join([]string{Ignore, Hotpath, Coldpath, Lockrank}, ", ")
}

// validHierarchy reports whether s is a legal hierarchy name:
// [A-Za-z][A-Za-z0-9_-]*.
func validHierarchy(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z':
		case i > 0 && (r >= '0' && r <= '9' || r == '_' || r == '-'):
		default:
			return false
		}
	}
	return true
}
