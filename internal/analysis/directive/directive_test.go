package directive

import (
	"strings"
	"testing"
)

func TestParseValid(t *testing.T) {
	cases := []struct {
		text string
		want Directive
	}{
		{"//noisevet:ignore", Directive{Name: "ignore"}},
		{"//noisevet:ignore lockbalance", Directive{Name: "ignore", Analyzers: []string{"lockbalance"}}},
		{"//noisevet:ignore lockorder,locksets", Directive{Name: "ignore", Analyzers: []string{"lockorder", "locksets"}}},
		{"//noisevet:ignore lockorder, locksets", Directive{Name: "ignore", Analyzers: []string{"lockorder", "locksets"}}},
		{"//noisevet:hotpath", Directive{Name: "hotpath"}},
		{"//noisevet:coldpath", Directive{Name: "coldpath"}},
		{"//noisevet:lockrank trace 1", Directive{Name: "lockrank", Hierarchy: "trace", Level: 1}},
		{"//noisevet:lockrank io-path 0", Directive{Name: "lockrank", Hierarchy: "io-path", Level: 0}},
		{"//noisevet:lockrank a_b 42", Directive{Name: "lockrank", Hierarchy: "a_b", Level: 42}},
		{"//noisevet:hotpath // trailing remark", Directive{Name: "hotpath"}},
		{"//noisevet:lockrank trace 2 // session before ring", Directive{Name: "lockrank", Hierarchy: "trace", Level: 2}},
	}
	for _, c := range cases {
		d, err := Parse(c.text)
		if err != nil {
			t.Errorf("Parse(%q): unexpected error %v", c.text, err)
			continue
		}
		if d == nil {
			t.Errorf("Parse(%q) = nil, want directive", c.text)
			continue
		}
		if d.Name != c.want.Name || d.Hierarchy != c.want.Hierarchy || d.Level != c.want.Level {
			t.Errorf("Parse(%q) = %+v, want %+v", c.text, d, c.want)
		}
		if len(d.Analyzers) != len(c.want.Analyzers) {
			t.Errorf("Parse(%q).Analyzers = %v, want %v", c.text, d.Analyzers, c.want.Analyzers)
			continue
		}
		for i := range d.Analyzers {
			if d.Analyzers[i] != c.want.Analyzers[i] {
				t.Errorf("Parse(%q).Analyzers = %v, want %v", c.text, d.Analyzers, c.want.Analyzers)
			}
		}
	}
}

func TestParseNotADirective(t *testing.T) {
	for _, text := range []string{
		"// plain comment",
		"//noisevet", // no colon: outside the namespace
		"// noisevet:ignore",
		"//go:build linux",
		"/* noisevet:ignore */",
	} {
		d, err := Parse(text)
		if d != nil || err != nil {
			t.Errorf("Parse(%q) = %v, %v; want nil, nil", text, d, err)
		}
	}
}

func TestParseMalformed(t *testing.T) {
	cases := []struct {
		text    string
		errPart string
	}{
		{"//noisevet:", "missing a name"},
		{"//noisevet:hotpah", "unknown directive"},
		{"//noisevet:hotpath extra", "takes no arguments"},
		{"//noisevet:coldpath x y", "takes no arguments"},
		{"//noisevet:lockrank", "wants <hierarchy> <level>"},
		{"//noisevet:lockrank trace", "wants <hierarchy> <level>"},
		{"//noisevet:lockrank trace 1 2", "wants <hierarchy> <level>"},
		{"//noisevet:lockrank 1trace 2", "must match"},
		{"//noisevet:lockrank tr@ce 2", "must match"},
		{"//noisevet:lockrank trace one", "not an integer"},
		{"//noisevet:lockrank trace -1", "out of range"},
		{"//noisevet:lockrank trace 99999999999", "out of range"},
		{"//noisevet:lockrank trace 9999999", "out of range"},
	}
	for _, c := range cases {
		d, err := Parse(c.text)
		if err == nil {
			t.Errorf("Parse(%q) = %+v, want error containing %q", c.text, d, c.errPart)
			continue
		}
		if !strings.Contains(err.Error(), c.errPart) {
			t.Errorf("Parse(%q) error = %q, want it to contain %q", c.text, err, c.errPart)
		}
	}
}

func TestValidNamesListsEveryDirective(t *testing.T) {
	names := ValidNames()
	for _, want := range []string{Ignore, Hotpath, Coldpath, Lockrank} {
		if !strings.Contains(names, want) {
			t.Errorf("ValidNames() = %q, missing %q", names, want)
		}
	}
}
