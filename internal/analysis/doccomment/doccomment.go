// Package doccomment implements the noisevet analyzer behind the CI
// doc-lint step: every exported identifier in the audited packages must
// carry a godoc comment, and the comment must start with the identifier
// it documents.
//
// The audited packages are the module's public face inside the repo —
// trace format, analyzer, simulation clock, statistics, cluster model —
// and their doc comments are the only place the paper-section
// correspondence of each construct is recorded. The analyzer enforces,
// inside a configured set of package prefixes:
//
//   - a package-level doc comment on every package;
//   - a doc comment on every exported top-level func, method (on an
//     exported receiver), type, const, and var, beginning with the
//     identifier's name (an optional leading article — "A", "An",
//     "The" — is accepted);
//   - for grouped const/var declarations, either a group comment or a
//     per-spec doc or trailing comment (no first-word rule: groups are
//     usually documented collectively);
//   - a doc or trailing comment on every exported struct field and
//     interface method of an exported type (no first-word rule).
package doccomment

import (
	"go/ast"
	"strings"

	"osnoise/internal/analysis"
)

// Config scopes the analyzer.
type Config struct {
	// Packages are package-path prefixes under which the rules apply.
	// A pass over a package outside every prefix reports nothing.
	Packages []string
}

// New returns a doccomment analyzer with the given scope.
func New(cfg Config) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "doccomment",
		Doc: "require godoc comments on every exported identifier in the audited packages\n\n" +
			"Doc comments are where each construct's paper-section correspondence lives; the\n" +
			"analyzer fails CI on exported identifiers without one, and on doc comments that\n" +
			"do not start with the name they document.",
	}
	a.Run = func(pass *analysis.Pass) (interface{}, error) {
		run(cfg, pass)
		return nil, nil
	}
	return a
}

func run(cfg Config, pass *analysis.Pass) {
	if !matchAny(cfg.Packages, pass.Pkg.Path()) {
		return
	}
	checkPackageDoc(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFunc(pass, d)
			case *ast.GenDecl:
				checkGen(pass, d)
			}
		}
	}
}

// checkPackageDoc requires a package-level doc comment on at least one
// file of the package, reporting once (on the first file's package
// clause) when none has it.
func checkPackageDoc(pass *analysis.Pass) {
	if len(pass.Files) == 0 {
		return
	}
	first := pass.Files[0]
	for _, f := range pass.Files {
		if f.Doc != nil {
			return
		}
		if pass.Fset.Position(f.Package).Filename < pass.Fset.Position(first.Package).Filename {
			first = f
		}
	}
	pass.Reportf(first.Package, "package %s has no package-level doc comment (state its role and paper-section correspondence)", pass.Pkg.Name())
}

// checkFunc requires a name-leading doc comment on exported functions
// and on exported methods of exported receiver types.
func checkFunc(pass *analysis.Pass, d *ast.FuncDecl) {
	if !d.Name.IsExported() {
		return
	}
	kind := "function"
	if d.Recv != nil {
		recv := receiverTypeName(d.Recv)
		if recv != "" && !ast.IsExported(recv) {
			return // method of an unexported type: not part of the API surface
		}
		kind = "method"
	}
	checkNamed(pass, d.Doc, kind, d.Name)
}

// checkGen dispatches a const/var/type declaration group.
func checkGen(pass *analysis.Pass, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			doc := s.Doc
			if doc == nil && len(d.Specs) == 1 {
				doc = d.Doc
			}
			checkNamed(pass, doc, "type", s.Name)
			checkTypeMembers(pass, s)
		case *ast.ValueSpec:
			// A group comment documents every spec; otherwise each
			// exported spec needs its own doc or trailing comment.
			if d.Doc != nil || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					pass.Reportf(name.Pos(), "exported %s %s has no doc comment", valueKind(d), name.Name)
				}
			}
		}
	}
}

// checkTypeMembers requires a doc or trailing comment on every exported
// struct field and interface method of an exported type.
func checkTypeMembers(pass *analysis.Pass, s *ast.TypeSpec) {
	switch t := s.Type.(type) {
	case *ast.StructType:
		for _, f := range t.Fields.List {
			if f.Doc != nil || f.Comment != nil {
				continue
			}
			for _, name := range f.Names {
				if name.IsExported() {
					pass.Reportf(name.Pos(), "exported field %s.%s has no doc comment", s.Name.Name, name.Name)
				}
			}
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			if m.Doc != nil || m.Comment != nil {
				continue
			}
			for _, name := range m.Names {
				if name.IsExported() {
					pass.Reportf(name.Pos(), "exported interface method %s.%s has no doc comment", s.Name.Name, name.Name)
				}
			}
		}
	}
}

// checkNamed enforces presence plus the godoc first-word convention on
// one named declaration.
func checkNamed(pass *analysis.Pass, doc *ast.CommentGroup, kind string, name *ast.Ident) {
	if doc == nil {
		pass.Reportf(name.Pos(), "exported %s %s has no doc comment", kind, name.Name)
		return
	}
	if !startsWithName(doc.Text(), name.Name) {
		pass.Reportf(doc.Pos(), "doc comment for %s %s should start with %q", kind, name.Name, name.Name)
	}
}

// startsWithName reports whether the cleaned doc text begins with the
// identifier (optionally after a leading article).
func startsWithName(text, name string) bool {
	words := strings.Fields(text)
	if len(words) == 0 {
		return false
	}
	if words[0] == name {
		return true
	}
	switch words[0] {
	case "A", "An", "The":
		return len(words) > 1 && words[1] == name
	}
	return false
}

// receiverTypeName unwraps the receiver's base type name.
func receiverTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// valueKind names a GenDecl's species for diagnostics.
func valueKind(d *ast.GenDecl) string {
	if d.Tok.String() == "const" {
		return "const"
	}
	return "var"
}

// matchAny reports whether path equals or is under any prefix.
func matchAny(prefixes []string, path string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}
