package pkg

func Undocumented() {}
