// Package good is fully documented and reports nothing.
package good

// Documented does nothing.
func Documented() {}

// A Thing holds documented fields.
type Thing struct {
	// Value is documented with a leading comment.
	Value int
	Count int // Count is documented with a trailing comment.
}

// Reset puts the thing back.
func (*Thing) Reset() {}

// Limits for the thing, documented as a group.
const (
	MinValue = 0
	MaxValue = 100
)
