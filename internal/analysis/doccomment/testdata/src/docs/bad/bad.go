package bad // want `package bad has no package-level doc comment`

// unexported needs nothing.
func unexported() {}

func Undocumented() {} // want `exported function Undocumented has no doc comment`

// Misnamed documents the wrong identifier. // want `doc comment for function Wrong should start with "Wrong"`
func Wrong() {}

// The Article form is accepted.
func Article() {}

type Bare struct { // want `exported type Bare has no doc comment`
	Field map[string]func( // want `exported field Bare.Field has no doc comment`
		int) int

	Noted   int // Noted carries a trailing comment.
	private int
}

// Iface is an interface with one undocumented method.
type Iface interface {
	Do(func( // want `exported interface method Iface.Do has no doc comment`
		int) int)

	// Done is documented.
	Done()
}

const Loose = "spans" + // want `exported const Loose has no doc comment`
	"two lines"

// Grouped constants share the group comment.
const (
	GroupedA = 1
	GroupedB = 2
)

var LooseVar = map[string]int{ // want `exported var LooseVar has no doc comment`
	"three": 3,
}

// unexportedType methods never count, exported or not.
type unexportedType struct{}

func (unexportedType) Method() {}

func (Bare) Exported() {} // want `exported method Exported has no doc comment`

// String satisfies fmt.Stringer.
func (Bare) String() string { return "" }
