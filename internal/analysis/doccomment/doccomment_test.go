package doccomment_test

import (
	"testing"

	"osnoise/internal/analysis/analysistest"
	"osnoise/internal/analysis/doccomment"
)

var testConfig = doccomment.Config{Packages: []string{"docs"}}

func TestViolations(t *testing.T) {
	analysistest.Run(t, "testdata", doccomment.New(testConfig), "docs/bad")
}

func TestClean(t *testing.T) {
	analysistest.Run(t, "testdata", doccomment.New(testConfig), "docs/good")
}

// TestOutsideScope proves packages outside every configured prefix are
// ignored: the fixture has undocumented exports and no want comments.
func TestOutsideScope(t *testing.T) {
	analysistest.Run(t, "testdata", doccomment.New(testConfig), "elsewhere/pkg")
}
