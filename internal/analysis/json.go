package analysis

import (
	"encoding/json"
	"io"
)

// JSONFinding is the stable wire form of one finding, emitted by
// `noisevet -json`. The schema is documented in docs/ARCHITECTURE.md
// and locked by TestJSONGolden: tools parse it, so field names, order,
// and types may not drift. File is as reported by the loader (absolute,
// or relative to the invocation directory when the CLI can shorten it);
// Line and Col are 1-based.
type JSONFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// EncodeJSON writes the findings to w as an indented JSON array of
// JSONFinding objects — `[]` (not null) when there are none, so
// consumers can always range over the result.
func EncodeJSON(w io.Writer, findings []Finding) error {
	out := make([]JSONFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, JSONFinding{
			Analyzer: f.Analyzer,
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
