// Package callgraph builds a repo-wide, over-approximating call graph
// over go/types, the interprocedural substrate of the noisevet suite.
// Per-package analyzers see one function at a time; the hot-path and
// cancellation-flow contracts are properties of whole call chains
// ("no allocation three calls below partitionRaw", "the context is
// threaded from AnalyzeRaw down to every loop"), so they need to know,
// for every call site in the module, which in-repo bodies control can
// transfer to.
//
// Nodes are function bodies: every declared function and method, every
// function literal (each literal is its own node, linked to its
// enclosing function), and one synthetic <init> node per package
// holding the package-level variable initializer expressions. Edges
// over-approximate control transfer:
//
//   - Static: a call whose callee is a declared in-repo function,
//     including method calls on concrete receivers and immediately
//     invoked literals. Go/Defer mark the same resolution reached
//     through a `go` or `defer` statement.
//   - Interface: a call through an interface method, resolved to the
//     matching method of every in-repo named type (value or pointer
//     receiver) that implements the interface — all of them, because
//     the analysis cannot know which implementation flows to the site.
//   - Closure: the definition of a function literal inside its
//     enclosing function (the literal may run whenever the enclosing
//     function runs, so reachability must include it).
//   - Ref: a reference to a function or method outside call position —
//     a function value passed to sort.Slice, a method value stored in a
//     struct. Whoever receives the value may call it, so the
//     referencing function is treated as a potential caller.
//
// Every *ast.CallExpr in the module is classified exactly once (static,
// interface, dynamic function value, builtin, conversion, or external);
// Stats counts each class and TestSelfValidation asserts the count
// invariants plus edge soundness over the whole repository.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"osnoise/internal/analysis"
)

// Kind classifies one call-graph edge.
type Kind uint8

// Edge kinds, from strongest resolution to weakest: a Static edge is a
// direct transfer, Go/Defer are static transfers through goroutine
// spawn or defer, Interface is one possible dynamic dispatch target,
// Closure links a literal to its definition site, and Ref marks a
// function value escaping to an unknown caller.
const (
	// KindStatic is a direct call of a declared in-repo function.
	KindStatic Kind = iota
	// KindGo is a static call spawned in a goroutine (`go f(...)`).
	KindGo
	// KindDefer is a static call registered by a defer statement.
	KindDefer
	// KindInterface is dynamic dispatch through an interface method,
	// resolved to one in-repo implementation (one edge per candidate).
	KindInterface
	// KindClosure links a function literal to the function that
	// lexically defines it.
	KindClosure
	// KindRef is a reference to a function outside call position: the
	// value may be invoked by whoever receives it.
	KindRef
)

// String names the edge kind for diagnostics and graph dumps.
func (k Kind) String() string {
	switch k {
	case KindStatic:
		return "static"
	case KindGo:
		return "go"
	case KindDefer:
		return "defer"
	case KindInterface:
		return "interface"
	case KindClosure:
		return "closure"
	case KindRef:
		return "ref"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Node is one function body in the graph.
type Node struct {
	// Obj is the declared function or method object; nil for function
	// literals and synthetic <init> nodes.
	Obj *types.Func
	// Decl is the declaration carrying Body; nil for literals.
	Decl *ast.FuncDecl
	// Lit is the function literal; nil for declared functions.
	Lit *ast.FuncLit
	// Parent is the node lexically enclosing a literal; nil otherwise.
	Parent *Node
	// Pkg is the package the body lives in.
	Pkg *analysis.Package
	// Name is the stable display name: "pkgpath.Func",
	// "pkgpath.Recv.Method" (pointer receivers spelled without the
	// star), "pkgpath.<init>" for the synthetic initializer node, and
	// "parent$N" for the N-th literal of its parent.
	Name string

	// Out and In are the edges leaving and entering this node.
	Out []*Edge
	In  []*Edge

	// roots are the AST subtrees owned by this node: the function body
	// for declared functions and literals (children that belong to
	// nested literals excluded during walks), or the package-level
	// initializer expressions for <init> nodes.
	roots []ast.Node
	lits  int // literals numbered so far, for stable $N names
}

// Pos returns the node's declaration position (NoPos for <init>).
func (n *Node) Pos() token.Pos {
	switch {
	case n.Decl != nil:
		return n.Decl.Pos()
	case n.Lit != nil:
		return n.Lit.Pos()
	}
	return token.NoPos
}

// Body returns the node's function body, or nil for <init> nodes.
func (n *Node) Body() *ast.BlockStmt {
	switch {
	case n.Decl != nil:
		return n.Decl.Body
	case n.Lit != nil:
		return n.Lit.Body
	}
	return nil
}

// CtxParam returns the object of the node's context.Context parameter,
// or nil when the function does not accept one. Interprocedural
// analyzers use it to follow a context through call chains.
func (n *Node) CtxParam() *types.Var {
	var sig *types.Signature
	switch {
	case n.Obj != nil:
		sig = n.Obj.Type().(*types.Signature)
	case n.Lit != nil && n.Pkg != nil:
		sig, _ = n.Pkg.Info.TypeOf(n.Lit).(*types.Signature)
	}
	if sig == nil {
		return nil
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if isContextType(p.Type()) {
			return p
		}
	}
	return nil
}

// Walk visits every AST node owned by this function body in source
// order. Function literals are visited (their definition site belongs
// to this node) but not descended into: a literal's body belongs to the
// literal's own graph node. If f returns false the node's children are
// skipped.
func (n *Node) Walk(f func(ast.Node) bool) {
	for _, root := range n.roots {
		ast.Inspect(root, func(m ast.Node) bool {
			if m == nil {
				return false
			}
			if _, ok := m.(*ast.FuncLit); ok {
				f(m)
				return false
			}
			return f(m)
		})
	}
}

// Edge is one potential control transfer.
type Edge struct {
	Caller *Node
	Callee *Node
	Kind   Kind
	// Pos is the call, reference, or literal position.
	Pos token.Pos
}

// Stats counts every call expression in the module by how it resolved.
// Calls is the total; the remaining fields partition it.
type Stats struct {
	// Calls is every *ast.CallExpr visited in function bodies and
	// package-level initializers.
	Calls int
	// Static calls resolved to a declared in-repo function (including
	// go/defer and immediately invoked literals).
	Static int
	// Interface calls dispatched through an interface method (each may
	// contribute several edges).
	Interface int
	// Dynamic calls invoke a function-typed value (variable, field,
	// parameter, or another call's result); targets flow through Ref
	// edges instead.
	Dynamic int
	// Builtin calls invoke a language builtin (append, len, panic, …).
	Builtin int
	// Conversion counts type conversions, which parse as calls.
	Conversion int
	// External calls resolve to functions outside the loaded module
	// (standard library).
	External int
	// Unresolved counts call expressions the builder could not
	// classify; the self-validation test pins this to zero.
	Unresolved int
}

// Graph is the module-wide call graph.
type Graph struct {
	// Fset maps the graph's positions (node declarations, edge call
	// sites) to source locations.
	Fset  *token.FileSet
	Nodes []*Node
	Stats Stats

	byObj  map[*types.Func]*Node
	byLit  map[*ast.FuncLit]*Node
	byName map[string]*Node
	sites  map[*ast.CallExpr][]*Node
	named  []*types.TypeName // in-repo named (non-interface) types, for interface resolution
	ifaces map[string][]*Node
}

// cacheKey is the Module.Cache slot the shared graph lives under.
const cacheKey = "callgraph"

// Of returns the module's call graph, building it on first use and
// memoizing it in the Module so every interprocedural analyzer in one
// checker run shares the same graph.
func Of(m *analysis.Module) *Graph {
	return m.Cache(cacheKey, func() interface{} { return Build(m.Fset, m.Pkgs) }).(*Graph)
}

// Build constructs the call graph of the loaded packages. Packages are
// visited in the given (dependency) order and files in go list order,
// so node numbering and edge order are deterministic.
func Build(fset *token.FileSet, pkgs []*analysis.Package) *Graph {
	g := &Graph{
		Fset:   fset,
		byObj:  make(map[*types.Func]*Node),
		byLit:  make(map[*ast.FuncLit]*Node),
		byName: make(map[string]*Node),
		sites:  make(map[*ast.CallExpr][]*Node),
		ifaces: make(map[string][]*Node),
	}

	// Pass 1: one node per declared function, one <init> node per
	// package with initializer expressions, and the named-type
	// inventory for interface resolution.
	for _, pkg := range pkgs {
		g.collectDecls(pkg)
	}
	// Pass 2: resolve every call and reference, creating literal nodes
	// on the way.
	for _, pkg := range pkgs {
		for _, node := range g.Nodes {
			if node.Pkg == pkg && node.Parent == nil {
				g.walkNode(node)
			}
		}
	}
	return g
}

// collectDecls creates the declared-function and <init> nodes of pkg
// and records its named types.
func (g *Graph) collectDecls(pkg *analysis.Package) {
	var initRoots []ast.Node
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue // assembly or external linkage: no body to analyze
				}
				obj, _ := pkg.Info.Defs[d.Name].(*types.Func)
				n := &Node{
					Obj: obj, Decl: d, Pkg: pkg,
					Name:  FuncName(obj),
					roots: []ast.Node{d.Body},
				}
				if obj == nil {
					n.Name = pkg.PkgPath + "." + d.Name.Name
				}
				g.addNode(n)
				if obj != nil {
					g.byObj[obj] = n
				}
			case *ast.GenDecl:
				if d.Tok != token.VAR {
					continue
				}
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, v := range vs.Values {
						initRoots = append(initRoots, v)
					}
				}
			}
		}
	}
	if len(initRoots) > 0 {
		g.addNode(&Node{
			Pkg:   pkg,
			Name:  pkg.PkgPath + ".<init>",
			roots: initRoots,
		})
	}
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		if _, isIface := tn.Type().Underlying().(*types.Interface); isIface {
			continue
		}
		if named, ok := tn.Type().(*types.Named); ok && named.TypeParams().Len() > 0 {
			// Uninstantiated generic types have no runtime method set;
			// their instantiations' calls resolve statically anyway.
			continue
		}
		g.named = append(g.named, tn)
	}
}

func (g *Graph) addNode(n *Node) {
	g.Nodes = append(g.Nodes, n)
	if _, taken := g.byName[n.Name]; taken {
		// Multiple func init() declarations (or blank funcs) share a
		// spelling; disambiguate so byName stays injective.
		for i := 2; ; i++ {
			alt := n.Name + "#" + strconv.Itoa(i)
			if _, taken := g.byName[alt]; !taken {
				n.Name = alt
				break
			}
		}
	}
	g.byName[n.Name] = n
}

// FuncName renders the stable display name of a declared function:
// "pkgpath.Func" or "pkgpath.Recv.Method" with pointer receivers
// spelled without the star.
func FuncName(obj *types.Func) string {
	if obj == nil {
		return "<nil>"
	}
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		name := t.String()
		if i := strings.LastIndexByte(name, '.'); i >= 0 {
			name = name[i+1:]
		}
		// Strip instantiation brackets of generic receivers.
		if i := strings.IndexByte(name, '['); i >= 0 {
			name = name[:i]
		}
		return pkg + "." + name + "." + obj.Name()
	}
	return pkg + "." + obj.Name()
}

// walkNode resolves the calls and references in one node's body,
// creating child nodes for the literals it defines and recursing into
// them.
func (g *Graph) walkNode(n *Node) {
	info := n.Pkg.Info

	// calleeIdents are identifiers consumed as the callee of a call
	// expression; references through them are the call itself, not an
	// escaping function value.
	calleeIdents := make(map[*ast.Ident]bool)

	var children []*Node
	n.Walk(func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.GoStmt:
			g.resolveCall(n, m.Call, KindGo, calleeIdents)
			// Children of the call (arguments, nested calls) are visited
			// by the ordinary traversal; mark so the CallExpr itself is
			// not resolved twice.
			return true
		case *ast.DeferStmt:
			g.resolveCall(n, m.Call, KindDefer, calleeIdents)
			return true
		case *ast.CallExpr:
			g.resolveCall(n, m, KindStatic, calleeIdents)
			return true
		case *ast.FuncLit:
			child := g.byLit[m]
			if child == nil {
				// Plain closure definition; immediately invoked literals
				// were already created (with a Static/Go/Defer edge) when
				// their enclosing CallExpr resolved.
				child = &Node{
					Lit: m, Parent: n, Pkg: n.Pkg,
					Name:  n.Name + "$" + strconv.Itoa(n.lits+1),
					roots: []ast.Node{m.Body},
				}
				n.lits++
				g.addNode(child)
				g.byLit[m] = child
				g.addEdge(n, child, KindClosure, m.Pos())
			}
			children = append(children, child)
			return true
		case *ast.Ident:
			if calleeIdents[m] {
				return true
			}
			if obj, ok := info.Uses[m].(*types.Func); ok {
				if callee := g.byObj[obj]; callee != nil {
					g.addEdge(n, callee, KindRef, m.Pos())
				}
			}
			return true
		}
		return true
	})
	for _, child := range children {
		g.walkNode(child)
	}
}

// resolveCall classifies one call expression and adds its edges. base
// is KindStatic for ordinary calls, KindGo/KindDefer when the call is
// the operand of a go/defer statement. Resolved-through identifiers are
// recorded in calleeIdents so the reference scan does not double-count
// them as escaping function values.
func (g *Graph) resolveCall(n *Node, call *ast.CallExpr, base Kind, calleeIdents map[*ast.Ident]bool) {
	if _, done := g.sites[call]; done {
		return // go/defer pre-resolved it; the plain traversal revisits
	}
	info := n.Pkg.Info
	g.Stats.Calls++
	record := func(class *int, targets ...*Node) {
		*class++
		g.sites[call] = targets
	}

	// Conversions parse as calls: T(x), []byte(s), (func())(f).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		record(&g.Stats.Conversion)
		return
	}

	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.Ident:
		g.resolveIdentCall(n, call, f, base, calleeIdents)

	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			calleeIdents[f.Sel] = true
			switch sel.Kind() {
			case types.MethodVal:
				m := sel.Obj().(*types.Func)
				recv := sel.Recv()
				if _, isTP := recv.(*types.TypeParam); isTP {
					// A method call on a type parameter: the concrete
					// receiver is only known at instantiation, so the
					// target set is dynamic.
					record(&g.Stats.Dynamic)
					return
				}
				if isInterfaceType(recv) {
					targets := g.implementations(recv, m.Name())
					for _, t := range targets {
						g.addEdge(n, t, KindInterface, call.Pos())
					}
					record(&g.Stats.Interface, targets...)
					return
				}
				g.staticTo(n, call, m, base)
			case types.MethodExpr:
				if m, ok := sel.Obj().(*types.Func); ok {
					g.staticTo(n, call, m, base)
					return
				}
				record(&g.Stats.Unresolved)
			case types.FieldVal:
				// Calling a func-typed struct field: a dynamic call whose
				// targets flow through Ref edges at the stores.
				record(&g.Stats.Dynamic)
			}
			return
		}
		// No selection: a qualified identifier (pkg.F).
		g.resolveIdentCall(n, call, f.Sel, base, calleeIdents)

	case *ast.FuncLit:
		// Immediately invoked literal: resolve after its node exists.
		// The literal visit in walkNode runs later, so create the node
		// here if needed.
		child := g.byLit[f]
		if child == nil {
			child = &Node{
				Lit: f, Parent: n, Pkg: n.Pkg,
				Name:  n.Name + "$" + strconv.Itoa(n.lits+1),
				roots: []ast.Node{f.Body},
			}
			n.lits++
			g.addNode(child)
			g.byLit[f] = child
		}
		g.addEdge(n, child, base, call.Pos())
		record(&g.Stats.Static, child)

	case *ast.IndexExpr, *ast.IndexListExpr:
		// Explicit generic instantiation F[T](x): resolve the inner
		// expression.
		var x ast.Expr
		if ie, ok := f.(*ast.IndexExpr); ok {
			x = ie.X
		} else {
			x = f.(*ast.IndexListExpr).X
		}
		switch xf := ast.Unparen(x).(type) {
		case *ast.Ident:
			g.resolveIdentCall(n, call, xf, base, calleeIdents)
		case *ast.SelectorExpr:
			g.resolveIdentCall(n, call, xf.Sel, base, calleeIdents)
		default:
			record(&g.Stats.Dynamic)
		}

	default:
		// Call of a call's result, an index expression, a channel
		// receive of a func, …: a dynamic function value.
		record(&g.Stats.Dynamic)
	}
}

// resolveIdentCall classifies a call whose callee is denoted by one
// identifier (possibly the Sel of a qualified name).
func (g *Graph) resolveIdentCall(n *Node, call *ast.CallExpr, id *ast.Ident, base Kind, calleeIdents map[*ast.Ident]bool) {
	info := n.Pkg.Info
	calleeIdents[id] = true
	switch obj := info.Uses[id].(type) {
	case *types.Builtin:
		g.Stats.Builtin++
		g.sites[call] = nil
	case *types.Func:
		g.staticTo(n, call, obj, base)
	case *types.Var:
		// A func-typed variable or parameter: dynamic.
		g.Stats.Dynamic++
		g.sites[call] = nil
	case *types.Nil:
		g.Stats.Dynamic++
		g.sites[call] = nil
	default:
		// Defs (shouldn't appear in call position) or missing info.
		g.Stats.Unresolved++
		g.sites[call] = nil
	}
}

// staticTo adds the static (or go/defer) edge for a resolved callee,
// counting it external when the callee lives outside the module.
func (g *Graph) staticTo(n *Node, call *ast.CallExpr, obj *types.Func, base Kind) {
	if callee := g.byObj[obj]; callee != nil {
		g.addEdge(n, callee, base, call.Pos())
		g.Stats.Static++
		g.sites[call] = []*Node{callee}
		return
	}
	g.Stats.External++
	g.sites[call] = nil
}

func (g *Graph) addEdge(from, to *Node, kind Kind, pos token.Pos) {
	e := &Edge{Caller: from, Callee: to, Kind: kind, Pos: pos}
	from.Out = append(from.Out, e)
	to.In = append(to.In, e)
}

// implementations returns the method nodes of every in-repo named type
// that implements the interface, memoized per (interface, method).
func (g *Graph) implementations(iface types.Type, method string) []*Node {
	key := iface.String() + "." + method
	if targets, ok := g.ifaces[key]; ok {
		return targets
	}
	it, ok := iface.Underlying().(*types.Interface)
	if !ok || !it.IsMethodSet() {
		// Constraint interfaces (type terms) are not method sets and
		// cannot be dispatched through at runtime.
		g.ifaces[key] = nil
		return nil
	}
	var targets []*Node
	seen := make(map[*Node]bool)
	for _, tn := range g.named {
		T := tn.Type()
		var impl types.Type
		switch {
		case types.Implements(T, it):
			impl = T
		case types.Implements(types.NewPointer(T), it):
			impl = types.NewPointer(T)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, tn.Pkg(), method)
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if node := g.byObj[m]; node != nil && !seen[node] {
			seen[node] = true
			targets = append(targets, node)
		}
	}
	g.ifaces[key] = targets
	return targets
}

// NodeByName returns the node with the given display name ("pkgpath.F",
// "pkgpath.T.Method", "pkgpath.F$1"), or nil.
func (g *Graph) NodeByName(name string) *Node { return g.byName[name] }

// NodeOf returns the node of a declared function object, or nil.
func (g *Graph) NodeOf(obj *types.Func) *Node { return g.byObj[obj] }

// NodeOfLit returns the node of a function literal, or nil.
func (g *Graph) NodeOfLit(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// CalleesOf returns the in-repo targets a call expression resolved to
// (nil for external, builtin, conversion, and dynamic calls) and
// whether the call was seen at all.
func (g *Graph) CalleesOf(call *ast.CallExpr) ([]*Node, bool) {
	t, ok := g.sites[call]
	return t, ok
}

// Reachable returns the set of nodes reachable from the roots over
// every edge kind — the over-approximated "may execute when a root
// executes" set interprocedural analyzers quantify over.
func (g *Graph) Reachable(roots ...*Node) map[*Node]bool {
	seen := make(map[*Node]bool)
	var stack []*Node
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.Out {
			if !seen[e.Callee] {
				seen[e.Callee] = true
				stack = append(stack, e.Callee)
			}
		}
	}
	return seen
}

// isInterfaceType reports whether t's underlying type is an interface.
func isInterfaceType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
