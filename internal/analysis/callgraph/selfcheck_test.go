package callgraph

import (
	"go/ast"
	"os"
	"path/filepath"
	"testing"

	"osnoise/internal/analysis"
)

// repoRoot walks up from the working directory to the directory holding
// go.mod, so the test can load the whole module regardless of where the
// test binary runs.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}

// TestSelfValidation builds the call graph of this entire repository
// and checks the structural soundness invariants on every node, edge,
// and call site. It is the companion of cfg.TestSelfValidation one
// layer up: the analyzers built on the graph are only as trustworthy as
// the resolution of every call site in the module.
func TestSelfValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load is slow; skipped with -short")
	}
	root := repoRoot(t)
	pkgs, fset, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	g := Build(fset, pkgs)

	// Scale floor: the repository is not small. If the loader or the
	// builder silently drops packages, these trip long before any
	// subtle invariant does.
	if len(g.Nodes) < 300 {
		t.Errorf("only %d nodes; the module has far more functions", len(g.Nodes))
	}
	if g.Stats.Calls < 2000 {
		t.Errorf("only %d call sites; the module has far more calls", g.Stats.Calls)
	}

	// Every call expression classified exactly once.
	s := g.Stats
	sum := s.Static + s.Interface + s.Dynamic + s.Builtin + s.Conversion + s.External + s.Unresolved
	if sum != s.Calls {
		t.Errorf("classification not a partition: %d classified vs %d sites (%+v)", sum, s.Calls, s)
	}
	if s.Unresolved != 0 {
		t.Errorf("%d unresolved call sites; every site in the module must classify (%+v)", s.Unresolved, s)
	}
	for _, class := range []struct {
		name string
		n    int
	}{
		{"static", s.Static},
		{"interface", s.Interface},
		{"dynamic", s.Dynamic},
		{"builtin", s.Builtin},
		{"conversion", s.Conversion},
		{"external", s.External},
	} {
		if class.n == 0 {
			t.Errorf("no %s call sites found; the module is known to contain them", class.name)
		}
	}

	// Node-local invariants.
	names := make(map[string]*Node, len(g.Nodes))
	for _, n := range g.Nodes {
		if prev, dup := names[n.Name]; dup {
			t.Errorf("duplicate node name %q (%v and %v)", n.Name, prev.Pos(), n.Pos())
		}
		names[n.Name] = n
		if g.NodeByName(n.Name) != n {
			t.Errorf("NodeByName(%q) does not round-trip", n.Name)
		}
		switch {
		case n.Decl != nil:
			if n.Lit != nil || n.Parent != nil {
				t.Errorf("%s: declared node carries literal fields", n.Name)
			}
			if n.Obj != nil && g.NodeOf(n.Obj) != n {
				t.Errorf("%s: NodeOf(Obj) does not round-trip", n.Name)
			}
			if n.Body() == nil {
				t.Errorf("%s: declared node without body", n.Name)
			}
		case n.Lit != nil:
			if n.Parent == nil {
				t.Errorf("%s: literal node without parent", n.Name)
			}
			if g.NodeOfLit(n.Lit) != n {
				t.Errorf("%s: NodeOfLit does not round-trip", n.Name)
			}
		default:
			// Synthetic <init> node.
			if n.Body() != nil {
				t.Errorf("%s: <init> node with a body", n.Name)
			}
		}

		// Edge mirroring: n.Out present in callee.In, n.In in caller.Out.
		for _, e := range n.Out {
			if e.Caller != n {
				t.Errorf("%s: out-edge whose Caller is %s", n.Name, e.Caller.Name)
			}
			if !containsEdge(e.Callee.In, e) {
				t.Errorf("%s -> %s: out-edge missing from callee's In", n.Name, e.Callee.Name)
			}
			if e.Kind == KindClosure && e.Callee.Parent != n {
				t.Errorf("%s -> %s: closure edge to a literal of %v", n.Name, e.Callee.Name, e.Callee.Parent)
			}
		}
		for _, e := range n.In {
			if e.Callee != n {
				t.Errorf("%s: in-edge whose Callee is %s", n.Name, e.Callee.Name)
			}
			if !containsEdge(e.Caller.Out, e) {
				t.Errorf("%s <- %s: in-edge missing from caller's Out", n.Name, e.Caller.Name)
			}
		}
	}

	// Every static call site's recorded targets are real nodes, and
	// every CallExpr in every body was seen by the builder.
	sites := 0
	for _, n := range g.Nodes {
		n.Walk(func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			sites++
			targets, seen := g.CalleesOf(call)
			if !seen {
				t.Errorf("%s: call at %v never classified", n.Name, g.Fset.Position(call.Pos()))
				return true
			}
			for _, target := range targets {
				if names[target.Name] != target {
					t.Errorf("%s: call target %q is not a graph node", n.Name, target.Name)
				}
			}
			return true
		})
	}
	if sites != s.Calls {
		t.Errorf("walked %d call sites, builder classified %d", sites, s.Calls)
	}

	// Known anchors: functions and edges this repository is guaranteed
	// to contain. These pin cross-package static resolution, interface
	// resolution, and goroutine edges to real code.
	anchors := []string{
		"osnoise/internal/noise.Analyze",
		"osnoise/internal/noise.partitionRaw",
		"osnoise/internal/noise.AnalyzeParallel",
		"osnoise/internal/trace.Decoder.Next",
		"osnoise/internal/trace.ReadParallel",
		"osnoise/internal/cluster.Run",
	}
	for _, name := range anchors {
		if g.NodeByName(name) == nil {
			t.Errorf("anchor %s missing from graph", name)
		}
	}

	// AnalyzeRaw reaches partitionRaw (cross-function chain) and
	// spawns goroutines somewhere in its reachable set.
	ap := g.NodeByName("osnoise/internal/noise.AnalyzeRaw")
	pr := g.NodeByName("osnoise/internal/noise.partitionRaw")
	if ap != nil && pr != nil {
		reach := g.Reachable(ap)
		if !reach[pr] {
			t.Errorf("partitionRaw not reachable from AnalyzeRaw")
		}
		goEdges := 0
		for n := range reach {
			for _, e := range n.Out {
				if e.Kind == KindGo {
					goEdges++
				}
			}
		}
		if goEdges == 0 {
			t.Errorf("no goroutine-spawn edges reachable from AnalyzeParallel")
		}
	}

	// Interface resolution: somewhere in the module an error-interface
	// method call resolves to an in-repo Error implementation.
	ifaceEdges := 0
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			if e.Kind == KindInterface {
				ifaceEdges++
			}
		}
	}
	if ifaceEdges == 0 {
		t.Errorf("no interface-dispatch edges; the module calls error.Error on in-repo error types")
	}

	t.Logf("callgraph: %d nodes, stats %+v", len(g.Nodes), s)
}

func containsEdge(edges []*Edge, e *Edge) bool {
	for _, x := range edges {
		if x == e {
			return true
		}
	}
	return false
}
