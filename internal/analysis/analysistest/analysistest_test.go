package analysistest

import (
	"go/ast"
	"testing"

	"osnoise/internal/analysis"
	"osnoise/internal/analysis/callgraph"
)

// TestRunModuleCrossPackage is the regression test for multi-package
// fixtures: a throwaway module analyzer reports every call site that
// statically resolves to a function in a different package, and the
// fixture asserts exactly the xpkg -> xpkg/lib edge. If RunModule stops
// loading fixture imports into one module, or the call graph stops
// resolving across package boundaries, the want goes unmet.
func TestRunModuleCrossPackage(t *testing.T) {
	a := &analysis.Analyzer{
		Name: "xresolve",
		Doc:  "test-only: report cross-package static call resolutions",
	}
	a.RunModule = func(pass *analysis.ModulePass) error {
		g := callgraph.Of(pass.Module)
		for _, n := range g.Nodes {
			if n.Pkg == nil || !n.Pkg.Target {
				continue
			}
			pkg := n.Pkg
			n.Walk(func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				targets, _ := g.CalleesOf(call)
				for _, target := range targets {
					if target.Pkg != nil && target.Pkg != pkg {
						pass.Reportf(call.Pos(), "resolves to %s", target.Name)
					}
				}
				return true
			})
		}
		return nil
	}
	RunModule(t, "testdata", a, "xpkg", "xpkg/lib")
}
