// Package xpkg checks that RunModule loads fixture imports into the
// same module and that the call graph resolves across the boundary.
package xpkg

import "xpkg/lib"

// Top calls one local and one cross-package function; only the latter
// resolves to a node in another package.
func Top() int {
	local()
	return lib.Helper() // want `resolves to xpkg/lib\.Helper`
}

func local() {}
