// Package lib is imported by xpkg; Helper is the cross-package target.
package lib

// Helper is called from xpkg.Top.
func Helper() int { return 42 }
