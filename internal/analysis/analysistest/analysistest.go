// Package analysistest runs an analyzer over GOPATH-style fixture
// packages under a testdata directory and checks its diagnostics
// against "// want" comment expectations, mirroring the contract of
// golang.org/x/tools/go/analysis/analysistest on the standard library
// only.
//
// Layout: testdata/src/<import/path>/*.go. A fixture file marks each
// expected diagnostic with a comment on the offending line:
//
//	rand.Int() // want `math/rand`
//	m[k] = v   // want "plain access" "second diagnostic"
//
// Each quoted string (double- or back-quoted) is a regular expression
// that must match the message of exactly one diagnostic reported on
// that line; diagnostics with no matching expectation, and
// expectations with no matching diagnostic, fail the test. Fixture
// packages may import one another by their testdata-relative paths and
// may import the standard library.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"osnoise/internal/analysis"
)

// Run loads each fixture package in paths from testdata/src, applies
// the analyzer, and reports expectation mismatches through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	ld := &loader{
		root:     filepath.Join(testdata, "src"),
		fset:     token.NewFileSet(),
		pkgs:     make(map[string]*fixturePkg),
		checking: make(map[string]bool),
	}
	ld.fallback = importer.ForCompiler(ld.fset, "source", nil)
	for _, path := range paths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Fatalf("analysistest: loading fixture %q: %v", path, err)
		}
		check(t, ld.fset, a, pkg)
	}
}

// RunModule loads every fixture package in paths (and, recursively,
// the fixture packages they import) into one module, applies the
// module-level analyzer once over the whole set, and checks the
// diagnostics against the "// want" expectations of all files of the
// listed packages. Interprocedural analyzers are tested this way: a
// fixture package "a" can call into fixture package "a/impl" and the
// expectations can assert cross-package resolution.
//
// The listed paths become target packages (analyzers report findings
// there); packages pulled in only as imports are loaded but
// non-target, mirroring the real checker.
func RunModule(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	if a.RunModule == nil {
		t.Fatalf("analysistest: %s has no RunModule; use Run", a.Name)
	}
	ld := &loader{
		root:     filepath.Join(testdata, "src"),
		fset:     token.NewFileSet(),
		pkgs:     make(map[string]*fixturePkg),
		checking: make(map[string]bool),
	}
	ld.fallback = importer.ForCompiler(ld.fset, "source", nil)
	targets := make(map[string]bool, len(paths))
	for _, path := range paths {
		targets[path] = true
		if _, err := ld.load(path); err != nil {
			t.Fatalf("analysistest: loading fixture %q: %v", path, err)
		}
	}

	var pkgs []*analysis.Package
	var wantFiles []*ast.File
	for _, p := range ld.order {
		var goFiles []string
		for _, f := range p.files {
			goFiles = append(goFiles, ld.fset.Position(f.Pos()).Filename)
		}
		pkgs = append(pkgs, &analysis.Package{
			PkgPath: p.path,
			Dir:     p.dir,
			GoFiles: goFiles,
			Files:   p.files,
			Types:   p.types,
			Info:    p.info,
			Target:  targets[p.path],
		})
		if targets[p.path] {
			wantFiles = append(wantFiles, p.files...)
		}
	}

	var diags []analysis.Diagnostic
	pass := &analysis.ModulePass{
		Analyzer: a,
		Module:   &analysis.Module{Fset: ld.fset, Pkgs: pkgs},
		Report:   func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.RunModule(pass); err != nil {
		t.Fatalf("analysistest: %s (module pass): %v", a.Name, err)
	}
	diffWants(t, ld.fset, diags, wantFiles)
}

// fixturePkg is one loaded fixture package.
type fixturePkg struct {
	path  string
	dir   string
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// loader resolves fixture imports recursively, with a stdlib fallback.
type loader struct {
	root     string
	fset     *token.FileSet
	pkgs     map[string]*fixturePkg
	order    []*fixturePkg   // completed packages, dependencies first
	checking map[string]bool // import cycle guard
	fallback types.Importer
}

func (l *loader) load(path string) (*fixturePkg, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("fixture import cycle through %q", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := analysis.NewTypesInfo()
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking: %v", typeErrs[0])
	}
	if err != nil {
		return nil, err
	}
	pkg := &fixturePkg{path: path, dir: dir, files: files, types: tpkg, info: info}
	l.pkgs[path] = pkg
	l.order = append(l.order, pkg)
	return pkg, nil
}

// Import resolves an import found inside a fixture: first as another
// fixture package, then from the standard library.
func (l *loader) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path))); err == nil {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.types, nil
	}
	return l.fallback.Import(path)
}

// expectation is one "// want" regexp at a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// check runs the analyzer on pkg and diffs diagnostics vs wants.
func check(t *testing.T, fset *token.FileSet, a *analysis.Analyzer, pkg *fixturePkg) {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     pkg.files,
		Pkg:       pkg.types,
		TypesInfo: pkg.info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analysistest: %s on %s: %v", a.Name, pkg.path, err)
	}
	diffWants(t, fset, diags, pkg.files)
}

// diffWants matches reported diagnostics against the files' "// want"
// expectations, reporting both unexpected diagnostics and unmet wants.
func diffWants(t *testing.T, fset *token.FileSet, diags []analysis.Diagnostic, files []*ast.File) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		ws, err := parseWants(fset, f)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		wants = append(wants, ws...)
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// wantRe matches the trailing "want" clause of a fixture comment.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants extracts expectations from a file's comments.
func parseWants(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, group := range f.Comments {
		for _, c := range group.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Slash)
			patterns, err := splitPatterns(m[1])
			if err != nil {
				return nil, fmt.Errorf("%s: bad want clause: %v", pos, err)
			}
			for _, p := range patterns {
				re, err := regexp.Compile(p)
				if err != nil {
					return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, p, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: p})
			}
		}
	}
	return out, nil
}

// splitPatterns parses a sequence of double- or back-quoted strings.
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			q, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			out = append(out, q)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
	}
	return out, nil
}
