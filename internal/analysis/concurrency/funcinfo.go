package concurrency

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"osnoise/internal/analysis"
	"osnoise/internal/analysis/callgraph"
	"osnoise/internal/analysis/cfg"
	"osnoise/internal/analysis/summary"
)

// factKey identifies one held lock in the dataflow fact: the class and
// the mode (read/write) it is held in.
type factKey struct {
	c    *Class
	read bool
}

// lockFact is the must-held lattice: class+mode → hold depth (> 0).
// Absence means "not provably held"; the join intersects keys and
// takes the minimum depth, so a fact entry survives only when every
// path to the point holds the lock.
type lockFact map[factKey]int8

func cloneFact(f lockFact) lockFact {
	out := make(lockFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// opEvent is one concurrency-relevant point hit during a block replay.
type opEvent struct {
	acquire bool // Lock/RLock (or once.Do entry)
	release bool // Unlock/RUnlock
	class   *Class
	read    bool
	pos     token.Pos

	// call is set for call sites with in-repo callees, including the
	// sync.Once.Do callback.
	call     *ast.CallExpr
	targets  []*callgraph.Node
	spawned  bool      // the call is the operand of a go statement
	claimPos token.Pos // once.Do's callback expression position
}

// analyzeNode runs the must-held dataflow over one function body and
// extracts its acquire sites, call sites, spawn sites, and exit-held
// set.
func (i *Info) analyzeNode(n *callgraph.Node) *FuncInfo {
	fi := &FuncInfo{
		Node:        n,
		heldAt:      make(map[token.Pos][]HeldLock),
		claimedRefs: make(map[token.Pos]bool),
	}
	body := n.Body()
	if body == nil {
		return fi // <init> nodes: initializer expressions do not lock
	}

	// Pre-scan with the same traversal the replay uses: go-statement
	// operands (their callees start with an empty lockset) and loop
	// extents (a spawn inside a loop is one site, many goroutines).
	goCalls := make(map[*ast.CallExpr]bool)
	type span struct{ lo, hi token.Pos }
	var loops []span
	cfg.Walk(body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.GoStmt:
			goCalls[m.Call] = true
		case *ast.ForStmt:
			if m.Body != nil {
				loops = append(loops, span{m.Body.Pos(), m.Body.End()})
			}
		case *ast.RangeStmt:
			if m.Body != nil {
				loops = append(loops, span{m.Body.Pos(), m.Body.End()})
			}
		}
		return true
	})
	inLoop := func(p token.Pos) bool {
		for _, s := range loops {
			if s.lo <= p && p < s.hi {
				return true
			}
		}
		return false
	}

	g := cfg.New(body, nil)
	fl := &flow{info: i, fi: fi, goCalls: goCalls}
	res := cfg.Forward(g, fl)

	// Witness positions: the first acquisition of each key anywhere in
	// the body, used when rendering held sets.
	acqPos := make(map[factKey]token.Pos)

	// Recording replay over every reachable block.
	for _, blk := range g.Blocks {
		in, ok := res.In[blk].(lockFact)
		if !ok {
			continue
		}
		fact := cloneFact(in)
		for _, stmt := range blk.Nodes {
			i.replay(fi, goCalls, fact, stmt, func(ev opEvent) {
				switch {
				case ev.acquire:
					k := factKey{ev.class, ev.read}
					if _, seen := acqPos[k]; !seen {
						acqPos[k] = ev.pos
					}
					fi.Acquires = append(fi.Acquires, AcquireSite{
						Class: ev.class,
						Read:  ev.read,
						Pos:   ev.pos,
						Held:  heldList(fact, acqPos),
					})
				case ev.call != nil:
					if ev.claimPos.IsValid() {
						fi.claimedRefs[ev.claimPos] = true
					}
					fi.Calls = append(fi.Calls, CallSite{
						Pos:     ev.pos,
						Callees: ev.targets,
						Held:    heldList(fact, acqPos),
						Go:      ev.spawned,
					})
					if ev.spawned {
						for _, callee := range ev.targets {
							i.Spawns = append(i.Spawns, &SpawnSite{
								Caller:      n,
								Callee:      callee,
								Pos:         ev.pos,
								InLoop:      inLoop(ev.pos),
								Partitioned: partitionedParams(n.Pkg, ev.call, callee),
							})
						}
					}
				}
			})
		}
	}

	if exit, ok := res.In[g.Exit].(lockFact); ok {
		fi.ExitHeld = heldList(exit, acqPos)
	}

	// Block iteration order is CFG construction order, not source
	// order; normalize for deterministic consumers.
	sort.Slice(fi.Acquires, func(a, b int) bool { return fi.Acquires[a].Pos < fi.Acquires[b].Pos })
	sort.Slice(fi.Calls, func(a, b int) bool { return fi.Calls[a].Pos < fi.Calls[b].Pos })
	return fi
}

// replay walks one block AST node in source order, firing events and
// applying their lock effects to fact. Snapshot points for HeldAt are
// recorded on fi when record is non-nil (the recording pass).
func (i *Info) replay(fi *FuncInfo, goCalls map[*ast.CallExpr]bool, fact lockFact, stmt ast.Node, record func(opEvent)) {
	cfg.Walk(stmt, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt:
			if record != nil {
				fi.heldAt[m.Pos()] = heldListIfAbsent(fi, m.Pos(), fact)
			}
		case *ast.CallExpr:
			if record != nil {
				fi.heldAt[m.Pos()] = heldListIfAbsent(fi, m.Pos(), fact)
			}
			if ev, ok := i.syncOp(fi.Node.Pkg, m); ok {
				if ev.class == nil {
					return true // unclassifiable receiver: skip the op
				}
				if ev.class.Once {
					// once.Do(f): acquire, run f with the class held,
					// release. Net-zero on the fact; the callback call
					// site carries the held class.
					fire(record, opEvent{acquire: true, class: ev.class, pos: m.Pos()})
					apply(fact, factKey{ev.class, false}, +1)
					fire(record, opEvent{call: m, pos: m.Pos(), targets: ev.targets, claimPos: ev.claimPos})
					apply(fact, factKey{ev.class, false}, -1)
					return false // the callback expression is claimed
				}
				if ev.acquire {
					fire(record, opEvent{acquire: true, class: ev.class, read: ev.read, pos: m.Pos()})
					apply(fact, factKey{ev.class, ev.read}, +1)
				} else {
					fire(record, opEvent{release: true, class: ev.class, read: ev.read, pos: m.Pos()})
					apply(fact, factKey{ev.class, ev.read}, -1)
				}
				return true
			}
			if targets, _ := i.Graph.CalleesOf(m); len(targets) > 0 {
				spawned := goCalls[m]
				fire(record, opEvent{call: m, pos: m.Pos(), targets: targets, spawned: spawned})
				// A synchronous single-target call to a lock() helper
				// leaves the helper's exit-held locks held here.
				if !spawned && len(targets) == 1 {
					if callee := i.Funcs[targets[0]]; callee != nil {
						for _, h := range callee.ExitHeld {
							apply(fact, factKey{h.Class, h.Read}, +1)
						}
					}
				}
			}
		}
		return true
	})
}

// fire invokes the record callback when present (the recording pass);
// the fixpoint pass passes nil and only wants the fact effects.
func fire(record func(opEvent), ev opEvent) {
	if record != nil {
		record(ev)
	}
}

// apply adjusts one fact entry by delta, deleting entries that reach
// zero so facts stay canonical for the fixpoint's Equal.
func apply(f lockFact, k factKey, delta int8) {
	v := f[k] + delta
	if v <= 0 {
		delete(f, k)
		return
	}
	f[k] = v
}

// syncOp classifies a call as a sync.Mutex/RWMutex/Once operation. ok
// reports the call is one; ev.class may still be nil when the receiver
// expression is not trackable.
func (i *Info) syncOp(pkg *analysis.Package, call *ast.CallExpr) (ev opEvent, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return ev, false
	}
	fn, isFn := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return ev, false
	}
	switch fn.Name() {
	case "Lock":
		ev.acquire = true
	case "RLock":
		ev.acquire, ev.read = true, true
	case "Unlock":
		ev.release = true
	case "RUnlock":
		ev.release, ev.read = true, true
	case "Do":
		c := i.ClassOf(pkg, sel.X)
		if c == nil || !c.Once {
			return ev, false
		}
		ev.class = c
		if len(call.Args) == 1 {
			ev.targets, ev.claimPos = i.resolveFuncValue(pkg, call.Args[0])
		}
		return ev, true
	default:
		return ev, false // TryLock, RLocker, …: conditional or indirect
	}
	ev.class = i.ClassOf(pkg, sel.X)
	return ev, true
}

// resolveFuncValue resolves a function-valued argument (a literal, a
// named function, or a method value) to its call-graph node(s) and the
// expression position to claim.
func (i *Info) resolveFuncValue(pkg *analysis.Package, arg ast.Expr) ([]*callgraph.Node, token.Pos) {
	e := ast.Unparen(arg)
	switch x := e.(type) {
	case *ast.FuncLit:
		if n := i.Graph.NodeOfLit(x); n != nil {
			return []*callgraph.Node{n}, x.Pos()
		}
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[x].(*types.Func); ok {
			if n := i.Graph.NodeOf(fn); n != nil {
				return []*callgraph.Node{n}, x.Pos()
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[x.Sel].(*types.Func); ok {
			if n := i.Graph.NodeOf(fn); n != nil {
				return []*callgraph.Node{n}, x.Sel.Pos()
			}
		}
	}
	return nil, token.NoPos
}

// heldList renders a fact as a deterministic HeldLock slice. acqPos
// supplies witness positions when available.
func heldList(f lockFact, acqPos map[factKey]token.Pos) []HeldLock {
	if len(f) == 0 {
		return nil
	}
	out := make([]HeldLock, 0, len(f))
	for k := range f {
		h := HeldLock{Class: k.c, Read: k.read}
		if acqPos != nil {
			h.Pos = acqPos[k]
		}
		out = append(out, h)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Class.Name != out[b].Class.Name {
			return out[a].Class.Name < out[b].Class.Name
		}
		return !out[a].Read && out[b].Read
	})
	return out
}

// heldListIfAbsent keeps the first (earliest-replayed) snapshot for a
// position: a statement can be revisited when a block replays.
func heldListIfAbsent(fi *FuncInfo, pos token.Pos, fact lockFact) []HeldLock {
	if prev, ok := fi.heldAt[pos]; ok {
		return prev
	}
	return heldList(fact, nil)
}

// partitionedParams maps spawn-call arguments of the form coll[i] or
// &coll[i] to the callee parameters receiving them.
func partitionedParams(pkg *analysis.Package, call *ast.CallExpr, callee *callgraph.Node) map[*types.Var]bool {
	var sig *types.Signature
	switch {
	case callee.Obj != nil:
		sig, _ = callee.Obj.Type().(*types.Signature)
	case callee.Lit != nil:
		sig, _ = pkg.Info.TypeOf(callee.Lit).(*types.Signature)
	}
	if sig == nil {
		return nil
	}
	var out map[*types.Var]bool
	for idx, arg := range call.Args {
		if idx >= sig.Params().Len() || (sig.Variadic() && idx >= sig.Params().Len()-1) {
			break
		}
		a := ast.Unparen(arg)
		if u, ok := a.(*ast.UnaryExpr); ok && u.Op == token.AND {
			a = ast.Unparen(u.X)
		}
		if _, ok := a.(*ast.IndexExpr); ok {
			if out == nil {
				out = make(map[*types.Var]bool)
			}
			out[sig.Params().At(idx)] = true
		}
	}
	return out
}

// flow is the must-held forward dataflow problem.
type flow struct {
	info    *Info
	fi      *FuncInfo
	goCalls map[*ast.CallExpr]bool
}

func (f *flow) Entry() cfg.Fact { return lockFact{} }

func (f *flow) Join(a, b cfg.Fact) cfg.Fact {
	am, bm := a.(lockFact), b.(lockFact)
	out := make(lockFact)
	for k, av := range am {
		if bv, ok := bm[k]; ok {
			if bv < av {
				av = bv
			}
			out[k] = av
		}
	}
	return out
}

func (f *flow) Equal(a, b cfg.Fact) bool {
	am, bm := a.(lockFact), b.(lockFact)
	if len(am) != len(bm) {
		return false
	}
	for k, v := range am {
		if w, ok := bm[k]; !ok || v != w {
			return false
		}
	}
	return true
}

func (f *flow) Transfer(blk *cfg.Block, in cfg.Fact) cfg.Fact {
	fact := cloneFact(in.(lockFact))
	for _, stmt := range blk.Nodes {
		f.info.replay(f.fi, f.goCalls, fact, stmt, nil)
	}
	return fact
}

// sccOrder returns the call-graph components callees-first over
// synchronous edges, the order analyzeNode needs so helper ExitHeld
// sets exist before their callers are summarized.
func sccOrder(g *callgraph.Graph) [][]*callgraph.Node {
	return summary.SCCs(g, func(e *callgraph.Edge) bool {
		switch e.Kind {
		case callgraph.KindStatic, callgraph.KindDefer, callgraph.KindInterface:
			return true
		}
		return false
	})
}
