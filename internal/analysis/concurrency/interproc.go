package concurrency

import (
	"osnoise/internal/analysis/callgraph"
)

// computeTrans closes the per-function acquire sets over synchronous
// call sites: trans[n] holds every class n may acquire while the
// caller's goroutine is inside n, with one witness each. Goroutine
// spawns are excluded — a lock acquired by a spawned body is acquired
// by a different goroutine and orders nothing in this one.
//
// Propagation follows the precise CallSites (static, interface, defer,
// immediately invoked literals, and sync.Once callbacks) rather than
// raw graph edges, so a plain closure definition or an escaping
// function reference does not smear its acquires into every function
// that mentions it. A global fixpoint handles cycles the synchronous
// SCC order cannot see (e.g. recursion through a Once callback); the
// sets only grow over a finite universe, so it terminates.
func (i *Info) computeTrans() {
	i.trans = make(map[*callgraph.Node]map[*Class]Witness, len(i.Graph.Nodes))
	for _, n := range i.Graph.Nodes {
		m := make(map[*Class]Witness)
		for _, a := range i.Funcs[n].Acquires {
			if _, ok := m[a.Class]; !ok {
				m[a.Class] = Witness{Pos: a.Pos, Read: a.Read}
			}
		}
		i.trans[n] = m
	}
	for changed := true; changed; {
		changed = false
		for _, n := range i.Graph.Nodes {
			mine := i.trans[n]
			for _, cs := range i.Funcs[n].Calls {
				if cs.Go {
					continue
				}
				for _, callee := range cs.Callees {
					for c, w := range i.trans[callee] {
						if _, ok := mine[c]; !ok {
							mine[c] = Witness{Pos: cs.Pos, Read: w.Read, Via: callee}
							changed = true
						}
					}
				}
			}
		}
	}
}

// computeEntry solves the top-down dual: entry[n] is the set of locks
// held on every synchronous path into n — the context locksets adds to
// a function's local must-held set at an access site. Contributions
// intersect across call sites; a goroutine spawn, an escaping function
// reference, or a plain closure definition contributes the empty set
// (the body can run with nothing held), except references a
// sync.Once.Do call site claimed, which carry the Once class instead.
func (i *Info) computeEntry() {
	i.entry = make(map[*callgraph.Node]map[*Class]HeldLock, len(i.Graph.Nodes))
	known := make(map[*callgraph.Node]bool, len(i.Graph.Nodes))

	// Call-site index: for each node, the (caller, site) pairs that
	// can enter it synchronously.
	type inSite struct {
		caller *callgraph.Node
		cs     *CallSite
	}
	sites := make(map[*callgraph.Node][]inSite)
	empty := make(map[*callgraph.Node]bool) // nodes with a nothing-held entry path
	for _, n := range i.Graph.Nodes {
		fi := i.Funcs[n]
		for idx := range fi.Calls {
			cs := &fi.Calls[idx]
			for _, callee := range cs.Callees {
				if cs.Go {
					empty[callee] = true
					continue
				}
				sites[callee] = append(sites[callee], inSite{caller: n, cs: cs})
			}
		}
		// Raw escape edges not represented as call sites.
		for _, e := range n.Out {
			switch e.Kind {
			case callgraph.KindClosure, callgraph.KindRef:
				if !fi.claimedRefs[e.Pos] {
					empty[e.Callee] = true
				}
			case callgraph.KindGo:
				empty[e.Callee] = true
			}
		}
	}

	intersect := func(dst map[*Class]HeldLock, src map[*Class]HeldLock) map[*Class]HeldLock {
		out := make(map[*Class]HeldLock)
		for c, h := range dst {
			if s, ok := src[c]; ok {
				// The weaker mode survives: a read hold on one path and
				// a write hold on another only guarantees read.
				if s.Read {
					h.Read = true
				}
				out[c] = h
			}
		}
		return out
	}

	for changed := true; changed; {
		changed = false
		for _, n := range i.Graph.Nodes {
			var acc map[*Class]HeldLock
			decided := false
			if empty[n] {
				acc, decided = map[*Class]HeldLock{}, true
			}
			for _, s := range sites[n] {
				contribution := make(map[*Class]HeldLock)
				for _, h := range s.cs.Held {
					contribution[h.Class] = h
				}
				// An unknown caller contributes only its local held set;
				// entry sets start from that bottom and grow
				// monotonically as caller contexts resolve, so the
				// fixpoint terminates.
				if known[s.caller] {
					for c, h := range i.entry[s.caller] {
						if _, ok := contribution[c]; !ok {
							contribution[c] = h
						}
					}
				}
				if !decided {
					acc, decided = contribution, true
				} else {
					acc = intersect(acc, contribution)
				}
			}
			if !decided {
				continue // no entries at all: stays unknown
			}
			if !known[n] || !heldMapEqual(i.entry[n], acc) {
				i.entry[n] = acc
				known[n] = true
				changed = true
			}
		}
	}
}

// heldMapEqual compares two entry locksets by class and mode.
func heldMapEqual(a, b map[*Class]HeldLock) bool {
	if len(a) != len(b) {
		return false
	}
	for c, h := range a {
		g, ok := b[c]
		if !ok || g.Read != h.Read {
			return false
		}
	}
	return true
}
