// Package concurrency computes the shared substrate of the noisevet
// concurrency analyzers (lockorder, chanlive, locksets): canonical lock
// identities, per-function lock facts from a CFG dataflow, bottom-up
// transitive-acquisition summaries over the call graph, top-down
// entry-lockset context, and the module's goroutine-spawn inventory.
//
// The paper's measurement pipeline is trustworthy only if its own
// synchronization is: a deadlock in the tracer stalls the workload it
// observes, and a data race in the analyzer corrupts the statistics the
// reproduction reports. Each concurrency analyzer needs the same three
// ingredients — which lock is this expression (identity), which locks
// are held here (dataflow), and what does this call acquire below
// (interprocedural summary) — so they are computed once per checker run
// and memoized on the Module, exactly like the call graph they build
// on.
//
// Lock identity is field-based: every acquisition of trace.Session's
// procMu is the same Class no matter which Session instance or receiver
// variable the source spells, which is the standard abstraction of
// Eraser-style static lock analysis and exact for the field-guard idiom
// this repository uses. An element of a mutex slice collapses to the
// slice object. sync.Once participates as a lock class of its own:
// once.Do(f) acquires the class, runs f with it held, and releases it.
package concurrency

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"osnoise/internal/analysis"
	"osnoise/internal/analysis/callgraph"
)

// Class is one canonical lock identity: a sync.Mutex/RWMutex/Once
// field, package-level variable, or local variable. Classes are
// interned per Info, so pointer equality is identity.
type Class struct {
	// Obj is the canonical object: the field variable for field
	// guards (shared by every instance), the package-level or local
	// variable otherwise, the collection variable for an indexed
	// element.
	Obj types.Object
	// Name is the stable display name: "trace.Session.procMu" for
	// fields, "trace.ringMu" for package vars, "mu" for locals.
	Name string
	// RW marks a sync.RWMutex (read acquisitions possible).
	RW bool
	// Once marks a sync.Once modeled as a lock around its Do callback.
	Once bool
}

// HeldLock is one lock known held at a program point: the class, the
// mode it is held in, and the position of the acquisition that put it
// there (the witness spelled out in findings).
type HeldLock struct {
	Class *Class
	// Read marks the hold as read-side (RLock); a write hold excludes
	// writers and readers both.
	Read bool
	// Pos is a representative acquisition site.
	Pos token.Pos
}

// AcquireSite is one lock acquisition with its must-held context: the
// locks this goroutine already holds when it acquires Class. The
// lock-order graph is exactly the union of Held×{Class} over all
// acquire sites plus the interprocedural closure through calls.
type AcquireSite struct {
	Class *Class
	Read  bool
	Pos   token.Pos
	// Held is the must-held set immediately before this acquisition,
	// deterministic order (by class name).
	Held []HeldLock
}

// CallSite is one call that can transfer control to an in-repo body,
// with the must-held set at the call. Go marks a goroutine spawn: the
// spawned body starts with an empty lockset, so spawns contribute no
// lock-order edges and break must-held propagation.
type CallSite struct {
	Pos     token.Pos
	Callees []*callgraph.Node
	Held    []HeldLock
	Go      bool
}

// SpawnSite is one `go` statement resolved to an in-repo body: the
// goroutine root inventory locksets and chanlive quantify over.
type SpawnSite struct {
	// Caller is the spawning function, Callee the spawned body (a
	// declared function, method, or the go statement's literal).
	Caller *callgraph.Node
	Callee *callgraph.Node
	Pos    token.Pos
	// InLoop marks a spawn site inside a for/range body: one site,
	// many concurrent instances of the same body.
	InLoop bool
	// Partitioned holds the callee parameters that receive an element
	// of an indexed collection at this spawn site (`go worker(&s[i])`):
	// writes through such a parameter are per-instance by construction
	// and exempt from lockset intersection.
	Partitioned map[*types.Var]bool
}

// FuncInfo is the per-function concurrency summary of one call-graph
// node.
type FuncInfo struct {
	Node *callgraph.Node
	// Acquires lists every lock acquisition in the body with its
	// must-held context, in source order.
	Acquires []AcquireSite
	// Calls lists every call site with in-repo callees (including
	// sync.Once.Do callbacks) and the must-held set at the call.
	Calls []CallSite
	// ExitHeld is the must-held set at function exit: locks acquired
	// here and handed to the caller still held (a lock() helper).
	ExitHeld []HeldLock
	// heldAt records the must-held set before selected statements for
	// the analyzers' access-site queries, keyed by position.
	heldAt map[token.Pos][]HeldLock
	// claimedRefs marks function-value expression positions consumed
	// by a sync.Once.Do call site, so the raw Closure/Ref edge they
	// also produced is not double-counted as an unknown caller.
	claimedRefs map[token.Pos]bool
}

// HeldAt returns the must-held set recorded immediately before the
// given position (an access site previously registered by the walk),
// or nil when the position was not an interesting point.
func (fi *FuncInfo) HeldAt(pos token.Pos) []HeldLock { return fi.heldAt[pos] }

// Info is the module-wide concurrency substrate, memoized on the
// Module under "concurrency" so the three analyzers of one checker run
// share it.
type Info struct {
	Graph *callgraph.Graph
	// Funcs holds the per-node summaries; nodes without a body
	// (<init>) map to an empty FuncInfo.
	Funcs map[*callgraph.Node]*FuncInfo
	// Spawns is every resolved `go` statement in target packages, in
	// graph (package/file/source) order.
	Spawns []*SpawnSite

	classes map[types.Object]*Class
	// trans maps node → class → witness of the shallowest acquisition
	// of that class reachable from the node through synchronous calls.
	trans map[*callgraph.Node]map[*Class]Witness
	// entry maps node → the locks provably held on every synchronous
	// path reaching it (nil = no synchronous callers / unknown).
	entry map[*callgraph.Node]map[*Class]HeldLock
}

// Witness explains how a node comes to acquire a class: a local
// acquisition at Pos (Via == nil), or a call at Pos into Via which
// acquires it further down. Chasing Via reconstructs the full path.
type Witness struct {
	Pos  token.Pos
	Read bool
	Via  *callgraph.Node
}

// cacheKey is the Module.Cache slot the substrate lives under.
const cacheKey = "concurrency"

// Of returns the module's concurrency substrate, building it on first
// use.
func Of(m *analysis.Module) *Info {
	return m.Cache(cacheKey, func() interface{} { return Compute(m) }).(*Info)
}

// Compute builds the substrate: call graph, per-function lock facts,
// interprocedural closures, and the spawn inventory.
func Compute(m *analysis.Module) *Info {
	info := &Info{
		Graph:   callgraph.Of(m),
		Funcs:   make(map[*callgraph.Node]*FuncInfo),
		classes: make(map[types.Object]*Class),
	}
	// Callees-first over synchronous edges so a call to a lock()
	// helper sees the helper's ExitHeld when its caller is summarized.
	for _, comp := range sccOrder(info.Graph) {
		for _, n := range comp {
			info.Funcs[n] = info.analyzeNode(n)
		}
	}
	// Spawns accumulate in SCC order; restore source order.
	sort.Slice(info.Spawns, func(a, b int) bool { return info.Spawns[a].Pos < info.Spawns[b].Pos })
	info.computeTrans()
	info.computeEntry()
	return info
}

// TransAcquires returns the classes node n (or anything it reaches
// through synchronous calls) may acquire, with one witness each.
func (i *Info) TransAcquires(n *callgraph.Node) map[*Class]Witness { return i.trans[n] }

// EntryHeld returns the locks provably held whenever n is entered:
// the intersection of the must-held sets at every synchronous call
// site targeting n. Goroutine spawns, escaping references, and plain
// closure definitions contribute the empty set.
func (i *Info) EntryHeld(n *callgraph.Node) map[*Class]HeldLock { return i.entry[n] }

// ClassOf resolves a lock-guard expression (the X of mu.Lock()'s
// selector) to its canonical class, or nil when the expression does
// not denote a trackable lock. pkg provides the type info of the
// expression's package.
func (i *Info) ClassOf(pkg *analysis.Package, expr ast.Expr) *Class {
	tinfo := pkg.Info
	e := ast.Unparen(expr)
	for {
		switch x := e.(type) {
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
			continue
		case *ast.IndexExpr:
			// locks[i].mu → the collection stands for all elements.
			e = ast.Unparen(x.X)
			continue
		}
		break
	}
	switch x := e.(type) {
	case *ast.Ident:
		v, ok := tinfo.ObjectOf(x).(*types.Var)
		if !ok {
			return nil
		}
		return i.intern(v, identName(v))
	case *ast.SelectorExpr:
		obj := tinfo.ObjectOf(x.Sel)
		v, ok := obj.(*types.Var)
		if !ok {
			return nil
		}
		if v.IsField() {
			return i.intern(v, fieldName(tinfo, x, v))
		}
		// Qualified package-level var (pkg.mu).
		return i.intern(v, identName(v))
	}
	return nil
}

// ClassByObj resolves an already-known variable (a lockrank-annotated
// field or package var) to its class, interning with the given display
// name on first sight.
func (i *Info) ClassByObj(v *types.Var, name string) *Class { return i.intern(v, name) }

// intern returns the canonical class of obj, creating it with the
// display name and type flags on first sight.
func (i *Info) intern(v *types.Var, name string) *Class {
	if c, ok := i.classes[v]; ok {
		return c
	}
	c := &Class{Obj: v, Name: name}
	t := v.Type()
	// Collections collapse to their element type for the RW/Once
	// flags.
	for {
		switch tt := t.Underlying().(type) {
		case *types.Pointer:
			t = tt.Elem()
			continue
		case *types.Slice:
			t = tt.Elem()
			continue
		case *types.Array:
			t = tt.Elem()
			continue
		}
		break
	}
	switch typeName(t) {
	case "sync.RWMutex":
		c.RW = true
	case "sync.Once":
		c.Once = true
	}
	i.classes[v] = c
	return c
}

// identName renders a non-field lock variable: package-qualified for
// package-level vars, bare for locals.
func identName(v *types.Var) string {
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return shortPkg(v.Pkg().Path()) + "." + v.Name()
	}
	return v.Name()
}

// fieldName renders a field guard as "pkg.Type.field", falling back to
// the source spelling when the receiver type is unnamed.
func fieldName(tinfo *types.Info, sel *ast.SelectorExpr, v *types.Var) string {
	t := tinfo.TypeOf(sel.X)
	for t != nil {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		pkg := ""
		if obj.Pkg() != nil {
			pkg = shortPkg(obj.Pkg().Path()) + "."
		}
		return pkg + obj.Name() + "." + v.Name()
	}
	return types.ExprString(sel)
}

// shortPkg keeps the last path element: "osnoise/internal/trace" →
// "trace". Findings stay readable; ambiguity is acceptable in a
// message.
func shortPkg(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// typeName renders a named type as "pkg.Name" using the full package
// path only for the sync match.
func typeName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// String renders a held set for findings: "trace.Session.procMu,
// trace.ringMu (read)".
func HeldString(held []HeldLock) string {
	parts := make([]string, len(held))
	for i, h := range held {
		parts[i] = h.Class.Name
		if h.Read {
			parts[i] += " (read)"
		}
	}
	return strings.Join(parts, ", ")
}

// FuncDisplay renders a node name without the module prefix noise for
// findings: "trace.Session.RegisterProcess".
func FuncDisplay(n *callgraph.Node) string {
	name := n.Name
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// PathString reconstructs the acquisition path a Witness encodes,
// starting at n: "f → g → h". A nil Via means the acquisition is local
// to the last node.
func (i *Info) PathString(n *callgraph.Node, c *Class) string {
	var steps []string
	seen := make(map[*callgraph.Node]bool)
	for n != nil && !seen[n] {
		seen[n] = true
		steps = append(steps, FuncDisplay(n))
		w, ok := i.trans[n][c]
		if !ok || w.Via == nil {
			break
		}
		n = w.Via
	}
	return strings.Join(steps, " → ")
}

// Position renders a token position against the graph's fset.
func (i *Info) Position(pos token.Pos) string {
	p := i.Graph.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}
