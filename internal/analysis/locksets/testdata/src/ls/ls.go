// Package ls exercises the locksets race check: unlocked and
// split-lock writes it must flag, and the locked, partitioned,
// entry-context, and ownership patterns it must stay silent on.
package ls

import "sync"

var (
	mu      sync.Mutex
	counter int
)

// locked: every instance of the loop-spawned goroutine writes under
// the same mutex. Clean.
func locked() {
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer wg.Done()
			mu.Lock()
			counter++
			mu.Unlock()
		}()
	}
	wg.Wait()
}

var hits int

// race: two goroutines write the same package variable with nothing
// held.
func race() {
	go func() {
		hits++ // want `ls\.hits is written with no common lock by ls\.race\$1 \(goroutine at ls\.go:\d+\) and by ls\.race\$2 at ls\.go:\d+ \(goroutine at ls\.go:\d+\); the writes race`
	}()
	go func() {
		hits++
	}()
}

var (
	muA, muB sync.Mutex
	shared   int
)

// splitLocks: both writers hold a lock — a different one each. The
// locksets intersect to nothing.
func splitLocks() {
	go func() {
		muA.Lock()
		shared++ // want `ls\.shared is written with no common lock by ls\.splitLocks\$1 \(goroutine at ls\.go:\d+, holding only ls\.muA\) and by ls\.splitLocks\$2 at ls\.go:\d+ \(goroutine at ls\.go:\d+, holding only ls\.muB\); the writes race`
		muA.Unlock()
	}()
	go func() {
		muB.Lock()
		shared++
		muB.Unlock()
	}()
}

// loopRace: one spawn site in a loop is several instances of the same
// body; the captured counter races with itself.
func loopRace() {
	total := 0
	for i := 0; i < 4; i++ {
		go func() {
			total++ // want `total is written by every instance of the goroutine spawned in a loop at ls\.go:\d+ with no lock held; instances race with each other`
		}()
	}
	_ = total
}

type slot struct{ val int }

// partitioned: each instance gets its own slice element; writes go
// through the parameter, whose provenance exempts them.
func partitioned(n int) {
	slots := make([]slot, n)
	for i := range slots {
		go fill(&slots[i])
	}
}

func fill(s *slot) { s.val = 1 }

type stats struct{ hits, misses int }

// capturedInstance: one heap object captured by three goroutines. The
// two hits writers race; the single misses writer is alone.
func capturedInstance() {
	s := &stats{}
	go func() {
		s.hits++ // want `ls\.stats\.hits is written with no common lock by ls\.capturedInstance\$1 \(goroutine at ls\.go:\d+\) and by ls\.capturedInstance\$3 at ls\.go:\d+ \(goroutine at ls\.go:\d+\); the writes race`
	}()
	go func() {
		s.misses++
	}()
	go func() {
		s.hits++
	}()
}

var (
	gate  sync.Mutex
	count int
)

// viaHelper: the write lives in a helper whose every caller holds
// gate; the entry-context fixpoint supplies the lockset. Clean.
func viaHelper() {
	go func() {
		gate.Lock()
		bump()
		gate.Unlock()
	}()
	go func() {
		gate.Lock()
		bump()
		gate.Unlock()
	}()
}

func bump() { count++ }

var warm int

// prepare: the spawning side's write is ordered before the goroutine
// by the go statement's happens-before edge; only one root writes
// concurrently. Clean.
func prepare() {
	warm = 1
	go func() { warm = 2 }()
}

type gauge struct{ v int }

func (g *gauge) set(x int) { g.v = x }

// methods: writes through a receiver are exempt — provenance unknown
// without alias analysis (a documented false negative). Clean.
func methods() {
	g := &gauge{}
	go g.set(1)
	go g.set(2)
}
