// Package locksets is an Eraser-style static race check over the
// module's spawned goroutines: a shared location written by two
// distinct goroutine roots (or by every instance of one goroutine
// spawned in a loop) must have a non-empty intersection of
// write-mode locksets across all its writes.
//
// "Shared location" is deliberately narrow so the check stays
// precise without alias analysis:
//
//   - a package-level variable, written directly or through a field
//     selector rooted at it;
//   - a local variable of a spawning function captured by a
//     goroutine literal (the classic `go func() { total++ }()`
//     race), or a field reached through such a capture.
//
// Writes whose base is a parameter or receiver are exempt — their
// provenance is unknown, and the repo's worker pools deliberately
// pass each goroutine a disjoint slice element (the partitioned-spawn
// idiom detected by the concurrency layer). Writes through an index
// or dereference are exempt for the same reason: element writes
// partitioned by index are the design the measurement pipeline uses.
//
// Only code reachable from a `go` statement participates: writes on
// the spawning side before the goroutines start are ordered by the
// spawn's happens-before edge and are not races.
//
// The lockset of a write is the must-held set at the statement
// (local acquisitions plus the context every caller provides, from
// the concurrency layer's entry-context fixpoint), restricted to
// write-mode holds — an RLock does not serialize two writers.
// sync.Once counts: two writes in the same Once callback never run
// concurrently. Fields of sync/atomic types never appear here at
// all, because atomic updates are method calls, not assignments.
package locksets

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"osnoise/internal/analysis"
	"osnoise/internal/analysis/callgraph"
	"osnoise/internal/analysis/concurrency"
)

// Config is reserved for future knobs (kept for symmetry with the
// other module analyzers).
type Config struct{}

// New returns the locksets analyzer.
func New(Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "locksets",
		Doc: "static race check: shared locations written by two goroutine " +
			"roots need a common write-mode lock",
		RunModule: run,
	}
}

// write records one counted write to a shared location.
type write struct {
	node   *callgraph.Node
	pos    token.Pos // l-value position (report anchor)
	base   *types.Var
	held   map[*concurrency.Class]bool // write-mode locks held
	sample string                      // display name of the location
}

// root is one goroutine origin: a single go statement. Two spawns of
// the same function are two roots; one spawn inside a loop is two
// instances by itself.
type root struct {
	spawn *concurrency.SpawnSite
	reach map[*callgraph.Node]bool
}

func run(pass *analysis.ModulePass) error {
	info := concurrency.Of(pass.Module)

	roots := make([]*root, 0, len(info.Spawns))
	for _, sp := range info.Spawns {
		roots = append(roots, &root{spawn: sp, reach: reachFrom(info, sp.Callee)})
	}
	if len(roots) == 0 {
		return nil
	}

	// Collect counted writes per shared location across every target
	// function.
	writes := make(map[*types.Var][]write)
	var order []*types.Var
	for _, n := range info.Graph.Nodes {
		if n.Pkg == nil || !n.Pkg.Target || n.Body() == nil {
			continue
		}
		fi := info.Funcs[n]
		if fi == nil {
			continue
		}
		entry := info.EntryHeld(n)
		n.Walk(func(m ast.Node) bool {
			var lhs []ast.Expr
			var stmtPos token.Pos
			switch s := m.(type) {
			case *ast.AssignStmt:
				lhs, stmtPos = s.Lhs, s.Pos()
			case *ast.IncDecStmt:
				lhs, stmtPos = []ast.Expr{s.X}, s.Pos()
			default:
				return true
			}
			for _, l := range lhs {
				target, base, sample := classifyLValue(n, l)
				if target == nil {
					continue
				}
				if _, seen := writes[target]; !seen {
					order = append(order, target)
				}
				writes[target] = append(writes[target], write{
					node:   n,
					pos:    l.Pos(),
					base:   base,
					held:   writeModeHeld(fi.HeldAt(stmtPos), entry),
					sample: sample,
				})
			}
			return true
		})
	}

	for _, target := range order {
		checkLocation(pass, info, roots, writes[target])
	}
	return nil
}

// checkLocation applies the Eraser rule to all writes of one location.
func checkLocation(pass *analysis.ModulePass, info *concurrency.Info, roots []*root, ws []write) {
	// Attribute each write to the goroutine roots that can execute it.
	type attributed struct {
		w     write
		roots []*root
	}
	var (
		atts      []attributed
		rootSet   = make(map[*root]bool)
		instances int
	)
	for _, w := range ws {
		var owners []*root
		for _, r := range roots {
			if !r.reach[w.node] {
				continue
			}
			if r.spawn.Partitioned[w.base] {
				continue // each instance writes its own element
			}
			if !sharedAcrossInstances(w.base, r.spawn.Callee) {
				continue // per-instance state, not visible at the spawn
			}
			owners = append(owners, r)
		}
		if len(owners) == 0 {
			continue // spawning-side write: ordered before the goroutines
		}
		atts = append(atts, attributed{w: w, roots: owners})
		for _, r := range owners {
			if !rootSet[r] {
				rootSet[r] = true
				instances++
				if r.spawn.InLoop {
					instances++ // a loop spawn is several instances of itself
				}
			}
		}
	}
	if len(atts) == 0 || instances < 2 {
		return
	}

	// Intersect write-mode locksets across every attributed write.
	common := make(map[*concurrency.Class]bool, len(atts[0].w.held))
	for c := range atts[0].w.held {
		common[c] = true
	}
	for _, a := range atts[1:] {
		for c := range common {
			if !a.w.held[c] {
				delete(common, c)
			}
		}
	}
	if len(common) > 0 {
		return // a lock serializes all writers
	}

	// Pick the two witnesses: prefer writes from two different roots.
	w1 := atts[0]
	w2 := atts[0]
	for _, a := range atts[1:] {
		if a.roots[0] != w1.roots[0] {
			w2 = a
			break
		}
	}
	fset := pass.Module.Fset
	if w1.w.pos == w2.w.pos {
		if len(w1.roots) >= 2 {
			pass.Reportf(w1.w.pos,
				"%s is written with no common lock by the goroutines spawned at %s and at %s%s; the writes race",
				w1.w.sample, position(fset, w1.roots[0].spawn.Pos),
				position(fset, w1.roots[1].spawn.Pos), heldNote(w1.w.held))
			return
		}
		pass.Reportf(w1.w.pos,
			"%s is written by every instance of the goroutine spawned in a loop at %s with no lock held%s; instances race with each other",
			w1.w.sample, position(fset, w1.roots[0].spawn.Pos), heldNote(w1.w.held))
		return
	}
	pass.Reportf(w1.w.pos,
		"%s is written with no common lock by %s (goroutine at %s%s) and by %s at %s (goroutine at %s%s); the writes race",
		w1.w.sample,
		concurrency.FuncDisplay(w1.w.node), position(fset, w1.roots[0].spawn.Pos), heldNote(w1.w.held),
		concurrency.FuncDisplay(w2.w.node), position(fset, w2.w.pos), position(fset, w2.roots[0].spawn.Pos), heldNote(w2.w.held))
}

// heldNote renders the (insufficient) lockset of a witness write, or
// nothing when it holds no lock at all.
func heldNote(held map[*concurrency.Class]bool) string {
	if len(held) == 0 {
		return ""
	}
	names := make([]string, 0, len(held))
	for c := range held {
		names = append(names, c.Name)
	}
	sort.Strings(names)
	return ", holding only " + strings.Join(names, ", ")
}

// classifyLValue decides whether an assignment destination is a
// counted shared location. It returns the location's identity (a
// package var, captured var, or field object), the base variable the
// access is rooted at, and a display name — or nil when exempt.
func classifyLValue(n *callgraph.Node, l ast.Expr) (target, base *types.Var, sample string) {
	info := n.Pkg.Info
	switch e := ast.Unparen(l).(type) {
	case *ast.Ident:
		v, ok := identVar(info, e)
		if !ok || !sharedBase(n, v) {
			return nil, nil, ""
		}
		return v, v, varDisplay(v)
	case *ast.SelectorExpr:
		sel, ok := info.Selections[e]
		if ok && sel.Kind() == types.FieldVal {
			field, _ := sel.Obj().(*types.Var)
			bv := chainBase(n, e.X)
			if field == nil || bv == nil || !sharedBase(n, bv) {
				return nil, nil, ""
			}
			return field, bv, fieldDisplay(info, e, field)
		}
		// No selection: a package-qualified variable (pkg.Var = x).
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && pkgLevel(v) {
			return v, v, varDisplay(v)
		}
		return nil, nil, ""
	default:
		// Index and dereference writes are the partitioned idiom.
		return nil, nil, ""
	}
}

// chainBase unwraps a selector chain to its base identifier's
// variable; an index or dereference anywhere in the chain exempts the
// write (element- or pointee-partitioned access).
func chainBase(n *callgraph.Node, x ast.Expr) *types.Var {
	info := n.Pkg.Info
	for {
		switch e := ast.Unparen(x).(type) {
		case *ast.Ident:
			if v, ok := identVar(info, e); ok {
				return v
			}
			// A package name: pkg.Var.Field — resolve in the caller.
			return nil
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				x = e.X
				continue
			}
			// pkg.Var as the base of a deeper selector.
			if v, ok := info.Uses[e.Sel].(*types.Var); ok {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// sharedBase reports whether v can be shared between goroutine
// instances without further aliasing: a package-level variable, or a
// variable a function literal captured from an enclosing function.
// Parameters, receivers, and the function's own locals are not.
func sharedBase(n *callgraph.Node, v *types.Var) bool {
	if pkgLevel(v) {
		return true
	}
	if n.Lit == nil {
		return false // declared functions own their locals and params
	}
	// Captured iff declared outside the literal's span.
	return !within(v, n)
}

// sharedAcrossInstances reports whether v names the same storage in
// every instance of the goroutine rooted at callee: a package-level
// variable, or a local of the root's lexical ancestor chain (the
// spawning function and its enclosers) declared outside the root
// itself. A variable declared inside the root's body — or in some
// unrelated callee frame — is a fresh allocation per instance (or per
// invocation) and cannot race with itself.
func sharedAcrossInstances(v *types.Var, callee *callgraph.Node) bool {
	if pkgLevel(v) {
		return true
	}
	if within(v, callee) {
		return false // the root's own local: one per instance
	}
	for a := callee.Parent; a != nil; a = a.Parent {
		if within(v, a) {
			return true // a spawner-side local the root captured
		}
	}
	return false
}

// within reports whether v is declared inside n's lexical span.
func within(v *types.Var, n *callgraph.Node) bool {
	var lo, hi token.Pos
	switch {
	case n.Lit != nil:
		lo, hi = n.Lit.Pos(), n.Lit.End()
	case n.Decl != nil:
		lo, hi = n.Decl.Pos(), n.Decl.End()
	default:
		return false
	}
	return v.Pos() >= lo && v.Pos() < hi
}

func pkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// identVar resolves an identifier to the variable it uses or defines.
func identVar(info *types.Info, id *ast.Ident) (*types.Var, bool) {
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v, true
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v, true
	}
	return nil, false
}

// writeModeHeld merges the local must-held snapshot with the entry
// context, keeping write-mode mutex holds and Once guards.
func writeModeHeld(local []concurrency.HeldLock, entry map[*concurrency.Class]concurrency.HeldLock) map[*concurrency.Class]bool {
	held := make(map[*concurrency.Class]bool, len(local)+len(entry))
	for _, h := range local {
		if !h.Read {
			held[h.Class] = true
		}
	}
	for _, h := range entry {
		if !h.Read {
			held[h.Class] = true
		}
	}
	return held
}

// reachFrom computes the nodes a goroutine executes synchronously:
// the transitive closure over non-go call sites plus the literals the
// visited functions define (a closure runs on the goroutine that
// calls it, however it is invoked).
func reachFrom(info *concurrency.Info, start *callgraph.Node) map[*callgraph.Node]bool {
	reach := map[*callgraph.Node]bool{start: true}
	stack := []*callgraph.Node{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if fi := info.Funcs[n]; fi != nil {
			for _, cs := range fi.Calls {
				if cs.Go {
					continue
				}
				for _, callee := range cs.Callees {
					if !reach[callee] {
						reach[callee] = true
						stack = append(stack, callee)
					}
				}
			}
		}
		for _, e := range n.Out {
			if e.Callee.Parent == n && e.Callee.Lit != nil && !reach[e.Callee] {
				reach[e.Callee] = true
				stack = append(stack, e.Callee)
			}
		}
	}
	return reach
}

func varDisplay(v *types.Var) string {
	if pkgLevel(v) {
		return v.Pkg().Name() + "." + v.Name()
	}
	return v.Name()
}

func fieldDisplay(info *types.Info, sel *ast.SelectorExpr, field *types.Var) string {
	t := info.TypeOf(sel.X)
	if t == nil {
		return field.Name()
	}
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + obj.Name() + "." + field.Name()
		}
		return obj.Name() + "." + field.Name()
	}
	return field.Name()
}

func position(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}
