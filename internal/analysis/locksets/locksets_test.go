package locksets

import (
	"testing"

	"osnoise/internal/analysis/analysistest"
)

func TestLocksets(t *testing.T) {
	analysistest.RunModule(t, "testdata", New(Config{}), "ls")
}
