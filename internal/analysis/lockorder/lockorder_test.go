package lockorder

import (
	"testing"

	"osnoise/internal/analysis/analysistest"
)

func TestFixtures(t *testing.T) {
	analysistest.RunModule(t, "testdata", New(Config{}), "lo", "lo/remote", "lo/iface")
}
