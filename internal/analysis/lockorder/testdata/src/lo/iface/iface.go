// Package iface provides the interface implementation the lo package
// dispatches into while holding its own lock: the acquisition below
// the interface call must still participate in the order graph
// (regression for cross-package interface resolution).
package iface

import "sync"

// Sink is the dispatch interface lo calls through.
type Sink interface {
	Flush()
}

// FileSink guards its buffer with mu, level 1 of the "sinkh"
// hierarchy.
type FileSink struct {
	//noisevet:lockrank sinkh 1
	mu  sync.Mutex
	buf []byte
}

// Flush acquires mu below the interface dispatch.
func (f *FileSink) Flush() {
	f.mu.Lock()
	f.buf = f.buf[:0]
	f.mu.Unlock()
}
