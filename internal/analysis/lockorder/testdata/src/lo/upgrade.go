package lo

// Upgrade promotes a read hold to a write hold on the same goroutine:
// the writer waits for all readers, including itself.
func (s *Store) Upgrade(key string) int {
	s.rw.RLock()
	v, ok := s.data[key]
	if !ok {
		s.rw.Lock() // want `upgrading lo.Store.rw from RLock to Lock on the same goroutine deadlocks`
		s.data[key] = 0
		s.rw.Unlock()
	}
	s.rw.RUnlock()
	return v
}

// ReadThenWrite drops the read hold before writing: the correct
// pattern, no finding.
func (s *Store) ReadThenWrite(key string) {
	s.rw.RLock()
	_, ok := s.data[key]
	s.rw.RUnlock()
	if !ok {
		s.rw.Lock()
		s.data[key] = 0
		s.rw.Unlock()
	}
}
