package lo

// Init is sync.Once-guarded lazy initialization: the callback acquires
// mu with the once "lock" held, which orders once before mu but closes
// no cycle — no finding.
func (s *Store) Init() {
	s.once.Do(s.setup)
}

func (s *Store) setup() {
	s.mu.Lock()
	s.data = make(map[string]int)
	s.mu.Unlock()
}

// InitInline is the literal-callback form of the same idiom.
func (s *Store) InitInline() {
	s.once.Do(func() {
		s.mu.Lock()
		if s.data == nil {
			s.data = make(map[string]int)
		}
		s.mu.Unlock()
	})
}
