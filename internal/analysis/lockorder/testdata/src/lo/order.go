package lo

import "lo/remote"

// Good acquires in declared order: mu (level 1) then idx (level 2).
// Together with Bad's inversion this closes a cycle, reported once at
// the name-sorted first edge's witness (Bad's inversion below).
func (s *Store) Good() {
	s.mu.Lock()
	s.idx.Lock()
	s.count++
	s.idx.Unlock()
	s.mu.Unlock()
}

// Bad inverts the declared order: idx (level 2) held while acquiring
// mu (level 1). The same witness anchors the cycle report.
func (s *Store) Bad() {
	s.idx.Lock()
	s.mu.Lock() // want `acquires lo.Store.mu \(hierarchy core level 1\) while holding lo.Store.idx \(level 2\)` `lock-order cycle among lo.Store.idx, lo.Store.mu`
	s.count--
	s.mu.Unlock()
	s.idx.Unlock()
}

// Outer reacquires mu through a helper while already holding it: an
// immediate self-deadlock the per-function lockbalance check cannot
// see.
func (s *Store) Outer() {
	s.mu.Lock()
	s.helperLocks() // want `call with lo.Store.mu held reacquires it via lo.Store.helperLocks`
	s.mu.Unlock()
}

func (s *Store) helperLocks() {
	s.mu.Lock()
	s.count++
	s.mu.Unlock()
}

// Invert acquires the cross-package "xpkg" hierarchy out of order:
// remote.B (level 2) held while a call into remote acquires remote.A
// (level 1).
func Invert() {
	remote.B.Lock()
	remote.TakeA() // want `acquires remote.A \(hierarchy xpkg level 1\) while holding remote.B \(level 2\)`
	remote.B.Unlock()
}
