// Package lo exercises the lockorder analyzer: declared rank
// hierarchies, acquisition-order cycles, read-to-write upgrades,
// sync.Once-guarded init, and interprocedural self-reacquisition.
package lo

import "sync"

// Store is the guarded structure under test. Its two mutexes form the
// "core" hierarchy: mu (level 1) before idx (level 2).
type Store struct {
	//noisevet:lockrank core 1
	mu sync.Mutex
	//noisevet:lockrank core 2
	idx sync.Mutex

	rw   sync.RWMutex
	once sync.Once

	data  map[string]int
	count int
}
