// Package remote declares the cross-package "xpkg" lock hierarchy the
// lo package inverts: acquisition order is checked module-wide, not
// file by file.
package remote

import "sync"

var (
	// A is the first lock of the hierarchy.
	//noisevet:lockrank xpkg 1
	A sync.Mutex
	// B is acquired after A.
	//noisevet:lockrank xpkg 2
	B sync.Mutex
)

// Forward acquires in declared order; with lo.Invert's reverse path it
// is one side of the reported cycle.
func Forward() {
	A.Lock()
	B.Lock() // want `lock-order cycle among remote.A, remote.B`
	B.Unlock()
	A.Unlock()
}

// TakeA is the entry point lo.Invert calls with B held.
func TakeA() {
	A.Lock()
	A.Unlock()
}
