package lo

import (
	"sync"

	"lo/iface"
)

// holder ranks its own mutex level 2 of the "sinkh" hierarchy: the
// sink's internal lock (level 1) must never be acquired below it.
type holder struct {
	//noisevet:lockrank sinkh 2
	mu   sync.Mutex
	sink iface.Sink
}

// flushLocked dispatches through the interface with mu held; the
// implementation acquires its level-1 lock underneath — an inversion
// the analyzer must see through the interface call.
func (h *holder) flushLocked() {
	h.mu.Lock()
	h.sink.Flush() // want `acquires iface.FileSink.mu \(hierarchy sinkh level 1\) while holding lo.holder.mu \(level 2\)`
	h.mu.Unlock()
}

// flushUnlocked releases before dispatching: the correct pattern, no
// finding.
func (h *holder) flushUnlocked() {
	h.mu.Lock()
	h.mu.Unlock()
	h.sink.Flush()
}
