// Package lockorder implements the noisevet analyzer that proves the
// module's lock acquisitions acyclic — the static deadlock check.
//
// lockbalance (per-function) guarantees every Lock has its Unlock;
// what it cannot see is two functions acquiring the same two mutexes
// in opposite orders, the classic ABBA deadlock that only fires under
// concurrent load — precisely the load the paper's measurement
// pipeline is built to generate. This analyzer consumes the
// concurrency substrate's interprocedural lock facts and checks three
// properties module-wide:
//
//   - Acyclicity: the lock-acquisition-order graph (an edge A → B for
//     every point where B is acquired with A held, including through
//     synchronous calls, interface dispatch, defers, and sync.Once
//     callbacks) must have no cycle. A cycle is reported once, with
//     both acquisition paths spelled out.
//   - Self-acquisition: calling into code that reacquires a mutex the
//     caller already holds deadlocks immediately; so does upgrading an
//     RWMutex read hold to a write hold on the same goroutine.
//   - Declared ranks: a //noisevet:lockrank <hierarchy> <level>
//     directive on a mutex field or package-level variable declares
//     its position in a named hierarchy; within one hierarchy locks
//     must be acquired in strictly increasing level order, so an
//     inversion is a finding even before a reverse path exists to
//     close the cycle.
//
// Misplaced lockrank directives (on anything but a sync.Mutex /
// RWMutex / Once field or package variable) are findings: an
// annotation that binds to nothing enforces nothing.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"osnoise/internal/analysis"
	"osnoise/internal/analysis/concurrency"
	"osnoise/internal/analysis/directive"
)

// Config scopes the analyzer; the zero value checks every target
// package.
type Config struct{}

// New returns the lockorder analyzer.
func New(Config) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "lockorder",
		Doc: "lockorder: no lock-order cycles, self-reacquisition, or declared-rank inversions\n\n" +
			"Builds the module-wide lock-acquisition-order graph from interprocedural\n" +
			"lockset summaries and reports cycles (potential ABBA deadlocks) with both\n" +
			"acquisition paths, read-to-write RWMutex upgrades, calls that reacquire a\n" +
			"held mutex, and violations of //noisevet:lockrank declared hierarchies.",
	}
	a.RunModule = run
	return a
}

// rank is one declared hierarchy position.
type rank struct {
	hierarchy string
	level     int
	pos       token.Pos
}

// orderEdge is one observed acquisition order with its witness: to was
// acquired with from held, in node, locally (via == nil) or through a
// call into via.
type orderEdge struct {
	from, to *concurrency.Class
	node     *analysis.Package // reporting package (for Target gating)
	owner    string            // function display name
	fromPos  token.Pos         // where from was acquired (may be NoPos)
	toPos    token.Pos         // the acquire or the call that leads to it
	viaPath  string            // "g → h" when the acquisition is downstream
}

func run(pass *analysis.ModulePass) error {
	info := concurrency.Of(pass.Module)
	ranks := collectRanks(pass, info)

	// The acquisition-order graph: first witness per (from, to) pair.
	type key struct{ from, to *concurrency.Class }
	edges := make(map[key]orderEdge)
	addEdge := func(e orderEdge) {
		k := key{e.from, e.to}
		if _, ok := edges[k]; !ok {
			edges[k] = e
		}
	}

	for _, n := range info.Graph.Nodes {
		if n.Pkg == nil || !n.Pkg.Target {
			continue
		}
		fi := info.Funcs[n]
		owner := concurrency.FuncDisplay(n)

		// Local acquisitions under held locks.
		for _, a := range fi.Acquires {
			for _, h := range a.Held {
				if h.Class == a.Class {
					if h.Read && !a.Read {
						pass.Reportf(a.Pos, "%s: upgrading %s from RLock to Lock on the same goroutine deadlocks (read-to-write upgrade)",
							owner, a.Class.Name)
					}
					continue
				}
				addEdge(orderEdge{
					from: h.Class, to: a.Class, node: n.Pkg, owner: owner,
					fromPos: h.Pos, toPos: a.Pos,
				})
			}
		}

		// Acquisitions reached through synchronous calls.
		for _, cs := range fi.Calls {
			if cs.Go || len(cs.Held) == 0 {
				continue
			}
			for _, callee := range cs.Callees {
				for c, w := range info.TransAcquires(callee) {
					path := info.PathString(callee, c)
					for _, h := range cs.Held {
						if h.Class == c {
							if h.Read && w.Read {
								continue // nested read holds: reentrant by lattice convention
							}
							pass.Reportf(cs.Pos, "%s: call with %s held reacquires it via %s (acquired at %s): self-deadlock",
								owner, c.Name, path, info.Position(w.Pos))
							continue
						}
						addEdge(orderEdge{
							from: h.Class, to: c, node: n.Pkg, owner: owner,
							fromPos: h.Pos, toPos: cs.Pos, viaPath: path,
						})
					}
				}
			}
		}
	}

	// Deterministic edge order for rank checks and cycle reports.
	ordered := make([]orderEdge, 0, len(edges))
	for _, e := range edges {
		ordered = append(ordered, e)
	}
	sort.Slice(ordered, func(a, b int) bool {
		if ordered[a].from.Name != ordered[b].from.Name {
			return ordered[a].from.Name < ordered[b].from.Name
		}
		return ordered[a].to.Name < ordered[b].to.Name
	})

	// Declared-rank inversions: within one hierarchy, levels must
	// strictly increase along every edge.
	for _, e := range ordered {
		rf, okF := ranks[e.from]
		rt, okT := ranks[e.to]
		if !okF || !okT || rf.hierarchy != rt.hierarchy {
			continue
		}
		if rf.level >= rt.level {
			pass.Reportf(e.toPos, "%s: acquires %s (hierarchy %s level %d) while holding %s (level %d); declared lock ranks require strictly increasing levels%s",
				e.owner, e.to.Name, rt.hierarchy, rt.level, e.from.Name, rf.level, viaSuffix(e))
		}
	}

	reportCycles(pass, info, ordered)
	return nil
}

// viaSuffix renders the interprocedural hop of an edge witness.
func viaSuffix(e orderEdge) string {
	if e.viaPath == "" {
		return ""
	}
	return fmt.Sprintf(" (via %s)", e.viaPath)
}

// reportCycles finds strongly connected components of the order graph
// and reports each once, at the lexically first witness, with every
// edge of the cycle spelled out.
func reportCycles(pass *analysis.ModulePass, info *concurrency.Info, edges []orderEdge) {
	// Adjacency over classes.
	adj := make(map[*concurrency.Class][]*concurrency.Class)
	classes := make(map[*concurrency.Class]bool)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
		classes[e.from], classes[e.to] = true, true
	}
	ordered := make([]*concurrency.Class, 0, len(classes))
	for c := range classes {
		ordered = append(ordered, c)
	}
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].Name < ordered[b].Name })

	// Iterative Tarjan over the class graph.
	index := make(map[*concurrency.Class]int)
	low := make(map[*concurrency.Class]int)
	onStack := make(map[*concurrency.Class]bool)
	var stack []*concurrency.Class
	var comps [][]*concurrency.Class
	next := 0
	var strong func(c *concurrency.Class)
	strong = func(c *concurrency.Class) {
		index[c] = next
		low[c] = next
		next++
		stack = append(stack, c)
		onStack[c] = true
		for _, d := range adj[c] {
			if _, seen := index[d]; !seen {
				strong(d)
				if low[d] < low[c] {
					low[c] = low[d]
				}
			} else if onStack[d] && index[d] < low[c] {
				low[c] = index[d]
			}
		}
		if low[c] == index[c] {
			var comp []*concurrency.Class
			for {
				d := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[d] = false
				comp = append(comp, d)
				if d == c {
					break
				}
			}
			comps = append(comps, comp)
		}
	}
	for _, c := range ordered {
		if _, seen := index[c]; !seen {
			strong(c)
		}
	}

	for _, comp := range comps {
		if len(comp) < 2 {
			continue // self-reacquisition is reported separately
		}
		inComp := make(map[*concurrency.Class]bool, len(comp))
		for _, c := range comp {
			inComp[c] = true
		}
		// Every edge internal to the component participates in the
		// deadlock; spell each out with its witness. The report anchors
		// on the first edge in the (name-sorted) edge order, which is
		// deterministic across runs and load orders.
		var parts []string
		reportAt := token.NoPos
		for _, e := range edges {
			if !inComp[e.from] || !inComp[e.to] {
				continue
			}
			part := fmt.Sprintf("%s then %s in %s at %s%s",
				e.from.Name, e.to.Name, e.owner, info.Position(e.toPos), viaSuffix(e))
			parts = append(parts, part)
			if !reportAt.IsValid() {
				reportAt = e.toPos
			}
		}
		names := make([]string, len(comp))
		for i, c := range comp {
			names[i] = c.Name
		}
		sort.Strings(names)
		pass.Reportf(reportAt, "lock-order cycle among %s: %s; concurrent goroutines taking these paths deadlock",
			join(names, ", "), join(parts, "; "))
	}
}

// join concatenates with the given separator; findings stay one line.
func join(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}

// collectRanks scans every target file for //noisevet:lockrank
// directives, binds each to the lock variable it documents, and
// reports the ones that bind to nothing.
func collectRanks(pass *analysis.ModulePass, info *concurrency.Info) map[*concurrency.Class]rank {
	ranks := make(map[*concurrency.Class]rank)
	for _, pkg := range pass.Module.Pkgs {
		if !pkg.Target {
			continue
		}
		for _, file := range pkg.Files {
			// Attachment points: struct field docs/line comments and
			// package-level var docs/line comments.
			attach := make(map[*ast.Comment][]*ast.Ident)
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				switch gd.Tok {
				case token.VAR:
					for _, spec := range gd.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, grp := range []*ast.CommentGroup{gd.Doc, vs.Doc, vs.Comment} {
							if grp == nil {
								continue
							}
							for _, c := range grp.List {
								attach[c] = vs.Names
							}
						}
					}
				case token.TYPE:
					for _, spec := range gd.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						st, ok := ts.Type.(*ast.StructType)
						if !ok || st.Fields == nil {
							continue
						}
						for _, field := range st.Fields.List {
							for _, grp := range []*ast.CommentGroup{field.Doc, field.Comment} {
								if grp == nil {
									continue
								}
								for _, c := range grp.List {
									attach[c] = field.Names
								}
							}
						}
					}
				}
			}

			for _, group := range file.Comments {
				for _, c := range group.List {
					d, err := directive.Parse(c.Text)
					if err != nil || d == nil || d.Name != directive.Lockrank {
						continue // grammar errors are hotpath's findings
					}
					names := attach[c]
					bound := false
					for _, id := range names {
						v, ok := pkg.Info.Defs[id].(*types.Var)
						if !ok || !isLockType(v.Type()) {
							continue
						}
						bound = true
						cls := info.ClassByObj(v, classDisplay(pkg, file, v, id))
						if prev, dup := ranks[cls]; dup {
							pass.Reportf(c.Slash, "duplicate //noisevet:lockrank for %s (first declared at %s)",
								cls.Name, info.Position(prev.pos))
							continue
						}
						ranks[cls] = rank{hierarchy: d.Hierarchy, level: d.Level, pos: c.Slash}
					}
					if !bound {
						pass.Reportf(c.Slash, "//noisevet:lockrank must document a sync.Mutex, sync.RWMutex, or sync.Once field or package-level variable")
					}
				}
			}
		}
	}
	return ranks
}

// isLockType reports whether t (possibly behind pointers, slices, or
// arrays) is one of the sync lock types the analyzer tracks.
func isLockType(t types.Type) bool {
	for {
		switch tt := t.Underlying().(type) {
		case *types.Pointer:
			t = tt.Elem()
			continue
		case *types.Slice:
			t = tt.Elem()
			continue
		case *types.Array:
			t = tt.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex", "Once":
		return true
	}
	return false
}

// classDisplay renders the canonical display name of an annotated lock
// at its declaration: "pkg.Type.field" for fields, "pkg.var" at
// package scope — matching what use sites intern.
func classDisplay(pkg *analysis.Package, file *ast.File, v *types.Var, id *ast.Ident) string {
	short := pkg.PkgPath
	if i := lastSlash(short); i >= 0 {
		short = short[i+1:]
	}
	if !v.IsField() {
		return short + "." + v.Name()
	}
	// Find the enclosing type declaration of the field.
	var owner string
	ast.Inspect(file, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok || owner != "" {
			return owner == ""
		}
		if ts.Pos() <= id.Pos() && id.Pos() < ts.End() {
			owner = ts.Name.Name
			return false
		}
		return true
	})
	if owner == "" {
		return short + "." + v.Name()
	}
	return short + "." + owner + "." + v.Name()
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}
