// Package noisevet assembles the production configuration of the
// analysis suite: which analyzers run, over which packages, with which
// allowlists. cmd/noisevet and the tests both consume this registry so
// CI and local runs can never drift apart.
package noisevet

import (
	"fmt"
	"sort"
	"strings"

	"osnoise/internal/analysis"
	"osnoise/internal/analysis/atomicfield"
	"osnoise/internal/analysis/chanlive"
	"osnoise/internal/analysis/ctxflow"
	"osnoise/internal/analysis/determinism"
	"osnoise/internal/analysis/doccomment"
	"osnoise/internal/analysis/eventpair"
	"osnoise/internal/analysis/exhaustive"
	"osnoise/internal/analysis/goroleak"
	"osnoise/internal/analysis/hotpath"
	"osnoise/internal/analysis/lockbalance"
	"osnoise/internal/analysis/lockorder"
	"osnoise/internal/analysis/locksets"
	"osnoise/internal/analysis/timeunits"
	"osnoise/internal/analysis/writecheck"
)

// DeterminismConfig scopes the determinism analyzer to the simulation
// core. internal/ftq is included because its simulated FTQ must be
// deterministic, but native.go — the on-host FTQ runner whose whole
// point is reading the machine's real clock — is file-exempt, and cmd/
// binaries may talk wall-clock time to the user.
var DeterminismConfig = determinism.Config{
	Packages: []string{
		"osnoise/internal/sim",
		"osnoise/internal/kernel",
		"osnoise/internal/workload",
		"osnoise/internal/cluster",
		"osnoise/internal/ftq",
	},
	ExemptPackages: []string{"osnoise/cmd"},
	ExemptFiles:    []string{"internal/ftq/native.go"},
}

// EnumTypes are the dispatch enums every switch must handle totally.
var EnumTypes = []string{
	"osnoise/internal/trace.ID",
	"osnoise/internal/trace.ProcKind",
	"osnoise/internal/noise.Key",
	"osnoise/internal/noise.Category",
	"osnoise/internal/kernel.TaskKind",
	"osnoise/internal/kernel.TaskState",
	"osnoise/internal/inject.Kind",
	"osnoise/internal/workload.Phase",
}

// TimeUnitsConfig targets the virtual-time type. sim.Duration is an
// alias of sim.Time, so one entry covers both spellings. The named
// conversion helpers are the two places allowed to mix units: String
// renders against the unit ladder, and Scale is the blessed
// duration×count multiplier everything else routes through.
var TimeUnitsConfig = timeunits.Config{
	Types: []string{"osnoise/internal/sim.Time"},
	ExemptFuncs: []string{
		"osnoise/internal/sim.Time.String",
		"osnoise/internal/sim.Scale",
	},
}

// EventPairConfig scopes the eventpair analyzer to the packages that
// emit span tracepoints. The pairs mirror trace.ID.ExitFor: any
// emission of an entry identifier must be closed by its exit on every
// non-panicking path (or handed off together with it, as CPU.push
// does).
var EventPairConfig = eventpair.Config{
	Packages: []string{
		"osnoise/internal/kernel",
		"osnoise/internal/sim",
	},
	IDType: "osnoise/internal/trace.ID",
	Pairs: map[string]string{
		"EvIRQEntry":     "EvIRQExit",
		"EvSoftIRQEntry": "EvSoftIRQExit",
		"EvTaskletEntry": "EvTaskletExit",
		"EvTrapEntry":    "EvTrapExit",
		"EvSyscallEntry": "EvSyscallExit",
		"EvSchedEntry":   "EvSchedExit",
	},
}

// DocCommentConfig scopes the doc-lint to the packages whose godoc is
// the reference documentation for the paper reproduction: the trace
// format, the analyzer, the simulation clock, the statistics kit, and
// the cluster model. Other packages document themselves at whatever
// density their maintainers like; these five fail CI when an exported
// identifier lacks a doc comment.
var DocCommentConfig = doccomment.Config{
	Packages: []string{
		"osnoise/internal/trace",
		"osnoise/internal/noise",
		"osnoise/internal/sim",
		"osnoise/internal/stats",
		"osnoise/internal/cluster",
		"osnoise/internal/daemon",
	},
}

// GoroleakConfig scopes the goroutine-leak analyzer to the packages
// bound by the resilience contract (docs/ARCHITECTURE.md §5): their
// parallel entry points promise to leak zero goroutines under
// cancellation, so every worker they spawn must be joined on all paths
// or bounded by a done/cancel receive.
var GoroleakConfig = goroleak.Config{
	Packages: []string{
		"osnoise/internal/noise",
		"osnoise/internal/trace",
		"osnoise/internal/cluster",
		"osnoise/internal/daemon",
	},
}

// LockBalanceConfig applies lock balancing everywhere: a mutex leaked
// on any path is a bug no matter which package holds it.
var LockBalanceConfig = lockbalance.Config{}

// WriteCheckConfig applies write-path Close checking everywhere the
// suite runs; exporters live in cmd/ but helpers could move.
var WriteCheckConfig = writecheck.Config{}

// CtxFlowConfig names the cancellable entry points (the functions
// docs/ARCHITECTURE.md §5 promises are prompt under cancellation):
// every loop-bearing function they reach that holds a context must
// observe it. Roots are node names in callgraph.FuncName form; a name
// that does not resolve is skipped, so a rename shows up as the
// self-validation test failing, not a silently narrower analysis.
var CtxFlowConfig = ctxflow.Config{
	Roots: []string{
		"osnoise/internal/noise.AnalyzeParallel",
		"osnoise/internal/noise.AnalyzeStream",
		"osnoise/internal/noise.AnalyzeRaw",
		"osnoise/internal/trace.ReadParallel",
		"osnoise/internal/cluster.Run",
	},
}

// ChanLiveConfig scopes channel-lifecycle checking to the packages
// whose channels carry measurement data or shutdown signals: the
// analyzer pipeline, the trace reader, and the cluster/MPI
// simulation. Channels made elsewhere (tests, cmd helpers) follow
// whatever local conventions suit them.
var ChanLiveConfig = chanlive.Config{
	Packages: []string{
		"osnoise/internal/noise",
		"osnoise/internal/trace",
		"osnoise/internal/cluster",
		"osnoise/internal/mpi",
		"osnoise/internal/daemon",
	},
}

// LockOrderConfig applies the module-wide lock-acquisition-order
// check everywhere: a deadlock cycle is a bug no matter which
// packages its edges span. Hierarchies are declared in source with
// //noisevet:lockrank comments on the mutex declarations.
var LockOrderConfig = lockorder.Config{}

// LocksetsConfig applies the static race check everywhere goroutines
// are spawned; its shared-location rules (package vars and captured
// locals only) keep it precise without per-package scoping.
var LocksetsConfig = locksets.Config{}

// SuiteOptions selects cross-cutting suite behaviors the CLI exposes
// as flags.
type SuiteOptions struct {
	// StaleIgnore makes the suite report suppression directives that
	// suppress nothing: //noisevet:ignore comments matching no finding
	// (via the checker) and //noisevet:coldpath barriers no hot path
	// reaches (via the hotpath analyzer).
	StaleIgnore bool
}

// Suite returns the production analyzers in reporting order,
// configured per opts. The module-wide analyzers (hotpath, ctxflow,
// lockorder, chanlive, locksets) run last: they share one cached
// repo-wide call graph — and the three concurrency analyzers one
// lockset substrate — built after every package has been
// type-checked.
func Suite(opts SuiteOptions) []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.New(DeterminismConfig),
		exhaustive.New(EnumTypes),
		atomicfield.New(),
		timeunits.New(TimeUnitsConfig),
		eventpair.New(EventPairConfig),
		doccomment.New(DocCommentConfig),
		lockbalance.New(LockBalanceConfig),
		goroleak.New(GoroleakConfig),
		writecheck.New(WriteCheckConfig),
		hotpath.New(hotpath.Config{StaleColdpath: opts.StaleIgnore}),
		ctxflow.New(CtxFlowConfig),
		lockorder.New(LockOrderConfig),
		chanlive.New(ChanLiveConfig),
		locksets.New(LocksetsConfig),
	}
}

// Analyzers returns the default production suite.
func Analyzers() []*analysis.Analyzer {
	return Suite(SuiteOptions{})
}

// Select filters analyzers to the comma-separated names in only (the
// -only flag). An empty selector returns the list unchanged. Unknown
// names produce an error whose message tabulates every valid name, so
// a typo on the command line is self-correcting.
func Select(analyzers []*analysis.Analyzer, only string) ([]*analysis.Analyzer, error) {
	if strings.TrimSpace(only) == "" {
		return analyzers, nil
	}
	keep := make(map[string]bool)
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name != "" {
			keep[name] = true
		}
	}
	var filtered []*analysis.Analyzer
	for _, a := range analyzers {
		if keep[a.Name] {
			filtered = append(filtered, a)
			delete(keep, a.Name)
		}
	}
	if len(keep) > 0 {
		unknown := make([]string, 0, len(keep))
		for name := range keep {
			unknown = append(unknown, name)
		}
		sort.Strings(unknown)
		var table strings.Builder
		for _, a := range analyzers {
			fmt.Fprintf(&table, "  %-12s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return nil, fmt.Errorf("unknown analyzer(s) in -only: %s\nvalid analyzers:\n%s",
			strings.Join(unknown, ", "), strings.TrimRight(table.String(), "\n"))
	}
	if len(filtered) == 0 {
		return nil, fmt.Errorf("-only %q selects no analyzers", only)
	}
	return filtered, nil
}
