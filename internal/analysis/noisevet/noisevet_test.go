package noisevet

import (
	"strings"
	"testing"
)

// suiteNames is the frozen reporting order of the production suite.
// Growing the suite means extending this list — consciously.
var suiteNames = []string{
	"determinism", "exhaustive", "atomicfield", "timeunits",
	"eventpair", "doccomment", "lockbalance", "goroleak",
	"writecheck", "hotpath", "ctxflow",
	"lockorder", "chanlive", "locksets",
}

func TestSuiteRegistry(t *testing.T) {
	suite := Suite(SuiteOptions{})
	if len(suite) != len(suiteNames) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(suiteNames))
	}
	seen := make(map[string]bool)
	for i, a := range suite {
		if a.Name != suiteNames[i] {
			t.Errorf("suite[%d] = %q, want %q", i, a.Name, suiteNames[i])
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
	}
}

func TestSelect(t *testing.T) {
	suite := Analyzers()

	t.Run("empty selector returns the full suite", func(t *testing.T) {
		got, err := Select(suite, "  ")
		if err != nil || len(got) != len(suite) {
			t.Fatalf("Select(suite, \"  \") = %d analyzers, err %v; want full suite", len(got), err)
		}
	})

	t.Run("names filter in suite order with spaces tolerated", func(t *testing.T) {
		got, err := Select(suite, " chanlive , lockorder ")
		if err != nil {
			t.Fatalf("Select: %v", err)
		}
		if len(got) != 2 || got[0].Name != "lockorder" || got[1].Name != "chanlive" {
			names := make([]string, len(got))
			for i, a := range got {
				names[i] = a.Name
			}
			t.Fatalf("Select = %v, want [lockorder chanlive] (suite order)", names)
		}
	})

	t.Run("unknown name errors with the valid-analyzer table", func(t *testing.T) {
		_, err := Select(suite, "locksets,chanliv")
		if err == nil {
			t.Fatal("Select accepted unknown analyzer \"chanliv\"")
		}
		msg := err.Error()
		if !strings.Contains(msg, `unknown analyzer(s) in -only: chanliv`) {
			t.Errorf("error does not name the unknown analyzer: %q", msg)
		}
		for _, name := range suiteNames {
			if !strings.Contains(msg, name) {
				t.Errorf("error table is missing valid analyzer %q:\n%s", name, msg)
			}
		}
	})

	t.Run("selector of only separators errors", func(t *testing.T) {
		if _, err := Select(suite, " , ,"); err == nil {
			t.Error("Select accepted a selector with no names")
		}
	})
}
