package exhaustive_test

import (
	"testing"

	"osnoise/internal/analysis/analysistest"
	"osnoise/internal/analysis/exhaustive"
)

// TestExhaustive runs the analyzer configured for enums.EventType over
// the fixture. The fixture doubles as the negative proof: switches that
// are total, carry a default, skip only sentinels, or dispatch on the
// unconfigured enums.Mode / plain int carry no want comment, so any
// diagnostic on them fails the test.
func TestExhaustive(t *testing.T) {
	a := exhaustive.New([]string{"enums.EventType"})
	analysistest.Run(t, "testdata", a, "a")
}
