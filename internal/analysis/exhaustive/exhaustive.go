// Package exhaustive implements the noisevet analyzer that keeps enum
// switches total.
//
// The noise analysis is a pipeline of classifications over small enum
// types: tracepoint IDs, activity keys, noise categories, task states.
// When a new kernel event or category is added, every switch that maps
// it onward must be revisited — a switch that silently falls through
// makes the new event vanish from the breakdown without any test
// noticing (the totals still sum; a category is just quietly missing).
//
// The analyzer therefore requires every switch whose tag has one of the
// configured named types to either carry an explicit default clause or
// cover every declared constant of that type. Unexported constants and
// constants whose name starts with "Num" are treated as sentinels (e.g.
// evMax, NumKeys) and are not required.
package exhaustive

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"osnoise/internal/analysis"
)

// New returns an exhaustive-switch analyzer for the given enum types,
// named as "import/path.TypeName".
func New(enumTypes []string) *analysis.Analyzer {
	want := make(map[string]bool, len(enumTypes))
	for _, t := range enumTypes {
		want[t] = true
	}
	a := &analysis.Analyzer{
		Name: "exhaustive",
		Doc: "require switches over trace/noise enum types to cover every constant or declare a default\n\n" +
			"Adding a tracepoint ID or noise category must be a compile-visible event everywhere the\n" +
			"enum is dispatched on, so a new kernel event can never silently fall out of the breakdown.",
	}
	a.Run = func(pass *analysis.Pass) (interface{}, error) {
		pass.Inspect(func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, want, sw)
			return true
		})
		return nil, nil
	}
	return a
}

func checkSwitch(pass *analysis.Pass, want map[string]bool, sw *ast.SwitchStmt) {
	tag := ast.Unparen(sw.Tag)
	named, ok := pass.TypeOf(tag).(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return
	}
	qual := obj.Pkg().Path() + "." + obj.Name()
	if !want[qual] {
		return
	}

	required := enumConstants(named)
	if len(required) == 0 {
		return
	}

	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			return // explicit default: the switch is total by construction
		}
		for _, e := range cc.List {
			if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}

	var missing []string
	for val, name := range required {
		if !covered[val] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	if len(missing) > 6 {
		missing = append(missing[:6], fmt.Sprintf("… (%d more)", len(missing)-6))
	}
	pass.Reportf(sw.Pos(), "switch over %s misses %s and has no default clause", qual, strings.Join(missing, ", "))
}

// enumConstants returns value→name for the exported, non-sentinel
// constants of the named type, declared in the type's own package.
// When several constants share a value, one covering case suffices and
// any of the names satisfies reporting.
func enumConstants(named *types.Named) map[string]string {
	out := make(map[string]string)
	scope := named.Obj().Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if !c.Exported() || strings.HasPrefix(c.Name(), "Num") {
			continue // sentinel: evMax, NumKeys, NumCategories, …
		}
		val := c.Val().ExactString()
		if _, dup := out[val]; !dup {
			out[val] = c.Name()
		}
	}
	return out
}
