// Package enums declares the fixture enum the exhaustive analyzer is
// configured with, mirroring trace.ID / noise.Key: iota constants, an
// unexported sentinel, and a Num-prefixed count.
package enums

// EventType mirrors the shape of trace.ID.
type EventType int

const (
	EvAlpha EventType = iota
	EvBeta
	EvGamma
	evMax // unexported sentinel: never required in switches
)

// NumEventTypes is Num-prefixed: also never required.
const NumEventTypes EventType = evMax

// Mode is an enum the analyzer is NOT configured with.
type Mode int

const (
	ModeA Mode = iota
	ModeB
)
