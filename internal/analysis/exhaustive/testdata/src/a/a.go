// Package a exercises the exhaustive analyzer against the configured
// enums.EventType and the unconfigured enums.Mode.
package a

import "enums"

// total covers every non-sentinel constant: ok.
func total(e enums.EventType) string {
	switch e {
	case enums.EvAlpha:
		return "alpha"
	case enums.EvBeta, enums.EvGamma:
		return "beta-or-gamma"
	}
	return "?"
}

// defaulted misses constants but declares a default: ok.
func defaulted(e enums.EventType) string {
	switch e {
	case enums.EvAlpha:
		return "alpha"
	default:
		return "other"
	}
}

// missing omits EvBeta and EvGamma with no default.
func missing(e enums.EventType) string {
	switch e { // want `switch over enums\.EventType misses EvBeta, EvGamma and has no default clause`
	case enums.EvAlpha:
		return "alpha"
	}
	return "?"
}

// sentinelNotRequired covers the real constants only; evMax and
// NumEventTypes must not be demanded.
func sentinelNotRequired(e enums.EventType) bool {
	switch e {
	case enums.EvAlpha, enums.EvBeta, enums.EvGamma:
		return true
	}
	return false
}

// unconfigured switches over a type outside the configuration: ok even
// though it misses ModeB.
func unconfigured(m enums.Mode) bool {
	switch m {
	case enums.ModeA:
		return true
	}
	return false
}

// untyped switches over a plain int: never in scope.
func untyped(v int) bool {
	switch v {
	case 1:
		return true
	}
	return false
}
