// Package determinism implements the noisevet analyzer that keeps wall
// clocks and ambient randomness out of the simulation core.
//
// The reproduction's headline property — bit-for-bit identical traces
// and reports from the same seed — holds only if every source of time
// and randomness inside the deterministic core is the virtual clock and
// the seeded RNG in internal/sim. The analyzer forbids, inside a
// configured set of package prefixes:
//
//   - calls to wall-clock functions of package time (Now, Since, Sleep,
//     After, AfterFunc, Tick, NewTimer, NewTicker);
//   - any import of math/rand or math/rand/v2, whose global generator
//     (and even seeded streams) bypass the per-entity sim RNG streams;
//   - ranging over a map inside a loop body that emits output (writer
//     methods, fmt printing, trace emission): Go randomizes map
//     iteration order per run, so map order must be sorted away before
//     it can feed bytes that end up in a trace or report.
//
// Files and package subtrees can be exempted: the native FTQ runner
// (internal/ftq/native.go) intentionally reads the host clock — it
// measures the real machine — and cmd/ binaries may talk wall-clock to
// the user.
package determinism

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"osnoise/internal/analysis"
)

// Config scopes the analyzer.
type Config struct {
	// Packages are package-path prefixes under which the rules apply.
	// A pass over a package outside every prefix reports nothing.
	Packages []string

	// ExemptPackages are package-path prefixes carved out of Packages.
	ExemptPackages []string

	// ExemptFiles are slash-separated file-path suffixes (e.g.
	// "internal/ftq/native.go") whose findings are dropped.
	ExemptFiles []string
}

// forbiddenTimeFuncs are package time functions that read or wait on
// the wall clock.
var forbiddenTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// emissionNames are method/function names treated as "emitting" bytes
// that can reach a trace, report, or exported artefact.
var emissionNames = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Print":       true,
	"Printf":      true,
	"Println":     true,
	"Fprint":      true,
	"Fprintf":     true,
	"Fprintln":    true,
	"Emit":        true,
	"Record":      true,
	"Export":      true,
}

// New returns a determinism analyzer with the given scope.
func New(cfg Config) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "determinism",
		Doc: "forbid wall-clock time, math/rand, and map-order-dependent emission in the deterministic core\n\n" +
			"The simulation core must be bit-for-bit reproducible from a seed: time comes from the\n" +
			"virtual clock, randomness from seeded sim RNG streams, and anything written to traces\n" +
			"or reports must not depend on Go's randomized map iteration order.",
	}
	a.Run = func(pass *analysis.Pass) (interface{}, error) {
		run(cfg, pass)
		return nil, nil
	}
	return a
}

func run(cfg Config, pass *analysis.Pass) {
	path := pass.Pkg.Path()
	if !matchAny(cfg.Packages, path) || matchAny(cfg.ExemptPackages, path) {
		return
	}
	for _, file := range pass.Files {
		name := filepath.ToSlash(pass.Fset.Position(file.Package).Filename)
		if fileExempt(cfg.ExemptFiles, name) {
			continue
		}
		checkFile(pass, file)
	}
}

func checkFile(pass *analysis.Pass, file *ast.File) {
	for _, imp := range file.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p == "math/rand" || p == "math/rand/v2" {
			pass.Reportf(imp.Pos(), "import of %s in deterministic core: use the seeded streams in internal/sim (RNG.Split) instead", p)
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if fn, ok := pass.TypesInfo.Uses[n.Sel].(*types.Func); ok {
				if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "time" && forbiddenTimeFuncs[fn.Name()] {
					pass.Reportf(n.Pos(), "call to time.%s in deterministic core: virtual time must come from the sim clock", fn.Name())
				}
			}
		case *ast.RangeStmt:
			checkMapRange(pass, n)
		}
		return true
	})
}

// checkMapRange flags `for ... range m` over a map whose body emits.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	var culprit string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if culprit != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if emissionNames[fun.Sel.Name] {
				culprit = fun.Sel.Name
			}
		case *ast.Ident:
			if emissionNames[fun.Name] {
				culprit = fun.Name
			}
		}
		return true
	})
	if culprit != "" {
		pass.Reportf(rng.Pos(), "map iteration order feeds emission (call to %s): iterate sorted keys so output is deterministic", culprit)
	}
}

func matchAny(prefixes []string, path string) bool {
	for _, p := range prefixes {
		if analysis.PathPrefixMatch(p, path) {
			return true
		}
	}
	return false
}

func fileExempt(suffixes []string, file string) bool {
	for _, s := range suffixes {
		if strings.HasSuffix(file, s) {
			return true
		}
	}
	return false
}
