// Package tool is on the package allowlist (cmd/): binaries may read
// the wall clock to talk to the user. Nothing here is reported.
package tool

import (
	"fmt"
	"io"
	"math/rand"
	"time"
)

func banner(w io.Writer, m map[string]string) {
	fmt.Fprintf(w, "started %s %d\n", time.Now(), rand.Int())
	for k, v := range m {
		fmt.Fprintf(w, "%s=%s\n", k, v)
	}
}
