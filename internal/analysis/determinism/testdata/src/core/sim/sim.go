// Package sim is a determinism fixture standing in for the simulation
// core: every construct here is inside the configured package prefix.
package sim

import (
	"fmt"
	"io"
	"math/rand" // want `import of math/rand in deterministic core`
	"sort"
	"time"
)

// Clock models the virtual clock violations route through.
type Clock struct{ now int64 }

func wallClock() int64 {
	t := time.Now() // want `call to time\.Now in deterministic core`
	return t.UnixNano()
}

func elapsed(start time.Time) time.Duration {
	time.Sleep(1)            // want `call to time\.Sleep in deterministic core`
	return time.Since(start) // want `call to time\.Since in deterministic core`
}

func globalRand() int {
	return rand.Int()
}

// virtualOK uses only the fixture clock: no finding.
func virtualOK(c *Clock) int64 { return c.now }

// emitUnsorted ranges a map straight into the writer: the emitted byte
// order depends on Go's randomized map order.
func emitUnsorted(w io.Writer, m map[string]int) {
	for k, v := range m { // want `map iteration order feeds emission \(call to Fprintf\)`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// emitSorted sorts the keys first; ranging the slice is deterministic
// and reports nothing.
func emitSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// tallyOnly ranges a map without emitting: accumulation into another
// map is order-independent, no finding.
func tallyOnly(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
