// Package ftq is a determinism fixture: the simulated FTQ half of the
// package is inside the deterministic core and is checked…
package ftq

import "time"

func simQuantum() int64 {
	return time.Now().UnixNano() // want `call to time\.Now in deterministic core`
}
