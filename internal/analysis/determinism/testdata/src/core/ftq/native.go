// …while native.go is on the file allowlist: it intentionally measures
// the host's real clock, so identical constructs report nothing.
package ftq

import (
	"math/rand"
	"time"
)

func nativeQuantum() int64 {
	start := time.Now()
	for time.Since(start) < time.Microsecond {
	}
	return start.UnixNano() + int64(rand.Int())
}
