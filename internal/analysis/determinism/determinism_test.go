package determinism_test

import (
	"testing"

	"osnoise/internal/analysis/analysistest"
	"osnoise/internal/analysis/determinism"
)

// testConfig mirrors the production scoping against the fixture tree:
// "core/..." is the deterministic core, cmd/ and core/ftq/native.go
// are allowlisted.
var testConfig = determinism.Config{
	Packages:       []string{"core"},
	ExemptPackages: []string{"cmd"},
	ExemptFiles:    []string{"core/ftq/native.go"},
}

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.New(testConfig), "core/sim")
}

// TestFileAllowlist proves core/ftq is checked (ftq.go has a finding)
// while native.go in the same package suppresses identical constructs.
func TestFileAllowlist(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.New(testConfig), "core/ftq")
}

// TestPackageAllowlist proves cmd/ packages report nothing even with
// wall-clock, global-rand, and unsorted-emission constructs present.
func TestPackageAllowlist(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.New(testConfig), "cmd/tool")
}

// TestOutsideScope proves packages outside every configured prefix are
// ignored entirely: the same violating fixture reports nothing when the
// analyzer is scoped elsewhere.
func TestOutsideScope(t *testing.T) {
	cfg := determinism.Config{Packages: []string{"somewhere/else"}}
	// Re-using the cmd/tool fixture (full of would-be violations, no
	// want comments) under a config whose prefix does not match it.
	analysistest.Run(t, "testdata", determinism.New(cfg), "cmd/tool")
}
