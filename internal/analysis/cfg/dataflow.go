package cfg

// Fact is an analyzer-defined dataflow fact. Facts are treated as
// immutable by the framework: Transfer must return a fresh value (or
// the unchanged input) rather than mutate its argument, and a nil Fact
// means "unknown / not yet computed" (the lattice bottom), never a
// legitimate analyzer state.
type Fact interface{}

// Problem defines one forward dataflow analysis: the fact at function
// entry, the join at control-flow merges, equality (for the fixpoint
// test), and the per-block transfer function.
type Problem interface {
	// Entry returns the fact holding at function entry.
	Entry() Fact

	// Join merges the facts of two predecessors. Both arguments are
	// non-nil; Join must be commutative, associative and idempotent or
	// the worklist will not converge.
	Join(a, b Fact) Fact

	// Equal reports whether two non-nil facts are the same lattice
	// element.
	Equal(a, b Fact) bool

	// Transfer computes the fact after executing block b with fact in
	// holding on entry to the block.
	Transfer(b *Block, in Fact) Fact
}

// Result holds the fixpoint: the fact on entry to and exit from every
// reachable block. Blocks never reached (a dead Exit in a function
// that cannot return) have nil entries.
type Result struct {
	In  map[*Block]Fact
	Out map[*Block]Fact
}

// Forward runs p over g to fixpoint with a reverse-post-order worklist
// and returns the per-block facts.
func Forward(g *Graph, p Problem) *Result {
	order := postorder(g)
	// Reverse postorder: process dominators before dominated blocks so
	// most functions converge in one pass.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	res := &Result{
		In:  make(map[*Block]Fact, len(g.Blocks)),
		Out: make(map[*Block]Fact, len(g.Blocks)),
	}
	inWork := make(map[*Block]bool, len(order))
	work := make([]*Block, len(order))
	copy(work, order)
	for _, blk := range order {
		inWork[blk] = true
	}

	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		inWork[blk] = false

		var in Fact
		if blk == g.Entry {
			in = p.Entry()
		}
		for _, pred := range blk.Preds {
			out := res.Out[pred]
			if out == nil {
				continue
			}
			if in == nil {
				in = out
			} else {
				in = p.Join(in, out)
			}
		}
		if in == nil {
			continue // no predecessor has produced a fact yet
		}
		res.In[blk] = in
		out := p.Transfer(blk, in)
		old := res.Out[blk]
		if old != nil && p.Equal(old, out) {
			continue
		}
		res.Out[blk] = out
		for _, s := range blk.Succs {
			if !inWork[s] {
				inWork[s] = true
				work = append(work, s)
			}
		}
	}
	return res
}

// postorder returns the blocks reachable from Entry in DFS postorder.
func postorder(g *Graph) []*Block {
	seen := make(map[*Block]bool, len(g.Blocks))
	var order []*Block
	var visit func(*Block)
	visit = func(blk *Block) {
		seen[blk] = true
		for _, s := range blk.Succs {
			if !seen[s] {
				visit(s)
			}
		}
		order = append(order, blk)
	}
	visit(g.Entry)
	return order
}
