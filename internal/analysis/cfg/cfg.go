// Package cfg builds intra-procedural control-flow graphs over go/ast
// function bodies and provides a small forward-dataflow framework on
// top of them. It mirrors golang.org/x/tools/go/cfg in spirit — the
// build environment is offline, so x/tools cannot be pinned — but is
// sized for the noisevet analyzers: purely syntactic (no type
// information required to build a graph), with two extensions the
// path-sensitive checks need and x/tools leaves to the client:
//
//   - Defer modeling. A `defer f()` statement spawns a synthetic block
//     of KindDefer holding the deferred call. Defer blocks are chained
//     in reverse registration order and every function-exit edge
//     (explicit return or falling off the end of the body) routes
//     through the chain registered so far before reaching Exit. A
//     `mu.Lock(); defer mu.Unlock()` pair therefore balances on every
//     return path without analyzer-side special cases. Registration is
//     tracked in source-walk order, so a defer registered inside a
//     conditional is approximated as registered on every path that
//     reaches statements after it — precise for the dominant pattern
//     (unconditional defer immediately after acquire/open).
//
//   - Panic and no-return edges. A statement that cannot complete
//     normally — `panic(...)`, `os.Exit`, `log.Fatal*`, `t.Fatal*`,
//     `runtime.Goexit` (syntactic heuristic, overridable via the
//     mayReturn callback exactly as in x/tools) — terminates its block
//     with no successors and marks it NoReturn. Analyzers exempt such
//     paths: an unreleased lock or unmatched tracepoint on the way to a
//     panic is not a leak the offline analysis will ever observe.
//
// Unreachable blocks are pruned after construction, so every block in
// Graph.Blocks except a dead Exit is reachable from Entry — the
// structural invariant TestCFGRepositorySelfCheck asserts over every
// function declaration in this repository.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// BlockKind classifies a block for debugging and for analyzers that
// treat defer execution specially.
type BlockKind uint8

const (
	// KindBody is an ordinary straight-line block.
	KindBody BlockKind = iota
	// KindEntry is the function entry block (always Blocks[0]).
	KindEntry
	// KindExit is the single function exit block. Every non-panicking
	// path ends here, after the registered defer chain.
	KindExit
	// KindDefer is a synthetic block holding one deferred call,
	// executed on the way to Exit in reverse registration order.
	KindDefer
)

func (k BlockKind) String() string {
	switch k {
	case KindBody:
		return "body"
	case KindEntry:
		return "entry"
	case KindExit:
		return "exit"
	case KindDefer:
		return "defer"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Block is one basic block: statements and control expressions that
// execute without internal branching, in execution order.
type Block struct {
	Index int
	Kind  BlockKind

	// Nodes holds the block's statements plus the control expressions
	// evaluated in it (an if/switch condition, a range operand). A
	// defer registration appears as the *ast.DeferStmt at its source
	// position; the deferred call itself lives in a KindDefer block on
	// the exit path.
	Nodes []ast.Node

	Succs []*Block
	Preds []*Block

	// NoReturn marks a block whose terminator leaves the function
	// without reaching Exit: an explicit panic, os.Exit, log.Fatal and
	// friends, or a blocking `select {}`.
	NoReturn bool

	comment string // construction note ("if.then", "for.head", …) for dumps
}

// Graph is the CFG of one function body.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block // Entry first; Exit always present, even if unreachable
}

// New builds the CFG of a function body. mayReturn reports whether a
// call can return to its caller; nil selects a syntactic default that
// treats panic, os.Exit, runtime.Goexit, log.Fatal/Fatalf/Fatalln and
// testing's Fatal/Fatalf/FailNow/Skip* as no-return.
func New(body *ast.BlockStmt, mayReturn func(*ast.CallExpr) bool) *Graph {
	if mayReturn == nil {
		mayReturn = defaultMayReturn
	}
	b := &builder{
		g:         &Graph{},
		mayReturn: mayReturn,
		labels:    make(map[string]*labelInfo),
	}
	b.g.Entry = b.newBlock(KindEntry, "entry")
	b.g.Exit = b.newBlock(KindExit, "exit")
	b.cur = b.g.Entry
	b.stmtList(body.List)
	b.exitJump() // falling off the end of the body
	b.prune()
	return b.g
}

// defaultMayReturn is the syntactic no-return heuristic, mirroring
// x/tools/go/cfg's: a call spelled panic(...), X.Exit(...),
// X.Fatal*(...), X.Goexit(), X.FailNow(), or X.Skip*(...) does not
// return. False negatives only make the graph conservative (extra
// edges), never unsound for the analyzers built on it.
func defaultMayReturn(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name != "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Exit", "Fatal", "Fatalf", "Fatalln", "Goexit", "FailNow", "Skip", "SkipNow", "Skipf":
			return false
		}
	}
	return true
}

type labelInfo struct {
	block *Block // where the labeled statement begins (goto target)
	brk   *Block // break-with-label target (labeled loop/switch/select)
	cont  *Block // continue-with-label target (labeled loop)
}

// targets is the stack of enclosing break/continue destinations.
type targets struct {
	up   *targets
	brk  *Block
	cont *Block // nil inside switch/select
}

type builder struct {
	g         *Graph
	cur       *Block
	deferHead *Block // innermost registered defer block; nil = exit directly
	mayReturn func(*ast.CallExpr) bool
	targets   *targets
	labels    map[string]*labelInfo
	fall      *Block // fallthrough target inside a switch case
}

func (b *builder) newBlock(kind BlockKind, comment string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind, comment: comment}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// jump adds an edge cur→to.
func (b *builder) jump(to *Block) {
	b.cur.Succs = append(b.cur.Succs, to)
	to.Preds = append(to.Preds, b.cur)
}

// startDead begins a fresh block with no predecessors, entered after a
// terminator; if nothing jumps to it later it is pruned.
func (b *builder) startDead(comment string) {
	b.cur = b.newBlock(KindBody, comment)
}

// exitJump routes control to the registered defer chain, then Exit.
func (b *builder) exitJump() {
	if b.deferHead != nil {
		b.jump(b.deferHead)
	} else {
		b.jump(b.g.Exit)
	}
}

func (b *builder) labelInfo(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{block: b.newBlock(KindBody, "label."+name)}
		b.labels[name] = li
	}
	return li
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s, nil)

	case *ast.RangeStmt:
		b.rangeStmt(s, nil)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, nil, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body, nil, false)

	case *ast.SelectStmt:
		b.selectStmt(s, nil)

	case *ast.LabeledStmt:
		b.labeledStmt(s)

	case *ast.ReturnStmt:
		b.add(s)
		b.exitJump()
		b.startDead("return.dead")

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.DeferStmt:
		// Registration marker in normal flow; the call executes in a
		// synthetic block spliced onto the exit path, LIFO.
		b.add(s)
		db := b.newBlock(KindDefer, "defer")
		db.Nodes = []ast.Node{s.Call}
		prev := b.deferHead
		if prev == nil {
			prev = b.g.Exit
		}
		db.Succs = append(db.Succs, prev)
		prev.Preds = append(prev.Preds, db)
		b.deferHead = db

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && !b.mayReturn(call) {
			b.cur.NoReturn = true
			b.startDead("noreturn.dead")
		}

	case nil, *ast.EmptyStmt, *ast.BadStmt:
		// nothing

	default:
		// DeclStmt, AssignStmt, IncDecStmt, SendStmt, GoStmt, …
		b.add(s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	then := b.newBlock(KindBody, "if.then")
	after := b.newBlock(KindBody, "if.done")
	b.jump(then)
	if s.Else != nil {
		els := b.newBlock(KindBody, "if.else")
		b.jump(els)
		b.cur = then
		b.stmt(s.Body)
		b.jump(after)
		b.cur = els
		b.stmt(s.Else)
		b.jump(after)
	} else {
		b.jump(after)
		b.cur = then
		b.stmt(s.Body)
		b.jump(after)
	}
	b.cur = after
}

func (b *builder) forStmt(s *ast.ForStmt, li *labelInfo) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock(KindBody, "for.head")
	body := b.newBlock(KindBody, "for.body")
	after := b.newBlock(KindBody, "for.done")
	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock(KindBody, "for.post")
		cont = post
	}
	b.jump(head)
	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
		b.jump(after)
	}
	b.jump(body)
	if li != nil {
		li.brk, li.cont = after, cont
	}
	b.targets = &targets{up: b.targets, brk: after, cont: cont}
	b.cur = body
	b.stmt(s.Body)
	b.jump(cont)
	b.targets = b.targets.up
	if post != nil {
		b.cur = post
		b.add(s.Post)
		b.jump(head)
	}
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt, li *labelInfo) {
	head := b.newBlock(KindBody, "range.head")
	body := b.newBlock(KindBody, "range.body")
	after := b.newBlock(KindBody, "range.done")
	b.add(s.X)
	b.jump(head)
	b.cur = head
	b.jump(body)
	b.jump(after)
	if li != nil {
		li.brk, li.cont = after, head
	}
	b.targets = &targets{up: b.targets, brk: after, cont: head}
	b.cur = body
	b.stmt(s.Body)
	b.jump(head)
	b.targets = b.targets.up
	b.cur = after
}

// switchBody builds the clauses of a switch or type switch. For an
// expression switch, fallthrough jumps to the next clause's block;
// case-clause expressions are recorded in their clause's block.
func (b *builder) switchBody(body *ast.BlockStmt, li *labelInfo, allowFallthrough bool) {
	after := b.newBlock(KindBody, "switch.done")
	if li != nil {
		li.brk = after
	}
	entry := b.cur
	var clauses []*ast.CaseClause
	for _, st := range body.List {
		if cc, ok := st.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock(KindBody, "switch.case")
		entry.Succs = append(entry.Succs, blocks[i])
		blocks[i].Preds = append(blocks[i].Preds, entry)
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		entry.Succs = append(entry.Succs, after)
		after.Preds = append(after.Preds, entry)
	}
	b.targets = &targets{up: b.targets, brk: after}
	for i, cc := range clauses {
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		savedFall := b.fall
		if allowFallthrough && i+1 < len(clauses) {
			b.fall = blocks[i+1]
		} else {
			b.fall = nil
		}
		b.stmtList(cc.Body)
		b.fall = savedFall
		b.jump(after)
	}
	b.targets = b.targets.up
	b.cur = after
}

func (b *builder) selectStmt(s *ast.SelectStmt, li *labelInfo) {
	after := b.newBlock(KindBody, "select.done")
	if li != nil {
		li.brk = after
	}
	entry := b.cur
	var clauses []*ast.CommClause
	for _, st := range s.Body.List {
		if cc, ok := st.(*ast.CommClause); ok {
			clauses = append(clauses, cc)
		}
	}
	if len(clauses) == 0 {
		// `select {}` blocks forever.
		entry.NoReturn = true
		b.startDead("select.dead")
		return
	}
	b.targets = &targets{up: b.targets, brk: after}
	for _, cc := range clauses {
		blk := b.newBlock(KindBody, "select.case")
		entry.Succs = append(entry.Succs, blk)
		blk.Preds = append(blk.Preds, entry)
		b.cur = blk
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.jump(after)
	}
	b.targets = b.targets.up
	b.cur = after
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	li := b.labelInfo(s.Label.Name)
	b.jump(li.block)
	b.cur = li.block
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		b.forStmt(inner, li)
	case *ast.RangeStmt:
		b.rangeStmt(inner, li)
	case *ast.SwitchStmt:
		if inner.Init != nil {
			b.add(inner.Init)
		}
		if inner.Tag != nil {
			b.add(inner.Tag)
		}
		b.switchBody(inner.Body, li, true)
	case *ast.TypeSwitchStmt:
		if inner.Init != nil {
			b.add(inner.Init)
		}
		b.add(inner.Assign)
		b.switchBody(inner.Body, li, false)
	case *ast.SelectStmt:
		b.selectStmt(inner, li)
	default:
		b.stmt(s.Stmt)
	}
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	var to *Block
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			to = b.labelInfo(s.Label.Name).brk
		} else {
			for t := b.targets; t != nil; t = t.up {
				if t.brk != nil {
					to = t.brk
					break
				}
			}
		}
	case token.CONTINUE:
		if s.Label != nil {
			to = b.labelInfo(s.Label.Name).cont
		} else {
			for t := b.targets; t != nil; t = t.up {
				if t.cont != nil {
					to = t.cont
					break
				}
			}
		}
	case token.GOTO:
		to = b.labelInfo(s.Label.Name).block
	case token.FALLTHROUGH:
		to = b.fall
	}
	b.add(s)
	if to != nil {
		b.jump(to)
	} else {
		// Malformed code (break outside loop, fallthrough in last
		// clause); treat as a dead end rather than panicking.
		b.cur.NoReturn = true
	}
	b.startDead("branch.dead")
}

// prune drops blocks unreachable from Entry (dead stubs created after
// terminators, defer blocks never reached by a return) and rebuilds
// predecessor lists. Exit stays in Blocks even when unreachable so
// dataflow clients can always ask for its fact.
func (b *builder) prune() {
	g := b.g
	reached := make(map[*Block]bool, len(g.Blocks))
	stack := []*Block{g.Entry}
	reached[g.Entry] = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !reached[s] {
				reached[s] = true
				stack = append(stack, s)
			}
		}
	}
	var kept []*Block
	for _, blk := range g.Blocks {
		if reached[blk] || blk == g.Exit {
			kept = append(kept, blk)
		}
	}
	for _, blk := range kept {
		blk.Preds = blk.Preds[:0]
	}
	for _, blk := range kept {
		if !reached[blk] {
			continue // a dead Exit keeps no stale edges
		}
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	for i, blk := range kept {
		blk.Index = i
	}
	g.Blocks = kept
}

// String renders the graph for debugging and test failure messages.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d[%s", blk.Index, blk.Kind)
		if blk.comment != "" && blk.comment != blk.Kind.String() {
			fmt.Fprintf(&sb, " %s", blk.comment)
		}
		if blk.NoReturn {
			sb.WriteString(" noreturn")
		}
		fmt.Fprintf(&sb, "] %d node(s) →", len(blk.Nodes))
		for _, s := range blk.Succs {
			fmt.Fprintf(&sb, " b%d", s.Index)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
