package cfg

import (
	"go/ast"
	"go/token"
)

// Func is one analyzable function body found in a file: a declared
// function/method or a function literal that is not immediately
// invoked.
type Func struct {
	Name string // "Name", "(T).Method", or "func literal"
	Pos  token.Pos
	Body *ast.BlockStmt
}

// Functions returns every function body in the file that forms its own
// control-flow unit: all FuncDecls with bodies plus every function
// literal except immediately-invoked ones (`func(){…}()`), whose body
// executes inline in the enclosing function and therefore belongs to
// the enclosing CFG — Walk includes such bodies at the call site.
func Functions(file *ast.File) []*Func {
	inline := invokedLiterals(file)
	var out []*Func
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, &Func{Name: declName(n), Pos: n.Pos(), Body: n.Body})
			}
		case *ast.FuncLit:
			if !inline[n] {
				out = append(out, &Func{Name: "func literal", Pos: n.Pos(), Body: n.Body})
			}
		}
		return true
	})
	return out
}

// invokedLiterals collects the function literals under n that appear as
// the called operand of a call expression (immediately-invoked).
func invokedLiterals(n ast.Node) map[*ast.FuncLit]bool {
	inline := make(map[*ast.FuncLit]bool)
	ast.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
				inline[lit] = true
			}
		}
		return true
	})
	return inline
}

func declName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	return "(" + recvString(d.Recv.List[0].Type) + ")." + d.Name.Name
}

func recvString(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.StarExpr:
		return "*" + recvString(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvString(t.X)
	case *ast.IndexListExpr:
		return recvString(t.X)
	default:
		return "?"
	}
}

// Walk calls f for every node under n that executes as part of the
// enclosing function at that point in the flow, skipping:
//
//   - bodies of nested function literals, unless immediately invoked
//     (an IIFE's body runs inline at the call site, so its effects
//     belong to this function) — a skipped literal is still visited
//     itself, as the value expression it is, but not its children;
//   - children of a defer registration marker (*ast.DeferStmt): the
//     deferred call executes in its KindDefer block on the exit path,
//     where it appears as a bare *ast.CallExpr, not at registration.
//     (Arguments of a deferred call are evaluated at registration; the
//     approximation attributes them to the exit path, which is
//     conservative for the effect-tracking analyzers built on this.)
//
// If f returns false the node's children are skipped, as with
// ast.Inspect.
func Walk(n ast.Node, f func(ast.Node) bool) {
	inline := invokedLiterals(n)
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		switch m := m.(type) {
		case *ast.DeferStmt:
			// Always opaque: a KindDefer block stores the bare call, so
			// a DeferStmt here is a registration marker, even as root.
			f(m)
			return false
		case *ast.FuncLit:
			if !inline[m] {
				f(m)
				return false
			}
		}
		return f(m)
	})
}
