package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// build parses src (a full file), finds the function named fn, and
// returns its CFG.
func build(t *testing.T, src, fn string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn && fd.Body != nil {
			return New(fd.Body, nil)
		}
	}
	t.Fatalf("function %q not found", fn)
	return nil
}

// blockCalling returns the first block whose nodes contain a call to
// the named identifier.
func blockCalling(g *Graph, name string) *Block {
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			found := false
			Walk(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
						found = true
					}
				}
				return true
			})
			if found {
				return blk
			}
		}
	}
	return nil
}

// reaches reports whether to is reachable from from along Succs edges.
func reaches(from, to *Block) bool {
	seen := map[*Block]bool{from: true}
	stack := []*Block{from}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if s == to {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

func TestIfElseShape(t *testing.T) {
	g := build(t, `package p
func a(); func b(); func c()
func f(cond bool) {
	if cond {
		a()
	} else {
		b()
	}
	c()
}`, "f")
	ba, bb, bc := blockCalling(g, "a"), blockCalling(g, "b"), blockCalling(g, "c")
	if ba == nil || bb == nil || bc == nil {
		t.Fatalf("missing call blocks:\n%s", g)
	}
	if ba == bb {
		t.Fatalf("branches share a block:\n%s", g)
	}
	if !reaches(ba, bc) || !reaches(bb, bc) {
		t.Fatalf("branches do not merge before c():\n%s", g)
	}
	if reaches(ba, bb) || reaches(bb, ba) {
		t.Fatalf("branches reach each other:\n%s", g)
	}
	if !reaches(g.Entry, g.Exit) {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestEarlyReturnSkipsTail(t *testing.T) {
	g := build(t, `package p
func a(); func b()
func f(cond bool) {
	a()
	if cond {
		return
	}
	b()
}`, "f")
	ba := blockCalling(g, "a")
	// Some path from a() must reach Exit without passing b().
	bb := blockCalling(g, "b")
	if ba == nil || bb == nil {
		t.Fatalf("missing blocks:\n%s", g)
	}
	if !pathAvoiding(ba, g.Exit, bb) {
		t.Fatalf("no return path bypassing b():\n%s", g)
	}
}

// pathAvoiding reports whether to is reachable from from without
// traversing the avoid block.
func pathAvoiding(from, to, avoid *Block) bool {
	seen := map[*Block]bool{from: true, avoid: true}
	stack := []*Block{from}
	if from == avoid {
		return false
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if s == avoid {
				continue
			}
			if s == to {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

func TestDeferChainLIFO(t *testing.T) {
	g := build(t, `package p
func d1(); func d2(); func work()
func f() {
	defer d1()
	defer d2()
	work()
}`, "f")
	b1, b2 := blockCalling(g, "d1"), blockCalling(g, "d2")
	if b1 == nil || b2 == nil {
		t.Fatalf("defer blocks missing:\n%s", g)
	}
	if b1.Kind != KindDefer || b2.Kind != KindDefer {
		t.Fatalf("deferred calls not in defer blocks:\n%s", g)
	}
	// LIFO: exit path is work → d2 → d1 → Exit.
	if !reaches(b2, b1) {
		t.Fatalf("d2 does not run before d1:\n%s", g)
	}
	if reaches(b1, b2) {
		t.Fatalf("defer chain has a cycle:\n%s", g)
	}
	wantExitPred := false
	for _, p := range g.Exit.Preds {
		if p == b1 {
			wantExitPred = true
		}
		if p == b2 {
			t.Fatalf("d2 jumps straight to exit, skipping d1:\n%s", g)
		}
	}
	if !wantExitPred {
		t.Fatalf("d1 is not the last block before exit:\n%s", g)
	}
}

func TestEarlyReturnBeforeDefer(t *testing.T) {
	g := build(t, `package p
func d(); func a()
func f(cond bool) {
	if cond {
		return
	}
	defer d()
	a()
}`, "f")
	bd := blockCalling(g, "d")
	if bd == nil || bd.Kind != KindDefer {
		t.Fatalf("defer block missing:\n%s", g)
	}
	// The early return precedes registration: a path to Exit must
	// exist that avoids the defer block.
	if !pathAvoiding(g.Entry, g.Exit, bd) {
		t.Fatalf("early return forced through later defer:\n%s", g)
	}
	// The late path must run the defer.
	if ba := blockCalling(g, "a"); !reaches(ba, bd) {
		t.Fatalf("fall-off exit skips registered defer:\n%s", g)
	}
}

func TestPanicDeadEnd(t *testing.T) {
	g := build(t, `package p
func a(); func b()
func f(cond bool) {
	a()
	if cond {
		panic("boom")
	}
	b()
}`, "f")
	var panicBlk *Block
	for _, blk := range g.Blocks {
		if blk.NoReturn {
			panicBlk = blk
		}
	}
	if panicBlk == nil {
		t.Fatalf("no NoReturn block:\n%s", g)
	}
	if len(panicBlk.Succs) != 0 {
		t.Fatalf("panic block has successors:\n%s", g)
	}
	if !reaches(blockCalling(g, "a"), g.Exit) {
		t.Fatalf("normal path lost:\n%s", g)
	}
}

func TestForLoopBreakContinue(t *testing.T) {
	g := build(t, `package p
func body(); func after()
func f(n int) {
	for i := 0; i < n; i++ {
		if i == 2 {
			continue
		}
		if i == 3 {
			break
		}
		body()
	}
	after()
}`, "f")
	bb, ba := blockCalling(g, "body"), blockCalling(g, "after")
	if bb == nil || ba == nil {
		t.Fatalf("missing blocks:\n%s", g)
	}
	if !reaches(bb, bb) {
		t.Fatalf("loop body cannot reach itself (back edge missing):\n%s", g)
	}
	if !reaches(bb, ba) {
		t.Fatalf("loop does not exit:\n%s", g)
	}
}

func TestInfiniteLoopExitUnreachable(t *testing.T) {
	g := build(t, `package p
func tick()
func f() {
	for {
		tick()
	}
}`, "f")
	if reaches(g.Entry, g.Exit) {
		t.Fatalf("for{} should not reach exit:\n%s", g)
	}
	// Exit stays in Blocks even when dead.
	found := false
	for _, blk := range g.Blocks {
		if blk == g.Exit {
			found = true
		}
	}
	if !found {
		t.Fatalf("exit pruned:\n%s", g)
	}
}

func TestSwitchFallthroughAndDefault(t *testing.T) {
	g := build(t, `package p
func a(); func b(); func c()
func f(x int) {
	switch x {
	case 1:
		a()
		fallthrough
	case 2:
		b()
	default:
		c()
	}
}`, "f")
	ba, bb, bc := blockCalling(g, "a"), blockCalling(g, "b"), blockCalling(g, "c")
	if ba == nil || bb == nil || bc == nil {
		t.Fatalf("missing case blocks:\n%s", g)
	}
	hasEdge := false
	for _, s := range ba.Succs {
		if s == bb {
			hasEdge = true
		}
	}
	if !hasEdge {
		t.Fatalf("fallthrough edge a→b missing:\n%s", g)
	}
	if reaches(ba, bc) {
		t.Fatalf("fallthrough leaks into default:\n%s", g)
	}
}

func TestSwitchNoDefaultSkipEdge(t *testing.T) {
	g := build(t, `package p
func a(); func after()
func f(x int) {
	switch x {
	case 1:
		a()
	}
	after()
}`, "f")
	ba, bafter := blockCalling(g, "a"), blockCalling(g, "after")
	if !pathAvoiding(g.Entry, bafter, ba) {
		t.Fatalf("switch without default must be skippable:\n%s", g)
	}
}

func TestGotoBackward(t *testing.T) {
	g := build(t, `package p
func step()
func f(n int) {
loop:
	step()
	n--
	if n > 0 {
		goto loop
	}
}`, "f")
	bs := blockCalling(g, "step")
	if bs == nil {
		t.Fatalf("step block missing:\n%s", g)
	}
	if !reaches(bs, bs) {
		t.Fatalf("goto back edge missing:\n%s", g)
	}
	if !reaches(g.Entry, g.Exit) {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestLabeledBreak(t *testing.T) {
	g := build(t, `package p
func inner(); func after()
func f(m, n int) {
outer:
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if j == 3 {
				break outer
			}
			inner()
		}
	}
	after()
}`, "f")
	bi, ba := blockCalling(g, "inner"), blockCalling(g, "after")
	if bi == nil || ba == nil {
		t.Fatalf("missing blocks:\n%s", g)
	}
	if !reaches(bi, ba) {
		t.Fatalf("labeled break target unreachable from inner loop:\n%s", g)
	}
}

func TestSelectShapes(t *testing.T) {
	g := build(t, `package p
func a(); func b()
func f(ch chan int) {
	select {
	case <-ch:
		a()
	default:
		b()
	}
}`, "f")
	if blockCalling(g, "a") == nil || blockCalling(g, "b") == nil {
		t.Fatalf("select clause blocks missing:\n%s", g)
	}
	if !reaches(g.Entry, g.Exit) {
		t.Fatalf("select must fall through to exit:\n%s", g)
	}

	g = build(t, `package p
func f() {
	select {}
}`, "f")
	if reaches(g.Entry, g.Exit) {
		t.Fatalf("empty select must block forever:\n%s", g)
	}
}

func TestRangeZeroIterations(t *testing.T) {
	g := build(t, `package p
func body(); func after()
func f(xs []int) {
	for range xs {
		body()
	}
	after()
}`, "f")
	ba, bb := blockCalling(g, "after"), blockCalling(g, "body")
	if !pathAvoiding(g.Entry, ba, bb) {
		t.Fatalf("range must be skippable with zero iterations:\n%s", g)
	}
	if !reaches(bb, bb) {
		t.Fatalf("range back edge missing:\n%s", g)
	}
}

func TestAllBlocksReachableAfterPrune(t *testing.T) {
	g := build(t, `package p
func a(); func b()
func f(cond bool) {
	if cond {
		return
	}
	a()
	return
}`, "f")
	for _, blk := range g.Blocks {
		if blk == g.Entry || blk == g.Exit {
			continue
		}
		if !reaches(g.Entry, blk) {
			t.Fatalf("unreachable block b%d survived pruning:\n%s", blk.Index, g)
		}
	}
}

// callsSeen is a may-analysis test problem: the set of function names
// possibly called before a block executes.
type callsSeen struct{}

func (callsSeen) Entry() Fact { return map[string]bool{} }

func (callsSeen) Join(a, b Fact) Fact {
	out := map[string]bool{}
	for k := range a.(map[string]bool) {
		out[k] = true
	}
	for k := range b.(map[string]bool) {
		out[k] = true
	}
	return out
}

func (callsSeen) Equal(a, b Fact) bool {
	am, bm := a.(map[string]bool), b.(map[string]bool)
	if len(am) != len(bm) {
		return false
	}
	for k := range am {
		if !bm[k] {
			return false
		}
	}
	return true
}

func (callsSeen) Transfer(blk *Block, in Fact) Fact {
	out := map[string]bool{}
	for k := range in.(map[string]bool) {
		out[k] = true
	}
	for _, n := range blk.Nodes {
		Walk(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok {
					out[id.Name] = true
				}
			}
			return true
		})
	}
	return out
}

func TestForwardDataflow(t *testing.T) {
	g := build(t, `package p
func a(); func b(); func c()
func f(cond bool) {
	if cond {
		a()
	} else {
		b()
	}
	c()
	for cond {
		a()
	}
}`, "f")
	res := Forward(g, callsSeen{})
	exitIn, ok := res.In[g.Exit].(map[string]bool)
	if !ok {
		t.Fatalf("no fact at exit:\n%s", g)
	}
	for _, want := range []string{"a", "b", "c"} {
		if !exitIn[want] {
			t.Errorf("exit fact missing %q: %v", want, exitIn)
		}
	}
	// The then-branch block must not yet have seen b.
	ba := blockCalling(g, "a")
	if in, ok := res.In[ba].(map[string]bool); ok && in["b"] {
		t.Errorf("then-branch entry fact already contains b: %v", in)
	}
}

func TestDeferredCallInDataflow(t *testing.T) {
	// A deferred call must be visible to dataflow on the exit path.
	g := build(t, `package p
func open(); func close()
func f() {
	open()
	defer close()
}`, "f")
	res := Forward(g, callsSeen{})
	exitIn := res.In[g.Exit].(map[string]bool)
	if !exitIn["close"] {
		t.Errorf("deferred close not on exit path: %v", exitIn)
	}
}
