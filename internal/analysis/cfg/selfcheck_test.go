package cfg_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"

	"osnoise/internal/analysis/cfg"
)

// TestSelfValidation builds a CFG for every function in the repository
// (fixtures included — they are ordinary Go) and checks the structural
// invariants the analyzers lean on:
//
//   - every block is reachable from Entry (the builder prunes the rest;
//     only Exit may be unreachable, in functions that never return),
//   - Succs and Preds mirror each other exactly,
//   - a block with no successors is the Exit block or marked NoReturn,
//   - a function whose body registers a defer and whose Exit is
//     reachable has at least one KindDefer block, and every KindDefer
//     block reaches Exit (deferred calls run on the way out).
func TestSelfValidation(t *testing.T) {
	root := filepath.Join("..", "..", "..")
	fset := token.NewFileSet()
	var files []*ast.File
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "related" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		files = append(files, f)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 100 {
		t.Fatalf("walked only %d Go files from %s; wrong root?", len(files), root)
	}

	funcs := 0
	for _, f := range files {
		for _, fn := range cfg.Functions(f) {
			funcs++
			validate(t, fset, fn)
		}
	}
	t.Logf("validated CFGs of %d functions across %d files", funcs, len(files))
	if funcs < 300 {
		t.Fatalf("only %d functions validated; expected the whole repository", funcs)
	}
}

func validate(t *testing.T, fset *token.FileSet, fn *cfg.Func) {
	t.Helper()
	g := cfg.New(fn.Body, nil)
	at := func() string { return fset.Position(fn.Pos).String() + " (" + fn.Name + ")" }

	// Reachability from Entry.
	reach := map[*cfg.Block]bool{}
	var visit func(*cfg.Block)
	visit = func(b *cfg.Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range b.Succs {
			visit(s)
		}
	}
	visit(g.Entry)
	for _, b := range g.Blocks {
		if !reach[b] && b != g.Exit {
			t.Errorf("%s: block %d (%s) unreachable from entry", at(), b.Index, b.Kind)
		}
	}

	// Succs/Preds mirror, and all edge endpoints are in g.Blocks.
	in := map[*cfg.Block]bool{}
	for _, b := range g.Blocks {
		in[b] = true
	}
	count := func(list []*cfg.Block, x *cfg.Block) int {
		n := 0
		for _, e := range list {
			if e == x {
				n++
			}
		}
		return n
	}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if !in[s] {
				t.Errorf("%s: block %d has dangling successor", at(), b.Index)
				continue
			}
			if count(s.Preds, b) != count(b.Succs, s) {
				t.Errorf("%s: edge %d->%d not mirrored in Preds", at(), b.Index, s.Index)
			}
		}
		for _, p := range b.Preds {
			if !in[p] {
				t.Errorf("%s: block %d has dangling predecessor", at(), b.Index)
				continue
			}
			if count(p.Succs, b) != count(b.Preds, p) {
				t.Errorf("%s: edge %d->%d not mirrored in Succs", at(), p.Index, b.Index)
			}
		}

		// Dead ends are the exit or explicitly no-return.
		if len(b.Succs) == 0 && b != g.Exit && !b.NoReturn {
			t.Errorf("%s: block %d (%s) has no successors but is neither exit nor no-return", at(), b.Index, b.Kind)
		}
	}

	// Defer modeling: a reachable defer registration with a reachable
	// exit implies a defer block on some path, and every defer block
	// reaches the exit.
	hasDeferStmt := false
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				hasDeferStmt = true
			}
		}
	}
	hasDeferBlock := false
	for _, b := range g.Blocks {
		if b.Kind == cfg.KindDefer {
			hasDeferBlock = true
			exitReach := map[*cfg.Block]bool{}
			var toExit func(*cfg.Block) bool
			toExit = func(x *cfg.Block) bool {
				if x == g.Exit {
					return true
				}
				if exitReach[x] {
					return false
				}
				exitReach[x] = true
				for _, s := range x.Succs {
					if toExit(s) {
						return true
					}
				}
				return false
			}
			if !toExit(b) {
				t.Errorf("%s: defer block %d does not reach exit", at(), b.Index)
			}
		}
	}
	if hasDeferStmt && reach[g.Exit] && !hasDeferBlock {
		t.Errorf("%s: function registers a defer and returns, but CFG has no defer block", at())
	}
}
