package lockbalance_test

import (
	"testing"

	"osnoise/internal/analysis/analysistest"
	"osnoise/internal/analysis/lockbalance"
)

// TestLockBalance runs the analyzer over the fixture. Package a is in
// scope and carries the want cases; package b holds a blatant leak but
// is outside the configured packages, so any diagnostic on it fails
// the test (scope negative).
func TestLockBalance(t *testing.T) {
	a := lockbalance.New(lockbalance.Config{Packages: []string{"a"}})
	analysistest.Run(t, "testdata", a, "a", "b")
}
