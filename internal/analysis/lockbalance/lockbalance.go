// Package lockbalance implements the noisevet analyzer that keeps
// sync.Mutex/RWMutex acquisitions balanced on every control-flow path.
//
// The tracer's shared state (trace.MutexRing, the session's process
// table) is guarded by mutexes on paths the simulator hits millions of
// times per run. A lock leaked on an early return deadlocks the next
// writer; a double unlock panics at runtime, but only on the path that
// takes the branch — exactly the class of bug "Long-term Monitoring of
// Kernel and Hardware Events" blames for unattributable latency
// variance, and one AST-local linting cannot see.
//
// The analyzer runs two passes over the internal/analysis/cfg graph of
// every function:
//
//   - A forward dataflow (per-mutex lattice Unknown → Held(n) /
//     Unheld / Mixed, joined at merges) flags unlocking a mutex that is
//     not held on the current path (double unlock) and unlocking or
//     locking with path-dependent state (held on some predecessors
//     only).
//
//   - A per-acquisition path query flags a Lock/RLock from which the
//     function exit is reachable without passing the matching
//     Unlock/RUnlock. Deferred unlocks count — defer blocks lie on the
//     exit path in the CFG — and paths ending in panic/os.Exit are
//     exempt.
//
// Mutexes are identified by the source expression of the receiver
// ("m.mu", "s.procMu"), per mode (read/write), which is exact for the
// field-guard idiom the repository uses. A function that only unlocks
// (caller-held hand-off) is not reported: entry state is Unknown, not
// Unheld.
package lockbalance

import (
	"go/ast"
	"go/token"
	"go/types"

	"osnoise/internal/analysis"
	"osnoise/internal/analysis/cfg"
)

// Config scopes the analyzer.
type Config struct {
	// Packages are package-path prefixes the analyzer applies to; an
	// empty list means every target package.
	Packages []string
}

// Lattice values per mutex key. Absence from the fact map is Unknown.
const (
	unheld int8 = 0  // explicitly released on this path
	mixed  int8 = -1 // held on some joined paths, not on others
	// >0: held, with RLock depth for read mode
)

// lockOp is one Lock/Unlock-family call site.
type lockOp struct {
	key     string // mode-qualified receiver, e.g. "w m.mu", "r s.rw"
	display string // receiver as written, for messages
	acquire bool
	read    bool
	pos     token.Pos
}

// New returns a lockbalance analyzer.
func New(cfgc Config) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "lockbalance",
		Doc: "require every mutex Lock/RLock to be released on all paths, with no double unlock\n\n" +
			"Shared tracer state is mutex-guarded on hot paths; a lock leaked on an early return\n" +
			"deadlocks the next writer and a path-dependent unlock panics only on the branch that\n" +
			"takes it. Deferred unlocks count; panicking paths are exempt.",
	}
	a.Run = func(pass *analysis.Pass) (interface{}, error) {
		if len(cfgc.Packages) > 0 && !matchAny(cfgc.Packages, pass.Pkg.Path()) {
			return nil, nil
		}
		for _, file := range pass.Files {
			for _, fn := range cfg.Functions(file) {
				checkFunc(pass, fn)
			}
		}
		return nil, nil
	}
	return a
}

// opsIn extracts the lock operations of one CFG node, in source order.
func opsIn(pass *analysis.Pass, n ast.Node) []lockOp {
	var ops []lockOp
	cfg.Walk(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		var acquire, read bool
		switch fn.Name() {
		case "Lock":
			acquire = true
		case "RLock":
			acquire, read = true, true
		case "Unlock":
		case "RUnlock":
			read = true
		default:
			return true // TryLock etc.: conditional, out of scope
		}
		recv := types.ExprString(sel.X)
		mode := "w "
		if read {
			mode = "r "
		}
		ops = append(ops, lockOp{key: mode + recv, display: recv, acquire: acquire, read: read, pos: call.Pos()})
		return true
	})
	return ops
}

func checkFunc(pass *analysis.Pass, fn *cfg.Func) {
	// Fast pre-scan: most functions touch no mutex.
	any := false
	cfg.Walk(fn.Body, func(m ast.Node) bool {
		if any {
			return false
		}
		if sel, ok := m.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Lock", "RLock", "Unlock", "RUnlock":
				any = true
			}
		}
		return true
	})
	if !any {
		return
	}

	g := cfg.New(fn.Body, nil)
	prob := &lockFlow{pass: pass}
	res := cfg.Forward(g, prob)

	// Reporting pass 1: double/path-dependent unlocks, via one more
	// transfer over each reachable block with reporting enabled.
	for _, blk := range g.Blocks {
		in, ok := res.In[blk].(lockFact)
		if !ok {
			continue // unreachable (dead Exit)
		}
		prob.report = true
		prob.transfer(blk, in)
		prob.report = false
	}

	// Reporting pass 2: acquisitions that can reach exit still held.
	for _, blk := range g.Blocks {
		if _, ok := res.In[blk]; !ok {
			continue
		}
		for i, n := range blk.Nodes {
			for _, op := range opsIn(pass, n) {
				if !op.acquire {
					continue
				}
				if leaksToExit(pass, g, blk, i, op) {
					verb := "Lock"
					release := "Unlock"
					if op.read {
						verb, release = "RLock", "RUnlock"
					}
					pass.Reportf(op.pos, "%s.%s is not released on every path to return (missing %s or defer %s.%s)",
						op.display, verb, release, op.display, release)
				}
			}
		}
	}
}

// leaksToExit reports whether some path from just after node idx of blk
// reaches the function exit without passing a release of op's key.
// Several ops inside one node (Lock();...;Unlock() on one line) are
// resolved by position: a release textually after the acquire in the
// same node closes it.
func leaksToExit(pass *analysis.Pass, g *cfg.Graph, blk *cfg.Block, idx int, op lockOp) bool {
	releases := func(n ast.Node, after token.Pos) bool {
		for _, o := range opsIn(pass, n) {
			if !o.acquire && o.key == op.key && o.pos > after {
				return true
			}
		}
		return false
	}
	if releases(blk.Nodes[idx], op.pos) {
		return false
	}
	for _, n := range blk.Nodes[idx+1:] {
		if releases(n, token.NoPos) {
			return false
		}
	}
	seen := map[*cfg.Block]bool{}
	var visit func(*cfg.Block) bool
	visit = func(b *cfg.Block) bool {
		if b == g.Exit {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, n := range b.Nodes {
			if releases(n, token.NoPos) {
				return false
			}
		}
		for _, s := range b.Succs {
			if visit(s) {
				return true
			}
		}
		return false
	}
	for _, s := range blk.Succs {
		if visit(s) {
			return true
		}
	}
	return false
}

// lockFact maps mode-qualified mutex keys to lattice values.
type lockFact map[string]int8

// lockFlow is the forward dataflow problem.
type lockFlow struct {
	pass   *analysis.Pass
	report bool
}

func (f *lockFlow) Entry() cfg.Fact { return lockFact{} }

func (f *lockFlow) Join(a, b cfg.Fact) cfg.Fact {
	am, bm := a.(lockFact), b.(lockFact)
	out := make(lockFact, len(am))
	for k, av := range am {
		bv, ok := bm[k]
		switch {
		case !ok:
			// Unknown on the other path: held here means path-dependent;
			// explicitly-unheld here merges back to Unknown (no claim).
			if av != unheld {
				out[k] = mixed
			}
		case av == bv:
			out[k] = av
		default:
			out[k] = mixed
		}
	}
	for k, bv := range bm {
		if _, ok := am[k]; !ok && bv != unheld {
			out[k] = mixed
		}
	}
	return out
}

func (f *lockFlow) Equal(a, b cfg.Fact) bool {
	am, bm := a.(lockFact), b.(lockFact)
	if len(am) != len(bm) {
		return false
	}
	for k, v := range am {
		if w, ok := bm[k]; !ok || v != w {
			return false
		}
	}
	return true
}

func (f *lockFlow) Transfer(blk *cfg.Block, in cfg.Fact) cfg.Fact {
	return f.transfer(blk, in.(lockFact))
}

func (f *lockFlow) transfer(blk *cfg.Block, in lockFact) lockFact {
	out := make(lockFact, len(in))
	for k, v := range in {
		out[k] = v
	}
	for _, n := range blk.Nodes {
		for _, op := range opsIn(f.pass, n) {
			v, known := out[op.key]
			switch {
			case op.acquire && op.read:
				if known && v > 0 {
					out[op.key] = v + 1 // reader reentrancy: depth
				} else if known && v == mixed {
					// stays mixed: at least one more reader now
				} else {
					out[op.key] = 1
				}
			case op.acquire:
				if known && v > 0 {
					if f.report {
						f.pass.Reportf(op.pos, "%s.Lock with %s already held on this path (self-deadlock)", op.display, op.display)
					}
					// Track depth anyway so the releases downstream of the
					// (reported) reacquisition still balance.
					out[op.key] = v + 1
				} else {
					if known && v == mixed && f.report {
						f.pass.Reportf(op.pos, "%s.Lock reachable with %s held on some paths but not others", op.display, op.display)
					}
					out[op.key] = 1
				}
			default: // release
				rel := "Unlock"
				if op.read {
					rel = "RUnlock"
				}
				switch {
				case !known:
					out[op.key] = unheld // caller-held hand-off: fine
				case v == unheld:
					if f.report {
						f.pass.Reportf(op.pos, "%s.%s with %s not held on this path (double unlock)", op.display, rel, op.display)
					}
				case v == mixed:
					if f.report {
						f.pass.Reportf(op.pos, "%s.%s reachable with %s held on some paths but not others", op.display, rel, op.display)
					}
					out[op.key] = unheld
				case v > 1:
					out[op.key] = v - 1
				default:
					out[op.key] = unheld
				}
			}
		}
	}
	return out
}

func matchAny(prefixes []string, path string) bool {
	for _, p := range prefixes {
		if analysis.PathPrefixMatch(p, path) {
			return true
		}
	}
	return false
}
