// Package b is outside the analyzer's configured package scope: its
// obvious leak must produce no diagnostics (scope negative — there are
// deliberately no want comments in this file).
package b

import "sync"

var mu sync.Mutex

func unscopedLeak() {
	mu.Lock()
}
