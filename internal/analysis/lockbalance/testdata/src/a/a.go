// Package a exercises the lockbalance analyzer: every Lock/RLock must
// be released on all paths, with no double unlock.
package a

import "sync"

type state struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// Explicit lock/unlock pairing is fine.
func (s *state) explicitPair() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// The deferred unlock lies on every return path.
func (s *state) deferredPair(bail bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if bail {
		return 0
	}
	s.n++
	return s.n
}

// An early return that skips the unlock leaks the lock.
func (s *state) earlyReturnLeak(bail bool) {
	s.mu.Lock() // want `s\.mu\.Lock is not released on every path to return`
	if bail {
		return
	}
	s.n++
	s.mu.Unlock()
}

// No unlock at all.
func (s *state) neverReleased() {
	s.mu.Lock() // want `s\.mu\.Lock is not released on every path to return`
	s.n++
}

// Unlocking twice on one path panics at runtime.
func (s *state) doubleUnlock() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.mu.Unlock() // want `s\.mu\.Unlock with s\.mu not held on this path \(double unlock\)`
}

// A lock taken on only one branch, released unconditionally: held on
// some paths but not others at the unlock. (The Lock itself is not a
// leak — the unconditional Unlock lies on every path from it.)
func (s *state) mixedUnlock(cond bool) {
	if cond {
		s.mu.Lock()
	}
	s.n++
	s.mu.Unlock() // want `s\.mu\.Unlock reachable with s\.mu held on some paths but not others`
}

// Read locks pair like write locks and are tracked separately.
func (s *state) readPair() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.n
}

// RLock leaked on the early return.
func (s *state) readLeak(bail bool) int {
	s.rw.RLock() // want `s\.rw\.RLock is not released on every path to return`
	if bail {
		return 0
	}
	n := s.n
	s.rw.RUnlock()
	return n
}

// An Unlock does not discharge an RLock: read and write modes are
// tracked separately. (The stray Unlock itself is treated as a
// caller-held hand-off and stays silent.)
func (s *state) crossModeLeak() {
	s.rw.RLock() // want `s\.rw\.RLock is not released on every path to return`
	_ = s.n
	s.rw.Unlock()
}

// Locking a mutex already held on the same path self-deadlocks.
func (s *state) selfDeadlock() {
	s.mu.Lock()
	s.mu.Lock() // want `s\.mu\.Lock with s\.mu already held on this path \(self-deadlock\)`
	s.n++
	s.mu.Unlock()
	s.mu.Unlock()
}

// Unlock-only functions are caller-held hand-offs: entry state is
// unknown, so nothing to report.
func (s *state) unlockOnly() {
	s.n++
	s.mu.Unlock()
}

// Panicking paths are exempt: the process is going down anyway.
func (s *state) panicPathOK(corrupt bool) {
	s.mu.Lock()
	if corrupt {
		panic("corrupt state")
	}
	s.n++
	s.mu.Unlock()
}

// Lock in loop body, unlock in same body: balanced each iteration.
func (s *state) loopBalanced(n int) {
	for i := 0; i < n; i++ {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}
}

// Two different mutexes are tracked independently.
func two(a, b *sync.Mutex, swap bool) {
	a.Lock()
	b.Lock()
	if swap {
		b.Unlock()
		a.Unlock()
		return
	}
	a.Unlock()
	b.Unlock()
}
