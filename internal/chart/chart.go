// Package chart renders the paper's figures as deterministic ASCII art:
// spike series (the FTQ output and the synthetic OS noise chart of
// Fig. 1/9), execution-trace timelines (Figs. 2, 5, 7), and duration
// histograms (Figs. 4, 6, 8) via stats.Histogram.Render.
package chart

import (
	"fmt"
	"math"
	"strings"

	"osnoise/internal/noise"
)

// Spikes renders a (seconds, value) series as a vertical-spike chart:
// time flows left to right over width columns; each column shows the
// maximum value falling into it, scaled to height rows. It is the ASCII
// equivalent of the paper's FTQ / synthetic-noise charts.
func Spikes(series [][]float64, width, height int, unit string) string {
	if len(series) == 0 {
		return "(empty series)\n"
	}
	t0 := series[0][0]
	t1 := series[len(series)-1][0]
	if t1 <= t0 {
		t1 = t0 + 1e-9
	}
	cols := make([]float64, width)
	for _, p := range series {
		c := int((p[0] - t0) / (t1 - t0) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		if p[1] > cols[c] {
			cols[c] = p[1]
		}
	}
	var max float64
	for _, v := range cols {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		max = 1
	}
	var sb strings.Builder
	for row := height; row >= 1; row-- {
		thresh := float64(row-1) / float64(height) * max
		fmt.Fprintf(&sb, "%10.1f |", max*float64(row)/float64(height))
		for _, v := range cols {
			if v > thresh && v > 0 {
				sb.WriteString("|")
			} else {
				sb.WriteString(" ")
			}
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "%10s +%s\n", unit, strings.Repeat("-", width))
	fmt.Fprintf(&sb, "%10s  %-*.3fs%*.3fs\n", "", width/2, t0, width-width/2-1, t1)
	return sb.String()
}

// timelineGlyphs maps activity keys to single characters for trace
// timelines, echoing the paper's colour legend (timer black, page fault
// red, preemption green, schedule orange).
var timelineGlyphs = map[noise.Key]byte{
	noise.KeyTimerIRQ:     'T',
	noise.KeyTimerSoftIRQ: 't',
	noise.KeyPageFault:    'F',
	noise.KeySchedule:     's',
	noise.KeyPreemption:   'P',
	noise.KeyNetIRQ:       'N',
	noise.KeyNetRx:        'r',
	noise.KeyNetTx:        'x',
	noise.KeyRCU:          'c',
	noise.KeyRebalance:    'b',
	noise.KeySyscall:      'y',
}

// GlyphOf returns the timeline character for a key ('?' if unmapped).
func GlyphOf(k noise.Key) byte {
	if g, ok := timelineGlyphs[k]; ok {
		return g
	}
	return '?'
}

// Legend lists the timeline glyphs.
func Legend() string {
	var sb strings.Builder
	order := []noise.Key{
		noise.KeyTimerIRQ, noise.KeyTimerSoftIRQ, noise.KeyPageFault,
		noise.KeySchedule, noise.KeyPreemption, noise.KeyNetIRQ,
		noise.KeyNetRx, noise.KeyNetTx, noise.KeyRCU, noise.KeyRebalance,
		noise.KeySyscall,
	}
	for _, k := range order {
		fmt.Fprintf(&sb, "  %c = %s\n", GlyphOf(k), k)
	}
	return sb.String()
}

// Timeline renders the spans of a report within [fromNS, toNS] as one
// row per CPU, width columns wide — the execution-trace view of
// Figs. 2, 5 and 7. A column shows the glyph of the longest activity
// overlapping it ('.' = application running). keys, when non-empty,
// filters to those activity types (the paper's event filters).
func Timeline(r *noise.Report, fromNS, toNS int64, width int, keys ...noise.Key) string {
	if toNS <= fromNS || width <= 0 {
		return "(empty timeline)\n"
	}
	keep := map[noise.Key]bool{}
	for _, k := range keys {
		keep[k] = true
	}
	type cell struct {
		glyph byte
		wall  int64
	}
	rows := make([][]cell, r.CPUs)
	for i := range rows {
		rows[i] = make([]cell, width)
	}
	span := float64(toNS - fromNS)
	for _, s := range r.Spans {
		if len(keep) > 0 && !keep[s.Key] {
			continue
		}
		end := s.Start + s.Wall
		if end < fromNS || s.Start > toNS || int(s.CPU) >= r.CPUs {
			continue
		}
		c0 := int(math.Floor(float64(s.Start-fromNS) / span * float64(width)))
		c1 := int(math.Floor(float64(end-fromNS) / span * float64(width)))
		if c0 < 0 {
			c0 = 0
		}
		if c1 >= width {
			c1 = width - 1
		}
		for c := c0; c <= c1; c++ {
			if s.Wall > rows[s.CPU][c].wall {
				rows[s.CPU][c] = cell{GlyphOf(s.Key), s.Wall}
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace %.3fms..%.3fms (%c per activity, . = user code)\n",
		float64(fromNS)/1e6, float64(toNS)/1e6, '#')
	for cpu, row := range rows {
		fmt.Fprintf(&sb, "cpu%-2d |", cpu)
		for _, c := range row {
			if c.glyph == 0 {
				sb.WriteByte('.')
			} else {
				sb.WriteByte(c.glyph)
			}
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}

// Breakdown renders the per-category noise shares as a horizontal bar
// chart — the ASCII analogue of the paper's Figure 3.
func Breakdown(r *noise.Report, width int) string {
	var sb strings.Builder
	for c := noise.CatPeriodic; c <= noise.CatIO; c++ {
		frac := r.CategoryFraction(c)
		bar := int(math.Round(frac * float64(width)))
		fmt.Fprintf(&sb, "%-12s %6.1f%% |%-*s|\n", c.String(), 100*frac, width, strings.Repeat("#", bar))
	}
	return sb.String()
}
