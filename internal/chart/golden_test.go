package chart

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"osnoise/internal/noise"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden compares got against the named golden file, rewriting it when
// -update is passed. Figure rendering is deterministic, so any diff is
// an (intentional or not) rendering change.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("%s: rendering changed.\n--- want ---\n%s\n--- got ---\n%s", name, want, got)
	}
}

func goldenSeries() [][]float64 {
	s := make([][]float64, 0, 50)
	for i := 0; i < 50; i++ {
		v := 0.0
		if i%10 == 0 {
			v = 4000 + float64(i)*10
		}
		if i == 25 {
			v = 9000
		}
		s = append(s, []float64{float64(i) * 0.001, v})
	}
	return s
}

func goldenReport() *noise.Report {
	r := &noise.Report{CPUs: 2, Seconds: 0.001}
	r.Spans = []noise.Span{
		{Key: noise.KeyTimerIRQ, CPU: 0, Start: 100_000, Wall: 40_000, Own: 40_000, Noise: true},
		{Key: noise.KeyTimerSoftIRQ, CPU: 0, Start: 140_000, Wall: 30_000, Own: 30_000, Noise: true},
		{Key: noise.KeyPageFault, CPU: 1, Start: 300_000, Wall: 80_000, Own: 80_000, Noise: true},
		{Key: noise.KeyPreemption, CPU: 0, Start: 600_000, Wall: 150_000, Own: 150_000, Noise: true},
		{Key: noise.KeyNetRx, CPU: 1, Start: 800_000, Wall: 60_000, Own: 60_000, Noise: true},
	}
	r.TotalNoiseNS = 360_000
	r.Breakdown[noise.CatPeriodic] = 70_000
	r.Breakdown[noise.CatPageFault] = 80_000
	r.Breakdown[noise.CatPreemption] = 150_000
	r.Breakdown[noise.CatIO] = 60_000
	return r
}

func TestGoldenSpikes(t *testing.T) {
	golden(t, "spikes.golden", Spikes(goldenSeries(), 60, 6, "ns"))
}

func TestGoldenTimeline(t *testing.T) {
	golden(t, "timeline.golden", Timeline(goldenReport(), 0, 1_000_000, 60))
}

func TestGoldenBreakdown(t *testing.T) {
	golden(t, "breakdown.golden", Breakdown(goldenReport(), 30))
}

func TestGoldenLegend(t *testing.T) {
	golden(t, "legend.golden", Legend())
}
