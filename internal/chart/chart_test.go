package chart

import (
	"strings"
	"testing"

	"osnoise/internal/noise"
)

func TestSpikes(t *testing.T) {
	series := [][]float64{{0, 0}, {1, 5000}, {2, 0}, {3, 8000}, {4, 0}}
	out := Spikes(series, 40, 6, "ns")
	if !strings.Contains(out, "|") {
		t.Fatalf("no spikes rendered:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 8 { // 6 rows + axis + labels
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}

func TestSpikesEmpty(t *testing.T) {
	if out := Spikes(nil, 10, 4, "ns"); !strings.Contains(out, "empty") {
		t.Fatalf("empty series output %q", out)
	}
}

func TestSpikesSinglePoint(t *testing.T) {
	out := Spikes([][]float64{{1.0, 42}}, 10, 3, "ns")
	if !strings.Contains(out, "|") {
		t.Fatalf("single point lost:\n%s", out)
	}
}

func sampleReport() *noise.Report {
	r := &noise.Report{CPUs: 2, Seconds: 0.001}
	r.Spans = []noise.Span{
		{Key: noise.KeyTimerIRQ, CPU: 0, Start: 100_000, Wall: 50_000, Own: 50_000, Noise: true},
		{Key: noise.KeyPageFault, CPU: 1, Start: 400_000, Wall: 80_000, Own: 80_000, Noise: true},
		{Key: noise.KeyPreemption, CPU: 0, Start: 700_000, Wall: 100_000, Own: 100_000, Noise: true},
	}
	r.TotalNoiseNS = 230_000
	r.Breakdown[noise.CatPeriodic] = 50_000
	r.Breakdown[noise.CatPageFault] = 80_000
	r.Breakdown[noise.CatPreemption] = 100_000
	return r
}

func TestTimeline(t *testing.T) {
	r := sampleReport()
	out := Timeline(r, 0, 1_000_000, 50)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // header + 2 cpus
		t.Fatalf("timeline lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "T") || !strings.Contains(lines[1], "P") {
		t.Fatalf("cpu0 row missing glyphs:\n%s", out)
	}
	if !strings.Contains(lines[2], "F") {
		t.Fatalf("cpu1 row missing page fault:\n%s", out)
	}
}

func TestTimelineFilter(t *testing.T) {
	r := sampleReport()
	out := Timeline(r, 0, 1_000_000, 50, noise.KeyPageFault)
	if strings.Contains(out, "T") || strings.Contains(out, "P") {
		t.Fatalf("filter leaked other keys:\n%s", out)
	}
	if !strings.Contains(out, "F") {
		t.Fatalf("filtered key missing:\n%s", out)
	}
}

func TestTimelineEmptyRange(t *testing.T) {
	if out := Timeline(sampleReport(), 100, 100, 10); !strings.Contains(out, "empty") {
		t.Fatalf("bad-range output %q", out)
	}
}

func TestBreakdown(t *testing.T) {
	out := Breakdown(sampleReport(), 30)
	if !strings.Contains(out, "page fault") || !strings.Contains(out, "#") {
		t.Fatalf("breakdown malformed:\n%s", out)
	}
	if !strings.Contains(out, "43.5%") { // 100000/230000
		t.Fatalf("preemption share wrong:\n%s", out)
	}
}

func TestGlyphsDistinct(t *testing.T) {
	seen := map[byte]noise.Key{}
	for k, g := range timelineGlyphs {
		if prev, dup := seen[g]; dup {
			t.Fatalf("glyph %c shared by %v and %v", g, prev, k)
		}
		seen[g] = k
	}
	if GlyphOf(noise.KeyOther) != '?' {
		t.Fatal("unmapped key should render '?'")
	}
	if !strings.Contains(Legend(), "page_fault") {
		t.Fatal("legend incomplete")
	}
}
