package paraver

import (
	"bytes"
	"strings"
	"testing"

	"osnoise/internal/noise"
	"osnoise/internal/sim"
	"osnoise/internal/workload"
)

func sampleReport() *noise.Report {
	r := &noise.Report{CPUs: 2, Seconds: 1e-3}
	r.Spans = []noise.Span{
		{Key: noise.KeyTimerIRQ, CPU: 0, Start: 1000, Wall: 2178, Own: 2178, Noise: true},
		{Key: noise.KeyPageFault, CPU: 1, Start: 5000, Wall: 2913, Own: 2913, Noise: true},
	}
	r.Interruptions = []noise.Interruption{
		{CPU: 0, Start: 1000, End: 3178, Total: 2178,
			Components: []noise.Component{{Key: noise.KeyTimerIRQ, Start: 1000, Own: 2178}}},
	}
	return r
}

func TestExportAndParseRoundTrip(t *testing.T) {
	r := sampleReport()
	var buf bytes.Buffer
	if err := Export(&buf, r, 1_000_000); err != nil {
		t.Fatal(err)
	}
	hdr, recs, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.DurationNS != 1_000_000 || hdr.CPUs != 2 {
		t.Fatalf("header %+v", hdr)
	}
	var timerSeen, faultSeen, eventSeen, runningSeen bool
	for _, rec := range recs {
		switch rec.Kind {
		case 1:
			if rec.End <= rec.Begin {
				t.Fatalf("empty state record %+v", rec)
			}
			if k, ok := KeyOfState(rec.State); ok {
				if k == noise.KeyTimerIRQ && rec.CPU == 0 && rec.Begin == 1000 && rec.End == 3178 {
					timerSeen = true
				}
				if k == noise.KeyPageFault && rec.CPU == 1 && rec.Begin == 5000 {
					faultSeen = true
				}
			} else if rec.State == StateRunning {
				runningSeen = true
			}
		case 2:
			if rec.Type == EventTypeInterruption && rec.Value == 2178 {
				eventSeen = true
			}
		}
	}
	if !timerSeen || !faultSeen || !eventSeen || !runningSeen {
		t.Fatalf("records missing: timer=%v fault=%v event=%v running=%v",
			timerSeen, faultSeen, eventSeen, runningSeen)
	}
}

// State records per CPU must tile the trace without overlaps.
func TestExportStatesTile(t *testing.T) {
	run := workload.New(workload.SPHOT(), workload.Options{Duration: 300 * sim.Millisecond, Seed: 3})
	tr := run.Execute()
	rep := noise.Analyze(tr, run.AnalysisOptions())
	var buf bytes.Buffer
	if err := Export(&buf, rep, int64(300*sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	_, recs, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	last := make(map[int]int64)
	for _, rec := range recs {
		if rec.Kind != 1 {
			continue
		}
		if rec.Begin < last[rec.CPU] {
			// Nested spans legitimately overlap their parents; only the
			// background "running" states must not regress.
			if rec.State == StateRunning {
				t.Fatalf("running state overlaps on cpu %d: begin %d < cursor %d",
					rec.CPU, rec.Begin, last[rec.CPU])
			}
			continue
		}
		last[rec.CPU] = rec.End
	}
	for cpu, end := range last {
		if end != int64(300*sim.Millisecond) {
			t.Fatalf("cpu %d coverage ends at %d", cpu, end)
		}
	}
}

func TestStateMapping(t *testing.T) {
	for k := noise.Key(0); k < noise.NumKeys; k++ {
		got, ok := KeyOfState(StateOf(k))
		if !ok || got != k {
			t.Fatalf("state mapping broken for %v", k)
		}
	}
	if _, ok := KeyOfState(StateRunning); ok {
		t.Fatal("running state maps to a key")
	}
	if _, ok := KeyOfState(StateIdle); ok {
		t.Fatal("idle state maps to a key")
	}
}

func TestExportPCF(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportPCF(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"STATES", "STATES_COLOR", "EVENT_TYPE",
		"PAGE_FAULT", "RUN_TIMER_SOFTIRQ", "{255,0,0}"} {
		if !strings.Contains(s, want) {
			t.Errorf("pcf missing %q", want)
		}
	}
}

func TestExportROW(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportROW(&buf, 8); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "LEVEL CPU SIZE 8") || !strings.Contains(s, "CPU 8") {
		t.Fatalf("row file malformed:\n%s", s)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, _, err := Parse(strings.NewReader("not a trace\n")); err != ErrNotParaver {
		t.Fatalf("err = %v", err)
	}
	bad := "#Paraver (x):100_ns:1(2):1:2(1:1,1:2)\n7:1:2:3\n"
	if _, _, err := Parse(strings.NewReader(bad)); err == nil {
		t.Fatal("unknown record kind accepted")
	}
	short := "#Paraver (x):100_ns:1(2):1:2(1:1,1:2)\n1:1:1:1:1:0:10\n"
	if _, _, err := Parse(strings.NewReader(short)); err == nil {
		t.Fatal("short state record accepted")
	}
}
