// Package paraver exports OS-noise analyses as Paraver traces, the
// format the paper's LTTNG-NOISE generates for visual analysis (§III-A).
// A trace is three files: the .prv body (state and event records), the
// .pcf configuration (state and event type names/colours), and the .row
// labels (one row per CPU, the system-level view the paper uses).
//
// Record formats (Paraver trace specification):
//
//	state record: 1:cpu:appl:task:thread:begin:end:state
//	event record: 2:cpu:appl:task:thread:time:type:value
//
// States: 0 idle, 1 application running, 10+Key for each kernel
// activity. Event type 90000001 marks interruption totals.
package paraver

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"osnoise/internal/noise"
)

// State codes.
const (
	StateIdle    = 0
	StateRunning = 1
	stateKeyBase = 10 // state for noise.Key k is stateKeyBase + k
)

// EventTypeInterruption tags an event record carrying an interruption's
// total duration in ns.
const EventTypeInterruption = 90000001

// StateOf returns the Paraver state code for a kernel activity key.
func StateOf(k noise.Key) int { return stateKeyBase + int(k) }

// KeyOfState inverts StateOf; ok is false for idle/running states.
func KeyOfState(state int) (noise.Key, bool) {
	k := state - stateKeyBase
	if k >= 0 && k < int(noise.NumKeys) {
		return noise.Key(k), true
	}
	return 0, false
}

// Export writes the .prv body for a report: per CPU, kernel activity
// spans become state records over a background of running/idle, and
// each interruption start carries an event record with its total.
// durNS is the trace length; the date stamp is fixed for determinism.
func Export(w io.Writer, r *noise.Report, durNS int64) error {
	bw := bufio.NewWriter(w)
	// Header: duration, one node with r.CPUs cpus, one application with
	// one task per CPU (system-level view).
	fmt.Fprintf(bw, "#Paraver (01/01/2011 at 00:00):%d_ns:1(%d):1:", durNS, r.CPUs)
	fmt.Fprintf(bw, "%d(", r.CPUs)
	for i := 0; i < r.CPUs; i++ {
		if i > 0 {
			fmt.Fprint(bw, ",")
		}
		fmt.Fprintf(bw, "1:%d", i+1)
	}
	fmt.Fprintln(bw, ")")

	// Spans per CPU, ordered by start.
	perCPU := make([][]noise.Span, r.CPUs)
	for _, s := range r.Spans {
		if int(s.CPU) < r.CPUs {
			perCPU[s.CPU] = append(perCPU[s.CPU], s)
		}
	}
	for cpu := 0; cpu < r.CPUs; cpu++ {
		spans := perCPU[cpu]
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		cursor := int64(0)
		for _, s := range spans {
			if s.Start > durNS {
				break
			}
			end := s.Start + s.Wall
			if end > durNS {
				end = durNS
			}
			if s.Start > cursor {
				// Background: the application runs between activities.
				writeState(bw, cpu, cursor, s.Start, StateRunning)
			}
			writeState(bw, cpu, s.Start, end, StateOf(s.Key))
			if end > cursor {
				cursor = end
			}
		}
		if cursor < durNS {
			writeState(bw, cpu, cursor, durNS, StateRunning)
		}
	}
	for _, in := range r.Interruptions {
		fmt.Fprintf(bw, "2:%d:1:%d:1:%d:%d:%d\n",
			in.CPU+1, in.CPU+1, in.Start, EventTypeInterruption, in.Total)
	}
	return bw.Flush()
}

func writeState(w io.Writer, cpu int, begin, end int64, state int) {
	if end <= begin {
		return
	}
	fmt.Fprintf(w, "1:%d:1:%d:1:%d:%d:%d\n", cpu+1, cpu+1, begin, end, state)
}

// ExportPCF writes the Paraver configuration file naming every state
// and event type.
func ExportPCF(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "DEFAULT_OPTIONS")
	fmt.Fprintln(bw, "LEVEL               THREAD")
	fmt.Fprintln(bw, "UNITS               NANOSEC")
	fmt.Fprintln(bw, "")
	fmt.Fprintln(bw, "STATES")
	fmt.Fprintf(bw, "%d    IDLE\n", StateIdle)
	fmt.Fprintf(bw, "%d    RUNNING\n", StateRunning)
	for k := noise.Key(0); k < noise.NumKeys; k++ {
		fmt.Fprintf(bw, "%d    %s\n", StateOf(k), strings.ToUpper(k.String()))
	}
	fmt.Fprintln(bw, "")
	fmt.Fprintln(bw, "STATES_COLOR")
	fmt.Fprintf(bw, "%d    {255,255,255}\n", StateIdle)
	fmt.Fprintf(bw, "%d    {255,255,255}\n", StateRunning)
	// Colours follow the paper's figures: timer black, softirq pink,
	// page fault red, schedule orange, preemption green.
	colors := map[noise.Key]string{
		noise.KeyTimerIRQ:     "{0,0,0}",
		noise.KeyTimerSoftIRQ: "{255,105,180}",
		noise.KeyPageFault:    "{255,0,0}",
		noise.KeySchedule:     "{255,165,0}",
		noise.KeyPreemption:   "{0,128,0}",
		noise.KeyNetIRQ:       "{0,0,255}",
		noise.KeyNetRx:        "{0,191,255}",
		noise.KeyNetTx:        "{100,149,237}",
		noise.KeyRCU:          "{128,0,128}",
		noise.KeyRebalance:    "{218,112,214}",
	}
	for k := noise.Key(0); k < noise.NumKeys; k++ {
		c, ok := colors[k]
		if !ok {
			c = "{128,128,128}"
		}
		fmt.Fprintf(bw, "%d    %s\n", StateOf(k), c)
	}
	fmt.Fprintln(bw, "")
	fmt.Fprintln(bw, "EVENT_TYPE")
	fmt.Fprintf(bw, "9    %d    OS noise interruption (ns)\n", EventTypeInterruption)
	return bw.Flush()
}

// ExportROW writes the row-label file (one row per CPU).
func ExportROW(w io.Writer, cpus int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "LEVEL CPU SIZE %d\n", cpus)
	for i := 0; i < cpus; i++ {
		fmt.Fprintf(bw, "CPU %d\n", i+1)
	}
	return bw.Flush()
}

// Record is one parsed .prv record.
type Record struct {
	Kind  int // 1 = state, 2 = event
	CPU   int
	Begin int64 // state begin / event time
	End   int64 // state end (0 for events)
	State int   // state code (states)
	Type  int64 // event type (events)
	Value int64 // event value (events)
}

// Header holds the parsed .prv header.
type Header struct {
	DurationNS int64
	CPUs       int
}

// ErrNotParaver is returned for streams without the #Paraver magic.
var ErrNotParaver = errors.New("paraver: missing #Paraver header")

// Parse reads a .prv stream back into records, for round-trip
// verification and downstream tooling.
func Parse(r io.Reader) (Header, []Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var hdr Header
	if !sc.Scan() {
		return hdr, nil, ErrNotParaver
	}
	line := sc.Text()
	if !strings.HasPrefix(line, "#Paraver") {
		return hdr, nil, ErrNotParaver
	}
	// The date stamp "(dd/mm/yyyy at hh:mm)" contains a colon; strip it
	// before splitting the remaining fields.
	rest := line
	if i := strings.Index(line, "):"); i >= 0 {
		rest = line[i+1:]
	}
	parts := strings.Split(rest, ":")
	if len(parts) >= 3 {
		durStr := strings.TrimSuffix(parts[1], "_ns")
		hdr.DurationNS, _ = strconv.ParseInt(durStr, 10, 64)
		nodeStr := parts[2]
		if i := strings.Index(nodeStr, "("); i >= 0 {
			if j := strings.Index(nodeStr, ")"); j > i {
				hdr.CPUs, _ = strconv.Atoi(nodeStr[i+1 : j])
			}
		}
	}
	var recs []Record
	lineNo := 1
	for sc.Scan() {
		lineNo++
		f := strings.Split(sc.Text(), ":")
		if len(f) == 0 || f[0] == "" {
			continue
		}
		kind, err := strconv.Atoi(f[0])
		if err != nil {
			return hdr, nil, fmt.Errorf("paraver: line %d: bad record kind %q", lineNo, f[0])
		}
		switch kind {
		case 1:
			if len(f) != 8 {
				return hdr, nil, fmt.Errorf("paraver: line %d: state record has %d fields", lineNo, len(f))
			}
			cpu, _ := strconv.Atoi(f[1])
			begin, _ := strconv.ParseInt(f[5], 10, 64)
			end, _ := strconv.ParseInt(f[6], 10, 64)
			state, _ := strconv.Atoi(f[7])
			recs = append(recs, Record{Kind: 1, CPU: cpu - 1, Begin: begin, End: end, State: state})
		case 2:
			if len(f) != 8 {
				return hdr, nil, fmt.Errorf("paraver: line %d: event record has %d fields", lineNo, len(f))
			}
			cpu, _ := strconv.Atoi(f[1])
			ts, _ := strconv.ParseInt(f[5], 10, 64)
			typ, _ := strconv.ParseInt(f[6], 10, 64)
			val, _ := strconv.ParseInt(f[7], 10, 64)
			recs = append(recs, Record{Kind: 2, CPU: cpu - 1, Begin: ts, Type: typ, Value: val})
		default:
			return hdr, nil, fmt.Errorf("paraver: line %d: unknown record kind %d", lineNo, kind)
		}
	}
	return hdr, recs, sc.Err()
}
