package paraver

import (
	"strings"
	"testing"
)

// Fuzzing the .prv parser: arbitrary text either parses or errors,
// never panics.
func FuzzParse(f *testing.F) {
	f.Add("#Paraver (01/01/2011 at 00:00):100_ns:1(2):1:2(1:1,1:2)\n1:1:1:1:1:0:50:11\n")
	f.Add("#Paraver (x):::\n2:1:1:1:1:5:90000001:42\n")
	f.Add("not a trace")
	f.Fuzz(func(t *testing.T, data string) {
		_, _, _ = Parse(strings.NewReader(data))
	})
}
