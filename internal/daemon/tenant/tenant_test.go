package tenant_test

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"osnoise/internal/daemon/daemontest"
	"osnoise/internal/daemon/tenant"
	"osnoise/internal/noise"
	"osnoise/internal/trace"
)

// ingest streams one encoded trace into the session.
func ingest(t *testing.T, s *tenant.Session, raw []byte, sample uint64) (*noise.Report, error) {
	t.Helper()
	d, err := trace.NewDecoder(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return s.Ingest(context.Background(), d, sample)
}

// daemonOptions mirrors the analysis options the router gives tenants.
func daemonOptions() noise.Options {
	opts := noise.DefaultOptions()
	opts.KeepDurations = false
	return opts
}

// TestSessionBitIdenticalToBatch: a session's window after streaming N
// traces equals the batch analyzer's reports folded in the same order,
// bit for bit.
func TestSessionBitIdenticalToBatch(t *testing.T) {
	s := tenant.New(context.Background(), tenant.Config{
		ID: "a", Options: daemonOptions(), WindowBuckets: 4,
	})
	var want noise.WindowSummary
	for seed := uint64(1); seed <= 3; seed++ {
		tr := daemontest.Trace(seed)
		want.AddReport(noise.Analyze(tr, daemonOptions()))
		if _, err := ingest(t, s, daemontest.Encode(tr), 0); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Status().Window
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("window diverges from batch fold:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestSessionLifetimeBudgetEvicts: a tenant whose cumulative intake
// crosses its lifetime cap degrades that stream, then rejects the next
// one with ErrEvicted.
func TestSessionLifetimeBudgetEvicts(t *testing.T) {
	tr := daemontest.Trace(1)
	raw := daemontest.Encode(tr)
	full := uint64(len(tr.Events))
	s := tenant.New(context.Background(), tenant.Config{
		ID:      "a",
		Options: daemonOptions(),
		Budget:  noise.Budget{MaxEvents: full + full/2}, // 1.5 traces
	})

	rep, err := ingest(t, s, raw, 0)
	if err != nil || rep.Incomplete {
		t.Fatalf("first stream under budget: err=%v incomplete=%v", err, rep.Incomplete)
	}
	rep, err = ingest(t, s, raw, 0)
	if err != nil {
		t.Fatalf("second stream errored instead of degrading: %v", err)
	}
	if !rep.Incomplete || rep.EventsConsumed != full/2 {
		t.Fatalf("second stream: incomplete=%v consumed=%d, want truncation to %d",
			rep.Incomplete, rep.EventsConsumed, full/2)
	}
	if !s.Evicted() {
		t.Fatal("session not evicted after exhausting its lifetime budget")
	}
	if _, err := ingest(t, s, raw, 0); !errors.Is(err, tenant.ErrEvicted) {
		t.Fatalf("post-eviction ingest err = %v, want ErrEvicted", err)
	}
	st := s.Status()
	if st.Remaining != 0 || !st.Evicted {
		t.Fatalf("status after eviction: %+v", st)
	}
}

// TestBudgetIsolation: one tenant blowing its cap leaves a neighbour's
// window bit-identical to an unconstrained run — the per-tenant
// isolation contract.
func TestBudgetIsolation(t *testing.T) {
	tr := daemontest.Trace(7)
	raw := daemontest.Encode(tr)
	ctx := context.Background()

	greedy := tenant.New(ctx, tenant.Config{
		ID: "greedy", Options: daemonOptions(),
		Budget: noise.Budget{MaxEvents: uint64(len(tr.Events)) / 4},
	})
	quiet := tenant.New(ctx, tenant.Config{ID: "quiet", Options: daemonOptions()})

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d, err := trace.NewDecoder(bytes.NewReader(raw))
			if err != nil {
				t.Error(err)
				return
			}
			_, _ = greedy.Ingest(ctx, d, 0) // expected to degrade/evict
		}()
	}
	for i := 0; i < 2; i++ {
		if _, err := ingest(t, quiet, raw, 0); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	if !greedy.Evicted() {
		t.Fatal("greedy tenant survived 4× its lifetime budget")
	}
	var want noise.WindowSummary
	rep := noise.Analyze(tr, daemonOptions())
	want.AddReport(rep)
	want.AddReport(rep)
	if got := quiet.Status().Window; !reflect.DeepEqual(want, got) {
		t.Fatalf("neighbour window disturbed:\nwant %+v\ngot  %+v", want, got)
	}
	if st := quiet.Status(); st.Evicted || st.Errors != 0 {
		t.Fatalf("neighbour status disturbed: %+v", st)
	}
}

// TestSessionSampleCap: an overload sample cap truncates the stream
// and counts it as sampled.
func TestSessionSampleCap(t *testing.T) {
	tr := daemontest.Trace(2)
	s := tenant.New(context.Background(), tenant.Config{ID: "a", Options: daemonOptions()})
	cap := uint64(len(tr.Events)) / 3
	rep, err := ingest(t, s, daemontest.Encode(tr), cap)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Incomplete || rep.EventsConsumed != cap {
		t.Fatalf("sampled stream consumed %d (incomplete=%v), want cap %d",
			rep.EventsConsumed, rep.Incomplete, cap)
	}
	if st := s.Status(); st.Sampled != 1 {
		t.Fatalf("sampled counter = %d, want 1", st.Sampled)
	}
}

// TestSessionCloseCancelsIngest: closing the session aborts an
// in-flight analysis with the typed cancellation error.
func TestSessionCloseCancelsIngest(t *testing.T) {
	s := tenant.New(context.Background(), tenant.Config{ID: "a", Options: daemonOptions()})
	s.Close()
	_, err := ingest(t, s, daemontest.Encode(daemontest.Trace(1)), 0)
	if !errors.Is(err, noise.ErrCancelled) {
		t.Fatalf("ingest after Close: err = %v, want noise.ErrCancelled", err)
	}
	if st := s.Status(); st.Errors != 1 {
		t.Fatalf("error counter = %d, want 1", st.Errors)
	}
}

// TestCutRotatesWindow: Cut returns the pre-rotation snapshot and the
// next Status starts a fresh interval.
func TestCutRotatesWindow(t *testing.T) {
	s := tenant.New(context.Background(), tenant.Config{
		ID: "a", Options: daemonOptions(), WindowBuckets: 2,
	})
	if _, err := ingest(t, s, daemontest.Encode(daemontest.Trace(1)), 0); err != nil {
		t.Fatal(err)
	}
	st := s.Cut()
	if st.Window.Reports != 1 {
		t.Fatalf("cut snapshot reports = %d, want 1", st.Window.Reports)
	}
	// Window width 2: the report is still inside the rolling window…
	if got := s.Status().Window.Reports; got != 1 {
		t.Fatalf("post-cut window reports = %d, want 1", got)
	}
	// …until it rotates out.
	s.Cut()
	if got := s.Status().Window.Reports; got != 0 {
		t.Fatalf("report survived rotating past the window: %d", got)
	}
}
