// Package tenant isolates one client of the noised daemon.
//
// A Session owns everything the daemon keeps for a tenant: the analysis
// options, a lifetime ingest budget, a rolling noise window, and the
// stream counters the sinks export. Ingest runs one streaming analysis
// (noise.AnalyzeStream) under the remaining lifetime budget, so a
// tenant that exhausts its cap degrades and is then evicted without
// disturbing any other tenant — isolation is per-Session state plus a
// per-Session context, never shared analysis structures.
//
// Determinism contract: with no budget pressure and no overload
// sampling, the Report a Session folds into its window is the same
// Report the batch analyzer would produce for the same events, so a
// single-stream window is bit-identical to batch noise.Analyze (the
// property internal/noise/window.go locks down).
package tenant

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"osnoise/internal/noise"
	"osnoise/internal/stats"
	"osnoise/internal/trace"
)

// ErrEvicted is returned by Ingest once the tenant has exhausted its
// lifetime budget; matched with errors.Is.
var ErrEvicted = errors.New("tenant: lifetime budget exhausted")

// Config sizes a tenant session.
type Config struct {
	// ID names the tenant; it becomes the sink tag / metric label.
	ID string
	// Options is the per-stream analysis configuration. Its Budget
	// field bounds a single stream; the lifetime cap below is separate.
	Options noise.Options
	// Budget caps the tenant's lifetime event intake (MaxEvents and
	// MaxBytes fold into one record count; MaxInterruptions bounds
	// retained detail per stream). The zero value means unlimited.
	Budget noise.Budget
	// Shards is the parallelism handed to noise.AnalyzeStream.
	Shards int
	// WindowBuckets is the rolling window width in flush intervals.
	WindowBuckets int
}

// lifetimeCap folds the event and byte caps of a lifetime budget into
// one record count, mirroring the analyzer's own budget folding.
func lifetimeCap(b noise.Budget) uint64 {
	const unlimited = ^uint64(0)
	limit := unlimited
	if b.MaxEvents > 0 {
		limit = b.MaxEvents
	}
	if b.MaxBytes > 0 {
		if n := b.MaxBytes / trace.EventSize; n < limit {
			limit = n
		}
	}
	return limit
}

// Session is one tenant's isolated analysis state. All methods are safe
// for concurrent use; two streams for the same tenant serialise on the
// ingest lock (per-tenant ordering is part of the window determinism
// contract), streams for different tenants never share state.
type Session struct {
	id     string
	opts   noise.Options
	budget noise.Budget
	cap    uint64
	shards int
	ctx    context.Context
	cancel context.CancelFunc

	// ingestMu serialises stream analyses for this tenant so window
	// bucket order matches arrival order. It is taken before mu and
	// never the other way around.
	//noisevet:lockrank daemon 2
	ingestMu sync.Mutex

	// mu guards the rolling window and the counters below; held only
	// for short fold/snapshot sections, never across an analysis.
	//noisevet:lockrank daemon 3
	mu           sync.Mutex
	window       *noise.Window
	streamEvents *stats.Rolling
	consumed     uint64
	streams      uint64
	errors       uint64
	sampled      uint64
	evicted      bool
}

// Status is a point-in-time snapshot of a session for sinks and the
// status endpoint.
type Status struct {
	// ID names the tenant.
	ID string
	// Window is the rolling summary merged over the live buckets.
	Window noise.WindowSummary
	// StreamEvents summarises per-stream event counts over the window.
	StreamEvents stats.Summary
	// Consumed counts lifetime event records charged to the budget.
	Consumed uint64
	// Remaining is the lifetime budget left, in event records
	// (math.MaxUint64 when unlimited).
	Remaining uint64
	// Streams counts lifetime ingests, successful or not.
	Streams uint64
	// Errors counts lifetime failed ingests.
	Errors uint64
	// Sampled counts lifetime overload-degraded ingests.
	Sampled uint64
	// Evicted reports whether the lifetime budget is exhausted.
	Evicted bool
}

// New builds a session. ctx bounds the tenant's lifetime: cancelling it
// (or Close) aborts in-flight analyses with noise.ErrCancelled.
func New(ctx context.Context, cfg Config) *Session {
	sctx, cancel := context.WithCancel(ctx)
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	buckets := cfg.WindowBuckets
	if buckets < 1 {
		buckets = 1
	}
	return &Session{
		id:           cfg.ID,
		opts:         cfg.Options,
		budget:       cfg.Budget,
		cap:          lifetimeCap(cfg.Budget),
		shards:       shards,
		ctx:          sctx,
		cancel:       cancel,
		window:       noise.NewWindow(buckets),
		streamEvents: stats.NewRolling(buckets),
	}
}

// ID returns the tenant identifier.
func (s *Session) ID() string { return s.id }

// Evicted reports whether the tenant has exhausted its lifetime budget.
func (s *Session) Evicted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// Close cancels the session context, aborting any in-flight analysis.
// The session's window and counters stay readable.
func (s *Session) Close() { s.cancel() }

// streamBudget computes the budget for the next stream: the per-stream
// caps from Options, clamped to the remaining lifetime allowance and,
// when sampleEvents > 0 (overload degradation), to that sample size.
// The second result is false when the lifetime budget is exhausted.
func (s *Session) streamBudget(sampleEvents uint64) (noise.Budget, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.evicted {
		return noise.Budget{}, false
	}
	remaining := ^uint64(0)
	if s.cap != ^uint64(0) {
		if s.consumed >= s.cap {
			s.evicted = true
			return noise.Budget{}, false
		}
		remaining = s.cap - s.consumed
	}
	b := s.opts.Budget
	if b.MaxInterruptions == 0 {
		b.MaxInterruptions = s.budget.MaxInterruptions
	}
	if remaining != ^uint64(0) && (b.MaxEvents == 0 || b.MaxEvents > remaining) {
		b.MaxEvents = remaining
	}
	if sampleEvents > 0 && (b.MaxEvents == 0 || b.MaxEvents > sampleEvents) {
		b.MaxEvents = sampleEvents
	}
	return b, true
}

// Ingest runs one streaming analysis over d and folds the resulting
// Report into the rolling window. ctx bounds this stream only; the
// session context bounds the tenant (eviction and daemon shutdown
// cancel it). sampleEvents > 0 degrades the stream to a sampled prefix
// of that many events — the router's overload escape valve. The
// returned Report is the caller's to inspect; the window keeps its own
// aggregates.
func (s *Session) Ingest(ctx context.Context, d *trace.Decoder, sampleEvents uint64) (*noise.Report, error) {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()

	budget, ok := s.streamBudget(sampleEvents)
	if !ok {
		s.cancel()
		return nil, fmt.Errorf("%w: tenant %s", ErrEvicted, s.id)
	}
	// A closed or daemon-cancelled session refuses deterministically
	// rather than racing AfterFunc against a short analysis.
	if err := s.ctx.Err(); err != nil {
		s.mu.Lock()
		s.streams++
		s.errors++
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: tenant %s: %w", noise.ErrCancelled, s.id, err)
	}

	// Tie the stream context to the session context without leaking a
	// goroutine per stream: AfterFunc fires cancel if the session dies
	// mid-analysis, and stop() detaches it on the way out.
	ictx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := context.AfterFunc(s.ctx, cancel)
	defer stop()

	opts := s.opts
	opts.Budget = budget
	rep, err := noise.AnalyzeStream(ictx, d, opts, s.shards)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.streams++
	if err != nil {
		s.errors++
		return rep, err
	}
	if sampleEvents > 0 {
		s.sampled++
	}
	s.consumed += rep.EventsConsumed
	s.window.Add(rep)
	s.streamEvents.Add(int64(rep.EventsConsumed))
	if s.cap != ^uint64(0) && s.consumed >= s.cap {
		s.evicted = true
		s.cancel()
	}
	return rep, nil
}

// snapshotLocked builds a Status; callers hold mu.
func (s *Session) snapshotLocked() Status {
	remaining := ^uint64(0)
	if s.cap != ^uint64(0) {
		if s.consumed < s.cap {
			remaining = s.cap - s.consumed
		} else {
			remaining = 0
		}
	}
	return Status{
		ID:           s.id,
		Window:       s.window.Merged(),
		StreamEvents: s.streamEvents.Merged(),
		Consumed:     s.consumed,
		Remaining:    remaining,
		Streams:      s.streams,
		Errors:       s.errors,
		Sampled:      s.sampled,
		Evicted:      s.evicted,
	}
}

// Status snapshots the session without advancing the window.
func (s *Session) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

// Cut snapshots the session and then rotates the rolling window — the
// flush-interval operation: the returned Status covers the window up to
// and including the interval just ended.
func (s *Session) Cut() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.snapshotLocked()
	s.window.Rotate()
	s.streamEvents.Rotate()
	return st
}
