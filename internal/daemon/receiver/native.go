package receiver

// The native streaming protocol, NOISED/1.
//
// One TCP connection carries one tenant's traces back to back:
//
//	client → server   "NOISED/1 <tenant>\n"
//	repeat per trace:
//	  client → server   frames: 4-byte big-endian payload length,
//	                    then that many bytes; payloads concatenate
//	                    into one LTTNOISE trace stream; a zero-length
//	                    frame ends the trace
//	  server → client   "OK events=<n> noise_ns=<n> incomplete=<0|1> sampled=<0|1>\n"
//	                    or "ERR <code> <message>\n"
//	client closes (or half-closes) when done; EOF between traces is
//	the clean end of the connection.
//
// The framing layer is independent of trace content, so a trace-level
// failure (corrupt payload, evicted tenant, budget truncation) only
// costs that trace: the pump discards the remaining frames of the
// current trace to stay in sync and the connection keeps going. Only
// framing-level damage (oversized frame, short read, socket error)
// ends the connection.
//
// The per-connection Decoder is Reset between traces, so the header
// scratch, bufio reader and event staging buffer are reused for the
// connection's whole lifetime — allocation per trace stays flat.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"osnoise/internal/daemon/router"
	"osnoise/internal/daemon/tenant"
	"osnoise/internal/noise"
	"osnoise/internal/trace"
)

// protocol framing constants.
const (
	// protoHeader opens every native connection.
	protoHeader = "NOISED/1"
	// maxHeaderLine bounds the greeting line.
	maxHeaderLine = 16 + maxTenantLen
	// maxFrame bounds one frame payload (16 MiB): large enough for
	// any sane chunking, small enough that a hostile length cannot
	// commit the server to gigabytes.
	maxFrame = 16 << 20
	// copyChunk is the pump's staging buffer size.
	copyChunk = 32 << 10
)

// errIngestDone is the pipe-close cause when the analysis stopped
// reading before the trace's frames ran out — expected under budget
// truncation; the pump switches to discarding.
var errIngestDone = errors.New("receiver: ingest finished early")

// protoErrf builds a connection-fatal protocol error. The hot frame
// pump only reaches it through the errFrame* coldpath barriers.
func protoErrf(format string, args ...any) error {
	return fmt.Errorf("receiver native: "+format, args...)
}

// NativeConfig tunes the native receiver.
type NativeConfig struct {
	// IdleTimeout bounds the wait for the next frame or header on an
	// idle connection; zero means 5 minutes.
	IdleTimeout time.Duration
}

// Native is the daemon's streaming receiver: a bound TCP listener
// whose connections speak NOISED/1.
type Native struct {
	ln    net.Listener
	ing   Ingestor
	cfg   NativeConfig
	drain atomic.Bool

	// mu guards the connection registry used to force-close laggards
	// at the drain deadline. Innermost daemon lock on this path.
	//noisevet:lockrank daemon 4
	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// NewNative binds addr and returns a native receiver feeding ing.
func NewNative(addr string, ing Ingestor, cfg NativeConfig) (*Native, error) {
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 5 * time.Minute
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("receiver native: %w", err)
	}
	return &Native{ln: ln, ing: ing, cfg: cfg, conns: make(map[net.Conn]struct{})}, nil
}

// Addr returns the bound listen address.
func (n *Native) Addr() string { return n.ln.Addr().String() }

// track registers a live connection.
func (n *Native) track(c net.Conn) {
	n.mu.Lock()
	n.conns[c] = struct{}{}
	n.mu.Unlock()
}

// untrack removes a finished connection.
func (n *Native) untrack(c net.Conn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

// active returns the number of live connections.
func (n *Native) active() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.conns)
}

// closeConns force-closes every live connection.
func (n *Native) closeConns() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for c := range n.conns {
		_ = c.Close()
	}
}

// Serve accepts connections until Shutdown closes the listener, then
// waits for the connection handlers to finish. ctx bounds the
// analyses the handlers start.
func (n *Native) Serve(ctx context.Context) error {
	var wg sync.WaitGroup
	for {
		c, err := n.ln.Accept()
		if err != nil {
			wg.Wait()
			if n.drain.Load() || ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("receiver native: accept: %w", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.handle(ctx, c)
		}()
	}
}

// Shutdown stops accepting, lets in-flight connections finish their
// current trace (handlers check the drain flag between traces), and
// force-closes whatever is left when ctx expires.
func (n *Native) Shutdown(ctx context.Context) error {
	n.drain.Store(true)
	_ = n.ln.Close()
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for n.active() > 0 {
		select {
		case <-ctx.Done():
			n.closeConns()
			return fmt.Errorf("receiver native: drain: %w", ctx.Err())
		case <-tick.C:
		}
	}
	return nil
}

// readHeaderLine reads the greeting line and returns the tenant ID.
func readHeaderLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", protoErrf("reading header: %w", err)
	}
	if len(line) > maxHeaderLine {
		return "", protoErrf("header line too long")
	}
	line = line[:len(line)-1] // trailing \n
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	if len(line) < len(protoHeader)+2 || line[:len(protoHeader)] != protoHeader || line[len(protoHeader)] != ' ' {
		return "", protoErrf("bad greeting %q", line)
	}
	id := line[len(protoHeader)+1:]
	if !ValidTenant(id) {
		return "", protoErrf("malformed tenant %q", id)
	}
	return id, nil
}

// pumpFrames is the connection's receive loop: it moves one trace's
// frame payloads from the socket into the analysis pipe. first is the
// already-read length of the trace's first frame. When the analysis
// side stops reading (pw write error), the pump keeps consuming frames
// without forwarding so the connection stays frame-synchronised. A nil
// return means the zero-length end frame was reached; any error is
// connection-fatal framing damage.
//
//noisevet:hotpath
func pumpFrames(br *bufio.Reader, pw *io.PipeWriter, buf []byte, first uint32) error {
	frame := first
	discard := false
	var hdr [4]byte
	for {
		if frame > maxFrame {
			return errFrameTooBig(frame)
		}
		for rem := int(frame); rem > 0; {
			chunk := len(buf)
			if rem < chunk {
				chunk = rem
			}
			if _, err := io.ReadFull(br, buf[:chunk]); err != nil {
				return errFrameRead(err)
			}
			rem -= chunk
			if discard {
				continue
			}
			if _, err := pw.Write(buf[:chunk]); err != nil {
				discard = true
			}
		}
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return errFrameRead(err)
		}
		frame = uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3])
		if frame == 0 {
			return nil
		}
	}
}

// errFrameTooBig reports a frame length beyond the protocol bound.
//
//noisevet:coldpath
func errFrameTooBig(n uint32) error {
	return protoErrf("frame of %d bytes exceeds the %d byte bound", n, int64(maxFrame))
}

// errFrameRead reports framing-level stream damage.
//
//noisevet:coldpath
func errFrameRead(err error) error {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return protoErrf("mid-trace: %w", err)
}

// errCode names an ingest error family on the wire.
func errCode(err error) string {
	switch {
	case errors.Is(err, tenant.ErrEvicted):
		return "evicted"
	case trace.IsInputError(err):
		return "bad-trace"
	case errors.Is(err, noise.ErrCancelled):
		return "cancelled"
	default:
		return "internal"
	}
}

// oneLine flattens an error message for the single-line ERR answer.
func oneLine(s string) string {
	out := []byte(s)
	for i, c := range out {
		if c == '\n' || c == '\r' {
			out[i] = ' '
		}
	}
	return string(out)
}

// runTrace streams one trace into the tenant's analysis session: the
// pump forwards frames into a pipe on this goroutine while the ingest
// goroutine decodes and analyses the other end. Returns the analysis
// answer and, separately, any connection-fatal pump error.
func (n *Native) runTrace(ctx context.Context, id string, d **trace.Decoder, br *bufio.Reader, buf []byte, first uint32) (res router.Result, ingErr, connErr error) {
	pr, pw := io.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var err error
		if *d == nil {
			*d, err = trace.NewDecoder(pr)
		} else {
			err = (*d).Reset(pr)
		}
		if err == nil {
			res, err = n.ing.Ingest(ctx, id, *d)
		}
		ingErr = err
		// Unblock the pump if frames outlast the analysis.
		pr.CloseWithError(errIngestDone)
	}()
	connErr = pumpFrames(br, pw, buf, first)
	if connErr != nil {
		pw.CloseWithError(connErr)
	} else {
		// Clean end of frames: the decoder sees EOF.
		_ = pw.Close()
	}
	wg.Wait()
	return res, ingErr, connErr
}

// handle speaks NOISED/1 on one connection.
func (n *Native) handle(ctx context.Context, c net.Conn) {
	n.track(c)
	defer n.untrack(c)
	defer func() { _ = c.Close() }()

	br := bufio.NewReaderSize(c, 64<<10)
	_ = c.SetReadDeadline(time.Now().Add(n.cfg.IdleTimeout))
	id, err := readHeaderLine(br)
	if err != nil {
		fmt.Fprintf(c, "ERR proto %s\n", oneLine(err.Error()))
		return
	}

	var d *trace.Decoder
	buf := make([]byte, copyChunk)
	var hdr [4]byte
	for {
		if n.drain.Load() || ctx.Err() != nil {
			return
		}
		_ = c.SetReadDeadline(time.Now().Add(n.cfg.IdleTimeout))
		// The first frame header doubles as the keepalive point: EOF
		// here is the clean end of the connection.
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err != io.EOF {
				fmt.Fprintf(c, "ERR proto %s\n", oneLine(err.Error()))
			}
			return
		}
		first := uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3])
		if first == 0 {
			fmt.Fprintf(c, "ERR proto empty trace\n")
			continue
		}
		res, ingErr, connErr := n.runTrace(ctx, id, &d, br, buf, first)
		if connErr != nil {
			fmt.Fprintf(c, "ERR proto %s\n", oneLine(connErr.Error()))
			return
		}
		if ingErr != nil {
			fmt.Fprintf(c, "ERR %s %s\n", errCode(ingErr), oneLine(ingErr.Error()))
			continue
		}
		incomplete, sampled := 0, 0
		if res.Incomplete {
			incomplete = 1
		}
		if res.Sampled {
			sampled = 1
		}
		fmt.Fprintf(c, "OK events=%d noise_ns=%d incomplete=%d sampled=%d\n",
			res.Events, res.NoiseNS, incomplete, sampled)
	}
}
