// Package receiver accepts traces into the noised daemon.
//
// Two transports feed the same Ingestor (the router): an HTTP API
// (POST a whole trace file per request) and a native length-prefixed
// streaming protocol over TCP (docs/DAEMON.md describes the framing).
// Receivers own listener lifecycle — bind in the constructor so the
// address is known, Serve until shut down, drain in-flight work on
// Shutdown — and map the router's typed error families onto wire
// answers (HTTP status codes, native ERR codes).
package receiver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"osnoise/internal/daemon/router"
	"osnoise/internal/daemon/tenant"
	"osnoise/internal/noise"
	"osnoise/internal/trace"
)

// Ingestor routes one decoded stream to a tenant — implemented by
// *router.Router; tests substitute fakes.
type Ingestor interface {
	// Ingest analyses the decoder's trace under the named tenant.
	Ingest(ctx context.Context, tenant string, d *trace.Decoder) (router.Result, error)
}

// maxTenantLen bounds tenant identifiers on every transport.
const maxTenantLen = 128

// ValidTenant reports whether s is a legal tenant identifier:
// 1–128 characters from [A-Za-z0-9._-].
func ValidTenant(s string) bool {
	if len(s) == 0 || len(s) > maxTenantLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// statusOf maps an ingest error onto an HTTP status code: 429 for
// evicted tenants, 400 for bad input, 503 for cancellation (shutdown
// or client disconnect), 500 otherwise.
func statusOf(err error) int {
	switch {
	case errors.Is(err, tenant.ErrEvicted):
		return http.StatusTooManyRequests
	case trace.IsInputError(err):
		return http.StatusBadRequest
	case errors.Is(err, noise.ErrCancelled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// ingestResponse is the JSON body of an ingest answer.
type ingestResponse struct {
	// Result echoes the router's per-stream answer.
	router.Result
	// Error carries the failure message on non-2xx answers.
	Error string `json:"error,omitempty"`
}

// writeJSON sends v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// IngestHandler serves POST /v1/ingest?tenant=<id>: the request body is
// one LTTNOISE trace (raw or compressed), analysed synchronously; the
// answer is the stream's Result as JSON.
func IngestHandler(ing Ingestor) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, ingestResponse{Error: "POST only"})
			return
		}
		id := r.URL.Query().Get("tenant")
		if !ValidTenant(id) {
			writeJSON(w, http.StatusBadRequest, ingestResponse{Error: "missing or malformed tenant parameter"})
			return
		}
		d, err := trace.NewDecoder(r.Body)
		if err != nil {
			writeJSON(w, statusOf(err), ingestResponse{Result: router.Result{Tenant: id}, Error: err.Error()})
			return
		}
		res, err := ing.Ingest(r.Context(), id, d)
		if err != nil {
			writeJSON(w, statusOf(err), ingestResponse{Result: res, Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, ingestResponse{Result: res})
	})
}

// NewMux assembles the daemon's HTTP surface: /v1/ingest, /v1/tenants,
// /healthz and, when metrics is non-nil, /metrics.
func NewMux(ing Ingestor, metrics http.Handler, tenants func() []tenant.Status) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/v1/ingest", IngestHandler(ing))
	mux.HandleFunc("/v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		ts := tenants()
		if ts == nil {
			ts = []tenant.Status{}
		}
		writeJSON(w, http.StatusOK, ts)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if metrics != nil {
		mux.Handle("/metrics", metrics)
	}
	return mux
}

// HTTP is the daemon's HTTP receiver: a bound listener plus the server
// that drains it.
type HTTP struct {
	srv *http.Server
	ln  net.Listener
}

// NewHTTP binds addr and returns a receiver serving h on it.
func NewHTTP(addr string, h http.Handler) (*HTTP, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("receiver http: %w", err)
	}
	return &HTTP{
		srv: &http.Server{Handler: h, ReadHeaderTimeout: 10 * time.Second},
		ln:  ln,
	}, nil
}

// Addr returns the bound listen address.
func (h *HTTP) Addr() string { return h.ln.Addr().String() }

// Serve blocks serving requests until Shutdown; a graceful shutdown
// returns nil.
func (h *HTTP) Serve() error {
	if err := h.srv.Serve(h.ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("receiver http: %w", err)
	}
	return nil
}

// Shutdown stops accepting and waits for in-flight requests until ctx
// expires, then force-closes the remaining connections.
func (h *HTTP) Shutdown(ctx context.Context) error {
	if err := h.srv.Shutdown(ctx); err != nil {
		_ = h.srv.Close()
		return fmt.Errorf("receiver http: drain: %w", err)
	}
	return nil
}
