package receiver_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"osnoise/internal/daemon/daemontest"
	"osnoise/internal/daemon/receiver"
	"osnoise/internal/daemon/router"
	"osnoise/internal/noise"
	"osnoise/internal/trace"
)

// newRouter builds an unconstrained router for receiver tests.
func newRouter() *router.Router {
	return router.New(router.Config{MaxConcurrent: 16})
}

// dialNative starts a native receiver, serves it in the background and
// returns a connected client plus a shutdown func.
func dialNative(t *testing.T, ing receiver.Ingestor) (net.Conn, func()) {
	t.Helper()
	n, err := receiver.NewNative("127.0.0.1:0", ing, receiver.NativeConfig{IdleTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- n.Serve(ctx) }()
	c, err := net.Dial("tcp", n.Addr())
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	return c, func() {
		_ = c.Close()
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		if err := n.Shutdown(sctx); err != nil {
			t.Errorf("native shutdown: %v", err)
		}
		cancel()
		if err := <-done; err != nil {
			t.Errorf("native serve: %v", err)
		}
	}
}

// TestNativeRoundTrip streams three traces back to back on one
// connection — exercising Decoder.Reset session reuse — and checks the
// tenant's window is bit-identical to the batch fold.
func TestNativeRoundTrip(t *testing.T) {
	rt := newRouter()
	defer func() { _ = rt.Close(context.Background()) }()
	c, shutdown := dialNative(t, rt)
	defer shutdown()

	opts := noise.DefaultOptions()
	opts.KeepDurations = false

	if _, err := c.Write(daemontest.Greeting("acme")); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(c)
	var want noise.WindowSummary
	for seed := uint64(1); seed <= 3; seed++ {
		tr := daemontest.Trace(seed)
		rep := noise.Analyze(tr, opts)
		want.AddReport(rep)
		// Vary the chunking: tiny frames, one big frame, odd size.
		chunk := []int{777, 1 << 20, 4096}[seed-1]
		if _, err := c.Write(daemontest.Frames(daemontest.Encode(tr), chunk)); err != nil {
			t.Fatal(err)
		}
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		wantLine := fmt.Sprintf("OK events=%d noise_ns=%d incomplete=0 sampled=0\n",
			rep.EventsConsumed, rep.TotalNoiseNS)
		if line != wantLine {
			t.Fatalf("trace %d answer %q, want %q", seed, line, wantLine)
		}
	}
	sts := rt.Tenants()
	if len(sts) != 1 || sts[0].ID != "acme" {
		t.Fatalf("tenants after round trip: %+v", sts)
	}
	got := sts[0].Window
	if got.Reports != 3 || got.TotalNoiseNS != want.TotalNoiseNS || got.EventsConsumed != want.EventsConsumed {
		t.Fatalf("window diverges from batch fold:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestNativeErrorResync: a corrupt trace earns an ERR answer but the
// connection stays usable for the next, well-formed trace.
func TestNativeErrorResync(t *testing.T) {
	rt := newRouter()
	defer func() { _ = rt.Close(context.Background()) }()
	c, shutdown := dialNative(t, rt)
	defer shutdown()

	if _, err := c.Write(daemontest.Greeting("acme")); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(c)

	// Garbage payload: valid framing, invalid trace.
	if _, err := c.Write(daemontest.Frames([]byte("this is not a trace at all, not even close"), 7)); err != nil {
		t.Fatal(err)
	}
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "ERR bad-trace ") {
		t.Fatalf("corrupt trace answer %q, want ERR bad-trace", line)
	}

	// The same connection still ingests a good trace.
	tr := daemontest.Trace(2)
	if _, err := c.Write(daemontest.Frames(daemontest.Encode(tr), 8192)); err != nil {
		t.Fatal(err)
	}
	line, err = br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "OK ") {
		t.Fatalf("post-error trace answer %q, want OK", line)
	}
}

// TestNativeProtocolErrors: a bad greeting and an oversized frame both
// end the connection with an ERR proto answer.
func TestNativeProtocolErrors(t *testing.T) {
	rt := newRouter()
	defer func() { _ = rt.Close(context.Background()) }()

	t.Run("greeting", func(t *testing.T) {
		c, shutdown := dialNative(t, rt)
		defer shutdown()
		if _, err := c.Write([]byte("HELLO nope\n")); err != nil {
			t.Fatal(err)
		}
		line, err := bufio.NewReader(c).ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(line, "ERR proto ") {
			t.Fatalf("bad greeting answer %q", line)
		}
	})
	t.Run("frame-too-big", func(t *testing.T) {
		c, shutdown := dialNative(t, rt)
		defer shutdown()
		if _, err := c.Write(daemontest.Greeting("acme")); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write([]byte{0xff, 0xff, 0xff, 0xff}); err != nil {
			t.Fatal(err)
		}
		line, err := bufio.NewReader(c).ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(line, "ERR proto ") {
			t.Fatalf("oversized frame answer %q", line)
		}
	})
}

// TestNativeConnSoak: a socket-level soak — many concurrent NOISED/1
// connections, several traces each, no leaked goroutines after drain.
func TestNativeConnSoak(t *testing.T) {
	const (
		conns          = 32
		tracesPerConn  = 3
		distinctTraces = 4
	)
	payloads := make([][]byte, distinctTraces)
	for i := range payloads {
		payloads[i] = daemontest.Frames(daemontest.Encode(daemontest.Trace(uint64(i+1))), 16384)
	}

	baseline := runtime.NumGoroutine()
	rt := router.New(router.Config{MaxConcurrent: 8})
	n, err := receiver.NewNative("127.0.0.1:0", rt, receiver.NativeConfig{IdleTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- n.Serve(ctx) }()

	var wg sync.WaitGroup
	errC := make(chan error, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := net.Dial("tcp", n.Addr())
			if err != nil {
				errC <- err
				return
			}
			defer func() { _ = c.Close() }()
			if _, err := c.Write(daemontest.Greeting(fmt.Sprintf("soak-%02d", i))); err != nil {
				errC <- err
				return
			}
			br := bufio.NewReader(c)
			for k := 0; k < tracesPerConn; k++ {
				if _, err := c.Write(payloads[(i+k)%distinctTraces]); err != nil {
					errC <- fmt.Errorf("conn %d trace %d: %w", i, k, err)
					return
				}
				line, err := br.ReadString('\n')
				if err != nil {
					errC <- fmt.Errorf("conn %d trace %d: %w", i, k, err)
					return
				}
				if !strings.HasPrefix(line, "OK ") {
					errC <- fmt.Errorf("conn %d trace %d: %s", i, k, line)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errC)
	for err := range errC {
		t.Fatal(err)
	}

	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := n.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := rt.Streams(); got != conns*tracesPerConn {
		t.Fatalf("streams = %d, want %d", got, conns*tracesPerConn)
	}
	if err := rt.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, baseline)
}

// waitGoroutines polls until the goroutine count returns to baseline.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d live, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHTTPIngest: the HTTP API analyses a POSTed trace, answers JSON,
// and maps bad input and bad tenants to 400.
func TestHTTPIngest(t *testing.T) {
	rt := newRouter()
	defer func() { _ = rt.Close(context.Background()) }()
	mux := receiver.NewMux(rt, nil, rt.Tenants)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	tr := daemontest.Trace(1)
	opts := noise.DefaultOptions()
	opts.KeepDurations = false
	rep := noise.Analyze(tr, opts)

	resp, err := http.Post(srv.URL+"/v1/ingest?tenant=acme", "application/octet-stream",
		bytes.NewReader(daemontest.Encode(tr)))
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		router.Result
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %+v", resp.StatusCode, res)
	}
	if res.Tenant != "acme" || res.Events != rep.EventsConsumed || res.NoiseNS != rep.TotalNoiseNS {
		t.Fatalf("ingest result %+v, want events=%d noise=%d", res, rep.EventsConsumed, rep.TotalNoiseNS)
	}

	// Bad tenant and bad payload → 400.
	resp, err = http.Post(srv.URL+"/v1/ingest?tenant=bad/slash", "application/octet-stream",
		bytes.NewReader(daemontest.Encode(tr)))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad tenant status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/ingest?tenant=acme", "application/octet-stream",
		strings.NewReader("not a trace"))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad payload status %d, want 400", resp.StatusCode)
	}

	// The status endpoint shows the tenant.
	resp, err = http.Get(srv.URL + "/v1/tenants")
	if err != nil {
		t.Fatal(err)
	}
	var sts []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&sts); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if len(sts) != 1 || sts[0]["ID"] != "acme" {
		t.Fatalf("/v1/tenants = %+v", sts)
	}
}

// TestValidTenant pins the tenant-identifier grammar both transports
// share.
func TestValidTenant(t *testing.T) {
	for id, want := range map[string]bool{
		"a":                      true,
		"acme-prod_7.2":          true,
		"":                       false,
		"has space":              false,
		"slash/y":                false,
		strings.Repeat("x", 128): true,
		strings.Repeat("x", 129): false,
		"newline\n":              false,
	} {
		if got := receiver.ValidTenant(id); got != want {
			t.Errorf("ValidTenant(%q) = %v, want %v", id, got, want)
		}
	}
}

// TestDecoderStreamMatchesBatch: the trace decoded through the native
// pipe path produces a report identical to decoding from memory —
// pinning that frame chunking is invisible to the analysis.
func TestDecoderStreamMatchesBatch(t *testing.T) {
	tr := daemontest.Trace(5)
	raw := daemontest.Encode(tr)
	opts := noise.DefaultOptions()
	opts.KeepDurations = false
	want := noise.Analyze(tr, opts)

	rt := newRouter()
	defer func() { _ = rt.Close(context.Background()) }()
	c, shutdown := dialNative(t, rt)
	defer shutdown()
	if _, err := c.Write(daemontest.Greeting("t")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(daemontest.Frames(raw, 333)); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(c).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	wantLine := fmt.Sprintf("OK events=%d noise_ns=%d incomplete=0 sampled=0\n",
		want.EventsConsumed, want.TotalNoiseNS)
	if line != wantLine {
		t.Fatalf("native answer %q, want %q", line, wantLine)
	}
	// Belt and braces: the decoder API used by the pipe path agrees.
	d, err := trace.NewDecoder(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	got, err := noise.AnalyzeStream(context.Background(), d, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalNoiseNS != want.TotalNoiseNS || got.EventsConsumed != want.EventsConsumed {
		t.Fatalf("stream/batch divergence: %d/%d vs %d/%d",
			got.TotalNoiseNS, got.EventsConsumed, want.TotalNoiseNS, want.EventsConsumed)
	}
}
