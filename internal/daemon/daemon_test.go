package daemon_test

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"osnoise/internal/daemon"
	"osnoise/internal/daemon/daemontest"
	"osnoise/internal/daemon/router"
	"osnoise/internal/daemon/sink"
)

// waitGoroutines polls until the goroutine count returns to baseline.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d live, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDaemonEndToEnd boots a full daemon on loopback, ingests over both
// transports, scrapes /metrics, then drains it and checks for a clean,
// leak-free exit — the lifecycle the operator guide documents.
func TestDaemonEndToEnd(t *testing.T) {
	baseline := runtime.NumGoroutine()
	var out bytes.Buffer
	prom := sink.NewProm()
	d, err := daemon.New(daemon.Config{
		HTTPAddr:   "127.0.0.1:0",
		NativeAddr: "127.0.0.1:0",
		Router:     router.Config{MaxConcurrent: 8, Now: func() int64 { return 7 }},
		Sinks:      []sink.Sink{prom, sink.NewWriter("buffer", &out)},
		// A short flush interval so the test sees rotations.
		FlushInterval: 50 * time.Millisecond,
		DrainTimeout:  5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runDone <- d.Run(ctx)
	}()

	raw := daemontest.Encode(daemontest.Trace(1))

	// HTTP ingest.
	resp, err := http.Post("http://"+d.HTTPAddr()+"/v1/ingest?tenant=web", "application/octet-stream",
		bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("http ingest status %d", resp.StatusCode)
	}

	// Native ingest on the same daemon.
	c, err := net.Dial("tcp", d.NativeAddr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(daemontest.Greeting("batch")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(daemontest.Frames(raw, 4096)); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(c).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "OK ") {
		t.Fatalf("native answer %q", line)
	}
	_ = c.Close()

	// A flush lands both tenants in the scrape page.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err = http.Get("http://" + d.HTTPAddr() + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var body bytes.Buffer
		_, _ = body.ReadFrom(resp.Body)
		_ = resp.Body.Close()
		if strings.Contains(body.String(), `noised_tenant_streams_total{tenant="web"} 1`) &&
			strings.Contains(body.String(), `noised_tenant_streams_total{tenant="batch"} 1`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenants never reached /metrics:\n%s", body.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// SIGTERM-equivalent: cancel Run's context → graceful drain.
	cancel()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run returned %v, want clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	wg.Wait()
	waitGoroutines(t, baseline)

	// The line sink saw the flushed tenants (final flush included).
	text := out.String()
	for _, tenant := range []string{"noise,tenant=web ", "noise,tenant=batch "} {
		if !strings.Contains(text, tenant) {
			t.Fatalf("line sink output lacks %q:\n%s", tenant, text)
		}
	}
	if !strings.Contains(text, " 7\n") {
		t.Fatalf("line sink rows missing the injected flush clock:\n%s", text)
	}
}

// TestDaemonDrainWaitsForInFlight: a native stream still in progress
// when shutdown starts completes and gets its OK before the daemon
// exits.
func TestDaemonDrainWaitsForInFlight(t *testing.T) {
	d, err := daemon.New(daemon.Config{
		NativeAddr:    "127.0.0.1:0",
		Router:        router.Config{MaxConcurrent: 4},
		FlushInterval: time.Hour, // keep flushes out of the picture
		DrainTimeout:  10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- d.Run(ctx) }()

	c, err := net.Dial("tcp", d.NativeAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if _, err := c.Write(daemontest.Greeting("slow")); err != nil {
		t.Fatal(err)
	}
	// Send all frames but the end marker, trigger shutdown, then finish
	// the trace: the drain must wait for the in-flight stream.
	payload := daemontest.Frames(daemontest.Encode(daemontest.Trace(2)), 4096)
	split := len(payload) - 4
	if _, err := c.Write(payload[:split]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the frames reach the pump
	cancel()
	time.Sleep(50 * time.Millisecond) // let the drain begin
	if _, err := c.Write(payload[split:]); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(c).ReadString('\n')
	if err != nil {
		t.Fatalf("in-flight stream answer lost during drain: %v", err)
	}
	if !strings.HasPrefix(line, "OK ") {
		t.Fatalf("in-flight stream answer %q, want OK", line)
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run returned %v, want clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after drain")
	}
}

// TestDaemonConfigErrors: a daemon with no receivers or a doomed bind
// fails fast in New.
func TestDaemonConfigErrors(t *testing.T) {
	if _, err := daemon.New(daemon.Config{}); err == nil {
		t.Fatal("New with no receivers succeeded")
	}
	if _, err := daemon.New(daemon.Config{HTTPAddr: "256.0.0.1:bad"}); err == nil {
		t.Fatal("New with an unusable HTTP address succeeded")
	}
	if _, err := daemon.New(daemon.Config{NativeAddr: "256.0.0.1:bad"}); err == nil {
		t.Fatal("New with an unusable native address succeeded")
	}
}

// TestDaemonSoakMixedTransports: a small end-to-end soak with both
// transports live at once; used by scripts/ci.sh as the daemon smoke.
func TestDaemonSoakMixedTransports(t *testing.T) {
	baseline := runtime.NumGoroutine()
	d, err := daemon.New(daemon.Config{
		HTTPAddr:      "127.0.0.1:0",
		NativeAddr:    "127.0.0.1:0",
		Router:        router.Config{MaxConcurrent: 8},
		FlushInterval: 20 * time.Millisecond,
		DrainTimeout:  10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- d.Run(ctx) }()

	raw := daemontest.Encode(daemontest.Trace(3))
	framed := daemontest.Frames(raw, 8192)
	const workers = 8
	var wg sync.WaitGroup
	errC := make(chan error, workers*4)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("mixed-%d", w)
			if w%2 == 0 {
				for k := 0; k < 2; k++ {
					resp, err := http.Post("http://"+d.HTTPAddr()+"/v1/ingest?tenant="+id,
						"application/octet-stream", bytes.NewReader(raw))
					if err != nil {
						errC <- err
						return
					}
					_ = resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errC <- fmt.Errorf("%s: status %d", id, resp.StatusCode)
					}
				}
				return
			}
			c, err := net.Dial("tcp", d.NativeAddr())
			if err != nil {
				errC <- err
				return
			}
			defer func() { _ = c.Close() }()
			if _, err := c.Write(daemontest.Greeting(id)); err != nil {
				errC <- err
				return
			}
			br := bufio.NewReader(c)
			for k := 0; k < 2; k++ {
				if _, err := c.Write(framed); err != nil {
					errC <- err
					return
				}
				line, err := br.ReadString('\n')
				if err != nil {
					errC <- err
					return
				}
				if !strings.HasPrefix(line, "OK ") {
					errC <- fmt.Errorf("%s: %s", id, line)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errC)
	for err := range errC {
		t.Fatal(err)
	}
	if got := d.Router().Streams(); got != workers*2 {
		t.Fatalf("streams = %d, want %d", got, workers*2)
	}
	cancel()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Run did not return")
	}
	waitGoroutines(t, baseline)
}
