// Package daemon assembles the noised collector: receivers feeding a
// router of per-tenant analysis sessions, a flush loop cutting rolling
// windows into sink batches, and a graceful drain path.
//
// Lifecycle: New binds the configured listeners (so the addresses are
// known before anything runs), Run serves until its context is
// cancelled, then drains — receivers stop accepting, in-flight streams
// get DrainTimeout to finish, a final flush pushes the last window cut
// to the sinks, and every goroutine the daemon started is joined
// before Run returns. The lock hierarchy across the daemon packages is
// the "daemon" lockrank: router registry (1) → tenant ingest (2) →
// tenant state (3) → receiver conn registry (4) → sink internals (5).
package daemon

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"osnoise/internal/daemon/receiver"
	"osnoise/internal/daemon/router"
	"osnoise/internal/daemon/sink"
)

// Config assembles a daemon.
type Config struct {
	// HTTPAddr is the HTTP listen address; empty disables HTTP.
	HTTPAddr string
	// NativeAddr is the NOISED/1 listen address; empty disables it.
	NativeAddr string
	// Router tunes the tenant router (budgets, shards, overload).
	Router router.Config
	// Native tunes the streaming receiver.
	Native receiver.NativeConfig
	// Sinks receive flush batches. A *sink.Prom among them is also
	// mounted at /metrics on the HTTP receiver.
	Sinks []sink.Sink
	// FlushInterval is the window rotation period; values <= 0 become
	// 10 seconds.
	FlushInterval time.Duration
	// DrainTimeout bounds the shutdown grace period; values <= 0
	// become 5 seconds.
	DrainTimeout time.Duration
}

// Daemon is an assembled noised instance.
type Daemon struct {
	cfg    Config
	rt     *router.Router
	http   *receiver.HTTP
	native *receiver.Native
}

// New validates cfg, builds the router, and binds the configured
// listeners. At least one receiver must be enabled.
func New(cfg Config) (*Daemon, error) {
	if cfg.HTTPAddr == "" && cfg.NativeAddr == "" {
		return nil, fmt.Errorf("daemon: no receivers configured")
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 10 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	d := &Daemon{cfg: cfg, rt: router.New(cfg.Router, cfg.Sinks...)}
	if cfg.HTTPAddr != "" {
		var metrics *sink.Prom
		for _, s := range cfg.Sinks {
			if p, ok := s.(*sink.Prom); ok {
				metrics = p
				break
			}
		}
		var metricsHandler http.Handler
		if metrics != nil {
			metricsHandler = metrics
		}
		mux := receiver.NewMux(d.rt, metricsHandler, d.rt.Tenants)
		h, err := receiver.NewHTTP(cfg.HTTPAddr, mux)
		if err != nil {
			return nil, err
		}
		d.http = h
	}
	if cfg.NativeAddr != "" {
		n, err := receiver.NewNative(cfg.NativeAddr, d.rt, cfg.Native)
		if err != nil {
			d.closeListeners()
			return nil, err
		}
		d.native = n
	}
	return d, nil
}

// Router exposes the daemon's router (tests and the status endpoint).
func (d *Daemon) Router() *router.Router { return d.rt }

// HTTPAddr returns the bound HTTP address, or "" when disabled.
func (d *Daemon) HTTPAddr() string {
	if d.http == nil {
		return ""
	}
	return d.http.Addr()
}

// NativeAddr returns the bound native address, or "" when disabled.
func (d *Daemon) NativeAddr() string {
	if d.native == nil {
		return ""
	}
	return d.native.Addr()
}

// closeListeners shuts any receiver bound so far (New error path).
func (d *Daemon) closeListeners() {
	if d.http != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_ = d.http.Shutdown(ctx)
		cancel()
	}
}

// Run serves until ctx is cancelled or a receiver fails, then drains:
// stop accepting, give in-flight streams DrainTimeout, cut a final
// flush, close the sinks. Every goroutine Run starts is joined before
// it returns; a clean drain returns nil.
func (d *Daemon) Run(ctx context.Context) error {
	// Receivers' in-flight analyses run under their own context so a
	// SIGTERM does not kill streams mid-trace; the drain deadline
	// cancels it for stragglers.
	ictx, icancel := context.WithCancel(context.Background())
	defer icancel()

	flushStop := make(chan struct{})
	errs := make(chan error, 2)
	var wg sync.WaitGroup
	if d.http != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- d.http.Serve()
		}()
	}
	if d.native != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- d.native.Serve(ictx)
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		d.flushLoop(ictx, flushStop)
	}()

	var runErr error
	select {
	case <-ctx.Done():
	case err := <-errs:
		runErr = err
	}

	dctx, dcancel := context.WithTimeout(context.Background(), d.cfg.DrainTimeout)
	defer dcancel()
	var drainErrs []error
	if d.http != nil {
		if err := d.http.Shutdown(dctx); err != nil {
			drainErrs = append(drainErrs, err)
		}
	}
	if d.native != nil {
		if err := d.native.Shutdown(dctx); err != nil {
			drainErrs = append(drainErrs, err)
		}
	}
	close(flushStop)
	icancel() // cut anything still running past the drain deadline
	wg.Wait()

	// Drain the receiver error slots so nothing is silently lost.
	for {
		select {
		case err := <-errs:
			if err != nil && runErr == nil {
				runErr = err
			}
			continue
		default:
		}
		break
	}

	fctx, fcancel := context.WithTimeout(context.Background(), d.cfg.DrainTimeout)
	defer fcancel()
	closeErr := d.rt.Close(fctx)
	return errors.Join(runErr, errors.Join(drainErrs...), closeErr)
}

// flushLoop rotates the windows into the sinks once per interval.
func (d *Daemon) flushLoop(ctx context.Context, stop <-chan struct{}) {
	tick := time.NewTicker(d.cfg.FlushInterval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			_ = d.rt.Flush(ctx)
		}
	}
}
