// Package router multiplexes ingest streams onto per-tenant sessions
// and drives the flush cycle.
//
// The router is the daemon's control plane: receivers hand it (tenant,
// decoder) pairs; it finds or creates the tenant.Session, applies the
// global concurrency gate, and returns a compact Result. Once per
// flush interval the daemon calls Flush, which cuts every tenant's
// rolling window into a sink.Record batch and fans it out to the
// configured sinks.
//
// Overload never fails a stream outright: analyses run under a
// fixed-size slot semaphore, and when the queue of waiters grows past
// MaxPending, newly admitted streams are degraded to a sampled prefix
// (SampleEvents records) instead of being rejected — bounded work,
// graceful answers.
package router

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"osnoise/internal/daemon/sink"
	"osnoise/internal/daemon/tenant"
	"osnoise/internal/noise"
	"osnoise/internal/trace"
)

// Config tunes the router and the tenants it creates.
type Config struct {
	// TenantOptions is the analysis configuration every tenant starts
	// from; the zero value is replaced by noise.DefaultOptions.
	TenantOptions noise.Options
	// TenantBudget is the lifetime ingest cap applied to each tenant
	// (see tenant.Config.Budget). Zero means unlimited.
	TenantBudget noise.Budget
	// Shards is the per-stream analysis parallelism.
	Shards int
	// WindowBuckets is the rolling window width in flush intervals;
	// values below 1 become 6.
	WindowBuckets int
	// MaxConcurrent caps simultaneously running analyses; values below
	// 1 become 4 × GOMAXPROCS.
	MaxConcurrent int
	// MaxPending is the waiter-queue depth beyond which new streams
	// are degraded to sampling. Zero or negative disables degradation
	// (waiters block until a slot frees).
	MaxPending int
	// SampleEvents is the per-stream event cap applied to degraded
	// streams; values below 1 become 65536. Ignored while MaxPending
	// disables degradation.
	SampleEvents uint64
	// Now supplies flush timestamps in Unix nanoseconds; nil defaults
	// to the wall clock. Tests inject a fixed clock.
	Now func() int64
}

// Result is the per-stream answer a receiver reports back to the
// client.
type Result struct {
	// Tenant names the session the stream was charged to.
	Tenant string
	// Events is the number of event records the analysis consumed.
	Events uint64
	// NoiseNS is the stream's total noise in nanoseconds.
	NoiseNS int64
	// Seconds is the analysed trace duration.
	Seconds float64
	// Incomplete reports a budget- or cancel-truncated analysis.
	Incomplete bool
	// Sampled reports overload degradation: the stream was analysed
	// as a sampled prefix.
	Sampled bool
	// Evicted reports that the tenant's lifetime budget is exhausted
	// (set both on the stream that exhausts it and on rejections).
	Evicted bool
}

// Router multiplexes streams onto tenants and flushes their windows to
// sinks. Safe for concurrent use by any number of receiver goroutines.
type Router struct {
	cfg   Config
	root  context.Context
	stop  context.CancelFunc
	slots chan struct{}
	sinks []sink.Sink

	pending atomic.Int64
	streams atomic.Uint64
	sampled atomic.Uint64
	failed  atomic.Uint64

	// mu guards the tenant registry; it is the outermost daemon lock
	// (tenant locks nest strictly inside it during Flush).
	//noisevet:lockrank daemon 1
	mu      sync.Mutex
	tenants map[string]*tenant.Session
	closed  bool
}

// New builds a router fanning flushes out to sinks. Tenants live until
// Close; their analyses abort when Close cancels the root context.
func New(cfg Config, sinks ...sink.Sink) *Router {
	if cfg.TenantOptions.GapNS == 0 && !cfg.TenantOptions.AttributeNesting && !cfg.TenantOptions.RunnableFilter {
		cfg.TenantOptions = noise.DefaultOptions()
	}
	// Interruption detail is per-stream state the daemon aggregates
	// away; keeping full durations per stream would make memory scale
	// with trace size across thousands of tenants.
	cfg.TenantOptions.KeepDurations = false
	if cfg.WindowBuckets < 1 {
		cfg.WindowBuckets = 6
	}
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = 4 * runtime.GOMAXPROCS(0)
	}
	if cfg.SampleEvents < 1 {
		cfg.SampleEvents = 65536
	}
	root, stop := context.WithCancel(context.Background())
	return &Router{
		cfg:     cfg,
		root:    root,
		stop:    stop,
		slots:   make(chan struct{}, cfg.MaxConcurrent),
		sinks:   sinks,
		tenants: make(map[string]*tenant.Session),
	}
}

// session finds or creates the tenant's session.
func (rt *Router) session(id string) (*tenant.Session, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return nil, fmt.Errorf("router: closed")
	}
	s, ok := rt.tenants[id]
	if !ok {
		s = tenant.New(rt.root, tenant.Config{
			ID:            id,
			Options:       rt.cfg.TenantOptions,
			Budget:        rt.cfg.TenantBudget,
			Shards:        rt.cfg.Shards,
			WindowBuckets: rt.cfg.WindowBuckets,
		})
		rt.tenants[id] = s
	}
	return s, nil
}

// acquire takes an analysis slot, reporting whether the stream should
// be degraded to sampling because the waiter queue is past MaxPending.
func (rt *Router) acquire(ctx context.Context) (degraded bool, err error) {
	select {
	case rt.slots <- struct{}{}:
		return false, nil
	default:
	}
	n := rt.pending.Add(1)
	defer rt.pending.Add(-1)
	degraded = rt.cfg.MaxPending > 0 && n > int64(rt.cfg.MaxPending)
	select {
	case rt.slots <- struct{}{}:
		return degraded, nil
	case <-ctx.Done():
		return false, fmt.Errorf("%w: %w", noise.ErrCancelled, ctx.Err())
	}
}

// release returns an analysis slot.
func (rt *Router) release() { <-rt.slots }

// Ingest routes one decoded stream to its tenant and runs the analysis
// under the global concurrency gate. The error, when non-nil, wraps
// one of the typed families receivers map to wire answers:
// tenant.ErrEvicted, trace.ErrCorrupt/ErrLimit, noise.ErrCancelled.
func (rt *Router) Ingest(ctx context.Context, tenantID string, d *trace.Decoder) (Result, error) {
	res := Result{Tenant: tenantID}
	s, err := rt.session(tenantID)
	if err != nil {
		return res, err
	}
	if s.Evicted() {
		res.Evicted = true
		return res, fmt.Errorf("%w: tenant %s", tenant.ErrEvicted, tenantID)
	}
	degraded, err := rt.acquire(ctx)
	if err != nil {
		return res, err
	}
	defer rt.release()

	var sample uint64
	if degraded {
		sample = rt.cfg.SampleEvents
	}
	rep, err := s.Ingest(ctx, d, sample)
	rt.streams.Add(1)
	res.Evicted = s.Evicted()
	if err != nil {
		rt.failed.Add(1)
		if rep != nil {
			res.Events = rep.EventsConsumed
			res.Incomplete = rep.Incomplete
		}
		return res, err
	}
	if degraded {
		rt.sampled.Add(1)
		res.Sampled = true
	}
	res.Events = rep.EventsConsumed
	res.NoiseNS = rep.TotalNoiseNS
	res.Seconds = rep.Seconds
	res.Incomplete = rep.Incomplete
	return res, nil
}

// InFlight returns the number of streams holding or waiting for an
// analysis slot — the drain condition at shutdown.
func (rt *Router) InFlight() int {
	return len(rt.slots) + int(rt.pending.Load())
}

// Streams returns the lifetime ingest count across all tenants.
func (rt *Router) Streams() uint64 { return rt.streams.Load() }

// SampledStreams returns the lifetime overload-degraded ingest count.
func (rt *Router) SampledStreams() uint64 { return rt.sampled.Load() }

// FailedStreams returns the lifetime failed ingest count.
func (rt *Router) FailedStreams() uint64 { return rt.failed.Load() }

// Tenants snapshots every session without advancing any window,
// ordered by tenant ID.
func (rt *Router) Tenants() []tenant.Status {
	sessions := rt.sessions()
	out := make([]tenant.Status, len(sessions))
	for i, s := range sessions {
		out[i] = s.Status()
	}
	return out
}

// sessions returns the live sessions ordered by tenant ID.
func (rt *Router) sessions() []*tenant.Session {
	rt.mu.Lock()
	ids := make([]string, 0, len(rt.tenants))
	for id := range rt.tenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*tenant.Session, len(ids))
	for i, id := range ids {
		out[i] = rt.tenants[id]
	}
	rt.mu.Unlock()
	return out
}

// Flush cuts every tenant's window (snapshot + rotate) into a Record
// batch and emits it to every sink. Sink failures are joined into the
// returned error; analysis state is already rotated either way.
func (rt *Router) Flush(ctx context.Context) error {
	sessions := rt.sessions()
	now := time.Now().UnixNano()
	if rt.cfg.Now != nil {
		now = rt.cfg.Now()
	}
	recs := make([]sink.Record, 0, len(sessions))
	for _, s := range sessions {
		st := s.Cut()
		recs = append(recs, sink.Record{
			Tenant:         st.ID,
			TimeNS:         now,
			Window:         st.Window,
			StreamEvents:   st.StreamEvents,
			Streams:        st.Streams,
			Errors:         st.Errors,
			SampledStreams: st.Sampled,
			Evicted:        st.Evicted,
		})
	}
	var errs []error
	for _, sk := range rt.sinks {
		if err := sk.Emit(ctx, recs); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Close runs a final Flush, cancels every tenant's context and closes
// the sinks. The router accepts no new tenants afterwards.
func (rt *Router) Close(ctx context.Context) error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return nil
	}
	rt.closed = true
	rt.mu.Unlock()

	flushErr := rt.Flush(ctx)
	rt.stop()
	var errs []error
	if flushErr != nil {
		errs = append(errs, flushErr)
	}
	for _, sk := range rt.sinks {
		if err := sk.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
