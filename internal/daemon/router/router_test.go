package router_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"osnoise/internal/daemon/daemontest"
	"osnoise/internal/daemon/router"
	"osnoise/internal/daemon/sink"
	"osnoise/internal/daemon/tenant"
	"osnoise/internal/noise"
	"osnoise/internal/trace"
)

// daemonOptions mirrors the options the router hands tenants.
func daemonOptions() noise.Options {
	opts := noise.DefaultOptions()
	opts.KeepDurations = false
	return opts
}

// ingest streams one encoded trace through the router.
func ingest(t *testing.T, rt *router.Router, id string, raw []byte) (router.Result, error) {
	t.Helper()
	d, err := trace.NewDecoder(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return rt.Ingest(context.Background(), id, d)
}

// waitGoroutines polls until the live goroutine count drops back to
// the baseline, failing after 10 seconds — the leak assertion the soak
// acceptance demands.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d live, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(time.Millisecond)
	}
}

// memorySink retains every batch it is handed.
type memorySink struct {
	mu      sync.Mutex
	batches [][]sink.Record
	closed  bool
}

func (m *memorySink) Name() string { return "memory" }

func (m *memorySink) Emit(_ context.Context, recs []sink.Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := make([]sink.Record, len(recs))
	copy(cp, recs)
	m.batches = append(m.batches, cp)
	return nil
}

func (m *memorySink) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// TestRouterSoak is the acceptance soak: ≥1000 concurrent streams
// across hundreds of tenants under -race, zero leaked goroutines, and
// every tenant's final rolling summary bit-identical to the batch
// analyzer folded over the same events.
func TestRouterSoak(t *testing.T) {
	const (
		tenants          = 250
		streamsPerTenant = 4
		seeds            = 8 // distinct traces, cycled across tenants
	)
	raws := make([][]byte, seeds)
	reports := make([]*noise.Report, seeds)
	for i := range raws {
		tr := daemontest.Trace(uint64(i + 1))
		raws[i] = daemontest.Encode(tr)
		reports[i] = noise.Analyze(tr, daemonOptions())
	}

	baseline := runtime.NumGoroutine()
	mem := &memorySink{}
	rt := router.New(router.Config{
		MaxConcurrent: 32,
		Now:           func() int64 { return 42 },
	}, mem)

	var wg sync.WaitGroup
	errC := make(chan error, tenants*streamsPerTenant)
	for ten := 0; ten < tenants; ten++ {
		id := fmt.Sprintf("tenant-%03d", ten)
		raw := raws[ten%seeds]
		for s := 0; s < streamsPerTenant; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				d, err := trace.NewDecoder(bytes.NewReader(raw))
				if err == nil {
					_, err = rt.Ingest(context.Background(), id, d)
				}
				if err != nil {
					errC <- fmt.Errorf("%s: %w", id, err)
				}
			}()
		}
	}
	wg.Wait()
	close(errC)
	for err := range errC {
		t.Fatal(err)
	}
	if got := rt.Streams(); got != tenants*streamsPerTenant {
		t.Fatalf("stream counter = %d, want %d", got, tenants*streamsPerTenant)
	}
	if rt.InFlight() != 0 {
		t.Fatalf("in-flight = %d after soak", rt.InFlight())
	}

	// Bit-identity: each tenant streamed the same trace 4×, so its
	// window must equal the batch report folded 4× — regardless of the
	// interleaving the soak produced.
	statuses := rt.Tenants()
	if len(statuses) != tenants {
		t.Fatalf("tenant count = %d, want %d", len(statuses), tenants)
	}
	for i, st := range statuses {
		var want noise.WindowSummary
		for s := 0; s < streamsPerTenant; s++ {
			want.AddReport(reports[i%seeds])
		}
		if !reflect.DeepEqual(want, st.Window) {
			t.Fatalf("tenant %s window diverges from batch fold:\nwant %+v\ngot  %+v",
				st.ID, want, st.Window)
		}
	}

	// Flush feeds every tenant to the sink with the injected clock.
	if err := rt.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	mem.mu.Lock()
	batches := len(mem.batches)
	var first sink.Record
	if batches > 0 && len(mem.batches[0]) > 0 {
		first = mem.batches[0][0]
	}
	recCount := 0
	if batches > 0 {
		recCount = len(mem.batches[0])
	}
	mem.mu.Unlock()
	if batches != 1 || recCount != tenants {
		t.Fatalf("flush produced %d batches / %d records, want 1 / %d", batches, recCount, tenants)
	}
	if first.TimeNS != 42 || first.Tenant != "tenant-000" {
		t.Fatalf("first record = %+v, want injected clock and sorted tenants", first)
	}

	if err := rt.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, baseline)
}

// TestRouterOverloadSampling: with one slot and a zero pending
// threshold, queued streams degrade to the sample cap instead of
// failing, and the degradation is visible in Result and counters.
func TestRouterOverloadSampling(t *testing.T) {
	tr := daemontest.Trace(1)
	raw := daemontest.Encode(tr)
	sample := uint64(len(tr.Events)) / 4
	rt := router.New(router.Config{
		MaxConcurrent: 1,
		MaxPending:    1,
		SampleEvents:  sample,
	})
	defer func() { _ = rt.Close(context.Background()) }()

	const streams = 12
	var wg sync.WaitGroup
	results := make([]router.Result, streams)
	errs := make([]error, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := trace.NewDecoder(bytes.NewReader(raw))
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = rt.Ingest(context.Background(), fmt.Sprintf("t%d", i), d)
		}(i)
	}
	wg.Wait()
	sampled := 0
	for i := 0; i < streams; i++ {
		if errs[i] != nil {
			t.Fatalf("stream %d failed under overload: %v", i, errs[i])
		}
		if results[i].Sampled {
			sampled++
			if results[i].Events != sample || !results[i].Incomplete {
				t.Fatalf("degraded stream %d consumed %d events (incomplete=%v), want cap %d",
					i, results[i].Events, results[i].Incomplete, sample)
			}
		} else if results[i].Events != uint64(len(tr.Events)) {
			t.Fatalf("undegraded stream %d consumed %d events, want %d",
				i, results[i].Events, len(tr.Events))
		}
	}
	if sampled == 0 {
		t.Fatal("no stream degraded despite a single slot and 12 waiters")
	}
	if got := rt.SampledStreams(); got != uint64(sampled) {
		t.Fatalf("sampled counter = %d, want %d", got, sampled)
	}
}

// TestRouterEvictionSurfaced: the router reports eviction both on the
// exhausting stream's Result and as ErrEvicted afterwards.
func TestRouterEvictionSurfaced(t *testing.T) {
	tr := daemontest.Trace(1)
	raw := daemontest.Encode(tr)
	rt := router.New(router.Config{
		TenantBudget: noise.Budget{MaxEvents: uint64(len(tr.Events)) / 2},
	})
	defer func() { _ = rt.Close(context.Background()) }()

	res, err := ingest(t, rt, "a", raw)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Evicted || !res.Incomplete {
		t.Fatalf("exhausting stream result = %+v, want evicted+incomplete", res)
	}
	res, err = ingest(t, rt, "a", raw)
	if !errors.Is(err, tenant.ErrEvicted) || !res.Evicted {
		t.Fatalf("post-eviction: res=%+v err=%v, want ErrEvicted", res, err)
	}
	if _, err := ingest(t, rt, "b", raw); err != nil {
		t.Fatalf("other tenant rejected after a's eviction: %v", err)
	}
}

// TestRouterCancelledWaiter: a waiter whose context dies while queued
// gets the typed cancellation error, not a hang.
func TestRouterCancelledWaiter(t *testing.T) {
	raw := daemontest.Encode(daemontest.Trace(1))
	rt := router.New(router.Config{MaxConcurrent: 1})
	defer func() { _ = rt.Close(context.Background()) }()

	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Hold the only slot via a slow decoder: a reader that blocks
		// until released.
		d, err := trace.NewDecoder(&gatedReader{raw: raw, started: started, release: release})
		if err == nil {
			_, _ = rt.Ingest(context.Background(), "slow", d)
		}
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	d, err := trace.NewDecoder(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Ingest(ctx, "fast", d)
	if !errors.Is(err, noise.ErrCancelled) {
		t.Fatalf("queued waiter err = %v, want noise.ErrCancelled", err)
	}
	close(release)
	wg.Wait()
}

// gatedReader serves the header immediately, then blocks the event
// section until released — a stream stalled mid-trace.
type gatedReader struct {
	raw     []byte
	off     int
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gatedReader) Read(p []byte) (int, error) {
	if g.off < 64 {
		n := copy(p, g.raw[g.off:64])
		g.off += n
		return n, nil
	}
	g.once.Do(func() { close(g.started) })
	<-g.release
	if g.off >= len(g.raw) {
		return 0, io.EOF
	}
	n := copy(p, g.raw[g.off:])
	g.off += n
	return n, nil
}
