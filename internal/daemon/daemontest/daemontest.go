// Package daemontest holds shared fixtures for the daemon test suites:
// small deterministic workload traces, their encoded bytes, and
// NOISED/1 frame builders. Test-only; no daemon package imports it
// outside _test files.
package daemontest

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"osnoise/internal/sim"
	"osnoise/internal/trace"
	"osnoise/internal/workload"
)

// Trace synthesises a small deterministic trace: the AMG workload on
// the simulated kernel for a tenth of a simulated second.
func Trace(seed uint64) *trace.Trace {
	return workload.New(workload.AMG(), workload.Options{
		Duration: sim.Second / 10,
		Seed:     seed,
	}).Execute()
}

// Encode returns tr in the LTTNOISE wire format.
func Encode(tr *trace.Trace) []byte {
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		panic(fmt.Sprintf("daemontest: encode: %v", err))
	}
	return buf.Bytes()
}

// Frames wraps payload into NOISED/1 frames of at most chunk bytes
// each, terminated by the zero-length end frame.
func Frames(payload []byte, chunk int) []byte {
	if chunk < 1 {
		chunk = 1
	}
	out := make([]byte, 0, len(payload)+8*(len(payload)/chunk+2))
	var hdr [4]byte
	for len(payload) > 0 {
		n := chunk
		if len(payload) < n {
			n = len(payload)
		}
		binary.BigEndian.PutUint32(hdr[:], uint32(n))
		out = append(out, hdr[:]...)
		out = append(out, payload[:n]...)
		payload = payload[n:]
	}
	binary.BigEndian.PutUint32(hdr[:], 0)
	return append(out, hdr[:]...)
}

// Greeting returns the NOISED/1 connection header line for a tenant.
func Greeting(tenant string) []byte {
	return []byte("NOISED/1 " + tenant + "\n")
}
