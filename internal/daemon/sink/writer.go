package sink

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"
)

// LineWriter ships flush batches as line-protocol text to an io.Writer
// it does not own (stdout, a test buffer, a pipe). One write call per
// batch; the serialisation buffer is reused across flushes.
type LineWriter struct {
	name string
	//noisevet:lockrank daemon 5
	// mu serialises Emit against Close so a batch is never torn.
	mu sync.Mutex
	w  io.Writer
	// buf is the reusable serialisation buffer.
	buf []byte
}

// NewWriter returns a sink named name that appends line-protocol rows
// to w. The caller keeps ownership of w; Close does not close it.
func NewWriter(name string, w io.Writer) *LineWriter {
	return &LineWriter{name: name, w: w}
}

// NewStdout returns the stdout sink: line-protocol rows on standard
// output, one per tenant per flush.
func NewStdout() *LineWriter { return NewWriter("stdout", os.Stdout) }

// Name identifies the sink in logs and error messages.
func (s *LineWriter) Name() string { return s.name }

// Emit serialises the batch and writes it in one call.
func (s *LineWriter) Emit(_ context.Context, recs []Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return fmt.Errorf("sink %s: closed", s.name)
	}
	buf := s.buf[:0]
	for i := range recs {
		buf = AppendLine(buf, &recs[i])
		buf = append(buf, '\n')
	}
	s.buf = buf
	if len(buf) == 0 {
		return nil
	}
	if _, err := s.w.Write(buf); err != nil {
		return fmt.Errorf("sink %s: %w", s.name, err)
	}
	return nil
}

// Close detaches the writer; subsequent Emit calls fail.
func (s *LineWriter) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w = nil
	return nil
}

// File ships flush batches as line-protocol text appended to a file it
// owns. Writes go straight to the descriptor (no userspace buffer), so
// a crash loses at most the batch being written.
type File struct {
	inner *LineWriter
	f     *os.File
}

// NewFile opens (creating or appending) path and returns a file sink
// writing line-protocol rows to it.
func NewFile(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sink file: %w", err)
	}
	return &File{inner: NewWriter("file:"+path, f), f: f}, nil
}

// Name identifies the sink in logs and error messages.
func (s *File) Name() string { return s.inner.Name() }

// Emit serialises the batch and appends it to the file.
func (s *File) Emit(ctx context.Context, recs []Record) error {
	return s.inner.Emit(ctx, recs)
}

// Close closes the file, reporting the deferred write errors a close
// can surface.
func (s *File) Close() error {
	if err := s.inner.Close(); err != nil {
		return err
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("sink %s: close: %w", s.inner.name, err)
	}
	return nil
}
