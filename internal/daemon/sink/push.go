package sink

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Push ships each flush batch as one HTTP POST of line-protocol text —
// the shape an influx-style collector ingests. A non-2xx response or
// transport error fails the batch; the daemon logs it and moves on
// (rolling windows still hold the data, so the next flush re-covers
// the window).
type Push struct {
	name string
	url  string
	c    *http.Client
	// buf is the reusable serialisation buffer; Emit is called from
	// one goroutine at a time per the Sink contract.
	buf []byte
}

// NewPush returns a sink POSTing line-protocol batches to url. A zero
// timeout defaults to 10 seconds per batch.
func NewPush(url string, timeout time.Duration) *Push {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &Push{
		name: "push:" + url,
		url:  url,
		c:    &http.Client{Timeout: timeout},
	}
}

// Name identifies the sink in logs and error messages.
func (s *Push) Name() string { return s.name }

// Emit serialises the batch and POSTs it. Empty batches are skipped.
func (s *Push) Emit(ctx context.Context, recs []Record) error {
	buf := s.buf[:0]
	for i := range recs {
		buf = AppendLine(buf, &recs[i])
		buf = append(buf, '\n')
	}
	s.buf = buf
	if len(buf) == 0 {
		return nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.url, bytes.NewReader(buf))
	if err != nil {
		return fmt.Errorf("sink %s: %w", s.name, err)
	}
	req.Header.Set("Content-Type", "text/plain; charset=utf-8")
	resp, err := s.c.Do(req)
	if err != nil {
		return fmt.Errorf("sink %s: %w", s.name, err)
	}
	// Drain so the transport can reuse the connection.
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if err := resp.Body.Close(); err != nil {
		return fmt.Errorf("sink %s: close response: %w", s.name, err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("sink %s: status %s", s.name, resp.Status)
	}
	return nil
}

// Close shuts the transport's idle connections.
func (s *Push) Close() error {
	s.c.CloseIdleConnections()
	return nil
}
