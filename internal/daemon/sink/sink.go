// Package sink fans rolling noise summaries out of the noised daemon.
//
// The router snapshots every tenant once per flush interval and hands
// the batch of Records to each configured Sink. Sinks are intentionally
// dumb: they serialise and ship, they never aggregate (the rolling
// windows in internal/noise already did that), so a slow or failing
// sink can be dropped or retried without touching analysis state.
//
// Two wire shapes are provided. The line protocol (AppendLine) is an
// influx-style `noise,tenant=<id> field=value,... <ts>` text row used
// by the stdout, file and HTTP-push sinks; the Prom sink renders the
// same numbers as a Prometheus text-format (version 0.0.4) scrape page
// instead, keeping only the latest Record per tenant.
package sink

import (
	"context"
	"strconv"

	"osnoise/internal/noise"
	"osnoise/internal/stats"
)

// Record is one tenant's flush-interval snapshot: the merged rolling
// window plus the lifetime stream counters the router keeps.
type Record struct {
	// Tenant is the tenant identifier the snapshot belongs to.
	Tenant string
	// TimeNS is the flush wall-clock timestamp in Unix nanoseconds.
	TimeNS int64
	// Window is the tenant's rolling summary, merged over the live
	// window buckets at flush time.
	Window noise.WindowSummary
	// StreamEvents summarises per-stream event counts over the same
	// rolling window (how big the tenant's traces are).
	StreamEvents stats.Summary
	// Streams counts traces the tenant has ingested over its lifetime.
	Streams uint64
	// Errors counts the tenant's failed ingests over its lifetime.
	Errors uint64
	// SampledStreams counts ingests degraded to sampling by overload.
	SampledStreams uint64
	// Evicted reports whether the tenant has exhausted its lifetime
	// budget and no longer accepts streams.
	Evicted bool
}

// Sink ships a batch of per-tenant Records somewhere. Emit is called
// once per flush interval with every tenant's snapshot and must be safe
// for use from one goroutine at a time; Close flushes and releases the
// transport, after which Emit is not called again.
type Sink interface {
	// Name identifies the sink in logs and error messages.
	Name() string
	// Emit ships one flush batch. An error marks the whole batch
	// failed; the daemon logs and keeps running (sinks are lossy by
	// design — the windows still hold the data for the next scrape).
	Emit(ctx context.Context, recs []Record) error
	// Close flushes buffered output and releases the transport.
	Close() error
}

// categoryLabels maps noise categories to protocol-safe label values
// (lowercase, no spaces or punctuation, stable across releases).
var categoryLabels = [noise.NumCategories]string{
	noise.CatPeriodic:   "periodic",
	noise.CatPageFault:  "page_fault",
	noise.CatScheduling: "scheduling",
	noise.CatPreemption: "preemption",
	noise.CatIO:         "io",
	noise.CatService:    "service",
	noise.CatOther:      "other",
}

// CategoryLabel returns the protocol-safe label for a noise category,
// e.g. "page_fault" for noise.CatPageFault.
func CategoryLabel(c noise.Category) string {
	if c >= 0 && c < noise.NumCategories {
		return categoryLabels[c]
	}
	return "unknown"
}

// escapeTag escapes a tag value for the line protocol: commas, spaces
// and equals signs are backslash-escaped (the influx tag rules).
func escapeTag(s string) string {
	clean := true
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == ',' || c == ' ' || c == '=' || c == '\\' {
			clean = false
			break
		}
	}
	if clean {
		return s
	}
	out := make([]byte, 0, len(s)+4)
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == ',' || c == ' ' || c == '=' || c == '\\' {
			out = append(out, '\\')
		}
		out = append(out, s[i])
	}
	return string(out)
}

// appendBool appends a line-protocol integer field holding 0 or 1.
func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, "1i"...)
	}
	return append(dst, "0i"...)
}

// AppendLine appends one Record as a line-protocol row (no trailing
// newline) and returns the extended slice:
//
//	noise,tenant=<id> reports=2i,events=9000i,... 1712345678000000000
//
// Field order is fixed so output is byte-stable for a given Record.
func AppendLine(dst []byte, rec *Record) []byte {
	w := &rec.Window
	dst = append(dst, "noise,tenant="...)
	dst = append(dst, escapeTag(rec.Tenant)...)
	dst = append(dst, " reports="...)
	dst = strconv.AppendInt(dst, int64(w.Reports), 10)
	dst = append(dst, "i,incomplete="...)
	dst = strconv.AppendInt(dst, int64(w.Incomplete), 10)
	dst = append(dst, "i,sampled="...)
	dst = strconv.AppendInt(dst, int64(w.Sampled), 10)
	dst = append(dst, "i,cpus="...)
	dst = strconv.AppendInt(dst, int64(w.CPUs), 10)
	dst = append(dst, "i,seconds="...)
	dst = strconv.AppendFloat(dst, w.Seconds, 'g', -1, 64)
	dst = append(dst, ",events="...)
	dst = strconv.AppendUint(dst, w.EventsConsumed, 10)
	dst = append(dst, "i,dropped="...)
	dst = strconv.AppendInt(dst, int64(w.Dropped), 10)
	dst = append(dst, "i,interruptions="...)
	dst = strconv.AppendInt(dst, int64(w.Interruptions), 10)
	dst = append(dst, "i,noise_ns="...)
	dst = strconv.AppendInt(dst, w.TotalNoiseNS, 10)
	dst = append(dst, "i,noise_fraction="...)
	dst = strconv.AppendFloat(dst, w.NoiseFraction(), 'g', -1, 64)
	for c := noise.Category(0); c < noise.NumCategories; c++ {
		dst = append(dst, ',')
		dst = append(dst, CategoryLabel(c)...)
		dst = append(dst, "_ns="...)
		dst = strconv.AppendInt(dst, w.Breakdown[c], 10)
		dst = append(dst, 'i')
	}
	dst = append(dst, ",stream_events_mean="...)
	dst = strconv.AppendFloat(dst, rec.StreamEvents.Mean(), 'g', -1, 64)
	dst = append(dst, ",streams="...)
	dst = strconv.AppendUint(dst, rec.Streams, 10)
	dst = append(dst, "i,errors="...)
	dst = strconv.AppendUint(dst, rec.Errors, 10)
	dst = append(dst, "i,sampled_streams="...)
	dst = strconv.AppendUint(dst, rec.SampledStreams, 10)
	dst = append(dst, "i,evicted="...)
	dst = appendBool(dst, rec.Evicted)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, rec.TimeNS, 10)
	return dst
}
