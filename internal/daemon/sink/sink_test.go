package sink_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"osnoise/internal/daemon/daemontest"
	"osnoise/internal/daemon/sink"
	"osnoise/internal/noise"
)

// record builds a Record from a real analysis so the serialisers see
// realistic numbers.
func record(t *testing.T, tenant string, seed uint64) sink.Record {
	t.Helper()
	rep := noise.Analyze(daemontest.Trace(seed), noise.DefaultOptions())
	var w noise.WindowSummary
	w.AddReport(rep)
	rec := sink.Record{Tenant: tenant, TimeNS: 1712345678000000000, Window: w, Streams: 1}
	rec.StreamEvents.Add(int64(rep.EventsConsumed))
	return rec
}

// TestAppendLineShape: the line protocol row has the measurement, the
// tenant tag, every category field and the timestamp.
func TestAppendLineShape(t *testing.T) {
	rec := record(t, "acme", 1)
	line := string(sink.AppendLine(nil, &rec))
	if !strings.HasPrefix(line, "noise,tenant=acme ") {
		t.Fatalf("line prefix: %q", line)
	}
	if !strings.HasSuffix(line, " 1712345678000000000") {
		t.Fatalf("line timestamp suffix: %q", line)
	}
	for c := noise.Category(0); c < noise.NumCategories; c++ {
		want := "," + sink.CategoryLabel(c) + "_ns="
		if !strings.Contains(line, want) {
			t.Fatalf("line lacks %q: %q", want, line)
		}
	}
	for _, field := range []string{"reports=1i", "streams=1i", "noise_fraction=", "evicted=0i"} {
		if !strings.Contains(line, field) {
			t.Fatalf("line lacks %q: %q", field, line)
		}
	}
	// Byte-stable: the same Record serialises identically.
	if again := string(sink.AppendLine(nil, &rec)); again != line {
		t.Fatalf("unstable serialisation:\n%q\n%q", line, again)
	}
}

// TestAppendLineEscapesTenant: line-protocol tag characters in tenant
// IDs are escaped, not emitted raw.
func TestAppendLineEscapesTenant(t *testing.T) {
	rec := sink.Record{Tenant: "a b,c=d"}
	line := string(sink.AppendLine(nil, &rec))
	if !strings.HasPrefix(line, `noise,tenant=a\ b\,c\=d `) {
		t.Fatalf("tenant not escaped: %q", line)
	}
}

// TestWriterAndFileSinks: both text sinks write one row per record per
// flush, and the file sink appends across batches.
func TestWriterAndFileSinks(t *testing.T) {
	recs := []sink.Record{record(t, "a", 1), record(t, "b", 2)}

	var buf bytes.Buffer
	w := sink.NewWriter("test", &buf)
	if err := w.Emit(context.Background(), recs); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Fatalf("writer emitted %d rows, want 2:\n%s", got, buf.String())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Emit(context.Background(), recs); err == nil {
		t.Fatal("Emit after Close succeeded")
	}

	path := filepath.Join(t.TempDir(), "noise.lp")
	f, err := sink.NewFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := f.Emit(context.Background(), recs); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), "\n"); got != 4 {
		t.Fatalf("file holds %d rows, want 4", got)
	}
}

// TestPushSink: each batch arrives as one POST; a non-2xx answer fails
// the batch.
func TestPushSink(t *testing.T) {
	var bodies []string
	fail := false
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var b bytes.Buffer
		_, _ = b.ReadFrom(r.Body)
		bodies = append(bodies, b.String())
		if fail {
			http.Error(w, "nope", http.StatusBadGateway)
		}
	}))
	defer srv.Close()

	p := sink.NewPush(srv.URL, 0)
	recs := []sink.Record{record(t, "a", 1)}
	if err := p.Emit(context.Background(), recs); err != nil {
		t.Fatal(err)
	}
	if len(bodies) != 1 || !strings.HasPrefix(bodies[0], "noise,tenant=a ") {
		t.Fatalf("push bodies: %q", bodies)
	}
	fail = true
	if err := p.Emit(context.Background(), recs); err == nil {
		t.Fatal("non-2xx answer did not fail the batch")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPromRender: the scrape page carries the daemon counters, every
// per-tenant family, and the category breakdown, tenants sorted.
func TestPromRender(t *testing.T) {
	p := sink.NewProm()
	recs := []sink.Record{record(t, "zeta", 1), record(t, "alpha", 2)}
	if err := p.Emit(context.Background(), recs); err != nil {
		t.Fatal(err)
	}
	rr := httptest.NewRecorder()
	p.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rr.Body.String()

	for _, want := range []string{
		"noised_flushes_total 1",
		"noised_tenants 2",
		`noised_tenant_streams_total{tenant="alpha"} 1`,
		`noised_tenant_reports{tenant="zeta"} 1`,
		`noised_tenant_category_noise_ns{tenant="alpha",category="periodic"}`,
		"# TYPE noised_tenant_noise_fraction gauge",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("scrape lacks %q:\n%s", want, body)
		}
	}
	if strings.Index(body, `{tenant="alpha"}`) > strings.LastIndex(body, `{tenant="zeta"}`) {
		t.Fatal("tenants not sorted in scrape output")
	}
	// Latest snapshot wins on re-emit.
	recs[1].Streams = 9
	if err := p.Emit(context.Background(), recs[1:2]); err != nil {
		t.Fatal(err)
	}
	rr = httptest.NewRecorder()
	p.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(rr.Body.String(), `noised_tenant_streams_total{tenant="alpha"} 9`) {
		t.Fatal("re-emit did not replace the retained snapshot")
	}
}
