package sink

import (
	"context"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"osnoise/internal/noise"
)

// Prom is a pull sink: Emit retains the latest Record per tenant and
// ServeHTTP renders them as a Prometheus text-format (version 0.0.4)
// scrape page. Mount it at /metrics.
type Prom struct {
	//noisevet:lockrank daemon 5
	// mu guards the retained records; scrapes and flushes never hold
	// any other daemon lock while taking it.
	mu      sync.Mutex
	recs    map[string]Record
	flushes uint64
}

// NewProm returns an empty Prometheus pull sink.
func NewProm() *Prom {
	return &Prom{recs: make(map[string]Record)}
}

// Name identifies the sink in logs and error messages.
func (p *Prom) Name() string { return "prom" }

// Emit replaces the retained snapshot for every tenant in the batch.
func (p *Prom) Emit(_ context.Context, recs []Record) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flushes++
	for i := range recs {
		p.recs[recs[i].Tenant] = recs[i]
	}
	return nil
}

// Close drops the retained records.
func (p *Prom) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.recs = map[string]Record{}
	return nil
}

// escapeLabel escapes a Prometheus label value (backslash, quote,
// newline per the exposition format).
func escapeLabel(s string) string {
	clean := true
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == '\\' || c == '"' || c == '\n' {
			clean = false
			break
		}
	}
	if clean {
		return s
	}
	out := make([]byte, 0, len(s)+4)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

// promMetric is one metric family: name, HELP/TYPE header and a value
// extractor applied per retained Record.
type promMetric struct {
	// name is the fully qualified metric name.
	name string
	// help is the HELP line text.
	help string
	// typ is the TYPE line value: "gauge" or "counter".
	typ string
	// value extracts the sample from a Record.
	value func(*Record) float64
}

// tenantMetrics lists the per-tenant families in render order.
var tenantMetrics = []promMetric{
	{"noised_tenant_reports", "Reports folded into the tenant's rolling window.", "gauge",
		func(r *Record) float64 { return float64(r.Window.Reports) }},
	{"noised_tenant_incomplete_reports", "Window reports truncated by a budget or cancellation.", "gauge",
		func(r *Record) float64 { return float64(r.Window.Incomplete) }},
	{"noised_tenant_sampled_reports", "Window reports with sampled interruption detail.", "gauge",
		func(r *Record) float64 { return float64(r.Window.Sampled) }},
	{"noised_tenant_cpus", "Largest CPU count among window reports.", "gauge",
		func(r *Record) float64 { return float64(r.Window.CPUs) }},
	{"noised_tenant_window_seconds", "Analysed trace seconds in the rolling window.", "gauge",
		func(r *Record) float64 { return r.Window.Seconds }},
	{"noised_tenant_window_events", "Event records analysed in the rolling window.", "gauge",
		func(r *Record) float64 { return float64(r.Window.EventsConsumed) }},
	{"noised_tenant_window_interruptions", "Interruptions observed in the rolling window.", "gauge",
		func(r *Record) float64 { return float64(r.Window.Interruptions) }},
	{"noised_tenant_window_noise_ns", "Noise nanoseconds in the rolling window.", "gauge",
		func(r *Record) float64 { return float64(r.Window.TotalNoiseNS) }},
	{"noised_tenant_noise_fraction", "Noise as a fraction of windowed CPU time.", "gauge",
		func(r *Record) float64 { return r.Window.NoiseFraction() }},
	{"noised_tenant_streams_total", "Traces the tenant ingested over its lifetime.", "counter",
		func(r *Record) float64 { return float64(r.Streams) }},
	{"noised_tenant_stream_errors_total", "Failed ingests over the tenant's lifetime.", "counter",
		func(r *Record) float64 { return float64(r.Errors) }},
	{"noised_tenant_sampled_streams_total", "Ingests degraded to sampling by overload.", "counter",
		func(r *Record) float64 { return float64(r.SampledStreams) }},
	{"noised_tenant_evicted", "1 when the tenant exhausted its lifetime budget.", "gauge",
		func(r *Record) float64 {
			if r.Evicted {
				return 1
			}
			return 0
		}},
}

// ServeHTTP renders the scrape page: daemon-level counters, the
// per-tenant families, and a per-category noise breakdown, tenants in
// sorted order so scrapes are byte-stable between flushes.
func (p *Prom) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	p.mu.Lock()
	ids := make([]string, 0, len(p.recs))
	for id := range p.recs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	recs := make([]Record, len(ids))
	for i, id := range ids {
		recs[i] = p.recs[id]
	}
	flushes := p.flushes
	p.mu.Unlock()

	buf := make([]byte, 0, 1024+1024*len(recs))
	buf = append(buf, "# HELP noised_flushes_total Flush batches retained by the scrape sink.\n# TYPE noised_flushes_total counter\nnoised_flushes_total "...)
	buf = strconv.AppendUint(buf, flushes, 10)
	buf = append(buf, "\n# HELP noised_tenants Tenants with a retained snapshot.\n# TYPE noised_tenants gauge\nnoised_tenants "...)
	buf = strconv.AppendInt(buf, int64(len(recs)), 10)
	buf = append(buf, '\n')
	for _, m := range tenantMetrics {
		buf = append(buf, "# HELP "...)
		buf = append(buf, m.name...)
		buf = append(buf, ' ')
		buf = append(buf, m.help...)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, m.name...)
		buf = append(buf, ' ')
		buf = append(buf, m.typ...)
		buf = append(buf, '\n')
		for i := range recs {
			buf = append(buf, m.name...)
			buf = append(buf, `{tenant="`...)
			buf = append(buf, escapeLabel(recs[i].Tenant)...)
			buf = append(buf, `"} `...)
			buf = strconv.AppendFloat(buf, m.value(&recs[i]), 'g', -1, 64)
			buf = append(buf, '\n')
		}
	}
	buf = append(buf, "# HELP noised_tenant_category_noise_ns Window noise nanoseconds by category.\n# TYPE noised_tenant_category_noise_ns gauge\n"...)
	for i := range recs {
		for c := noise.Category(0); c < noise.NumCategories; c++ {
			buf = append(buf, `noised_tenant_category_noise_ns{tenant="`...)
			buf = append(buf, escapeLabel(recs[i].Tenant)...)
			buf = append(buf, `",category="`...)
			buf = append(buf, CategoryLabel(c)...)
			buf = append(buf, `"} `...)
			buf = strconv.AppendInt(buf, recs[i].Window.Breakdown[c], 10)
			buf = append(buf, '\n')
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(buf)
}
