package noise_test

// Window / WindowSummary tests: the rolling-aggregate layer the
// daemon's tenant sessions sit on. The load-bearing property is
// bit-identity of a one-report window against the batch analyzer —
// the per-stream half of the daemon determinism contract.

import (
	"math"
	"reflect"
	"testing"

	"osnoise/internal/noise"
)

// summariesEqual compares two WindowSummary values bit-exactly,
// including the unexported floating-point moment state inside each
// stats.Summary (reflect.DeepEqual sees unexported fields).
func summariesEqual(t *testing.T, label string, want, got noise.WindowSummary) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s: window summary diverges\nwant %+v\ngot  %+v", label, want, got)
	}
	if math.Float64bits(want.Seconds) != math.Float64bits(got.Seconds) {
		t.Errorf("%s: Seconds bits diverge: %x vs %x", label,
			math.Float64bits(want.Seconds), math.Float64bits(got.Seconds))
	}
}

// TestWindowSingleReportBitIdentical: folding one batch Report into a
// fresh window reproduces its aggregates exactly.
func TestWindowSingleReportBitIdentical(t *testing.T) {
	tr := simTrace(3)
	rep := noise.Analyze(tr, noise.DefaultOptions())

	var want noise.WindowSummary
	want.AddReport(rep)

	w := noise.NewWindow(4)
	w.Add(rep)
	got := w.Merged()
	summariesEqual(t, "one report", want, got)

	if got.Reports != 1 || got.Incomplete != 0 {
		t.Fatalf("counters: %+v", got)
	}
	if got.TotalNoiseNS != rep.TotalNoiseNS || got.CPUs != rep.CPUs {
		t.Fatalf("totals diverge from the batch report: %+v vs noise=%d cpus=%d",
			got, rep.TotalNoiseNS, rep.CPUs)
	}
	if got.Interruptions != len(rep.Interruptions) {
		t.Fatalf("interruptions %d, want %d", got.Interruptions, len(rep.Interruptions))
	}
	for k := noise.Key(0); k < noise.NumKeys; k++ {
		if got.PerKey[k] != rep.PerKey[k].Summary {
			t.Fatalf("%v summary diverges: %+v vs %+v", k, got.PerKey[k], rep.PerKey[k].Summary)
		}
	}
}

// TestWindowMergeOrderMatchesSequentialFold: reports spread across
// buckets merge oldest-first, matching one summary fed the same
// reports in arrival order.
func TestWindowMergeOrderMatchesSequentialFold(t *testing.T) {
	reps := []*noise.Report{
		noise.Analyze(simTrace(1), noise.DefaultOptions()),
		noise.Analyze(simTrace(2), noise.DefaultOptions()),
		noise.Analyze(simTrace(5), noise.DefaultOptions()),
	}
	var want noise.WindowSummary
	for _, r := range reps {
		want.AddReport(r)
	}

	w := noise.NewWindow(3)
	for i, r := range reps {
		w.Add(r)
		if i < len(reps)-1 {
			w.Rotate()
		}
	}
	summariesEqual(t, "three buckets", want, w.Merged())
}

// TestWindowEviction: rotating past the width drops the oldest
// report's contribution from Merged.
func TestWindowEviction(t *testing.T) {
	old := noise.Analyze(simTrace(1), noise.DefaultOptions())
	keep := noise.Analyze(simTrace(2), noise.DefaultOptions())

	w := noise.NewWindow(2)
	w.Add(old)
	w.Rotate()
	w.Add(keep)
	w.Rotate() // old falls out
	got := w.Merged()

	var want noise.WindowSummary
	want.AddReport(keep)
	summariesEqual(t, "evicted window", want, got)
	if got.Reports != 1 {
		t.Fatalf("reports = %d, want 1 after eviction", got.Reports)
	}
}

// TestWindowSampledAndIncompleteCounters: degraded reports are counted
// and their exact interruption totals used.
func TestWindowSampledAndIncompleteCounters(t *testing.T) {
	tr := simTrace(6)
	opts := noise.DefaultOptions()
	opts.Budget = noise.Budget{MaxInterruptions: 3, MaxEvents: uint64(len(tr.Events) / 2)}
	rep := noise.Analyze(tr, opts)
	if !rep.Incomplete || !rep.InterruptionsSampled {
		t.Skipf("fixture did not degrade: incomplete=%v sampled=%v", rep.Incomplete, rep.InterruptionsSampled)
	}

	var ws noise.WindowSummary
	ws.AddReport(rep)
	if ws.Incomplete != 1 || ws.Sampled != 1 {
		t.Fatalf("degradation counters: %+v", ws)
	}
	if ws.Interruptions != rep.InterruptionsTotal {
		t.Fatalf("interruptions %d, want exact total %d", ws.Interruptions, rep.InterruptionsTotal)
	}
}

// TestWindowFractions: NoiseFraction/CategoryFraction mirror the
// single-report accessors.
func TestWindowFractions(t *testing.T) {
	rep := noise.Analyze(simTrace(4), noise.DefaultOptions())
	var ws noise.WindowSummary
	ws.AddReport(rep)
	if math.Float64bits(ws.NoiseFraction()) != math.Float64bits(rep.NoiseFraction()) {
		t.Fatalf("NoiseFraction %v, want %v", ws.NoiseFraction(), rep.NoiseFraction())
	}
	for c := noise.Category(0); c < noise.NumCategories; c++ {
		if math.Float64bits(ws.CategoryFraction(c)) != math.Float64bits(rep.CategoryFraction(c)) {
			t.Fatalf("%v fraction %v, want %v", c, ws.CategoryFraction(c), rep.CategoryFraction(c))
		}
	}
}
