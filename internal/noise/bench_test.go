package noise_test

// Pipeline micro-benchmarks: the same sequential-vs-raw comparison the
// noisebench -pipeline harness runs, exposed as go benchmarks so the
// phases can be profiled (`go test -bench AnalyzeRaw -cpuprofile ...`).

import (
	"bytes"
	"context"
	"testing"

	"osnoise/internal/noise"
	"osnoise/internal/sim"
	"osnoise/internal/trace"
	"osnoise/internal/workload"
)

// benchRaw builds a ~1M-event encoded AMG trace by tiling a 1-second
// base capture, mirroring the noisebench pipeline harness.
func benchRaw(tb testing.TB) []byte {
	tb.Helper()
	base := workload.New(workload.AMG(), workload.Options{
		Duration: sim.Second,
		Seed:     42,
	}).Execute()
	target := 1_000_000
	first, last := base.Span()
	period := last - first + int64(sim.Millisecond)
	tiled := &trace.Trace{CPUs: base.CPUs, Lost: base.Lost, Procs: base.Procs}
	tiled.Events = make([]trace.Event, 0, target+len(base.Events))
	for shift := int64(0); len(tiled.Events) < target; shift += period {
		for _, ev := range base.Events {
			ev.TS += shift
			tiled.Events = append(tiled.Events, ev)
		}
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, tiled); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func BenchmarkAnalyzeSequential(b *testing.B) {
	raw := benchRaw(b)
	opts := noise.DefaultOptions()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := trace.Read(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		noise.Analyze(tr, opts)
	}
}

func BenchmarkAnalyzeRaw8(b *testing.B) {
	raw := benchRaw(b)
	opts := noise.DefaultOptions()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := noise.AnalyzeRaw(context.Background(), trace.BytesReaderAt(raw), int64(len(raw)), opts, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
}
