package noise

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"osnoise/internal/stats"
)

// Span is one analysed kernel activity occurrence.
type Span struct {
	Key   Key   // activity type
	CPU   int32 // CPU the span executed on
	Start int64 // ns
	Wall  int64 // ns, entry→exit including nested activities
	Own   int64 // ns, wall minus nested activity time
	PID   int64 // victim application pid (0 if none)
	// Culprit is the pid of the task that ran during a preemption span
	// (0 for other keys).
	Culprit int64
	Noise   bool // counted as noise under the accounting rules
}

// Component is one activity inside an interruption, for the synthetic
// noise chart and the disambiguation reports.
type Component struct {
	Key   Key   // activity type
	Start int64 // ns, component start time
	Own   int64 // ns, own time contributed to the interruption
}

// Interruption is a maximal group of adjacent noise activities on one
// CPU: the unit an external micro-benchmark perceives as a single spike.
type Interruption struct {
	CPU        int32       // CPU the group occurred on
	Start      int64       // ns, first component start
	End        int64       // ns, latest component end
	Total      int64       // summed own time of components
	Components []Component // member activities in merge order
}

// Describe renders the interruption's composition, e.g.
// "timer_interrupt (2648ns) + run_timer_softirq (254ns) = 2902ns".
func (i *Interruption) Describe() string {
	parts := make([]string, len(i.Components))
	for j, comp := range i.Components {
		parts[j] = fmt.Sprintf("%s (%dns)", comp.Key, comp.Own)
	}
	return fmt.Sprintf("%s = %dns", strings.Join(parts, " + "), i.Total)
}

// KeyStats aggregates one activity type across the trace.
type KeyStats struct {
	Key     Key           // activity type these statistics describe
	Summary stats.Summary // count/sum/min/max and running moments
	// Durations retains raw per-occurrence durations for histogram and
	// percentile computation.
	Durations []int64
}

// Freq returns events/second normalised per CPU, the unit of the
// paper's tables.
func (ks *KeyStats) Freq(seconds float64, cpus int) float64 {
	if seconds <= 0 || cpus <= 0 {
		return 0
	}
	return float64(ks.Summary.Count) / seconds / float64(cpus)
}

// Histogram bins the durations into n linear buckets over [0, hi); hi=0
// auto-sizes to the maximum duration.
func (ks *KeyStats) Histogram(n int, hi int64) *stats.Histogram {
	if hi <= 0 {
		hi = ks.Summary.Max + 1
	}
	if hi <= 0 {
		hi = 1
	}
	h := stats.NewHistogram(0, hi, n, true)
	for _, d := range ks.Durations {
		h.Add(d)
	}
	return h
}

// HistogramP99 reproduces the paper's figure style: linear histogram cut
// at the 99th percentile so the long tail does not flatten the body.
func (ks *KeyStats) HistogramP99(n int) *stats.Histogram {
	return ks.Histogram(n, 0).CutAtPercentile(0.99)
}

// Report is the full analysis result for one trace.
type Report struct {
	Seconds float64 // analysed trace duration (or window length)
	CPUs    int     // CPU count from the trace header

	// Spans holds every analysed kernel activity, time-ordered.
	Spans []Span
	// PerKey aggregates statistics per activity type (noise and service).
	PerKey [NumKeys]*KeyStats
	// Breakdown totals noise nanoseconds per category.
	Breakdown [NumCategories]int64
	// Interruptions groups adjacent noise activities per CPU.
	Interruptions []Interruption

	// TotalNoiseNS is the summed own time of all noise spans.
	TotalNoiseNS int64
	// NoiseLost counts exits without entries / unclosed spans dropped at
	// trace boundaries.
	Dropped int

	// Incomplete marks a report whose ingestion stopped before the end
	// of the input: the analysis was cancelled mid-run, or an
	// event/byte budget capped it. Totals cover only the consumed
	// prefix.
	Incomplete bool
	// EventsConsumed counts the event records ingested from the input
	// (before window and CPU filtering). On a complete run it equals
	// the input's event count; on a cancelled run it is the best-effort
	// progress at the moment of cancellation.
	EventsConsumed uint64
	// CPUsFinished counts the per-CPU span walkers that completed. It
	// is meaningful only on a cancelled parallel analysis and stays
	// zero otherwise — on a complete run every CPU finished by
	// definition.
	CPUsFinished int
	// InterruptionsTotal is the exact interruption count before budget
	// sampling reduced the Interruptions list. Zero when no sampling
	// occurred: len(Interruptions) is then the total.
	InterruptionsTotal int
	// InterruptionsSampled marks that Interruptions is a deterministic
	// reservoir sample capped by Budget.MaxInterruptions; counts and
	// noise totals elsewhere in the report remain exact.
	InterruptionsSampled bool
}

// Stats returns the aggregate for one activity type (never nil).
func (r *Report) Stats(k Key) *KeyStats {
	if r.PerKey[k] == nil {
		r.PerKey[k] = &KeyStats{Key: k}
	}
	return r.PerKey[k]
}

// NoiseFraction returns total noise as a fraction of total CPU time.
func (r *Report) NoiseFraction() float64 {
	if r.Seconds <= 0 || r.CPUs <= 0 {
		return 0
	}
	return float64(r.TotalNoiseNS) / (r.Seconds * 1e9 * float64(r.CPUs))
}

// CategoryFraction returns a category's share of total noise.
func (r *Report) CategoryFraction(c Category) float64 {
	if r.TotalNoiseNS == 0 {
		return 0
	}
	return float64(r.Breakdown[c]) / float64(r.TotalNoiseNS)
}

// BreakdownString renders the Figure-3-style per-category breakdown.
func (r *Report) BreakdownString() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "total noise %.3f%% of CPU time (%.3f ms/s/cpu)\n",
		100*r.NoiseFraction(), r.NoiseFraction()*1e3)
	for c := CatPeriodic; c <= CatIO; c++ {
		fmt.Fprintf(&sb, "  %-12s %6.1f%%  (%d ns)\n", c, 100*r.CategoryFraction(c), r.Breakdown[c])
	}
	return sb.String()
}

// TableRow formats freq/avg/max/min for one key in the style of the
// paper's tables (freq in ev/sec normalised per CPU, durations in ns).
func (r *Report) TableRow(k Key) string {
	ks := r.Stats(k)
	return fmt.Sprintf("%-22s freq=%8.0f ev/s  avg=%8.0f ns  max=%10d ns  min=%6d ns",
		k, ks.Freq(r.Seconds, r.CPUs), ks.Summary.Mean(), ks.Summary.Max, ks.Summary.Min)
}

// InterruptionsOnCPU filters interruptions for one CPU.
func (r *Report) InterruptionsOnCPU(cpu int32) []Interruption {
	var out []Interruption
	for _, in := range r.Interruptions {
		if in.CPU == cpu {
			out = append(out, in)
		}
	}
	return out
}

// TopInterruptions returns the n largest interruptions by total noise.
func (r *Report) TopInterruptions(n int) []Interruption {
	out := make([]Interruption, len(r.Interruptions))
	copy(out, r.Interruptions)
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// PreemptionsByCulprit aggregates preemption noise per preempting task.
func (r *Report) PreemptionsByCulprit() map[int64]int64 {
	out := make(map[int64]int64)
	for _, s := range r.Spans {
		if s.Key == KeyPreemption && s.Noise {
			out[s.Culprit] += s.Own
		}
	}
	return out
}

// PerCPUNoise totals noise nanoseconds per CPU — the per-row view of
// the Paraver trace.
func (r *Report) PerCPUNoise() []int64 {
	out := make([]int64, r.CPUs)
	for _, s := range r.Spans {
		if s.Noise && int(s.CPU) < r.CPUs {
			out[s.CPU] += s.Own
		}
	}
	return out
}

// BandStats splits noise interruptions into the two canonical classes
// the literature distinguishes (paper §II): high-frequency
// short-duration noise (timer ticks, page faults) and low-frequency
// long-duration noise (kernel threads, daemons). Resonance with the
// application's granularity depends on the class.
type BandStats struct {
	ShortCount, LongCount uint64 // interruptions in each class
	ShortNS, LongNS       int64  // summed noise nanoseconds per class
	// Rates are interruptions/second per CPU.
	ShortRate, LongRate float64
}

// Bands classifies interruptions by duration against thresholdNS
// (e.g. 50 µs separates tick-scale from daemon-scale noise).
func (r *Report) Bands(thresholdNS int64) BandStats {
	var b BandStats
	for _, in := range r.Interruptions {
		if in.Total <= thresholdNS {
			b.ShortCount++
			b.ShortNS += in.Total
		} else {
			b.LongCount++
			b.LongNS += in.Total
		}
	}
	if r.Seconds > 0 && r.CPUs > 0 {
		denom := r.Seconds * float64(r.CPUs)
		b.ShortRate = float64(b.ShortCount) / denom
		b.LongRate = float64(b.LongCount) / denom
	}
	return b
}

// CompositionStat aggregates interruptions with the same activity
// composition (e.g. "timer_interrupt+run_timer_softirq").
type CompositionStat struct {
	Signature string // "+"-joined component keys, in occurrence order
	Count     int    // interruptions with this composition
	TotalNS   int64  // summed interruption totals
	MinNS     int64  // smallest single interruption
	MaxNS     int64  // largest single interruption
}

// Compositions groups interruptions by their component signature,
// sorted by total noise, largest first. It answers the §V question
// "what kinds of interruptions does this application actually suffer"
// in one table.
func (r *Report) Compositions() []CompositionStat {
	agg := make(map[string]*CompositionStat)
	for _, in := range r.Interruptions {
		var sb strings.Builder
		for i, comp := range in.Components {
			if i > 0 {
				sb.WriteByte('+')
			}
			sb.WriteString(comp.Key.String())
		}
		sig := sb.String()
		cs, ok := agg[sig]
		if !ok {
			cs = &CompositionStat{Signature: sig, MinNS: in.Total, MaxNS: in.Total}
			agg[sig] = cs
		}
		cs.Count++
		cs.TotalNS += in.Total
		if in.Total < cs.MinNS {
			cs.MinNS = in.Total
		}
		if in.Total > cs.MaxNS {
			cs.MaxNS = in.Total
		}
	}
	out := make([]CompositionStat, 0, len(agg))
	for _, cs := range agg {
		out = append(out, *cs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalNS != out[j].TotalNS {
			return out[i].TotalNS > out[j].TotalNS
		}
		return out[i].Signature < out[j].Signature
	})
	return out
}

// KeyDelta is one row of a report comparison.
type KeyDelta struct {
	Key          Key     // activity type this row compares
	CountA       uint64  // occurrences in report A
	CountB       uint64  // occurrences in report B
	TotalA       int64   // summed own nanoseconds in A
	TotalB       int64   // summed own nanoseconds in B
	TotalRatioBA float64 // B/A; +Inf when A is zero and B is not
}

// Diff compares two analyses key by key — the before/after view of a
// mitigation or a kernel change (the workflow the paper's §I says the
// methodology serves: "provide quick relative comparisons between
// different versions as developers work on reducing noise", but with
// per-event resolution). Keys absent from both reports are skipped;
// rows are ordered by the magnitude of the absolute change.
func Diff(a, b *Report) []KeyDelta {
	var out []KeyDelta
	for k := Key(0); k < NumKeys; k++ {
		sa, sb := a.Stats(k).Summary, b.Stats(k).Summary
		if sa.Count == 0 && sb.Count == 0 {
			continue
		}
		d := KeyDelta{
			Key: k, CountA: sa.Count, CountB: sb.Count,
			TotalA: int64(sa.Sum), TotalB: int64(sb.Sum),
		}
		switch {
		case d.TotalA == 0 && d.TotalB == 0:
			d.TotalRatioBA = 1
		case d.TotalA == 0:
			d.TotalRatioBA = math.Inf(1)
		default:
			d.TotalRatioBA = float64(d.TotalB) / float64(d.TotalA)
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		di := out[i].TotalB - out[i].TotalA
		if di < 0 {
			di = -di
		}
		dj := out[j].TotalB - out[j].TotalA
		if dj < 0 {
			dj = -dj
		}
		return di > dj
	})
	return out
}

// DiffString renders a comparison as text.
func DiffString(a, b *Report) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "total noise: %.3f%% -> %.3f%% of CPU time\n",
		100*a.NoiseFraction(), 100*b.NoiseFraction())
	for _, d := range Diff(a, b) {
		fmt.Fprintf(&sb, "  %-22s %9.3fms -> %9.3fms  (%5.2fx, n %d -> %d)\n",
			d.Key, float64(d.TotalA)/1e6, float64(d.TotalB)/1e6,
			d.TotalRatioBA, d.CountA, d.CountB)
	}
	return sb.String()
}
