// Package noise implements the paper's core contribution: the offline
// analysis that turns a raw kernel event stream into a quantitative
// per-event description of OS noise.
//
// The analysis:
//
//   - reconstructs kernel activity spans from entry/exit tracepoints,
//     attributing *nested* events correctly (a timer interrupt arriving
//     inside a tasklet is charged to the interrupt, and only the
//     tasklet's own cost to the tasklet);
//   - applies the paper's accounting rule that kernel activity is noise
//     only while an application process is runnable — time spent blocked
//     waiting for communication is not noise, and explicitly requested
//     services (system calls) are not noise;
//   - derives process-preemption noise from scheduler switch events
//     (switched out while runnable → the wait until switch-in, minus the
//     kernel spans inside it, is preemption);
//   - groups adjacent kernel activities into "interruptions" — the
//     spikes an external micro-benchmark like FTQ observes — retaining
//     the per-activity composition of each, which is what enables the
//     paper's noise disambiguation (§V);
//   - produces per-event-type frequency/duration statistics (Tables
//     I–VI), duration histograms (Figs. 4, 6, 8), the per-category
//     breakdown (Fig. 3) and the synthetic OS noise chart (Figs. 1, 9,
//     10).
package noise

import "osnoise/internal/trace"

// Key identifies one kernel activity type in the analysis output.
type Key int

// Activity keys, covering every kernel activity the paper reports.
const (
	KeyTimerIRQ Key = iota
	KeyNetIRQ
	KeyOtherIRQ
	KeyTimerSoftIRQ // run_timer_softirq
	KeyRCU          // rcu_process_callbacks
	KeyRebalance    // run_rebalance_domains
	KeyNetRx        // net_rx_action
	KeyNetTx        // net_tx_action
	KeyPageFault
	KeyTLBMiss
	KeyOtherTrap
	KeySchedule // schedule() spans (both halves)
	KeyPreemption
	KeySyscall // requested service: reported, but not noise
	KeyOther
	NumKeys
)

var keyNames = [NumKeys]string{
	KeyTimerIRQ:     "timer_interrupt",
	KeyNetIRQ:       "network_interrupt",
	KeyOtherIRQ:     "other_interrupt",
	KeyTimerSoftIRQ: "run_timer_softirq",
	KeyRCU:          "rcu_process_callbacks",
	KeyRebalance:    "run_rebalance_domains",
	KeyNetRx:        "net_rx_action",
	KeyNetTx:        "net_tx_action",
	KeyPageFault:    "page_fault",
	KeyTLBMiss:      "tlb_miss",
	KeyOtherTrap:    "other_trap",
	KeySchedule:     "schedule",
	KeyPreemption:   "preemption",
	KeySyscall:      "syscall",
	KeyOther:        "other",
}

// String returns the kernel-function-style name of the key.
func (k Key) String() string {
	if k >= 0 && k < NumKeys {
		return keyNames[k]
	}
	return "key?"
}

// Category is the paper's five-way noise classification (§IV-A), plus
// Service for requested kernel work that is not noise.
type Category int

// Categories, in the paper's order.
const (
	CatPeriodic Category = iota // timer interrupt + run_timer_softirq
	CatPageFault
	CatScheduling // schedule() + rcu + run_rebalance_domains
	CatPreemption // daemons preempting application processes
	CatIO         // network interrupt handler + rx/tx tasklets
	CatService    // syscalls: requested, not noise
	CatOther
	NumCategories
)

var categoryNames = [NumCategories]string{
	CatPeriodic:   "periodic",
	CatPageFault:  "page fault",
	CatScheduling: "scheduling",
	CatPreemption: "preemption",
	CatIO:         "I/O",
	CatService:    "service",
	CatOther:      "other",
}

// String names the category as in the paper's Figure 3 legend.
func (c Category) String() string {
	if c >= 0 && c < NumCategories {
		return categoryNames[c]
	}
	return "category?"
}

// CategoryOf maps an activity key to its noise category.
func CategoryOf(k Key) Category {
	switch k {
	case KeyTimerIRQ, KeyTimerSoftIRQ:
		return CatPeriodic
	case KeyPageFault, KeyTLBMiss:
		return CatPageFault // memory-management noise
	case KeySchedule, KeyRCU, KeyRebalance:
		return CatScheduling
	case KeyPreemption:
		return CatPreemption
	case KeyNetIRQ, KeyNetRx, KeyNetTx:
		return CatIO
	case KeySyscall:
		return CatService
	default:
		return CatOther
	}
}

// IsNoise reports whether the category counts toward OS noise under the
// paper's definition (activities not explicitly requested by the
// application but needed for the correct functioning of the node).
func (c Category) IsNoise() bool { return c != CatService && c != CatOther }

// keyOfSpan classifies an entry tracepoint (and its argument) into a Key.
func keyOfSpan(id trace.ID, vec int64) Key {
	switch id {
	case trace.EvIRQEntry:
		switch vec {
		case trace.IRQTimer:
			return KeyTimerIRQ
		case trace.IRQNet:
			return KeyNetIRQ
		default:
			return KeyOtherIRQ
		}
	case trace.EvSoftIRQEntry, trace.EvTaskletEntry:
		switch vec {
		case trace.SoftIRQTimer:
			return KeyTimerSoftIRQ
		case trace.SoftIRQRCU:
			return KeyRCU
		case trace.SoftIRQSched:
			return KeyRebalance
		case trace.SoftIRQNetRx:
			return KeyNetRx
		case trace.SoftIRQNetTx:
			return KeyNetTx
		default:
			return KeyOther
		}
	case trace.EvTrapEntry:
		switch vec {
		case trace.TrapPageFault:
			return KeyPageFault
		case trace.TrapTLBMiss:
			return KeyTLBMiss
		}
		return KeyOtherTrap
	case trace.EvSyscallEntry:
		return KeySyscall
	case trace.EvSchedEntry:
		return KeySchedule
	default:
		return KeyOther
	}
}
