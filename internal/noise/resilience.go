// Resilience layer: cooperative cancellation and resource budgets.
//
// Every parallel analysis entry point takes a context.Context and
// checks it at batch/shard boundaries. Cancellation never leaks a
// goroutine (each phase joins its workers before returning) and never
// returns nothing: the caller receives a Report explicitly marked
// Incomplete, carrying how many event records were consumed and how
// many per-CPU walkers finished, together with an error that satisfies
// errors.Is against both ErrCancelled and the context's own sentinel.
//
// Budgets degrade instead of failing: an event/byte cap truncates
// ingestion to a prefix (the report covers that prefix exactly and is
// marked Incomplete), and an interruption cap replaces the detailed
// Interruptions list with a deterministic reservoir sample while every
// total — counts, noise nanoseconds, per-key summaries — stays exact.
// The reservoir uses a fixed sim.RNG seed, so the same input and budget
// always retain the same sample, keeping budgeted runs bit-reproducible
// across the sequential and all sharded analysis paths.

package noise

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"osnoise/internal/sim"
	"osnoise/internal/trace"
)

// ErrCancelled is the sentinel wrapped by every analysis entry point
// when its context is cancelled or times out mid-run. The returned
// error also wraps the context's own error, so callers may test either
// errors.Is(err, noise.ErrCancelled) or errors.Is(err,
// context.DeadlineExceeded).
var ErrCancelled = errors.New("noise: analysis cancelled")

// cancelErr builds the typed cancellation error for a done context.
// (It sits on the cancellation path of the Analyze* entry points,
// none of which are hotpath roots, so it needs no coldpath barrier.)
func cancelErr(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCancelled, ctx.Err())
}

// Budget bounds the resources one analysis may consume. The zero value
// imposes no limits. Budgets degrade gracefully rather than erroring:
// event and byte caps truncate ingestion (the report is marked
// Incomplete and covers the consumed prefix exactly), and the
// interruption cap reservoir-samples the retained Interruption records
// while keeping every aggregate total exact.
type Budget struct {
	// MaxEvents caps the number of event records ingested; zero means
	// unlimited. Ingestion stops after the cap and the report is marked
	// Incomplete.
	MaxEvents uint64
	// MaxBytes caps the input bytes ingested, counted over the
	// fixed-width event section (MaxBytes/trace.EventSize records); zero
	// means unlimited.
	MaxBytes uint64
	// MaxInterruptions caps the retained Interruption detail records;
	// zero means unlimited. Past the cap the list becomes a
	// deterministic reservoir sample (InterruptionsSampled is set and
	// InterruptionsTotal keeps the exact count); totals stay exact.
	MaxInterruptions int
}

// eventCap folds the event and byte limits into one record count
// (math.MaxUint64 when unlimited).
func (b Budget) eventCap() uint64 {
	limit := uint64(math.MaxUint64)
	if b.MaxEvents > 0 && b.MaxEvents < limit {
		limit = b.MaxEvents
	}
	if b.MaxBytes > 0 {
		if n := b.MaxBytes / trace.EventSize; n < limit {
			limit = n
		}
	}
	return limit
}

// truncate applies the event cap to an in-memory event stream,
// reporting whether anything was cut.
func (b Budget) truncate(events []trace.Event) ([]trace.Event, bool) {
	if limit := b.eventCap(); uint64(len(events)) > limit {
		return events[:limit], true
	}
	return events, false
}

// spanSeconds returns the time span of an event slice in seconds — the
// Seconds a budget-truncated analysis reports, mirroring
// Trace.DurationSeconds over the consumed prefix.
func spanSeconds(events []trace.Event) float64 {
	if len(events) == 0 {
		return 0
	}
	return float64(events[len(events)-1].TS-events[0].TS) / 1e9
}

// reservoirSeed fixes the interruption-sampling RNG stream so a
// budgeted report is identical across runs and across the sequential
// and sharded analysis paths.
const reservoirSeed = 0x6e6f697365 // "noise"

// applyInterruptionBudget reservoir-samples the Interruptions list down
// to the budget's cap, preserving the original (CPU-major, time-ordered)
// relative order of the survivors. Algorithm R over the record indices
// with a fixed-seed sim.RNG: deterministic for a given input length and
// cap. A no-op when the cap is unset or not exceeded.
func (r *Report) applyInterruptionBudget(b Budget) {
	k := b.MaxInterruptions
	if k <= 0 || len(r.Interruptions) <= k {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	rng := sim.NewRNG(reservoirSeed)
	for i := k; i < len(r.Interruptions); i++ {
		if j := rng.Intn(i + 1); j < k {
			idx[j] = i
		}
	}
	sort.Ints(idx)
	kept := make([]Interruption, k)
	for i, src := range idx {
		kept[i] = r.Interruptions[src]
	}
	r.InterruptionsTotal = len(r.Interruptions)
	r.Interruptions = kept
	r.InterruptionsSampled = true
}

// progress tracks how far a parallel analysis got, so a cancelled run
// can report its partial consumption. Workers update it only at chunk /
// per-CPU boundaries, keeping the accounting off the hot path.
type progress struct {
	events atomic.Uint64 // event records fully partitioned or decoded
	cpus   atomic.Int64  // per-CPU span walkers completed
}

// markCancelled stamps the partial-result contract onto a report whose
// run was cut short: Incomplete plus the consumption counters.
func (r *Report) markCancelled(p *progress) *Report {
	r.Incomplete = true
	r.EventsConsumed = p.events.Load()
	r.CPUsFinished = int(p.cpus.Load())
	return r
}
