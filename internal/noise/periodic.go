package noise

import (
	"math"
	"sort"
)

// PeriodCandidate is one detected periodic noise source.
type PeriodCandidate struct {
	PeriodNS int64 // detected repetition period
	// Score is the normalised autocorrelation peak in [0, 1]; higher
	// means more of the interruption arrivals repeat at this period.
	Score float64
	// Count is the approximate number of events participating.
	Count int
}

// DetectPeriods finds periodic structure in the noise interruption
// arrivals of one CPU — automating the reasoning of the paper's §V-B,
// where equidistant FTQ spikes suggest a common periodic activity (the
// timer tick). It computes the autocorrelation of the binned arrival
// series and returns the up-to-n strongest periods, strongest first.
//
// binNS sets the resolution (e.g. 1 ms); periods up to maxPeriodNS are
// searched. Typical use: DetectPeriods(r, 0, 1e6, 50e6, 3) finds the
// 10 ms tick on a HZ=100 trace.
func DetectPeriods(r *Report, cpu int32, binNS, maxPeriodNS int64, n int) []PeriodCandidate {
	if binNS <= 0 || maxPeriodNS <= binNS || n <= 0 {
		return nil
	}
	var times []int64
	for _, in := range r.Interruptions {
		if in.CPU == cpu {
			times = append(times, in.Start)
		}
	}
	if len(times) < 4 {
		return nil
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	t0, t1 := times[0], times[len(times)-1]
	bins := int((t1-t0)/binNS) + 1
	if bins < 8 {
		return nil
	}
	series := make([]float64, bins)
	for _, t := range times {
		series[(t-t0)/binNS]++
	}
	// Mean-centre so constant background does not correlate.
	var mean float64
	for _, v := range series {
		mean += v
	}
	mean /= float64(bins)
	var norm float64
	for i := range series {
		series[i] -= mean
		norm += series[i] * series[i]
	}
	if norm == 0 {
		return nil
	}

	maxLag := int(maxPeriodNS / binNS)
	if maxLag >= bins {
		maxLag = bins - 1
	}
	type lagScore struct {
		lag   int
		score float64
	}
	scores := make([]lagScore, 0, maxLag)
	for lag := 2; lag <= maxLag; lag++ {
		var acc float64
		for i := 0; i+lag < bins; i++ {
			acc += series[i] * series[i+lag]
		}
		scores = append(scores, lagScore{lag, acc / norm})
	}
	// Local maxima only: a true period peaks against its neighbours.
	var peaks []lagScore
	for i := 1; i < len(scores)-1; i++ {
		s := scores[i]
		if s.score > scores[i-1].score && s.score >= scores[i+1].score && s.score > 0.05 {
			peaks = append(peaks, s)
		}
	}
	// A true period also correlates at its integer multiples with
	// near-equal score, so statistical noise can rank a harmonic a hair
	// above the fundamental. Prefer the fundamental: drop any peak that
	// is an integer multiple of a shorter peak with comparable score.
	dominated := func(p lagScore) bool {
		for _, q := range peaks {
			if q.lag >= p.lag || q.score < 0.8*p.score {
				continue
			}
			if nearInteger(float64(p.lag)/float64(q.lag), 0.05) {
				return true
			}
		}
		return false
	}
	sort.Slice(peaks, func(i, j int) bool { return peaks[i].score > peaks[j].score })

	var out []PeriodCandidate
	for _, p := range peaks {
		if dominated(p) {
			continue
		}
		period := int64(p.lag) * binNS
		// Suppress harmonics of an already accepted period.
		dup := false
		for _, acc := range out {
			ratio := float64(period) / float64(acc.PeriodNS)
			if nearInteger(ratio, 0.05) || nearInteger(1/ratio, 0.05) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		out = append(out, PeriodCandidate{
			PeriodNS: period,
			Score:    p.score,
			Count:    int(float64(t1-t0) / float64(period)),
		})
		if len(out) >= n {
			break
		}
	}
	return out
}

func nearInteger(x, tol float64) bool {
	if x < 0.5 {
		return false
	}
	return math.Abs(x-math.Round(x)) < tol
}

// PerTaskNoise totals noise per victim application pid — the
// multi-process view the paper's execution traces provide (each rank of
// the application experiences its own jitter).
func (r *Report) PerTaskNoise() map[int64]int64 {
	out := make(map[int64]int64)
	for _, s := range r.Spans {
		if s.Noise && s.PID != 0 {
			out[s.PID] += s.Own
		}
	}
	return out
}
