package noise

import (
	"sort"

	"osnoise/internal/trace"
)

// Options tunes the analysis. The zero value is NOT ready to use; start
// from DefaultOptions.
type Options struct {
	// AppPIDs identifies the application processes (the noise victims).
	// Nil means every non-zero pid is treated as an application.
	AppPIDs map[int64]bool

	// AttributeNesting subtracts nested activity time from enclosing
	// spans so each event's own cost is exact. Disabling it reproduces
	// the double counting naive instrumentation suffers (ablation).
	AttributeNesting bool

	// RunnableFilter applies the paper's rule that kernel activity is
	// noise only when an application process is running or runnable on
	// the CPU. Disabling it counts every kernel span as noise (ablation).
	RunnableFilter bool

	// GapNS merges noise activities separated by at most this much user
	// time into one interruption (the spike an external benchmark sees).
	GapNS int64

	// KeepDurations retains raw per-event durations for histograms.
	KeepDurations bool

	// FromNS/ToNS restrict the analysis to a time window (both zero =
	// whole trace) — the zooming workflow of the paper's §III-C.
	// Events outside the window are ignored; spans straddling the
	// boundary are dropped like any other truncated span.
	FromNS, ToNS int64

	// Budget bounds the resources the analysis may consume; the zero
	// value imposes no limits. Event/byte caps truncate ingestion to a
	// prefix (the report is marked Incomplete), the interruption cap
	// reservoir-samples the retained detail records. See Budget.
	Budget Budget

	// Epochs splits the parallel pipeline's replay phase into this many
	// concurrently replayed time-epochs with stitched boundaries (see
	// epoch.go). 1 forces the single sequential pass; 0 picks an epoch
	// count automatically from the shard count and available cores. The
	// report is bit-identical at every setting — epochs trade replay
	// latency, never accuracy. Ignored by the sequential Analyze.
	Epochs int
}

// DefaultOptions returns the analysis configuration used throughout the
// paper reproduction.
func DefaultOptions() Options {
	return Options{
		AttributeNesting: true,
		RunnableFilter:   true,
		GapNS:            1000,
		KeepDurations:    true,
	}
}

// openSpan is a kernel activity whose exit has not been seen yet.
type openSpan struct {
	key       Key
	start     int64
	childWall int64
	exitID    trace.ID
}

// window is an open preemption window for a runnable-but-preempted task.
type window struct {
	start      int64
	cpu        int32
	kernelWall int64
}

// cpuState is the per-CPU walking state.
type cpuState struct {
	stack   []openSpan
	owner   int64 // pid of the app running or runnable-waiting here
	current int64 // pid currently running (0 = idle)
}

// Analyze runs the full noise analysis over a collected trace. An
// event/byte budget in opts truncates the analysis to the trace's
// prefix (the report is then marked Incomplete and Seconds covers the
// consumed prefix only).
//
//noisevet:hotpath
func Analyze(tr *trace.Trace, opts Options) *Report {
	events, truncated := opts.Budget.truncate(tr.Events)
	r := &Report{CPUs: tr.CPUs, Seconds: tr.DurationSeconds()}
	if truncated {
		r.Incomplete = true
		r.Seconds = spanSeconds(events)
	}
	r.EventsConsumed = uint64(len(events))
	if opts.ToNS > opts.FromNS && (opts.FromNS != 0 || opts.ToNS != 0) {
		r.Seconds = float64(opts.ToNS-opts.FromNS) / 1e9
	}
	for k := Key(0); k < NumKeys; k++ {
		r.PerKey[k] = &KeyStats{Key: k}
	}
	appPIDs := opts.AppPIDs
	if appPIDs == nil {
		// The trace's embedded process table (LTTng metadata analogue)
		// identifies the application processes for offline analysis.
		appPIDs = tr.AppPIDs()
	}
	isApp := func(pid int64) bool {
		if pid == 0 {
			return false
		}
		if appPIDs == nil {
			return true
		}
		return appPIDs[pid]
	}

	cpus := make([]cpuState, tr.CPUs)
	windows := make(map[int64]*window) // open preemption windows per pid
	lastRunner := make([]int64, tr.CPUs)

	record := func(s Span) { r.record(s, opts.KeepDurations) }

	windowed := opts.FromNS != 0 || opts.ToNS != 0
	for _, ev := range events {
		if windowed && (ev.TS < opts.FromNS || (opts.ToNS > 0 && ev.TS > opts.ToNS)) {
			continue
		}
		if ev.CPU < 0 || int(ev.CPU) >= len(cpus) {
			r.Dropped++
			continue
		}
		cs := &cpus[ev.CPU]
		switch {
		case ev.ID.IsEntry():
			cs.stack = append(cs.stack, openSpan{
				key:    keyOfSpan(ev.ID, ev.Arg1),
				start:  ev.TS,
				exitID: ev.ID.ExitFor(),
			})

		case ev.ID.IsExit():
			if len(cs.stack) == 0 {
				r.Dropped++ // span began before tracing started
				continue
			}
			top := cs.stack[len(cs.stack)-1]
			if top.exitID != ev.ID {
				// Corrupt nesting; drop the whole stack for this CPU.
				r.Dropped += len(cs.stack)
				cs.stack = cs.stack[:0]
				continue
			}
			cs.stack = cs.stack[:len(cs.stack)-1]
			wall := ev.TS - top.start
			own := wall
			if opts.AttributeNesting {
				own = wall - top.childWall
				if own < 0 {
					own = 0
				}
			}
			if len(cs.stack) > 0 {
				cs.stack[len(cs.stack)-1].childWall += wall
			}
			cat := CategoryOf(top.key)
			isNoise := cat.IsNoise()
			if opts.RunnableFilter && cs.owner == 0 {
				isNoise = false
			}
			record(Span{
				Key: top.key, CPU: ev.CPU, Start: top.start,
				Wall: wall, Own: own, PID: cs.owner, Noise: isNoise,
			})
			// Top-level kernel time inside a preemption window is
			// charged to its own key; subtract it from the window so
			// the wait is not double counted.
			if len(cs.stack) == 0 && cs.owner != 0 && cs.current != cs.owner {
				if w := windows[cs.owner]; w != nil && w.cpu == ev.CPU {
					w.kernelWall += wall
				}
			}

		case ev.ID == trace.EvSchedSwitch:
			prev, next, prevState := ev.Arg1, ev.Arg2, ev.Arg3
			if prev != 0 && isApp(prev) {
				if prevState == trace.TaskStateRunning {
					// Preempted while runnable: open a window.
					windows[prev] = &window{start: ev.TS, cpu: ev.CPU}
					if cs.owner == 0 {
						cs.owner = prev
					}
				} else {
					// Voluntary block: no victim remains.
					delete(windows, prev)
					if cs.owner == prev {
						cs.owner = 0
					}
				}
			}
			if next != 0 && isApp(next) {
				if w := windows[next]; w != nil {
					preempt := (ev.TS - w.start) - w.kernelWall
					if preempt > 0 {
						culprit := lastRunner[w.cpu]
						if culprit == next {
							culprit = 0
						}
						record(Span{
							Key: KeyPreemption, CPU: w.cpu, Start: w.start,
							Wall: preempt, Own: preempt, PID: next,
							Culprit: culprit, Noise: true,
						})
					}
					delete(windows, next)
				}
				cs.owner = next
			}
			cs.current = next
			if next != 0 {
				lastRunner[ev.CPU] = next
			}

		case ev.ID == trace.EvSchedMigrate:
			pid, from, to := ev.Arg1, ev.Arg2, ev.Arg3
			if w := windows[pid]; w != nil {
				w.cpu = int32(to)
			}
			if int(from) < len(cpus) && cpus[from].owner == pid {
				cpus[from].owner = 0
			}
			if int(to) < len(cpus) && cpus[to].owner == 0 && isApp(pid) {
				cpus[to].owner = pid
			}

		case ev.ID == trace.EvProcessExit:
			delete(windows, ev.Arg1)
		}
	}
	// Unclosed spans and windows at the trace boundary are dropped.
	for i := range cpus {
		r.Dropped += len(cpus[i].stack)
	}
	r.Dropped += len(windows)

	r.buildInterruptions(opts.GapNS)
	r.applyInterruptionBudget(opts.Budget)
	return r
}

// record accumulates one finished span into the report: per-key summary
// (and raw duration when keep is set), the noise breakdown, and the
// global span list. Both the sequential and the parallel analyzers feed
// every span through this single method, in the same global order, which
// is what makes their reports bit-identical (floating-point accumulation
// is order-sensitive).
func (r *Report) record(s Span, keep bool) {
	ks := r.PerKey[s.Key]
	ks.Summary.Add(s.Own)
	if keep {
		ks.Durations = append(ks.Durations, s.Own)
	}
	if s.Noise {
		cat := CategoryOf(s.Key)
		r.Breakdown[cat] += s.Own
		r.TotalNoiseNS += s.Own
	}
	r.Spans = append(r.Spans, s)
}

// noiseByCPU groups the report's noise spans per CPU, indexed by CPU id
// (span CPUs are validated against the CPU count at ingestion, so the
// index is always in range), and returns the occupied CPU ids in
// ascending order. The slice index replaces a map so the grouping is
// iteration-order-free and allocation-light on the Analyze hot path.
func (r *Report) noiseByCPU() ([][]Span, []int32) {
	byCPU := make([][]Span, r.CPUs)
	for _, s := range r.Spans {
		if s.Noise {
			byCPU[s.CPU] = append(byCPU[s.CPU], s)
		}
	}
	cpuIDs := make([]int32, 0, len(byCPU))
	for cpu, spans := range byCPU {
		if len(spans) > 0 {
			cpuIDs = append(cpuIDs, int32(cpu))
		}
	}
	return byCPU, cpuIDs
}

// interruptionsForCPU groups one CPU's noise spans (sorted in place) into
// maximal interruptions separated by more than gap nanoseconds of user
// time. CPUs are independent here — interruption grouping never crosses
// a CPU — so the parallel analyzer runs this per CPU concurrently and
// concatenates in CPU order, reproducing the sequential output exactly.
//
// The sort must be STABLE: two spans sharing both start and end (same-
// timestamp boundaries, which epoch stitching makes common) keep their
// record order, the contract the parallel path reproduces with an
// explicit record-index tie-break (keyCmpTotal). An unstable sort here
// would order tied components arbitrarily and the two paths could
// diverge.
func interruptionsForCPU(cpu int32, spans []Span, gap int64) []Interruption {
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Start+spans[i].Wall > spans[j].Start+spans[j].Wall
	})
	// Worst case every span is its own interruption; the slice is copied
	// into the report and discarded, so the over-cap is transient.
	out := make([]Interruption, 0, len(spans))
	var cur *Interruption
	for _, s := range spans {
		end := s.Start + s.Wall
		if cur != nil && s.Start-cur.End <= gap {
			cur.Components = append(cur.Components, Component{Key: s.Key, Start: s.Start, Own: s.Own})
			cur.Total += s.Own
			if end > cur.End {
				cur.End = end
			}
			continue
		}
		if cur != nil {
			out = append(out, *cur)
		}
		cur = &Interruption{
			CPU: cpu, Start: s.Start, End: end, Total: s.Own,
			Components: []Component{{Key: s.Key, Start: s.Start, Own: s.Own}},
		}
	}
	if cur != nil {
		out = append(out, *cur)
	}
	return out
}

// buildInterruptions groups adjacent noise spans per CPU into the spikes
// an external micro-benchmark would observe.
func (r *Report) buildInterruptions(gap int64) {
	byCPU, cpuIDs := r.noiseByCPU()
	for _, cpu := range cpuIDs {
		r.Interruptions = append(r.Interruptions, interruptionsForCPU(cpu, byCPU[cpu], gap)...)
	}
}
