package noise_test

// Epoch-split replay equivalence: every shard × epoch combination must
// reproduce the sequential analyzer bit for bit — the stitching
// invariant of epoch.go. The hand-built traces aim the epoch cuts at
// the awkward places: inside a nested interruption, inside an open
// preemption window, across a region with no application events at
// all, and across same-timestamp span boundaries (which force the
// interruption sort's tie-break fallback).

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"osnoise/internal/noise"
	"osnoise/internal/trace"
)

// shardEpochMatrix runs tr through AnalyzeParallel and AnalyzeRaw at
// every shards × epochs combination and compares each report against
// the sequential oracle.
func shardEpochMatrix(t *testing.T, tr *trace.Trace, base noise.Options) {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	want := noise.Analyze(tr, base)
	for _, shards := range []int{1, 2, 4, 8} {
		for _, epochs := range []int{1, 2, 4, 8} {
			opts := base
			opts.Epochs = epochs
			t.Run(fmt.Sprintf("shards%d/epochs%d", shards, epochs), func(t *testing.T) {
				got, err := noise.AnalyzeParallel(context.Background(), tr, opts, shards)
				if err != nil {
					t.Fatal(err)
				}
				compareReports(t, want, got)
			})
			t.Run(fmt.Sprintf("shards%d/epochs%d/raw", shards, epochs), func(t *testing.T) {
				got, err := noise.AnalyzeRaw(context.Background(), bytes.NewReader(raw), int64(len(raw)), opts, shards)
				if err != nil {
					t.Fatal(err)
				}
				compareReports(t, want, got)
			})
		}
	}
}

// TestEpochsMatchSequential sweeps shard and epoch counts over
// simulated workload traces, for every option variant. This is the
// suite the tentpole is locked by: 1/2/4/8 shards × 1/2/4/8 epochs,
// every Report field compared (see compareReports).
func TestEpochsMatchSequential(t *testing.T) {
	for _, seed := range []uint64{3, 17} {
		tr := simTrace(seed)
		for name, opts := range optionVariants() {
			t.Run(fmt.Sprintf("seed%d/%s", seed, name), func(t *testing.T) {
				shardEpochMatrix(t, tr, opts)
			})
		}
	}
}

// TestEpochCutInsideNestedInterruption hand-builds a trace whose exits
// cluster inside nested kernel activity while a preemption window is
// open, so low epoch counts are forced to cut between a child's exit
// and its parent's — the snapshot must carry the half-closed nesting
// and the window across the boundary.
func TestEpochCutInsideNestedInterruption(t *testing.T) {
	tr := handTrace(2,
		appRunning(0, 0, 42),
		appRunning(0, 1, 43),
		// Preempt 42 while runnable: window opens and stays open across
		// several epoch cuts.
		trace.Event{TS: 50, CPU: 0, ID: trace.EvSchedSwitch, Arg1: 42, Arg2: 7, Arg3: trace.TaskStateRunning},
		// Nested interruption on CPU 1: trap inside softirq inside IRQ.
		trace.Event{TS: 100, CPU: 1, ID: trace.EvIRQEntry, Arg1: trace.IRQTimer},
		trace.Event{TS: 110, CPU: 1, ID: trace.EvSoftIRQEntry, Arg1: trace.SoftIRQTimer},
		trace.Event{TS: 120, CPU: 1, ID: trace.EvTrapEntry, Arg1: trace.TrapPageFault},
		trace.Event{TS: 130, CPU: 1, ID: trace.EvTrapExit, Arg1: trace.TrapPageFault}, // exit 0
		trace.Event{TS: 140, CPU: 1, ID: trace.EvTrapEntry, Arg1: trace.TrapPageFault},
		trace.Event{TS: 150, CPU: 1, ID: trace.EvTrapExit, Arg1: trace.TrapPageFault}, // exit 1
		trace.Event{TS: 160, CPU: 1, ID: trace.EvSoftIRQExit, Arg1: trace.SoftIRQTimer}, // exit 2
		trace.Event{TS: 170, CPU: 1, ID: trace.EvIRQExit, Arg1: trace.IRQTimer},         // exit 3
		// Kernel work on CPU 0 inside the open window: charged to its key,
		// subtracted from the window (topLevel bookkeeping across cuts).
		trace.Event{TS: 200, CPU: 0, ID: trace.EvIRQEntry, Arg1: trace.IRQNet},
		trace.Event{TS: 230, CPU: 0, ID: trace.EvIRQExit, Arg1: trace.IRQNet}, // exit 4
		// Second nested burst, cut-adjacent to the window close.
		trace.Event{TS: 300, CPU: 1, ID: trace.EvIRQEntry, Arg1: trace.IRQTimer},
		trace.Event{TS: 310, CPU: 1, ID: trace.EvTrapEntry, Arg1: trace.TrapPageFault},
		trace.Event{TS: 320, CPU: 1, ID: trace.EvTrapExit, Arg1: trace.TrapPageFault}, // exit 5
		trace.Event{TS: 330, CPU: 1, ID: trace.EvIRQExit, Arg1: trace.IRQTimer},       // exit 6
		// Resume 42: the preemption span closes using window state that
		// crossed multiple epoch boundaries.
		trace.Event{TS: 400, CPU: 0, ID: trace.EvSchedSwitch, Arg1: 7, Arg2: 42, Arg3: trace.TaskStateBlocked},
		trace.Event{TS: 450, CPU: 0, ID: trace.EvIRQEntry, Arg1: trace.IRQTimer},
		trace.Event{TS: 470, CPU: 0, ID: trace.EvIRQExit, Arg1: trace.IRQTimer}, // exit 7
	)
	for name, opts := range optionVariants() {
		t.Run(name, func(t *testing.T) { shardEpochMatrix(t, tr, opts) })
	}
}

// TestEpochZeroAppEvents covers epochs that contain no application
// events at all: with 8 epochs over a long run of bare kernel spans,
// several epochs see neither a switch nor an app pid — their snapshots
// must still thread the (empty) owner state through unchanged.
func TestEpochZeroAppEvents(t *testing.T) {
	evs := []trace.Event{}
	// No appRunning boot at all: every CPU stays ownerless, so under the
	// runnable filter none of this is noise — and with the filter off all
	// of it is. Both must stitch identically.
	ts := int64(100)
	for i := 0; i < 40; i++ {
		evs = append(evs,
			trace.Event{TS: ts, CPU: int32(i % 2), ID: trace.EvIRQEntry, Arg1: trace.IRQTimer},
			trace.Event{TS: ts + 20, CPU: int32(i % 2), ID: trace.EvIRQExit, Arg1: trace.IRQTimer},
		)
		ts += 100
	}
	tr := handTrace(2, evs...)
	for name, opts := range optionVariants() {
		t.Run(name, func(t *testing.T) { shardEpochMatrix(t, tr, opts) })
	}
}

// TestEpochSameTimestampTies builds spans sharing identical start and
// end timestamps — zero-width and duplicate boundaries — so the
// interruption sort cannot distinguish them by key alone and must fall
// back to the record-order tie-break, across every epoch count.
func TestEpochSameTimestampTies(t *testing.T) {
	evs := []trace.Event{appRunning(0, 0, 42), appRunning(0, 1, 43)}
	for i := 0; i < 12; i++ {
		ts := int64(100 + 50*(i/4)) // four bursts share each timestamp
		cpu := int32(i % 2)
		evs = append(evs,
			trace.Event{TS: ts, CPU: cpu, ID: trace.EvIRQEntry, Arg1: trace.IRQTimer},
			trace.Event{TS: ts, CPU: cpu, ID: trace.EvIRQExit, Arg1: trace.IRQTimer},
		)
	}
	tr := handTrace(2, evs...)
	for name, opts := range optionVariants() {
		t.Run(name, func(t *testing.T) { shardEpochMatrix(t, tr, opts) })
	}
}

// TestSingleEpochDegenerate pins the degenerate path: Epochs=1 must
// take the direct reportSink pass — replaying exactly like the
// pre-epoch pipeline — and match the sequential report bit for bit at
// every shard count, including on a full simulated workload.
func TestSingleEpochDegenerate(t *testing.T) {
	tr := simTrace(9)
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	opts := noise.DefaultOptions()
	opts.Epochs = 1
	want := noise.Analyze(tr, opts)
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			got, err := noise.AnalyzeParallel(context.Background(), tr, opts, shards)
			if err != nil {
				t.Fatal(err)
			}
			compareReports(t, want, got)
			gotRaw, err := noise.AnalyzeRaw(context.Background(), bytes.NewReader(raw), int64(len(raw)), opts, shards)
			if err != nil {
				t.Fatal(err)
			}
			compareReports(t, want, gotRaw)
		})
	}
}
