// Incremental summary windows.
//
// The batch analyzers produce one Report per trace; a long-running
// collector sees an unbounded sequence of them per tenant and needs a
// bounded, mergeable aggregate instead. WindowSummary is that
// aggregate: the additive slice of a Report (per-key stats.Summary,
// per-category noise totals, event/drop/interruption counters) folded
// with the same stats.Merge machinery the parallel pipeline uses, in
// arrival order, so folding exactly one complete Report into a zero
// WindowSummary reproduces the batch analyzer's numbers bit for bit —
// the daemon's per-stream determinism contract (docs/ARCHITECTURE.md
// §6) rests on that.
//
// Window arranges WindowSummary values into a rolling ring (the
// stats.Rolling shape, one bucket per flush interval): Add folds a
// finished Report into the current bucket, Rotate advances the ring,
// and Merged folds the live buckets oldest-first into the summary the
// sinks export.

package noise

import "osnoise/internal/stats"

// WindowSummary is a compact, mergeable aggregate of one or more
// Reports: everything a rolling noise summary needs, nothing sized by
// the trace (no spans, no durations, no interruption detail).
type WindowSummary struct {
	// Reports counts the Reports folded in.
	Reports int
	// Incomplete counts folded Reports that were marked Incomplete
	// (budget-truncated or cancelled mid-run).
	Incomplete int
	// Sampled counts folded Reports whose interruption detail was
	// reservoir-sampled by a budget cap.
	Sampled int
	// CPUs is the largest CPU count among the folded Reports.
	CPUs int
	// Seconds sums the analysed duration of the folded Reports.
	Seconds float64
	// EventsConsumed sums the event records the folded analyses
	// ingested.
	EventsConsumed uint64
	// Dropped sums the dropped-record counters of the folded Reports.
	Dropped int
	// Interruptions sums exact interruption counts (a sampled Report
	// contributes its InterruptionsTotal, not its sample length).
	Interruptions int
	// TotalNoiseNS sums the noise nanoseconds of the folded Reports.
	TotalNoiseNS int64
	// Breakdown sums noise nanoseconds per category.
	Breakdown [NumCategories]int64
	// PerKey merges the per-activity summaries of the folded Reports
	// in arrival order (stats.Summary.Merge keeps count/sum/min/max
	// and the variance moments exact).
	PerKey [NumKeys]stats.Summary
}

// AddReport folds one finished Report into the summary. Folding a
// single complete Report into a zero WindowSummary copies its
// aggregates exactly, including the order-sensitive floating-point
// moment state.
func (w *WindowSummary) AddReport(r *Report) {
	w.Reports++
	if r.Incomplete {
		w.Incomplete++
	}
	if r.InterruptionsSampled {
		w.Sampled++
		w.Interruptions += r.InterruptionsTotal
	} else {
		w.Interruptions += len(r.Interruptions)
	}
	if r.CPUs > w.CPUs {
		w.CPUs = r.CPUs
	}
	w.Seconds += r.Seconds
	w.EventsConsumed += r.EventsConsumed
	w.Dropped += r.Dropped
	w.TotalNoiseNS += r.TotalNoiseNS
	for c := range w.Breakdown {
		w.Breakdown[c] += r.Breakdown[c]
	}
	for k := Key(0); k < NumKeys; k++ {
		if ks := r.PerKey[k]; ks != nil {
			w.PerKey[k].Merge(&ks.Summary)
		}
	}
}

// Merge folds another WindowSummary into w (other is the newer of the
// two; callers merge oldest first so the moment accumulation order is
// deterministic).
func (w *WindowSummary) Merge(other *WindowSummary) {
	w.Reports += other.Reports
	w.Incomplete += other.Incomplete
	w.Sampled += other.Sampled
	if other.CPUs > w.CPUs {
		w.CPUs = other.CPUs
	}
	w.Seconds += other.Seconds
	w.EventsConsumed += other.EventsConsumed
	w.Dropped += other.Dropped
	w.Interruptions += other.Interruptions
	w.TotalNoiseNS += other.TotalNoiseNS
	for c := range w.Breakdown {
		w.Breakdown[c] += other.Breakdown[c]
	}
	for k := range w.PerKey {
		w.PerKey[k].Merge(&other.PerKey[k])
	}
}

// NoiseFraction returns total noise as a fraction of the summed CPU
// time the folded Reports cover, mirroring Report.NoiseFraction.
func (w *WindowSummary) NoiseFraction() float64 {
	if w.Seconds <= 0 || w.CPUs <= 0 {
		return 0
	}
	return float64(w.TotalNoiseNS) / (w.Seconds * 1e9 * float64(w.CPUs))
}

// CategoryFraction returns a category's share of the window's total
// noise.
func (w *WindowSummary) CategoryFraction(c Category) float64 {
	if w.TotalNoiseNS == 0 {
		return 0
	}
	return float64(w.Breakdown[c]) / float64(w.TotalNoiseNS)
}

// Window is a rolling ring of WindowSummary buckets — the per-tenant
// aggregate a collector daemon keeps between flushes. Reports fold
// into the current bucket; Rotate advances the ring once per flush
// interval, discarding the oldest bucket when the ring is full, so
// Merged always covers the last Buckets() intervals. A Window is not
// safe for concurrent use; callers hold their own locks.
type Window struct {
	buckets []WindowSummary
	head    int
	filled  int
}

// NewWindow returns a rolling window of n buckets (n < 1 is treated
// as 1: a plain resettable summary).
func NewWindow(n int) *Window {
	if n < 1 {
		n = 1
	}
	return &Window{buckets: make([]WindowSummary, n), filled: 1}
}

// Add folds one finished Report into the current bucket.
func (w *Window) Add(r *Report) { w.buckets[w.head].AddReport(r) }

// Rotate freezes the current bucket and makes a zeroed bucket
// current, discarding the oldest bucket once the ring is full.
func (w *Window) Rotate() {
	w.head = (w.head + 1) % len(w.buckets)
	w.buckets[w.head] = WindowSummary{}
	if w.filled < len(w.buckets) {
		w.filled++
	}
}

// Buckets returns the window width in buckets.
func (w *Window) Buckets() int { return len(w.buckets) }

// Merged folds the live buckets, oldest first, into one summary
// covering the whole window.
func (w *Window) Merged() WindowSummary {
	var out WindowSummary
	n := len(w.buckets)
	for i := w.filled - 1; i >= 0; i-- {
		out.Merge(&w.buckets[(w.head-i+n*2)%n])
	}
	return out
}
