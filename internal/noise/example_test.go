package noise_test

import (
	"fmt"

	"osnoise/internal/noise"
	"osnoise/internal/trace"
)

// ExampleAnalyze runs the full analysis on a minimal hand-built trace:
// the application (pid 42) starts running on CPU 0, then a timer
// interrupt steals 2.5 µs from it.
func ExampleAnalyze() {
	tr := &trace.Trace{CPUs: 1, Events: []trace.Event{
		{TS: 0, CPU: 0, ID: trace.EvSchedSwitch, Arg1: 0, Arg2: 42, Arg3: trace.TaskStateBlocked},
		{TS: 10_000, CPU: 0, ID: trace.EvIRQEntry, Arg1: trace.IRQTimer},
		{TS: 12_500, CPU: 0, ID: trace.EvIRQExit, Arg1: trace.IRQTimer},
	}}
	rep := noise.Analyze(tr, noise.DefaultOptions())
	fmt.Printf("noise: %dns in %d interruption(s)\n", rep.TotalNoiseNS, len(rep.Interruptions))
	fmt.Println(rep.Interruptions[0].Describe())
	// Output:
	// noise: 2500ns in 1 interruption(s)
	// timer_interrupt (2500ns) = 2500ns
}
