package noise_test

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"reflect"
	"testing"

	"osnoise/internal/noise"
	"osnoise/internal/sim"
	"osnoise/internal/trace"
	"osnoise/internal/workload"
)

// compareReports asserts got is bit-identical to want, including the
// order-sensitive floating-point summary state (compared via Float64bits
// of the derived moments, since m2/mean are unexported).
func compareReports(t *testing.T, want, got *noise.Report) {
	t.Helper()
	if want.CPUs != got.CPUs || math.Float64bits(want.Seconds) != math.Float64bits(got.Seconds) {
		t.Errorf("header: want cpus=%d s=%x, got cpus=%d s=%x",
			want.CPUs, math.Float64bits(want.Seconds), got.CPUs, math.Float64bits(got.Seconds))
	}
	if want.Dropped != got.Dropped {
		t.Errorf("dropped: want %d, got %d", want.Dropped, got.Dropped)
	}
	// Accounting invariant: every ingested record is either consumed or
	// (for routing rejects) counted in Dropped — the parallel paths must
	// agree with the sequential analyzer on both tallies, which the
	// out-of-range-CPU events in the handmade trace exercise.
	if want.EventsConsumed != got.EventsConsumed {
		t.Errorf("events consumed: want %d, got %d", want.EventsConsumed, got.EventsConsumed)
	}
	if want.TotalNoiseNS != got.TotalNoiseNS {
		t.Errorf("total noise: want %d, got %d", want.TotalNoiseNS, got.TotalNoiseNS)
	}
	if want.Breakdown != got.Breakdown {
		t.Errorf("breakdown: want %v, got %v", want.Breakdown, got.Breakdown)
	}
	for k := noise.Key(0); k < noise.NumKeys; k++ {
		ws, gs := want.PerKey[k], got.PerKey[k]
		if ws.Summary != gs.Summary {
			t.Errorf("%v summary: want %+v, got %+v", k, ws.Summary, gs.Summary)
		}
		if math.Float64bits(ws.Summary.Mean()) != math.Float64bits(gs.Summary.Mean()) ||
			math.Float64bits(ws.Summary.StdDev()) != math.Float64bits(gs.Summary.StdDev()) {
			t.Errorf("%v moments differ: want mean=%v sd=%v, got mean=%v sd=%v",
				k, ws.Summary.Mean(), ws.Summary.StdDev(), gs.Summary.Mean(), gs.Summary.StdDev())
		}
		if !reflect.DeepEqual(ws.Durations, gs.Durations) {
			t.Errorf("%v durations differ: %d vs %d entries", k, len(ws.Durations), len(gs.Durations))
		}
	}
	if !reflect.DeepEqual(want.Spans, got.Spans) {
		t.Errorf("spans differ: %d vs %d", len(want.Spans), len(got.Spans))
		for i := range want.Spans {
			if i < len(got.Spans) && want.Spans[i] != got.Spans[i] {
				t.Errorf("first divergence at span %d: want %+v, got %+v", i, want.Spans[i], got.Spans[i])
				break
			}
		}
	}
	if !reflect.DeepEqual(want.Interruptions, got.Interruptions) {
		t.Errorf("interruptions differ: %d vs %d", len(want.Interruptions), len(got.Interruptions))
	}
}

// handTrace builds a trace from literal events.
func handTrace(cpus int, evs ...trace.Event) *trace.Trace {
	return &trace.Trace{CPUs: cpus, Events: evs}
}

// appRunning returns the boot switch that puts pid on cpu.
func appRunning(ts int64, cpu int32, pid int64) trace.Event {
	return trace.Event{TS: ts, CPU: cpu, ID: trace.EvSchedSwitch,
		Arg1: 0, Arg2: pid, Arg3: trace.TaskStateBlocked}
}

// simTrace runs a workload simulation long enough to exercise nesting,
// preemption windows, and migrations across several CPUs.
func simTrace(seed uint64) *trace.Trace {
	return workload.New(workload.AMG(), workload.Options{
		Duration: sim.Second / 2,
		Seed:     seed,
	}).Execute()
}

func optionVariants() map[string]noise.Options {
	base := noise.DefaultOptions()
	noNest := base
	noNest.AttributeNesting = false
	noFilter := base
	noFilter.RunnableFilter = false
	noDur := base
	noDur.KeepDurations = false
	windowed := base
	windowed.FromNS = 50_000_000
	windowed.ToNS = 350_000_000
	return map[string]noise.Options{
		"default":  base,
		"noNest":   noNest,
		"noFilter": noFilter,
		"noDur":    noDur,
		"windowed": windowed,
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	for _, seed := range []uint64{1, 6, 42} {
		tr := simTrace(seed)
		for name, opts := range optionVariants() {
			want := noise.Analyze(tr, opts)
			for _, shards := range []int{1, 2, 4, 8, tr.CPUs*2 + 3} {
				t.Run(fmt.Sprintf("seed%d/%s/shards%d", seed, name, shards), func(t *testing.T) {
					got, err := noise.AnalyzeParallel(context.Background(), tr, opts, shards)
					if err != nil {
						t.Fatal(err)
					}
					compareReports(t, want, got)
				})
			}
		}
	}
}

func TestStreamMatchesSequential(t *testing.T) {
	for _, seed := range []uint64{1, 6} {
		tr := simTrace(seed)
		var buf bytes.Buffer
		if err := trace.Write(&buf, tr); err != nil {
			t.Fatal(err)
		}
		for name, opts := range optionVariants() {
			want := noise.Analyze(tr, opts)
			for _, shards := range []int{1, 3, 8} {
				t.Run(fmt.Sprintf("seed%d/%s/shards%d", seed, name, shards), func(t *testing.T) {
					d, err := trace.NewDecoder(bytes.NewReader(buf.Bytes()))
					if err != nil {
						t.Fatal(err)
					}
					got, err := noise.AnalyzeStream(context.Background(), d, opts, shards)
					if err != nil {
						t.Fatal(err)
					}
					compareReports(t, want, got)
				})
			}
		}
	}
}

// TestRawMatchesSequential locks the zero-materialisation path: running
// the analysis straight off the encoded trace bytes must reproduce the
// sequential report bit for bit, windowing and ablations included.
func TestRawMatchesSequential(t *testing.T) {
	for _, seed := range []uint64{1, 6} {
		tr := simTrace(seed)
		var buf bytes.Buffer
		if err := trace.Write(&buf, tr); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()
		for name, opts := range optionVariants() {
			want := noise.Analyze(tr, opts)
			for _, shards := range []int{1, 3, 8} {
				t.Run(fmt.Sprintf("seed%d/%s/shards%d", seed, name, shards), func(t *testing.T) {
					got, err := noise.AnalyzeRaw(context.Background(), bytes.NewReader(raw), int64(len(raw)), opts, shards)
					if err != nil {
						t.Fatal(err)
					}
					compareReports(t, want, got)
				})
			}
		}
	}
}

// TestParallelHandmade exercises the tricky cross-CPU scheduler cases on
// a hand-built trace: migration of a preempted task, out-of-range CPUs,
// unmatched exits, and process exit closing a window.
func TestParallelHandmade(t *testing.T) {
	tr := handTrace(2,
		appRunning(0, 0, 42),
		trace.Event{TS: 100, CPU: 0, ID: trace.EvIRQEntry, Arg1: trace.IRQTimer},
		trace.Event{TS: 300, CPU: 1, ID: trace.EvIRQEntry, Arg1: trace.IRQNet},
		// Preempt 42 on cpu 0 while runnable.
		trace.Event{TS: 400, CPU: 0, ID: trace.EvSchedSwitch, Arg1: 42, Arg2: 7, Arg3: trace.TaskStateRunning},
		trace.Event{TS: 500, CPU: 0, ID: trace.EvIRQExit, Arg1: trace.IRQTimer},
		// Migrate the preempted task to cpu 1.
		trace.Event{TS: 600, CPU: 0, ID: trace.EvSchedMigrate, Arg1: 42, Arg2: 0, Arg3: 1},
		trace.Event{TS: 700, CPU: 1, ID: trace.EvIRQExit, Arg1: trace.IRQNet},
		// Unmatched exit on cpu 1 (span began before tracing).
		trace.Event{TS: 750, CPU: 1, ID: trace.EvTaskletExit, Arg1: trace.SoftIRQTimer},
		// Out-of-range CPU event must be dropped identically.
		trace.Event{TS: 760, CPU: 9, ID: trace.EvIRQEntry, Arg1: trace.IRQTimer},
		// Resume 42 on cpu 1, closing the migrated window there.
		trace.Event{TS: 900, CPU: 1, ID: trace.EvSchedSwitch, Arg1: 0, Arg2: 42, Arg3: trace.TaskStateBlocked},
		// A second app task exits while preempted.
		trace.Event{TS: 950, CPU: 0, ID: trace.EvSchedSwitch, Arg1: 7, Arg2: 8, Arg3: trace.TaskStateRunning},
		trace.Event{TS: 980, CPU: 0, ID: trace.EvProcessExit, Arg1: 7},
		// Leftover open span at the boundary.
		trace.Event{TS: 990, CPU: 0, ID: trace.EvIRQEntry, Arg1: trace.IRQTimer},
	)
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for name, opts := range optionVariants() {
		want := noise.Analyze(tr, opts)
		for _, shards := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("%s/shards%d", name, shards), func(t *testing.T) {
				got, err := noise.AnalyzeParallel(context.Background(), tr, opts, shards)
				if err != nil {
					t.Fatal(err)
				}
				compareReports(t, want, got)
			})
			t.Run(fmt.Sprintf("%s/shards%d/raw", name, shards), func(t *testing.T) {
				got, err := noise.AnalyzeRaw(context.Background(), bytes.NewReader(raw), int64(len(raw)), opts, shards)
				if err != nil {
					t.Fatal(err)
				}
				compareReports(t, want, got)
			})
		}
	}
}
