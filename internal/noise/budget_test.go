package noise_test

// Budget degradation tests: resource caps must degrade the report
// gracefully — truncated prefix, sampled detail, exact totals — and do
// so bit-identically across the sequential, parallel, stream, and raw
// analysis paths.

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	"osnoise/internal/noise"
	"osnoise/internal/trace"
)

// runAllPaths analyses the same trace through every entry point and
// asserts the four reports are bit-identical, returning the sequential
// one.
func runAllPaths(t *testing.T, tr *trace.Trace, opts noise.Options, shards int) *noise.Report {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	ctx := context.Background()

	want := noise.Analyze(tr, opts)

	par, err := noise.AnalyzeParallel(ctx, tr, opts, shards)
	if err != nil {
		t.Fatalf("AnalyzeParallel: %v", err)
	}
	compareReports(t, want, par)

	d, err := trace.NewDecoder(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	str, err := noise.AnalyzeStream(ctx, d, opts, shards)
	if err != nil {
		t.Fatalf("AnalyzeStream: %v", err)
	}
	compareReports(t, want, str)

	rr, err := noise.AnalyzeRaw(ctx, bytes.NewReader(raw), int64(len(raw)), opts, shards)
	if err != nil {
		t.Fatalf("AnalyzeRaw: %v", err)
	}
	compareReports(t, want, rr)

	for name, got := range map[string]*noise.Report{"parallel": par, "stream": str, "raw": rr} {
		if got.Incomplete != want.Incomplete ||
			got.InterruptionsTotal != want.InterruptionsTotal ||
			got.InterruptionsSampled != want.InterruptionsSampled {
			t.Errorf("%s degradation flags diverge: %v/%d/%v vs %v/%d/%v", name,
				got.Incomplete, got.InterruptionsTotal, got.InterruptionsSampled,
				want.Incomplete, want.InterruptionsTotal, want.InterruptionsSampled)
		}
	}
	return want
}

// TestEventBudgetTruncatesPrefix caps ingestion by event count: the
// report must cover exactly the allowed prefix and be marked
// Incomplete, identically on every path.
func TestEventBudgetTruncatesPrefix(t *testing.T) {
	tr := simTrace(6)
	if len(tr.Events) < 1000 {
		t.Fatalf("trace too small for the test: %d events", len(tr.Events))
	}
	cap64 := uint64(len(tr.Events) / 2)

	opts := noise.DefaultOptions()
	opts.Budget = noise.Budget{MaxEvents: cap64}
	for _, shards := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			r := runAllPaths(t, tr, opts, shards)
			if !r.Incomplete {
				t.Fatal("truncated report not marked Incomplete")
			}
			// The budgeted run must equal an unbudgeted run over the prefix.
			prefix := &trace.Trace{CPUs: tr.CPUs, Events: tr.Events[:cap64], Procs: tr.Procs}
			ref := noise.Analyze(prefix, noise.DefaultOptions())
			if r.TotalNoiseNS != ref.TotalNoiseNS || r.Breakdown != ref.Breakdown {
				t.Fatalf("budgeted run diverges from prefix run: noise %d vs %d", r.TotalNoiseNS, ref.TotalNoiseNS)
			}
		})
	}
}

// TestByteBudgetMatchesEventBudget caps by bytes: MaxBytes rounds down
// to whole event records, so it must reproduce the equivalent MaxEvents
// run exactly.
func TestByteBudgetMatchesEventBudget(t *testing.T) {
	tr := simTrace(2)
	n := uint64(len(tr.Events)) * 2 / 3

	byEvents := noise.DefaultOptions()
	byEvents.Budget = noise.Budget{MaxEvents: n}
	byBytes := noise.DefaultOptions()
	// Add a partial record's worth of slack: it must not buy an event.
	byBytes.Budget = noise.Budget{MaxBytes: n*trace.EventSize + trace.EventSize - 1}

	a := noise.Analyze(tr, byEvents)
	b := noise.Analyze(tr, byBytes)
	compareReports(t, a, b)
	if a.EventsConsumed != n || b.EventsConsumed != n {
		t.Fatalf("consumed %d/%d, want %d", a.EventsConsumed, b.EventsConsumed, n)
	}
}

// TestInterruptionBudgetSamples caps the retained detail records: the
// list shrinks to a deterministic reservoir sample while every
// aggregate total stays exact.
func TestInterruptionBudgetSamples(t *testing.T) {
	tr := simTrace(9)
	full := noise.Analyze(tr, noise.DefaultOptions())
	if len(full.Interruptions) < 50 {
		t.Fatalf("trace too quiet for the test: %d interruptions", len(full.Interruptions))
	}
	const keep = 25

	opts := noise.DefaultOptions()
	opts.Budget = noise.Budget{MaxInterruptions: keep}
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			r := runAllPaths(t, tr, opts, shards)
			if !r.InterruptionsSampled {
				t.Fatal("capped report not marked sampled")
			}
			if len(r.Interruptions) != keep {
				t.Fatalf("kept %d records, want %d", len(r.Interruptions), keep)
			}
			if r.InterruptionsTotal != len(full.Interruptions) {
				t.Fatalf("total %d, want exact %d", r.InterruptionsTotal, len(full.Interruptions))
			}
			// Totals stay exact: sampling touches only the detail list.
			if r.TotalNoiseNS != full.TotalNoiseNS || r.Breakdown != full.Breakdown {
				t.Fatal("sampling changed aggregate totals")
			}
			if r.Incomplete {
				t.Fatal("sampling alone must not mark the report Incomplete")
			}
			// The sample is a subsequence of the full list (order preserved).
			j := 0
			for i := range full.Interruptions {
				if j < keep && reflect.DeepEqual(r.Interruptions[j], full.Interruptions[i]) {
					j++
				}
			}
			if j != keep {
				t.Fatalf("sample is not an ordered subsequence of the full list (%d/%d matched)", j, keep)
			}
		})
	}
}

// TestReservoirDeterministic locks the fixed-seed reservoir: the same
// input and cap always keep the same records.
func TestReservoirDeterministic(t *testing.T) {
	tr := simTrace(9)
	opts := noise.DefaultOptions()
	opts.Budget = noise.Budget{MaxInterruptions: 10}
	a := noise.Analyze(tr, opts)
	b := noise.Analyze(tr, opts)
	if !reflect.DeepEqual(a.Interruptions, b.Interruptions) {
		t.Fatal("same input and cap kept different records")
	}
}

// TestZeroBudgetIsUnlimited locks the zero-value contract.
func TestZeroBudgetIsUnlimited(t *testing.T) {
	tr := simTrace(1)
	plain := noise.Analyze(tr, noise.DefaultOptions())
	opts := noise.DefaultOptions()
	opts.Budget = noise.Budget{}
	budgeted := noise.Analyze(tr, opts)
	compareReports(t, plain, budgeted)
	if budgeted.Incomplete || budgeted.InterruptionsSampled {
		t.Fatal("zero budget degraded the report")
	}
}
