// Parallel analysis pipeline.
//
// The tracer captures into per-CPU rings precisely so that recording
// scales with core count; this file gives the offline analyzer the same
// shape. Kernel-activity nesting is per-CPU by construction (an
// interrupt nests inside whatever its own CPU was doing), so the
// expensive part of the analysis — reconstructing spans from entry/exit
// tracepoints with exact nested-time attribution — shards across CPUs
// with no approximation. What does NOT shard is the scheduler state:
// preemption windows follow a task when it migrates between CPUs, so
// owner/window tracking is replayed in a cheap sequential pass over the
// scheduler events alone.
//
// The pipeline therefore runs in three phases:
//
//  1. partition (parallel): a counting sort of the event stream into
//     per-CPU entry/exit sub-streams (as int32 indices, ten times
//     cheaper to materialise than event copies) plus one global,
//     order-preserving control stream;
//  2. walk (parallel): one worker per CPU stream reconstructs spans —
//     stack nesting, wall/own attribution — independently;
//  3. replay (sequential): the control stream is walked once, applying
//     the scheduler/owner/preemption-window state machine and feeding
//     every finished span through Report.record in exactly the order
//     the sequential analyzer would have.
//
// Because phase 3 performs the same accumulator calls in the same order
// as Analyze, the resulting Report is bit-identical to the sequential
// one — including the order-sensitive floating-point summary fields.
// TestParallelMatchesSequential locks this invariant.
//
// The walkers also pre-count spans per key, so the replay appends into
// exactly-sized slices — the sequential analyzer cannot know those
// counts without a second pass, which is how the pipeline stays ahead
// even before any shard runs concurrently.
//
// Every entry point takes a context.Context and checks it at batch and
// shard boundaries (see resilience.go): each phase joins its workers
// before returning, so cancellation never leaks a goroutine, and a
// cancelled run returns a Report marked Incomplete together with an
// error wrapping ErrCancelled.
package noise

import (
	"context"
	"io"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"osnoise/internal/trace"
)

// cancelStride is how many event records a worker processes between
// cooperative cancellation checks. Large enough that the ctx.Err() load
// is invisible on the hot path, small enough that cancellation lands
// within microseconds.
const cancelStride = 8192

// spanRec is one reconstructed kernel-activity span before scheduler
// attribution (owner pid and noise classification are replay-phase
// concerns).
type spanRec struct {
	closeOrd int // ordinal of the closing exit within this CPU's exits
	key      Key
	start    int64
	wall     int64
	own      int64
	topLevel bool // span closed with an empty stack below it
}

// cpuWalker reconstructs the kernel-activity spans of one CPU's
// entry/exit sub-stream. It is the parallel counterpart of the stack
// handling inside Analyze and must mirror it exactly.
type cpuWalker struct {
	attributeNesting bool
	stack            []openSpan
	spans            []spanRec
	perKey           [NumKeys]int // finished spans per key, for preallocation
	exits            int          // exit tracepoints seen, including unmatched ones
	dropped          int
}

// step feeds one entry or exit event through the walker. Events that
// are neither are ignored (the partition phase never routes them here).
//
//noisevet:hotpath
func (w *cpuWalker) step(ev trace.Event) {
	switch {
	case ev.ID.IsEntry():
		w.stack = append(w.stack, openSpan{
			key:    keyOfSpan(ev.ID, ev.Arg1),
			start:  ev.TS,
			exitID: ev.ID.ExitFor(),
		})

	case ev.ID.IsExit():
		ord := w.exits
		w.exits++
		if len(w.stack) == 0 {
			w.dropped++ // span began before tracing started
			return
		}
		top := w.stack[len(w.stack)-1]
		if top.exitID != ev.ID {
			// Corrupt nesting; drop the whole stack for this CPU.
			w.dropped += len(w.stack)
			w.stack = w.stack[:0]
			return
		}
		w.stack = w.stack[:len(w.stack)-1]
		wall := ev.TS - top.start
		own := wall
		if w.attributeNesting {
			own = wall - top.childWall
			if own < 0 {
				own = 0
			}
		}
		if len(w.stack) > 0 {
			w.stack[len(w.stack)-1].childWall += wall
		}
		w.perKey[top.key]++
		w.spans = append(w.spans, spanRec{
			closeOrd: ord, key: top.key, start: top.start,
			wall: wall, own: own, topLevel: len(w.stack) == 0,
		})
	}
}

// ctlKind tags one scheduler record in the control stream.
type ctlKind uint8

// Scheduler record kinds: the three event types that mutate cross-CPU
// analysis state.
const (
	ctlSwitch ctlKind = iota
	ctlMigrate
	ctlProcExit
)

// schedRec is one scheduler event in the control stream, positioned in
// the global order by the number of span exits that precede it.
type schedRec struct {
	ts          int64
	a1, a2, a3  int64
	exitsBefore int32 // exit events preceding this record globally
	cpu         int32
	kind        ctlKind
}

// ctlStream is the global-order projection of the event stream that the
// sequential replay consumes: exits are compressed to just their CPU (4
// bytes each — they carry no other replay-relevant state, the walkers
// hold the span data), while the rare scheduler events keep their
// arguments and record their interleaving position.
type ctlStream struct {
	exitCPU  []int32
	sched    []schedRec
	switches int // sched-switch count: caps the preemption spans replay can emit
}

// inWindow reports whether a timestamp falls inside the analysis window
// (mirrors the filter at the top of Analyze's event loop).
func (o *Options) inWindow(ts int64) bool {
	if o.FromNS == 0 && o.ToNS == 0 {
		return true
	}
	return ts >= o.FromNS && !(o.ToNS > 0 && ts > o.ToNS)
}

// partition routes the event stream into per-CPU entry/exit sub-streams
// and the control stream, via a chunk-parallel counting sort that
// preserves order everywhere. The sub-streams are compacted copies so
// the walkers scan contiguous memory instead of striding through the
// full interleaved stream. dropped counts events outside the CPU range
// (mirroring Analyze's Dropped accounting for them).
//
// Both passes check ctx every cancelStride records; on cancellation the
// chunk workers stop where they are, the pass still joins every worker,
// and the context's error is returned. prog.events counts records
// scanned by the first (counting) pass, at chunk-stride granularity.
func partition(ctx context.Context, events []trace.Event, opts Options, ncpu, workers int, prog *progress) (perCPU [][]trace.Event, ctl ctlStream, dropped int, err error) {
	nchunk := workers
	if nchunk < 1 {
		nchunk = 1
	}
	if nchunk > len(events)/4096+1 {
		nchunk = len(events)/4096 + 1
	}
	bounds := make([]int, nchunk+1)
	for i := 0; i <= nchunk; i++ {
		bounds[i] = i * len(events) / nchunk
	}

	counts := make([][]int, nchunk) // per chunk, per CPU entry/exit count
	exitCounts := make([]int, nchunk)
	schedCounts := make([]int, nchunk)
	switchCounts := make([]int, nchunk)
	drops := make([]int, nchunk)
	var wg sync.WaitGroup
	for ci := 0; ci < nchunk; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cnt := make([]int, ncpu)
			chunk := events[bounds[ci]:bounds[ci+1]]
			for base := 0; base < len(chunk); base += cancelStride {
				if ctx.Err() != nil {
					return
				}
				end := base + cancelStride
				if end > len(chunk) {
					end = len(chunk)
				}
				for _, ev := range chunk[base:end] {
					if !opts.inWindow(ev.TS) {
						continue
					}
					if ev.CPU < 0 || int(ev.CPU) >= ncpu {
						drops[ci]++
						continue
					}
					switch {
					case ev.ID.IsEntry():
						cnt[ev.CPU]++
					case ev.ID.IsExit():
						cnt[ev.CPU]++
						exitCounts[ci]++
					case ev.ID == trace.EvSchedSwitch:
						schedCounts[ci]++
						switchCounts[ci]++
					case ev.ID == trace.EvSchedMigrate, ev.ID == trace.EvProcessExit:
						schedCounts[ci]++
					}
				}
				prog.events.Add(uint64(end - base))
			}
			counts[ci] = cnt
		}(ci)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, ctl, 0, err
	}

	// Exclusive prefix sums: where each chunk writes, per CPU and in the
	// control stream. Chunk order equals stream order, so concatenating
	// chunk ranges preserves per-CPU and global ordering.
	offs := make([][]int, nchunk)
	exitOffs := make([]int, nchunk)
	schedOffs := make([]int, nchunk)
	totals := make([]int, ncpu)
	exitTotal, schedTotal := 0, 0
	for ci := 0; ci < nchunk; ci++ {
		offs[ci] = make([]int, ncpu)
		copy(offs[ci], totals)
		exitOffs[ci] = exitTotal
		schedOffs[ci] = schedTotal
		for c := 0; c < ncpu; c++ {
			totals[c] += counts[ci][c]
		}
		exitTotal += exitCounts[ci]
		schedTotal += schedCounts[ci]
		dropped += drops[ci]
		ctl.switches += switchCounts[ci]
	}
	perCPU = make([][]trace.Event, ncpu)
	for c := 0; c < ncpu; c++ {
		perCPU[c] = make([]trace.Event, totals[c])
	}
	ctl.exitCPU = make([]int32, exitTotal)
	ctl.sched = make([]schedRec, schedTotal)

	for ci := 0; ci < nchunk; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			pos := offs[ci]
			exitPos := exitOffs[ci]
			schedPos := schedOffs[ci]
			chunk := events[bounds[ci]:bounds[ci+1]]
			for base := 0; base < len(chunk); base += cancelStride {
				if ctx.Err() != nil {
					return
				}
				end := base + cancelStride
				if end > len(chunk) {
					end = len(chunk)
				}
				for _, ev := range chunk[base:end] {
					if !opts.inWindow(ev.TS) {
						continue
					}
					if ev.CPU < 0 || int(ev.CPU) >= ncpu {
						continue
					}
					switch {
					case ev.ID.IsEntry():
						perCPU[ev.CPU][pos[ev.CPU]] = ev
						pos[ev.CPU]++
					case ev.ID.IsExit():
						perCPU[ev.CPU][pos[ev.CPU]] = ev
						pos[ev.CPU]++
						ctl.exitCPU[exitPos] = ev.CPU
						exitPos++
					case ev.ID == trace.EvSchedSwitch, ev.ID == trace.EvSchedMigrate, ev.ID == trace.EvProcessExit:
						kind := ctlSwitch
						if ev.ID == trace.EvSchedMigrate {
							kind = ctlMigrate
						} else if ev.ID == trace.EvProcessExit {
							kind = ctlProcExit
						}
						ctl.sched[schedPos] = schedRec{
							kind: kind, cpu: ev.CPU, ts: ev.TS,
							a1: ev.Arg1, a2: ev.Arg2, a3: ev.Arg3,
							exitsBefore: int32(exitPos),
						}
						schedPos++
					}
				}
			}
		}(ci)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, ctl, 0, err
	}
	return perCPU, ctl, dropped, nil
}

// partitionRaw is partition operating directly on the undecoded event
// section of a fixed-format trace: each chunk worker scans the raw
// bytes in a single pass, peeking only at the fields that decide a
// record's routing, and decodes just the entry/exit and scheduler
// records — events the analysis ignores are never materialised at all.
// This is what lets AnalyzeRaw skip the whole []Event allocation a
// Read-then-Analyze pipeline pays for.
//
// Each chunk keeps its routed events in chunk-local buffers; the
// walkers consume the per-CPU segments chunk by chunk (segs[chunk][cpu])
// so nothing is ever concatenated. Only the small control stream is
// stitched, offsetting each chunk's exitsBefore by the exits that came
// before it.
// count is the number of records to partition — the full event count,
// or less when an event/byte budget truncates ingestion to a prefix.
// The scan workers check ctx once per scanned block and count progress
// into prog.events; on cancellation every worker is still joined and
// the context's error is returned.
//
//noisevet:hotpath
func partitionRaw(ctx context.Context, rt *trace.RawTrace, opts Options, workers int, count uint64, prog *progress) (segs [][][]trace.Event, ctl ctlStream, dropped int, err error) {
	ncpu := rt.CPUs()
	nchunk := workers
	if nchunk < 1 {
		nchunk = 1
	}
	if nchunk > int(count/4096)+1 {
		nchunk = int(count/4096) + 1
	}
	bounds := make([]uint64, nchunk+1)
	for i := 0; i <= nchunk; i++ {
		bounds[i] = uint64(i) * count / uint64(nchunk)
	}

	type chunkOut struct {
		perCPU   [][]trace.Event
		exitCPU  []int32
		sched    []schedRec
		switches int
		dropped  int
	}
	outs := make([]chunkOut, nchunk)
	errs := make([]error, nchunk)
	var wg sync.WaitGroup
	for ci := 0; ci < nchunk; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			out := &outs[ci]
			out.perCPU = make([][]trace.Event, ncpu)
			// Size the chunk-local buffers as if every record were an
			// entry/exit spread uniformly across CPUs: a slight
			// overshoot that makes append growth (and its copies) the
			// rare case instead of the common one.
			nrec := int(bounds[ci+1] - bounds[ci])
			capPer := nrec/ncpu + 64
			for c := range out.perCPU {
				out.perCPU[c] = make([]trace.Event, 0, capPer)
			}
			out.exitCPU = make([]int32, 0, nrec/2+64)
			errs[ci] = rt.Scan(bounds[ci], bounds[ci+1], func(_ uint64, b []byte) error {
				if err := ctx.Err(); err != nil {
					return err
				}
				prog.events.Add(uint64(len(b) / trace.EventSize))
				for o := 0; o < len(b); o += trace.EventSize {
					rec := b[o:]
					if !opts.inWindow(trace.PeekTS(rec)) {
						continue
					}
					cpu := trace.PeekCPU(rec)
					if cpu < 0 || int(cpu) >= ncpu {
						out.dropped++
						continue
					}
					id := trace.PeekID(rec)
					switch {
					case id.IsEntry(), id.IsExit():
						out.perCPU[cpu] = append(out.perCPU[cpu], trace.DecodeEvent(rec))
						if id.IsExit() {
							out.exitCPU = append(out.exitCPU, cpu)
						}
					case id == trace.EvSchedSwitch, id == trace.EvSchedMigrate, id == trace.EvProcessExit:
						ev := trace.DecodeEvent(rec)
						kind := ctlSwitch
						if id == trace.EvSchedMigrate {
							kind = ctlMigrate
						} else if id == trace.EvProcessExit {
							kind = ctlProcExit
						}
						if kind == ctlSwitch {
							out.switches++
						}
						out.sched = append(out.sched, schedRec{
							kind: kind, cpu: ev.CPU, ts: ev.TS,
							a1: ev.Arg1, a2: ev.Arg2, a3: ev.Arg3,
							exitsBefore: int32(len(out.exitCPU)),
						})
					}
				}
				return nil
			})
		}(ci)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, ctl, 0, err
	}
	for _, e := range errs {
		if e != nil {
			return nil, ctl, 0, e
		}
	}

	segs = make([][][]trace.Event, nchunk)
	exitTotal, schedTotal := 0, 0
	for ci := range outs {
		segs[ci] = outs[ci].perCPU
		exitTotal += len(outs[ci].exitCPU)
		schedTotal += len(outs[ci].sched)
		ctl.switches += outs[ci].switches
		dropped += outs[ci].dropped
	}
	ctl.exitCPU = make([]int32, 0, exitTotal)
	ctl.sched = make([]schedRec, 0, schedTotal)
	for ci := range outs {
		exitsBefore := int32(len(ctl.exitCPU))
		ctl.exitCPU = append(ctl.exitCPU, outs[ci].exitCPU...)
		for _, sr := range outs[ci].sched {
			sr.exitsBefore += exitsBefore
			ctl.sched = append(ctl.sched, sr)
		}
	}
	return segs, ctl, dropped, nil
}

// runWalkersSegs is runWalkers over chunk-segmented sub-streams: each
// CPU\'s walker steps through its segment of every chunk in chunk order,
// which is exactly the CPU\'s global event order. Workers check ctx at
// every CPU claim and every cancelStride steps within a CPU; finished
// walkers are counted into prog.cpus.
//
//noisevet:hotpath
func runWalkersSegs(ctx context.Context, segs [][][]trace.Event, ncpu int, attributeNesting bool, workers int, prog *progress) ([]cpuWalker, error) {
	walkers := make([]cpuWalker, ncpu)
	if workers > ncpu {
		workers = ncpu
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				c := int(next.Add(1)) - 1
				if c >= ncpu {
					return
				}
				total := 0
				for ci := range segs {
					total += len(segs[ci][c])
				}
				wk := &walkers[c]
				wk.attributeNesting = attributeNesting
				// Roughly half the sub-stream is exits, each closing at
				// most one span.
				wk.spans = make([]spanRec, 0, total/2+1)
				stepped := 0
				for ci := range segs {
					for _, ev := range segs[ci][c] {
						wk.step(ev)
						if stepped++; stepped >= cancelStride {
							stepped = 0
							if ctx.Err() != nil {
								return
							}
						}
					}
				}
				prog.cpus.Add(1)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return walkers, nil
}

// runWalkers reconstructs spans for every CPU sub-stream using a pool of
// at most `workers` goroutines. Workers check ctx at every CPU claim and
// every cancelStride steps within a CPU; finished walkers are counted
// into prog.cpus.
//
//noisevet:hotpath
func runWalkers(ctx context.Context, perCPU [][]trace.Event, attributeNesting bool, workers int, prog *progress) ([]cpuWalker, error) {
	walkers := make([]cpuWalker, len(perCPU))
	if workers > len(perCPU) {
		workers = len(perCPU)
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				c := int(next.Add(1)) - 1
				if c >= len(perCPU) {
					return
				}
				wk := &walkers[c]
				wk.attributeNesting = attributeNesting
				// Roughly half the sub-stream is exits, each closing at
				// most one span.
				wk.spans = make([]spanRec, 0, len(perCPU[c])/2+1)
				stream := perCPU[c]
				for base := 0; base < len(stream); base += cancelStride {
					if ctx.Err() != nil {
						return
					}
					end := base + cancelStride
					if end > len(stream) {
						end = len(stream)
					}
					for _, ev := range stream[base:end] {
						wk.step(ev)
					}
				}
				prog.cpus.Add(1)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return walkers, nil
}

// replay is the sequential phase: it walks the control stream once,
// applying the scheduler/owner/preemption-window state machine of
// Analyze and recording every span — reconstructed ones as their exits
// come up, preemption spans at the switch that closes their window — in
// exactly the sequential analyzer's order. It returns the preemption
// windows still open at the end of the trace (dropped, like unclosed
// spans) and, per CPU, the indices of the noise spans in r.Spans —
// collected on the fly so interruption grouping needs no re-scan.
//
// The replay checks ctx every cancelStride exits and every few thousand
// scheduler records; on cancellation it returns immediately with the
// state it has (the caller detects ctx.Err() and marks the report).
func (r *Report) replay(ctx context.Context, ctl ctlStream, walkers []cpuWalker, opts Options, isApp func(int64) bool) (map[int64]*window, [][]int32) {
	ncpu := len(walkers)
	cpus := make([]cpuState, ncpu)
	windows := make(map[int64]*window)
	lastRunner := make([]int64, ncpu)
	nextSpan := make([]int, ncpu)
	exitSeen := make([]int, ncpu)
	noiseIdx := make([][]int32, ncpu)
	for c := range noiseIdx {
		if n := len(walkers[c].spans); n > 0 {
			noiseIdx[c] = make([]int32, 0, n)
		}
	}

	doExit := func(cpu int32) {
		ord := exitSeen[cpu]
		exitSeen[cpu]++
		spans := walkers[cpu].spans
		j := nextSpan[cpu]
		if j >= len(spans) || spans[j].closeOrd != ord {
			return // this exit matched no span (walker dropped it)
		}
		nextSpan[cpu]++
		rec := spans[j]
		cs := &cpus[cpu]
		cat := CategoryOf(rec.key)
		isNoise := cat.IsNoise()
		if opts.RunnableFilter && cs.owner == 0 {
			isNoise = false
		}
		r.record(Span{
			Key: rec.key, CPU: cpu, Start: rec.start,
			Wall: rec.wall, Own: rec.own, PID: cs.owner, Noise: isNoise,
		}, opts.KeepDurations)
		if isNoise {
			noiseIdx[cpu] = append(noiseIdx[cpu], int32(len(r.Spans)-1))
		}
		// Top-level kernel time inside a preemption window is charged to
		// its own key; subtract it from the window so the wait is not
		// double counted.
		if rec.topLevel && cs.owner != 0 && cs.current != cs.owner {
			if w := windows[cs.owner]; w != nil && w.cpu == cpu {
				w.kernelWall += rec.wall
			}
		}
	}

	pos := 0
	for i := range ctl.sched {
		sr := &ctl.sched[i]
		if i&4095 == 0 && ctx.Err() != nil {
			return windows, noiseIdx
		}
		for pos < int(sr.exitsBefore) {
			if pos&(cancelStride-1) == 0 && ctx.Err() != nil {
				return windows, noiseIdx
			}
			doExit(ctl.exitCPU[pos])
			pos++
		}
		switch sr.kind {
		case ctlSwitch:
			cs := &cpus[sr.cpu]
			prev, next, prevState := sr.a1, sr.a2, sr.a3
			if prev != 0 && isApp(prev) {
				if prevState == trace.TaskStateRunning {
					// Preempted while runnable: open a window.
					windows[prev] = &window{start: sr.ts, cpu: sr.cpu}
					if cs.owner == 0 {
						cs.owner = prev
					}
				} else {
					// Voluntary block: no victim remains.
					delete(windows, prev)
					if cs.owner == prev {
						cs.owner = 0
					}
				}
			}
			if next != 0 && isApp(next) {
				if w := windows[next]; w != nil {
					preempt := (sr.ts - w.start) - w.kernelWall
					if preempt > 0 {
						culprit := lastRunner[w.cpu]
						if culprit == next {
							culprit = 0
						}
						r.record(Span{
							Key: KeyPreemption, CPU: w.cpu, Start: w.start,
							Wall: preempt, Own: preempt, PID: next,
							Culprit: culprit, Noise: true,
						}, opts.KeepDurations)
						noiseIdx[w.cpu] = append(noiseIdx[w.cpu], int32(len(r.Spans)-1))
					}
					delete(windows, next)
				}
				cs.owner = next
			}
			cs.current = next
			if next != 0 {
				lastRunner[sr.cpu] = next
			}

		case ctlMigrate:
			pid, from, to := sr.a1, sr.a2, sr.a3
			if w := windows[pid]; w != nil {
				w.cpu = int32(to)
			}
			if int(from) < ncpu && cpus[from].owner == pid {
				cpus[from].owner = 0
			}
			if int(to) < ncpu && cpus[to].owner == 0 && isApp(pid) {
				cpus[to].owner = pid
			}

		case ctlProcExit:
			delete(windows, sr.a1)
		}
	}
	for pos < len(ctl.exitCPU) {
		if pos&(cancelStride-1) == 0 && ctx.Err() != nil {
			return windows, noiseIdx
		}
		doExit(ctl.exitCPU[pos])
		pos++
	}
	return windows, noiseIdx
}

// prealloc right-sizes the report's append targets before the replay:
// the walkers know exactly how many spans of each key they produced, and
// the partition bounds the preemption spans by the switch count, so the
// replay's record calls never re-grow a slice. (The sequential analyzer
// cannot know these counts without a second pass — this is where the
// sharded pipeline recovers the partition cost.) Slices stay nil when
// nothing will be appended so the report compares equal to the
// sequential one.
func (r *Report) prealloc(walkers []cpuWalker, switches int, keep bool) {
	total := 0
	var perKey [NumKeys]int
	for i := range walkers {
		total += len(walkers[i].spans)
		for k, n := range walkers[i].perKey {
			perKey[k] += n
		}
	}
	if total > 0 {
		r.Spans = make([]Span, 0, total+switches)
	}
	if keep {
		for k, n := range perKey {
			if n > 0 && Key(k) != KeyPreemption {
				r.PerKey[k].Durations = make([]int64, 0, n)
			}
		}
	}
}

// ispanKey is the sort key of one noise span during interruption
// grouping: the comparator fields plus the span's index in r.Spans.
// Sorting these 24-byte records applies the exact permutation that
// sorting the 56-byte spans themselves would — pdqsort's decisions
// depend only on comparator outcomes, and the keys reproduce them —
// while moving less than half the bytes per swap.
type ispanKey struct {
	start, end int64
	idx        int32
}

// keyCmp is the interruption sort order on keys: start ascending, then
// end descending — exactly interruptionsForCPU's comparator.
func keyCmp(a, b ispanKey) int {
	if a.start != b.start {
		if a.start < b.start {
			return -1
		}
		return 1
	}
	if a.end == b.end {
		return 0
	}
	if a.end > b.end {
		return -1
	}
	return 1
}

// sortKeysNearSorted sorts keys in near-linear time, exploiting that
// the replay emits noise spans in per-CPU exit order: ascending except
// where a parent span closes after its children, so out-of-place
// elements are a handful per CPU. Those are split off, sorted, and
// rear-merged into the ascending remainder.
//
// When every key is distinct the sorted order is unique, so this equals
// what slices.SortFunc would produce. Duplicate keys make the order of
// the tied elements algorithm-dependent; the function detects them and
// reports false, and the caller must fall back to the canonical sort.
func sortKeysNearSorted(keys []ispanKey) bool {
	w := 0
	var outliers []ispanKey
	for _, k := range keys {
		if w > 0 && keyCmp(k, keys[w-1]) < 0 {
			outliers = append(outliers, k)
			continue
		}
		keys[w] = k
		w++
	}
	if len(outliers) > 0 {
		slices.SortFunc(outliers, keyCmp)
		// Rear merge: fill keys from the back; t never catches up to i.
		i, t := w-1, len(keys)-1
		for j := len(outliers) - 1; j >= 0; t-- {
			if i >= 0 && keyCmp(keys[i], outliers[j]) > 0 {
				keys[t] = keys[i]
				i--
			} else {
				keys[t] = outliers[j]
				j--
			}
		}
	}
	for i := 1; i < len(keys); i++ {
		if keyCmp(keys[i-1], keys[i]) == 0 {
			return false
		}
	}
	return true
}

// interruptionKeys builds and sorts the interruption keys of one CPU's
// noise spans: same comparator and — for distinct keys — provably the
// same order as interruptionsForCPU's sort.Slice (for tied keys the
// near-sorted pass reports failure and slices.SortFunc, which shares
// sort.Slice's pdqsort, lands even ties identically). Sorting these
// compact records applies the exact permutation sorting the spans
// themselves would, while moving less than half the bytes per swap.
func (r *Report) interruptionKeys(idx []int32) []ispanKey {
	buildKeys := func() []ispanKey {
		keys := make([]ispanKey, len(idx))
		for j, si := range idx {
			s := &r.Spans[si]
			keys[j] = ispanKey{start: s.Start, end: s.Start + s.Wall, idx: si}
		}
		return keys
	}
	keys := buildKeys()
	if !sortKeysNearSorted(keys) {
		keys = buildKeys()
		slices.SortFunc(keys, keyCmp)
	}
	return keys
}

// countInterruptions dry-runs the gap merge over sorted keys and
// returns how many interruptions it will produce.
func countInterruptions(keys []ispanKey, gap int64) int {
	n, end := 0, int64(0)
	for _, k := range keys {
		if n == 0 || k.start-end > gap {
			n++
			end = k.end
		} else if k.end > end {
			end = k.end
		}
	}
	return n
}

// fillInterruptions runs the gap merge over one CPU's sorted keys,
// writing into caller-provided storage: out must have room for exactly
// countInterruptions results and comps for len(keys) components. Every
// Component slice is carved from comps with its capacity pinned, so the
// result compares equal to the sequential builder's append-grown slices
// (reflect.DeepEqual ignores capacity).
func (r *Report) fillInterruptions(cpu int32, keys []ispanKey, gap int64, out []Interruption, comps []Component) {
	ci, curStart, n := 0, 0, 0
	var cur Interruption
	for _, k := range keys {
		s := &r.Spans[k.idx]
		if ci > 0 && k.start-cur.End <= gap {
			comps[ci] = Component{Key: s.Key, Start: k.start, Own: s.Own}
			ci++
			cur.Total += s.Own
			if k.end > cur.End {
				cur.End = k.end
			}
			continue
		}
		if ci > 0 {
			cur.Components = comps[curStart:ci:ci]
			out[n] = cur
			n++
		}
		curStart = ci
		comps[ci] = Component{Key: s.Key, Start: k.start, Own: s.Own}
		ci++
		cur = Interruption{CPU: cpu, Start: k.start, End: k.end, Total: s.Own}
	}
	cur.Components = comps[curStart:ci:ci]
	out[n] = cur
}

// buildInterruptionsParallel is buildInterruptions with the per-CPU
// grouping fanned out over a worker pool, in two phases: first every
// CPU's keys are sorted and its interruption count dry-run in parallel,
// then the full interruption list and one global component arena are
// allocated once and the workers fill disjoint subranges in place.
// CPUs are independent and their ranges concatenate in ascending CPU
// order, so the output is identical to the sequential builder's: each
// CPU's noise spans are gathered from r.Spans in record order, exactly
// the sequence noiseByCPU produces.
//
// Workers check ctx at every CPU claim; on cancellation both pools are
// still joined and the context's error is returned.
func (r *Report) buildInterruptionsParallel(ctx context.Context, noiseIdx [][]int32, gap int64, workers int) error {
	var cpuIDs []int32
	for c := range noiseIdx {
		if len(noiseIdx[c]) > 0 {
			cpuIDs = append(cpuIDs, int32(c))
		}
	}
	if len(cpuIDs) == 0 {
		return ctx.Err()
	}
	if workers > len(cpuIDs) {
		workers = len(cpuIDs)
	}
	if workers < 1 {
		workers = 1
	}

	keysPer := make([][]ispanKey, len(cpuIDs))
	counts := make([]int, len(cpuIDs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(cpuIDs) {
					return
				}
				keysPer[i] = r.interruptionKeys(noiseIdx[cpuIDs[i]])
				counts[i] = countInterruptions(keysPer[i], gap)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}

	// Exclusive prefix sums: each CPU's slot in the interruption list
	// and the component arena.
	intOffs := make([]int, len(cpuIDs)+1)
	keyOffs := make([]int, len(cpuIDs)+1)
	for i := range cpuIDs {
		intOffs[i+1] = intOffs[i] + counts[i]
		keyOffs[i+1] = keyOffs[i] + len(keysPer[i])
	}
	r.Interruptions = make([]Interruption, intOffs[len(cpuIDs)])
	comps := make([]Component, keyOffs[len(cpuIDs)])

	next.Store(0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(cpuIDs) {
					return
				}
				r.fillInterruptions(cpuIDs[i], keysPer[i], gap,
					r.Interruptions[intOffs[i]:intOffs[i+1]],
					comps[keyOffs[i]:keyOffs[i+1]])
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// appMatcher builds the application-pid predicate from an explicit pid
// set (nil = every non-zero pid is an application).
func appMatcher(appPIDs map[int64]bool) func(int64) bool {
	return func(pid int64) bool {
		if pid == 0 {
			return false
		}
		if appPIDs == nil {
			return true
		}
		return appPIDs[pid]
	}
}

// finish shares the tail of the parallel paths: boundary-drop
// accounting, interruption grouping, and the interruption budget. A
// non-nil error is the context's own (the caller wraps it).
func (r *Report) finish(ctx context.Context, walkers []cpuWalker, windows map[int64]*window, noiseIdx [][]int32, opts Options, shards int) error {
	for i := range walkers {
		r.Dropped += walkers[i].dropped + len(walkers[i].stack)
	}
	r.Dropped += len(windows)
	if err := r.buildInterruptionsParallel(ctx, noiseIdx, opts.GapNS, shards); err != nil {
		return err
	}
	r.applyInterruptionBudget(opts.Budget)
	return nil
}

// AnalyzeParallel runs the full noise analysis sharded across per-CPU
// event streams using up to `shards` workers (≤ 0 means GOMAXPROCS).
// The report it produces is bit-identical to Analyze's on the same
// trace and options — budgets included: per-CPU span reconstruction is
// exact (nesting never crosses a CPU) and the final accumulation
// replays in sequential order.
//
// Cancelling ctx stops the run at the next batch boundary with no
// leaked goroutines; the partial Report (marked Incomplete, with
// EventsConsumed/CPUsFinished) is returned together with an error
// wrapping both ErrCancelled and ctx.Err().
func AnalyzeParallel(ctx context.Context, tr *trace.Trace, opts Options, shards int) (*Report, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	var prog progress
	events, truncated := opts.Budget.truncate(tr.Events)
	if len(events) > math.MaxInt32 {
		// The control stream counts exits in int32 (schedRec.exitsBefore);
		// beyond that (an ~86 GB trace) fall back to the sequential
		// analyzer, which produces the identical report.
		if ctx.Err() != nil {
			return (&Report{CPUs: tr.CPUs}).markCancelled(&prog), cancelErr(ctx)
		}
		return Analyze(tr, opts), nil
	}
	r := &Report{CPUs: tr.CPUs, Seconds: tr.DurationSeconds()}
	if truncated {
		r.Incomplete = true
		r.Seconds = spanSeconds(events)
	}
	if opts.ToNS > opts.FromNS && (opts.FromNS != 0 || opts.ToNS != 0) {
		r.Seconds = float64(opts.ToNS-opts.FromNS) / 1e9
	}
	for k := Key(0); k < NumKeys; k++ {
		r.PerKey[k] = &KeyStats{Key: k}
	}
	appPIDs := opts.AppPIDs
	if appPIDs == nil {
		appPIDs = tr.AppPIDs()
	}

	perCPU, ctl, dropped, err := partition(ctx, events, opts, tr.CPUs, shards, &prog)
	if err != nil {
		return r.markCancelled(&prog), cancelErr(ctx)
	}
	r.Dropped += dropped
	walkers, err := runWalkers(ctx, perCPU, opts.AttributeNesting, shards, &prog)
	if err != nil {
		return r.markCancelled(&prog), cancelErr(ctx)
	}
	r.prealloc(walkers, ctl.switches, opts.KeepDurations)
	windows, noiseIdx := r.replay(ctx, ctl, walkers, opts, appMatcher(appPIDs))
	if ctx.Err() != nil {
		return r.markCancelled(&prog), cancelErr(ctx)
	}
	if err := r.finish(ctx, walkers, windows, noiseIdx, opts, shards); err != nil {
		return r.markCancelled(&prog), cancelErr(ctx)
	}
	r.EventsConsumed = uint64(len(events))
	return r, nil
}

// AnalyzeRaw runs the sharded analysis directly over the undecoded
// bytes of a fixed-format trace in a random-access source (a file or a
// bytes.Reader), using up to `shards` workers (≤ 0 means GOMAXPROCS).
// It never materialises the full []Event: the partition phase scans the
// raw records, decoding only the entry/exit and scheduler events into
// compact per-CPU sub-streams — records the analysis ignores are
// skipped undecoded. The report is bit-identical to
// Analyze(trace.Read(...)) on the same bytes.
//
// This is the fastest path from trace bytes to a Report and the one the
// noisebench pipeline benchmark exercises.
//
// Cancelling ctx stops the run at the next batch boundary with no
// leaked goroutines; the partial Report (marked Incomplete, with
// EventsConsumed/CPUsFinished) is returned together with an error
// wrapping both ErrCancelled and ctx.Err(). An event/byte budget
// truncates the scan to the trace's prefix without reading the rest.
func AnalyzeRaw(ctx context.Context, ra io.ReaderAt, size int64, opts Options, shards int) (*Report, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	rt, err := trace.OpenRaw(ra, size)
	if err != nil {
		return nil, err
	}
	var prog progress
	count := rt.EventCount()
	truncated := false
	if limit := opts.Budget.eventCap(); count > limit {
		count, truncated = limit, true
	}
	if count > math.MaxInt32 {
		tr, err := trace.ReadParallel(ctx, ra, size, shards)
		if err != nil {
			if ctx.Err() != nil {
				return (&Report{CPUs: rt.CPUs()}).markCancelled(&prog), cancelErr(ctx)
			}
			return nil, err
		}
		return Analyze(tr, opts), nil
	}
	r := &Report{CPUs: rt.CPUs(), Incomplete: truncated}
	for k := Key(0); k < NumKeys; k++ {
		r.PerKey[k] = &KeyStats{Key: k}
	}
	// Trace.DurationSeconds spans the first to the last record; only two
	// records need decoding to reproduce it. Under a budget the span
	// covers the consumed prefix, like spanSeconds in the other paths.
	if count > 0 {
		first, err := rt.Event(0)
		if err != nil {
			return nil, err
		}
		last, err := rt.Event(count - 1)
		if err != nil {
			return nil, err
		}
		r.Seconds = float64(last.TS-first.TS) / 1e9
	}
	if opts.ToNS > opts.FromNS && (opts.FromNS != 0 || opts.ToNS != 0) {
		r.Seconds = float64(opts.ToNS-opts.FromNS) / 1e9
	}
	appPIDs := opts.AppPIDs
	if appPIDs == nil {
		procs, err := rt.Procs()
		if err != nil {
			return nil, err
		}
		appPIDs = (&trace.Trace{Procs: procs}).AppPIDs()
	}

	segs, ctl, dropped, err := partitionRaw(ctx, rt, opts, shards, count, &prog)
	if err != nil {
		if ctx.Err() != nil {
			return r.markCancelled(&prog), cancelErr(ctx)
		}
		return nil, err
	}
	r.Dropped += dropped
	walkers, err := runWalkersSegs(ctx, segs, rt.CPUs(), opts.AttributeNesting, shards, &prog)
	if err != nil {
		return r.markCancelled(&prog), cancelErr(ctx)
	}
	r.prealloc(walkers, ctl.switches, opts.KeepDurations)
	windows, noiseIdx := r.replay(ctx, ctl, walkers, opts, appMatcher(appPIDs))
	if ctx.Err() != nil {
		return r.markCancelled(&prog), cancelErr(ctx)
	}
	if err := r.finish(ctx, walkers, windows, noiseIdx, opts, shards); err != nil {
		return r.markCancelled(&prog), cancelErr(ctx)
	}
	r.EventsConsumed = count
	return r, nil
}

// streamBatch is one routed slice of a CPU's entry/exit sub-stream.
type streamBatch struct {
	cpu int32
	evs []trace.Event
}

// AnalyzeStream runs the sharded analysis over a streaming decoder
// without materialising the whole event section: events are decoded in
// batches, routed to per-CPU walker goroutines as they arrive (decode
// overlaps with span reconstruction), and only the control stream and
// the reconstructed spans are retained for the sequential replay. The
// report is bit-identical to Analyze/AnalyzeParallel on the same trace.
//
// If opts.AppPIDs is nil the application set is taken from the trace's
// process table, which the decoder reads after the last event.
//
// Cancelling ctx stops the run at the next decode batch with no leaked
// goroutines (the walker pool is always drained and joined); the
// partial Report (marked Incomplete, with EventsConsumed) is returned
// together with an error wrapping both ErrCancelled and ctx.Err(). An
// event/byte budget stops decoding at the cap and degrades to a
// prefix-complete report.
func AnalyzeStream(ctx context.Context, d *trace.Decoder, opts Options, shards int) (*Report, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	ncpu := d.CPUs()
	r := &Report{CPUs: ncpu}
	for k := Key(0); k < NumKeys; k++ {
		r.PerKey[k] = &KeyStats{Key: k}
	}

	workers := shards
	if workers > ncpu {
		workers = ncpu
	}
	if workers < 1 {
		workers = 1
	}
	walkers := make([]cpuWalker, ncpu)
	for c := range walkers {
		walkers[c].attributeNesting = opts.AttributeNesting
	}
	chans := make([]chan streamBatch, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		chans[w] = make(chan streamBatch, 64)
		wg.Add(1)
		go func(ch chan streamBatch) {
			defer wg.Done()
			for b := range ch {
				wk := &walkers[b.cpu]
				for _, ev := range b.evs {
					wk.step(ev)
				}
			}
		}(chans[w])
	}
	// join drains and joins the walker pool; every return path runs it,
	// which is what guarantees zero leaked goroutines on cancellation.
	join := func() {
		for _, ch := range chans {
			close(ch)
		}
		wg.Wait()
	}

	const batchLen = 4096
	var (
		prog      progress
		eventCap  = opts.Budget.eventCap()
		truncated bool
		ctl       ctlStream
		pending   = make([][]trace.Event, ncpu)
		batch     = make([]trace.Event, batchLen)
		firstTS   int64
		lastTS    int64
		any       bool
		dropped   int
		readErr   error
	)
	flush := func(cpu int32) {
		if len(pending[cpu]) == 0 {
			return
		}
		chans[int(cpu)%workers] <- streamBatch{cpu: cpu, evs: pending[cpu]}
		pending[cpu] = nil
	}
	for {
		if ctx.Err() != nil {
			join()
			return r.markCancelled(&prog), cancelErr(ctx)
		}
		n, err := d.Next(batch)
		evs := batch[:n]
		if left := eventCap - prog.events.Load(); uint64(len(evs)) > left {
			evs, truncated = evs[:left], true
		}
		prog.events.Add(uint64(len(evs)))
		for _, ev := range evs {
			if !any {
				firstTS, any = ev.TS, true
			}
			lastTS = ev.TS
			if !opts.inWindow(ev.TS) {
				continue
			}
			if ev.CPU < 0 || int(ev.CPU) >= ncpu {
				dropped++
				continue
			}
			switch {
			case ev.ID.IsEntry():
				pending[ev.CPU] = append(pending[ev.CPU], ev)
				if len(pending[ev.CPU]) >= batchLen {
					flush(ev.CPU)
				}
			case ev.ID.IsExit():
				pending[ev.CPU] = append(pending[ev.CPU], ev)
				ctl.exitCPU = append(ctl.exitCPU, ev.CPU)
				if len(pending[ev.CPU]) >= batchLen {
					flush(ev.CPU)
				}
			case ev.ID == trace.EvSchedSwitch:
				ctl.switches++
				ctl.sched = append(ctl.sched, schedRec{
					kind: ctlSwitch, cpu: ev.CPU, ts: ev.TS,
					a1: ev.Arg1, a2: ev.Arg2, a3: ev.Arg3,
					exitsBefore: int32(len(ctl.exitCPU)),
				})
			case ev.ID == trace.EvSchedMigrate:
				ctl.sched = append(ctl.sched, schedRec{
					kind: ctlMigrate, cpu: ev.CPU,
					a1: ev.Arg1, a2: ev.Arg2, a3: ev.Arg3,
					exitsBefore: int32(len(ctl.exitCPU)),
				})
			case ev.ID == trace.EvProcessExit:
				ctl.sched = append(ctl.sched, schedRec{
					kind: ctlProcExit, a1: ev.Arg1,
					exitsBefore: int32(len(ctl.exitCPU)),
				})
			}
		}
		if truncated {
			break
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			readErr = err
			break
		}
	}
	for c := int32(0); c < int32(ncpu); c++ {
		flush(c)
	}
	join()
	if readErr != nil {
		return nil, readErr
	}
	r.Incomplete = truncated

	if any {
		r.Seconds = float64(lastTS-firstTS) / 1e9
	}
	if opts.ToNS > opts.FromNS && (opts.FromNS != 0 || opts.ToNS != 0) {
		r.Seconds = float64(opts.ToNS-opts.FromNS) / 1e9
	}
	appPIDs := opts.AppPIDs
	if appPIDs == nil {
		// A budget cap leaves undecoded events ahead of the process
		// table; skip them unparsed so classification still works.
		if err := d.Skip(); err != nil {
			return nil, err
		}
		procs, err := d.Procs()
		if err != nil {
			return nil, err
		}
		appPIDs = (&trace.Trace{Procs: procs}).AppPIDs()
	}

	r.Dropped += dropped
	r.prealloc(walkers, ctl.switches, opts.KeepDurations)
	windows, noiseIdx := r.replay(ctx, ctl, walkers, opts, appMatcher(appPIDs))
	if ctx.Err() != nil {
		return r.markCancelled(&prog), cancelErr(ctx)
	}
	if err := r.finish(ctx, walkers, windows, noiseIdx, opts, shards); err != nil {
		return r.markCancelled(&prog), cancelErr(ctx)
	}
	r.EventsConsumed = prog.events.Load()
	return r, nil
}
