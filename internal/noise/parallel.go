// Parallel analysis pipeline.
//
// The tracer captures into per-CPU rings precisely so that recording
// scales with core count; this file gives the offline analyzer the same
// shape. Kernel-activity nesting is per-CPU by construction (an
// interrupt nests inside whatever its own CPU was doing), so the
// expensive part of the analysis — reconstructing spans from entry/exit
// tracepoints with exact nested-time attribution — shards across CPUs
// with no approximation. What does NOT shard is the scheduler state:
// preemption windows follow a task when it migrates between CPUs, so
// owner/window tracking is replayed over the scheduler events alone —
// sequentially, or split into time-epochs stitched at their boundaries
// (epoch.go).
//
// The pipeline runs in three phases:
//
//  1. partition (parallel): a counting sort of the event stream into
//     per-CPU entry/exit sub-streams — compact 16-byte records carrying
//     exactly what span reconstruction needs — plus one global,
//     order-preserving control stream;
//  2. walk (parallel): one worker per CPU stream reconstructs spans —
//     stack nesting, wall/own attribution — independently. On the raw
//     path the walkers start while the partition is still scanning:
//     chunks are handed off through rawHandoff as each one completes,
//     so the two phases overlap instead of running back to back;
//  3. replay: the control stream is walked, applying the
//     scheduler/owner/preemption-window state machine and feeding every
//     finished span through Report.record in exactly the order the
//     sequential analyzer would have — in one pass, or epoch-split with
//     boundary stitching (epoch.go) when opts.Epochs allows.
//
// Because phase 3 performs the same accumulator calls in the same order
// as Analyze, the resulting Report is bit-identical to the sequential
// one — including the order-sensitive floating-point summary fields.
// TestParallelMatchesSequential and TestEpochsMatchSequential lock this
// invariant.
//
// The walkers also pre-count spans per key, so the replay appends into
// exactly-sized slices — the sequential analyzer cannot know those
// counts without a second pass, which is how the pipeline stays ahead
// even before any shard runs concurrently. The raw path additionally
// recycles its large scratch buffers (per-chunk sub-streams, decode
// arenas, walker span lists) through sync.Pools, so a steady-state
// consumer — the noised daemon, the pipeline benchmark's repetitions —
// stops paying allocation and page-zeroing costs after the first run.
//
// Every entry point takes a context.Context and checks it at batch and
// shard boundaries (see resilience.go): each phase joins its workers
// before returning, so cancellation never leaks a goroutine, and a
// cancelled run returns a Report marked Incomplete together with an
// error wrapping ErrCancelled.
package noise

import (
	"context"
	"io"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"osnoise/internal/trace"
)

// cancelStride is how many event records a worker processes between
// cooperative cancellation checks. Large enough that the ctx.Err() load
// is invisible on the hot path, small enough that cancellation lands
// within microseconds.
const cancelStride = 8192

// cev is one routed entry or exit record in a per-CPU sub-stream: the
// 16 bytes of a 40-byte trace.Event that span reconstruction actually
// consumes. For an entry, id is the expected exit tracepoint and key
// the span's pre-classified activity Key (both computed during the
// parallel partition, off the walkers' critical path); for an exit, id
// is the exit tracepoint itself and key is cevExit.
type cev struct {
	ts  int64
	id  uint16
	key uint16
}

// cevExit marks a cev as an exit record. Activity keys are small
// (< NumKeys), so the all-ones pattern can never collide with one.
const cevExit = ^uint16(0)

// Event classes for partition routing, precomputed per tracepoint ID so
// the per-record work is one table load and one switch instead of a
// chain of multi-case comparisons.
const (
	clIgnore uint8 = iota
	clEntry
	clExit
	clSwitch
	clMigrate
	clProcExit
)

// evClass maps every tracepoint ID to its partition routing class.
var evClass = buildEvClass()

// buildEvClass derives the routing table from the ID predicates the
// sequential analyzer switches on, so the two can never disagree.
func buildEvClass() (t [trace.NumIDs]uint8) {
	for id := trace.ID(0); int(id) < trace.NumIDs; id++ {
		switch {
		case id.IsEntry():
			t[id] = clEntry
		case id.IsExit():
			t[id] = clExit
		case id == trace.EvSchedSwitch:
			t[id] = clSwitch
		case id == trace.EvSchedMigrate:
			t[id] = clMigrate
		case id == trace.EvProcessExit:
			t[id] = clProcExit
		}
	}
	return t
}

// classOf routes one tracepoint ID, tolerating IDs beyond the table (a
// corrupt or newer-format record classifies as ignored, exactly as the
// sequential analyzer's predicate chain would).
func classOf(id trace.ID) uint8 {
	if int(id) < len(evClass) {
		return evClass[id]
	}
	return clIgnore
}

// Scratch-buffer pools for the raw pipeline. A steady-state consumer
// (the daemon's per-window analyses, benchmark repetitions) reuses the
// previous run's buffers instead of re-allocating — and re-zeroing —
// tens of megabytes per run; see getSlice/putSlice.
var (
	cevPool   sync.Pool // *[]cev: per-chunk per-CPU sub-streams
	exitPool  sync.Pool // *[]int32: per-chunk exit-CPU lists
	spanPool  sync.Pool // *[]spanRec: per-CPU walker span lists
	arenaPool sync.Pool // *[]trace.Event: per-worker decode arenas
	schedPool sync.Pool // *[]schedRec: per-chunk control-stream pieces
)

// getSlice returns an empty slice with at least the requested capacity,
// reusing a pooled buffer when one is big enough.
func getSlice[T any](p *sync.Pool, capacity int) []T {
	if v := p.Get(); v != nil {
		if s := *(v.(*[]T)); cap(s) >= capacity {
			return s[:0]
		}
	}
	return make([]T, 0, capacity)
}

// putSlice recycles a buffer for a later getSlice. The caller must be
// the last referent — nothing reachable from a returned Report may
// alias it.
func putSlice[T any](p *sync.Pool, s []T) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	p.Put(&s)
}

// spanRec is one reconstructed kernel-activity span before scheduler
// attribution (owner pid and noise classification are replay-phase
// concerns). 32 bytes: the replay streams millions of these.
type spanRec struct {
	start    int64
	wall     int64
	own      int64
	closeOrd int32 // ordinal of the closing exit within this CPU's exits
	key      uint16
	topLevel bool // span closed with an empty stack below it
}

// cpuWalker reconstructs the kernel-activity spans of one CPU's
// entry/exit sub-stream. It is the parallel counterpart of the stack
// handling inside Analyze and must mirror it exactly.
type cpuWalker struct {
	attributeNesting bool
	stack            []openSpan
	spans            []spanRec
	perKey           [NumKeys]int // finished spans per key, for preallocation
	exits            int          // exit tracepoints seen, including unmatched ones
	dropped          int
}

// step feeds one routed sub-stream record through the walker.
//
//noisevet:hotpath
func (w *cpuWalker) step(e cev) {
	if e.key != cevExit {
		w.stack = append(w.stack, openSpan{
			key:    Key(e.key),
			start:  e.ts,
			exitID: trace.ID(e.id),
		})
		return
	}
	ord := w.exits
	w.exits++
	if len(w.stack) == 0 {
		w.dropped++ // span began before tracing started
		return
	}
	top := w.stack[len(w.stack)-1]
	if top.exitID != trace.ID(e.id) {
		// Corrupt nesting; drop the whole stack for this CPU.
		w.dropped += len(w.stack)
		w.stack = w.stack[:0]
		return
	}
	w.stack = w.stack[:len(w.stack)-1]
	wall := e.ts - top.start
	own := wall
	if w.attributeNesting {
		own = wall - top.childWall
		if own < 0 {
			own = 0
		}
	}
	if len(w.stack) > 0 {
		w.stack[len(w.stack)-1].childWall += wall
	}
	w.perKey[top.key]++
	w.spans = append(w.spans, spanRec{
		closeOrd: int32(ord), key: uint16(top.key), start: top.start,
		wall: wall, own: own, topLevel: len(w.stack) == 0,
	})
}

// entryCev builds the routed record of an entry event, pre-resolving
// the expected exit ID and the activity key so the walker never touches
// them again.
func entryCev(ts int64, id trace.ID, vec int64) cev {
	return cev{ts: ts, id: uint16(id.ExitFor()), key: uint16(keyOfSpan(id, vec))}
}

// ctlKind tags one scheduler record in the control stream.
type ctlKind uint8

// Scheduler record kinds: the three event types that mutate cross-CPU
// analysis state.
const (
	ctlSwitch ctlKind = iota
	ctlMigrate
	ctlProcExit
)

// schedRec is one scheduler event in the control stream, positioned in
// the global order by the number of span exits that precede it.
type schedRec struct {
	ts          int64
	a1, a2, a3  int64
	exitsBefore int32 // exit events preceding this record globally
	cpu         int32
	kind        ctlKind
}

// ctlStream is the global-order projection of the event stream that the
// replay consumes: exits are compressed to just their CPU (4 bytes each
// — they carry no other replay-relevant state, the walkers hold the
// span data), while the rare scheduler events keep their arguments and
// record their interleaving position.
type ctlStream struct {
	exitCPU  []int32
	sched    []schedRec
	switches int // sched-switch count: caps the preemption spans replay can emit
}

// inWindow reports whether a timestamp falls inside the analysis window
// (mirrors the filter at the top of Analyze's event loop).
func (o *Options) inWindow(ts int64) bool {
	if o.FromNS == 0 && o.ToNS == 0 {
		return true
	}
	return ts >= o.FromNS && !(o.ToNS > 0 && ts > o.ToNS)
}

// partition routes the event stream into per-CPU entry/exit sub-streams
// and the control stream, via a chunk-parallel counting sort that
// preserves order everywhere. The sub-streams are compacted cev records
// so the walkers scan 16 bytes per event instead of striding through
// the full interleaved 40-byte stream. dropped counts events outside
// the CPU range (mirroring Analyze's Dropped accounting for them).
//
// Both passes check ctx every cancelStride records; on cancellation the
// chunk workers stop where they are, the pass still joins every worker,
// and the context's error is returned. prog.events counts records
// scanned by the first (counting) pass, at chunk-stride granularity.
func partition(ctx context.Context, events []trace.Event, opts Options, ncpu, workers int, prog *progress) (perCPU [][]cev, ctl ctlStream, dropped int, err error) {
	nchunk := workers
	if nchunk < 1 {
		nchunk = 1
	}
	if nchunk > len(events)/4096+1 {
		nchunk = len(events)/4096 + 1
	}
	bounds := make([]int, nchunk+1)
	for i := 0; i <= nchunk; i++ {
		bounds[i] = i * len(events) / nchunk
	}

	counts := make([][]int, nchunk) // per chunk, per CPU entry/exit count
	exitCounts := make([]int, nchunk)
	schedCounts := make([]int, nchunk)
	switchCounts := make([]int, nchunk)
	drops := make([]int, nchunk)
	var wg sync.WaitGroup
	for ci := 0; ci < nchunk; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cnt := make([]int, ncpu)
			chunk := events[bounds[ci]:bounds[ci+1]]
			for base := 0; base < len(chunk); base += cancelStride {
				if ctx.Err() != nil {
					return
				}
				end := base + cancelStride
				if end > len(chunk) {
					end = len(chunk)
				}
				for _, ev := range chunk[base:end] {
					if !opts.inWindow(ev.TS) {
						continue
					}
					if ev.CPU < 0 || int(ev.CPU) >= ncpu {
						drops[ci]++
						continue
					}
					switch classOf(ev.ID) {
					case clEntry:
						cnt[ev.CPU]++
					case clExit:
						cnt[ev.CPU]++
						exitCounts[ci]++
					case clSwitch:
						schedCounts[ci]++
						switchCounts[ci]++
					case clMigrate, clProcExit:
						schedCounts[ci]++
					}
				}
				prog.events.Add(uint64(end - base))
			}
			counts[ci] = cnt
		}(ci)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, ctl, 0, err
	}

	// Exclusive prefix sums: where each chunk writes, per CPU and in the
	// control stream. Chunk order equals stream order, so concatenating
	// chunk ranges preserves per-CPU and global ordering.
	offs := make([][]int, nchunk)
	exitOffs := make([]int, nchunk)
	schedOffs := make([]int, nchunk)
	totals := make([]int, ncpu)
	exitTotal, schedTotal := 0, 0
	for ci := 0; ci < nchunk; ci++ {
		offs[ci] = make([]int, ncpu)
		copy(offs[ci], totals)
		exitOffs[ci] = exitTotal
		schedOffs[ci] = schedTotal
		for c := 0; c < ncpu; c++ {
			totals[c] += counts[ci][c]
		}
		exitTotal += exitCounts[ci]
		schedTotal += schedCounts[ci]
		dropped += drops[ci]
		ctl.switches += switchCounts[ci]
	}
	perCPU = make([][]cev, ncpu)
	for c := 0; c < ncpu; c++ {
		perCPU[c] = make([]cev, totals[c])
	}
	ctl.exitCPU = make([]int32, exitTotal)
	ctl.sched = make([]schedRec, schedTotal)

	for ci := 0; ci < nchunk; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			pos := offs[ci]
			exitPos := exitOffs[ci]
			schedPos := schedOffs[ci]
			chunk := events[bounds[ci]:bounds[ci+1]]
			for base := 0; base < len(chunk); base += cancelStride {
				if ctx.Err() != nil {
					return
				}
				end := base + cancelStride
				if end > len(chunk) {
					end = len(chunk)
				}
				for _, ev := range chunk[base:end] {
					if !opts.inWindow(ev.TS) {
						continue
					}
					if ev.CPU < 0 || int(ev.CPU) >= ncpu {
						continue
					}
					switch classOf(ev.ID) {
					case clEntry:
						perCPU[ev.CPU][pos[ev.CPU]] = entryCev(ev.TS, ev.ID, ev.Arg1)
						pos[ev.CPU]++
					case clExit:
						perCPU[ev.CPU][pos[ev.CPU]] = cev{ts: ev.TS, id: uint16(ev.ID), key: cevExit}
						pos[ev.CPU]++
						ctl.exitCPU[exitPos] = ev.CPU
						exitPos++
					case clSwitch, clMigrate, clProcExit:
						kind := ctlSwitch
						switch classOf(ev.ID) {
						case clMigrate:
							kind = ctlMigrate
						case clProcExit:
							kind = ctlProcExit
						}
						ctl.sched[schedPos] = schedRec{
							kind: kind, cpu: ev.CPU, ts: ev.TS,
							a1: ev.Arg1, a2: ev.Arg2, a3: ev.Arg3,
							exitsBefore: int32(exitPos),
						}
						schedPos++
					}
				}
			}
		}(ci)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, ctl, 0, err
	}
	return perCPU, ctl, dropped, nil
}

// chunkOut is one scan chunk's routed output: per-CPU sub-stream
// segments plus the chunk-local control-stream pieces awaiting
// stitching.
type chunkOut struct {
	perCPU   [][]cev
	exitCPU  []int32
	sched    []schedRec
	switches int
	dropped  int
}

// rawHandoff is the bounded hand-off between the raw partition and the
// walkers: one slot and one readiness signal per scan chunk (the chunk
// count bounds it). Scan workers fill outs[ci] and close done[ci];
// walkers block on done[ci] before reading outs[ci], consuming chunks
// strictly in order so each CPU sees its global event order. Every
// done channel is closed exactly once even when a chunk is skipped on
// cancellation, so a consumer can never hang.
type rawHandoff struct {
	outs []chunkOut
	done []chan struct{}
}

// newRawHandoff sizes a hand-off for nchunk scan chunks.
func newRawHandoff(nchunk int) *rawHandoff {
	h := &rawHandoff{
		outs: make([]chunkOut, nchunk),
		done: make([]chan struct{}, nchunk),
	}
	for i := range h.done {
		h.done[i] = make(chan struct{})
	}
	return h
}

// rawChunkCount is the scan-chunk count for a raw partition: one chunk
// per worker, capped so tiny traces are not shredded into sub-4096
// record fragments.
func rawChunkCount(count uint64, workers int) int {
	nchunk := workers
	if nchunk < 1 {
		nchunk = 1
	}
	if nchunk > int(count/4096)+1 {
		nchunk = int(count/4096) + 1
	}
	return nchunk
}

// rawBatch is how many events one DecodeBatch call materialises into a
// scan worker's arena: big enough to amortise the call and hoist the
// per-event branches, small enough to stay L1-resident (20 KB).
const rawBatch = 512

// scanChunk routes one chunk's raw records into out: DecodeBatch
// decodes rawBatch events at a time into the worker's reused arena, and
// the routing loop classifies each via the evClass table. The analysis
// window check is hoisted out entirely when no window is configured.
//
//noisevet:hotpath
func scanChunk(ctx context.Context, rt *trace.RawTrace, opts *Options, ncpu int, lo, hi uint64, arena []trace.Event, out *chunkOut, prog *progress) error {
	nrec := int(hi - lo)
	// Size the chunk-local buffers as if every record were an entry/exit
	// spread uniformly across CPUs: a slight overshoot that makes append
	// growth (and its copies) the rare case instead of the common one.
	capPer := nrec/ncpu + 64
	out.perCPU = make([][]cev, ncpu)
	for c := range out.perCPU {
		out.perCPU[c] = getSlice[cev](&cevPool, capPer)
	}
	out.exitCPU = getSlice[int32](&exitPool, nrec/2+64)
	// Scheduler records run ~10% of realistic traces; size for that so
	// the control stream almost never regrows mid-scan.
	out.sched = getSlice[schedRec](&schedPool, nrec/8+64)
	checkWin := opts.FromNS != 0 || opts.ToNS != 0
	return rt.Scan(lo, hi, func(_ uint64, b []byte) error {
		for len(b) > 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
			n := trace.DecodeBatch(b, arena)
			if n == 0 {
				return nil
			}
			b = b[n*trace.EventSize:]
			prog.events.Add(uint64(n))
			for i := range arena[:n] {
				ev := &arena[i]
				if checkWin && !opts.inWindow(ev.TS) {
					continue
				}
				cpu := ev.CPU
				if uint32(cpu) >= uint32(ncpu) {
					out.dropped++
					continue
				}
				switch classOf(ev.ID) {
				case clEntry:
					out.perCPU[cpu] = append(out.perCPU[cpu], entryCev(ev.TS, ev.ID, ev.Arg1))
				case clExit:
					out.perCPU[cpu] = append(out.perCPU[cpu], cev{ts: ev.TS, id: uint16(ev.ID), key: cevExit})
					out.exitCPU = append(out.exitCPU, cpu)
				case clSwitch:
					out.switches++
					out.sched = append(out.sched, schedRec{
						kind: ctlSwitch, cpu: cpu, ts: ev.TS,
						a1: ev.Arg1, a2: ev.Arg2, a3: ev.Arg3,
						exitsBefore: int32(len(out.exitCPU)),
					})
				case clMigrate:
					out.sched = append(out.sched, schedRec{
						kind: ctlMigrate, cpu: cpu, ts: ev.TS,
						a1: ev.Arg1, a2: ev.Arg2, a3: ev.Arg3,
						exitsBefore: int32(len(out.exitCPU)),
					})
				case clProcExit:
					out.sched = append(out.sched, schedRec{
						kind: ctlProcExit, cpu: cpu, ts: ev.TS,
						a1: ev.Arg1, a2: ev.Arg2, a3: ev.Arg3,
						exitsBefore: int32(len(out.exitCPU)),
					})
				}
			}
		}
		return nil
	})
}

// partitionRaw is partition operating directly on the undecoded event
// section of a fixed-format trace: scan workers claim chunks, bulk-
// decode them with trace.DecodeBatch into reused arenas, and route the
// records into chunk-local cev buffers — handing each finished chunk to
// the concurrently running walkers through hand (see rawHandoff), so
// span reconstruction overlaps the scan instead of waiting for it.
// This is what lets AnalyzeRaw skip the whole []Event allocation a
// Read-then-Analyze pipeline pays for.
//
// Only the small control stream is stitched after the scan, offsetting
// each chunk's exitsBefore by the exits that came before it. count is
// the number of records to partition — the full event count, or less
// when an event/byte budget truncates ingestion to a prefix. dropped
// (out-of-range CPU records) is summed over chunks exactly as the
// sequential analyzer counts them; the equivalence suite asserts the
// resulting Report.Dropped against Analyze's.
//
// The scan workers check ctx once per decode batch and count progress
// into prog.events; on cancellation every worker is still joined, every
// hand-off slot is still signalled, and the context's error is
// returned.
//
//noisevet:hotpath
func partitionRaw(ctx context.Context, rt *trace.RawTrace, opts Options, workers int, count uint64, prog *progress, hand *rawHandoff) (ctl ctlStream, dropped int, err error) {
	ncpu := rt.CPUs()
	nchunk := len(hand.outs)
	bounds := make([]uint64, nchunk+1)
	for i := 0; i <= nchunk; i++ {
		bounds[i] = uint64(i) * count / uint64(nchunk)
	}
	nworker := workers
	if nworker > nchunk {
		nworker = nchunk
	}
	if nworker < 1 {
		nworker = 1
	}

	errs := make([]error, nchunk)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nworker; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arena := getSlice[trace.Event](&arenaPool, rawBatch)[:rawBatch]
			defer putSlice(&arenaPool, arena)
			for {
				ci := int(next.Add(1)) - 1
				if ci >= nchunk {
					return
				}
				if ctx.Err() == nil {
					errs[ci] = scanChunk(ctx, rt, &opts, ncpu,
						bounds[ci], bounds[ci+1], arena, &hand.outs[ci], prog)
				}
				// Signal even skipped/failed chunks: walkers waiting on
				// this slot must unblock (they observe ctx themselves).
				close(hand.done[ci])
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return ctl, 0, err
	}
	for _, e := range errs {
		if e != nil {
			return ctl, 0, e
		}
	}

	outs := hand.outs
	exitTotal, schedTotal := 0, 0
	for ci := range outs {
		exitTotal += len(outs[ci].exitCPU)
		schedTotal += len(outs[ci].sched)
		ctl.switches += outs[ci].switches
		dropped += outs[ci].dropped
	}
	ctl.exitCPU = make([]int32, 0, exitTotal)
	ctl.sched = make([]schedRec, 0, schedTotal)
	for ci := range outs {
		exitsBefore := int32(len(ctl.exitCPU))
		ctl.exitCPU = append(ctl.exitCPU, outs[ci].exitCPU...)
		for _, sr := range outs[ci].sched {
			sr.exitsBefore += exitsBefore
			ctl.sched = append(ctl.sched, sr)
		}
	}
	// The chunk exit and sched lists are fully stitched now; recycle
	// them. The cev buffers are still being walked — AnalyzeRaw recycles
	// those once the run completes.
	for ci := range outs {
		putSlice(&exitPool, outs[ci].exitCPU)
		outs[ci].exitCPU = nil
		putSlice(&schedPool, outs[ci].sched)
		outs[ci].sched = nil
	}
	return ctl, dropped, nil
}

// recycleRaw returns a finished run's large scratch buffers — the
// chunk-local cev sub-streams and the walkers' span lists — to their
// pools. Only called after the replay and interruption build are done:
// the Report copies everything it keeps, so nothing reachable from it
// aliases these buffers.
func recycleRaw(hand *rawHandoff, walkers []cpuWalker) {
	for ci := range hand.outs {
		for c := range hand.outs[ci].perCPU {
			putSlice(&cevPool, hand.outs[ci].perCPU[c])
		}
		hand.outs[ci].perCPU = nil
	}
	for i := range walkers {
		putSlice(&spanPool, walkers[i].spans)
		walkers[i].spans = nil
	}
}

// runWalkersSegs reconstructs spans for every CPU, consuming the raw
// partition's chunks through hand as they become ready: each CPU's
// walker steps through its segment of every chunk in chunk order —
// exactly the CPU's global event order — blocking on a chunk's hand-off
// signal only when the scan has not produced it yet. Workers check ctx
// at every CPU claim, every chunk boundary, and every cancelStride
// steps within a chunk; finished walkers are counted into prog.cpus.
//
//noisevet:hotpath
func runWalkersSegs(ctx context.Context, hand *rawHandoff, ncpu int, attributeNesting bool, workers int, prog *progress) ([]cpuWalker, error) {
	walkers := make([]cpuWalker, ncpu)
	if workers > ncpu {
		workers = ncpu
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				c := int(next.Add(1)) - 1
				if c >= ncpu {
					return
				}
				wk := &walkers[c]
				wk.attributeNesting = attributeNesting
				stepped := 0
				for ci := range hand.outs {
					<-hand.done[ci]
					if ctx.Err() != nil {
						return
					}
					out := &hand.outs[ci]
					if len(out.perCPU) <= c {
						continue // chunk skipped on cancellation
					}
					seg := out.perCPU[c]
					if wk.spans == nil {
						// Size from the first chunk: chunks are uniform
						// record ranges, and roughly half a sub-stream is
						// exits, each closing at most one span.
						wk.spans = getSlice[spanRec](&spanPool, (len(seg)*len(hand.outs))/2+16)
					}
					for i := range seg {
						wk.step(seg[i])
						if stepped++; stepped >= cancelStride {
							stepped = 0
							if ctx.Err() != nil {
								return
							}
						}
					}
				}
				prog.cpus.Add(1)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return walkers, nil
}

// runWalkers reconstructs spans for every CPU sub-stream using a pool of
// at most `workers` goroutines. Workers check ctx at every CPU claim and
// every cancelStride steps within a CPU; finished walkers are counted
// into prog.cpus.
//
//noisevet:hotpath
func runWalkers(ctx context.Context, perCPU [][]cev, attributeNesting bool, workers int, prog *progress) ([]cpuWalker, error) {
	walkers := make([]cpuWalker, len(perCPU))
	if workers > len(perCPU) {
		workers = len(perCPU)
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				c := int(next.Add(1)) - 1
				if c >= len(perCPU) {
					return
				}
				wk := &walkers[c]
				wk.attributeNesting = attributeNesting
				// Roughly half the sub-stream is exits, each closing at
				// most one span.
				wk.spans = make([]spanRec, 0, len(perCPU[c])/2+1)
				stream := perCPU[c]
				for base := 0; base < len(stream); base += cancelStride {
					if ctx.Err() != nil {
						return
					}
					end := base + cancelStride
					if end > len(stream) {
						end = len(stream)
					}
					for _, ev := range stream[base:end] {
						wk.step(ev)
					}
				}
				prog.cpus.Add(1)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return walkers, nil
}

// prealloc right-sizes the report's append targets before the replay:
// the walkers know exactly how many spans of each key they produced, and
// the partition bounds the preemption spans by the switch count, so the
// replay's record calls never re-grow a slice. (The sequential analyzer
// cannot know these counts without a second pass — this is where the
// sharded pipeline recovers the partition cost.) Slices stay nil when
// nothing will be appended so the report compares equal to the
// sequential one.
func (r *Report) prealloc(walkers []cpuWalker, switches int, keep bool) {
	total := 0
	var perKey [NumKeys]int
	for i := range walkers {
		total += len(walkers[i].spans)
		for k, n := range walkers[i].perKey {
			perKey[k] += n
		}
	}
	if total > 0 {
		r.Spans = make([]Span, 0, total+switches)
	}
	if keep {
		for k, n := range perKey {
			if n > 0 && Key(k) != KeyPreemption {
				r.PerKey[k].Durations = make([]int64, 0, n)
			}
		}
	}
}

// ispanKey is one noise span's record in the per-CPU interruption
// index: the sort-comparator fields plus everything the gap merge
// consumes (own, key). The replay sink writes these as it emits noise
// spans, so the whole interruption build — sort, count, fill — runs
// over these compact contiguous records without ever loading the
// multi-megabyte Report.Spans array again (a cache miss per span,
// measured as the dominant cost of the old index-only scheme).
type ispanKey struct {
	start, end int64
	own        int64 // the span's own-time contribution (Span.Own)
	key        Key   // the span's classification (Span.Key)
	idx        int32 // record index in Report.Spans: the stable tie-break
}

// keyCmp is the interruption sort order on keys: start ascending, then
// end descending — exactly interruptionsForCPU's comparator. Ties (two
// spans with identical start and end, common at same-timestamp
// boundaries) compare equal here; use keyCmpTotal where a deterministic
// order is required.
func keyCmp(a, b ispanKey) int {
	if a.start != b.start {
		if a.start < b.start {
			return -1
		}
		return 1
	}
	if a.end == b.end {
		return 0
	}
	if a.end > b.end {
		return -1
	}
	return 1
}

// keyCmpTotal extends keyCmp into a total order by breaking ties on the
// span's record index, ascending. Keys are built in record order, so
// sorting by keyCmpTotal from ANY permutation yields exactly the order
// sort.SliceStable with keyCmp would give the original sequence — the
// tie-handling contract the sequential interruptionsForCPU provides.
func keyCmpTotal(a, b ispanKey) int {
	if c := keyCmp(a, b); c != 0 {
		return c
	}
	if a.idx != b.idx {
		if a.idx < b.idx {
			return -1
		}
		return 1
	}
	return 0
}

// sortKeysNearSorted sorts keys in near-linear time, exploiting that
// the replay emits noise spans in per-CPU exit order: ascending except
// where a parent span closes after its children, so out-of-place
// elements are a handful per CPU. Those are split off, sorted, and
// rear-merged into the ascending remainder.
//
// When every key is distinct the sorted order is unique, so this equals
// what any correct sort would produce. Duplicate keys make the order of
// the tied elements algorithm-dependent; the function detects them and
// reports false, and the caller must fall back to the total-order sort
// (keyCmpTotal), whose tie-break reproduces the stable order.
func sortKeysNearSorted(keys []ispanKey) bool {
	w := 0
	var outliers []ispanKey
	for _, k := range keys {
		if w > 0 && keyCmp(k, keys[w-1]) < 0 {
			outliers = append(outliers, k)
			continue
		}
		keys[w] = k
		w++
	}
	if len(outliers) > 0 {
		slices.SortFunc(outliers, keyCmpTotal)
		// Rear merge: fill keys from the back; t never catches up to i.
		i, t := w-1, len(keys)-1
		for j := len(outliers) - 1; j >= 0; t-- {
			if i >= 0 && keyCmp(keys[i], outliers[j]) > 0 {
				keys[t] = keys[i]
				i--
			} else {
				keys[t] = outliers[j]
				j--
			}
		}
	}
	for i := 1; i < len(keys); i++ {
		if keyCmp(keys[i-1], keys[i]) == 0 {
			return false
		}
	}
	return true
}

// sortInterruptionKeys sorts one CPU's interruption keys in place:
// same comparator and provably the same order as interruptionsForCPU's
// stable sort. The near-sorted fast path is exact for distinct keys
// (the sorted order is unique); when it detects ties it reports failure
// and the total-order sort lands them by ascending record index — which
// IS the stable order, because the replay sink wrote the keys in record
// order. Sorting these compact records applies the exact permutation
// sorting the spans themselves would.
func sortInterruptionKeys(keys []ispanKey) {
	if !sortKeysNearSorted(keys) {
		// keyCmpTotal is a total order: re-sorting the permuted keys
		// still yields the unique sorted sequence, no rebuild needed.
		slices.SortFunc(keys, keyCmpTotal)
	}
}

// countInterruptions dry-runs the gap merge over sorted keys and
// returns how many interruptions it will produce.
func countInterruptions(keys []ispanKey, gap int64) int {
	n, end := 0, int64(0)
	for _, k := range keys {
		if n == 0 || k.start-end > gap {
			n++
			end = k.end
		} else if k.end > end {
			end = k.end
		}
	}
	return n
}

// fillInterruptions runs the gap merge over one CPU's sorted keys,
// writing into caller-provided storage: out must have room for exactly
// countInterruptions results and comps for len(keys) components. Every
// Component slice is carved from comps with its capacity pinned, so the
// result compares equal to the sequential builder's append-grown slices
// (reflect.DeepEqual ignores capacity).
func fillInterruptions(cpu int32, keys []ispanKey, gap int64, out []Interruption, comps []Component) {
	ci, curStart, n := 0, 0, 0
	var cur Interruption
	for _, k := range keys {
		if ci > 0 && k.start-cur.End <= gap {
			comps[ci] = Component{Key: k.key, Start: k.start, Own: k.own}
			ci++
			cur.Total += k.own
			if k.end > cur.End {
				cur.End = k.end
			}
			continue
		}
		if ci > 0 {
			cur.Components = comps[curStart:ci:ci]
			out[n] = cur
			n++
		}
		curStart = ci
		comps[ci] = Component{Key: k.key, Start: k.start, Own: k.own}
		ci++
		cur = Interruption{CPU: cpu, Start: k.start, End: k.end, Total: k.own}
	}
	cur.Components = comps[curStart:ci:ci]
	out[n] = cur
}

// buildInterruptionsParallel is buildInterruptions with the per-CPU
// grouping fanned out over a worker pool, in two phases: first every
// CPU's keys are sorted and its interruption count dry-run in parallel,
// then the full interruption list and one global component arena are
// allocated once and the workers fill disjoint subranges in place.
// CPUs are independent and their ranges concatenate in ascending CPU
// order, so the output is identical to the sequential builder's: each
// CPU's noise spans are gathered from r.Spans in record order, exactly
// the sequence noiseByCPU produces.
//
// Workers check ctx at every CPU claim; on cancellation both pools are
// still joined and the context's error is returned.
func (r *Report) buildInterruptionsParallel(ctx context.Context, noiseIdx [][]ispanKey, gap int64, workers int) error {
	var cpuIDs []int32
	for c := range noiseIdx {
		if len(noiseIdx[c]) > 0 {
			cpuIDs = append(cpuIDs, int32(c))
		}
	}
	if len(cpuIDs) == 0 {
		return ctx.Err()
	}
	if workers > len(cpuIDs) {
		workers = len(cpuIDs)
	}
	if workers < 1 {
		workers = 1
	}

	keysPer := make([][]ispanKey, len(cpuIDs))
	counts := make([]int, len(cpuIDs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(cpuIDs) {
					return
				}
				// The index was written in record order; sort it in place
				// (nothing else reads it after this phase).
				keysPer[i] = noiseIdx[cpuIDs[i]]
				sortInterruptionKeys(keysPer[i])
				counts[i] = countInterruptions(keysPer[i], gap)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}

	// Exclusive prefix sums: each CPU's slot in the interruption list
	// and the component arena.
	intOffs := make([]int, len(cpuIDs)+1)
	keyOffs := make([]int, len(cpuIDs)+1)
	for i := range cpuIDs {
		intOffs[i+1] = intOffs[i] + counts[i]
		keyOffs[i+1] = keyOffs[i] + len(keysPer[i])
	}
	r.Interruptions = make([]Interruption, intOffs[len(cpuIDs)])
	comps := make([]Component, keyOffs[len(cpuIDs)])

	next.Store(0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(cpuIDs) {
					return
				}
				fillInterruptions(cpuIDs[i], keysPer[i], gap,
					r.Interruptions[intOffs[i]:intOffs[i+1]],
					comps[keyOffs[i]:keyOffs[i+1]])
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// appMatcher builds the application-pid predicate from an explicit pid
// set (nil = every non-zero pid is an application).
func appMatcher(appPIDs map[int64]bool) func(int64) bool {
	return func(pid int64) bool {
		if pid == 0 {
			return false
		}
		if appPIDs == nil {
			return true
		}
		return appPIDs[pid]
	}
}

// finish shares the tail of the parallel paths: boundary-drop
// accounting, interruption grouping, and the interruption budget. A
// non-nil error is the context's own (the caller wraps it).
func (r *Report) finish(ctx context.Context, walkers []cpuWalker, windows map[int64]*window, noiseIdx [][]ispanKey, opts Options, shards int) error {
	for i := range walkers {
		r.Dropped += walkers[i].dropped + len(walkers[i].stack)
	}
	r.Dropped += len(windows)
	if err := r.buildInterruptionsParallel(ctx, noiseIdx, opts.GapNS, shards); err != nil {
		return err
	}
	r.applyInterruptionBudget(opts.Budget)
	return nil
}

// AnalyzeParallel runs the full noise analysis sharded across per-CPU
// event streams using up to `shards` workers (≤ 0 means GOMAXPROCS).
// The report it produces is bit-identical to Analyze's on the same
// trace and options — budgets included: per-CPU span reconstruction is
// exact (nesting never crosses a CPU) and the final accumulation
// replays in sequential order (epoch-split when opts.Epochs allows; see
// epoch.go — the result is bit-identical either way).
//
// Cancelling ctx stops the run at the next batch boundary with no
// leaked goroutines; the partial Report (marked Incomplete, with
// EventsConsumed/CPUsFinished) is returned together with an error
// wrapping both ErrCancelled and ctx.Err().
func AnalyzeParallel(ctx context.Context, tr *trace.Trace, opts Options, shards int) (*Report, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	var prog progress
	events, truncated := opts.Budget.truncate(tr.Events)
	if len(events) > math.MaxInt32 {
		// The control stream counts exits in int32 (schedRec.exitsBefore);
		// beyond that (an ~86 GB trace) fall back to the sequential
		// analyzer, which produces the identical report.
		if ctx.Err() != nil {
			return (&Report{CPUs: tr.CPUs}).markCancelled(&prog), cancelErr(ctx)
		}
		return Analyze(tr, opts), nil
	}
	r := &Report{CPUs: tr.CPUs, Seconds: tr.DurationSeconds()}
	if truncated {
		r.Incomplete = true
		r.Seconds = spanSeconds(events)
	}
	if opts.ToNS > opts.FromNS && (opts.FromNS != 0 || opts.ToNS != 0) {
		r.Seconds = float64(opts.ToNS-opts.FromNS) / 1e9
	}
	for k := Key(0); k < NumKeys; k++ {
		r.PerKey[k] = &KeyStats{Key: k}
	}
	appPIDs := opts.AppPIDs
	if appPIDs == nil {
		appPIDs = tr.AppPIDs()
	}

	perCPU, ctl, dropped, err := partition(ctx, events, opts, tr.CPUs, shards, &prog)
	if err != nil {
		return r.markCancelled(&prog), cancelErr(ctx)
	}
	r.Dropped += dropped
	walkers, err := runWalkers(ctx, perCPU, opts.AttributeNesting, shards, &prog)
	if err != nil {
		return r.markCancelled(&prog), cancelErr(ctx)
	}
	r.prealloc(walkers, ctl.switches, opts.KeepDurations)
	windows, noiseIdx := r.replay(ctx, ctl, walkers, opts, appMatcher(appPIDs), shards)
	if ctx.Err() != nil {
		return r.markCancelled(&prog), cancelErr(ctx)
	}
	if err := r.finish(ctx, walkers, windows, noiseIdx, opts, shards); err != nil {
		return r.markCancelled(&prog), cancelErr(ctx)
	}
	r.EventsConsumed = uint64(len(events))
	return r, nil
}

// AnalyzeRaw runs the sharded analysis directly over the undecoded
// bytes of a fixed-format trace in a random-access source (a file or a
// bytes.Reader), using up to `shards` workers (≤ 0 means GOMAXPROCS).
// It never materialises the full []Event: the partition phase bulk-
// decodes the raw records through reused arenas into compact per-CPU
// sub-streams, handing finished chunks to the concurrently running
// walkers (partition and walk overlap; see rawHandoff). The report is
// bit-identical to Analyze(trace.Read(...)) on the same bytes.
//
// This is the fastest path from trace bytes to a Report and the one the
// noisebench pipeline benchmark exercises.
//
// Cancelling ctx stops the run at the next batch boundary with no
// leaked goroutines; the partial Report (marked Incomplete, with
// EventsConsumed/CPUsFinished) is returned together with an error
// wrapping both ErrCancelled and ctx.Err(). An event/byte budget
// truncates the scan to the trace's prefix without reading the rest.
func AnalyzeRaw(ctx context.Context, ra io.ReaderAt, size int64, opts Options, shards int) (*Report, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	rt, err := trace.OpenRaw(ra, size)
	if err != nil {
		return nil, err
	}
	var prog progress
	count := rt.EventCount()
	truncated := false
	if limit := opts.Budget.eventCap(); count > limit {
		count, truncated = limit, true
	}
	if count > math.MaxInt32 {
		tr, err := trace.ReadParallel(ctx, ra, size, shards)
		if err != nil {
			if ctx.Err() != nil {
				return (&Report{CPUs: rt.CPUs()}).markCancelled(&prog), cancelErr(ctx)
			}
			return nil, err
		}
		return Analyze(tr, opts), nil
	}
	r := &Report{CPUs: rt.CPUs(), Incomplete: truncated}
	for k := Key(0); k < NumKeys; k++ {
		r.PerKey[k] = &KeyStats{Key: k}
	}
	// Trace.DurationSeconds spans the first to the last record; only two
	// records need decoding to reproduce it. Under a budget the span
	// covers the consumed prefix, like spanSeconds in the other paths.
	if count > 0 {
		first, err := rt.Event(0)
		if err != nil {
			return nil, err
		}
		last, err := rt.Event(count - 1)
		if err != nil {
			return nil, err
		}
		r.Seconds = float64(last.TS-first.TS) / 1e9
	}
	if opts.ToNS > opts.FromNS && (opts.FromNS != 0 || opts.ToNS != 0) {
		r.Seconds = float64(opts.ToNS-opts.FromNS) / 1e9
	}
	appPIDs := opts.AppPIDs
	if appPIDs == nil {
		procs, err := rt.Procs()
		if err != nil {
			return nil, err
		}
		appPIDs = (&trace.Trace{Procs: procs}).AppPIDs()
	}

	// Overlapped partition + walk: the walkers start first, blocked on
	// the hand-off, and consume each chunk as the scan finishes it.
	hand := newRawHandoff(rawChunkCount(count, shards))
	var (
		walkers []cpuWalker
		werr    error
		wwg     sync.WaitGroup
	)
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		walkers, werr = runWalkersSegs(ctx, hand, rt.CPUs(), opts.AttributeNesting, shards, &prog)
	}()
	ctl, dropped, err := partitionRaw(ctx, rt, opts, shards, count, &prog, hand)
	wwg.Wait()
	if err != nil {
		if ctx.Err() != nil {
			return r.markCancelled(&prog), cancelErr(ctx)
		}
		return nil, err
	}
	if werr != nil {
		return r.markCancelled(&prog), cancelErr(ctx)
	}
	r.Dropped += dropped
	r.prealloc(walkers, ctl.switches, opts.KeepDurations)
	windows, noiseIdx := r.replay(ctx, ctl, walkers, opts, appMatcher(appPIDs), shards)
	if ctx.Err() != nil {
		return r.markCancelled(&prog), cancelErr(ctx)
	}
	if err := r.finish(ctx, walkers, windows, noiseIdx, opts, shards); err != nil {
		return r.markCancelled(&prog), cancelErr(ctx)
	}
	r.EventsConsumed = count
	recycleRaw(hand, walkers)
	return r, nil
}

// streamBatch is one routed slice of a CPU's entry/exit sub-stream.
type streamBatch struct {
	cpu int32
	evs []cev
}

// AnalyzeStream runs the sharded analysis over a streaming decoder
// without materialising the whole event section: events are decoded in
// batches, routed to per-CPU walker goroutines as they arrive (decode
// overlaps with span reconstruction), and only the control stream and
// the reconstructed spans are retained for the replay. The report is
// bit-identical to Analyze/AnalyzeParallel on the same trace.
//
// If opts.AppPIDs is nil the application set is taken from the trace's
// process table, which the decoder reads after the last event.
//
// Cancelling ctx stops the run at the next decode batch with no leaked
// goroutines (the walker pool is always drained and joined); the
// partial Report (marked Incomplete, with EventsConsumed) is returned
// together with an error wrapping both ErrCancelled and ctx.Err(). An
// event/byte budget stops decoding at the cap and degrades to a
// prefix-complete report.
func AnalyzeStream(ctx context.Context, d *trace.Decoder, opts Options, shards int) (*Report, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	ncpu := d.CPUs()
	r := &Report{CPUs: ncpu}
	for k := Key(0); k < NumKeys; k++ {
		r.PerKey[k] = &KeyStats{Key: k}
	}

	workers := shards
	if workers > ncpu {
		workers = ncpu
	}
	if workers < 1 {
		workers = 1
	}
	walkers := make([]cpuWalker, ncpu)
	for c := range walkers {
		walkers[c].attributeNesting = opts.AttributeNesting
	}
	chans := make([]chan streamBatch, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		chans[w] = make(chan streamBatch, 64)
		wg.Add(1)
		go func(ch chan streamBatch) {
			defer wg.Done()
			for b := range ch {
				wk := &walkers[b.cpu]
				for _, ev := range b.evs {
					wk.step(ev)
				}
			}
		}(chans[w])
	}
	// join drains and joins the walker pool; every return path runs it,
	// which is what guarantees zero leaked goroutines on cancellation.
	join := func() {
		for _, ch := range chans {
			close(ch)
		}
		wg.Wait()
	}

	const batchLen = 4096
	var (
		prog      progress
		eventCap  = opts.Budget.eventCap()
		truncated bool
		ctl       ctlStream
		pending   = make([][]cev, ncpu)
		batch     = make([]trace.Event, batchLen)
		firstTS   int64
		lastTS    int64
		any       bool
		dropped   int
		readErr   error
	)
	flush := func(cpu int32) {
		if len(pending[cpu]) == 0 {
			return
		}
		chans[int(cpu)%workers] <- streamBatch{cpu: cpu, evs: pending[cpu]}
		pending[cpu] = nil
	}
	for {
		if ctx.Err() != nil {
			join()
			return r.markCancelled(&prog), cancelErr(ctx)
		}
		n, err := d.Next(batch)
		evs := batch[:n]
		if left := eventCap - prog.events.Load(); uint64(len(evs)) > left {
			evs, truncated = evs[:left], true
		}
		prog.events.Add(uint64(len(evs)))
		for _, ev := range evs {
			if !any {
				firstTS, any = ev.TS, true
			}
			lastTS = ev.TS
			if !opts.inWindow(ev.TS) {
				continue
			}
			if ev.CPU < 0 || int(ev.CPU) >= ncpu {
				dropped++
				continue
			}
			switch classOf(ev.ID) {
			case clEntry:
				pending[ev.CPU] = append(pending[ev.CPU], entryCev(ev.TS, ev.ID, ev.Arg1))
				if len(pending[ev.CPU]) >= batchLen {
					flush(ev.CPU)
				}
			case clExit:
				pending[ev.CPU] = append(pending[ev.CPU], cev{ts: ev.TS, id: uint16(ev.ID), key: cevExit})
				ctl.exitCPU = append(ctl.exitCPU, ev.CPU)
				if len(pending[ev.CPU]) >= batchLen {
					flush(ev.CPU)
				}
			case clSwitch:
				ctl.switches++
				ctl.sched = append(ctl.sched, schedRec{
					kind: ctlSwitch, cpu: ev.CPU, ts: ev.TS,
					a1: ev.Arg1, a2: ev.Arg2, a3: ev.Arg3,
					exitsBefore: int32(len(ctl.exitCPU)),
				})
			case clMigrate:
				ctl.sched = append(ctl.sched, schedRec{
					kind: ctlMigrate, cpu: ev.CPU,
					a1: ev.Arg1, a2: ev.Arg2, a3: ev.Arg3,
					exitsBefore: int32(len(ctl.exitCPU)),
				})
			case clProcExit:
				ctl.sched = append(ctl.sched, schedRec{
					kind: ctlProcExit, a1: ev.Arg1,
					exitsBefore: int32(len(ctl.exitCPU)),
				})
			}
		}
		if truncated {
			break
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			readErr = err
			break
		}
	}
	for c := int32(0); c < int32(ncpu); c++ {
		flush(c)
	}
	join()
	if readErr != nil {
		return nil, readErr
	}
	r.Incomplete = truncated

	if any {
		r.Seconds = float64(lastTS-firstTS) / 1e9
	}
	if opts.ToNS > opts.FromNS && (opts.FromNS != 0 || opts.ToNS != 0) {
		r.Seconds = float64(opts.ToNS-opts.FromNS) / 1e9
	}
	appPIDs := opts.AppPIDs
	if appPIDs == nil {
		// A budget cap leaves undecoded events ahead of the process
		// table; skip them unparsed so classification still works.
		if err := d.Skip(); err != nil {
			return nil, err
		}
		procs, err := d.Procs()
		if err != nil {
			return nil, err
		}
		appPIDs = (&trace.Trace{Procs: procs}).AppPIDs()
	}

	r.Dropped += dropped
	r.prealloc(walkers, ctl.switches, opts.KeepDurations)
	windows, noiseIdx := r.replay(ctx, ctl, walkers, opts, appMatcher(appPIDs), shards)
	if ctx.Err() != nil {
		return r.markCancelled(&prog), cancelErr(ctx)
	}
	if err := r.finish(ctx, walkers, windows, noiseIdx, opts, shards); err != nil {
		return r.markCancelled(&prog), cancelErr(ctx)
	}
	r.EventsConsumed = prog.events.Load()
	return r, nil
}
