package noise_test

// Regression tests for the cancellation contract: cancelling any
// parallel analysis entry point returns a typed error plus a partial
// report, and leaks zero goroutines — across shard counts and no matter
// where in the run the context fires. Run under -race in CI.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"osnoise/internal/noise"
	"osnoise/internal/trace"
)

// checkNoLeak polls until the live goroutine count returns to the
// baseline captured before the cancelled runs. Workers exit at their
// next boundary check, so a short grace period is allowed; a leaked
// worker never exits and fails the test.
func checkNoLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancellation: %d live, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(time.Millisecond)
	}
}

// assertCancelled checks the typed-error and partial-result contract.
func assertCancelled(t *testing.T, entry string, r *noise.Report, err error) {
	t.Helper()
	if !errors.Is(err, noise.ErrCancelled) {
		t.Fatalf("%s: err %v does not wrap noise.ErrCancelled", entry, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("%s: err %v does not wrap context.Canceled", entry, err)
	}
	if r == nil {
		t.Fatalf("%s: cancelled run returned no partial report", entry)
	}
	if !r.Incomplete {
		t.Fatalf("%s: cancelled report not marked Incomplete", entry)
	}
}

// TestCancelledEntryPoints cancels every parallel entry point before it
// starts: each must return the typed error with a partial report and
// join all its workers.
func TestCancelledEntryPoints(t *testing.T) {
	tr := simTrace(3)
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	opts := noise.DefaultOptions()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	baseline := runtime.NumGoroutine()
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			r, err := noise.AnalyzeParallel(ctx, tr, opts, shards)
			assertCancelled(t, "AnalyzeParallel", r, err)

			d, derr := trace.NewDecoder(bytes.NewReader(raw))
			if derr != nil {
				t.Fatal(derr)
			}
			r, err = noise.AnalyzeStream(ctx, d, opts, shards)
			assertCancelled(t, "AnalyzeStream", r, err)

			r, err = noise.AnalyzeRaw(ctx, bytes.NewReader(raw), int64(len(raw)), opts, shards)
			assertCancelled(t, "AnalyzeRaw", r, err)
		})
	}
	checkNoLeak(t, baseline)
}

// TestCancelMidRun fires the context at varying points during the run.
// The race between the cancel and completion is inherent, so both
// outcomes are legal — but each must honour its side of the contract: a
// clean result, or a typed error with a partial report. Either way no
// goroutine may outlive the call.
func TestCancelMidRun(t *testing.T) {
	tr := simTrace(4)
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	opts := noise.DefaultOptions()
	want := noise.Analyze(tr, opts)

	type entry struct {
		name string
		run  func(ctx context.Context, shards int) (*noise.Report, error)
	}
	entries := []entry{
		{"AnalyzeParallel", func(ctx context.Context, shards int) (*noise.Report, error) {
			return noise.AnalyzeParallel(ctx, tr, opts, shards)
		}},
		{"AnalyzeStream", func(ctx context.Context, shards int) (*noise.Report, error) {
			d, err := trace.NewDecoder(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			return noise.AnalyzeStream(ctx, d, opts, shards)
		}},
		{"AnalyzeRaw", func(ctx context.Context, shards int) (*noise.Report, error) {
			return noise.AnalyzeRaw(ctx, bytes.NewReader(raw), int64(len(raw)), opts, shards)
		}},
	}

	baseline := runtime.NumGoroutine()
	for _, e := range entries {
		for _, shards := range []int{1, 3, 8} {
			for _, delay := range []time.Duration{0, 50 * time.Microsecond, 500 * time.Microsecond} {
				t.Run(fmt.Sprintf("%s/shards%d/delay%v", e.name, shards, delay), func(t *testing.T) {
					ctx, cancel := context.WithCancel(context.Background())
					timer := time.AfterFunc(delay, cancel)
					r, err := e.run(ctx, shards)
					timer.Stop()
					cancel()
					if err != nil {
						assertCancelled(t, e.name, r, err)
						return
					}
					// The run beat the cancel: the result must be the full,
					// bit-identical report.
					if r.Incomplete {
						t.Fatal("completed run marked Incomplete")
					}
					compareReports(t, want, r)
				})
			}
		}
	}
	checkNoLeak(t, baseline)
}

// TestCancelledTimeout exercises the deadline flavour: the error must
// satisfy errors.Is against both the package sentinel and
// context.DeadlineExceeded, which is what the CLI exit-code mapping
// keys on.
func TestCancelledTimeout(t *testing.T) {
	tr := simTrace(3)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	r, err := noise.AnalyzeParallel(ctx, tr, noise.DefaultOptions(), 4)
	if !errors.Is(err, noise.ErrCancelled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want ErrCancelled wrapping DeadlineExceeded", err)
	}
	if r == nil || !r.Incomplete {
		t.Fatalf("partial-report contract violated: %+v", r)
	}
}
