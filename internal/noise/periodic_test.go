package noise

import (
	"testing"

	"osnoise/internal/sim"
	"osnoise/internal/trace"
)

// A synthetic strictly periodic source must be detected at its period.
func TestDetectPeriodsSynthetic(t *testing.T) {
	evs := []trace.Event{appRunning(0, 0, 42)}
	const period = 10_000_000 // 10 ms
	for i := int64(0); i < 200; i++ {
		at := i * period
		evs = append(evs,
			trace.Event{TS: at, CPU: 0, ID: trace.EvIRQEntry, Arg1: trace.IRQTimer},
			trace.Event{TS: at + 2000, CPU: 0, ID: trace.EvIRQExit, Arg1: trace.IRQTimer})
	}
	r := Analyze(mk(1, evs...), DefaultOptions())
	cands := DetectPeriods(r, 0, 1_000_000, 50_000_000, 3)
	if len(cands) == 0 {
		t.Fatal("no periods detected")
	}
	best := cands[0]
	if best.PeriodNS < 9_000_000 || best.PeriodNS > 11_000_000 {
		t.Fatalf("detected period %d ns, want ~10 ms (all: %+v)", best.PeriodNS, cands)
	}
	if best.Score < 0.5 {
		t.Fatalf("weak score %.3f for a strictly periodic source", best.Score)
	}
}

// Noise with no structure must not produce high-score periods.
func TestDetectPeriodsAperiodic(t *testing.T) {
	evs := []trace.Event{appRunning(0, 0, 42)}
	rng := sim.NewRNG(3)
	at := int64(0)
	for i := 0; i < 300; i++ {
		at += 1_000_000 + rng.Int63n(20_000_000)
		evs = append(evs,
			trace.Event{TS: at, CPU: 0, ID: trace.EvTrapEntry, Arg1: trace.TrapPageFault},
			trace.Event{TS: at + 1500, CPU: 0, ID: trace.EvTrapExit, Arg1: trace.TrapPageFault})
	}
	r := Analyze(mk(1, evs...), DefaultOptions())
	cands := DetectPeriods(r, 0, 1_000_000, 60_000_000, 3)
	for _, c := range cands {
		if c.Score > 0.4 {
			t.Fatalf("aperiodic noise scored %.3f at period %d", c.Score, c.PeriodNS)
		}
	}
}

func TestDetectPeriodsDegenerate(t *testing.T) {
	r := &Report{CPUs: 1}
	if got := DetectPeriods(r, 0, 1_000_000, 50_000_000, 3); got != nil {
		t.Fatalf("empty report produced %v", got)
	}
	if got := DetectPeriods(r, 0, 0, 50_000_000, 3); got != nil {
		t.Fatal("zero bin accepted")
	}
}

func TestPerTaskNoise(t *testing.T) {
	tr := mk(2,
		appRunning(0, 0, 42),
		appRunning(0, 1, 43),
		trace.Event{TS: 1000, CPU: 0, ID: trace.EvIRQEntry, Arg1: trace.IRQTimer},
		trace.Event{TS: 2000, CPU: 0, ID: trace.EvIRQExit, Arg1: trace.IRQTimer},
		trace.Event{TS: 1000, CPU: 1, ID: trace.EvTrapEntry, Arg1: trace.TrapPageFault},
		trace.Event{TS: 4000, CPU: 1, ID: trace.EvTrapExit, Arg1: trace.TrapPageFault},
	)
	r := Analyze(tr, DefaultOptions())
	per := r.PerTaskNoise()
	if per[42] != 1000 || per[43] != 3000 {
		t.Fatalf("per-task noise %v", per)
	}
}

// With an embedded process table, the analyzer identifies application
// victims without out-of-band pid knowledge: a daemon switched out
// runnable must NOT be treated as a preempted application.
func TestAnalyzeUsesProcessTable(t *testing.T) {
	const app, daemon = 42, 7
	tr := mk(1,
		appRunning(0, 0, app),
		// Daemon preempted by the app coming back: if the daemon were
		// misclassified as an app, this would open a preemption window.
		trace.Event{TS: 1000, CPU: 0, ID: trace.EvSchedSwitch, Arg1: app, Arg2: daemon, Arg3: trace.TaskStateBlocked},
		trace.Event{TS: 5000, CPU: 0, ID: trace.EvSchedSwitch, Arg1: daemon, Arg2: app, Arg3: trace.TaskStateRunning},
		trace.Event{TS: 90000, CPU: 0, ID: trace.EvSchedSwitch, Arg1: app, Arg2: daemon, Arg3: trace.TaskStateBlocked},
	)
	tr.Procs = []trace.ProcInfo{
		{PID: app, Name: "rank", Kind: trace.ProcApp},
		{PID: daemon, Name: "rpciod", Kind: trace.ProcKernelDaemon},
	}
	r := Analyze(tr, DefaultOptions()) // AppPIDs nil → derived from table
	if got := r.Stats(KeyPreemption).Summary.Count; got != 0 {
		t.Fatalf("daemon wait counted as %d app preemptions", got)
	}
	// Without the table, every pid is an app and the daemon's runnable
	// wait at 5000..90000 becomes a (bogus) preemption.
	tr.Procs = nil
	r2 := Analyze(tr, DefaultOptions())
	if got := r2.Stats(KeyPreemption).Summary.Count; got == 0 {
		t.Fatal("expected the table-less analysis to misclassify")
	}
}
