package noise

import (
	"math"
	"strings"
	"testing"

	"osnoise/internal/trace"
)

// mk builds a one-CPU trace from events.
func mk(cpus int, evs ...trace.Event) *trace.Trace {
	return &trace.Trace{CPUs: cpus, Events: evs}
}

// appRunning returns the boot switch that puts pid on cpu.
func appRunning(ts int64, cpu int32, pid int64) trace.Event {
	return trace.Event{TS: ts, CPU: cpu, ID: trace.EvSchedSwitch,
		Arg1: 0, Arg2: pid, Arg3: trace.TaskStateBlocked}
}

func TestSimpleIRQSpan(t *testing.T) {
	tr := mk(1,
		appRunning(0, 0, 42),
		trace.Event{TS: 100, CPU: 0, ID: trace.EvIRQEntry, Arg1: trace.IRQTimer},
		trace.Event{TS: 2278, CPU: 0, ID: trace.EvIRQExit, Arg1: trace.IRQTimer},
	)
	r := Analyze(tr, DefaultOptions())
	ks := r.Stats(KeyTimerIRQ)
	if ks.Summary.Count != 1 {
		t.Fatalf("count %d", ks.Summary.Count)
	}
	if ks.Summary.Max != 2178 {
		t.Fatalf("duration %d, want 2178", ks.Summary.Max)
	}
	if r.TotalNoiseNS != 2178 {
		t.Fatalf("total noise %d", r.TotalNoiseNS)
	}
	if r.Breakdown[CatPeriodic] != 2178 {
		t.Fatalf("periodic %d", r.Breakdown[CatPeriodic])
	}
}

// The paper's key nesting example: a timer interrupt inside a tasklet.
// The tasklet's own cost must exclude the interrupt's.
func TestNestedAttribution(t *testing.T) {
	tr := mk(1,
		appRunning(0, 0, 42),
		trace.Event{TS: 1000, CPU: 0, ID: trace.EvTaskletEntry, Arg1: trace.SoftIRQNetRx},
		trace.Event{TS: 2000, CPU: 0, ID: trace.EvIRQEntry, Arg1: trace.IRQTimer},
		trace.Event{TS: 2500, CPU: 0, ID: trace.EvIRQExit, Arg1: trace.IRQTimer},
		trace.Event{TS: 4000, CPU: 0, ID: trace.EvTaskletExit, Arg1: trace.SoftIRQNetRx},
	)
	r := Analyze(tr, DefaultOptions())
	rx := r.Stats(KeyNetRx)
	irq := r.Stats(KeyTimerIRQ)
	if irq.Summary.Max != 500 {
		t.Fatalf("irq own %d, want 500", irq.Summary.Max)
	}
	if rx.Summary.Max != 2500 { // 3000 wall - 500 nested
		t.Fatalf("tasklet own %d, want 2500", rx.Summary.Max)
	}
	if r.TotalNoiseNS != 3000 {
		t.Fatalf("total %d, want 3000 (union)", r.TotalNoiseNS)
	}
}

func TestNestingAblation(t *testing.T) {
	tr := mk(1,
		appRunning(0, 0, 42),
		trace.Event{TS: 1000, CPU: 0, ID: trace.EvTaskletEntry, Arg1: trace.SoftIRQNetRx},
		trace.Event{TS: 2000, CPU: 0, ID: trace.EvIRQEntry, Arg1: trace.IRQTimer},
		trace.Event{TS: 2500, CPU: 0, ID: trace.EvIRQExit, Arg1: trace.IRQTimer},
		trace.Event{TS: 4000, CPU: 0, ID: trace.EvTaskletExit, Arg1: trace.SoftIRQNetRx},
	)
	opts := DefaultOptions()
	opts.AttributeNesting = false
	r := Analyze(tr, opts)
	if rx := r.Stats(KeyNetRx); rx.Summary.Max != 3000 {
		t.Fatalf("without attribution tasklet own %d, want full wall 3000", rx.Summary.Max)
	}
	// Double counting: 3000 + 500 > union.
	if r.TotalNoiseNS != 3500 {
		t.Fatalf("ablated total %d, want 3500", r.TotalNoiseNS)
	}
}

// Kernel activity while no application is runnable is not noise.
func TestRunnableFilter(t *testing.T) {
	evs := []trace.Event{
		appRunning(0, 0, 42),
		// App blocks waiting for communication.
		{TS: 1000, CPU: 0, ID: trace.EvSchedSwitch, Arg1: 42, Arg2: 0, Arg3: trace.TaskStateWaitComm},
		// Timer tick while nothing runnable.
		{TS: 2000, CPU: 0, ID: trace.EvIRQEntry, Arg1: trace.IRQTimer},
		{TS: 4000, CPU: 0, ID: trace.EvIRQExit, Arg1: trace.IRQTimer},
		// App resumes; next tick is noise.
		{TS: 5000, CPU: 0, ID: trace.EvSchedSwitch, Arg1: 0, Arg2: 42, Arg3: trace.TaskStateBlocked},
		{TS: 6000, CPU: 0, ID: trace.EvIRQEntry, Arg1: trace.IRQTimer},
		{TS: 7000, CPU: 0, ID: trace.EvIRQExit, Arg1: trace.IRQTimer},
	}
	r := Analyze(mk(1, evs...), DefaultOptions())
	if r.TotalNoiseNS != 1000 {
		t.Fatalf("noise %d, want only the second tick (1000)", r.TotalNoiseNS)
	}
	// Both ticks still appear in the per-event statistics.
	if r.Stats(KeyTimerIRQ).Summary.Count != 2 {
		t.Fatalf("timer count %d", r.Stats(KeyTimerIRQ).Summary.Count)
	}

	opts := DefaultOptions()
	opts.RunnableFilter = false
	r2 := Analyze(mk(1, evs...), opts)
	if r2.TotalNoiseNS != 3000 {
		t.Fatalf("unfiltered noise %d, want 3000", r2.TotalNoiseNS)
	}
}

// Syscalls are requested services, not noise.
func TestSyscallIsService(t *testing.T) {
	tr := mk(1,
		appRunning(0, 0, 42),
		trace.Event{TS: 100, CPU: 0, ID: trace.EvSyscallEntry, Arg1: 0},
		trace.Event{TS: 1100, CPU: 0, ID: trace.EvSyscallExit, Arg1: 0},
	)
	r := Analyze(tr, DefaultOptions())
	if r.TotalNoiseNS != 0 {
		t.Fatalf("syscall counted as noise: %d", r.TotalNoiseNS)
	}
	if r.Stats(KeySyscall).Summary.Count != 1 {
		t.Fatal("syscall missing from stats")
	}
	if r.Breakdown[CatService] != 0 {
		t.Fatalf("service in breakdown: %d", r.Breakdown[CatService])
	}
}

// Preemption: app switched out runnable; daemon runs; app back in.
// The paper's FTQ example: sched 382, preemption 2215, sched 179.
func TestPreemptionWindow(t *testing.T) {
	const app, daemon = 42, 7
	opts := DefaultOptions()
	opts.AppPIDs = map[int64]bool{app: true}
	tr := mk(1,
		appRunning(0, 0, app),
		// schedule part 1
		trace.Event{TS: 10000, CPU: 0, ID: trace.EvSchedEntry, Arg1: 0},
		trace.Event{TS: 10382, CPU: 0, ID: trace.EvSchedExit, Arg1: 0},
		trace.Event{TS: 10382, CPU: 0, ID: trace.EvSchedSwitch, Arg1: app, Arg2: daemon, Arg3: trace.TaskStateRunning},
		// daemon runs 2215 ns (as user-mode daemon time)
		trace.Event{TS: 12597, CPU: 0, ID: trace.EvSchedEntry, Arg1: 0},
		trace.Event{TS: 12776, CPU: 0, ID: trace.EvSchedExit, Arg1: 0},
		trace.Event{TS: 12776, CPU: 0, ID: trace.EvSchedSwitch, Arg1: daemon, Arg2: app, Arg3: trace.TaskStateBlocked},
	)
	r := Analyze(tr, opts)
	pre := r.Stats(KeyPreemption)
	if pre.Summary.Count != 1 {
		t.Fatalf("preemptions %d, want 1", pre.Summary.Count)
	}
	// Window 10382→12776 = 2394, minus kernel spans inside (the second
	// schedule span 179) = 2215.
	if pre.Summary.Max != 2215 {
		t.Fatalf("preemption %d ns, want 2215", pre.Summary.Max)
	}
	if got := r.Stats(KeySchedule).Summary.Count; got != 2 {
		t.Fatalf("schedule spans %d, want 2", got)
	}
	// Culprit attribution.
	cul := r.PreemptionsByCulprit()
	if cul[daemon] != 2215 {
		t.Fatalf("culprit map %v", cul)
	}
	// Total noise: 382 + 179 + 2215.
	if r.TotalNoiseNS != 2776 {
		t.Fatalf("total noise %d, want 2776", r.TotalNoiseNS)
	}
}

// A voluntary block (I/O wait) must not open a preemption window.
func TestVoluntaryBlockNotPreemption(t *testing.T) {
	const app, daemon = 42, 7
	opts := DefaultOptions()
	opts.AppPIDs = map[int64]bool{app: true}
	tr := mk(1,
		appRunning(0, 0, app),
		trace.Event{TS: 1000, CPU: 0, ID: trace.EvSchedSwitch, Arg1: app, Arg2: daemon, Arg3: trace.TaskStateBlocked},
		trace.Event{TS: 90000, CPU: 0, ID: trace.EvSchedSwitch, Arg1: daemon, Arg2: app, Arg3: trace.TaskStateBlocked},
	)
	r := Analyze(tr, opts)
	if r.Stats(KeyPreemption).Summary.Count != 0 {
		t.Fatal("voluntary block produced a preemption span")
	}
}

// Preemption across a migration: the window follows the task.
func TestPreemptionAcrossMigration(t *testing.T) {
	const app, other = 42, 43
	opts := DefaultOptions()
	opts.AppPIDs = map[int64]bool{app: true, other: true}
	tr := mk(2,
		appRunning(0, 0, app),
		appRunning(0, 1, other),
		// other (an app!) preempts app on cpu0 at 1000 (IO wake pattern).
		trace.Event{TS: 1000, CPU: 0, ID: trace.EvSchedSwitch, Arg1: app, Arg2: other, Arg3: trace.TaskStateRunning},
		// app migrated to cpu1 (idle after other left).
		trace.Event{TS: 3000, CPU: 0, ID: trace.EvSchedMigrate, Arg1: app, Arg2: 0, Arg3: 1},
		// app resumes on cpu1 at 5000.
		trace.Event{TS: 5000, CPU: 1, ID: trace.EvSchedSwitch, Arg1: 0, Arg2: app, Arg3: trace.TaskStateBlocked},
	)
	r := Analyze(tr, opts)
	pre := r.Stats(KeyPreemption)
	if pre.Summary.Count != 1 {
		t.Fatalf("preemptions %d, want 1", pre.Summary.Count)
	}
	if pre.Summary.Max != 4000 {
		t.Fatalf("preemption %d, want 4000", pre.Summary.Max)
	}
}

func TestInterruptionGrouping(t *testing.T) {
	tr := mk(1,
		appRunning(0, 0, 42),
		// Tick: irq immediately followed by softirq = one interruption.
		trace.Event{TS: 1000, CPU: 0, ID: trace.EvIRQEntry, Arg1: trace.IRQTimer},
		trace.Event{TS: 3178, CPU: 0, ID: trace.EvIRQExit, Arg1: trace.IRQTimer},
		trace.Event{TS: 3178, CPU: 0, ID: trace.EvSoftIRQEntry, Arg1: trace.SoftIRQTimer},
		trace.Event{TS: 5020, CPU: 0, ID: trace.EvSoftIRQExit, Arg1: trace.SoftIRQTimer},
		// Far-away page fault = separate interruption.
		trace.Event{TS: 500000, CPU: 0, ID: trace.EvTrapEntry, Arg1: trace.TrapPageFault},
		trace.Event{TS: 502913, CPU: 0, ID: trace.EvTrapExit, Arg1: trace.TrapPageFault},
	)
	r := Analyze(tr, DefaultOptions())
	if len(r.Interruptions) != 2 {
		t.Fatalf("interruptions %d, want 2", len(r.Interruptions))
	}
	first := r.Interruptions[0]
	if len(first.Components) != 2 {
		t.Fatalf("first interruption has %d components", len(first.Components))
	}
	if first.Components[0].Key != KeyTimerIRQ || first.Components[1].Key != KeyTimerSoftIRQ {
		t.Fatalf("composition %v", first.Components)
	}
	if first.Total != 2178+1842 {
		t.Fatalf("first total %d", first.Total)
	}
	second := r.Interruptions[1]
	if second.Components[0].Key != KeyPageFault || second.Total != 2913 {
		t.Fatalf("second interruption %+v", second)
	}
}

// The paper's Fig. 10 disambiguation: a page fault of 2913 ns and a
// timer interruption (2648 + 254) of 2902 ns look identical to an
// external benchmark; the analysis separates them by composition.
func TestDisambiguation(t *testing.T) {
	tr := mk(1,
		appRunning(0, 0, 42),
		trace.Event{TS: 10000, CPU: 0, ID: trace.EvTrapEntry, Arg1: trace.TrapPageFault},
		trace.Event{TS: 12913, CPU: 0, ID: trace.EvTrapExit, Arg1: trace.TrapPageFault},
		trace.Event{TS: 500000, CPU: 0, ID: trace.EvIRQEntry, Arg1: trace.IRQTimer},
		trace.Event{TS: 502648, CPU: 0, ID: trace.EvIRQExit, Arg1: trace.IRQTimer},
		trace.Event{TS: 502648, CPU: 0, ID: trace.EvSoftIRQEntry, Arg1: trace.SoftIRQTimer},
		trace.Event{TS: 502902, CPU: 0, ID: trace.EvSoftIRQExit, Arg1: trace.SoftIRQTimer},
	)
	r := Analyze(tr, DefaultOptions())
	if len(r.Interruptions) != 2 {
		t.Fatalf("interruptions %d", len(r.Interruptions))
	}
	a, b := r.Interruptions[0], r.Interruptions[1]
	if a.Total != 2913 || b.Total != 2902 {
		t.Fatalf("totals %d/%d", a.Total, b.Total)
	}
	// Similar totals, different compositions.
	if len(a.Components) != 1 || a.Components[0].Key != KeyPageFault {
		t.Fatalf("first should be a lone page fault: %s", a.Describe())
	}
	if len(b.Components) != 2 || b.Components[0].Key != KeyTimerIRQ {
		t.Fatalf("second should be timer+softirq: %s", b.Describe())
	}
}

func TestDroppedUnmatched(t *testing.T) {
	tr := mk(1,
		appRunning(0, 0, 42),
		// Exit without entry (tracing started mid-span).
		trace.Event{TS: 100, CPU: 0, ID: trace.EvIRQExit, Arg1: trace.IRQTimer},
		// Entry without exit (tracing stopped mid-span).
		trace.Event{TS: 200, CPU: 0, ID: trace.EvTrapEntry, Arg1: trace.TrapPageFault},
	)
	r := Analyze(tr, DefaultOptions())
	if r.Dropped != 2 {
		t.Fatalf("dropped %d, want 2", r.Dropped)
	}
	if r.TotalNoiseNS != 0 {
		t.Fatalf("noise from dropped spans: %d", r.TotalNoiseNS)
	}
}

func TestMismatchedNestingRecovers(t *testing.T) {
	tr := mk(1,
		appRunning(0, 0, 42),
		trace.Event{TS: 100, CPU: 0, ID: trace.EvTrapEntry, Arg1: trace.TrapPageFault},
		trace.Event{TS: 300, CPU: 0, ID: trace.EvIRQExit, Arg1: trace.IRQTimer}, // wrong exit
		// Analysis must still process later well-formed spans.
		trace.Event{TS: 1000, CPU: 0, ID: trace.EvIRQEntry, Arg1: trace.IRQTimer},
		trace.Event{TS: 2000, CPU: 0, ID: trace.EvIRQExit, Arg1: trace.IRQTimer},
	)
	r := Analyze(tr, DefaultOptions())
	if r.Dropped == 0 {
		t.Fatal("corrupt nesting not counted")
	}
	if r.Stats(KeyTimerIRQ).Summary.Count != 1 {
		t.Fatalf("later span lost: %d", r.Stats(KeyTimerIRQ).Summary.Count)
	}
}

func TestReportHelpers(t *testing.T) {
	tr := mk(2,
		appRunning(0, 0, 42),
		trace.Event{TS: 1000, CPU: 0, ID: trace.EvIRQEntry, Arg1: trace.IRQTimer},
		trace.Event{TS: 2000, CPU: 0, ID: trace.EvIRQExit, Arg1: trace.IRQTimer},
		trace.Event{TS: 1_000_000_000, CPU: 0, ID: trace.EvAppQuantum, Arg1: 42},
	)
	r := Analyze(tr, DefaultOptions())
	if r.Seconds != 1.0 {
		t.Fatalf("seconds %v", r.Seconds)
	}
	if f := r.Stats(KeyTimerIRQ).Freq(r.Seconds, r.CPUs); f != 0.5 {
		t.Fatalf("freq %v, want 0.5 (1 event / 1 s / 2 cpus)", f)
	}
	if got := len(r.InterruptionsOnCPU(0)); got != 1 {
		t.Fatalf("on-cpu interruptions %d", got)
	}
	if got := len(r.InterruptionsOnCPU(1)); got != 0 {
		t.Fatalf("cpu1 interruptions %d", got)
	}
	if top := r.TopInterruptions(5); len(top) != 1 {
		t.Fatalf("top interruptions %d", len(top))
	}
	if s := r.BreakdownString(); s == "" {
		t.Fatal("empty breakdown")
	}
	if row := r.TableRow(KeyTimerIRQ); row == "" {
		t.Fatal("empty table row")
	}
}

func TestHistogramFromKeyStats(t *testing.T) {
	ks := &KeyStats{Key: KeyPageFault}
	for i := 0; i < 100; i++ {
		ks.Summary.Add(2500)
		ks.Durations = append(ks.Durations, 2500)
	}
	ks.Summary.Add(1_000_000)
	ks.Durations = append(ks.Durations, 1_000_000)
	h := ks.HistogramP99(50)
	if h.Total() != 101 {
		t.Fatalf("histogram total %d", h.Total())
	}
	if h.Hi > 100_000 {
		t.Fatalf("p99 cut not applied: hi=%d", h.Hi)
	}
	mode, _ := h.Mode()
	if mode < 2000 || mode > 3000 {
		t.Fatalf("mode %v", mode)
	}
}

func TestCategoryMapping(t *testing.T) {
	cases := map[Key]Category{
		KeyTimerIRQ:     CatPeriodic,
		KeyTimerSoftIRQ: CatPeriodic,
		KeyPageFault:    CatPageFault,
		KeySchedule:     CatScheduling,
		KeyRCU:          CatScheduling,
		KeyRebalance:    CatScheduling,
		KeyPreemption:   CatPreemption,
		KeyNetIRQ:       CatIO,
		KeyNetRx:        CatIO,
		KeyNetTx:        CatIO,
		KeySyscall:      CatService,
	}
	for k, want := range cases {
		if got := CategoryOf(k); got != want {
			t.Errorf("CategoryOf(%v) = %v, want %v", k, got, want)
		}
	}
	if CatService.IsNoise() {
		t.Error("service must not be noise")
	}
	if !CatPreemption.IsNoise() {
		t.Error("preemption must be noise")
	}
}

func TestBands(t *testing.T) {
	tr := mk(1,
		appRunning(0, 0, 42),
		// Short interruption: 2 µs fault.
		trace.Event{TS: 1000, CPU: 0, ID: trace.EvTrapEntry, Arg1: trace.TrapPageFault},
		trace.Event{TS: 3000, CPU: 0, ID: trace.EvTrapExit, Arg1: trace.TrapPageFault},
		// Long interruption: 200 µs fault.
		trace.Event{TS: 1_000_000, CPU: 0, ID: trace.EvTrapEntry, Arg1: trace.TrapPageFault},
		trace.Event{TS: 1_200_000, CPU: 0, ID: trace.EvTrapExit, Arg1: trace.TrapPageFault},
	)
	r := Analyze(tr, DefaultOptions())
	b := r.Bands(50_000)
	if b.ShortCount != 1 || b.LongCount != 1 {
		t.Fatalf("bands %+v", b)
	}
	if b.ShortNS != 2000 || b.LongNS != 200_000 {
		t.Fatalf("band totals %+v", b)
	}
	if b.ShortRate <= 0 || b.LongRate <= 0 {
		t.Fatalf("band rates %+v", b)
	}
}

func TestWindowedAnalysis(t *testing.T) {
	tr := mk(1,
		appRunning(0, 0, 42),
		trace.Event{TS: 1000, CPU: 0, ID: trace.EvIRQEntry, Arg1: trace.IRQTimer},
		trace.Event{TS: 2000, CPU: 0, ID: trace.EvIRQExit, Arg1: trace.IRQTimer},
		trace.Event{TS: 50_000, CPU: 0, ID: trace.EvIRQEntry, Arg1: trace.IRQTimer},
		trace.Event{TS: 52_000, CPU: 0, ID: trace.EvIRQExit, Arg1: trace.IRQTimer},
	)
	opts := DefaultOptions()
	opts.FromNS = 40_000
	opts.ToNS = 60_000
	r := Analyze(tr, opts)
	// Only the second interruption is inside the window; the boot
	// switch is outside, so the owner is unknown — the span is recorded
	// but, under the runnable filter, not noise.
	if got := r.Stats(KeyTimerIRQ).Summary.Count; got != 1 {
		t.Fatalf("windowed count %d, want 1", got)
	}
	if r.Seconds != 20e-6 {
		t.Fatalf("windowed seconds %v", r.Seconds)
	}
	// Without the filter the in-window span counts as noise.
	opts.RunnableFilter = false
	r2 := Analyze(tr, opts)
	if r2.TotalNoiseNS != 2000 {
		t.Fatalf("windowed noise %d, want 2000", r2.TotalNoiseNS)
	}
}

func TestPerCPUNoise(t *testing.T) {
	tr := mk(2,
		appRunning(0, 0, 42),
		appRunning(0, 1, 43),
		trace.Event{TS: 1000, CPU: 0, ID: trace.EvIRQEntry, Arg1: trace.IRQTimer},
		trace.Event{TS: 2000, CPU: 0, ID: trace.EvIRQExit, Arg1: trace.IRQTimer},
		trace.Event{TS: 1000, CPU: 1, ID: trace.EvTrapEntry, Arg1: trace.TrapPageFault},
		trace.Event{TS: 4000, CPU: 1, ID: trace.EvTrapExit, Arg1: trace.TrapPageFault},
	)
	r := Analyze(tr, DefaultOptions())
	per := r.PerCPUNoise()
	if len(per) != 2 || per[0] != 1000 || per[1] != 3000 {
		t.Fatalf("per-cpu noise %v", per)
	}
}

func TestCompositions(t *testing.T) {
	tr := mk(1,
		appRunning(0, 0, 42),
		// Two timer ticks (irq+softirq)...
		trace.Event{TS: 1000, CPU: 0, ID: trace.EvIRQEntry, Arg1: trace.IRQTimer},
		trace.Event{TS: 3000, CPU: 0, ID: trace.EvIRQExit, Arg1: trace.IRQTimer},
		trace.Event{TS: 3000, CPU: 0, ID: trace.EvSoftIRQEntry, Arg1: trace.SoftIRQTimer},
		trace.Event{TS: 4000, CPU: 0, ID: trace.EvSoftIRQExit, Arg1: trace.SoftIRQTimer},
		trace.Event{TS: 10_001_000, CPU: 0, ID: trace.EvIRQEntry, Arg1: trace.IRQTimer},
		trace.Event{TS: 10_003_000, CPU: 0, ID: trace.EvIRQExit, Arg1: trace.IRQTimer},
		trace.Event{TS: 10_003_000, CPU: 0, ID: trace.EvSoftIRQEntry, Arg1: trace.SoftIRQTimer},
		trace.Event{TS: 10_005_000, CPU: 0, ID: trace.EvSoftIRQExit, Arg1: trace.SoftIRQTimer},
		// ...and one lone page fault.
		trace.Event{TS: 20_000_000, CPU: 0, ID: trace.EvTrapEntry, Arg1: trace.TrapPageFault},
		trace.Event{TS: 20_002_500, CPU: 0, ID: trace.EvTrapExit, Arg1: trace.TrapPageFault},
	)
	r := Analyze(tr, DefaultOptions())
	comps := r.Compositions()
	if len(comps) != 2 {
		t.Fatalf("compositions = %d: %+v", len(comps), comps)
	}
	if comps[0].Signature != "timer_interrupt+run_timer_softirq" || comps[0].Count != 2 {
		t.Fatalf("top composition %+v", comps[0])
	}
	if comps[0].TotalNS != 3000+4000 {
		t.Fatalf("tick total %d", comps[0].TotalNS)
	}
	if comps[1].Signature != "page_fault" || comps[1].MaxNS != 2500 {
		t.Fatalf("fault composition %+v", comps[1])
	}
}

func TestDiff(t *testing.T) {
	a := &Report{CPUs: 1, Seconds: 1}
	b := &Report{CPUs: 1, Seconds: 1}
	for k := Key(0); k < NumKeys; k++ {
		a.PerKey[k] = &KeyStats{Key: k}
		b.PerKey[k] = &KeyStats{Key: k}
	}
	for i := 0; i < 10; i++ {
		a.Stats(KeyPageFault).Summary.Add(4000)
		b.Stats(KeyPageFault).Summary.Add(1000)
	}
	b.Stats(KeyTimerIRQ).Summary.Add(2000)
	deltas := Diff(a, b)
	if len(deltas) != 2 {
		t.Fatalf("deltas = %d", len(deltas))
	}
	// Page fault change (30µs) outranks the new timer (2µs).
	if deltas[0].Key != KeyPageFault {
		t.Fatalf("first delta %v", deltas[0].Key)
	}
	if deltas[0].TotalRatioBA != 0.25 {
		t.Fatalf("ratio %.3f, want 0.25", deltas[0].TotalRatioBA)
	}
	if !math.IsInf(deltas[1].TotalRatioBA, 1) {
		t.Fatalf("new-key ratio %v, want +Inf", deltas[1].TotalRatioBA)
	}
	if s := DiffString(a, b); !strings.Contains(s, "page_fault") {
		t.Fatalf("diff text:\n%s", s)
	}
}

func TestKeyOfSpanVariants(t *testing.T) {
	cases := []struct {
		id   trace.ID
		vec  int64
		want Key
	}{
		{trace.EvIRQEntry, trace.IRQTimer, KeyTimerIRQ},
		{trace.EvIRQEntry, trace.IRQNet, KeyNetIRQ},
		{trace.EvIRQEntry, 9, KeyOtherIRQ},
		{trace.EvSoftIRQEntry, trace.SoftIRQTimer, KeyTimerSoftIRQ},
		{trace.EvSoftIRQEntry, trace.SoftIRQRCU, KeyRCU},
		{trace.EvSoftIRQEntry, trace.SoftIRQSched, KeyRebalance},
		{trace.EvTaskletEntry, trace.SoftIRQNetRx, KeyNetRx},
		{trace.EvTaskletEntry, trace.SoftIRQNetTx, KeyNetTx},
		{trace.EvSoftIRQEntry, 99, KeyOther},
		{trace.EvTrapEntry, trace.TrapPageFault, KeyPageFault},
		{trace.EvTrapEntry, trace.TrapTLBMiss, KeyTLBMiss},
		{trace.EvTrapEntry, 7, KeyOtherTrap},
		{trace.EvSyscallEntry, 0, KeySyscall},
		{trace.EvSchedEntry, 0, KeySchedule},
		{trace.EvSchedWakeup, 0, KeyOther},
	}
	for _, c := range cases {
		if got := keyOfSpan(c.id, c.vec); got != c.want {
			t.Errorf("keyOfSpan(%v, %d) = %v, want %v", c.id, c.vec, got, c.want)
		}
	}
	if Key(-1).String() != "key?" || Category(-1).String() != "category?" {
		t.Error("out-of-range names wrong")
	}
}

func TestInterruptionDescribe(t *testing.T) {
	in := Interruption{Total: 2902, Components: []Component{
		{Key: KeyTimerIRQ, Own: 2648},
		{Key: KeyTimerSoftIRQ, Own: 254},
	}}
	want := "timer_interrupt (2648ns) + run_timer_softirq (254ns) = 2902ns"
	if got := in.Describe(); got != want {
		t.Fatalf("Describe = %q", got)
	}
}
