package noise

// Property tests for the interruption-key sort: sortInterruptionKeys
// (near-sorted fast path + total-order fallback) must reproduce, from
// keys laid down in record order, exactly the sequence a stable sort
// under the interruption comparator produces — the tie-handling
// contract the sequential interruptionsForCPU provides via
// sort.SliceStable. The oracle here IS sort.SliceStable with keyCmp.

import (
	"math/rand"
	"sort"
	"testing"
)

// oracleSort is the reference order: stable sort of the record-order
// keys under the bare (non-total) interruption comparator.
func oracleSort(keys []ispanKey) []ispanKey {
	out := append([]ispanKey(nil), keys...)
	sort.SliceStable(out, func(i, j int) bool { return keyCmp(out[i], out[j]) < 0 })
	return out
}

// checkAgainstOracle runs sortInterruptionKeys on a copy of keys and
// fails the test on the first divergence from the stable-sort oracle.
func checkAgainstOracle(t *testing.T, keys []ispanKey) {
	t.Helper()
	want := oracleSort(keys)
	got := append([]ispanKey(nil), keys...)
	sortInterruptionKeys(got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("divergence at %d: want %+v, got %+v (input len %d)", i, want[i], got[i], len(keys))
		}
	}
}

// randomKeys draws n keys from a small value domain so duplicate
// (start,end) pairs — the tie cases — are common, with idx ascending
// exactly as the replay sink writes them.
func randomKeys(rng *rand.Rand, n, domain int) []ispanKey {
	keys := make([]ispanKey, n)
	for i := range keys {
		start := int64(rng.Intn(domain))
		keys[i] = ispanKey{
			start: start,
			end:   start + int64(rng.Intn(domain/4+1)),
			own:   int64(i) * 10,
			key:   Key(i % int(NumKeys)),
			idx:   int32(i),
		}
	}
	return keys
}

func TestSortInterruptionKeysMatchesStableOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(300)
		// Tight domains force many exact ties; wide ones exercise the
		// distinct-key fast path.
		domain := []int{4, 16, 1 << 20}[trial%3]
		checkAgainstOracle(t, randomKeys(rng, n, domain))
	}
}

// TestSortInterruptionKeysNearSorted drives the shape the replay
// actually produces: ascending starts except where a parent span closes
// after its children, so a few elements are out of place.
func TestSortInterruptionKeysNearSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 200 + rng.Intn(200)
		keys := make([]ispanKey, n)
		ts := int64(0)
		for i := range keys {
			ts += int64(rng.Intn(50))
			keys[i] = ispanKey{start: ts, end: ts + int64(rng.Intn(100)), idx: int32(i)}
		}
		// Displace a handful of parents: give them an earlier start than
		// their predecessors, mimicking a parent emitted after its
		// children.
		for d := 0; d < 5; d++ {
			i := 1 + rng.Intn(n-1)
			keys[i].start = keys[i-1].start - int64(rng.Intn(30))
			keys[i].end = keys[i].start + int64(rng.Intn(200))
		}
		checkAgainstOracle(t, keys)
	}
}

// TestKeyCmpTotalIsTotalOrder pins the property the fallback relies on:
// keyCmpTotal admits no ties between distinct elements, so sorting ANY
// permutation yields one unique sequence — the stable order, because
// its tie-break (idx) is the record order.
func TestKeyCmpTotalIsTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	keys := randomKeys(rng, 150, 8) // heavy ties on (start,end)
	want := oracleSort(keys)
	for trial := 0; trial < 50; trial++ {
		perm := append([]ispanKey(nil), keys...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		sortInterruptionKeys(perm)
		for i := range want {
			if perm[i] != want[i] {
				t.Fatalf("trial %d: permuted input diverged at %d: want %+v, got %+v",
					trial, i, want[i], perm[i])
			}
		}
	}
	for i := range keys {
		for j := range keys {
			c := keyCmpTotal(keys[i], keys[j])
			if i == j && c != 0 {
				t.Fatalf("key %d not equal to itself", i)
			}
			if i != j && c == 0 {
				t.Fatalf("distinct keys %d and %d compare equal under keyCmpTotal", i, j)
			}
			if c != -keyCmpTotal(keys[j], keys[i]) {
				t.Fatalf("keyCmpTotal not antisymmetric on %d,%d", i, j)
			}
		}
	}
}
