// Epoch-split replay: the sequential phase of the parallel pipeline,
// decomposed by time-epoch.
//
// The control-stream replay is inherently order-sensitive — preemption
// windows follow tasks across CPUs and the floating-point accumulators
// are fed in global order — which is why it ran as one sequential pass.
// This file splits that pass into E epochs cut at exit positions: a
// cheap sequential pre-pass runs only the state machine (no recording)
// to snapshot the scheduler state at every cut, then the epochs replay
// concurrently from their snapshots into epoch-local span buffers, and
// a final merge feeds the buffered spans through Report.record in
// exactly the sequential order.
//
// The stitching invariant: an epoch's entry snapshot carries the whole
// cross-epoch state — per-CPU owner/current, the open preemption
// windows (deep-copied, since replay mutates window.kernelWall in
// place), lastRunner, and the per-CPU exit/span cursors that pair exits
// with walker spans. Given identical entry state, an epoch emits
// exactly the spans the sequential replay would have emitted over the
// same range, so concatenating the epochs' spans reproduces the
// sequential emission order — and replaying that order through
// Report.record reproduces the order-sensitive per-key Welford moments
// bit for bit. TestEpochsMatchSequential locks this across shard and
// epoch counts.

package noise

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"osnoise/internal/trace"
)

// replayState is the cross-CPU scheduler state the control-stream
// replay threads through the trace: everything an epoch needs to resume
// where the previous epoch stopped.
type replayState struct {
	cpus       []cpuState
	windows    map[int64]*window
	lastRunner []int64
	nextSpan   []int // per CPU, next walker span to pair with an exit
	exitSeen   []int // per CPU, exits consumed so far
}

// newReplayState returns the boot state: no owners, no open windows.
func newReplayState(ncpu int) *replayState {
	return &replayState{
		cpus:       make([]cpuState, ncpu),
		windows:    make(map[int64]*window),
		lastRunner: make([]int64, ncpu),
		nextSpan:   make([]int, ncpu),
		exitSeen:   make([]int, ncpu),
	}
}

// clone deep-copies the state so a concurrent epoch cannot observe
// another epoch's mutations — window structs in particular are mutated
// in place (kernelWall) during replay.
func (st *replayState) clone() *replayState {
	c := &replayState{
		cpus:       make([]cpuState, len(st.cpus)),
		windows:    make(map[int64]*window, len(st.windows)),
		lastRunner: make([]int64, len(st.lastRunner)),
		nextSpan:   make([]int, len(st.nextSpan)),
		exitSeen:   make([]int, len(st.exitSeen)),
	}
	copy(c.cpus, st.cpus)
	copy(c.lastRunner, st.lastRunner)
	copy(c.nextSpan, st.nextSpan)
	copy(c.exitSeen, st.exitSeen)
	for pid, w := range st.windows {
		cw := *w
		c.windows[pid] = &cw
	}
	return c
}

// replaySink consumes the spans the replay emits, in emission order.
// The three implementations give the one state machine its three uses:
// recording directly into the Report (single-epoch path), buffering
// into an epoch-local accumulator (concurrent epochs), and discarding
// (the boundary pre-pass). The generic instantiation of replayCore
// dispatches emit statically.
type replaySink interface {
	emit(s Span)
}

// reportSink records spans straight into the Report and builds the
// per-CPU interruption index the interruption builder consumes: one
// compact ispanKey per noise span, written in record order (the order
// the tie-breaking comparator keyCmpTotal reproduces).
type reportSink struct {
	r        *Report
	keep     bool
	noiseIdx [][]ispanKey
}

// emit accumulates one span and indexes it when it is noise.
func (k *reportSink) emit(s Span) {
	k.r.record(s, k.keep)
	if s.Noise {
		k.noiseIdx[s.CPU] = append(k.noiseIdx[s.CPU], ispanKey{
			start: s.Start, end: s.Start + s.Wall, own: s.Own,
			key: s.Key, idx: int32(len(k.r.Spans) - 1),
		})
	}
}

// nullSink discards spans; the pre-pass wants only the state effects.
type nullSink struct{}

// emit discards the span.
func (nullSink) emit(Span) {}

// epochSink buffers one epoch's spans for the sequential merge.
type epochSink struct {
	spans []Span
}

// emit buffers one span.
func (k *epochSink) emit(s Span) { k.spans = append(k.spans, s) }

// replayCore advances the scheduler/owner/preemption-window state
// machine over the control stream's sched records [s0,s1) and exit
// positions [p0,p1), interleaved in global stream order, emitting every
// finished span — reconstructed spans as their exits come up,
// preemption spans at the switch that closes their window — into sink.
// It mutates st in place and returns false if ctx was cancelled
// mid-walk (the state is then positioned wherever the walk stopped).
//
// This is the one replay implementation: the sequential path runs it
// once over the whole stream, the epoch pre-pass runs it with a null
// sink, and the concurrent epochs each run it over their slice.
func replayCore[S replaySink](ctx context.Context, ctl *ctlStream, walkers []cpuWalker, opts *Options, isApp func(int64) bool, st *replayState, sink S, s0, s1, p0, p1 int) bool {
	ncpu := len(walkers)
	cpus := st.cpus
	windows := st.windows

	doExit := func(cpu int32) {
		ord := st.exitSeen[cpu]
		st.exitSeen[cpu]++
		spans := walkers[cpu].spans
		j := st.nextSpan[cpu]
		if j >= len(spans) || int(spans[j].closeOrd) != ord {
			return // this exit matched no span (walker dropped it)
		}
		st.nextSpan[cpu]++
		rec := spans[j]
		cs := &cpus[cpu]
		key := Key(rec.key)
		cat := CategoryOf(key)
		isNoise := cat.IsNoise()
		if opts.RunnableFilter && cs.owner == 0 {
			isNoise = false
		}
		sink.emit(Span{
			Key: key, CPU: cpu, Start: rec.start,
			Wall: rec.wall, Own: rec.own, PID: cs.owner, Noise: isNoise,
		})
		// Top-level kernel time inside a preemption window is charged to
		// its own key; subtract it from the window so the wait is not
		// double counted.
		if rec.topLevel && cs.owner != 0 && cs.current != cs.owner {
			if w := windows[cs.owner]; w != nil && w.cpu == cpu {
				w.kernelWall += rec.wall
			}
		}
	}

	pos := p0
	for i := s0; i < s1; i++ {
		sr := &ctl.sched[i]
		if i&4095 == 0 && ctx.Err() != nil {
			return false
		}
		hi := int(sr.exitsBefore)
		if hi > p1 {
			hi = p1 // never binds: epoch cuts keep exitsBefore within range
		}
		for pos < hi {
			if pos&(cancelStride-1) == 0 && ctx.Err() != nil {
				return false
			}
			doExit(ctl.exitCPU[pos])
			pos++
		}
		switch sr.kind {
		case ctlSwitch:
			cs := &cpus[sr.cpu]
			prev, next, prevState := sr.a1, sr.a2, sr.a3
			if prev != 0 && isApp(prev) {
				if prevState == trace.TaskStateRunning {
					// Preempted while runnable: open a window.
					windows[prev] = &window{start: sr.ts, cpu: sr.cpu}
					if cs.owner == 0 {
						cs.owner = prev
					}
				} else {
					// Voluntary block: no victim remains.
					delete(windows, prev)
					if cs.owner == prev {
						cs.owner = 0
					}
				}
			}
			if next != 0 && isApp(next) {
				if w := windows[next]; w != nil {
					preempt := (sr.ts - w.start) - w.kernelWall
					if preempt > 0 {
						culprit := st.lastRunner[w.cpu]
						if culprit == next {
							culprit = 0
						}
						sink.emit(Span{
							Key: KeyPreemption, CPU: w.cpu, Start: w.start,
							Wall: preempt, Own: preempt, PID: next,
							Culprit: culprit, Noise: true,
						})
					}
					delete(windows, next)
				}
				cs.owner = next
			}
			cs.current = next
			if next != 0 {
				st.lastRunner[sr.cpu] = next
			}

		case ctlMigrate:
			pid, from, to := sr.a1, sr.a2, sr.a3
			if w := windows[pid]; w != nil {
				w.cpu = int32(to)
			}
			if int(from) < ncpu && cpus[from].owner == pid {
				cpus[from].owner = 0
			}
			if int(to) < ncpu && cpus[to].owner == 0 && isApp(pid) {
				cpus[to].owner = pid
			}

		case ctlProcExit:
			delete(windows, sr.a1)
		}
	}
	for pos < p1 {
		if pos&(cancelStride-1) == 0 && ctx.Err() != nil {
			return false
		}
		doExit(ctl.exitCPU[pos])
		pos++
	}
	return true
}

// replay applies the scheduler/owner/preemption-window state machine
// over the control stream and records every span in exactly the
// sequential analyzer's order. With opts.Epochs ≤ 1 it is one
// sequential pass; otherwise the stream is cut into epochs replayed
// concurrently on up to `workers` goroutines and merged (see the file
// comment for the stitching invariant). Either way it returns the
// preemption windows still open at the end of the trace (dropped, like
// unclosed spans) and, per CPU, the interruption index of the noise
// spans (see ispanKey), written in record order.
//
// The replay checks ctx every cancelStride exits and every few thousand
// scheduler records; on cancellation it returns the state it has (the
// caller detects ctx.Err() and marks the report).
func (r *Report) replay(ctx context.Context, ctl ctlStream, walkers []cpuWalker, opts Options, isApp func(int64) bool, workers int) (map[int64]*window, [][]ispanKey) {
	ncpu := len(walkers)
	noiseIdx := make([][]ispanKey, ncpu)
	for c := range noiseIdx {
		if n := len(walkers[c].spans); n > 0 {
			noiseIdx[c] = make([]ispanKey, 0, n)
		}
	}
	epochs := opts.Epochs
	if epochs <= 0 {
		// Auto: one epoch per core actually available to run one, capped
		// by the shard count. On a single-core runtime the split cannot
		// win (the pre-pass and merge are pure overhead), so auto picks
		// the sequential path there.
		epochs = workers
		if g := runtime.GOMAXPROCS(0); epochs > g {
			epochs = g
		}
	}
	if epochs > len(ctl.exitCPU) {
		epochs = len(ctl.exitCPU) // every epoch keeps at least one exit
	}
	if epochs <= 1 {
		// Degenerate single-epoch path: one sequential pass recording
		// straight into the report — exactly the pre-epoch replay.
		st := newReplayState(ncpu)
		sink := &reportSink{r: r, keep: opts.KeepDurations, noiseIdx: noiseIdx}
		replayCore(ctx, &ctl, walkers, &opts, isApp, st, sink, 0, len(ctl.sched), 0, len(ctl.exitCPU))
		return st.windows, sink.noiseIdx
	}
	return r.replayEpochs(ctx, ctl, walkers, opts, isApp, noiseIdx, epochs, workers)
}

// replayEpochs is the epoch-split replay: boundary pre-pass, concurrent
// per-epoch replay, sequential merge. epochs is ≥ 2 and ≤ the exit
// count.
func (r *Report) replayEpochs(ctx context.Context, ctl ctlStream, walkers []cpuWalker, opts Options, isApp func(int64) bool, noiseIdx [][]ispanKey, epochs, workers int) (map[int64]*window, [][]ispanKey) {
	ncpu := len(walkers)
	nExit := len(ctl.exitCPU)

	// Cut the stream at exit positions; each epoch's sched range follows
	// by binary search (exitsBefore is monotone in stream order). A sched
	// record sitting exactly on a cut — exitsBefore == cutP[e] — belongs
	// to epoch e, which processes it before its first exit, exactly where
	// the sequential pass would.
	cutP := make([]int, epochs+1)
	cutS := make([]int, epochs+1)
	for e := 0; e <= epochs; e++ {
		cutP[e] = e * nExit / epochs
	}
	cutS[epochs] = len(ctl.sched)
	for e := 1; e < epochs; e++ {
		p := cutP[e]
		cutS[e] = sort.Search(len(ctl.sched), func(i int) bool {
			return int(ctl.sched[i].exitsBefore) >= p
		})
	}

	// Pre-pass: one sequential null-sink walk over epochs 0..E-2
	// snapshots the scheduler state at every cut. Only the state machine
	// runs — no recording, no accumulator work.
	states := make([]*replayState, epochs)
	states[0] = newReplayState(ncpu)
	pre := states[0].clone()
	for e := 0; e < epochs-1; e++ {
		if !replayCore(ctx, &ctl, walkers, &opts, isApp, pre, nullSink{}, cutS[e], cutS[e+1], cutP[e], cutP[e+1]) {
			return pre.windows, noiseIdx
		}
		states[e+1] = pre.clone()
	}

	// Concurrent epoch replay into epoch-local span buffers.
	total := 0
	for i := range walkers {
		total += len(walkers[i].spans)
	}
	perEpoch := (total+ctl.switches)/epochs + 16
	sinks := make([]epochSink, epochs)
	if workers > epochs {
		workers = epochs
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				e := int(next.Add(1)) - 1
				if e >= epochs {
					return
				}
				sinks[e].spans = make([]Span, 0, perEpoch)
				replayCore(ctx, &ctl, walkers, &opts, isApp, states[e], &sinks[e], cutS[e], cutS[e+1], cutP[e], cutP[e+1])
			}
		}()
	}
	wg.Wait()
	final := states[epochs-1].windows
	if ctx.Err() != nil {
		return final, noiseIdx
	}

	// Merge: epoch order is stream order, so feeding the buffered spans
	// through record epoch by epoch reproduces the sequential emission
	// order — and with it the order-sensitive floating-point moments.
	for e := range sinks {
		for _, s := range sinks[e].spans {
			r.record(s, opts.KeepDurations)
			if s.Noise {
				noiseIdx[s.CPU] = append(noiseIdx[s.CPU], ispanKey{
					start: s.Start, end: s.Start + s.Wall, own: s.Own,
					key: s.Key, idx: int32(len(r.Spans) - 1),
				})
			}
		}
	}
	return final, noiseIdx
}
