package cluster

import (
	"context"
	"testing"

	"osnoise/internal/noise"
	"osnoise/internal/sim"
	"osnoise/internal/workload"
)

// testModel is a synthetic noise model: 100 interruptions/s of 50 µs.
func testModel() NoiseModel {
	return NoiseModel{RatePerSec: 100, Durations: []int64{50_000}}
}

// mustRun runs the simulation and fails the test on error.
func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	r, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

func TestRunBasics(t *testing.T) {
	r := mustRun(t, Config{
		Nodes: 16, RanksPerNode: 8,
		Granularity: sim.Millisecond, Iterations: 200,
		Seed: 1, Model: testModel(),
	})
	if r.IdealNS != int64(200*sim.Millisecond) {
		t.Fatalf("ideal %d", r.IdealNS)
	}
	if r.ActualNS <= r.IdealNS {
		t.Fatal("noise did not slow the application")
	}
	if r.Slowdown() <= 1 || r.Efficiency() >= 1 {
		t.Fatalf("slowdown %.3f efficiency %.3f", r.Slowdown(), r.Efficiency())
	}
	// Single-rank noise share should be ~ rate × duration = 0.5 %.
	if s := r.NoiseShareSingleRank; s < 0.002 || s > 0.012 {
		t.Fatalf("single-rank noise share %.4f, want ~0.005", s)
	}
}

// The headline phenomenon: slowdown grows with scale even though the
// per-rank noise share is constant.
func TestSlowdownGrowsWithScale(t *testing.T) {
	base := Config{
		RanksPerNode: 8, Granularity: sim.Millisecond,
		Iterations: 300, Seed: 2,
		Model: NoiseModel{RatePerSec: 20, Durations: []int64{20_000, 50_000, 400_000, 2_000_000}},
	}
	curve, err := ScalingCurve(context.Background(), base, []int{1, 8, 64, 512})
	if err != nil {
		t.Fatalf("ScalingCurve: %v", err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Slowdown < curve[i-1].Slowdown {
			t.Fatalf("slowdown not monotone: %+v", curve)
		}
	}
	if curve[len(curve)-1].Slowdown < 1.05*curve[0].Slowdown {
		t.Fatalf("no amplification at scale: %+v", curve)
	}
}

// Determinism must be independent of worker count (the partition of
// ranks across goroutines).
func TestWorkerCountInvariance(t *testing.T) {
	mk := func(workers int) *Result {
		return mustRun(t, Config{
			Nodes: 32, RanksPerNode: 4,
			Granularity: 500 * sim.Microsecond, Iterations: 100,
			Seed: 3, Model: testModel(), Workers: workers,
		})
	}
	a, b, c := mk(1), mk(4), mk(13)
	if a.ActualNS != b.ActualNS || b.ActualNS != c.ActualNS {
		t.Fatalf("worker count changed the result: %d / %d / %d",
			a.ActualNS, b.ActualNS, c.ActualNS)
	}
}

func TestFromReport(t *testing.T) {
	run := workload.New(workload.LAMMPS(), workload.Options{Duration: 2 * sim.Second, Seed: 4})
	tr := run.Execute()
	rep := noise.Analyze(tr, run.AnalysisOptions())
	m := FromReport(rep)
	if m.RatePerSec <= 0 || len(m.Durations) == 0 {
		t.Fatalf("empty model from report: %+v", m.RatePerSec)
	}
	// Category filter keeps only preemption-bearing interruptions.
	mp := FromReport(rep, noise.CatPreemption)
	if len(mp.Durations) == 0 || len(mp.Durations) >= len(m.Durations) {
		t.Fatalf("category filter wrong: %d vs %d", len(mp.Durations), len(m.Durations))
	}
}

// Mitigation: stripping preemption noise (the idle-core trick of
// Petrini et al.) must improve runtime at scale for a
// preemption-dominated workload.
func TestMitigationImproves(t *testing.T) {
	run := workload.New(workload.LAMMPS(), workload.Options{Duration: 3 * sim.Second, Seed: 5})
	tr := run.Execute()
	rep := noise.Analyze(tr, run.AnalysisOptions())
	full := FromReport(rep)
	// Without preemption and I/O noise (moved to the spare core).
	reduced := FromReportExcluding(rep, noise.CatPreemption, noise.CatIO)
	base := Config{
		Nodes: 256, RanksPerNode: 8,
		Granularity: sim.Millisecond, Iterations: 200, Seed: 6,
	}
	cfgFull := base
	cfgFull.Model = full
	cfgRed := base
	cfgRed.Model = reduced
	rf, rr := mustRun(t, cfgFull), mustRun(t, cfgRed)
	improvement := float64(rf.ActualNS) / float64(rr.ActualNS)
	if improvement <= 1.05 {
		t.Fatalf("mitigation improvement %.3f, want > 1.05 (full %.3f, reduced %.3f)",
			improvement, rf.Slowdown(), rr.Slowdown())
	}
}

func TestExpectedMaxFactorGrows(t *testing.T) {
	m := NoiseModel{RatePerSec: 50, Durations: []int64{10_000, 100_000, 1_000_000}}
	f := ExpectedMaxFactor(m, sim.Millisecond, 8, 4096, 7, 100)
	if f <= 1 {
		t.Fatalf("expected-max factor %.3f, want > 1", f)
	}
}

func TestRunErrorsWithoutRanks(t *testing.T) {
	r, err := Run(context.Background(), Config{Granularity: sim.Millisecond, Iterations: 1, Model: testModel()})
	if err == nil {
		t.Fatalf("no error for zero ranks (got %+v)", r)
	}
}

func TestZeroNoiseModel(t *testing.T) {
	r := mustRun(t, Config{
		Nodes: 4, RanksPerNode: 2,
		Granularity: sim.Millisecond, Iterations: 50,
		Seed: 8, Model: NoiseModel{},
	})
	if r.ActualNS != r.IdealNS {
		t.Fatalf("noise-free run slowed down: %d vs %d", r.ActualNS, r.IdealNS)
	}
	if r.Slowdown() != 1 {
		t.Fatalf("slowdown %.3f", r.Slowdown())
	}
}

// Co-scheduled (synchronized) noise removes the order-statistic
// amplification: the slowdown at scale collapses to the single-rank
// noise share (Terry et al., paper ref [25]).
func TestSynchronizedNoiseRemovesAmplification(t *testing.T) {
	base := Config{
		Nodes: 512, RanksPerNode: 8,
		Granularity: sim.Millisecond, Iterations: 200, Seed: 10,
		Model: NoiseModel{RatePerSec: 50, Durations: []int64{20_000, 200_000}},
	}
	unsync := mustRun(t, base)
	syncCfg := base
	syncCfg.Synchronized = true
	synced := mustRun(t, syncCfg)
	if synced.Slowdown() >= unsync.Slowdown() {
		t.Fatalf("synchronization did not help: %.3f vs %.3f",
			synced.Slowdown(), unsync.Slowdown())
	}
	// Synchronized slowdown ≈ 1 + single-rank noise share.
	want := 1 + synced.NoiseShareSingleRank
	if got := synced.Slowdown(); got > want*1.05 {
		t.Fatalf("synchronized slowdown %.4f, want ≈ %.4f", got, want)
	}
}
