// Package fault provides deterministic fault injection for the cluster
// simulation: rank crashes, stragglers, and hangs, scheduled entirely
// on virtual time from a sim.RNG seed. A Plan is data, not behaviour —
// cluster.Run interprets it — so the same seed always produces the same
// schedule and, with the same Config, a bit-identical Result,
// regardless of worker count or wall-clock conditions.
//
// The fault classes mirror what long-running HPC collectives actually
// survive: a crash is fail-stop (the rank can restart from a
// checkpoint), a straggler is a multiplicative compute slowdown (the
// Petrini-style noise resonance in its grossest form), and a hang is a
// rank that stops responding without dying — detectable only by a
// collective timeout.
package fault

import (
	"fmt"
	"sort"

	"osnoise/internal/sim"
)

// Kind enumerates the injected fault classes.
type Kind uint8

const (
	// Crash is a fail-stop rank failure at the start of an iteration.
	// With checkpointing enabled the rank restarts from the last
	// checkpoint and replays forward; otherwise it is excluded after
	// the collective's timeout window.
	Crash Kind = iota
	// Straggler multiplies a rank's compute time by Fault.Factor for
	// Fault.Iters consecutive iterations (a thermal throttle, a
	// misplaced daemon, a failing disk behind a swap path).
	Straggler
	// Hang stalls a rank indefinitely: it neither computes nor
	// responds, so the collective waits its full exponential-backoff
	// timeout window and then excludes the rank for good.
	Hang
)

// String names the fault kind for logs and experiment output.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Straggler:
		return "straggler"
	case Hang:
		return "hang"
	}
	return fmt.Sprintf("fault.Kind(%d)", uint8(k))
}

// Fault is one scheduled fault: a kind landing on a rank at the start
// of an iteration.
type Fault struct {
	// Kind is the fault class.
	Kind Kind
	// Rank is the victim rank (0-based, global).
	Rank int
	// Iteration is the 0-based BSP iteration the fault strikes at.
	Iteration int
	// Factor is the straggler's compute-time multiplier (> 1);
	// unused for other kinds.
	Factor float64
	// Iters is the straggler's duration in iterations; unused for
	// other kinds.
	Iters int
}

// Plan is a complete, deterministic fault schedule for one cluster run,
// sorted by iteration then rank.
type Plan struct {
	// Ranks is the rank count the plan was drawn for.
	Ranks int
	// Iterations is the iteration count the plan was drawn for.
	Iterations int
	// Faults is the schedule, sorted by (Iteration, Rank, Kind).
	Faults []Fault
}

// Len returns the number of scheduled faults (0 for a nil plan).
func (p *Plan) Len() int {
	if p == nil {
		return 0
	}
	return len(p.Faults)
}

// At returns the faults striking at the given iteration, in rank order
// (a subslice of the sorted schedule; empty for a nil plan).
func (p *Plan) At(it int) []Fault {
	if p == nil {
		return nil
	}
	lo := sort.Search(len(p.Faults), func(i int) bool { return p.Faults[i].Iteration >= it })
	hi := sort.Search(len(p.Faults), func(i int) bool { return p.Faults[i].Iteration > it })
	return p.Faults[lo:hi]
}

// Counts tallies the schedule per kind.
func (p *Plan) Counts() (crashes, stragglers, hangs int) {
	if p == nil {
		return 0, 0, 0
	}
	for _, f := range p.Faults {
		switch f.Kind {
		case Crash:
			crashes++
		case Straggler:
			stragglers++
		case Hang:
			hangs++
		}
	}
	return crashes, stragglers, hangs
}

// Validate checks the plan against a run's shape: every fault must name
// a valid rank and iteration, stragglers need a factor above 1, and the
// schedule must be sorted (At depends on it).
func (p *Plan) Validate(ranks, iterations int) error {
	if p == nil {
		return nil
	}
	for i, f := range p.Faults {
		if f.Rank < 0 || f.Rank >= ranks {
			return fmt.Errorf("fault %d: rank %d out of range [0,%d)", i, f.Rank, ranks)
		}
		if f.Iteration < 0 || f.Iteration >= iterations {
			return fmt.Errorf("fault %d: iteration %d out of range [0,%d)", i, f.Iteration, iterations)
		}
		if f.Kind == Straggler && (f.Factor <= 1 || f.Iters <= 0) {
			return fmt.Errorf("fault %d: straggler needs factor > 1 and iters > 0, got %g × %d", i, f.Factor, f.Iters)
		}
		if i > 0 {
			prev := p.Faults[i-1]
			if f.Iteration < prev.Iteration || (f.Iteration == prev.Iteration && f.Rank < prev.Rank) {
				return fmt.Errorf("fault %d: schedule not sorted by (iteration, rank)", i)
			}
		}
	}
	return nil
}

// Rates parameterises Schedule: independent per-rank-per-iteration
// hazard probabilities for each fault kind, plus the straggler shape.
// The zero value schedules nothing.
type Rates struct {
	// CrashPerRankIter is the probability a live rank crashes at the
	// start of any one iteration.
	CrashPerRankIter float64
	// StragglerPerRankIter is the probability a rank begins a
	// straggler episode at any one iteration.
	StragglerPerRankIter float64
	// HangPerRankIter is the probability a rank hangs at any one
	// iteration.
	HangPerRankIter float64
	// StragglerFactor is the compute-time multiplier of scheduled
	// stragglers (default 4).
	StragglerFactor float64
	// StragglerIters is the episode length of scheduled stragglers in
	// iterations (default 5).
	StragglerIters int
}

// Schedule draws a fault plan from a seed: iteration-major, rank-minor,
// one independent uniform draw per hazard per (iteration, rank) cell,
// so the schedule is a pure function of (seed, ranks, iterations,
// rates). At most one fault lands per cell — crash beats hang beats
// straggler when several hazards fire together.
func Schedule(seed uint64, ranks, iterations int, r Rates) *Plan {
	factor := r.StragglerFactor
	if factor <= 1 {
		factor = 4
	}
	iters := r.StragglerIters
	if iters <= 0 {
		iters = 5
	}
	rng := sim.NewRNG(seed)
	p := &Plan{Ranks: ranks, Iterations: iterations}
	for it := 0; it < iterations; it++ {
		for rank := 0; rank < ranks; rank++ {
			// Always burn all three draws so one hazard's rate never
			// perturbs another's stream.
			crash := rng.Float64() < r.CrashPerRankIter
			hang := rng.Float64() < r.HangPerRankIter
			straggle := rng.Float64() < r.StragglerPerRankIter
			switch {
			case crash:
				p.Faults = append(p.Faults, Fault{Kind: Crash, Rank: rank, Iteration: it})
			case hang:
				p.Faults = append(p.Faults, Fault{Kind: Hang, Rank: rank, Iteration: it})
			case straggle:
				p.Faults = append(p.Faults, Fault{
					Kind: Straggler, Rank: rank, Iteration: it,
					Factor: factor, Iters: iters,
				})
			}
		}
	}
	return p
}
