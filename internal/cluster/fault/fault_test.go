package fault

import (
	"reflect"
	"testing"
)

func TestScheduleDeterministic(t *testing.T) {
	r := Rates{CrashPerRankIter: 1e-3, StragglerPerRankIter: 2e-3, HangPerRankIter: 5e-4}
	a := Schedule(42, 64, 500, r)
	b := Schedule(42, 64, 500, r)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if a.Len() == 0 {
		t.Fatal("schedule empty; rates too low for the test")
	}
	c := Schedule(43, 64, 500, r)
	if reflect.DeepEqual(a.Faults, c.Faults) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestScheduleIsSortedAndValid(t *testing.T) {
	p := Schedule(7, 32, 300, Rates{CrashPerRankIter: 5e-3, StragglerPerRankIter: 5e-3, HangPerRankIter: 5e-3})
	if err := p.Validate(32, 300); err != nil {
		t.Fatalf("schedule fails its own validation: %v", err)
	}
	cr, st, hg := p.Counts()
	if cr+st+hg != p.Len() {
		t.Fatalf("counts %d+%d+%d != len %d", cr, st, hg, p.Len())
	}
	if cr == 0 || st == 0 || hg == 0 {
		t.Fatalf("expected all kinds at these rates: %d/%d/%d", cr, st, hg)
	}
}

func TestAtReturnsIterationSlice(t *testing.T) {
	p := &Plan{Ranks: 4, Iterations: 10, Faults: []Fault{
		{Kind: Crash, Rank: 0, Iteration: 2},
		{Kind: Hang, Rank: 1, Iteration: 2},
		{Kind: Crash, Rank: 3, Iteration: 7},
	}}
	if got := p.At(2); len(got) != 2 || got[0].Rank != 0 || got[1].Rank != 1 {
		t.Fatalf("At(2) = %+v", got)
	}
	if got := p.At(7); len(got) != 1 || got[0].Rank != 3 {
		t.Fatalf("At(7) = %+v", got)
	}
	if got := p.At(5); len(got) != 0 {
		t.Fatalf("At(5) = %+v, want empty", got)
	}
	var nilPlan *Plan
	if nilPlan.At(0) != nil || nilPlan.Len() != 0 {
		t.Fatal("nil plan not inert")
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	cases := []Plan{
		{Faults: []Fault{{Kind: Crash, Rank: -1, Iteration: 0}}},
		{Faults: []Fault{{Kind: Crash, Rank: 0, Iteration: 99}}},
		{Faults: []Fault{{Kind: Straggler, Rank: 0, Iteration: 0, Factor: 0.5, Iters: 5}}},
		{Faults: []Fault{{Kind: Straggler, Rank: 0, Iteration: 0, Factor: 4, Iters: 0}}},
		{Faults: []Fault{
			{Kind: Crash, Rank: 0, Iteration: 5},
			{Kind: Crash, Rank: 0, Iteration: 2},
		}},
	}
	for i, p := range cases {
		if err := p.Validate(4, 10); err == nil {
			t.Errorf("case %d: bad plan accepted", i)
		}
	}
	if err := (*Plan)(nil).Validate(4, 10); err != nil {
		t.Errorf("nil plan rejected: %v", err)
	}
}

func TestKindString(t *testing.T) {
	if Crash.String() != "crash" || Straggler.String() != "straggler" || Hang.String() != "hang" {
		t.Fatal("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind empty")
	}
}
