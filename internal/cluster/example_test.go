package cluster_test

import (
	"context"
	"fmt"

	"osnoise/internal/cluster"
	"osnoise/internal/sim"
)

// ExampleRun scales a synthetic noise model — a thousand 50 µs
// interruptions per second, i.e. 5 % of each rank's time — up to a
// small bulk-synchronous cluster. The slowdown exceeds the single-rank
// noise share because every iteration waits for the slowest rank.
func ExampleRun() {
	res, err := cluster.Run(context.Background(), cluster.Config{
		Nodes:        4,
		RanksPerNode: 2,
		Granularity:  sim.Millisecond,
		Iterations:   200,
		Seed:         1,
		Model:        cluster.NoiseModel{RatePerSec: 1000, Durations: []int64{50_000}},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res)
	// Output:
	// 4 nodes × 2 ranks, 1ms granularity: slowdown 1.129 (single-rank noise 5.044%)
}
