// Package cluster scales the single-node noise measurements up to a
// cluster: a bulk-synchronous (allreduce-style) application where every
// rank computes for a fixed granularity and then synchronises, so one
// delayed rank delays everyone. This is the phenomenon that motivates
// the paper (Petrini et al.'s missing supercomputer performance): noise
// that costs well under 1 % on one node inflates dramatically at scale
// because each iteration runs at the *maximum* per-rank delay.
//
// The per-rank noise model is sampled from a single-node analysis
// (noise.Report) — interruption rate and duration distribution — so the
// cluster experiment consumes exactly what LTTNG-NOISE measures. Rank
// simulation is embarrassingly parallel and runs on all cores.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"osnoise/internal/cluster/fault"
	"osnoise/internal/noise"
	"osnoise/internal/sim"
)

// ErrCancelled is the sentinel wrapped by Run when its context is
// cancelled or times out mid-simulation. The returned error also wraps
// the context's own error, so callers may test either
// errors.Is(err, cluster.ErrCancelled) or errors.Is(err,
// context.DeadlineExceeded).
var ErrCancelled = errors.New("cluster: run cancelled")

// cancelErr builds the typed cancellation error for a done context.
func cancelErr(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCancelled, ctx.Err())
}

// NoiseModel samples the aggregate noise a rank suffers during one
// compute window.
type NoiseModel struct {
	// RatePerSec is the interruption arrival rate per rank.
	RatePerSec float64
	// Durations is the empirical interruption-duration population
	// (nanoseconds), sampled uniformly.
	Durations []int64
}

// FromReport builds the noise model from a single-node analysis: the
// interruption rate per CPU and the empirical interruption totals. If
// categories is non-empty, only interruptions containing at least one
// component of those categories are kept (used by the mitigation
// experiment to strip daemon preemption noise).
func FromReport(r *noise.Report, categories ...noise.Category) NoiseModel {
	keep := map[noise.Category]bool{}
	for _, c := range categories {
		keep[c] = true
	}
	var durations []int64
	for _, in := range r.Interruptions {
		if len(keep) > 0 {
			found := false
			for _, comp := range in.Components {
				if keep[noise.CategoryOf(comp.Key)] {
					found = true
					break
				}
			}
			if !found {
				continue
			}
		}
		durations = append(durations, in.Total)
	}
	rate := 0.0
	if r.Seconds > 0 && r.CPUs > 0 {
		rate = float64(len(durations)) / r.Seconds / float64(r.CPUs)
	}
	return NoiseModel{RatePerSec: rate, Durations: durations}
}

// FromReportExcluding builds the model from interruptions that contain
// NO component of the given categories — e.g. excluding CatPreemption
// and CatIO models the paper-cited mitigation of dedicating a spare
// core to daemons and interrupt handling.
func FromReportExcluding(r *noise.Report, excluded ...noise.Category) NoiseModel {
	drop := map[noise.Category]bool{}
	for _, c := range excluded {
		drop[c] = true
	}
	var durations []int64
	for _, in := range r.Interruptions {
		bad := false
		for _, comp := range in.Components {
			if drop[noise.CategoryOf(comp.Key)] {
				bad = true
				break
			}
		}
		if !bad {
			durations = append(durations, in.Total)
		}
	}
	rate := 0.0
	if r.Seconds > 0 && r.CPUs > 0 {
		rate = float64(len(durations)) / r.Seconds / float64(r.CPUs)
	}
	return NoiseModel{RatePerSec: rate, Durations: durations}
}

// Sample returns the total noise suffered in one compute window of
// length c: a Poisson number of interruptions, each with an empirical
// duration.
func (m *NoiseModel) Sample(rng *sim.RNG, c sim.Duration) int64 {
	if m.RatePerSec <= 0 || len(m.Durations) == 0 {
		return 0
	}
	mean := m.RatePerSec * float64(c) / 1e9
	// Poisson count via exponential gaps (mean is small; cap defensively).
	var count int
	acc := rng.ExpFloat64()
	for acc < mean && count < 10000 {
		count++
		acc += rng.ExpFloat64()
	}
	var total int64
	for i := 0; i < count; i++ {
		total += m.Durations[rng.Intn(len(m.Durations))]
	}
	return total
}

// Config describes a cluster run.
type Config struct {
	Nodes        int // node count in the simulated cluster
	RanksPerNode int // application ranks per node
	// Granularity is each iteration's per-rank compute time. Fine
	// granularity (sub-ms) resonates with high-frequency noise.
	Granularity sim.Duration
	Iterations  int        // BSP iterations to simulate
	Seed        uint64     // seed for the per-rank noise draws
	Model       NoiseModel // per-rank noise model sampled each iteration
	// Workers bounds simulation parallelism (default NumCPU).
	Workers int
	// Synchronized models gang-scheduled / co-scheduled noise (Terry,
	// Shan and Huttunen, paper ref [25]): periodic system activity is
	// aligned across all ranks, so every rank pays the noise at the
	// same moment and the per-iteration maximum equals the per-rank
	// noise instead of the order statistic over all ranks.
	Synchronized bool
	// Faults is an optional deterministic fault schedule (see
	// cluster/fault). Nil or empty runs the exact fault-free
	// simulation; a non-empty plan engages the recovery semantics in
	// Recovery and fills Result.Resilience.
	Faults *fault.Plan
	// Recovery tunes the fault-recovery model; the zero value uses the
	// documented defaults (and no checkpointing). Ignored when Faults
	// is empty.
	Recovery RecoveryConfig
}

// RecoveryConfig is the virtual-time fault-recovery model of a faulted
// cluster run: collective timeouts with exponential backoff, rank
// exclusion (shrinking the communicator), and periodic
// checkpoint/restart.
type RecoveryConfig struct {
	// Timeout is the collective's base wait for an unresponsive rank;
	// zero defaults to 10× Config.Granularity. Retries double it each
	// time, so a rank is excluded after Timeout·(2^(MaxRetries+1)−1)
	// of virtual waiting.
	Timeout sim.Duration
	// MaxRetries is the number of timeout doublings before the
	// collective gives up on a rank (zero defaults to 3).
	MaxRetries int
	// CheckpointInterval is the number of iterations between barrier
	// checkpoints; zero disables checkpointing (crashed ranks are then
	// always excluded).
	CheckpointInterval int
	// CheckpointCost is the virtual time one checkpoint barrier adds
	// to the run.
	CheckpointCost sim.Duration
	// RestartCost is the virtual time a crashed rank spends restarting
	// before it replays forward from the last checkpoint.
	RestartCost sim.Duration
}

// backoffWindow returns the total virtual time a collective waits for
// an unresponsive rank before excluding it: Timeout + 2·Timeout + … —
// MaxRetries+1 attempts of exponential backoff.
func (rc RecoveryConfig) backoffWindow(granularity sim.Duration) int64 {
	t := int64(rc.Timeout)
	if t <= 0 {
		t = 10 * int64(granularity)
	}
	retries := rc.MaxRetries
	if retries <= 0 {
		retries = 3
	}
	var window int64
	for i := 0; i <= retries; i++ {
		window += t << i
	}
	return window
}

// ResilienceStats summarises fault injection and recovery during one
// run; the zero value means the run was fault-free. All durations are
// virtual time.
type ResilienceStats struct {
	// FaultsInjected counts scheduled faults that actually struck a
	// live rank (faults on already-excluded ranks are skipped).
	FaultsInjected int
	// Crashes counts injected fail-stop faults.
	Crashes int
	// Stragglers counts injected straggler episodes.
	Stragglers int
	// Hangs counts injected hangs.
	Hangs int
	// Recovered counts crashes that rejoined via checkpoint/restart
	// within the collective's timeout window.
	Recovered int
	// ExcludedRanks lists the ranks permanently removed from the
	// communicator, in exclusion order.
	ExcludedRanks []int
	// DegradedIterations counts iterations run with a shrunken
	// communicator (at least one rank excluded).
	DegradedIterations int
	// CheckpointNS is the virtual time spent in checkpoint barriers.
	CheckpointNS int64
	// RecoveryNS is the virtual time collectives spent waiting for
	// crashed ranks to restart and replay.
	RecoveryNS int64
	// TimeoutNS is the virtual time collectives spent in backoff
	// windows that ended in rank exclusion.
	TimeoutNS int64
}

// Result summarises a cluster run.
type Result struct {
	Config Config // the configuration that produced this result
	// IdealNS is the noise-free runtime (Granularity × Iterations).
	IdealNS int64
	// ActualNS is the runtime with per-iteration max-of-ranks noise.
	ActualNS int64
	// NoiseShareSingleRank is the mean per-rank noise fraction, i.e.
	// what a single-node measurement would report.
	NoiseShareSingleRank float64
	// MaxIterDelayNS is the largest single-iteration delay.
	MaxIterDelayNS int64
	// Resilience summarises fault injection and recovery; the zero
	// value means the run was fault-free.
	Resilience ResilienceStats
}

// Slowdown returns ActualNS / IdealNS.
func (r *Result) Slowdown() float64 {
	if r.IdealNS == 0 {
		return 0
	}
	return float64(r.ActualNS) / float64(r.IdealNS)
}

// Efficiency returns IdealNS / ActualNS.
func (r *Result) Efficiency() float64 {
	if r.ActualNS == 0 {
		return 0
	}
	return float64(r.IdealNS) / float64(r.ActualNS)
}

// String renders the result as a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%d nodes × %d ranks, %v granularity: slowdown %.3f (single-rank noise %.3f%%)",
		r.Config.Nodes, r.Config.RanksPerNode, r.Config.Granularity,
		r.Slowdown(), 100*r.NoiseShareSingleRank)
}

// Run simulates the bulk-synchronous application. Ranks are partitioned
// across workers; each worker produces the per-iteration maximum delay
// over its ranks, and the partial maxima are folded. Deterministic for
// a given (Config.Seed, rank count, iteration count) regardless of
// worker count, and — with a fault plan — bit-identical across repeated
// runs of the same Config.
//
// Cancellation is cooperative: Run checks ctx at rank and iteration
// boundaries, joins every worker goroutine before returning, and on
// cancellation returns a nil Result and an error wrapping both
// ErrCancelled and ctx.Err(). Per-worker errors are collected and
// joined with errors.Join, never dropped.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 1
	}
	ranks := cfg.Nodes * cfg.RanksPerNode
	if ranks <= 0 {
		return nil, errors.New("cluster: no ranks")
	}
	if err := cfg.Faults.Validate(ranks, cfg.Iterations); err != nil {
		return nil, fmt.Errorf("cluster: invalid fault plan: %w", err)
	}
	res := &Result{
		Config:  cfg,
		IdealNS: int64(cfg.Granularity) * int64(cfg.Iterations),
	}
	workers := cfg.Workers
	if workers > ranks {
		workers = ranks
	}
	if cfg.Faults.Len() == 0 {
		return runFaultFree(ctx, cfg, res, ranks, workers)
	}
	return runFaulted(ctx, cfg, res, ranks, workers)
}

// runFaultFree is the original noise-amplification simulation: no fault
// plan, so no per-rank delay matrix is materialised — each worker folds
// its ranks' delays into per-iteration partial maxima on the fly.
func runFaultFree(ctx context.Context, cfg Config, res *Result, ranks, workers int) (*Result, error) {
	partialMax := make([][]int64, workers)
	partialSum := make([]int64, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			maxes := make([]int64, cfg.Iterations)
			var sum int64
			for rank := w; rank < ranks; rank += workers {
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				// Per-rank deterministic stream independent of worker
				// partitioning. Synchronized noise gives every rank the
				// SAME stream: all ranks are interrupted together.
				streamID := uint64(rank + 1)
				if cfg.Synchronized {
					streamID = 1
				}
				rng := sim.NewRNG(cfg.Seed ^ (0x9e3779b97f4a7c15 * streamID))
				for it := 0; it < cfg.Iterations; it++ {
					d := cfg.Model.Sample(rng, cfg.Granularity)
					sum += d
					if d > maxes[it] {
						maxes[it] = d
					}
				}
			}
			partialMax[w] = maxes
			partialSum[w] = sum
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		if ctx.Err() != nil {
			return nil, cancelErr(ctx)
		}
		return nil, err
	}

	var total, rankNoise int64
	var maxDelay int64
	for it := 0; it < cfg.Iterations; it++ {
		var m int64
		for w := 0; w < workers; w++ {
			if partialMax[w][it] > m {
				m = partialMax[w][it]
			}
		}
		total += int64(cfg.Granularity) + m
		if m > maxDelay {
			maxDelay = m
		}
	}
	for _, s := range partialSum {
		rankNoise += s
	}
	res.ActualNS = total
	res.MaxIterDelayNS = maxDelay
	if res.IdealNS > 0 && ranks > 0 {
		res.NoiseShareSingleRank = float64(rankNoise) / float64(ranks) / float64(res.IdealNS)
	}
	return res, nil
}

// sampleDelays pre-draws the full per-rank, per-iteration noise matrix
// in parallel. The per-rank streams are identical to runFaultFree's, so
// a faulted Config with an empty plan would see the exact same draws.
func sampleDelays(ctx context.Context, cfg Config, ranks, workers int) ([][]int64, int64, error) {
	delays := make([][]int64, ranks)
	sums := make([]int64, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sum int64
			for rank := w; rank < ranks; rank += workers {
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				streamID := uint64(rank + 1)
				if cfg.Synchronized {
					streamID = 1
				}
				rng := sim.NewRNG(cfg.Seed ^ (0x9e3779b97f4a7c15 * streamID))
				d := make([]int64, cfg.Iterations)
				for it := 0; it < cfg.Iterations; it++ {
					d[it] = cfg.Model.Sample(rng, cfg.Granularity)
					sum += d[it]
				}
				delays[rank] = d
			}
			sums[w] = sum
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		if ctx.Err() != nil {
			return nil, 0, cancelErr(ctx)
		}
		return nil, 0, err
	}
	var rankNoise int64
	for _, s := range sums {
		rankNoise += s
	}
	return delays, rankNoise, nil
}

// runFaulted replays the BSP loop against a fault plan: noise delays are
// pre-sampled in parallel (phase 1, identical streams to the fault-free
// path), then the iterations are walked sequentially (phase 2) applying
// faults, collective timeouts with exponential backoff, rank exclusion,
// and checkpoint/restart — all in virtual time, bit-identical per seed.
func runFaulted(ctx context.Context, cfg Config, res *Result, ranks, workers int) (*Result, error) {
	delays, rankNoise, err := sampleDelays(ctx, cfg, ranks, workers)
	if err != nil {
		return nil, err
	}

	granNS := int64(cfg.Granularity)
	window := cfg.Recovery.backoffWindow(cfg.Granularity)
	rs := &res.Resilience
	alive := make([]bool, ranks)
	for i := range alive {
		alive[i] = true
	}
	liveCount := ranks
	stragglerUntil := make([]int, ranks) // exclusive end of episode
	stragglerFactor := make([]float64, ranks)
	recovering := make([]bool, ranks) // rank replaying a checkpoint this iteration
	var recoveringNow []int
	lastCheckpoint := 0 // iteration 0 starts from pristine state

	var total, maxDelay int64
	for it := 0; it < cfg.Iterations; it++ {
		if it&63 == 0 && ctx.Err() != nil {
			return nil, cancelErr(ctx)
		}
		if c := cfg.Recovery.CheckpointInterval; c > 0 && it > 0 && it%c == 0 {
			// Checkpoint barrier: everyone pays the cost in lockstep.
			total += int64(cfg.Recovery.CheckpointCost)
			rs.CheckpointNS += int64(cfg.Recovery.CheckpointCost)
			lastCheckpoint = it
		}

		// Virtual time the collective spends waiting on faulted ranks
		// this iteration (restarts and exclusion timeouts overlap the
		// surviving ranks' compute; the iteration takes the max).
		var iterWait int64
		for _, f := range cfg.Faults.At(it) {
			if !alive[f.Rank] {
				continue // fault on an already-excluded rank: moot
			}
			rs.FaultsInjected++
			switch f.Kind {
			case fault.Straggler:
				rs.Stragglers++
				stragglerFactor[f.Rank] = f.Factor
				stragglerUntil[f.Rank] = it + f.Iters
			case fault.Hang:
				// A hung rank never responds: the collective burns its
				// whole backoff window, then shrinks the communicator.
				rs.Hangs++
				alive[f.Rank] = false
				liveCount--
				rs.ExcludedRanks = append(rs.ExcludedRanks, f.Rank)
				rs.TimeoutNS += window
				if window > iterWait {
					iterWait = window
				}
			case fault.Crash:
				rs.Crashes++
				if cfg.Recovery.CheckpointInterval > 0 {
					// Restart from the last checkpoint and replay
					// forward, including this iteration's compute.
					recovery := int64(cfg.Recovery.RestartCost) +
						int64(it-lastCheckpoint)*granNS +
						granNS + delays[f.Rank][it]
					if recovery <= window {
						rs.Recovered++
						rs.RecoveryNS += recovery
						recovering[f.Rank] = true
						recoveringNow = append(recoveringNow, f.Rank)
						if recovery > iterWait {
							iterWait = recovery
						}
						continue
					}
				}
				// No checkpoint to restart from (or replay would blow
				// the timeout budget): exclude the rank.
				alive[f.Rank] = false
				liveCount--
				rs.ExcludedRanks = append(rs.ExcludedRanks, f.Rank)
				rs.TimeoutNS += window
				if window > iterWait {
					iterWait = window
				}
			}
		}
		if liveCount == 0 {
			return nil, errors.New("cluster: all ranks failed")
		}

		// Per-iteration max over live ranks that computed normally; a
		// recovering rank's compute is already inside its recovery time.
		var m int64
		for rank := 0; rank < ranks; rank++ {
			if !alive[rank] || recovering[rank] {
				continue
			}
			dl := delays[rank][it]
			if it < stragglerUntil[rank] {
				dl = int64(float64(granNS+dl)*stragglerFactor[rank]) - granNS
			}
			if dl > m {
				m = dl
			}
		}
		iterTime := granNS + m
		if iterWait > iterTime {
			iterTime = iterWait
		}
		total += iterTime
		if iterTime-granNS > maxDelay {
			maxDelay = iterTime - granNS
		}
		if liveCount < ranks {
			rs.DegradedIterations++
		}
		for _, r := range recoveringNow {
			recovering[r] = false
		}
		recoveringNow = recoveringNow[:0]
	}

	res.ActualNS = total
	res.MaxIterDelayNS = maxDelay
	if res.IdealNS > 0 && ranks > 0 {
		res.NoiseShareSingleRank = float64(rankNoise) / float64(ranks) / float64(res.IdealNS)
	}
	return res, nil
}

// ScalingPoint is one point of a slowdown-vs-scale curve.
type ScalingPoint struct {
	Nodes    int     // cluster size at this point
	Slowdown float64 // Result.Slowdown at that size
}

// ScalingCurve runs the experiment across node counts. It stops at the
// first failed run (typically cancellation) and returns its error.
func ScalingCurve(ctx context.Context, base Config, nodeCounts []int) ([]ScalingPoint, error) {
	out := make([]ScalingPoint, 0, len(nodeCounts))
	for _, n := range nodeCounts {
		cfg := base
		cfg.Nodes = n
		r, err := Run(ctx, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, ScalingPoint{Nodes: n, Slowdown: r.Slowdown()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Nodes < out[j].Nodes })
	return out, nil
}

// ExpectedMaxFactor estimates how the expected per-iteration maximum
// noise grows with the number of ranks for a given model — the analytic
// intuition behind the measured curve (extreme-value growth ~ log N for
// light tails, polynomial for heavy tails).
func ExpectedMaxFactor(m NoiseModel, granularity sim.Duration, ranksA, ranksB int, seed uint64, trials int) float64 {
	if trials <= 0 {
		trials = 200
	}
	mean := func(ranks int) float64 {
		rng := sim.NewRNG(seed)
		var sum float64
		for t := 0; t < trials; t++ {
			var max int64
			for r := 0; r < ranks; r++ {
				if d := m.Sample(rng, granularity); d > max {
					max = d
				}
			}
			sum += float64(max)
		}
		return sum / float64(trials)
	}
	a, b := mean(ranksA), mean(ranksB)
	if a == 0 {
		return math.Inf(1)
	}
	return b / a
}
