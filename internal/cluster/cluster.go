// Package cluster scales the single-node noise measurements up to a
// cluster: a bulk-synchronous (allreduce-style) application where every
// rank computes for a fixed granularity and then synchronises, so one
// delayed rank delays everyone. This is the phenomenon that motivates
// the paper (Petrini et al.'s missing supercomputer performance): noise
// that costs well under 1 % on one node inflates dramatically at scale
// because each iteration runs at the *maximum* per-rank delay.
//
// The per-rank noise model is sampled from a single-node analysis
// (noise.Report) — interruption rate and duration distribution — so the
// cluster experiment consumes exactly what LTTNG-NOISE measures. Rank
// simulation is embarrassingly parallel and runs on all cores.
package cluster

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"osnoise/internal/noise"
	"osnoise/internal/sim"
)

// NoiseModel samples the aggregate noise a rank suffers during one
// compute window.
type NoiseModel struct {
	// RatePerSec is the interruption arrival rate per rank.
	RatePerSec float64
	// Durations is the empirical interruption-duration population
	// (nanoseconds), sampled uniformly.
	Durations []int64
}

// FromReport builds the noise model from a single-node analysis: the
// interruption rate per CPU and the empirical interruption totals. If
// categories is non-empty, only interruptions containing at least one
// component of those categories are kept (used by the mitigation
// experiment to strip daemon preemption noise).
func FromReport(r *noise.Report, categories ...noise.Category) NoiseModel {
	keep := map[noise.Category]bool{}
	for _, c := range categories {
		keep[c] = true
	}
	var durations []int64
	for _, in := range r.Interruptions {
		if len(keep) > 0 {
			found := false
			for _, comp := range in.Components {
				if keep[noise.CategoryOf(comp.Key)] {
					found = true
					break
				}
			}
			if !found {
				continue
			}
		}
		durations = append(durations, in.Total)
	}
	rate := 0.0
	if r.Seconds > 0 && r.CPUs > 0 {
		rate = float64(len(durations)) / r.Seconds / float64(r.CPUs)
	}
	return NoiseModel{RatePerSec: rate, Durations: durations}
}

// FromReportExcluding builds the model from interruptions that contain
// NO component of the given categories — e.g. excluding CatPreemption
// and CatIO models the paper-cited mitigation of dedicating a spare
// core to daemons and interrupt handling.
func FromReportExcluding(r *noise.Report, excluded ...noise.Category) NoiseModel {
	drop := map[noise.Category]bool{}
	for _, c := range excluded {
		drop[c] = true
	}
	var durations []int64
	for _, in := range r.Interruptions {
		bad := false
		for _, comp := range in.Components {
			if drop[noise.CategoryOf(comp.Key)] {
				bad = true
				break
			}
		}
		if !bad {
			durations = append(durations, in.Total)
		}
	}
	rate := 0.0
	if r.Seconds > 0 && r.CPUs > 0 {
		rate = float64(len(durations)) / r.Seconds / float64(r.CPUs)
	}
	return NoiseModel{RatePerSec: rate, Durations: durations}
}

// Sample returns the total noise suffered in one compute window of
// length c: a Poisson number of interruptions, each with an empirical
// duration.
func (m *NoiseModel) Sample(rng *sim.RNG, c sim.Duration) int64 {
	if m.RatePerSec <= 0 || len(m.Durations) == 0 {
		return 0
	}
	mean := m.RatePerSec * float64(c) / 1e9
	// Poisson count via exponential gaps (mean is small; cap defensively).
	var count int
	acc := rng.ExpFloat64()
	for acc < mean && count < 10000 {
		count++
		acc += rng.ExpFloat64()
	}
	var total int64
	for i := 0; i < count; i++ {
		total += m.Durations[rng.Intn(len(m.Durations))]
	}
	return total
}

// Config describes a cluster run.
type Config struct {
	Nodes        int // node count in the simulated cluster
	RanksPerNode int // application ranks per node
	// Granularity is each iteration's per-rank compute time. Fine
	// granularity (sub-ms) resonates with high-frequency noise.
	Granularity sim.Duration
	Iterations  int        // BSP iterations to simulate
	Seed        uint64     // seed for the per-rank noise draws
	Model       NoiseModel // per-rank noise model sampled each iteration
	// Workers bounds simulation parallelism (default NumCPU).
	Workers int
	// Synchronized models gang-scheduled / co-scheduled noise (Terry,
	// Shan and Huttunen, paper ref [25]): periodic system activity is
	// aligned across all ranks, so every rank pays the noise at the
	// same moment and the per-iteration maximum equals the per-rank
	// noise instead of the order statistic over all ranks.
	Synchronized bool
}

// Result summarises a cluster run.
type Result struct {
	Config Config // the configuration that produced this result
	// IdealNS is the noise-free runtime (Granularity × Iterations).
	IdealNS int64
	// ActualNS is the runtime with per-iteration max-of-ranks noise.
	ActualNS int64
	// NoiseShareSingleRank is the mean per-rank noise fraction, i.e.
	// what a single-node measurement would report.
	NoiseShareSingleRank float64
	// MaxIterDelayNS is the largest single-iteration delay.
	MaxIterDelayNS int64
}

// Slowdown returns ActualNS / IdealNS.
func (r *Result) Slowdown() float64 {
	if r.IdealNS == 0 {
		return 0
	}
	return float64(r.ActualNS) / float64(r.IdealNS)
}

// Efficiency returns IdealNS / ActualNS.
func (r *Result) Efficiency() float64 {
	if r.ActualNS == 0 {
		return 0
	}
	return float64(r.IdealNS) / float64(r.ActualNS)
}

// String renders the result as a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%d nodes × %d ranks, %v granularity: slowdown %.3f (single-rank noise %.3f%%)",
		r.Config.Nodes, r.Config.RanksPerNode, r.Config.Granularity,
		r.Slowdown(), 100*r.NoiseShareSingleRank)
}

// Run simulates the bulk-synchronous application. Ranks are partitioned
// across workers; each worker produces the per-iteration maximum delay
// over its ranks, and the partial maxima are folded. Deterministic for
// a given (Config.Seed, rank count, iteration count) regardless of
// worker count.
func Run(cfg Config) *Result {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 1
	}
	ranks := cfg.Nodes * cfg.RanksPerNode
	if ranks <= 0 {
		panic("cluster: no ranks")
	}
	res := &Result{
		Config:  cfg,
		IdealNS: int64(cfg.Granularity) * int64(cfg.Iterations),
	}

	workers := cfg.Workers
	if workers > ranks {
		workers = ranks
	}
	partialMax := make([][]int64, workers)
	partialSum := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			maxes := make([]int64, cfg.Iterations)
			var sum int64
			for rank := w; rank < ranks; rank += workers {
				// Per-rank deterministic stream independent of worker
				// partitioning. Synchronized noise gives every rank the
				// SAME stream: all ranks are interrupted together.
				streamID := uint64(rank + 1)
				if cfg.Synchronized {
					streamID = 1
				}
				rng := sim.NewRNG(cfg.Seed ^ (0x9e3779b97f4a7c15 * streamID))
				for it := 0; it < cfg.Iterations; it++ {
					d := cfg.Model.Sample(rng, cfg.Granularity)
					sum += d
					if d > maxes[it] {
						maxes[it] = d
					}
				}
			}
			partialMax[w] = maxes
			partialSum[w] = sum
		}()
	}
	wg.Wait()

	var total, rankNoise int64
	var maxDelay int64
	for it := 0; it < cfg.Iterations; it++ {
		var m int64
		for w := 0; w < workers; w++ {
			if partialMax[w][it] > m {
				m = partialMax[w][it]
			}
		}
		total += int64(cfg.Granularity) + m
		if m > maxDelay {
			maxDelay = m
		}
	}
	for _, s := range partialSum {
		rankNoise += s
	}
	res.ActualNS = total
	res.MaxIterDelayNS = maxDelay
	if res.IdealNS > 0 && ranks > 0 {
		res.NoiseShareSingleRank = float64(rankNoise) / float64(ranks) / float64(res.IdealNS)
	}
	return res
}

// ScalingPoint is one point of a slowdown-vs-scale curve.
type ScalingPoint struct {
	Nodes    int     // cluster size at this point
	Slowdown float64 // Result.Slowdown at that size
}

// ScalingCurve runs the experiment across node counts.
func ScalingCurve(base Config, nodeCounts []int) []ScalingPoint {
	out := make([]ScalingPoint, 0, len(nodeCounts))
	for _, n := range nodeCounts {
		cfg := base
		cfg.Nodes = n
		r := Run(cfg)
		out = append(out, ScalingPoint{Nodes: n, Slowdown: r.Slowdown()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Nodes < out[j].Nodes })
	return out
}

// ExpectedMaxFactor estimates how the expected per-iteration maximum
// noise grows with the number of ranks for a given model — the analytic
// intuition behind the measured curve (extreme-value growth ~ log N for
// light tails, polynomial for heavy tails).
func ExpectedMaxFactor(m NoiseModel, granularity sim.Duration, ranksA, ranksB int, seed uint64, trials int) float64 {
	if trials <= 0 {
		trials = 200
	}
	mean := func(ranks int) float64 {
		rng := sim.NewRNG(seed)
		var sum float64
		for t := 0; t < trials; t++ {
			var max int64
			for r := 0; r < ranks; r++ {
				if d := m.Sample(rng, granularity); d > max {
					max = d
				}
			}
			sum += float64(max)
		}
		return sum / float64(trials)
	}
	a, b := mean(ranksA), mean(ranksB)
	if a == 0 {
		return math.Inf(1)
	}
	return b / a
}
