package cluster

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"osnoise/internal/cluster/fault"
	"osnoise/internal/sim"
)

// faultedBase is a small faulted run shared by the recovery tests.
func faultedBase() Config {
	return Config{
		Nodes: 8, RanksPerNode: 4,
		Granularity: sim.Millisecond, Iterations: 100,
		Seed: 11, Model: testModel(),
	}
}

// withCheckpoints enables a cheap periodic checkpoint.
func withCheckpoints() RecoveryConfig {
	return RecoveryConfig{
		CheckpointInterval: 10,
		CheckpointCost:     50 * sim.Microsecond,
		RestartCost:        sim.Millisecond,
	}
}

// Faulted runs must be bit-identical across repeats and worker counts:
// the whole resilience layer lives on virtual time.
func TestFaultedRunDeterministic(t *testing.T) {
	cfg := faultedBase()
	cfg.Faults = fault.Schedule(99, cfg.Nodes*cfg.RanksPerNode, cfg.Iterations,
		fault.Rates{CrashPerRankIter: 2e-3, StragglerPerRankIter: 2e-3, HangPerRankIter: 1e-3})
	cfg.Recovery = withCheckpoints()
	if cfg.Faults.Len() == 0 {
		t.Fatal("schedule drew no faults; pick better rates")
	}
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if a.ActualNS != b.ActualNS || !reflect.DeepEqual(a.Resilience, b.Resilience) {
		t.Fatalf("repeat run diverged:\n%+v\nvs\n%+v", a.Resilience, b.Resilience)
	}
	cfg.Workers = 1
	c := mustRun(t, cfg)
	cfg.Workers = 7
	d := mustRun(t, cfg)
	if c.ActualNS != a.ActualNS || d.ActualNS != a.ActualNS {
		t.Fatalf("worker count changed faulted result: %d / %d / %d",
			a.ActualNS, c.ActualNS, d.ActualNS)
	}
}

// A crash without checkpointing costs a full timeout window and
// permanently shrinks the communicator.
func TestCrashWithoutCheckpointExcludes(t *testing.T) {
	cfg := faultedBase()
	cfg.Faults = &fault.Plan{
		Ranks: 32, Iterations: cfg.Iterations,
		Faults: []fault.Fault{{Kind: fault.Crash, Rank: 3, Iteration: 20}},
	}
	r := mustRun(t, cfg)
	rs := r.Resilience
	if rs.Crashes != 1 || rs.Recovered != 0 {
		t.Fatalf("crashes %d recovered %d", rs.Crashes, rs.Recovered)
	}
	if !reflect.DeepEqual(rs.ExcludedRanks, []int{3}) {
		t.Fatalf("excluded %v, want [3]", rs.ExcludedRanks)
	}
	if rs.TimeoutNS != cfg.Recovery.backoffWindow(cfg.Granularity) {
		t.Fatalf("timeout ns %d, want the full backoff window %d",
			rs.TimeoutNS, cfg.Recovery.backoffWindow(cfg.Granularity))
	}
	if rs.DegradedIterations != cfg.Iterations-20 {
		t.Fatalf("degraded iterations %d, want %d", rs.DegradedIterations, cfg.Iterations-20)
	}
	noFault := cfg
	noFault.Faults = nil
	base := mustRun(t, noFault)
	if r.ActualNS <= base.ActualNS {
		t.Fatal("crash did not cost virtual time")
	}
}

// The same crash with checkpointing recovers: the rank replays from the
// last checkpoint and the communicator stays whole.
func TestCheckpointRecoversCrash(t *testing.T) {
	cfg := faultedBase()
	cfg.Faults = &fault.Plan{
		Ranks: 32, Iterations: cfg.Iterations,
		Faults: []fault.Fault{{Kind: fault.Crash, Rank: 3, Iteration: 20}},
	}
	cfg.Recovery = withCheckpoints()
	r := mustRun(t, cfg)
	rs := r.Resilience
	if rs.Recovered != 1 || len(rs.ExcludedRanks) != 0 {
		t.Fatalf("recovered %d excluded %v", rs.Recovered, rs.ExcludedRanks)
	}
	if rs.CheckpointNS == 0 || rs.RecoveryNS == 0 {
		t.Fatalf("checkpoint %d / recovery %d ns, want both > 0", rs.CheckpointNS, rs.RecoveryNS)
	}
	if rs.DegradedIterations != 0 {
		t.Fatalf("degraded iterations %d, want 0", rs.DegradedIterations)
	}
	// Recovery (restart + replay ≤ window) must be cheaper than the
	// exclusion path's full backoff window.
	noCkpt := cfg
	noCkpt.Recovery = RecoveryConfig{}
	if excl := mustRun(t, noCkpt); r.ActualNS >= excl.ActualNS {
		t.Fatalf("checkpointed run (%d ns) not cheaper than exclusion (%d ns)",
			r.ActualNS, excl.ActualNS)
	}
}

// A hung rank is detectable only by timeout: the collective burns the
// whole backoff window and excludes it.
func TestHangExcludesAfterTimeout(t *testing.T) {
	cfg := faultedBase()
	cfg.Recovery = withCheckpoints() // checkpoints don't help a hang
	cfg.Faults = &fault.Plan{
		Ranks: 32, Iterations: cfg.Iterations,
		Faults: []fault.Fault{{Kind: fault.Hang, Rank: 7, Iteration: 50}},
	}
	r := mustRun(t, cfg)
	rs := r.Resilience
	if rs.Hangs != 1 || !reflect.DeepEqual(rs.ExcludedRanks, []int{7}) {
		t.Fatalf("hangs %d excluded %v", rs.Hangs, rs.ExcludedRanks)
	}
	if rs.TimeoutNS == 0 || rs.Recovered != 0 {
		t.Fatalf("timeout %d recovered %d", rs.TimeoutNS, rs.Recovered)
	}
}

// A straggler inflates its episode's iterations without shrinking the
// communicator.
func TestStragglerSlowsWithoutExclusion(t *testing.T) {
	cfg := faultedBase()
	cfg.Faults = &fault.Plan{
		Ranks: 32, Iterations: cfg.Iterations,
		Faults: []fault.Fault{{Kind: fault.Straggler, Rank: 0, Iteration: 10, Factor: 8, Iters: 30}},
	}
	r := mustRun(t, cfg)
	rs := r.Resilience
	if rs.Stragglers != 1 || len(rs.ExcludedRanks) != 0 || rs.DegradedIterations != 0 {
		t.Fatalf("resilience %+v", rs)
	}
	noFault := cfg
	noFault.Faults = nil
	base := mustRun(t, noFault)
	if r.ActualNS <= base.ActualNS {
		t.Fatal("straggler did not slow the run")
	}
	// An 8× straggler for 30 of 100 iterations costs at least 30 × 7 ms.
	if extra := r.ActualNS - base.ActualNS; extra < 30*7*int64(sim.Millisecond)/2 {
		t.Fatalf("straggler cost only %d ns", extra)
	}
}

// Degraded-mode allreduce: many crashes, no checkpoints — the run still
// completes on the shrunken communicator (acceptance criterion).
func TestDegradedAllreduceCompletes(t *testing.T) {
	cfg := faultedBase()
	cfg.Faults = &fault.Plan{
		Ranks: 32, Iterations: cfg.Iterations,
		Faults: []fault.Fault{
			{Kind: fault.Crash, Rank: 1, Iteration: 5},
			{Kind: fault.Hang, Rank: 2, Iteration: 10},
			{Kind: fault.Crash, Rank: 3, Iteration: 15},
		},
	}
	r := mustRun(t, cfg)
	rs := r.Resilience
	if len(rs.ExcludedRanks) != 3 {
		t.Fatalf("excluded %v, want 3 ranks", rs.ExcludedRanks)
	}
	if rs.DegradedIterations == 0 || r.ActualNS <= r.IdealNS {
		t.Fatalf("degraded %d actual %d", rs.DegradedIterations, r.ActualNS)
	}
}

// When every rank fails, the collective cannot complete.
func TestAllRanksFailedErrors(t *testing.T) {
	cfg := Config{
		Nodes: 1, RanksPerNode: 1,
		Granularity: sim.Millisecond, Iterations: 10,
		Seed: 1, Model: testModel(),
		Faults: &fault.Plan{Ranks: 1, Iterations: 10,
			Faults: []fault.Fault{{Kind: fault.Crash, Rank: 0, Iteration: 2}}},
	}
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("no error when the whole communicator died")
	}
}

// A fault on an already-excluded rank is skipped, not double-counted.
func TestFaultOnDeadRankSkipped(t *testing.T) {
	cfg := faultedBase()
	cfg.Faults = &fault.Plan{
		Ranks: 32, Iterations: cfg.Iterations,
		Faults: []fault.Fault{
			{Kind: fault.Crash, Rank: 4, Iteration: 10},
			{Kind: fault.Crash, Rank: 4, Iteration: 30},
		},
	}
	r := mustRun(t, cfg)
	if rs := r.Resilience; rs.FaultsInjected != 1 || rs.Crashes != 1 {
		t.Fatalf("injected %d crashes %d, want 1/1", rs.FaultsInjected, rs.Crashes)
	}
}

// Plans that do not fit the run's shape are rejected up front.
func TestInvalidPlanRejected(t *testing.T) {
	cfg := faultedBase()
	cfg.Faults = &fault.Plan{Ranks: 32, Iterations: cfg.Iterations,
		Faults: []fault.Fault{{Kind: fault.Crash, Rank: 999, Iteration: 0}}}
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
}

// Cancellation returns the typed sentinel from both the fault-free and
// the faulted path.
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, faulted := range []bool{false, true} {
		cfg := faultedBase()
		if faulted {
			cfg.Faults = &fault.Plan{Ranks: 32, Iterations: cfg.Iterations,
				Faults: []fault.Fault{{Kind: fault.Crash, Rank: 0, Iteration: 1}}}
		}
		_, err := Run(ctx, cfg)
		if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("faulted=%v: err %v, want ErrCancelled wrapping context.Canceled", faulted, err)
		}
	}
}
