package corrupt

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"testing"

	"osnoise/internal/noise"
	"osnoise/internal/sim"
	"osnoise/internal/trace"
)

// baseTrace builds a deterministic trace large enough that corruption
// can land in the header, the event section, or the process table.
func baseTrace(n int) *trace.Trace {
	tr := &trace.Trace{CPUs: 4, Lost: 3}
	for i := 0; i < n; i++ {
		tr.Events = append(tr.Events, trace.Event{
			TS: int64(i) * 250, CPU: int32(i % 4),
			ID: trace.EvIRQEntry, Arg1: int64(i), Arg2: -int64(i), Arg3: 7,
		})
	}
	tr.Procs = []trace.ProcInfo{
		{PID: 10, Kind: trace.ProcApp, Name: "rank0"},
		{PID: 77, Kind: trace.ProcKernelDaemon, Name: "kswapd0"},
	}
	return tr
}

// encoding is one writer under corruption test.
type encoding struct {
	name string
	enc  func(*trace.Trace) []byte
}

func encodings(t *testing.T) []encoding {
	t.Helper()
	return []encoding{
		{"fixed", func(tr *trace.Trace) []byte {
			var buf bytes.Buffer
			if err := trace.Write(&buf, tr); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}},
		{"compressed", func(tr *trace.Trace) []byte {
			var buf bytes.Buffer
			if err := trace.WriteCompressed(&buf, tr); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}},
	}
}

// reader is one ingestion entry point under corruption test. Each must
// return either a decoded result or an error — never panic — for any
// input bytes.
type reader struct {
	name string
	read func(data []byte) error
}

func readers() []reader {
	return []reader{
		{"Read", func(data []byte) error {
			_, err := trace.Read(bytes.NewReader(data))
			return err
		}},
		{"ReadUnsized", func(data []byte) error {
			// LimitReader hides Len/Seek, exercising the grow-as-you-read
			// path that cannot cross-check the header against the size.
			_, err := trace.Read(io.LimitReader(bytes.NewReader(data), int64(len(data))))
			return err
		}},
		{"ReadCompressed", func(data []byte) error {
			_, err := trace.ReadCompressed(bytes.NewReader(data))
			return err
		}},
		{"ReadAny", func(data []byte) error {
			_, err := trace.ReadAny(bytes.NewReader(data))
			return err
		}},
		{"NewDecoderDrain", func(data []byte) error {
			d, err := trace.NewDecoder(bytes.NewReader(data))
			if err != nil {
				return err
			}
			batch := make([]trace.Event, 512)
			for {
				_, err := d.Next(batch)
				if err == io.EOF {
					break
				}
				if err != nil {
					return err
				}
			}
			_, err = d.Procs()
			return err
		}},
		{"ReadParallel", func(data []byte) error {
			_, err := trace.ReadParallel(context.Background(), trace.BytesReaderAt(data), int64(len(data)), 4)
			return err
		}},
		{"OpenRawScan", func(data []byte) error {
			rt, err := trace.OpenRaw(trace.BytesReaderAt(data), int64(len(data)))
			if err != nil {
				return err
			}
			if err := rt.Scan(0, rt.EventCount(), func(start uint64, chunk []byte) error {
				return nil
			}); err != nil {
				return err
			}
			if rt.EventCount() > 0 {
				if _, err := rt.Event(rt.EventCount() - 1); err != nil {
					return err
				}
			}
			_, err = rt.Procs()
			return err
		}},
		{"AnalyzeRaw", func(data []byte) error {
			_, err := noise.AnalyzeRaw(context.Background(), trace.BytesReaderAt(data), int64(len(data)), noise.Options{}, 4)
			return err
		}},
		{"AnalyzeStream", func(data []byte) error {
			d, err := trace.NewDecoder(bytes.NewReader(data))
			if err != nil {
				return err
			}
			_, err = noise.AnalyzeStream(context.Background(), d, noise.Options{}, 4)
			return err
		}},
	}
}

// TestCorruptionSuite sweeps every mutation over every encoding and
// feeds the result to every reader entry point: the ingestion contract
// is that the outcome is a decode or a typed input error, never a panic
// and never an untyped corruption report.
func TestCorruptionSuite(t *testing.T) {
	tr := baseTrace(300)
	for _, enc := range encodings(t) {
		orig := enc.enc(tr)
		for _, mut := range All {
			for seed := uint64(1); seed <= 8; seed++ {
				data := mut.Apply(sim.NewRNG(seed^0x6f736e6f697365), orig)
				for _, rd := range readers() {
					name := fmt.Sprintf("%s/%s/seed%d/%s", enc.name, mut.Name, seed, rd.name)
					t.Run(name, func(t *testing.T) {
						err := rd.read(data)
						if err != nil && !trace.IsInputError(err) {
							t.Fatalf("untyped error from corrupted input: %v", err)
						}
					})
				}
			}
		}
	}
}

// TestMutationsDeterministic pins the injector to its seed: the same
// (mutation, seed, input) triple must produce identical bytes, which is
// what makes a corruption-suite failure reproducible from its name.
func TestMutationsDeterministic(t *testing.T) {
	var buf bytes.Buffer
	if err := trace.Write(&buf, baseTrace(50)); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for _, mut := range All {
		a := mut.Apply(sim.NewRNG(42), orig)
		b := mut.Apply(sim.NewRNG(42), orig)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: same seed produced different corruption", mut.Name)
		}
		if c := mut.Apply(sim.NewRNG(43), orig); bytes.Equal(a, c) && mut.Name != "headercount" && mut.Name != "headercpus" {
			// Different seeds should usually differ; header mutators may
			// collide on their small extreme sets, so they are exempt.
			t.Logf("%s: seeds 42 and 43 coincided (allowed but unusual)", mut.Name)
		}
	}
}

// TestMutationsPreserveInput verifies Apply never aliases or edits the
// original encoding, so one encode can feed many mutations.
func TestMutationsPreserveInput(t *testing.T) {
	var buf bytes.Buffer
	if err := trace.Write(&buf, baseTrace(50)); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	snapshot := append([]byte(nil), orig...)
	for _, mut := range All {
		for seed := uint64(0); seed < 4; seed++ {
			mut.Apply(sim.NewRNG(seed), orig)
		}
	}
	if !bytes.Equal(orig, snapshot) {
		t.Fatal("a mutation modified its input")
	}
}

// TestValidTraceStillDecodes pins the other half of the hardening
// contract: validation must not change the decoding of well-formed
// traces. Every reader must accept the unmutated encodings.
func TestValidTraceStillDecodes(t *testing.T) {
	tr := baseTrace(300)
	for _, enc := range encodings(t) {
		data := enc.enc(tr)
		for _, rd := range readers() {
			if rd.name == "ReadCompressed" && enc.name == "fixed" {
				continue // wrong-format pairing, rejected by magic
			}
			if enc.name == "compressed" {
				switch rd.name {
				case "Read", "ReadUnsized", "NewDecoderDrain", "ReadParallel",
					"OpenRawScan", "AnalyzeRaw", "AnalyzeStream":
					continue // fixed-format-only entry points
				}
			}
			if err := rd.read(data); err != nil {
				t.Errorf("%s/%s: valid trace rejected: %v", enc.name, rd.name, err)
			}
		}
	}
}

// TestWrongMagicStaysTyped checks the cross-format pairings report
// ErrBadMagic (an ErrCorrupt-family error), preserving the sentinel
// contract CLI tools dispatch on.
func TestWrongMagicStaysTyped(t *testing.T) {
	tr := baseTrace(10)
	var fixed, comp bytes.Buffer
	if err := trace.Write(&fixed, tr); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCompressed(&comp, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.ReadCompressed(bytes.NewReader(fixed.Bytes())); !errors.Is(err, trace.ErrCorrupt) {
		t.Fatalf("fixed bytes into ReadCompressed: %v, want ErrCorrupt family", err)
	}
	if _, err := trace.Read(bytes.NewReader(comp.Bytes())); !errors.Is(err, trace.ErrCorrupt) {
		t.Fatalf("compressed bytes into Read: %v, want ErrCorrupt family", err)
	}
}
