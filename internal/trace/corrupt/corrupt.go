// Package corrupt is a deterministic trace-corruption fault injector.
//
// It mutates encoded trace bytes — truncating, bit-flipping, splicing,
// duplicating, zeroing, and rewriting header fields — to exercise the
// trace readers' corruption handling. Every mutation is driven by the
// simulation engine's seeded RNG, so a failing case is reproducible from
// its (mutation, seed) pair alone; there is no wall-clock or global
// randomness anywhere in the injector.
//
// The package is the proving half of the panic-free ingestion contract
// (see docs/ARCHITECTURE.md): the corruption test suite feeds every
// mutation of every format through every reader entry point and asserts
// that the outcome is either a successful decode or a typed
// ErrCorrupt/ErrLimit-family error — never a panic.
package corrupt

import (
	"encoding/binary"

	"osnoise/internal/sim"
	"osnoise/internal/trace"
)

// Mutation is one named corruption strategy over an encoded trace.
type Mutation struct {
	// Name identifies the strategy in test names and diagnostics.
	Name string
	// Apply returns a corrupted copy of enc. It must not modify enc.
	// The RNG makes the mutation deterministic per seed.
	Apply func(rng *sim.RNG, enc []byte) []byte
}

// clone copies enc so mutators can edit freely.
func clone(enc []byte) []byte {
	out := make([]byte, len(enc))
	copy(out, enc)
	return out
}

// intn returns a value in [0, n), tolerating n <= 0 (returns 0) so
// mutators need no special-casing for tiny inputs.
func intn(rng *sim.RNG, n int) int {
	if n <= 0 {
		return 0
	}
	return rng.Intn(n)
}

// Truncate cuts the input at a random point, modelling a writer killed
// mid-flush or a partially transferred file.
var Truncate = Mutation{
	Name: "truncate",
	Apply: func(rng *sim.RNG, enc []byte) []byte {
		return clone(enc)[:intn(rng, len(enc))]
	},
}

// BitFlip flips between one and eight random bits anywhere in the
// stream, modelling storage or transport corruption.
var BitFlip = Mutation{
	Name: "bitflip",
	Apply: func(rng *sim.RNG, enc []byte) []byte {
		out := clone(enc)
		if len(out) == 0 {
			return out
		}
		for i, n := 0, 1+intn(rng, 8); i < n; i++ {
			pos := intn(rng, len(out))
			out[pos] ^= 1 << uint(intn(rng, 8))
		}
		return out
	},
}

// Splice removes a random interior span, modelling a lost write: the
// stream stays well-formed at the byte level but records shift out of
// alignment and the header's promises no longer match the body.
var Splice = Mutation{
	Name: "splice",
	Apply: func(rng *sim.RNG, enc []byte) []byte {
		out := clone(enc)
		if len(out) < 2 {
			return out
		}
		start := intn(rng, len(out)-1)
		n := 1 + intn(rng, len(out)-start-1)
		return append(out[:start], out[start+n:]...)
	},
}

// Duplicate repeats a random span in place, modelling a replayed write.
// The stream grows, so size-vs-header cross-checks see a surplus rather
// than a deficit.
var Duplicate = Mutation{
	Name: "duplicate",
	Apply: func(rng *sim.RNG, enc []byte) []byte {
		out := clone(enc)
		if len(out) == 0 {
			return out
		}
		start := intn(rng, len(out))
		n := 1 + intn(rng, len(out)-start)
		dup := append(clone(out[:start+n]), out[start:]...)
		return dup
	},
}

// Zero clears a random span, modelling a hole left by a sparse file or
// an unwritten page.
var Zero = Mutation{
	Name: "zero",
	Apply: func(rng *sim.RNG, enc []byte) []byte {
		out := clone(enc)
		if len(out) == 0 {
			return out
		}
		start := intn(rng, len(out))
		n := 1 + intn(rng, len(out)-start)
		for i := start; i < start+n; i++ {
			out[i] = 0
		}
		return out
	},
}

// headerCountExtremes are the event-count values HeaderCount cycles
// through: the overflow boundary cases that untrusted-allocation bugs
// hide behind.
var headerCountExtremes = []uint64{
	0, 1, 1 << 20, 1 << 32, 1<<63 - 1, 1<<64 - 1,
}

// HeaderCount overwrites the fixed-format header's event count with an
// extreme value, directly attacking the count→allocation path. It only
// applies to the fixed format (where the field has a fixed offset);
// other inputs pass through unchanged.
var HeaderCount = Mutation{
	Name: "headercount",
	Apply: func(rng *sim.RNG, enc []byte) []byte {
		out := clone(enc)
		var head [8]byte
		if len(out) < 32 || copy(head[:], out) != 8 || !trace.IsFixedFormat(head) {
			return out
		}
		v := headerCountExtremes[intn(rng, len(headerCountExtremes))]
		binary.LittleEndian.PutUint64(out[24:], v)
		return out
	},
}

// headerCPUExtremes are the CPU-count values HeaderCPUs cycles through:
// zero and values beyond trace.MaxCPUs, both of which decoders must
// reject before any per-CPU allocation.
var headerCPUExtremes = []uint32{
	0, trace.MaxCPUs + 1, 1 << 24, 1<<32 - 1,
}

// HeaderCPUs overwrites the fixed-format header's CPU count with an
// out-of-range value. Like HeaderCount it is a no-op on non-fixed
// inputs.
var HeaderCPUs = Mutation{
	Name: "headercpus",
	Apply: func(rng *sim.RNG, enc []byte) []byte {
		out := clone(enc)
		var head [8]byte
		if len(out) < 32 || copy(head[:], out) != 8 || !trace.IsFixedFormat(head) {
			return out
		}
		v := headerCPUExtremes[intn(rng, len(headerCPUExtremes))]
		binary.LittleEndian.PutUint32(out[12:], v)
		return out
	},
}

// All lists every mutation, for table-driven sweeps.
var All = []Mutation{
	Truncate, BitFlip, Splice, Duplicate, Zero, HeaderCount, HeaderCPUs,
}
