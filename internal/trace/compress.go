package trace

import (
	"bufio"
	"encoding/binary"
	"io"
)

// Compressed trace format (version 2), addressing the paper's §III-B
// concern that fine-grained tracing of large clusters produces very
// large data volumes and that "another option is to apply
// data-compression techniques at run-time to reduce the data-size":
//
//	magic    [8]byte  "LTTNOISZ"
//	version  uvarint  (2)
//	cpus     uvarint
//	lost     uvarint
//	count    uvarint
//	events:  per event, in stream order:
//	         ts delta     uvarint (vs previous event's ts)
//	         cpu          uvarint
//	         id           uvarint
//	         arg1..arg3   zig-zag varint
//
// Timestamps are monotone in a collected trace, so deltas are small;
// most args are small non-negative integers. Typical traces compress
// 3–4× against the fixed 40-byte format.

var magicZ = [8]byte{'L', 'T', 'T', 'N', 'O', 'I', 'S', 'Z'}

// CompressedFormatVersion identifies the varint trace format.
const CompressedFormatVersion = 3

// minCompressedEventSize is the smallest possible encoding of one event
// in the varint format: six fields of at least one byte each. It bounds
// how many events a stream of known size can possibly hold, which is
// what lets ReadCompressed validate the header's count up front.
const minCompressedEventSize = 6

// countReader counts the bytes pulled from an underlying reader so the
// compressed decoder — whose records have no fixed width — can still
// report the byte offset of a corrupt field.
type countReader struct {
	r io.Reader
	n int64
}

// Read implements io.Reader, accumulating the byte count.
func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// WriteCompressed encodes tr with delta+varint compression.
func WriteCompressed(w io.Writer, tr *Trace) error {
	if err := checkWritable(tr); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magicZ[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putU := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putI := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putU(CompressedFormatVersion); err != nil {
		return err
	}
	if err := putU(uint64(tr.CPUs)); err != nil {
		return err
	}
	if err := putU(tr.Lost); err != nil {
		return err
	}
	if err := putU(uint64(len(tr.Events))); err != nil {
		return err
	}
	prev := int64(0)
	for _, ev := range tr.Events {
		delta := ev.TS - prev
		prev = ev.TS
		// Deltas are non-negative in a sorted trace but the format
		// stays robust to unsorted inputs via zig-zag.
		if err := putI(delta); err != nil {
			return err
		}
		if err := putU(uint64(uint32(ev.CPU))); err != nil {
			return err
		}
		if err := putU(uint64(ev.ID)); err != nil {
			return err
		}
		if err := putI(ev.Arg1); err != nil {
			return err
		}
		if err := putI(ev.Arg2); err != nil {
			return err
		}
		if err := putI(ev.Arg3); err != nil {
			return err
		}
	}
	if err := writeProcs(bw, tr.Procs); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCompressed decodes a compressed trace. Truncated or malformed
// streams report ErrCorrupt-family errors carrying the byte offset of
// the field that failed; header fields are validated against the format
// limits — and, when r's size can be determined, against the bytes that
// actually follow — before any allocation derived from them.
func ReadCompressed(r io.Reader) (*Trace, error) {
	return readCompressed(r, sizeHint(r))
}

// readCompressed is ReadCompressed with the input size (counted from
// the magic; -1 = unknown) already measured by the caller.
func readCompressed(r io.Reader, limit int64) (*Trace, error) {
	cr := &countReader{r: r}
	br := bufio.NewReaderSize(cr, 1<<16)
	// The byte offset of the next unread byte: everything pulled from
	// the underlying stream minus what still sits in the buffer.
	off := func() int64 { return cr.n - int64(br.Buffered()) }

	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, wrapRead(0, err, "trace: reading magic")
	}
	if m != magicZ {
		return nil, ErrBadMagic
	}
	getU := func(what string) (uint64, error) {
		at := off()
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, wrapRead(at, err, "trace: reading %s", what)
		}
		return v, nil
	}
	version, err := getU("compressed header version")
	if err != nil {
		return nil, err
	}
	if version != 2 && version != CompressedFormatVersion {
		return nil, corruptf(8, nil, "trace: unsupported compressed version %d", version)
	}
	cpus, err := getU("compressed header cpus")
	if err != nil {
		return nil, err
	}
	if cpus == 0 {
		return nil, corruptf(off(), nil, "trace: header declares zero CPUs")
	}
	if cpus > MaxCPUs {
		return nil, limitf("trace: header declares %d CPUs, format maximum is %d", cpus, MaxCPUs)
	}
	lost, err := getU("compressed header lost counter")
	if err != nil {
		return nil, err
	}
	count, err := getU("compressed header event count")
	if err != nil {
		return nil, err
	}
	if limit >= 0 && count > uint64(limit)/minCompressedEventSize {
		return nil, corruptf(off(), nil,
			"trace: header promises %d events but only %d bytes follow the header (≥ %d bytes/event)",
			count, limit-off(), minCompressedEventSize)
	}
	tr := &Trace{CPUs: int(cpus), Lost: lost}
	alloc := count
	if limit < 0 && alloc > maxPrealloc {
		// Unverifiable header claim: start capped, grow as bytes arrive.
		alloc = maxPrealloc
	}
	tr.Events = make([]Event, 0, alloc)
	getI := func(i uint64, what string) (int64, error) {
		at := off()
		v, err := binary.ReadVarint(br)
		if err != nil {
			return 0, wrapRead(at, err, "trace: event %d of %d: reading %s", i, count, what)
		}
		return v, nil
	}
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		delta, err := getI(i, "ts delta")
		if err != nil {
			return nil, err
		}
		at := off()
		cpu, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, wrapRead(at, err, "trace: event %d of %d: reading cpu", i, count)
		}
		at = off()
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, wrapRead(at, err, "trace: event %d of %d: reading id", i, count)
		}
		a1, err := getI(i, "arg1")
		if err != nil {
			return nil, err
		}
		a2, err := getI(i, "arg2")
		if err != nil {
			return nil, err
		}
		a3, err := getI(i, "arg3")
		if err != nil {
			return nil, err
		}
		prev += delta
		tr.Events = append(tr.Events, Event{
			TS: prev, CPU: int32(uint32(cpu)), ID: ID(id),
			Arg1: a1, Arg2: a2, Arg3: a3,
		})
	}
	if version >= 3 {
		procs, err := readProcs(br, off())
		if err != nil {
			return nil, err
		}
		tr.Procs = procs
	}
	return tr, nil
}

// ReadAny decodes either trace format by sniffing the magic. Both paths
// get the same hardening as Read/ReadCompressed: the input size is
// measured before the stream is buffered, so header-vs-size validation
// works on files and in-memory readers even through the sniffing layer.
func ReadAny(r io.Reader) (*Trace, error) {
	limit := sizeHint(r)
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(8)
	if err != nil {
		return nil, wrapRead(0, err, "trace: reading magic")
	}
	switch {
	case string(head) == string(magicZ[:]):
		return readCompressed(br, limit)
	case string(head) == string(magic[:]):
		d, err := newDecoder(br, limit)
		if err != nil {
			return nil, err
		}
		return readDecoded(d)
	default:
		return nil, ErrBadMagic
	}
}
