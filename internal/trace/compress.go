package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Compressed trace format (version 2), addressing the paper's §III-B
// concern that fine-grained tracing of large clusters produces very
// large data volumes and that "another option is to apply
// data-compression techniques at run-time to reduce the data-size":
//
//	magic    [8]byte  "LTTNOISZ"
//	version  uvarint  (2)
//	cpus     uvarint
//	lost     uvarint
//	count    uvarint
//	events:  per event, in stream order:
//	         ts delta     uvarint (vs previous event's ts)
//	         cpu          uvarint
//	         id           uvarint
//	         arg1..arg3   zig-zag varint
//
// Timestamps are monotone in a collected trace, so deltas are small;
// most args are small non-negative integers. Typical traces compress
// 3–4× against the fixed 40-byte format.

var magicZ = [8]byte{'L', 'T', 'T', 'N', 'O', 'I', 'S', 'Z'}

// CompressedFormatVersion identifies the varint trace format.
const CompressedFormatVersion = 3

// WriteCompressed encodes tr with delta+varint compression.
func WriteCompressed(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magicZ[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putU := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putI := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putU(CompressedFormatVersion); err != nil {
		return err
	}
	if err := putU(uint64(tr.CPUs)); err != nil {
		return err
	}
	if err := putU(tr.Lost); err != nil {
		return err
	}
	if err := putU(uint64(len(tr.Events))); err != nil {
		return err
	}
	prev := int64(0)
	for _, ev := range tr.Events {
		delta := ev.TS - prev
		prev = ev.TS
		// Deltas are non-negative in a sorted trace but the format
		// stays robust to unsorted inputs via zig-zag.
		if err := putI(delta); err != nil {
			return err
		}
		if err := putU(uint64(uint32(ev.CPU))); err != nil {
			return err
		}
		if err := putU(uint64(ev.ID)); err != nil {
			return err
		}
		if err := putI(ev.Arg1); err != nil {
			return err
		}
		if err := putI(ev.Arg2); err != nil {
			return err
		}
		if err := putI(ev.Arg3); err != nil {
			return err
		}
	}
	if err := writeProcs(bw, tr.Procs); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCompressed decodes a compressed trace.
func ReadCompressed(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magicZ {
		return nil, ErrBadMagic
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if version != 2 && version != CompressedFormatVersion {
		return nil, fmt.Errorf("trace: unsupported compressed version %d", version)
	}
	cpus, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	lost, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	tr := &Trace{CPUs: int(cpus), Lost: lost}
	const maxPrealloc = 1 << 22
	alloc := count
	if alloc > maxPrealloc {
		alloc = maxPrealloc
	}
	tr.Events = make([]Event, 0, alloc)
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d ts: %w", i, err)
		}
		cpu, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d cpu: %w", i, err)
		}
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d id: %w", i, err)
		}
		a1, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d arg1: %w", i, err)
		}
		a2, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d arg2: %w", i, err)
		}
		a3, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d arg3: %w", i, err)
		}
		prev += delta
		tr.Events = append(tr.Events, Event{
			TS: prev, CPU: int32(uint32(cpu)), ID: ID(id),
			Arg1: a1, Arg2: a2, Arg3: a3,
		})
	}
	if version >= 3 {
		procs, err := readProcs(br)
		if err != nil {
			return nil, err
		}
		tr.Procs = procs
	}
	return tr, nil
}

// ReadAny decodes either trace format by sniffing the magic.
func ReadAny(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(8)
	if err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	switch {
	case string(head) == string(magicZ[:]):
		return ReadCompressed(br)
	case string(head) == string(magic[:]):
		return Read(br)
	default:
		return nil, ErrBadMagic
	}
}
