package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format:
//
//	magic   [8]byte  "LTTNOISE"
//	version uint32   (currently 2)
//	cpus    uint32
//	lost    uint64
//	count   uint64   number of event records
//	events  count × EventSize bytes, little endian:
//	        ts int64, cpu int32, id uint16, pad uint16,
//	        arg1 int64, arg2 int64, arg3 int64
//	procs   uint32 count, then per process:
//	        pid int64, kind int32, name length uint32 + bytes
//
// The event section is fixed-width so a reader can seek and the encoded
// size is predictable (40 bytes/event); the process table (the metadata
// stream) follows at the end.

var magic = [8]byte{'L', 'T', 'T', 'N', 'O', 'I', 'S', 'E'}

// FormatVersion is the current trace file format version.
const FormatVersion = 2

// IsFixedFormat reports whether an 8-byte file prefix identifies the
// uncompressed fixed-width trace format — the one whose event section
// ReadParallel can split across workers.
func IsFixedFormat(head [8]byte) bool { return head == magic }

// ErrBadMagic is returned when decoding a stream that is not a trace.
var ErrBadMagic = errors.New("trace: bad magic, not an LTTNOISE trace")

// Write encodes tr to w.
func Write(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], FormatVersion)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(tr.CPUs))
	binary.LittleEndian.PutUint64(hdr[8:], tr.Lost)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(tr.Events)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [EventSize]byte
	for _, ev := range tr.Events {
		binary.LittleEndian.PutUint64(rec[0:], uint64(ev.TS))
		binary.LittleEndian.PutUint32(rec[8:], uint32(ev.CPU))
		binary.LittleEndian.PutUint16(rec[12:], uint16(ev.ID))
		binary.LittleEndian.PutUint16(rec[14:], 0)
		binary.LittleEndian.PutUint64(rec[16:], uint64(ev.Arg1))
		binary.LittleEndian.PutUint64(rec[24:], uint64(ev.Arg2))
		binary.LittleEndian.PutUint64(rec[32:], uint64(ev.Arg3))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	if err := writeProcs(bw, tr.Procs); err != nil {
		return err
	}
	return bw.Flush()
}

func writeProcs(w io.Writer, procs []ProcInfo) error {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(procs)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	for _, p := range procs {
		var hdr [16]byte
		binary.LittleEndian.PutUint64(hdr[0:], uint64(p.PID))
		binary.LittleEndian.PutUint32(hdr[8:], uint32(p.Kind))
		binary.LittleEndian.PutUint32(hdr[12:], uint32(len(p.Name)))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, p.Name); err != nil {
			return err
		}
	}
	return nil
}

func readProcs(r io.Reader) ([]ProcInfo, error) {
	var n [4]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint32(n[:])
	const maxProcs = 1 << 20
	if count > maxProcs {
		return nil, fmt.Errorf("trace: implausible process count %d", count)
	}
	procs := make([]ProcInfo, 0, count)
	for i := uint32(0); i < count; i++ {
		var hdr [16]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, fmt.Errorf("trace: process %d: %w", i, err)
		}
		nameLen := binary.LittleEndian.Uint32(hdr[12:])
		if nameLen > 4096 {
			return nil, fmt.Errorf("trace: process %d name length %d", i, nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, fmt.Errorf("trace: process %d name: %w", i, err)
		}
		procs = append(procs, ProcInfo{
			PID:  int64(binary.LittleEndian.Uint64(hdr[0:])),
			Kind: ProcKind(binary.LittleEndian.Uint32(hdr[8:])),
			Name: string(name),
		})
	}
	return procs, nil
}

// Read decodes a trace from r. It is the sequential counterpart of
// ReadParallel, implemented on the streaming Decoder.
func Read(r io.Reader) (*Trace, error) {
	d, err := NewDecoder(r)
	if err != nil {
		return nil, err
	}
	tr := &Trace{CPUs: d.CPUs(), Lost: d.Lost()}
	const maxPrealloc = 1 << 22 // cap preallocation against corrupt headers
	alloc := d.EventCount()
	if alloc > maxPrealloc {
		alloc = maxPrealloc
	}
	tr.Events = make([]Event, 0, alloc)
	batch := make([]Event, 4096)
	for {
		n, err := d.Next(batch)
		tr.Events = append(tr.Events, batch[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	procs, err := d.Procs()
	if err != nil {
		return nil, err
	}
	tr.Procs = procs
	return tr, nil
}
