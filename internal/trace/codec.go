package trace

import (
	"bufio"
	"encoding/binary"
	"io"
)

// Binary trace format:
//
//	magic   [8]byte  "LTTNOISE"
//	version uint32   (currently 2)
//	cpus    uint32
//	lost    uint64
//	count   uint64   number of event records
//	events  count × EventSize bytes, little endian:
//	        ts int64, cpu int32, id uint16, pad uint16,
//	        arg1 int64, arg2 int64, arg3 int64
//	procs   uint32 count, then per process:
//	        pid int64, kind int32, name length uint32 + bytes
//
// The event section is fixed-width so a reader can seek and the encoded
// size is predictable (40 bytes/event); the process table (the metadata
// stream) follows at the end.

var magic = [8]byte{'L', 'T', 'T', 'N', 'O', 'I', 'S', 'E'}

// FormatVersion is the current trace file format version.
const FormatVersion = 2

// IsFixedFormat reports whether an 8-byte file prefix identifies the
// uncompressed fixed-width trace format — the one whose event section
// ReadParallel can split across workers.
func IsFixedFormat(head [8]byte) bool { return head == magic }

// maxPrealloc caps the speculative []Event preallocation when decoding
// a stream whose size cannot be determined (a pipe): the header's event
// count is then an unverified claim, and a crafted 32-byte input must
// not be able to demand an arbitrarily large allocation. Beyond the cap
// the readers grow as they decode.
const maxPrealloc = 1 << 18

// checkWritable validates a trace about to be encoded, mirroring the
// decode-time header validation so everything Write produces, Read
// accepts.
func checkWritable(tr *Trace) error {
	if tr.CPUs < 1 || tr.CPUs > MaxCPUs {
		return limitf("trace: cannot encode a trace with %d CPUs (want 1..%d)", tr.CPUs, MaxCPUs)
	}
	if len(tr.Procs) > MaxProcs {
		return limitf("trace: cannot encode %d process-table entries (maximum %d)", len(tr.Procs), MaxProcs)
	}
	for _, p := range tr.Procs {
		if len(p.Name) > MaxProcNameLen {
			return limitf("trace: cannot encode process name of %d bytes (maximum %d)", len(p.Name), MaxProcNameLen)
		}
	}
	return nil
}

// Write encodes tr to w.
func Write(w io.Writer, tr *Trace) error {
	if err := checkWritable(tr); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], FormatVersion)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(tr.CPUs))
	binary.LittleEndian.PutUint64(hdr[8:], tr.Lost)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(tr.Events)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [EventSize]byte
	for _, ev := range tr.Events {
		binary.LittleEndian.PutUint64(rec[0:], uint64(ev.TS))
		binary.LittleEndian.PutUint32(rec[8:], uint32(ev.CPU))
		binary.LittleEndian.PutUint16(rec[12:], uint16(ev.ID))
		binary.LittleEndian.PutUint16(rec[14:], 0)
		binary.LittleEndian.PutUint64(rec[16:], uint64(ev.Arg1))
		binary.LittleEndian.PutUint64(rec[24:], uint64(ev.Arg2))
		binary.LittleEndian.PutUint64(rec[32:], uint64(ev.Arg3))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	if err := writeProcs(bw, tr.Procs); err != nil {
		return err
	}
	return bw.Flush()
}

func writeProcs(w io.Writer, procs []ProcInfo) error {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(procs)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	for _, p := range procs {
		var hdr [16]byte
		binary.LittleEndian.PutUint64(hdr[0:], uint64(p.PID))
		binary.LittleEndian.PutUint32(hdr[8:], uint32(p.Kind))
		binary.LittleEndian.PutUint32(hdr[12:], uint32(len(p.Name)))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, p.Name); err != nil {
			return err
		}
	}
	return nil
}

// readProcs parses the process table. base is the byte offset of the
// table within the input (-1 when unknown), used to report where a
// malformed entry sits.
func readProcs(r io.Reader, base int64) ([]ProcInfo, error) {
	off := func(rel int64) int64 {
		if base < 0 {
			return -1
		}
		return base + rel
	}
	var n [4]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return nil, wrapRead(off(0), err, "trace: reading process-table length")
	}
	count := binary.LittleEndian.Uint32(n[:])
	if count > MaxProcs {
		return nil, limitf("trace: process table declares %d entries, maximum is %d", count, MaxProcs)
	}
	pos := int64(4)
	// The entries are at least 16 bytes each; cap the preallocation so a
	// corrupt length cannot demand more memory than the stream can back.
	alloc := count
	if alloc > maxPrealloc {
		alloc = maxPrealloc
	}
	procs := make([]ProcInfo, 0, alloc)
	for i := uint32(0); i < count; i++ {
		var hdr [16]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, wrapRead(off(pos), err, "trace: reading process entry %d of %d", i, count)
		}
		nameLen := binary.LittleEndian.Uint32(hdr[12:])
		if nameLen > MaxProcNameLen {
			return nil, limitf("trace: process %d declares a %d-byte name, maximum is %d", i, nameLen, MaxProcNameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, wrapRead(off(pos+16), err, "trace: reading process %d name", i)
		}
		pos += 16 + int64(nameLen)
		procs = append(procs, ProcInfo{
			PID:  int64(binary.LittleEndian.Uint64(hdr[0:])),
			Kind: ProcKind(binary.LittleEndian.Uint32(hdr[8:])),
			Name: string(name),
		})
	}
	return procs, nil
}

// Read decodes a trace from r. It is the sequential counterpart of
// ReadParallel, implemented on the streaming Decoder. When r's size can
// be determined (a file, an in-memory reader), the header's event count
// is validated against it before allocating; otherwise the reader grows
// as it decodes, so a corrupt header cannot demand an implausible
// allocation either way.
func Read(r io.Reader) (*Trace, error) {
	d, err := NewDecoder(r)
	if err != nil {
		return nil, err
	}
	return readDecoded(d)
}

// readDecoded drains a decoder into a materialised Trace.
func readDecoded(d *Decoder) (*Trace, error) {
	tr := &Trace{CPUs: d.CPUs(), Lost: d.Lost()}
	alloc := d.EventCount()
	if !d.Sized() && alloc > maxPrealloc {
		// Unverifiable header claim: start capped, grow as bytes arrive.
		alloc = maxPrealloc
	}
	tr.Events = make([]Event, 0, alloc)
	batch := make([]Event, 4096)
	for {
		n, err := d.Next(batch)
		tr.Events = append(tr.Events, batch[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	procs, err := d.Procs()
	if err != nil {
		return nil, err
	}
	tr.Procs = procs
	return tr, nil
}
