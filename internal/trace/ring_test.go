package trace

import (
	"sync"
	"testing"
)

func TestRingSingleWriterRoundTrip(t *testing.T) {
	r := NewRing(4, 8, Discard)
	for i := 0; i < 16; i++ {
		if !r.Write(Event{TS: int64(i), ID: EvIRQEntry}) {
			t.Fatalf("write %d rejected", i)
		}
	}
	got := r.Drain(nil)
	if len(got) != 16 {
		t.Fatalf("drained %d events, want 16", len(got))
	}
	for i, ev := range got {
		if ev.TS != int64(i) {
			t.Fatalf("event %d has TS %d", i, ev.TS)
		}
	}
}

func TestRingDiscardWhenFull(t *testing.T) {
	r := NewRing(2, 4, Discard) // capacity 8
	for i := 0; i < 8; i++ {
		if !r.Write(Event{TS: int64(i)}) {
			t.Fatalf("write %d rejected before full", i)
		}
	}
	if r.Write(Event{TS: 99}) {
		t.Fatal("write accepted into full ring")
	}
	if r.Lost() != 1 {
		t.Fatalf("lost %d, want 1", r.Lost())
	}
	// Draining makes room again.
	got := r.Drain(nil)
	if len(got) != 8 {
		t.Fatalf("drained %d", len(got))
	}
	if !r.Write(Event{TS: 100}) {
		t.Fatal("write rejected after drain")
	}
}

func TestRingPartialSubBufNotReadable(t *testing.T) {
	r := NewRing(2, 4, Discard)
	for i := 0; i < 3; i++ { // less than one sub-buffer
		r.Write(Event{TS: int64(i)})
	}
	if got := r.Drain(nil); len(got) != 0 {
		t.Fatalf("drained %d events from partial sub-buffer", len(got))
	}
	r.Stop()
	got := r.Flush(nil)
	if len(got) != 3 {
		t.Fatalf("flush returned %d events, want 3", len(got))
	}
}

func TestRingFlushBeforeStopPanics(t *testing.T) {
	r := NewRing(2, 4, Discard)
	defer func() {
		if recover() == nil {
			t.Fatal("Flush before Stop did not panic")
		}
	}()
	r.Flush(nil)
}

func TestRingBadGeometryPanics(t *testing.T) {
	for _, geom := range [][2]int{{3, 4}, {4, 3}, {0, 4}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("geometry %v did not panic", geom)
				}
			}()
			NewRing(geom[0], geom[1], Discard)
		}()
	}
}

func TestRingOverwriteKeepsNewest(t *testing.T) {
	r := NewRing(4, 4, Overwrite) // capacity 16
	for i := 0; i < 40; i++ {
		if !r.Write(Event{TS: int64(i)}) {
			t.Fatalf("overwrite write %d rejected", i)
		}
	}
	r.Stop()
	got := r.Snapshot(nil)
	if len(got) == 0 || len(got) > 16 {
		t.Fatalf("snapshot returned %d events", len(got))
	}
	// The newest event must be present and order preserved.
	if got[len(got)-1].TS != 39 {
		t.Fatalf("last snapshot event TS %d, want 39", got[len(got)-1].TS)
	}
	for i := 1; i < len(got); i++ {
		if got[i].TS != got[i-1].TS+1 {
			t.Fatalf("snapshot not contiguous at %d: %d -> %d", i, got[i-1].TS, got[i].TS)
		}
	}
}

func TestRingOverwriteSnapshotAligned(t *testing.T) {
	r := NewRing(4, 4, Overwrite)
	for i := 0; i < 18; i++ { // 2 past capacity: oldest sub-buffer dirty
		r.Write(Event{TS: int64(i)})
	}
	r.Stop()
	got := r.Snapshot(nil)
	// Events 0,1 overwritten by 16,17; sub-buffer 0 contains 16,17,2,3 —
	// partially stale, so the snapshot must start at sub-buffer 1 (TS 4).
	if got[0].TS != 4 {
		t.Fatalf("snapshot starts at TS %d, want 4", got[0].TS)
	}
	if got[len(got)-1].TS != 17 {
		t.Fatalf("snapshot ends at TS %d, want 17", got[len(got)-1].TS)
	}
}

func TestRingWriteAfterStopDropped(t *testing.T) {
	r := NewRing(2, 4, Discard)
	r.Stop()
	if r.Write(Event{}) {
		t.Fatal("write accepted after stop")
	}
	if r.Lost() != 1 {
		t.Fatalf("lost %d", r.Lost())
	}
}

// Concurrency property: with W writers racing a concurrent reader, every
// event is either drained exactly once or counted lost; per-writer order
// is preserved in the drained stream.
func TestRingConcurrentWritersAndReader(t *testing.T) {
	const writers = 8
	const perWriter = 20000
	r := NewRing(16, 256, Discard)
	doneWriting := make(chan struct{})

	var collected []Event
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			collected = r.Drain(collected)
			select {
			case <-doneWriting:
				collected = r.Drain(collected)
				return
			default:
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Arg1 encodes writer, Arg2 the per-writer sequence.
				r.Write(Event{TS: int64(i), Arg1: int64(w), Arg2: int64(i)})
			}
		}(w)
	}
	wg.Wait()
	close(doneWriting)
	<-done

	// Flush the tail.
	r.Stop()
	collected = r.Flush(collected)

	if uint64(len(collected))+r.Lost() != writers*perWriter {
		t.Fatalf("collected %d + lost %d != %d", len(collected), r.Lost(), writers*perWriter)
	}
	// Per-writer sequence must be strictly increasing.
	lastSeq := make([]int64, writers)
	for i := range lastSeq {
		lastSeq[i] = -1
	}
	for _, ev := range collected {
		w := ev.Arg1
		if ev.Arg2 <= lastSeq[w] {
			t.Fatalf("writer %d sequence went %d -> %d", w, lastSeq[w], ev.Arg2)
		}
		lastSeq[w] = ev.Arg2
	}
}

func TestMutexRing(t *testing.T) {
	m := NewMutexRing(4)
	for i := 0; i < 4; i++ {
		if !m.Write(Event{TS: int64(i)}) {
			t.Fatalf("write %d rejected", i)
		}
	}
	if m.Write(Event{TS: 5}) {
		t.Fatal("write accepted when full")
	}
	if m.Lost() != 1 {
		t.Fatalf("lost %d", m.Lost())
	}
	got := m.Drain(nil)
	if len(got) != 4 {
		t.Fatalf("drained %d", len(got))
	}
}
