// Package trace implements the LTTNG-NOISE tracer analogue: tracepoint
// definitions covering every kernel entry and exit point of the simulated
// node, per-CPU lock-free ring buffers in the style of LTTng (atomic
// reserve/commit with sub-buffer switching, discard and overwrite modes),
// session control with per-tracepoint filters, and a compact binary trace
// codec.
//
// The design properties mirror the ones the paper credits LTTng with:
// per-CPU data (no cross-CPU sharing on the hot path), lock-less record
// reservation, and nanosecond timestamps.
package trace

import "fmt"

// ID identifies a tracepoint. The set covers the instrumentation the
// paper adds to LTTng: all kernel entry/exit points (interrupts, system
// calls, exceptions) and the main OS functions (scheduler, softirqs,
// memory management).
type ID uint16

// Tracepoint identifiers.
const (
	EvNone ID = iota

	// Kernel entry/exit pairs.
	EvIRQEntry     // Arg1 = irq number
	EvIRQExit      // Arg1 = irq number
	EvSoftIRQRaise // Arg1 = softirq vector
	EvSoftIRQEntry // Arg1 = softirq vector
	EvSoftIRQExit  // Arg1 = softirq vector
	EvTaskletEntry // Arg1 = tasklet id (net rx/tx)
	EvTaskletExit  // Arg1 = tasklet id
	EvTrapEntry    // Arg1 = trap number (14 = page fault), Arg2 = faulting address
	EvTrapExit     // Arg1 = trap number
	EvSyscallEntry // Arg1 = syscall number
	EvSyscallExit  // Arg1 = syscall number

	// Scheduler activity.
	EvSchedSwitch  // Arg1 = prev pid, Arg2 = next pid, Arg3 = prev task state
	EvSchedWakeup  // Arg1 = woken pid, Arg2 = target cpu
	EvSchedMigrate // Arg1 = pid, Arg2 = source cpu, Arg3 = dest cpu
	EvSchedEntry   // schedule() entered; Arg1 = current pid
	EvSchedExit    // schedule() returned; Arg1 = now-current pid

	// Process lifecycle.
	EvProcessFork // Arg1 = parent pid, Arg2 = child pid
	EvProcessExit // Arg1 = pid

	// Application-level markers emitted by the instrumented workloads
	// (compute phase boundaries, MPI wait begin/end). These let the
	// analysis apply the paper's rule that kernel time while the
	// application is blocked waiting for communication is not noise.
	EvAppComputeBegin // Arg1 = pid
	EvAppComputeEnd   // Arg1 = pid
	EvAppWaitBegin    // Arg1 = pid (blocked waiting for communication)
	EvAppWaitEnd      // Arg1 = pid
	EvAppQuantum      // FTQ quantum boundary: Arg1 = pid, Arg2 = work done

	evMax // number of tracepoint IDs; keep last
)

// NumIDs is the number of defined tracepoint IDs.
const NumIDs = int(evMax)

// IRQ numbers used by the simulated node.
const (
	IRQTimer = 0 // local APIC timer (hrtimer tick)
	IRQNet   = 1 // network adapter
)

// Softirq vectors, mirroring the Linux softirq indices relevant to the
// paper's analysis.
const (
	SoftIRQTimer     = 0 // run_timer_softirq
	SoftIRQNetTx     = 1 // net_tx_action (tasklet in the paper's wording)
	SoftIRQNetRx     = 2 // net_rx_action
	SoftIRQRCU       = 3 // rcu_process_callbacks
	SoftIRQSched     = 4 // run_rebalance_domains
	NumSoftIRQs      = 5
	softIRQNameUnset = "softirq?"
)

// Trap numbers.
const (
	TrapPageFault = 14
	// TrapTLBMiss is a software-handled TLB reload, as on PowerPC
	// 440-class cores (Blue Gene/L): Shmueli et al. (paper §II) found
	// these the main scalability limiter of Linux on BG/L until
	// HugeTLB pages removed most of them.
	TrapTLBMiss = 26
)

// Task states recorded in EvSchedSwitch.Arg3 (prev task state).
const (
	TaskStateRunning  = 0 // preempted while runnable
	TaskStateBlocked  = 1 // voluntarily blocked (I/O, wait)
	TaskStateExited   = 2
	TaskStateWaitComm = 3 // blocked waiting for communication (MPI)
)

// Event is one fixed-size trace record. Arg meanings depend on ID.
type Event struct {
	TS   int64  // nanoseconds of virtual time
	CPU  int32  // CPU the event occurred on
	ID   ID     // event type; see the Ev* constants
	_    uint16 // padding for a stable 40-byte wire layout
	Arg1 int64  // first argument (meaning depends on ID)
	Arg2 int64  // second argument (meaning depends on ID)
	Arg3 int64  // third argument (meaning depends on ID)
}

// EventSize is the wire size of one encoded event in bytes.
const EventSize = 8 + 4 + 2 + 2 + 8 + 8 + 8

var idNames = [...]string{
	EvNone:            "none",
	EvIRQEntry:        "irq_entry",
	EvIRQExit:         "irq_exit",
	EvSoftIRQRaise:    "softirq_raise",
	EvSoftIRQEntry:    "softirq_entry",
	EvSoftIRQExit:     "softirq_exit",
	EvTaskletEntry:    "tasklet_entry",
	EvTaskletExit:     "tasklet_exit",
	EvTrapEntry:       "trap_entry",
	EvTrapExit:        "trap_exit",
	EvSyscallEntry:    "syscall_entry",
	EvSyscallExit:     "syscall_exit",
	EvSchedSwitch:     "sched_switch",
	EvSchedWakeup:     "sched_wakeup",
	EvSchedMigrate:    "sched_migrate_task",
	EvSchedEntry:      "sched_entry",
	EvSchedExit:       "sched_exit",
	EvProcessFork:     "process_fork",
	EvProcessExit:     "process_exit",
	EvAppComputeBegin: "app_compute_begin",
	EvAppComputeEnd:   "app_compute_end",
	EvAppWaitBegin:    "app_wait_begin",
	EvAppWaitEnd:      "app_wait_end",
	EvAppQuantum:      "app_quantum",
}

// String returns the tracepoint name, e.g. "softirq_entry".
func (id ID) String() string {
	if int(id) < len(idNames) && idNames[id] != "" {
		return idNames[id]
	}
	return fmt.Sprintf("id(%d)", uint16(id))
}

var softIRQNames = [NumSoftIRQs]string{
	SoftIRQTimer: "run_timer_softirq",
	SoftIRQNetTx: "net_tx_action",
	SoftIRQNetRx: "net_rx_action",
	SoftIRQRCU:   "rcu_process_callbacks",
	SoftIRQSched: "run_rebalance_domains",
}

// SoftIRQName returns the kernel function name for a softirq vector.
func SoftIRQName(vec int64) string {
	if vec >= 0 && vec < NumSoftIRQs {
		return softIRQNames[vec]
	}
	return softIRQNameUnset
}

// IRQName returns the name of an interrupt line.
func IRQName(irq int64) string {
	switch irq {
	case IRQTimer:
		return "timer_interrupt"
	case IRQNet:
		return "network_interrupt"
	default:
		return fmt.Sprintf("irq%d", irq)
	}
}

// String renders an event for debugging.
func (e Event) String() string {
	return fmt.Sprintf("[%d cpu%d] %s arg=(%d,%d,%d)", e.TS, e.CPU, e.ID, e.Arg1, e.Arg2, e.Arg3)
}

// IsEntry reports whether the tracepoint opens a kernel activity span.
func (id ID) IsEntry() bool {
	switch id {
	case EvIRQEntry, EvSoftIRQEntry, EvTaskletEntry, EvTrapEntry, EvSyscallEntry, EvSchedEntry:
		return true
	default:
		return false
	}
}

// IsExit reports whether the tracepoint closes a kernel activity span.
func (id ID) IsExit() bool {
	switch id {
	case EvIRQExit, EvSoftIRQExit, EvTaskletExit, EvTrapExit, EvSyscallExit, EvSchedExit:
		return true
	default:
		return false
	}
}

// ExitFor returns the exit tracepoint matching an entry tracepoint, or
// EvNone if id is not an entry.
func (id ID) ExitFor() ID {
	switch id {
	case EvIRQEntry:
		return EvIRQExit
	case EvSoftIRQEntry:
		return EvSoftIRQExit
	case EvTaskletEntry:
		return EvTaskletExit
	case EvTrapEntry:
		return EvTrapExit
	case EvSyscallEntry:
		return EvSyscallExit
	case EvSchedEntry:
		return EvSchedExit
	default:
		return EvNone
	}
}
