package trace

import (
	"bytes"
	"context"
	"errors"
	"io"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// testTrace builds a deterministic multi-CPU trace with a process table.
func testTrace(n int) *Trace {
	tr := &Trace{CPUs: 4, Lost: 7}
	for i := 0; i < n; i++ {
		tr.Events = append(tr.Events, Event{
			TS: int64(i) * 100, CPU: int32(i % 4),
			ID: EvIRQEntry, Arg1: int64(i % 3), Arg2: int64(i), Arg3: -int64(i),
		})
	}
	tr.Procs = []ProcInfo{
		{PID: 42, Kind: ProcApp, Name: "rank0"},
		{PID: 99, Kind: ProcUserDaemon, Name: "kswapd"},
	}
	return tr
}

func TestDecoderStreamsWholeTrace(t *testing.T) {
	tr := testTrace(10_000)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d.CPUs() != tr.CPUs || d.Lost() != tr.Lost || d.EventCount() != uint64(len(tr.Events)) {
		t.Fatalf("header: cpus=%d lost=%d count=%d", d.CPUs(), d.Lost(), d.EventCount())
	}
	if _, err := d.Procs(); err == nil {
		t.Fatal("Procs before EOF should fail")
	}
	var got []Event
	batch := make([]Event, 777) // deliberately not a divisor of the count
	for {
		n, err := d.Next(batch)
		got = append(got, batch[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(got, tr.Events) {
		t.Fatalf("streamed events differ (%d vs %d)", len(got), len(tr.Events))
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining %d", d.Remaining())
	}
	procs, err := d.Procs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(procs, tr.Procs) {
		t.Fatalf("procs differ: %+v", procs)
	}
}

func TestDecoderTruncated(t *testing.T) {
	tr := testTrace(100)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:headerSize+50*EventSize+13]

	// A sized input (Len/Seek available) is rejected at NewDecoder: the
	// header promises more event bytes than the stream holds.
	if _, err := NewDecoder(bytes.NewReader(cut)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("sized truncated stream: err = %v, want ErrCorrupt", err)
	}

	// An unsized stream (a pipe) cannot be cross-checked up front; the
	// decoder yields every whole event, then reports the truncation as a
	// corruption error rather than a clean EOF.
	d, err := NewDecoder(io.LimitReader(bytes.NewReader(cut), int64(len(cut))))
	if err != nil {
		t.Fatal(err)
	}
	if d.Sized() {
		t.Fatal("LimitReader input must be unsized")
	}
	batch := make([]Event, 4096)
	var total int
	for {
		n, nextErr := d.Next(batch)
		total += n
		if nextErr != nil {
			if nextErr == io.EOF {
				t.Fatal("truncated stream must not reach clean EOF")
			}
			if !errors.Is(nextErr, ErrCorrupt) {
				t.Fatalf("truncation err = %v, want ErrCorrupt", nextErr)
			}
			if Offset(nextErr) != int64(headerSize+50*EventSize) {
				t.Fatalf("truncation offset %d, want %d", Offset(nextErr), headerSize+50*EventSize)
			}
			break
		}
	}
	if total != 50 {
		t.Fatalf("decoded %d whole events before the truncation, want 50", total)
	}
}

func TestReadParallelMatchesRead(t *testing.T) {
	for _, n := range []int{0, 1, 5000, 100_000} {
		tr := testTrace(n)
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatal(err)
		}
		want, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3, 8} {
			got, err := ReadParallel(context.Background(), bytes.NewReader(buf.Bytes()), int64(buf.Len()), workers)
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("n=%d workers=%d: parallel decode differs", n, workers)
			}
		}
	}
}

func TestReadParallelRejectsLyingHeader(t *testing.T) {
	tr := testTrace(10)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[8+16] = 0xff // bump the event count far past the file size
	if _, err := ReadParallel(context.Background(), bytes.NewReader(b), int64(len(b)), 4); err == nil {
		t.Fatal("corrupt count must be rejected before allocation")
	}
}

// TestDecoderSkipToProcs locks the budget-truncation escape hatch: after
// decoding a prefix, Skip must discard the rest undecoded and leave the
// process table readable.
func TestDecoderSkipToProcs(t *testing.T) {
	tr := testTrace(5000)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]Event, 137)
	if _, err := d.Next(batch); err != nil {
		t.Fatal(err)
	}
	if err := d.Skip(); err != nil {
		t.Fatal(err)
	}
	if rem := d.Remaining(); rem != 0 {
		t.Fatalf("%d events remain after Skip", rem)
	}
	if n, err := d.Next(batch); n != 0 || err != io.EOF {
		t.Fatalf("Next after Skip = %d, %v; want 0, EOF", n, err)
	}
	procs, err := d.Procs()
	if err != nil {
		t.Fatalf("Procs after Skip: %v", err)
	}
	if !reflect.DeepEqual(procs, tr.Procs) {
		t.Fatalf("proc table differs after Skip: %+v", procs)
	}
	// Skip on an exhausted decoder is a no-op.
	if err := d.Skip(); err != nil {
		t.Fatal(err)
	}
}

// TestReadParallelCancelled checks the typed-error contract and that a
// cancelled parallel read joins every worker it started.
func TestReadParallelCancelled(t *testing.T) {
	tr := testTrace(50_000)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	baseline := runtime.NumGoroutine()
	for _, workers := range []int{1, 2, 4, 8} {
		_, err := ReadParallel(ctx, bytes.NewReader(buf.Bytes()), int64(buf.Len()), workers)
		if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err %v, want ErrCancelled wrapping context.Canceled", workers, err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d live, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(time.Millisecond)
	}
}
