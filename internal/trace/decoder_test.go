package trace

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

// testTrace builds a deterministic multi-CPU trace with a process table.
func testTrace(n int) *Trace {
	tr := &Trace{CPUs: 4, Lost: 7}
	for i := 0; i < n; i++ {
		tr.Events = append(tr.Events, Event{
			TS: int64(i) * 100, CPU: int32(i % 4),
			ID: EvIRQEntry, Arg1: int64(i % 3), Arg2: int64(i), Arg3: -int64(i),
		})
	}
	tr.Procs = []ProcInfo{
		{PID: 42, Kind: ProcApp, Name: "rank0"},
		{PID: 99, Kind: ProcUserDaemon, Name: "kswapd"},
	}
	return tr
}

func TestDecoderStreamsWholeTrace(t *testing.T) {
	tr := testTrace(10_000)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d.CPUs() != tr.CPUs || d.Lost() != tr.Lost || d.EventCount() != uint64(len(tr.Events)) {
		t.Fatalf("header: cpus=%d lost=%d count=%d", d.CPUs(), d.Lost(), d.EventCount())
	}
	if _, err := d.Procs(); err == nil {
		t.Fatal("Procs before EOF should fail")
	}
	var got []Event
	batch := make([]Event, 777) // deliberately not a divisor of the count
	for {
		n, err := d.Next(batch)
		got = append(got, batch[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(got, tr.Events) {
		t.Fatalf("streamed events differ (%d vs %d)", len(got), len(tr.Events))
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining %d", d.Remaining())
	}
	procs, err := d.Procs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(procs, tr.Procs) {
		t.Fatalf("procs differ: %+v", procs)
	}
}

func TestDecoderTruncated(t *testing.T) {
	tr := testTrace(100)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:headerSize+50*EventSize+13]

	// A sized input (Len/Seek available) is rejected at NewDecoder: the
	// header promises more event bytes than the stream holds.
	if _, err := NewDecoder(bytes.NewReader(cut)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("sized truncated stream: err = %v, want ErrCorrupt", err)
	}

	// An unsized stream (a pipe) cannot be cross-checked up front; the
	// decoder yields every whole event, then reports the truncation as a
	// corruption error rather than a clean EOF.
	d, err := NewDecoder(io.LimitReader(bytes.NewReader(cut), int64(len(cut))))
	if err != nil {
		t.Fatal(err)
	}
	if d.Sized() {
		t.Fatal("LimitReader input must be unsized")
	}
	batch := make([]Event, 4096)
	var total int
	for {
		n, nextErr := d.Next(batch)
		total += n
		if nextErr != nil {
			if nextErr == io.EOF {
				t.Fatal("truncated stream must not reach clean EOF")
			}
			if !errors.Is(nextErr, ErrCorrupt) {
				t.Fatalf("truncation err = %v, want ErrCorrupt", nextErr)
			}
			if Offset(nextErr) != int64(headerSize+50*EventSize) {
				t.Fatalf("truncation offset %d, want %d", Offset(nextErr), headerSize+50*EventSize)
			}
			break
		}
	}
	if total != 50 {
		t.Fatalf("decoded %d whole events before the truncation, want 50", total)
	}
}

func TestReadParallelMatchesRead(t *testing.T) {
	for _, n := range []int{0, 1, 5000, 100_000} {
		tr := testTrace(n)
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatal(err)
		}
		want, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3, 8} {
			got, err := ReadParallel(bytes.NewReader(buf.Bytes()), int64(buf.Len()), workers)
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("n=%d workers=%d: parallel decode differs", n, workers)
			}
		}
	}
}

func TestReadParallelRejectsLyingHeader(t *testing.T) {
	tr := testTrace(10)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[8+16] = 0xff // bump the event count far past the file size
	if _, err := ReadParallel(bytes.NewReader(b), int64(len(b)), 4); err == nil {
		t.Fatal("corrupt count must be rejected before allocation")
	}
}
