package trace

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSessionEmitCollect(t *testing.T) {
	s := NewSession(Config{CPUs: 2, SubBufs: 2, SubBufLen: 8})
	s.Start()
	s.Emit(Event{TS: 30, CPU: 1, ID: EvIRQEntry, Arg1: IRQTimer})
	s.Emit(Event{TS: 10, CPU: 0, ID: EvTrapEntry, Arg1: TrapPageFault})
	s.Emit(Event{TS: 20, CPU: 0, ID: EvTrapExit, Arg1: TrapPageFault})
	tr := s.Collect()
	if len(tr.Events) != 3 {
		t.Fatalf("collected %d events", len(tr.Events))
	}
	// Sorted by timestamp across CPUs.
	for i, want := range []int64{10, 20, 30} {
		if tr.Events[i].TS != want {
			t.Fatalf("event %d TS %d, want %d", i, tr.Events[i].TS, want)
		}
	}
	if tr.CPUs != 2 {
		t.Fatalf("CPUs %d", tr.CPUs)
	}
}

func TestSessionEmitBeforeStart(t *testing.T) {
	s := NewSession(Config{CPUs: 1, SubBufs: 2, SubBufLen: 8})
	s.Emit(Event{TS: 1, ID: EvIRQEntry})
	s.Start()
	s.Emit(Event{TS: 2, ID: EvIRQEntry})
	tr := s.Collect()
	if len(tr.Events) != 1 || tr.Events[0].TS != 2 {
		t.Fatalf("events %v", tr.Events)
	}
}

func TestSessionFilter(t *testing.T) {
	s := NewSession(Config{CPUs: 1, SubBufs: 2, SubBufLen: 8})
	s.Start()
	s.Disable(EvSyscallEntry)
	s.Emit(Event{TS: 1, ID: EvSyscallEntry})
	s.Emit(Event{TS: 2, ID: EvIRQEntry})
	if !s.Enabled(EvIRQEntry) || s.Enabled(EvSyscallEntry) {
		t.Fatal("filter state wrong")
	}
	tr := s.Collect()
	if len(tr.Events) != 1 || tr.Events[0].ID != EvIRQEntry {
		t.Fatalf("filtered trace: %v", tr.Events)
	}
}

func TestSessionExplicitEnabledList(t *testing.T) {
	s := NewSession(Config{CPUs: 1, SubBufs: 2, SubBufLen: 8,
		Enabled: []ID{EvTrapEntry, EvTrapExit}})
	s.Start()
	s.Emit(Event{TS: 1, ID: EvIRQEntry})
	s.Emit(Event{TS: 2, ID: EvTrapEntry})
	tr := s.Collect()
	if len(tr.Events) != 1 || tr.Events[0].ID != EvTrapEntry {
		t.Fatalf("trace: %v", tr.Events)
	}
}

func TestSessionOverhead(t *testing.T) {
	s := NewSession(Config{CPUs: 1, SubBufs: 2, SubBufLen: 8, OverheadPerEvent: 120})
	s.Start()
	if oh := s.Emit(Event{TS: 1, ID: EvIRQEntry}); oh != 120 {
		t.Fatalf("overhead %d, want 120", oh)
	}
	s.Disable(EvIRQEntry)
	if oh := s.Emit(Event{TS: 2, ID: EvIRQEntry}); oh != 0 {
		t.Fatalf("filtered event charged overhead %d", oh)
	}
}

func TestSessionBadCPUDropped(t *testing.T) {
	s := NewSession(Config{CPUs: 1, SubBufs: 2, SubBufLen: 8})
	s.Start()
	// Events naming a CPU outside the session's range — which can only
	// come from replaying a corrupt trace — are dropped and counted as
	// lost instead of panicking.
	if oh := s.Emit(Event{TS: 1, CPU: 5, ID: EvIRQEntry}); oh != 0 {
		t.Fatalf("out-of-range CPU charged overhead %d", oh)
	}
	s.Emit(Event{TS: 2, CPU: -3, ID: EvIRQEntry})
	if got := s.Lost(); got != 2 {
		t.Fatalf("lost = %d, want 2", got)
	}
	if got := s.Recorded(); got != 0 {
		t.Fatalf("recorded = %d, want 0", got)
	}
}

func TestTraceSpanAndFilter(t *testing.T) {
	tr := &Trace{CPUs: 2, Events: []Event{
		{TS: 100, CPU: 0, ID: EvIRQEntry},
		{TS: 200, CPU: 1, ID: EvTrapEntry},
		{TS: 300, CPU: 0, ID: EvIRQExit},
	}}
	first, last := tr.Span()
	if first != 100 || last != 300 {
		t.Fatalf("span [%d,%d]", first, last)
	}
	if s := tr.DurationSeconds(); s != 200e-9 {
		t.Fatalf("duration %v", s)
	}
	only := tr.Filter(func(e Event) bool { return e.ID == EvTrapEntry })
	if len(only.Events) != 1 || only.Events[0].TS != 200 {
		t.Fatalf("filter result %v", only.Events)
	}
	per := tr.PerCPU()
	if len(per[0]) != 2 || len(per[1]) != 1 {
		t.Fatalf("per-cpu split %d/%d", len(per[0]), len(per[1]))
	}
}

func TestTraceEmptySpan(t *testing.T) {
	tr := &Trace{CPUs: 1}
	if f, l := tr.Span(); f != 0 || l != 0 {
		t.Fatal("empty trace span should be zero")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	tr := &Trace{CPUs: 8, Lost: 7, Events: []Event{
		{TS: 1, CPU: 0, ID: EvIRQEntry, Arg1: IRQTimer},
		{TS: 2178, CPU: 3, ID: EvSoftIRQEntry, Arg1: SoftIRQTimer, Arg2: -5, Arg3: 42},
		{TS: 1 << 60, CPU: 7, ID: EvSchedSwitch, Arg1: -1, Arg2: 99},
	}}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.CPUs != tr.CPUs || got.Lost != tr.Lost || len(got.Events) != len(tr.Events) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

// Property: encode→decode is the identity on arbitrary event payloads.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(ts []int64, arg1 []int64, cpus uint8) bool {
		n := len(ts)
		if len(arg1) < n {
			n = len(arg1)
		}
		tr := &Trace{CPUs: int(cpus%16) + 1}
		for i := 0; i < n; i++ {
			tr.Events = append(tr.Events, Event{
				TS: ts[i], CPU: int32(i % tr.CPUs),
				ID: ID(i % NumIDs), Arg1: arg1[i], Arg2: ts[i] ^ arg1[i],
			})
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got.Events) != len(tr.Events) {
			return false
		}
		for i := range tr.Events {
			if got.Events[i] != tr.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOTATRACEFILE..."))); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestCodecTruncated(t *testing.T) {
	tr := &Trace{CPUs: 1, Events: []Event{{TS: 1, ID: EvIRQEntry}}}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Read(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Fatal("truncated trace decoded without error")
	}
}

func TestIDNames(t *testing.T) {
	if EvIRQEntry.String() != "irq_entry" {
		t.Fatalf("name %q", EvIRQEntry.String())
	}
	if ID(9999).String() != "id(9999)" {
		t.Fatalf("unknown name %q", ID(9999).String())
	}
	if SoftIRQName(SoftIRQTimer) != "run_timer_softirq" {
		t.Fatalf("softirq name %q", SoftIRQName(SoftIRQTimer))
	}
	if SoftIRQName(99) != "softirq?" {
		t.Fatalf("unknown softirq name %q", SoftIRQName(99))
	}
	if IRQName(IRQNet) != "network_interrupt" {
		t.Fatalf("irq name %q", IRQName(IRQNet))
	}
	if IRQName(9) != "irq9" {
		t.Fatalf("irq name %q", IRQName(9))
	}
}

func TestEntryExitPairs(t *testing.T) {
	entries := []ID{EvIRQEntry, EvSoftIRQEntry, EvTaskletEntry, EvTrapEntry, EvSyscallEntry, EvSchedEntry}
	for _, id := range entries {
		if !id.IsEntry() {
			t.Errorf("%v not recognised as entry", id)
		}
		exit := id.ExitFor()
		if exit == EvNone || !exit.IsExit() {
			t.Errorf("%v has bad exit pair %v", id, exit)
		}
	}
	if EvSchedWakeup.IsEntry() || EvSchedWakeup.IsExit() {
		t.Error("sched_wakeup misclassified")
	}
	if EvSchedWakeup.ExitFor() != EvNone {
		t.Error("non-entry has exit pair")
	}
}

func TestProcessTableRoundTrip(t *testing.T) {
	s := NewSession(Config{CPUs: 1, SubBufs: 2, SubBufLen: 8})
	s.Start()
	s.RegisterProcess(ProcInfo{PID: 100, Name: "rpciod", Kind: ProcKernelDaemon})
	s.RegisterProcess(ProcInfo{PID: 101, Name: "AMG-rank", Kind: ProcApp})
	s.Emit(Event{TS: 1, ID: EvIRQEntry})
	tr := s.Collect()
	if len(tr.Procs) != 2 {
		t.Fatalf("procs = %d", len(tr.Procs))
	}
	apps := tr.AppPIDs()
	if !apps[101] || apps[100] {
		t.Fatalf("app pid derivation wrong: %v", apps)
	}

	// Both codecs carry the table.
	var fixed, compressed bytes.Buffer
	if err := Write(&fixed, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteCompressed(&compressed, tr); err != nil {
		t.Fatal(err)
	}
	for name, buf := range map[string]*bytes.Buffer{"fixed": &fixed, "compressed": &compressed} {
		got, err := ReadAny(buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got.Procs) != 2 || got.Procs[1].Name != "AMG-rank" || got.Procs[0].Kind != ProcKernelDaemon {
			t.Fatalf("%s: procs %+v", name, got.Procs)
		}
	}
}

func TestAppPIDsNilWithoutTable(t *testing.T) {
	tr := &Trace{CPUs: 1}
	if tr.AppPIDs() != nil {
		t.Fatal("AppPIDs should be nil without a table")
	}
}

// The Collector (consumer-daemon analogue) drains sub-buffers while the
// session runs and produces a complete sorted trace with the process
// table attached.
func TestCollector(t *testing.T) {
	s := NewSession(Config{CPUs: 2, SubBufs: 2, SubBufLen: 4})
	s.Start()
	s.RegisterProcess(ProcInfo{PID: 1, Name: "app", Kind: ProcApp})
	c := NewCollector(s)
	// Fill more than one sub-buffer on cpu0 so Drain consumes it.
	for i := 0; i < 6; i++ {
		s.Emit(Event{TS: int64(i), CPU: 0, ID: EvIRQEntry})
	}
	c.Drain()
	if c.Len() != 4 { // one full sub-buffer (4 slots) drained
		t.Fatalf("collector drained %d events, want 4", c.Len())
	}
	s.Emit(Event{TS: 10, CPU: 1, ID: EvIRQExit})
	tr := c.Finalize()
	if len(tr.Events) != 7 {
		t.Fatalf("finalized %d events, want 7", len(tr.Events))
	}
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i-1].TS > tr.Events[i].TS {
			t.Fatal("finalized trace not sorted")
		}
	}
	if len(tr.Procs) != 1 || tr.Procs[0].Name != "app" {
		t.Fatalf("procs %+v", tr.Procs)
	}
}

func TestSessionAccessors(t *testing.T) {
	cfg := DefaultConfig(4)
	if cfg.CPUs != 4 || cfg.SubBufs == 0 || cfg.SubBufLen == 0 {
		t.Fatalf("default config %+v", cfg)
	}
	s := NewSession(cfg)
	if s.Config().CPUs != 4 {
		t.Fatal("Config accessor wrong")
	}
	s.Start()
	s.Disable(EvIRQEntry)
	s.Enable(EvIRQEntry)
	if !s.Enabled(EvIRQEntry) {
		t.Fatal("Enable did not re-enable")
	}
	s.Emit(Event{TS: 1, ID: EvIRQEntry})
	if s.Recorded() != 1 {
		t.Fatalf("recorded %d", s.Recorded())
	}
	r := NewRing(2, 4, Discard)
	if r.Cap() != 8 {
		t.Fatalf("cap %d", r.Cap())
	}
	ev := Event{TS: 5, CPU: 1, ID: EvSchedSwitch, Arg1: 2, Arg2: 3, Arg3: 4}
	if got := ev.String(); got == "" {
		t.Fatal("empty event string")
	}
}
