package trace

import "sort"

// Collector accumulates events from a session during a run, playing the
// role of LTTng's consumer daemon: it periodically drains each per-CPU
// channel's full sub-buffers so the rings can stay small even for long
// traces. Wire its Drain method to a periodic callback (e.g. a virtual
// timer on the simulated node), then call Finalize once at the end.
type Collector struct {
	session *Session
	events  []Event
}

// NewCollector returns a collector for s.
func NewCollector(s *Session) *Collector {
	return &Collector{session: s}
}

// Drain consumes every fully committed sub-buffer on every CPU.
func (c *Collector) Drain() {
	for cpu := 0; cpu < c.session.cfg.CPUs; cpu++ {
		c.events = c.session.DrainCPU(cpu, c.events)
	}
}

// Len returns the number of events accumulated so far.
func (c *Collector) Len() int { return len(c.events) }

// Finalize stops the session, flushes everything remaining (including
// partial sub-buffers), and returns the complete sorted trace.
func (c *Collector) Finalize() *Trace {
	c.session.Stop()
	tr := &Trace{CPUs: c.session.cfg.CPUs, Lost: c.session.Lost(), Procs: c.session.Processes()}
	tr.Events = c.events
	for _, r := range c.session.rings {
		tr.Events = r.Flush(tr.Events)
	}
	sort.SliceStable(tr.Events, func(i, j int) bool {
		a, b := tr.Events[i], tr.Events[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		return a.CPU < b.CPU
	})
	c.events = nil
	return tr
}
