package trace

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Config controls a tracing session.
type Config struct {
	CPUs      int  // number of per-CPU channels
	SubBufs   int  // sub-buffers per channel (power of two)
	SubBufLen int  // slots per sub-buffer (power of two)
	Mode      Mode // Discard or Overwrite
	// Enabled selects the tracepoints to record. Nil enables all.
	Enabled []ID
	// OverheadPerEvent, when non-zero, is the simulated cost in
	// nanoseconds charged to the traced CPU for each recorded event.
	// It lets experiments measure the tracer's own perturbation (the
	// paper reports 0.28 % average overhead).
	OverheadPerEvent int64
}

// DefaultConfig returns a session configuration sized for minutes of
// virtual time on an 8-CPU node.
func DefaultConfig(cpus int) Config {
	return Config{CPUs: cpus, SubBufs: 8, SubBufLen: 4096, Mode: Discard}
}

// Validate checks the session geometry against the format limits,
// returning an ErrLimit-family error describing the first violation.
// Zero SubBufs/SubBufLen are valid: NewSession fills in defaults.
// Callers deriving a Config from anything untrusted should Validate it
// before NewSession, whose panic is reserved for programming errors.
func (cfg Config) Validate() error {
	if cfg.CPUs < 1 {
		return limitf("trace: session needs at least one CPU, got %d", cfg.CPUs)
	}
	if cfg.CPUs > MaxCPUs {
		return limitf("trace: session declares %d CPUs, maximum is %d", cfg.CPUs, MaxCPUs)
	}
	if cfg.SubBufs != 0 || cfg.SubBufLen != 0 {
		subBufs, subBufLen := cfg.SubBufs, cfg.SubBufLen
		if subBufs == 0 {
			subBufs = 8
		}
		if subBufLen == 0 {
			subBufLen = 4096
		}
		if err := ringGeometry(subBufs, subBufLen); err != nil {
			return err
		}
	}
	for _, id := range cfg.Enabled {
		if int(id) >= NumIDs {
			return limitf("trace: cannot enable unknown tracepoint id %d (max %d)", id, NumIDs-1)
		}
	}
	return nil
}

// Session is the tracing control object: one ring per CPU plus the
// tracepoint filter. It corresponds to an LTTng tracing session with one
// channel per CPU.
type Session struct {
	cfg      Config
	rings    []*Ring
	enabled  [NumIDs]atomic.Bool
	recorded atomic.Uint64
	oorLost  atomic.Uint64 // events dropped for an out-of-range CPU
	started  atomic.Bool

	// procMu is the outer lock of the "trace" hierarchy (level 1):
	// it is never acquired with a ring lock held, and ring locks may
	// not be taken above it out of order.
	//noisevet:lockrank trace 1
	procMu sync.Mutex
	procs  []ProcInfo
}

// NewSession creates a session. It panics on invalid geometry so that
// misconfiguration fails loudly at setup, not silently during a run;
// the panic is a programming-error report, never reachable from file
// input — callers holding an untrusted Config must call Config.Validate
// first and handle the typed error themselves.
func NewSession(cfg Config) *Session {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.SubBufs == 0 {
		cfg.SubBufs = 8
	}
	if cfg.SubBufLen == 0 {
		cfg.SubBufLen = 4096
	}
	s := &Session{cfg: cfg, rings: make([]*Ring, cfg.CPUs)}
	for i := range s.rings {
		s.rings[i] = NewRing(cfg.SubBufs, cfg.SubBufLen, cfg.Mode)
	}
	if cfg.Enabled == nil {
		for i := 1; i < NumIDs; i++ {
			s.enabled[i].Store(true)
		}
	} else {
		for _, id := range cfg.Enabled {
			s.enabled[id].Store(true)
		}
	}
	return s
}

// Config returns the session configuration.
func (s *Session) Config() Config { return s.cfg }

// Start enables event recording.
func (s *Session) Start() { s.started.Store(true) }

// Stop quiesces all rings; subsequent Emit calls are dropped.
func (s *Session) Stop() {
	s.started.Store(false)
	for _, r := range s.rings {
		r.Stop()
	}
}

// RegisterProcess records a process-table entry (metadata stream).
func (s *Session) RegisterProcess(p ProcInfo) {
	s.procMu.Lock()
	s.procs = append(s.procs, p)
	s.procMu.Unlock()
}

// Processes returns a copy of the registered process table.
func (s *Session) Processes() []ProcInfo {
	s.procMu.Lock()
	defer s.procMu.Unlock()
	out := make([]ProcInfo, len(s.procs))
	copy(out, s.procs)
	return out
}

// Enable turns a tracepoint on.
func (s *Session) Enable(id ID) { s.enabled[id].Store(true) }

// Disable turns a tracepoint off; its events are filtered at the source,
// as with lttng disable-event.
func (s *Session) Disable(id ID) { s.enabled[id].Store(false) }

// Enabled reports whether a tracepoint is being recorded.
func (s *Session) Enabled(id ID) bool { return s.enabled[id].Load() }

// Emit records an event on the given CPU's channel. It reports the
// simulated tracer overhead in nanoseconds to charge to that CPU (zero
// when the event is filtered or the session is stopped). An event whose
// CPU is outside the session's range is dropped and counted as lost
// rather than panicking: replaying a decoded — possibly corrupt — trace
// through a session must never crash the process.
func (s *Session) Emit(ev Event) int64 {
	if !s.started.Load() || int(ev.ID) >= NumIDs || !s.enabled[ev.ID].Load() {
		return 0
	}
	if ev.CPU < 0 || int(ev.CPU) >= len(s.rings) {
		s.oorLost.Add(1)
		return 0
	}
	if s.rings[ev.CPU].Write(ev) {
		s.recorded.Add(1)
	}
	return s.cfg.OverheadPerEvent
}

// Recorded returns the number of events successfully stored.
func (s *Session) Recorded() uint64 { return s.recorded.Load() }

// Lost returns the total number of events dropped across all CPUs,
// including events dropped for naming a CPU outside the session's
// range.
func (s *Session) Lost() uint64 {
	n := s.oorLost.Load()
	for _, r := range s.rings {
		n += r.Lost()
	}
	return n
}

// DrainCPU consumes fully committed sub-buffers of one CPU (Discard
// mode), for use by a consumer daemon running concurrently with tracing.
func (s *Session) DrainCPU(cpu int, dst []Event) []Event {
	return s.rings[cpu].Drain(dst)
}

// Collect stops the session and returns the complete trace, sorted by
// timestamp (ties broken by CPU then emission order, which the sort
// preserves because records are collected per CPU in order).
func (s *Session) Collect() *Trace {
	s.Stop()
	tr := &Trace{CPUs: s.cfg.CPUs, Lost: s.Lost(), Procs: s.Processes()}
	for _, r := range s.rings {
		tr.Events = r.Flush(tr.Events)
	}
	sort.SliceStable(tr.Events, func(i, j int) bool {
		a, b := tr.Events[i], tr.Events[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		return a.CPU < b.CPU
	})
	return tr
}

// ProcKind classifies a process in the trace's process table.
type ProcKind int32

// Process kinds.
const (
	ProcApp ProcKind = iota
	ProcKernelDaemon
	ProcUserDaemon
)

// ProcInfo is one process-table entry: the metadata LTTng keeps in its
// metadata stream, letting offline analysis identify the application
// processes without out-of-band knowledge.
type ProcInfo struct {
	PID  int64    // process id as it appears in scheduler events
	Name string   // comm name, e.g. "amg" or "kswapd0"
	Kind ProcKind // application / kernel / daemon classification
}

// Trace is a fully collected event stream.
type Trace struct {
	CPUs   int     // CPU count the trace was captured on
	Lost   uint64  // events dropped by the tracer's ring buffers
	Events []Event // the merged event stream, in capture order
	// Procs is the process table captured at trace time.
	Procs []ProcInfo
}

// AppPIDs derives the application pid set from the process table
// (nil if the trace carries no table).
func (t *Trace) AppPIDs() map[int64]bool {
	if len(t.Procs) == 0 {
		return nil
	}
	out := make(map[int64]bool)
	for _, p := range t.Procs {
		if p.Kind == ProcApp {
			out[p.PID] = true
		}
	}
	return out
}

// Span returns the time range [first, last] covered by the trace.
func (t *Trace) Span() (first, last int64) {
	if len(t.Events) == 0 {
		return 0, 0
	}
	return t.Events[0].TS, t.Events[len(t.Events)-1].TS
}

// DurationSeconds returns the trace span in seconds.
func (t *Trace) DurationSeconds() float64 {
	first, last := t.Span()
	return float64(last-first) / 1e9
}

// PerCPU splits the trace into per-CPU event slices, preserving order.
// Events naming a CPU outside [0, CPUs) — possible only in a corrupt
// trace — are skipped, matching the analyzers' dropped-event handling.
func (t *Trace) PerCPU() [][]Event {
	out := make([][]Event, t.CPUs)
	for _, ev := range t.Events {
		if ev.CPU < 0 || int(ev.CPU) >= len(out) {
			continue
		}
		out[ev.CPU] = append(out[ev.CPU], ev)
	}
	return out
}

// Filter returns a new trace containing only events matching keep; the
// process table is preserved.
func (t *Trace) Filter(keep func(Event) bool) *Trace {
	nt := &Trace{CPUs: t.CPUs, Lost: t.Lost, Procs: t.Procs}
	for _, ev := range t.Events {
		if keep(ev) {
			nt.Events = append(nt.Events, ev)
		}
	}
	return nt
}
