package trace

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

// The ingestion boundary of this package never panics on file input:
// every malformed byte sequence a decoder can be fed maps to an error in
// one of two sentinel families, so callers can tell "bad input" from
// "bug in the caller" (which still panics, loudly, at the call site).
//
//   - ErrCorrupt: the bytes are structurally broken — wrong magic, a
//     truncated section, a header promising more data than the stream
//     holds, an impossible field value.
//   - ErrLimit: the bytes parse but declare something beyond the
//     documented format limits (MaxCPUs, MaxProcs, MaxProcNameLen),
//     which a well-formed trace can never do.
//
// Both families wrap their cause, so errors.Is also matches the
// underlying I/O error (e.g. io.ErrUnexpectedEOF) when there is one.
var (
	// ErrCorrupt is the sentinel matched (via errors.Is) by every
	// decoding error caused by structurally broken input.
	ErrCorrupt = errors.New("trace: corrupt input")
	// ErrLimit is the sentinel matched (via errors.Is) by every decoding
	// error caused by input exceeding the documented format limits.
	ErrLimit = errors.New("trace: input exceeds format limits")
)

// ErrBadMagic is returned when decoding a stream that is not a trace.
// It belongs to the ErrCorrupt family.
var ErrBadMagic error = &wireError{sentinel: ErrCorrupt, off: -1, msg: "trace: bad magic, not an LTTNOISE trace"}

// Documented format limits. Values above them are rejected at decode
// time with an ErrLimit error, which keeps a corrupt or hostile header
// from driving allocations: every size the decoders allocate is bounded
// by either these limits or the input size itself.
const (
	// MaxCPUs is the largest CPU count a trace header may declare:
	// 8192 nodes of 8 CPUs in a merged cluster trace. A header outside
	// [1, MaxCPUs] is rejected before any per-CPU state is allocated.
	MaxCPUs = 1 << 16
	// MaxProcs is the largest process-table length a trace may declare.
	MaxProcs = 1 << 20
	// MaxProcNameLen is the longest comm name a process-table entry may
	// carry, matching the generous side of the kernel's TASK_COMM_LEN.
	MaxProcNameLen = 4096
)

// IsInputError reports whether err (or anything it wraps) is a typed
// bad-input error — either family, ErrCorrupt or ErrLimit. CLIs use it
// to pick the "corrupt trace" exit code; anything else is an
// operational failure (I/O, permissions) or a bug.
func IsInputError(err error) bool {
	return errors.Is(err, ErrCorrupt) || errors.Is(err, ErrLimit)
}

// wireError is the concrete error type behind both sentinel families:
// a message, the byte offset where parsing failed (-1 when unknown),
// and the wrapped cause, if any.
type wireError struct {
	sentinel error // ErrCorrupt or ErrLimit
	off      int64 // byte offset in the input, -1 when unknown
	msg      string
	cause    error
}

// Error renders the message with its byte offset and cause.
func (e *wireError) Error() string {
	s := e.msg
	if e.off >= 0 {
		s = fmt.Sprintf("%s (byte offset %d)", e.msg, e.off)
	}
	if e.cause != nil {
		s += ": " + e.cause.Error()
	}
	return s
}

// Unwrap exposes the cause so errors.Is/As can keep walking.
func (e *wireError) Unwrap() error { return e.cause }

// Is makes the error match its sentinel family under errors.Is.
func (e *wireError) Is(target error) bool { return target == e.sentinel }

// Offset returns the byte offset at which a decoding error was
// detected, or -1 when the error carries none (including non-trace
// errors).
func Offset(err error) int64 {
	var we *wireError
	if errors.As(err, &we) {
		return we.off
	}
	return -1
}

// corruptf builds an ErrCorrupt-family error at byte offset off
// (-1 = unknown) wrapping cause (nil = none).
//
//noisevet:coldpath
func corruptf(off int64, cause error, format string, args ...any) error {
	return &wireError{sentinel: ErrCorrupt, off: off, msg: fmt.Sprintf(format, args...), cause: cause}
}

// limitf builds an ErrLimit-family error.
//
//noisevet:coldpath
func limitf(format string, args ...any) error {
	return &wireError{sentinel: ErrLimit, off: -1, msg: fmt.Sprintf(format, args...)}
}

// wrapRead classifies an I/O error hit while parsing a structure the
// header promised. An EOF-family error means the stream ended inside
// that structure — truncation, i.e. corruption. A varint overflow means
// the bytes themselves are impossible — also corruption. Anything else
// is a genuine I/O failure and passes through untyped (wrapped, so the
// parse context is kept).
//
//noisevet:coldpath
func wrapRead(off int64, cause error, format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	if errors.Is(cause, io.EOF) || errors.Is(cause, io.ErrUnexpectedEOF) ||
		strings.Contains(cause.Error(), "varint overflows") {
		return &wireError{sentinel: ErrCorrupt, off: off, msg: msg, cause: cause}
	}
	return fmt.Errorf("%s: %w", msg, cause)
}
