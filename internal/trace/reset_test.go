package trace

// Decoder.Reset tests: streaming-session reuse across back-to-back
// traces on one connection-like reader.

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// drainDecoder pulls every event out of d and returns them with the
// process table.
func drainDecoder(t *testing.T, d *Decoder) ([]Event, []ProcInfo) {
	t.Helper()
	var evs []Event
	batch := make([]Event, 64)
	for {
		n, err := d.Next(batch)
		evs = append(evs, batch[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
	}
	procs, err := d.Procs()
	if err != nil {
		t.Fatalf("Procs: %v", err)
	}
	return evs, procs
}

// TestDecoderResetBackToBackTraces streams two different traces
// through one Decoder over a single unsized reader, as the daemon's
// native protocol does per connection.
func TestDecoderResetBackToBackTraces(t *testing.T) {
	trA, trB := testTrace(500), testTrace(37)
	trB.CPUs = 2
	for i := range trB.Events {
		trB.Events[i].CPU %= 2
	}
	var bufA, bufB bytes.Buffer
	if err := Write(&bufA, trA); err != nil {
		t.Fatal(err)
	}
	if err := Write(&bufB, trB); err != nil {
		t.Fatal(err)
	}

	// An io.MultiReader hides Len/Seek, so both headers decode as
	// unsized streams — the connection shape.
	stream := io.MultiReader(bytes.NewReader(bufA.Bytes()), bytes.NewReader(bufB.Bytes()))
	d, err := NewDecoder(stream)
	if err != nil {
		t.Fatal(err)
	}
	if d.Sized() {
		t.Fatal("multi-reader stream decoded as sized")
	}
	evsA, procsA := drainDecoder(t, d)
	if len(evsA) != len(trA.Events) || len(procsA) != len(trA.Procs) {
		t.Fatalf("trace A: %d events %d procs, want %d/%d",
			len(evsA), len(procsA), len(trA.Events), len(trA.Procs))
	}

	// Reset re-arms the same decoder for the next trace on the stream.
	if err := d.Reset(stream); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if d.CPUs() != trB.CPUs {
		t.Fatalf("after Reset CPUs = %d, want %d", d.CPUs(), trB.CPUs)
	}
	if d.EventCount() != uint64(len(trB.Events)) {
		t.Fatalf("after Reset EventCount = %d, want %d", d.EventCount(), len(trB.Events))
	}
	evsB, _ := drainDecoder(t, d)
	if len(evsB) != len(trB.Events) {
		t.Fatalf("trace B: %d events, want %d", len(evsB), len(trB.Events))
	}
	for i := range evsB {
		if evsB[i] != trB.Events[i] {
			t.Fatalf("trace B event %d = %+v, want %+v", i, evsB[i], trB.Events[i])
		}
	}
}

// TestDecoderResetBadHeader: a Reset onto garbage reports the typed
// corruption error and does not mix streams.
func TestDecoderResetBadHeader(t *testing.T) {
	tr := testTrace(10)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	drainDecoder(t, d)

	err = d.Reset(bytes.NewReader([]byte("definitely not a trace header....")))
	if err == nil {
		t.Fatal("Reset on garbage succeeded")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Reset error %v is not ErrCorrupt", err)
	}
}

// TestDecoderResetAfterMidBatchTruncation interleaves a corrupt
// (truncated mid-record) stream and a valid stream on one decoder: the
// reused batch staging buffer and the proc-table state must not leak
// events from the broken stream into the valid one, in either order.
func TestDecoderResetAfterMidBatchTruncation(t *testing.T) {
	trA, trB := testTrace(700), testTrace(41) // A > nextBatchEvents
	var bufA, bufB bytes.Buffer
	if err := Write(&bufA, trA); err != nil {
		t.Fatal(err)
	}
	if err := Write(&bufB, trB); err != nil {
		t.Fatal(err)
	}
	// Cut stream A mid-record inside the second staging batch. The
	// reader is wrapped so it reports no size: a sized reader would be
	// rejected at header validation, but a connection-shaped stream
	// only discovers the truncation mid-batch.
	cut := headerSize + (nextBatchEvents+13)*EventSize + EventSize/2
	truncated := bufA.Bytes()[:cut]

	d, err := NewDecoder(io.MultiReader(bytes.NewReader(truncated)))
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]Event, len(trA.Events))
	n, err := d.Next(batch)
	if err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Next on truncated stream: n=%d err=%v, want ErrCorrupt", n, err)
	}

	// Reset mid-batch onto the valid stream: exactly B's events must
	// come out, none of A's staged leftovers.
	if err := d.Reset(bytes.NewReader(bufB.Bytes())); err != nil {
		t.Fatalf("Reset onto valid stream: %v", err)
	}
	evsB, procsB := drainDecoder(t, d)
	if len(evsB) != len(trB.Events) {
		t.Fatalf("after reset: %d events, want %d", len(evsB), len(trB.Events))
	}
	for i := range evsB {
		if evsB[i] != trB.Events[i] {
			t.Fatalf("after reset event %d = %+v, want %+v (stale staging data?)",
				i, evsB[i], trB.Events[i])
		}
	}
	if len(procsB) != len(trB.Procs) {
		t.Fatalf("after reset: %d procs, want %d (stale proc table?)", len(procsB), len(trB.Procs))
	}
}

// TestDecoderResetFailurePoisons: when Reset itself fails (garbage
// header) while the PREVIOUS trace was only half-read, the decoder must
// not keep serving the old header's counts against the new reader —
// that would decode the new stream's bytes as the old trace's events.
// Every read after a failed Reset reports the failure until a Reset
// succeeds.
func TestDecoderResetFailurePoisons(t *testing.T) {
	trA, trB := testTrace(200), testTrace(33)
	var bufA, bufB bytes.Buffer
	if err := Write(&bufA, trA); err != nil {
		t.Fatal(err)
	}
	if err := Write(&bufB, trB); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(bytes.NewReader(bufA.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Read only part of A, leaving d.read < d.count.
	partial := make([]Event, 50)
	if _, err := d.Next(partial); err != nil {
		t.Fatal(err)
	}

	// A failed reset (bad magic) must poison the decoder...
	garbage := append([]byte("XXXXXXXX"), make([]byte, 64)...)
	if err := d.Reset(bytes.NewReader(garbage)); err == nil {
		t.Fatal("Reset on garbage succeeded")
	}
	if n, err := d.Next(partial); err == nil || n != 0 {
		t.Fatalf("Next after failed Reset: n=%d err=%v, want 0 and an error", n, err)
	}
	if err := d.Skip(); err == nil {
		t.Fatal("Skip after failed Reset succeeded")
	}
	if _, err := d.Procs(); err == nil {
		t.Fatal("Procs after failed Reset succeeded")
	}

	// ...and a successful Reset re-arms it completely.
	if err := d.Reset(bytes.NewReader(bufB.Bytes())); err != nil {
		t.Fatalf("Reset onto valid stream: %v", err)
	}
	evsB, _ := drainDecoder(t, d)
	if len(evsB) != len(trB.Events) {
		t.Fatalf("after recovery: %d events, want %d", len(evsB), len(trB.Events))
	}
	for i := range evsB {
		if evsB[i] != trB.Events[i] {
			t.Fatalf("after recovery event %d mixed streams: %+v want %+v", i, evsB[i], trB.Events[i])
		}
	}
}

// TestDecoderResetReusesBuffer: the staging buffer survives Reset, so
// per-trace allocation on a long-lived connection stays flat.
func TestDecoderResetReusesBuffer(t *testing.T) {
	tr := testTrace(600) // > nextBatchEvents so Next allocates the staging buffer
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	drainDecoder(t, d)
	if d.buf == nil {
		t.Skip("decoder did not allocate a staging buffer")
	}
	before := &d.buf[0]
	if err := d.Reset(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	drainDecoder(t, d)
	if d.buf == nil || &d.buf[0] != before {
		t.Fatal("Reset dropped the staging buffer")
	}
}
