package trace

// Decoder.Reset tests: streaming-session reuse across back-to-back
// traces on one connection-like reader.

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// drainDecoder pulls every event out of d and returns them with the
// process table.
func drainDecoder(t *testing.T, d *Decoder) ([]Event, []ProcInfo) {
	t.Helper()
	var evs []Event
	batch := make([]Event, 64)
	for {
		n, err := d.Next(batch)
		evs = append(evs, batch[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
	}
	procs, err := d.Procs()
	if err != nil {
		t.Fatalf("Procs: %v", err)
	}
	return evs, procs
}

// TestDecoderResetBackToBackTraces streams two different traces
// through one Decoder over a single unsized reader, as the daemon's
// native protocol does per connection.
func TestDecoderResetBackToBackTraces(t *testing.T) {
	trA, trB := testTrace(500), testTrace(37)
	trB.CPUs = 2
	for i := range trB.Events {
		trB.Events[i].CPU %= 2
	}
	var bufA, bufB bytes.Buffer
	if err := Write(&bufA, trA); err != nil {
		t.Fatal(err)
	}
	if err := Write(&bufB, trB); err != nil {
		t.Fatal(err)
	}

	// An io.MultiReader hides Len/Seek, so both headers decode as
	// unsized streams — the connection shape.
	stream := io.MultiReader(bytes.NewReader(bufA.Bytes()), bytes.NewReader(bufB.Bytes()))
	d, err := NewDecoder(stream)
	if err != nil {
		t.Fatal(err)
	}
	if d.Sized() {
		t.Fatal("multi-reader stream decoded as sized")
	}
	evsA, procsA := drainDecoder(t, d)
	if len(evsA) != len(trA.Events) || len(procsA) != len(trA.Procs) {
		t.Fatalf("trace A: %d events %d procs, want %d/%d",
			len(evsA), len(procsA), len(trA.Events), len(trA.Procs))
	}

	// Reset re-arms the same decoder for the next trace on the stream.
	if err := d.Reset(stream); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if d.CPUs() != trB.CPUs {
		t.Fatalf("after Reset CPUs = %d, want %d", d.CPUs(), trB.CPUs)
	}
	if d.EventCount() != uint64(len(trB.Events)) {
		t.Fatalf("after Reset EventCount = %d, want %d", d.EventCount(), len(trB.Events))
	}
	evsB, _ := drainDecoder(t, d)
	if len(evsB) != len(trB.Events) {
		t.Fatalf("trace B: %d events, want %d", len(evsB), len(trB.Events))
	}
	for i := range evsB {
		if evsB[i] != trB.Events[i] {
			t.Fatalf("trace B event %d = %+v, want %+v", i, evsB[i], trB.Events[i])
		}
	}
}

// TestDecoderResetBadHeader: a Reset onto garbage reports the typed
// corruption error and does not mix streams.
func TestDecoderResetBadHeader(t *testing.T) {
	tr := testTrace(10)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	drainDecoder(t, d)

	err = d.Reset(bytes.NewReader([]byte("definitely not a trace header....")))
	if err == nil {
		t.Fatal("Reset on garbage succeeded")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Reset error %v is not ErrCorrupt", err)
	}
}

// TestDecoderResetReusesBuffer: the staging buffer survives Reset, so
// per-trace allocation on a long-lived connection stays flat.
func TestDecoderResetReusesBuffer(t *testing.T) {
	tr := testTrace(600) // > nextBatchEvents so Next allocates the staging buffer
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	drainDecoder(t, d)
	if d.buf == nil {
		t.Skip("decoder did not allocate a staging buffer")
	}
	before := &d.buf[0]
	if err := d.Reset(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	drainDecoder(t, d)
	if d.buf == nil || &d.buf[0] != before {
		t.Fatal("Reset dropped the staging buffer")
	}
}
