package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func sampleTrace() *Trace {
	tr := &Trace{CPUs: 8, Lost: 3}
	ts := int64(0)
	for i := 0; i < 5000; i++ {
		ts += int64(1000 + i%7)
		tr.Events = append(tr.Events, Event{
			TS: ts, CPU: int32(i % 8), ID: ID(1 + i%int(NumIDs-1)),
			Arg1: int64(i % 5), Arg2: int64(i % 100), Arg3: -int64(i % 3),
		})
	}
	return tr
}

func TestCompressedRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteCompressed(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCompressed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.CPUs != tr.CPUs || got.Lost != tr.Lost || len(got.Events) != len(tr.Events) {
		t.Fatalf("header mismatch: %d cpus, %d lost, %d events", got.CPUs, got.Lost, len(got.Events))
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestCompressedSmallerThanFixed(t *testing.T) {
	tr := sampleTrace()
	var fixed, compressed bytes.Buffer
	if err := Write(&fixed, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteCompressed(&compressed, tr); err != nil {
		t.Fatal(err)
	}
	ratio := float64(fixed.Len()) / float64(compressed.Len())
	if ratio < 2 {
		t.Fatalf("compression ratio %.2f, want >= 2 (fixed %d, compressed %d)",
			ratio, fixed.Len(), compressed.Len())
	}
}

// Property: compression round-trips arbitrary event payloads, including
// unsorted timestamps and negative args.
func TestCompressedRoundTripProperty(t *testing.T) {
	f := func(ts []int64, args []int64, cpus uint8) bool {
		n := len(ts)
		if len(args) < n {
			n = len(args)
		}
		tr := &Trace{CPUs: int(cpus%16) + 1}
		for i := 0; i < n; i++ {
			tr.Events = append(tr.Events, Event{
				TS: ts[i], CPU: int32(i % tr.CPUs), ID: ID(i % NumIDs),
				Arg1: args[i], Arg2: -args[i], Arg3: ts[i] ^ args[i],
			})
		}
		var buf bytes.Buffer
		if err := WriteCompressed(&buf, tr); err != nil {
			return false
		}
		got, err := ReadCompressed(&buf)
		if err != nil || len(got.Events) != len(tr.Events) {
			return false
		}
		for i := range tr.Events {
			if got.Events[i] != tr.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadAnySniffsBothFormats(t *testing.T) {
	tr := sampleTrace()
	var fixed, compressed bytes.Buffer
	if err := Write(&fixed, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteCompressed(&compressed, tr); err != nil {
		t.Fatal(err)
	}
	for _, buf := range []*bytes.Buffer{&fixed, &compressed} {
		got, err := ReadAny(buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Events) != len(tr.Events) {
			t.Fatalf("ReadAny lost events: %d vs %d", len(got.Events), len(tr.Events))
		}
	}
	if _, err := ReadAny(bytes.NewReader([]byte("GARBAGEXXXX"))); err != ErrBadMagic {
		t.Fatalf("garbage err = %v", err)
	}
}

func TestCompressedTruncated(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteCompressed(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// A sized truncated stream is rejected by the header-vs-size
	// cross-check before any event decodes.
	if _, err := ReadCompressed(bytes.NewReader(raw[:len(raw)/2])); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated compressed trace: err = %v, want ErrCorrupt family", err)
	}
	// An unsized stream decodes until the bytes run out, then reports
	// the corruption with the byte offset where the stream broke.
	cut := len(raw) / 2
	_, err := ReadCompressed(io.LimitReader(bytes.NewReader(raw), int64(cut)))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unsized truncated trace: err = %v, want ErrCorrupt family", err)
	}
	if off := Offset(err); off < 0 || off > int64(cut) {
		t.Fatalf("truncation offset %d outside [0, %d]", off, cut)
	}
	// Same contract through the format-sniffing entry point.
	if _, err := ReadAny(io.LimitReader(bytes.NewReader(raw), int64(cut))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadAny on truncated trace: err = %v, want ErrCorrupt family", err)
	}
}
