package trace

// Bulk-decode fast path. The wire format was designed so that an
// encoded record is byte-for-byte the in-memory layout of Event on a
// little-endian machine (see the explicit padding field in Event):
// TS@0, CPU@8, ID@12, two pad bytes, Arg1@16, Arg2@24, Arg3@32 — 40
// bytes either way. When that holds, DecodeBatch degenerates to one
// memmove instead of six bounds-checked loads per record, which is the
// difference between ~18 ns/event and memory bandwidth.
//
// The property is verified at init time by round-tripping a sentinel
// record through both views; on a big-endian machine (or if the struct
// layout ever drifts) the check fails closed and every caller takes the
// portable per-field loop. This file is the only use of unsafe in the
// module; everything it assumes is asserted before it is trusted.

import (
	"encoding/binary"
	"unsafe"
)

// eventRawCompatible reports whether []byte → []Event reinterpretation
// is valid on this machine. Set once at init, read-only afterwards.
var eventRawCompatible = func() bool {
	if unsafe.Sizeof(Event{}) != EventSize {
		return false
	}
	var e Event
	if unsafe.Offsetof(e.TS) != 0 || unsafe.Offsetof(e.CPU) != 8 ||
		unsafe.Offsetof(e.ID) != 12 || unsafe.Offsetof(e.Arg1) != 16 ||
		unsafe.Offsetof(e.Arg2) != 24 || unsafe.Offsetof(e.Arg3) != 32 {
		return false
	}
	// Endianness probe: encode a sentinel with the portable encoder and
	// compare the reinterpreted view against the portable decoder.
	want := Event{TS: 0x0102030405060708, CPU: 0x0a0b0c0d, ID: ID(0x0e0f),
		Arg1: 0x1112131415161718, Arg2: 0x2122232425262728, Arg3: 0x3132333435363738}
	var buf [EventSize]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(want.TS))
	binary.LittleEndian.PutUint32(buf[8:], uint32(want.CPU))
	binary.LittleEndian.PutUint16(buf[12:], uint16(want.ID))
	binary.LittleEndian.PutUint64(buf[16:], uint64(want.Arg1))
	binary.LittleEndian.PutUint64(buf[24:], uint64(want.Arg2))
	binary.LittleEndian.PutUint64(buf[32:], uint64(want.Arg3))
	got := *(*Event)(unsafe.Pointer(&buf[0]))
	return got == want
}()

// decodeBatchRaw is the memmove fast path: reinterpret the wire bytes
// as a []Event and copy. Caller guarantees len(b) >= n*EventSize,
// len(dst) >= n, n > 0, and eventRawCompatible.
func decodeBatchRaw(b []byte, dst []Event, n int) {
	src := unsafe.Slice((*Event)(unsafe.Pointer(&b[0])), n)
	copy(dst[:n], src)
}
