package trace

import (
	"sync"
	"sync/atomic"
)

// Mode selects the ring buffer's behaviour when full.
type Mode int

const (
	// Discard drops new events when the buffer is full (LTTng's
	// "discard" mode); the Lost counter records how many.
	Discard Mode = iota
	// Overwrite keeps the newest events, overwriting the oldest
	// (LTTng's flight-recorder mode). Reading requires the writer side
	// to be quiesced (Stop), as in an LTTng snapshot.
	Overwrite
)

// Ring is a lock-free single-ring event buffer in the style of an LTTng
// per-CPU channel: storage is divided into sub-buffers; writers reserve a
// slot with an atomic operation, fill it, then commit it; the reader
// consumes only fully committed sub-buffers. Multiple writers may write
// concurrently; one reader may drain concurrently in Discard mode.
type Ring struct {
	mode      Mode
	subBufLen int // slots per sub-buffer (power of two)
	nSubBufs  int // number of sub-buffers (power of two)
	mask      uint64
	slots     []Event
	commit    []atomic.Uint64 // committed slots per sub-buffer
	writePos  atomic.Uint64   // next slot sequence number to reserve
	readPos   atomic.Uint64   // first slot sequence number not yet consumed
	lost      atomic.Uint64
	stopped   atomic.Bool
}

// ringGeometry validates a ring's sub-buffer geometry, returning an
// ErrLimit-family error when it is not a pair of positive powers of
// two. Shared by NewRing's panic and Config.Validate's error path.
func ringGeometry(nSubBufs, subBufLen int) error {
	if nSubBufs <= 0 || subBufLen <= 0 || nSubBufs&(nSubBufs-1) != 0 || subBufLen&(subBufLen-1) != 0 {
		return limitf("trace: ring geometry must be powers of two, got %d x %d", nSubBufs, subBufLen)
	}
	return nil
}

// NewRing creates a ring with nSubBufs sub-buffers of subBufLen slots
// each. Both must be powers of two. Like NewSession, the panic reports
// a programming error — ring geometry never comes from file input;
// untrusted configurations go through Config.Validate first.
func NewRing(nSubBufs, subBufLen int, mode Mode) *Ring {
	if err := ringGeometry(nSubBufs, subBufLen); err != nil {
		panic(err)
	}
	cap := nSubBufs * subBufLen
	return &Ring{
		mode:      mode,
		subBufLen: subBufLen,
		nSubBufs:  nSubBufs,
		mask:      uint64(cap - 1),
		slots:     make([]Event, cap),
		commit:    make([]atomic.Uint64, nSubBufs),
	}
}

// Cap returns the total number of slots.
func (r *Ring) Cap() int { return len(r.slots) }

// Lost returns the number of events dropped in Discard mode.
func (r *Ring) Lost() uint64 { return r.lost.Load() }

// Stop quiesces the ring: subsequent writes are dropped (counted as
// lost). Required before Snapshot in Overwrite mode.
func (r *Ring) Stop() { r.stopped.Store(true) }

// Write records ev. It reports whether the event was stored. In Discard
// mode a full buffer drops the event; in Overwrite mode the oldest
// sub-buffer's data is overwritten instead.
func (r *Ring) Write(ev Event) bool {
	if r.stopped.Load() {
		r.lost.Add(1)
		return false
	}
	var pos uint64
	if r.mode == Overwrite {
		pos = r.writePos.Add(1) - 1
	} else {
		for {
			pos = r.writePos.Load()
			if pos-r.readPos.Load() >= uint64(len(r.slots)) {
				r.lost.Add(1)
				return false
			}
			if r.writePos.CompareAndSwap(pos, pos+1) {
				break
			}
		}
	}
	r.slots[pos&r.mask] = ev
	r.commit[(pos/uint64(r.subBufLen))%uint64(r.nSubBufs)].Add(1)
	return true
}

// ReadSubBuf consumes the oldest fully committed sub-buffer and appends
// its events to dst, returning the extended slice and whether a
// sub-buffer was consumed. Only valid in Discard mode; Overwrite readers
// use Snapshot after Stop.
func (r *Ring) ReadSubBuf(dst []Event) ([]Event, bool) {
	if r.mode != Discard {
		panic("trace: ReadSubBuf requires Discard mode")
	}
	read := r.readPos.Load()
	if r.writePos.Load() < read+uint64(r.subBufLen) {
		return dst, false // oldest sub-buffer not yet fully reserved
	}
	sb := (read / uint64(r.subBufLen)) % uint64(r.nSubBufs)
	// In Discard mode commit[sb] counts exactly the commits since the
	// reader last released this sub-buffer, because writers cannot lap
	// the reader.
	if r.commit[sb].Load() < uint64(r.subBufLen) {
		return dst, false // some slot still being written
	}
	start := read & r.mask
	dst = append(dst, r.slots[start:start+uint64(r.subBufLen)]...)
	r.commit[sb].Store(0)
	r.readPos.Store(read + uint64(r.subBufLen))
	return dst, true
}

// Drain consumes every fully committed sub-buffer (Discard mode).
func (r *Ring) Drain(dst []Event) []Event {
	for {
		var ok bool
		dst, ok = r.ReadSubBuf(dst)
		if !ok {
			return dst
		}
	}
}

// Flush consumes all remaining events, including those in the partially
// filled current sub-buffer. The ring must be stopped first, mirroring
// lttng stop && lttng destroy flushing partial sub-buffers.
func (r *Ring) Flush(dst []Event) []Event {
	if !r.stopped.Load() {
		panic("trace: Flush before Stop")
	}
	if r.mode == Overwrite {
		return r.Snapshot(dst)
	}
	dst = r.Drain(dst)
	read := r.readPos.Load()
	write := r.writePos.Load()
	for pos := read; pos < write; pos++ {
		dst = append(dst, r.slots[pos&r.mask])
	}
	r.readPos.Store(write)
	return dst
}

// Snapshot returns the events still resident in an Overwrite-mode ring,
// oldest first. The ring must be stopped.
func (r *Ring) Snapshot(dst []Event) []Event {
	if !r.stopped.Load() {
		panic("trace: Snapshot before Stop")
	}
	write := r.writePos.Load()
	n := uint64(len(r.slots))
	start := uint64(0)
	if write > n {
		// The oldest sub-buffer may be partially overwritten; skip to
		// the next sub-buffer boundary to return only intact records.
		start = write - n
		rem := start % uint64(r.subBufLen)
		if rem != 0 {
			start += uint64(r.subBufLen) - rem
		}
	}
	for pos := start; pos < write; pos++ {
		dst = append(dst, r.slots[pos&r.mask])
	}
	return dst
}

// MutexRing is a simple lock-guarded ring used as the baseline in the
// lock-free-vs-mutex ablation benchmark. It has the same Write/Drain
// semantics as a Discard-mode Ring.
type MutexRing struct {
	// mu is the innermost lock of the "trace" hierarchy (level 2):
	// held only across one Write or Drain, with no other lock below.
	//noisevet:lockrank trace 2
	mu    sync.Mutex
	buf   []Event
	lost  uint64
	limit int
}

// NewMutexRing creates a mutex-guarded ring holding at most capSlots
// events.
func NewMutexRing(capSlots int) *MutexRing {
	return &MutexRing{limit: capSlots}
}

// Write appends ev, dropping it if the ring is full.
func (m *MutexRing) Write(ev Event) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.buf) >= m.limit {
		m.lost++
		return false
	}
	m.buf = append(m.buf, ev)
	return true
}

// Drain removes and returns all buffered events.
func (m *MutexRing) Drain(dst []Event) []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	dst = append(dst, m.buf...)
	m.buf = m.buf[:0]
	return dst
}

// Lost returns the dropped-event count.
func (m *MutexRing) Lost() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lost
}
