package trace

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
)

// ErrCancelled is the sentinel wrapped by ReadParallel when its context
// is cancelled or times out mid-read. The returned error also wraps the
// context's own error, so callers may test either errors.Is(err,
// trace.ErrCancelled) or errors.Is(err, context.DeadlineExceeded).
var ErrCancelled = errors.New("trace: read cancelled")

// cancelled wraps a context error in the ErrCancelled family, outlined
// so the parallel readers' hot bodies perform no formatting.
//
//noisevet:coldpath
func cancelled(ctxErr error) error {
	return fmt.Errorf("%w: %w", ErrCancelled, ctxErr)
}

// headerSize is the fixed prefix of the LTTNOISE format: magic plus the
// version/cpus/lost/count header, preceding the event section.
const headerSize = 8 + 24

// Byte offsets of the fixed header fields, used to report where
// validation failed.
const (
	offVersion = 8
	offCPUs    = 12
	offCount   = 24
)

// sizeHint returns the number of bytes remaining in r, or -1 when r
// cannot tell. It inspects r without consuming anything: in-memory
// readers report their unread length, seekable readers (files, section
// readers) are measured with a seek-and-restore. A *bufio.Reader hides
// its underlying source, so it always reports unknown — callers that
// want header-vs-size validation must measure before wrapping.
func sizeHint(r io.Reader) int64 {
	if _, ok := r.(*bufio.Reader); ok {
		return -1
	}
	if l, ok := r.(interface{ Len() int }); ok {
		return int64(l.Len())
	}
	if s, ok := r.(io.Seeker); ok {
		cur, err := s.Seek(0, io.SeekCurrent)
		if err != nil {
			return -1
		}
		end, err := s.Seek(0, io.SeekEnd)
		if err != nil {
			return -1
		}
		if _, err := s.Seek(cur, io.SeekStart); err != nil {
			return -1
		}
		return end - cur
	}
	return -1
}

// validateHeader checks every field of a fixed-format header against
// the format limits and, when the total input size is known (limit >=
// 0, counted from the start of the magic), against the bytes that
// actually follow. Nothing downstream may allocate based on a header
// field that has not passed this gate.
func validateHeader(version, cpus uint32, count uint64, limit int64) error {
	if version != 1 && version != FormatVersion {
		return corruptf(offVersion, nil, "trace: unsupported format version %d", version)
	}
	if cpus == 0 {
		return corruptf(offCPUs, nil, "trace: header declares zero CPUs")
	}
	if cpus > MaxCPUs {
		return limitf("trace: header declares %d CPUs, format maximum is %d", cpus, MaxCPUs)
	}
	// Overflow gate: beyond this, count*EventSize does not fit in int64
	// and no real file can hold the events anyway.
	if count > (math.MaxInt64-headerSize)/EventSize {
		return corruptf(offCount, nil, "trace: implausible event count %d", count)
	}
	if limit >= 0 {
		if need := int64(headerSize) + int64(count)*EventSize; need > limit {
			return corruptf(offCount, nil,
				"trace: header promises %d events (%d bytes) but only %d bytes follow the header",
				count, need-headerSize, limit-headerSize)
		}
	}
	return nil
}

// Decoder streams events out of a fixed-format (LTTNOISE) trace without
// materialising the whole event section in memory. It is the building
// block of the parallel analysis pipeline: the caller pulls batches with
// Next, routes them into per-CPU sub-streams, and finally reads the
// process table with Procs once every event has been consumed.
//
// A Decoder reads the uncompressed format only; use ReadAny for
// compressed traces (whose varint encoding forces sequential decoding
// of the whole stream anyway).
type Decoder struct {
	br      *bufio.Reader
	version uint32
	cpus    int
	lost    uint64
	count   uint64 // events promised by the header
	read    uint64 // events decoded so far
	sized   bool   // header count was validated against the input size
	buf     []byte // reused batch-read staging buffer (Next)
	procs   []ProcInfo
	gotProc bool
	broken  error // set when a failed Reset left the stream position undefined
}

// nextBatchEvents is how many wire records Next stages per bulk read:
// 512 × EventSize = 20 KiB, small enough to live in L1/L2 yet large
// enough that the bufio copy and call overhead amortise to noise.
const nextBatchEvents = 512

// NewDecoder reads the trace header from r and returns a streaming
// decoder positioned at the first event. The header is fully validated
// before anything is allocated from it: version, CPU count (within
// [1, MaxCPUs]) and — when r's size can be determined without consuming
// it — the promised event count against the bytes that actually follow.
func NewDecoder(r io.Reader) (*Decoder, error) {
	limit := sizeHint(r)
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	return newDecoder(br, limit)
}

// newDecoder parses and validates the header. limit is the total input
// size in bytes counted from the magic, or -1 when unknown.
func newDecoder(br *bufio.Reader, limit int64) (*Decoder, error) {
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, wrapRead(0, err, "trace: reading magic")
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, wrapRead(8, err, "trace: reading header")
	}
	version := binary.LittleEndian.Uint32(hdr[0:])
	cpus := binary.LittleEndian.Uint32(hdr[4:])
	count := binary.LittleEndian.Uint64(hdr[16:])
	if err := validateHeader(version, cpus, count, limit); err != nil {
		return nil, err
	}
	return &Decoder{
		br:      br,
		version: version,
		cpus:    int(cpus),
		lost:    binary.LittleEndian.Uint64(hdr[8:]),
		count:   count,
		sized:   limit >= 0,
	}, nil
}

// Reset re-arms the decoder to read a new trace from r, reusing the
// buffered reader and the batch staging buffer of the previous stream.
// It is the streaming-session-reuse primitive for long-lived
// connections that carry many traces back to back (the noised native
// protocol): header validation is identical to NewDecoder's, and on a
// validation error the decoder is left unusable until a Reset
// succeeds. If r is itself a *bufio.Reader it is adopted directly;
// otherwise the previous buffer is rebound to r, so a connection's
// worth of traces costs one buffer allocation total.
func (d *Decoder) Reset(r io.Reader) error {
	limit := sizeHint(r)
	br, ok := r.(*bufio.Reader)
	switch {
	case ok:
		// Adopt the caller's buffer (it may hold sniffed bytes).
	case d.br != nil:
		br = d.br
		br.Reset(r)
	default:
		br = bufio.NewReaderSize(r, 1<<16)
	}
	buf := d.buf
	nd, err := newDecoder(br, limit)
	if err != nil {
		// The buffered reader has already been rebound to r and some of
		// its bytes consumed, so the previous header state no longer
		// describes what the next read would return. A decoder that kept
		// an unfinished previous trace's counts here would decode the
		// NEW stream's bytes as the OLD trace's events — poison it
		// instead, so every read until a successful Reset reports the
		// failure rather than mixing two streams.
		d.broken = fmt.Errorf("trace: decoder unusable after failed Reset: %w", err)
		return err
	}
	*d = *nd
	d.buf = buf
	return nil
}

// CPUs returns the CPU count recorded in the trace header.
func (d *Decoder) CPUs() int { return d.cpus }

// Lost returns the lost-event counter recorded in the trace header.
func (d *Decoder) Lost() uint64 { return d.lost }

// EventCount returns the number of events the header promises.
func (d *Decoder) EventCount() uint64 { return d.count }

// Sized reports whether the header's event count was cross-checked
// against the input size at construction. When false (the input was a
// pipe or an opaque stream), the count is a claim, not a fact — readers
// should grow as they decode rather than preallocate it.
func (d *Decoder) Sized() bool { return d.sized }

// Remaining returns the number of events not yet decoded.
func (d *Decoder) Remaining() uint64 { return d.count - d.read }

// Next decodes up to len(dst) events into dst and returns how many were
// filled. It returns io.EOF (with n == 0) once the event section is
// exhausted; any other error means the stream is truncated (ErrCorrupt)
// or failed to read.
//
// Records are staged through one bulk ReadFull per nextBatchEvents
// rather than one per record: the per-event cost is a 40-byte decode,
// not a reader call (ROADMAP item 3).
//
//noisevet:hotpath
func (d *Decoder) Next(dst []Event) (int, error) {
	if d.broken != nil {
		return 0, d.broken
	}
	if d.read >= d.count {
		return 0, io.EOF
	}
	n := uint64(len(dst))
	if rem := d.count - d.read; n > rem {
		n = rem
	}
	if d.buf == nil {
		d.buf = make([]byte, nextBatchEvents*EventSize)
	}
	for filled := uint64(0); filled < n; {
		b := n - filled
		if b > nextBatchEvents {
			b = nextBatchEvents
		}
		m, err := io.ReadFull(d.br, d.buf[:b*EventSize])
		full := uint64(DecodeBatch(d.buf[:m], dst[filled:]))
		if err != nil {
			// Equivalent to the per-record loop: the failing record is
			// the first incomplete one, and a stream ending exactly on a
			// record boundary reads as io.EOF there, not UnexpectedEOF.
			got := filled + full
			if err == io.ErrUnexpectedEOF && uint64(m) == full*EventSize {
				err = io.EOF
			}
			off := int64(headerSize) + int64(d.read+got)*EventSize
			return int(got), wrapRead(off, err, "trace: reading event %d of %d", d.read+got, d.count)
		}
		filled += b
	}
	d.read += n
	return int(n), nil
}

// Skip discards every event record not yet decoded, leaving the
// decoder positioned at the process table. A budget-truncated streaming
// analysis uses it to reach Procs without decoding events it will not
// ingest; the records stream through a fixed buffer, so skipping costs
// I/O but no memory. A no-op when the event section is exhausted.
func (d *Decoder) Skip() error {
	if d.broken != nil {
		return d.broken
	}
	rem := d.count - d.read
	if rem == 0 {
		return nil
	}
	if _, err := io.CopyN(io.Discard, d.br, int64(rem)*EventSize); err != nil {
		off := int64(headerSize) + int64(d.read)*EventSize
		return wrapRead(off, err, "trace: skipping %d events", rem)
	}
	d.read = d.count
	return nil
}

// Procs reads the process table that follows the event section. It must
// be called only after Next has returned io.EOF or Skip has discarded
// the remainder; version-1 traces carry no table and yield nil.
func (d *Decoder) Procs() ([]ProcInfo, error) {
	if d.broken != nil {
		return nil, d.broken
	}
	if d.read < d.count {
		return nil, fmt.Errorf("trace: process table read with %d events still pending", d.count-d.read)
	}
	if d.gotProc {
		return d.procs, nil
	}
	if d.version >= 2 {
		procs, err := readProcs(d.br, int64(headerSize)+int64(d.count)*EventSize)
		if err != nil {
			return nil, err
		}
		d.procs = procs
	}
	d.gotProc = true
	return d.procs, nil
}

// DecodeEvent unpacks one wire record from the head of b, which must
// hold at least EventSize bytes. Together with RawTrace.Scan and the
// Peek accessors it lets an analyzer decode records lazily, skipping
// the fields — or whole records — it does not need.
//
//noisevet:hotpath
func DecodeEvent(b []byte) Event {
	b = b[:EventSize]
	return Event{
		TS:   int64(binary.LittleEndian.Uint64(b[0:])),
		CPU:  int32(binary.LittleEndian.Uint32(b[8:])),
		ID:   ID(binary.LittleEndian.Uint16(b[12:])),
		Arg1: int64(binary.LittleEndian.Uint64(b[16:])),
		Arg2: int64(binary.LittleEndian.Uint64(b[24:])),
		Arg3: int64(binary.LittleEndian.Uint64(b[32:])),
	}
}

// DecodeBatch bulk-decodes wire records from the head of b into dst and
// returns how many it filled: min(len(b)/EventSize, len(dst)). Trailing
// bytes short of a full record are ignored — the caller decides whether
// they are a truncation error or the next read's prefix. One call
// replaces a per-record DecodeEvent loop; the bounds checks and the
// slice-header arithmetic are hoisted out of the per-event work, which
// is what lets the streaming and parallel readers decode at memory
// speed (ROADMAP item 2).
//
//noisevet:hotpath
func DecodeBatch(b []byte, dst []Event) int {
	n := len(b) / EventSize
	if n > len(dst) {
		n = len(dst)
	}
	if n == 0 {
		return 0
	}
	b = b[:n*EventSize]
	dst = dst[:n]
	if eventRawCompatible {
		// One memmove: the wire layout IS the in-memory layout here
		// (verified at init; see decode_fast.go).
		decodeBatchRaw(b, dst, n)
		return n
	}
	for i := range dst {
		r := b[i*EventSize : i*EventSize+EventSize : i*EventSize+EventSize]
		dst[i] = Event{
			TS:   int64(binary.LittleEndian.Uint64(r[0:])),
			CPU:  int32(binary.LittleEndian.Uint32(r[8:])),
			ID:   ID(binary.LittleEndian.Uint16(r[12:])),
			Arg1: int64(binary.LittleEndian.Uint64(r[16:])),
			Arg2: int64(binary.LittleEndian.Uint64(r[24:])),
			Arg3: int64(binary.LittleEndian.Uint64(r[32:])),
		}
	}
	return n
}

// PeekTS reads just the timestamp of the wire record at the head of b.
//
//noisevet:hotpath
func PeekTS(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b[0:8])) }

// PeekCPU reads just the CPU of the wire record at the head of b.
//
//noisevet:hotpath
func PeekCPU(b []byte) int32 { return int32(binary.LittleEndian.Uint32(b[8:12])) }

// PeekID reads just the event ID of the wire record at the head of b.
//
//noisevet:hotpath
func PeekID(b []byte) ID { return ID(binary.LittleEndian.Uint16(b[12:14])) }

// RawTrace is random access to a fixed-format trace without decoding
// it: the validated header plus the byte layout of the event section.
// It exists for analyzers that want to scan the raw records themselves
// — deciding per record, via the Peek accessors, whether a full
// DecodeEvent is worth it — instead of materialising a []Event first.
type RawTrace struct {
	ra      io.ReaderAt
	size    int64
	version uint32
	cpus    int
	lost    uint64
	count   uint64
}

// OpenRaw validates the header of a fixed-format trace held in a
// random-access byte source of the given total size. Like ReadParallel,
// the event count promised by the header is checked against the size
// (overflow-safe) before anything is allocated from it.
func OpenRaw(ra io.ReaderAt, size int64) (*RawTrace, error) {
	hr := io.NewSectionReader(ra, 0, size)
	d, err := newDecoder(bufio.NewReaderSize(hr, headerSize), size)
	if err != nil {
		return nil, err
	}
	return &RawTrace{
		ra: ra, size: size,
		version: d.version, cpus: d.CPUs(), lost: d.Lost(), count: d.EventCount(),
	}, nil
}

// CPUs returns the CPU count recorded in the trace header.
func (t *RawTrace) CPUs() int { return t.cpus }

// Lost returns the lost-event counter recorded in the trace header.
func (t *RawTrace) Lost() uint64 { return t.lost }

// EventCount returns the number of events the header promises.
func (t *RawTrace) EventCount() uint64 { return t.count }

// BytesReaderAt is an in-memory trace image. It satisfies io.ReaderAt
// like bytes.NewReader would, but RawTrace.Scan recognises it and hands
// out subslices directly instead of copying every chunk through a
// staging buffer — worth ~2× on the partition passes of AnalyzeRaw.
type BytesReaderAt []byte

// ReadAt implements io.ReaderAt over the in-memory image.
func (b BytesReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > int64(len(b)) {
		return 0, io.EOF
	}
	n := copy(p, b[off:])
	if n < len(p) {
		return n, io.ErrUnexpectedEOF
	}
	return n, nil
}

// Scan reads the raw records [lo, hi) in large chunks and passes each
// chunk's bytes — always a whole number of EventSize records, starting
// at record `start` — to fn. The chunk slice is only valid during the
// callback. Concurrent Scans over disjoint ranges are safe when the
// underlying reader supports concurrent ReadAt (files and bytes.Readers
// do). A short read inside the validated event section reports
// ErrCorrupt: the file shrank after OpenRaw measured it.
//
//noisevet:hotpath
func (t *RawTrace) Scan(lo, hi uint64, fn func(start uint64, chunk []byte) error) error {
	if hi > t.count {
		hi = t.count
	}
	if lo >= hi {
		return nil
	}
	if img, ok := t.ra.(BytesReaderAt); ok {
		b := img[headerSize+int64(lo)*EventSize : headerSize+int64(hi)*EventSize]
		return fn(lo, b)
	}
	const chunk = 1 << 14 // events per read
	buf := make([]byte, chunk*EventSize)
	for i := lo; i < hi; {
		n := uint64(chunk)
		if rem := hi - i; n > rem {
			n = rem
		}
		b := buf[:n*EventSize]
		off := int64(headerSize) + int64(i)*EventSize
		if _, err := t.ra.ReadAt(b, off); err != nil {
			return wrapRead(off, err, "trace: reading events %d..%d of %d", i, i+n, t.count)
		}
		if err := fn(i, b); err != nil {
			return err
		}
		i += n
	}
	return nil
}

// Event decodes the single record at index i, which must be below
// EventCount.
//
//noisevet:hotpath
func (t *RawTrace) Event(i uint64) (Event, error) {
	if i >= t.count {
		return Event{}, errEventRange(i, t.count)
	}
	var rec [EventSize]byte
	off := int64(headerSize) + int64(i)*EventSize
	if _, err := t.ra.ReadAt(rec[:], off); err != nil {
		return Event{}, wrapRead(off, err, "trace: reading event %d of %d", i, t.count)
	}
	return DecodeEvent(rec[:]), nil
}

// errEventRange builds the out-of-range error for RawTrace.Event,
// outlined so the accessor's hot body performs no formatting.
//
//noisevet:coldpath
func errEventRange(i, count uint64) error {
	return fmt.Errorf("trace: event index %d out of range (%d events)", i, count)
}

// Procs reads the process table that follows the event section;
// version-1 traces carry no table and yield nil.
func (t *RawTrace) Procs() ([]ProcInfo, error) {
	if t.version < 2 {
		return nil, nil
	}
	off := int64(headerSize) + int64(t.count)*EventSize
	return readProcs(bufio.NewReaderSize(io.NewSectionReader(t.ra, off, t.size-off), 1<<16), off)
}

// ReadParallel decodes a fixed-format trace of the given total size from
// a random-access reader, splitting the fixed-width event section across
// workers (≤ 0 means GOMAXPROCS). The result is identical to Read on the
// same bytes: records are fixed-width, so each worker decodes a disjoint
// contiguous range directly into its slot of the shared event slice.
//
// Unlike Read on an opaque stream, the event count promised by the
// header is always validated against the file size before allocation,
// so a corrupt header cannot cause an implausible allocation.
//
// Cancelling ctx stops the decode at the next read chunk: every worker
// is joined before returning (no goroutine leaks) and the error wraps
// both ErrCancelled and ctx.Err().
//
//noisevet:hotpath
func ReadParallel(ctx context.Context, ra io.ReaderAt, size int64, workers int) (*Trace, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rt, err := OpenRaw(ra, size)
	if err != nil {
		return nil, err
	}
	// Safe: OpenRaw bounded count by size/EventSize.
	count := rt.count
	tr := &Trace{CPUs: rt.cpus, Lost: rt.lost, Events: make([]Event, count)}

	if workers > int(count/4096)+1 {
		workers = int(count/4096) + 1
	}
	per := count / uint64(workers)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		lo := uint64(w) * per
		hi := lo + per
		if w == workers-1 {
			hi = count
		}
		wg.Add(1)
		go func(w int, lo, hi uint64) {
			defer wg.Done()
			// Chunked reads decoded straight out of the buffer: far
			// fewer reader calls and bounds checks than a per-record
			// io.ReadFull loop.
			errs[w] = rt.Scan(lo, hi, func(start uint64, b []byte) error {
				if err := ctx.Err(); err != nil {
					return err
				}
				DecodeBatch(b, tr.Events[start:])
				return nil
			})
		}(w, lo, hi)
	}
	wg.Wait()
	if ctxErr := ctx.Err(); ctxErr != nil {
		return nil, cancelled(ctxErr)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	procs, err := rt.Procs()
	if err != nil {
		return nil, err
	}
	tr.Procs = procs
	return tr, nil
}
