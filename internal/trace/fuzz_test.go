package trace

import (
	"bytes"
	"testing"
)

// Fuzzing the decoders: arbitrary bytes must never panic or allocate
// unboundedly — they either parse or return an error.

func FuzzRead(f *testing.F) {
	tr := &Trace{CPUs: 2, Events: []Event{
		{TS: 1, CPU: 0, ID: EvIRQEntry, Arg1: 1},
		{TS: 2, CPU: 1, ID: EvIRQExit, Arg1: 1},
	}}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("LTTNOISE"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err == nil && got == nil {
			t.Fatal("nil trace without error")
		}
	})
}

func FuzzReadCompressed(f *testing.F) {
	tr := &Trace{CPUs: 2, Events: []Event{
		{TS: 1, CPU: 0, ID: EvIRQEntry, Arg1: 1},
		{TS: 5, CPU: 1, ID: EvIRQExit, Arg1: -1},
	}}
	var buf bytes.Buffer
	if err := WriteCompressed(&buf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("LTTNOISZ"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCompressed(bytes.NewReader(data))
		if err == nil && got == nil {
			t.Fatal("nil trace without error")
		}
	})
}

func FuzzReadAny(f *testing.F) {
	f.Add([]byte("LTTNOISE"))
	f.Add([]byte("LTTNOISZ"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ReadAny(bytes.NewReader(data))
	})
}
