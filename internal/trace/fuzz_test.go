package trace

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// Fuzzing the decoders: arbitrary bytes must never panic or allocate
// unboundedly — they either parse or return an error.

func FuzzRead(f *testing.F) {
	tr := &Trace{CPUs: 2, Events: []Event{
		{TS: 1, CPU: 0, ID: EvIRQEntry, Arg1: 1},
		{TS: 2, CPU: 1, ID: EvIRQExit, Arg1: 1},
	}}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("LTTNOISE"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err == nil && got == nil {
			t.Fatal("nil trace without error")
		}
	})
}

func FuzzReadCompressed(f *testing.F) {
	tr := &Trace{CPUs: 2, Events: []Event{
		{TS: 1, CPU: 0, ID: EvIRQEntry, Arg1: 1},
		{TS: 5, CPU: 1, ID: EvIRQExit, Arg1: -1},
	}}
	var buf bytes.Buffer
	if err := WriteCompressed(&buf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("LTTNOISZ"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCompressed(bytes.NewReader(data))
		if err == nil && got == nil {
			t.Fatal("nil trace without error")
		}
	})
}

func FuzzReadAny(f *testing.F) {
	f.Add([]byte("LTTNOISE"))
	f.Add([]byte("LTTNOISZ"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := ReadAny(bytes.NewReader(data)); err != nil && !IsInputError(err) {
			t.Fatalf("untyped error: %v", err)
		}
	})
}

// seedInputs is the deliberately hostile seed set shared by the
// decoder-surface fuzz targets and their checked-in corpora: a valid
// trace, truncated prefixes, and headers whose count/cpus fields lie.
func seedInputs() [][]byte {
	tr := &Trace{CPUs: 2, Events: []Event{
		{TS: 1, CPU: 0, ID: EvIRQEntry, Arg1: 1},
		{TS: 2, CPU: 1, ID: EvIRQExit, Arg1: 1},
	}, Procs: []ProcInfo{{PID: 9, Kind: ProcApp, Name: "app"}}}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		panic(err)
	}
	valid := buf.Bytes()
	lyingCount := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(lyingCount[offCount:], 1<<62)
	zeroCPUs := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(zeroCPUs[offCPUs:], 0)
	return [][]byte{
		valid,
		valid[:len(valid)-5],
		valid[:headerSize],
		lyingCount,
		zeroCPUs,
		[]byte("LTTNOISE"),
		{},
	}
}

// fuzzSeeds registers the shared hostile seed set with a fuzz target.
func fuzzSeeds(f *testing.F) {
	f.Helper()
	for _, in := range seedInputs() {
		f.Add(in)
	}
}

// FuzzDecoder drives the streaming Decoder — including the unsized
// path, where the header's count cannot be cross-checked against the
// input size — asserting the panic-free typed-error contract.
func FuzzDecoder(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, sized := range []bool{true, false} {
			var r io.Reader = bytes.NewReader(data)
			if !sized {
				r = io.LimitReader(r, int64(len(data)))
			}
			d, err := NewDecoder(r)
			if err != nil {
				if !IsInputError(err) {
					t.Fatalf("sized=%v: untyped NewDecoder error: %v", sized, err)
				}
				continue
			}
			batch := make([]Event, 256)
			for {
				_, err := d.Next(batch)
				if err == io.EOF {
					break
				}
				if err != nil {
					if !IsInputError(err) {
						t.Fatalf("sized=%v: untyped Next error: %v", sized, err)
					}
					return
				}
			}
			if _, err := d.Procs(); err != nil && !IsInputError(err) {
				t.Fatalf("sized=%v: untyped Procs error: %v", sized, err)
			}
		}
	})
}

// FuzzOpenRaw drives the random-access reader and everything hanging
// off it: Scan over the full event section, individual Event decoding,
// and the trailing process table.
func FuzzOpenRaw(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		rt, err := OpenRaw(BytesReaderAt(data), int64(len(data)))
		if err != nil {
			if !IsInputError(err) {
				t.Fatalf("untyped OpenRaw error: %v", err)
			}
			return
		}
		err = rt.Scan(0, rt.EventCount(), func(start uint64, chunk []byte) error {
			return nil
		})
		if err != nil && !IsInputError(err) {
			t.Fatalf("untyped Scan error: %v", err)
		}
		if n := rt.EventCount(); n > 0 {
			if _, err := rt.Event(n - 1); err != nil && !IsInputError(err) {
				t.Fatalf("untyped Event error: %v", err)
			}
		}
		if _, err := rt.Procs(); err != nil && !IsInputError(err) {
			t.Fatalf("untyped Procs error: %v", err)
		}
	})
}

// FuzzReadParallel drives the multi-worker reader, whose workers must
// agree on the typed-error contract even when a corrupt record is
// found mid-shard.
func FuzzReadParallel(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadParallel(context.Background(), BytesReaderAt(data), int64(len(data)), 3)
		if err != nil {
			if !IsInputError(err) {
				t.Fatalf("untyped ReadParallel error: %v", err)
			}
			return
		}
		if got == nil {
			t.Fatal("nil trace without error")
		}
	})
}

// TestFuzzCorpus keeps the checked-in seed corpora under testdata/fuzz
// in sync with seedInputs, so `go test` (which replays corpus files)
// always covers the hostile headers even without -fuzz. Run with
// OSNOISE_REGEN_CORPUS=1 to rewrite the files after changing the seeds.
func TestFuzzCorpus(t *testing.T) {
	targets := []string{"FuzzDecoder", "FuzzOpenRaw", "FuzzReadParallel"}
	regen := os.Getenv("OSNOISE_REGEN_CORPUS") != ""
	for _, target := range targets {
		dir := filepath.Join("testdata", "fuzz", target)
		for i, in := range seedInputs() {
			path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			want := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", in)
			if regen {
				if err := os.MkdirAll(dir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%s: %v (regenerate with OSNOISE_REGEN_CORPUS=1)", path, err)
			}
			if string(got) != want {
				t.Fatalf("%s is stale (regenerate with OSNOISE_REGEN_CORPUS=1)", path)
			}
		}
	}
}
