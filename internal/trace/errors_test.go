package trace

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

func TestWireErrorFamilies(t *testing.T) {
	c := corruptf(40, io.ErrUnexpectedEOF, "trace: event %d of %d: reading ts", 1, 9)
	if !errors.Is(c, ErrCorrupt) {
		t.Fatal("corruptf error not in the ErrCorrupt family")
	}
	if errors.Is(c, ErrLimit) {
		t.Fatal("corruptf error leaked into the ErrLimit family")
	}
	if !errors.Is(c, io.ErrUnexpectedEOF) {
		t.Fatal("cause not reachable through Unwrap")
	}
	if Offset(c) != 40 {
		t.Fatalf("offset %d, want 40", Offset(c))
	}
	if msg := c.Error(); !strings.Contains(msg, "byte offset 40") || !strings.Contains(msg, "event 1 of 9") {
		t.Fatalf("unhelpful message: %q", msg)
	}

	l := limitf("trace: header declares %d CPUs", 1<<20)
	if !errors.Is(l, ErrLimit) || errors.Is(l, ErrCorrupt) {
		t.Fatalf("limitf family wrong: %v", l)
	}
	if Offset(l) != -1 {
		t.Fatalf("limit errors carry no offset, got %d", Offset(l))
	}

	for _, err := range []error{c, l, ErrBadMagic, fmt.Errorf("path: %w", c)} {
		if !IsInputError(err) {
			t.Errorf("IsInputError(%v) = false", err)
		}
	}
	for _, err := range []error{nil, io.EOF, errors.New("disk on fire")} {
		if IsInputError(err) {
			t.Errorf("IsInputError(%v) = true", err)
		}
	}
}

func TestWrapReadClassification(t *testing.T) {
	// Truncation-shaped causes become corruption; other I/O failures
	// stay out of the input-error families (the file system, not the
	// file, is at fault) while remaining unwrappable.
	if err := wrapRead(8, io.ErrUnexpectedEOF, "trace: reading header"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unexpected EOF not classified corrupt: %v", err)
	}
	if err := wrapRead(0, io.EOF, "trace: reading magic"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("EOF not classified corrupt: %v", err)
	}
	cause := errors.New("read /dev/sda: input/output error")
	err := wrapRead(64, cause, "trace: reading event")
	if IsInputError(err) {
		t.Fatalf("I/O failure misclassified as input error: %v", err)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("cause lost: %v", err)
	}
}

func TestErrBadMagicIdentity(t *testing.T) {
	// Existing callers compare with ==; the sentinel must stay a single
	// comparable value as well as a member of the ErrCorrupt family.
	if _, err := Read(strings.NewReader("XXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXX")); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic identity", err)
	}
	if !errors.Is(ErrBadMagic, ErrCorrupt) {
		t.Fatal("ErrBadMagic not in the ErrCorrupt family")
	}
}
