package trace_test

import (
	"bytes"
	"fmt"
	"io"

	"osnoise/internal/trace"
)

// ExampleNewDecoder encodes a three-event trace and streams it back in
// fixed-size batches, the access pattern of the parallel analysis
// pipeline: no more than one batch of events is in memory at a time.
func ExampleNewDecoder() {
	tr := &trace.Trace{CPUs: 2, Events: []trace.Event{
		{TS: 100, CPU: 0, ID: trace.EvIRQEntry, Arg1: trace.IRQTimer},
		{TS: 220, CPU: 1, ID: trace.EvTrapEntry, Arg1: trace.TrapPageFault},
		{TS: 350, CPU: 0, ID: trace.EvIRQExit, Arg1: trace.IRQTimer},
	}}
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		panic(err)
	}

	d, err := trace.NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		panic(err)
	}
	batch := make([]trace.Event, 2)
	for {
		n, err := d.Next(batch)
		for _, ev := range batch[:n] {
			fmt.Printf("cpu%d %s @%dns\n", ev.CPU, ev.ID, ev.TS)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			panic(err)
		}
	}
	// Output:
	// cpu0 irq_entry @100ns
	// cpu1 trap_entry @220ns
	// cpu0 irq_exit @350ns
}
