package ftq

import (
	"fmt"
	"io"
	"time"
)

// NativeSample is one quantum measurement on the host machine.
type NativeSample struct {
	Start   time.Duration // offset from run start
	Ops     int64
	Missing int64 // Nmax - Ops, in basic operations
}

// NativeConfig parameterises a host-machine FTQ run.
type NativeConfig struct {
	Quantum  time.Duration // default 1 ms
	Duration time.Duration // default 2 s
	// OpsPerCheck is how many basic operations run between clock reads;
	// larger values lower sampling overhead but coarsen the count.
	OpsPerCheck int64
}

// NativeResult holds a completed host run.
type NativeResult struct {
	Config   NativeConfig
	Nmax     int64
	OpNanos  float64 // calibrated cost of one basic operation
	Samples  []NativeSample
	Duration time.Duration
}

// sink prevents the basic-operation loop from being optimised away.
var sink uint64

// basicOps performs n iterations of FTQ's basic operation (a simple
// integer update, as in the original benchmark).
func basicOps(n int64) {
	s := sink
	for i := int64(0); i < n; i++ {
		s = s*2862933555777941757 + 3037000493
	}
	sink = s
}

// RunNative executes FTQ on the calling goroutine, measuring the host
// OS's real noise. It is not deterministic (by design).
func RunNative(cfg NativeConfig) *NativeResult {
	if cfg.Quantum <= 0 {
		cfg.Quantum = time.Millisecond
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.OpsPerCheck <= 0 {
		cfg.OpsPerCheck = 2000
	}
	res := &NativeResult{Config: cfg}

	// Calibrate: how many basic operations fit one quantum on a quiet
	// run? Take the best of several trials to approximate the
	// noise-free maximum.
	var best int64
	for trial := 0; trial < 5; trial++ {
		ops := countForQuantum(cfg)
		if ops > best {
			best = ops
		}
	}
	res.Nmax = best
	if best > 0 {
		res.OpNanos = float64(cfg.Quantum.Nanoseconds()) / float64(best)
	}

	start := time.Now()
	for time.Since(start) < cfg.Duration {
		qStart := time.Since(start)
		ops := countForQuantum(cfg)
		missing := res.Nmax - ops
		if missing < 0 {
			// A quantum beat the calibration: raise Nmax retroactively
			// is not possible per-sample, so clamp at zero.
			missing = 0
		}
		res.Samples = append(res.Samples, NativeSample{Start: qStart, Ops: ops, Missing: missing})
	}
	res.Duration = time.Since(start)
	return res
}

// countForQuantum runs basic operations until one quantum elapses and
// returns how many completed.
func countForQuantum(cfg NativeConfig) int64 {
	var ops int64
	deadline := time.Now().Add(cfg.Quantum)
	for time.Now().Before(deadline) {
		basicOps(cfg.OpsPerCheck)
		ops += cfg.OpsPerCheck
	}
	return ops
}

// WriteCSV emits "start_us,ops,missing_ops,missing_ns" rows.
func (r *NativeResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "start_us,ops,missing_ops,missing_ns"); err != nil {
		return err
	}
	for _, s := range r.Samples {
		missNS := float64(s.Missing) * r.OpNanos
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%.0f\n",
			s.Start.Microseconds(), s.Ops, s.Missing, missNS); err != nil {
			return err
		}
	}
	return nil
}
