// Package ftq implements the Fixed Time Quantum micro-benchmark of
// Sottile and Minnich, which the paper uses to validate LTTNG-NOISE
// (§III): the benchmark counts how many basic operations complete in
// each fixed time quantum; work missing from a quantum is an indirect
// measurement of OS noise.
//
// Two implementations are provided:
//
//   - a simulated FTQ that runs as a workload on the simulated node,
//     deriving its work counts from the task's own-execution time — so
//     its measurements can be compared quantum by quantum against the
//     tracer-based synthetic noise chart (Figure 1);
//   - a native FTQ that runs on the host machine (cmd/ftq), showing the
//     method on real hardware.
//
// FTQ reports missing work in *whole* basic operations, so it slightly
// overestimates noise (a partially completed operation counts as
// missing); the paper discusses exactly this discretisation artefact
// when comparing Figures 1a and 1b. The simulated implementation
// reproduces it faithfully via integer division.
package ftq

import (
	"fmt"
	"strings"

	"osnoise/internal/sim"
	"osnoise/internal/trace"
	"osnoise/internal/workload"
)

// Sample is one FTQ quantum measurement.
type Sample struct {
	Start sim.Time // quantum start (virtual ns)
	End   sim.Time // quantum end; jitter pushes it past Start+Quantum
	Ops   int64    // basic operations completed
	// MissingNS is the noise estimate: work missing from the timed
	// window, in whole operations. Because operations are integral,
	// MissingNS slightly overestimates the true interruption time.
	MissingNS int64
}

// Config parameterises a simulated FTQ run.
type Config struct {
	Quantum  sim.Duration // default 1 ms
	OpTime   sim.Duration // cost of one basic operation; default 10 ns
	Duration sim.Duration // default 5 s
	Seed     uint64
	// TracerEnabled runs LTTNG-NOISE alongside FTQ so the two
	// measurements can be compared (Fig. 1); disable for a pure run.
	TracerEnabled bool
}

// DefaultConfig returns the configuration used for Figure 1.
func DefaultConfig(seed uint64) Config {
	return Config{
		Quantum:       sim.Millisecond,
		OpTime:        10 * sim.Nanosecond,
		Duration:      5 * sim.Second,
		Seed:          seed,
		TracerEnabled: true,
	}
}

// Result is a completed simulated FTQ run.
type Result struct {
	Config  Config
	Samples []Sample
	Run     *workload.Run // the underlying workload run
	Trace   *trace.Trace  // the LTTNG-NOISE trace of the same run (nil if disabled)
	Nmax    int64
}

// Execute runs FTQ on the simulated node and returns its measurements
// plus the workload run (whose trace, if enabled, feeds the synthetic
// noise chart for the same execution).
func Execute(cfg Config) *Result {
	if cfg.Quantum <= 0 {
		cfg.Quantum = sim.Millisecond
	}
	if cfg.OpTime <= 0 {
		cfg.OpTime = 10 * sim.Nanosecond
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * sim.Second
	}
	prof := workload.FTQProfile()
	run := workload.New(prof, workload.Options{
		Duration: cfg.Duration,
		Seed:     cfg.Seed,
		CPUs:     1,
		NoTrace:  !cfg.TracerEnabled,
	})
	res := &Result{Config: cfg, Run: run, Nmax: int64(cfg.Quantum / cfg.OpTime)}

	task := run.Ranks[0]
	node := run.Node
	eng := node.Engine()

	// The FTQ loop: it reads the clock only while executing its own
	// code, so a quantum boundary falling inside a kernel interruption
	// is observed late — exactly as on real hardware.
	var sampleAt func(start sim.Time, userAtStart sim.Time)
	sampleAt = func(start sim.Time, userAtStart sim.Time) {
		eng.At(start+cfg.Quantum, sim.PrioTask, func(sim.Time) {
			node.WhenUser(task, func(now sim.Time) {
				task.CPU().SyncAccounting(now)
				userNow := task.UserNS()
				userDelta := userNow - userAtStart
				// FTQ counts whole operations against the window it
				// actually timed (a boundary observed late stretches the
				// window). Both counts are floored, so partial operations
				// are lost — the discretisation that makes FTQ slightly
				// overestimate noise (§III-C).
				windowOps := int64(now-start) / int64(cfg.OpTime)
				ops := int64(userDelta) / int64(cfg.OpTime)
				missing := (windowOps - ops) * int64(cfg.OpTime)
				if missing < 0 {
					missing = 0
				}
				res.Samples = append(res.Samples, Sample{
					Start: start, End: now, Ops: ops, MissingNS: missing,
				})
				node.MarkQuantum(task, ops)
				if now+cfg.Quantum <= cfg.Duration {
					sampleAt(now, userNow)
				}
			})
		})
	}
	sampleAt(0, 0)
	res.Trace = run.Execute()
	return res
}

// TotalMissingNS sums the noise FTQ observed.
func (r *Result) TotalMissingNS() int64 {
	var total int64
	for _, s := range r.Samples {
		total += s.MissingNS
	}
	return total
}

// NoisySamples returns the samples whose missing work exceeds threshold
// nanoseconds (the spikes of Figure 1a).
func (r *Result) NoisySamples(thresholdNS int64) []Sample {
	var out []Sample
	for _, s := range r.Samples {
		if s.MissingNS > thresholdNS {
			out = append(out, s)
		}
	}
	return out
}

// Series renders the (time, missing ns) series for export/plotting.
func (r *Result) Series() [][]float64 {
	out := make([][]float64, len(r.Samples))
	for i, s := range r.Samples {
		out[i] = []float64{s.Start.Seconds(), float64(s.MissingNS)}
	}
	return out
}

// String summarises the run.
func (r *Result) String() string {
	var sb strings.Builder
	noisy := r.NoisySamples(0)
	fmt.Fprintf(&sb, "FTQ: %d quanta of %v (Nmax=%d ops), %d with missing work, total noise %.3f ms\n",
		len(r.Samples), r.Config.Quantum, r.Nmax, len(noisy), float64(r.TotalMissingNS())/1e6)
	return sb.String()
}
