package ftq

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"osnoise/internal/noise"
	"osnoise/internal/sim"
)

func TestSimulatedFTQBasics(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.Duration = 2 * sim.Second
	res := Execute(cfg)
	// ~2000 quanta of 1 ms in 2 s (jitter slightly reduces the count).
	if len(res.Samples) < 1900 || len(res.Samples) > 2001 {
		t.Fatalf("samples = %d, want ~2000", len(res.Samples))
	}
	if res.Nmax != 100000 {
		t.Fatalf("Nmax = %d, want 100000 (1 ms / 10 ns)", res.Nmax)
	}
	for i, s := range res.Samples {
		windowOps := (int64(s.End) - int64(s.Start)) / int64(cfg.OpTime)
		if s.Ops < 0 || s.Ops > windowOps {
			t.Fatalf("sample %d ops %d outside [0, %d]", i, s.Ops, windowOps)
		}
		if s.MissingNS != (windowOps-s.Ops)*int64(cfg.OpTime) {
			t.Fatalf("sample %d inconsistent missing work", i)
		}
		if s.End < s.Start {
			t.Fatalf("sample %d ends before it starts", i)
		}
	}
	// Noise must be visible: the timer interrupts alone guarantee
	// missing work in many quanta.
	if noisy := res.NoisySamples(0); len(noisy) < 100 {
		t.Fatalf("only %d noisy quanta", len(noisy))
	}
	if res.TotalMissingNS() <= 0 {
		t.Fatal("no noise observed")
	}
	if !strings.Contains(res.String(), "FTQ") {
		t.Fatal("String() malformed")
	}
}

// The paper's §III-C validation: FTQ's total noise estimate must agree
// with the tracer's direct measurement, with FTQ slightly OVERestimating
// because it counts whole missing operations.
func TestFTQAgreesWithTracer(t *testing.T) {
	cfg := DefaultConfig(6)
	cfg.Duration = 3 * sim.Second
	res := Execute(cfg)
	r := noise.Analyze(res.Trace, res.Run.AnalysisOptions())

	ftqNoise := float64(res.TotalMissingNS())
	tracerNoise := float64(r.TotalNoiseNS)
	if tracerNoise <= 0 {
		t.Fatal("tracer saw no noise")
	}
	ratio := ftqNoise / tracerNoise
	if ratio < 0.98 || ratio > 1.35 {
		t.Fatalf("FTQ/tracer noise ratio %.3f outside [0.98, 1.35] (ftq=%.0f tracer=%.0f)",
			ratio, ftqNoise, tracerNoise)
	}
}

// The dominant interruption cadence in FTQ must be the timer tick: ~100
// interruptions/second on its CPU.
func TestFTQTimerSpikes(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.Duration = 2 * sim.Second
	res := Execute(cfg)
	// Quanta with >= 2 µs missing work: ticks (irq+softirq ≈ 4 µs each).
	spikes := res.NoisySamples(2000)
	perSec := float64(len(spikes)) / cfg.Duration.Seconds()
	if perSec < 80 || perSec > 160 {
		t.Fatalf("spike rate %.0f/s, want ~100 (timer ticks)", perSec)
	}
}

func TestFTQDeterminism(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Duration = 500 * sim.Millisecond
	a, b := Execute(cfg), Execute(cfg)
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestFTQWithoutTracer(t *testing.T) {
	cfg := DefaultConfig(9)
	cfg.Duration = 500 * sim.Millisecond
	cfg.TracerEnabled = false
	res := Execute(cfg)
	if len(res.Samples) == 0 {
		t.Fatal("no samples without tracer")
	}
	if res.Run.Session != nil {
		t.Fatal("session exists despite TracerEnabled=false")
	}
}

func TestFTQSeries(t *testing.T) {
	cfg := DefaultConfig(10)
	cfg.Duration = 200 * sim.Millisecond
	res := Execute(cfg)
	series := res.Series()
	if len(series) != len(res.Samples) {
		t.Fatalf("series length %d != samples %d", len(series), len(res.Samples))
	}
	for i := 1; i < len(series); i++ {
		if series[i][0] <= series[i-1][0] {
			t.Fatal("series not time-ordered")
		}
	}
}

func TestNativeFTQSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("native FTQ timing test skipped in -short mode")
	}
	res := RunNative(NativeConfig{
		Quantum:  500 * time.Microsecond,
		Duration: 100 * time.Millisecond,
	})
	if res.Nmax <= 0 {
		t.Fatal("calibration failed")
	}
	if len(res.Samples) < 50 {
		t.Fatalf("samples = %d", len(res.Samples))
	}
	for _, s := range res.Samples {
		if s.Missing < 0 || s.Ops < 0 {
			t.Fatalf("negative sample: %+v", s)
		}
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(res.Samples)+1 {
		t.Fatalf("csv lines %d, want %d", lines, len(res.Samples)+1)
	}
}

// End to end: the FTQ run's dominant detected noise period is the
// HZ=100 timer tick (the automated §V-B "equidistant events" check).
func TestDetectPeriodsFindsTick(t *testing.T) {
	cfg := DefaultConfig(12)
	cfg.Duration = 3 * sim.Second
	res := Execute(cfg)
	r := noise.Analyze(res.Trace, res.Run.AnalysisOptions())
	cands := noise.DetectPeriods(r, 0, 1_000_000, 50_000_000, 3)
	if len(cands) == 0 {
		t.Fatal("no periods found in FTQ trace")
	}
	if cands[0].PeriodNS < 9_000_000 || cands[0].PeriodNS > 11_000_000 {
		t.Fatalf("dominant period %d ns, want the 10 ms tick (all: %+v)", cands[0].PeriodNS, cands)
	}
}
