package inject

import (
	"testing"

	"osnoise/internal/noise"
	"osnoise/internal/sim"
)

// The analyzer must recover injected page faults EXACTLY: count, total,
// min, max — the pipeline conserves every nanosecond.
func TestPageFaultGroundTruthExact(t *testing.T) {
	res := Run([]Spec{{
		Kind: PageFault, Start: sim.Millisecond,
		Period: 2 * sim.Millisecond, Dur: 3000, Count: 200,
	}}, Options{Duration: sim.Second, Seed: 1})
	truth := res.Truths[0]
	if truth.Injected != 200 {
		t.Fatalf("injected %d, want 200", truth.Injected)
	}
	r := res.Analyze()
	ks := r.Stats(noise.KeyPageFault)
	if int(ks.Summary.Count) != truth.Injected {
		t.Fatalf("analyzer count %d, truth %d", ks.Summary.Count, truth.Injected)
	}
	if int64(ks.Summary.Sum) != truth.TotalNS {
		t.Fatalf("analyzer total %.0f, truth %d", ks.Summary.Sum, truth.TotalNS)
	}
	if ks.Summary.Min != 3000 || ks.Summary.Max != 3000 {
		t.Fatalf("durations distorted: min %d max %d", ks.Summary.Min, ks.Summary.Max)
	}
	if r.Breakdown[noise.CatPageFault] != truth.TotalNS {
		t.Fatalf("breakdown %d, truth %d", r.Breakdown[noise.CatPageFault], truth.TotalNS)
	}
}

func TestIRQGroundTruthExact(t *testing.T) {
	res := Run([]Spec{{
		Kind: NetIRQ, Start: 500 * sim.Microsecond,
		Period: sim.Millisecond, Dur: 1500, Count: 500,
	}}, Options{Duration: sim.Second, Seed: 2})
	truth := res.Truths[0]
	r := res.Analyze()
	ks := r.Stats(noise.KeyNetIRQ)
	if int(ks.Summary.Count) != truth.Injected {
		t.Fatalf("count %d vs %d", ks.Summary.Count, truth.Injected)
	}
	if int64(ks.Summary.Sum) != truth.TotalNS {
		t.Fatalf("total %.0f vs %d", ks.Summary.Sum, truth.TotalNS)
	}
}

// Preemption windows must equal the daemon's exact service time.
func TestPreemptionGroundTruthExact(t *testing.T) {
	res := Run([]Spec{{
		Kind: Preemption, Start: 10 * sim.Millisecond,
		Period: 20 * sim.Millisecond, Dur: 50_000, Count: 40,
	}}, Options{Duration: sim.Second, Seed: 3})
	truth := res.Truths[0]
	r := res.Analyze()
	ks := r.Stats(noise.KeyPreemption)
	if int(ks.Summary.Count) != truth.Injected {
		t.Fatalf("count %d vs %d", ks.Summary.Count, truth.Injected)
	}
	// Each preemption span = the daemon's exact 50 µs service time
	// (schedule spans are charged to their own key, not the window).
	if ks.Summary.Min != 50_000 || ks.Summary.Max != 50_000 {
		t.Fatalf("preemption spans [%d, %d], want exactly 50000", ks.Summary.Min, ks.Summary.Max)
	}
	if int64(ks.Summary.Sum) != truth.TotalNS {
		t.Fatalf("total %.0f vs %d", ks.Summary.Sum, truth.TotalNS)
	}
}

// Combined streams: category totals match per-stream ground truth and
// nothing leaks across categories.
func TestCombinedStreams(t *testing.T) {
	res := Run([]Spec{
		{Kind: PageFault, Start: sim.Millisecond, Period: 3 * sim.Millisecond, Dur: 2500, Count: 100},
		{Kind: NetIRQ, Start: 2 * sim.Millisecond, Period: 5 * sim.Millisecond, Dur: 1200, Count: 100},
		{Kind: Preemption, Start: 7 * sim.Millisecond, Period: 50 * sim.Millisecond, Dur: 30_000, Count: 15},
	}, Options{Duration: sim.Second, Seed: 4})
	r := res.Analyze()
	for _, truth := range res.Truths {
		key := truth.Spec.Kind.KeyOf()
		ks := r.Stats(key)
		if int(ks.Summary.Count) != truth.Injected {
			t.Errorf("%v: count %d vs truth %d", truth.Spec.Kind, ks.Summary.Count, truth.Injected)
		}
		if int64(ks.Summary.Sum) != truth.TotalNS {
			t.Errorf("%v: total %.0f vs truth %d", truth.Spec.Kind, ks.Summary.Sum, truth.TotalNS)
		}
	}
	// The tickless quiet node adds nothing else: total noise = injected
	// noise + the schedule spans preemption necessarily induces.
	var injected int64
	for _, tr := range res.Truths {
		injected += tr.TotalNS
	}
	sched := r.Breakdown[noise.CatScheduling]
	if got := r.TotalNoiseNS; got != injected+sched {
		t.Fatalf("noise %d != injected %d + scheduling %d", got, injected, sched)
	}
}

// An injected IRQ landing inside an injected page fault must be
// attributed exactly: the fault's own time excludes the IRQ.
func TestNestedInjectionAttribution(t *testing.T) {
	res := Run([]Spec{
		// One long fault at 10 ms lasting 100 µs.
		{Kind: PageFault, Start: 10 * sim.Millisecond, Period: sim.Second, Dur: 100_000, Count: 1},
		// One IRQ at 10.05 ms: inside the fault.
		{Kind: NetIRQ, Start: 10*sim.Millisecond + 50*sim.Microsecond, Period: sim.Second, Dur: 2000, Count: 1},
	}, Options{Duration: 100 * sim.Millisecond, Seed: 5})
	r := res.Analyze()
	pf := r.Stats(noise.KeyPageFault)
	irq := r.Stats(noise.KeyNetIRQ)
	if pf.Summary.Count != 1 || irq.Summary.Count != 1 {
		t.Fatalf("counts pf=%d irq=%d", pf.Summary.Count, irq.Summary.Count)
	}
	if pf.Summary.Max != 100_000 {
		t.Fatalf("fault own time %d, want exactly 100000 (irq excluded)", pf.Summary.Max)
	}
	if irq.Summary.Max != 2000 {
		t.Fatalf("irq own time %d, want exactly 2000", irq.Summary.Max)
	}
	// And the interruption view groups them as ONE spike of 102 µs.
	if len(r.Interruptions) != 1 {
		t.Fatalf("interruptions %d, want 1", len(r.Interruptions))
	}
	if r.Interruptions[0].Total != 102_000 {
		t.Fatalf("spike total %d, want 102000", r.Interruptions[0].Total)
	}
}

// FTQ-style external measurement would see combined spikes; the
// injection run documents the quiet-node invariant.
func TestQuietNodeBaseline(t *testing.T) {
	res := Run(nil, Options{Duration: sim.Second, Seed: 6})
	r := res.Analyze()
	if r.TotalNoiseNS != 0 {
		t.Fatalf("quiet node has %d ns of noise", r.TotalNoiseNS)
	}
	if len(res.Trace.Events) == 0 {
		t.Fatal("trace empty (boot events expected)")
	}
}

func TestMismatchedPreemptionDursPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for mismatched preemption durations")
		}
	}()
	Run([]Spec{
		{Kind: Preemption, Dur: 1000, Count: 1, Period: sim.Millisecond},
		{Kind: Preemption, Dur: 2000, Count: 1, Period: sim.Millisecond},
	}, Options{Duration: sim.Second})
}

func TestKindStrings(t *testing.T) {
	if PageFault.String() != "pagefault" || NetIRQ.String() != "netirq" ||
		Preemption.String() != "preemption" {
		t.Fatal("kind names wrong")
	}
	if Kind(99).String() != "kind(99)" {
		t.Fatal("unknown kind name")
	}
	if PageFault.KeyOf() != noise.KeyPageFault || Kind(99).KeyOf() != noise.KeyOther {
		t.Fatal("key mapping wrong")
	}
}
