// Package inject provides kernel-level noise injection with exact
// ground truth, in the spirit of Ferreira, Bridges and Brightwell's
// kernel-level noise injection (the paper's reference [2]): precisely
// controlled noise streams — page faults, interrupts, daemon
// preemptions — are injected into an otherwise perfectly quiet
// (tickless, daemon-free) node, so the analysis pipeline can be
// validated end to end against known totals.
//
// This is the strongest correctness check the repository has: if any
// stage (kernel event emission, ring buffers, collection, nesting
// attribution, preemption windows, categorisation) dropped or
// double-counted a nanosecond, the recovered statistics would not
// match the injected ground truth exactly.
package inject

import (
	"fmt"

	"osnoise/internal/kernel"
	"osnoise/internal/noise"
	"osnoise/internal/sim"
	"osnoise/internal/trace"
)

// Kind selects the injected noise mechanism.
type Kind int

// Injection kinds.
const (
	// PageFault injects page-fault exceptions of exact duration.
	PageFault Kind = iota
	// NetIRQ injects network interrupts of exact duration.
	NetIRQ
	// Preemption injects daemon wakeups whose service time is exact.
	Preemption
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case PageFault:
		return "pagefault"
	case NetIRQ:
		return "netirq"
	case Preemption:
		return "preemption"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Spec is one periodic injected noise stream.
type Spec struct {
	Kind   Kind
	Start  sim.Time     // first injection
	Period sim.Duration // spacing between injections
	Dur    sim.Duration // exact duration of each event
	Count  int          // number of injections
}

// Truth is the injected ground truth for one stream.
type Truth struct {
	Spec     Spec
	Injected int   // events actually delivered
	TotalNS  int64 // injected noise time
}

// Result bundles the run artefacts.
type Result struct {
	Trace  *trace.Trace
	Truths []Truth
	AppPID int64
}

// Options configures the injection run.
type Options struct {
	Duration sim.Duration
	Seed     uint64
}

// Run executes the injection experiment: one application task on one
// CPU of a tickless, daemon-quiet node; the only kernel activity is
// the injected streams (plus the scheduler activity Preemption
// necessarily induces, which is reported separately by the analysis).
func Run(specs []Spec, opts Options) *Result {
	if opts.Duration <= 0 {
		opts.Duration = sim.Second
	}
	cfg := kernel.DefaultConfig(opts.Seed)
	cfg.CPUs = 1
	cfg.Tickless = true
	// Exact-cost model for the injected paths. The per-event durations
	// below are placeholders; each injection passes its own duration.
	cfg.Model.SchedOut = sim.Constant(300)
	cfg.Model.SchedIn = sim.Constant(150)

	session := trace.NewSession(trace.Config{CPUs: 1, SubBufs: 16, SubBufLen: 8192})
	session.Start()

	// Daemon service time is overridden per Preemption spec; with more
	// than one Preemption spec the durations must agree.
	var preemptDur sim.Duration = -1
	for _, s := range specs {
		if s.Kind == Preemption {
			if preemptDur >= 0 && preemptDur != s.Dur {
				panic("inject: multiple Preemption specs need equal Dur")
			}
			preemptDur = s.Dur
		}
	}
	if preemptDur >= 0 {
		cfg.Model.DaemonRun = sim.Constant(preemptDur)
	}

	node := kernel.NewNode(cfg, session)
	app := node.NewTask("victim", kernel.KindApp, 0)

	res := &Result{AppPID: int64(app.PID), Truths: make([]Truth, len(specs))}
	for i, s := range specs {
		res.Truths[i].Spec = s
	}

	eng := node.Engine()
	for i, s := range specs {
		i, s := i, s
		for j := 0; j < s.Count; j++ {
			at := s.Start + sim.Scale(s.Period, j)
			if at >= opts.Duration {
				break
			}
			switch s.Kind {
			case PageFault:
				eng.At(at, sim.PrioTask, func(sim.Time) {
					if node.PageFault(app, s.Dur) {
						res.Truths[i].Injected++
						res.Truths[i].TotalNS += int64(s.Dur)
					}
				})
			case NetIRQ:
				eng.At(at, sim.PrioInterrupt, func(sim.Time) {
					node.InjectIRQ(0, s.Dur)
					res.Truths[i].Injected++
					res.Truths[i].TotalNS += int64(s.Dur)
				})
			case Preemption:
				eng.At(at, sim.PrioTask, func(sim.Time) {
					node.DaemonWork(node.Rpciod(), node.CPUs()[0], 1)
					res.Truths[i].Injected++
					res.Truths[i].TotalNS += int64(s.Dur)
				})
			}
		}
	}
	node.Run(opts.Duration)
	res.Trace = session.Collect()
	return res
}

// Analyze runs the standard noise analysis bound to the victim pid.
func (r *Result) Analyze() *noise.Report {
	opts := noise.DefaultOptions()
	opts.AppPIDs = map[int64]bool{r.AppPID: true}
	return noise.Analyze(r.Trace, opts)
}

// KeyOf maps an injection kind to the analysis key it must appear as.
func (k Kind) KeyOf() noise.Key {
	switch k {
	case PageFault:
		return noise.KeyPageFault
	case NetIRQ:
		return noise.KeyNetIRQ
	case Preemption:
		return noise.KeyPreemption
	}
	return noise.KeyOther
}
