package mpi

import (
	"context"
	"errors"
	"testing"

	"osnoise/internal/cluster"
	"osnoise/internal/sim"
)

func quiet() cluster.NoiseModel { return cluster.NoiseModel{} }

func noisy() cluster.NoiseModel {
	return cluster.NoiseModel{RatePerSec: 100, Durations: []int64{50_000, 200_000}}
}

// mustRun runs the allreduce and fails the test on error.
func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	r, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

func TestDepth(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := depth(n); got != want {
			t.Errorf("depth(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestNoiseFreeMatchesIdeal(t *testing.T) {
	r := mustRun(t, Config{
		Ranks: 64, Granularity: sim.Millisecond,
		HopLatency: 2 * sim.Microsecond, Iterations: 50,
		Seed: 1, Model: quiet(),
	})
	if r.ActualNS != r.IdealNS {
		t.Fatalf("noise-free run %d != ideal %d", r.ActualNS, r.IdealNS)
	}
	if r.Slowdown() != 1 {
		t.Fatalf("slowdown %v", r.Slowdown())
	}
	if r.TreeDepth != 6 {
		t.Fatalf("depth %d", r.TreeDepth)
	}
}

func TestNoiseSlowsAllreduce(t *testing.T) {
	r := mustRun(t, Config{
		Ranks: 256, Granularity: sim.Millisecond,
		HopLatency: 2 * sim.Microsecond, Iterations: 100,
		Seed: 2, Model: noisy(),
	})
	if r.Slowdown() <= 1.01 {
		t.Fatalf("slowdown %.3f, want noticeable", r.Slowdown())
	}
}

func TestSlowdownGrowsWithRanks(t *testing.T) {
	prev := 0.0
	for _, ranks := range []int{8, 64, 512} {
		r := mustRun(t, Config{
			Ranks: ranks, Granularity: sim.Millisecond,
			HopLatency: sim.Microsecond, Iterations: 150,
			Seed: 3, Model: noisy(),
		})
		if r.Slowdown() < prev {
			t.Fatalf("slowdown fell at %d ranks: %.3f < %.3f", ranks, r.Slowdown(), prev)
		}
		prev = r.Slowdown()
	}
	if prev < 1.05 {
		t.Fatalf("no amplification at 512 ranks: %.3f", prev)
	}
}

// The explicit tree must agree in magnitude with the analytic flat-max
// model (tree ≥ flat is not guaranteed because hops pipeline, but both
// must show the same amplification regime).
func TestTreeAgreesWithFlatModel(t *testing.T) {
	m := noisy()
	tree := mustRun(t, Config{
		Ranks: 512, Granularity: sim.Millisecond,
		HopLatency: 0, Iterations: 200, Seed: 4, Model: m,
	})
	flat, err := cluster.Run(context.Background(), cluster.Config{
		Nodes: 64, RanksPerNode: 8,
		Granularity: sim.Millisecond, Iterations: 200, Seed: 4, Model: m,
	})
	if err != nil {
		t.Fatalf("cluster.Run: %v", err)
	}
	ratio := tree.Slowdown() / flat.Slowdown()
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("tree %.3f vs flat %.3f (ratio %.3f) disagree", tree.Slowdown(), flat.Slowdown(), ratio)
	}
}

// With zero hop latency, the tree allreduce IS the flat max barrier:
// per-iteration times must match the max over ranks exactly.
func TestZeroHopEqualsMax(t *testing.T) {
	cfg := Config{
		Ranks: 33, Granularity: 100 * sim.Microsecond,
		HopLatency: 0, Iterations: 7, Seed: 5, Model: noisy(),
	}
	r := mustRun(t, cfg)
	// Recompute by brute force.
	var total int64
	for it := 0; it < cfg.Iterations; it++ {
		var worst int64
		for rank := 0; rank < cfg.Ranks; rank++ {
			rng := sim.NewRNG(cfg.Seed ^ (0x9e3779b97f4a7c15 * uint64(rank+1)))
			var d int64
			for k := 0; k <= it; k++ {
				d = cfg.Model.Sample(rng, cfg.Granularity)
			}
			if d > worst {
				worst = d
			}
		}
		total += int64(cfg.Granularity) + worst
	}
	if r.ActualNS != total {
		t.Fatalf("tree %d != brute-force max %d", r.ActualNS, total)
	}
}

func TestWorkerInvariance(t *testing.T) {
	mk := func(workers int) int64 {
		return mustRun(t, Config{
			Ranks: 100, Granularity: sim.Millisecond,
			HopLatency: sim.Microsecond, Iterations: 40,
			Seed: 6, Model: noisy(), Workers: workers,
		}).ActualNS
	}
	if a, b := mk(1), mk(7); a != b {
		t.Fatalf("worker count changed result: %d vs %d", a, b)
	}
}

func TestHopLatencyAddsTreeDepth(t *testing.T) {
	base := mustRun(t, Config{Ranks: 1024, Granularity: sim.Millisecond,
		HopLatency: 0, Iterations: 10, Seed: 7, Model: quiet()})
	withHops := mustRun(t, Config{Ranks: 1024, Granularity: sim.Millisecond,
		HopLatency: 5 * sim.Microsecond, Iterations: 10, Seed: 7, Model: quiet()})
	wantExtra := int64(10) * 2 * 10 * int64(5*sim.Microsecond) // iters × 2 trees × depth × hop
	if got := withHops.ActualNS - base.ActualNS; got != wantExtra {
		t.Fatalf("hop latency added %d, want %d", got, wantExtra)
	}
}

func TestRunErrorsWithoutRanks(t *testing.T) {
	if _, err := Run(context.Background(), Config{Granularity: sim.Millisecond}); err == nil {
		t.Fatal("no error for zero ranks")
	}
}

func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, Config{
		Ranks: 64, Granularity: sim.Millisecond,
		Iterations: 50, Seed: 1, Model: noisy(),
	})
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want ErrCancelled wrapping context.Canceled", err)
	}
}
