// Package mpi models collective communication at scale with explicit
// message propagation, complementing the analytic bulk-synchronous
// model of internal/cluster. The paper's related work (Beckman et al.,
// ref [26]) examines exactly this: how OS interference delays MPI
// collectives.
//
// An allreduce is a reduce tree followed by a broadcast tree: a rank
// becomes ready when its own compute (plus any OS noise) finishes, a
// tree node reduces when all its children's messages have arrived, and
// the result is broadcast back down. One late rank therefore delays the
// whole operation, but — unlike the flat max model — the delay can be
// partially absorbed if it is off the critical path, and per-hop
// latency adds a log₂(N) term. The simulation computes exact completion
// times per rank per iteration.
package mpi

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"osnoise/internal/cluster"
	"osnoise/internal/sim"
)

// ErrCancelled is the sentinel wrapped by Run when its context is
// cancelled mid-simulation; the returned error also wraps ctx.Err().
var ErrCancelled = errors.New("mpi: run cancelled")

// Config describes an iterated allreduce benchmark.
type Config struct {
	Ranks int
	// Granularity is the per-iteration compute time per rank.
	Granularity sim.Duration
	// HopLatency is the one-message network latency between tree levels.
	HopLatency sim.Duration
	Iterations int
	Seed       uint64
	// Model injects per-rank noise into each compute phase.
	Model cluster.NoiseModel
	// Workers bounds the simulation parallelism (default NumCPU).
	Workers int
}

// Result summarises the run.
type Result struct {
	Config Config
	// IdealNS is the noise-free runtime: iterations × (granularity +
	// tree latency).
	IdealNS int64
	// ActualNS includes the noise-induced delays.
	ActualNS int64
	// TreeDepth is ceil(log2(ranks)).
	TreeDepth int
}

// Slowdown returns ActualNS/IdealNS.
func (r *Result) Slowdown() float64 {
	if r.IdealNS == 0 {
		return 0
	}
	return float64(r.ActualNS) / float64(r.IdealNS)
}

// depth returns ceil(log2(n)).
func depth(n int) int {
	d := 0
	for (1 << d) < n {
		d++
	}
	return d
}

// Run executes the iterated allreduce. Per iteration:
//
//  1. every rank computes granularity + noise (ready time);
//  2. reduce: binomial tree — at level l, rank r receives from rank
//     r + 2^l if that partner exists; a node sends up when it and all
//     received messages are in, each hop costing HopLatency;
//  3. broadcast: the mirror tree, again HopLatency per hop;
//  4. the next iteration starts when a rank has the result (all ranks
//     synchronised at root completion + their broadcast arrival; the
//     next compute starts per rank at its own receive time).
//
// Rank noise sampling is parallelised across workers; tree combining is
// O(ranks · log ranks) per iteration, single-threaded but cheap.
//
// Cancellation is cooperative: Run checks ctx at rank and iteration
// boundaries, always joins its sampling goroutines, and on cancellation
// returns a nil Result and an error wrapping ErrCancelled and ctx.Err().
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Ranks <= 0 {
		return nil, errors.New("mpi: need at least one rank")
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	d := depth(cfg.Ranks)
	res := &Result{Config: cfg, TreeDepth: d}
	res.IdealNS = int64(cfg.Iterations) * (int64(cfg.Granularity) + 2*int64(d)*int64(cfg.HopLatency))

	// Pre-sample per-rank noise for every iteration in parallel
	// (deterministic per rank, independent of worker count).
	noise := make([][]int64, cfg.Ranks) // [rank][iter]
	workers := cfg.Workers
	if workers > cfg.Ranks {
		workers = cfg.Ranks
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rank := w; rank < cfg.Ranks; rank += workers {
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				rng := sim.NewRNG(cfg.Seed ^ (0x9e3779b97f4a7c15 * uint64(rank+1)))
				col := make([]int64, cfg.Iterations)
				for it := 0; it < cfg.Iterations; it++ {
					col[it] = cfg.Model.Sample(rng, cfg.Granularity)
				}
				noise[rank] = col
			}
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("%w: %w", ErrCancelled, ctx.Err())
		}
		return nil, err
	}

	hop := int64(cfg.HopLatency)
	start := make([]int64, cfg.Ranks)  // per-rank iteration start time
	ready := make([]int64, cfg.Ranks)  // per-rank compute-done time
	arrive := make([]int64, cfg.Ranks) // broadcast arrival time
	var clockEnd int64
	for it := 0; it < cfg.Iterations; it++ {
		if it&63 == 0 && ctx.Err() != nil {
			return nil, fmt.Errorf("%w: %w", ErrCancelled, ctx.Err())
		}
		for r := 0; r < cfg.Ranks; r++ {
			ready[r] = start[r] + int64(cfg.Granularity) + noise[r][it]
		}
		// Reduce up the binomial tree: after this loop ready[0] is the
		// time the root holds the full reduction.
		for l := 0; (1 << l) < cfg.Ranks; l++ {
			stride := 1 << l
			for r := 0; r+stride < cfg.Ranks; r += stride << 1 {
				partner := r + stride
				msg := ready[partner] + hop
				if msg > ready[r] {
					ready[r] = msg
				}
			}
		}
		// Broadcast down the mirror tree.
		arrive[0] = ready[0]
		for l := d - 1; l >= 0; l-- {
			stride := 1 << l
			for r := 0; r+stride < cfg.Ranks; r += stride << 1 {
				partner := r + stride
				msg := arrive[r] + hop
				if msg > arrive[partner] {
					arrive[partner] = msg
				}
			}
		}
		for r := 0; r < cfg.Ranks; r++ {
			start[r] = arrive[r]
			if arrive[r] > clockEnd {
				clockEnd = arrive[r]
			}
		}
	}
	res.ActualNS = clockEnd
	return res, nil
}
